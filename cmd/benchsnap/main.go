// Command benchsnap captures the repo's machine-readable performance
// trajectory: BENCH_engine.json (raw discrete-event throughput, the
// same measurement BenchmarkEngineEventsPerSec reports),
// BENCH_scenario.json (wall-clock and per-phase SLO outcomes of a quick
// production-day scenario), BENCH_workload.json (container-overlay
// trace-generation throughput and workload shape), and BENCH_lint.json
// (v2plint wall time over the whole module, per analyzer, plus the
// finding count — tracking the cost of the growing static-analysis
// suite). CI runs it on every
// build; committing the files records how engine throughput, scenario
// cost, and lint cost move over time.
//
// Wall-clock figures vary with the host; the simulation-side fields
// (events, flows, SLO verdicts) are deterministic.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"switchv2p/internal/analysis/v2plint"
	"switchv2p/internal/containers"
	"switchv2p/internal/harness"
	"switchv2p/internal/netaddr"
	"switchv2p/internal/scenario"
	"switchv2p/internal/simtime"
	"switchv2p/internal/telemetry"
	"switchv2p/internal/trace"
)

type engineSnap struct {
	Config        string  `json:"config"`
	Events        int64   `json:"events"`
	EventsPerSec  float64 `json:"events_per_sec"`
	AllocsPerEvt  float64 `json:"allocs_per_event"`
	HeapHighWater int     `json:"heap_high_water"`
	WallMs        float64 `json:"wall_ms"`
	SimEndUs      float64 `json:"sim_end_us"`
	// Sharded reruns the same configuration on the sharded deterministic
	// engine at increasing worker counts. The simulation output is
	// byte-identical at every count; only wall time moves. Events differ
	// from the serial engine's figure because barrier-window bookkeeping
	// (sampler ticks, cross-shard arrivals) is accounted differently.
	Sharded []shardSnap `json:"sharded"`
}

type shardSnap struct {
	Shards       int     `json:"shards"`
	Events       int64   `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	WallMs       float64 `json:"wall_ms"`
}

type scenarioSnap struct {
	Config  string           `json:"config"`
	WallMs  float64          `json:"wall_ms"`
	Report  *scenario.Report `json:"report"`
	Horizon string           `json:"horizon"`
}

func engineSnapshot() (*engineSnap, error) {
	cfg := harness.Config{
		VMs: 1024, Scheme: harness.SchemeSwitchV2P, TraceName: "hadoop",
		Load: 0.30, Duration: 200 * simtime.Microsecond, MaxFlows: 1000,
		CacheFraction: 0.5, Seed: 1,
		Telemetry: &telemetry.Options{ProfileOnly: true},
	}
	r, err := harness.Run(cfg)
	if err != nil {
		return nil, err
	}
	var sharded []shardSnap
	for _, n := range []int{1, 2, 4, 8} {
		scfg := cfg
		scfg.Shards = n
		sr, err := harness.Run(scfg)
		if err != nil {
			return nil, err
		}
		sp := &sr.Telemetry.Profile
		sharded = append(sharded, shardSnap{
			Shards:       n,
			Events:       sp.Events,
			EventsPerSec: sp.EventsPerSec(),
			WallMs:       float64(sp.Wall) / float64(time.Millisecond),
		})
	}
	p := &r.Telemetry.Profile
	return &engineSnap{
		Config:        "switchv2p/hadoop FT8 1024VM 1000flows (BenchmarkEngineEventsPerSec)",
		Events:        p.Events,
		EventsPerSec:  p.EventsPerSec(),
		AllocsPerEvt:  p.AllocsPerEvent(),
		HeapHighWater: p.HeapHighWater,
		WallMs:        float64(p.Wall) / float64(time.Millisecond),
		SimEndUs:      float64(p.SimEnd) / 1e3,
		Sharded:       sharded,
	}, nil
}

func scenarioSnapshot() (*scenarioSnap, error) {
	spec := scenario.ProductionDay(harness.Config{
		VMs: 1024, Scheme: harness.SchemeSwitchV2P, TraceName: "hadoop",
		Load: 0.30, CacheFraction: 0.5, Seed: 1,
	}, scenario.DayOptions{
		DayLength:  24 * simtime.Millisecond,
		FlowBudget: 2400, Churn: 24, Migrations: 16,
		UpgradeWaves: 2, DrainGateways: 2,
	})
	t0 := time.Now()
	rep, err := scenario.Run(spec)
	if err != nil {
		return nil, err
	}
	wall := time.Since(t0)
	rep.Final = nil // keep the snapshot phase-oriented (Final is json:"-" anyway)
	return &scenarioSnap{
		Config:  "production-day quick (switchv2p/hadoop FT8 1024VM 2400flows)",
		WallMs:  float64(wall) / float64(time.Millisecond),
		Report:  rep,
		Horizon: fmt.Sprintf("%.1fms simulated", rep.HorizonUs/1e3),
	}, nil
}

type workloadSnap struct {
	Config       string  `json:"config"`
	Flows        int     `json:"flows"`
	TotalBytes   int64   `json:"total_bytes"`
	DistinctDsts int     `json:"distinct_dests"`
	ReuseDistUs  float64 `json:"mean_reuse_distance_us"`
	FlowsPerSec  float64 `json:"flows_per_sec"`
	WallMs       float64 `json:"wall_ms"`
}

// workloadSnapshot measures the container-overlay trace generator:
// wall-clock generation throughput plus the deterministic shape of the
// emitted workload (flow count, bytes, reuse structure).
func workloadSnapshot() (*workloadSnap, error) {
	var alloc netaddr.VIPAllocator
	vips := make([]netaddr.VIP, 64*128)
	for i := range vips {
		vips[i] = alloc.Next()
	}
	cfg := trace.Config{
		VIPs:        vips,
		Servers:     128,
		HostLinkBps: 100e9,
		Load:        0.30,
		Duration:    simtime.Millisecond,
		MaxFlows:    50000,
		Seed:        1,
	}
	gen := containers.Generator(containers.Spec{PerHost: 64})
	t0 := time.Now()
	w, err := gen(cfg)
	if err != nil {
		return nil, err
	}
	wall := time.Since(t0)
	s := trace.Analyze(w)
	return &workloadSnap{
		Config:       "containers 64/host 128 servers 50000 flows (density 64, fan-out 3, reuse 0.7)",
		Flows:        s.Flows,
		TotalBytes:   s.TotalBytes,
		DistinctDsts: s.DistinctDests,
		ReuseDistUs:  float64(s.MeanReuseDistance) / 1e3,
		FlowsPerSec:  float64(s.Flows) / wall.Seconds(),
		WallMs:       float64(wall) / float64(time.Millisecond),
	}, nil
}

type lintSnap struct {
	Config     string             `json:"config"`
	Packages   int                `json:"packages"`
	Analyzers  int                `json:"analyzers"`
	Findings   int                `json:"findings"`
	WallMs     float64            `json:"wall_ms"`
	AnalyzerMs map[string]float64 `json:"analyzer_ms"`
	// Incremental-cache trajectory: a cold run populating a fresh cache,
	// then a warm run replaying it. The warm hit rate should be 1.0 and
	// the warm findings byte-identical to the cold ones (enforced here —
	// a mismatch fails the snapshot).
	CacheColdMs      float64 `json:"cache_cold_ms"`
	CacheWarmMs      float64 `json:"cache_warm_ms"`
	CacheWarmHitRate float64 `json:"cache_warm_hit_rate"`
	CacheWarmHits    int     `json:"cache_warm_hits"`
	CacheWarmMisses  int     `json:"cache_warm_misses"`
}

func lintSnapshot() (*lintSnap, error) {
	t0 := time.Now()
	pkgs, err := v2plint.LoadPackages("", []string{"switchv2p/..."})
	if err != nil {
		return nil, err
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("no packages loaded")
	}
	prog := v2plint.NewProgram(pkgs[0].Fset)
	prog.EnableTimings()
	for _, p := range pkgs {
		prog.Add(p.Files, p.Pkg, p.Info)
	}
	analyzers := v2plint.Analyzers()
	diags := prog.Run(analyzers)
	wall := time.Since(t0)
	per := map[string]float64{}
	for name, d := range prog.Timings() {
		per[name] = float64(d) / float64(time.Millisecond)
	}
	snap := &lintSnap{
		Config:     "v2plint switchv2p/... (load + call graph + all analyzers)",
		Packages:   len(pkgs),
		Analyzers:  len(analyzers),
		Findings:   len(diags),
		WallMs:     float64(wall) / float64(time.Millisecond),
		AnalyzerMs: per,
	}

	// Incremental-cache measurement: cold populate, warm replay, with
	// the findings compared byte for byte across the two runs.
	cacheDir, err := os.MkdirTemp("", "v2plint-benchsnap-cache")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(cacheDir)
	t0 = time.Now()
	cold, _, _, err := v2plint.RunCached("", []string{"switchv2p/..."}, analyzers, cacheDir, false)
	if err != nil {
		return nil, fmt.Errorf("cold cached run: %v", err)
	}
	snap.CacheColdMs = float64(time.Since(t0)) / float64(time.Millisecond)
	t0 = time.Now()
	warm, warmStats, _, err := v2plint.RunCached("", []string{"switchv2p/..."}, analyzers, cacheDir, false)
	if err != nil {
		return nil, fmt.Errorf("warm cached run: %v", err)
	}
	snap.CacheWarmMs = float64(time.Since(t0)) / float64(time.Millisecond)
	snap.CacheWarmHitRate = warmStats.HitRate()
	snap.CacheWarmHits = warmStats.Hits
	snap.CacheWarmMisses = warmStats.Misses
	coldJSON, err := json.Marshal(cold)
	if err != nil {
		return nil, err
	}
	warmJSON, err := json.Marshal(warm)
	if err != nil {
		return nil, err
	}
	if string(coldJSON) != string(warmJSON) {
		return nil, fmt.Errorf("cached lint findings differ hot vs cold:\ncold: %s\nwarm: %s", coldJSON, warmJSON)
	}
	return snap, nil
}

func writeJSON(dir, name string, v any) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func main() {
	out := flag.String("out", ".", "directory for BENCH_*.json")
	flag.Parse()

	eng, err := engineSnapshot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap engine: %v\n", err)
		os.Exit(1)
	}
	if err := writeJSON(*out, "BENCH_engine.json", eng); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("BENCH_engine.json: %d events, %.0f events/sec, %.3f allocs/event\n",
		eng.Events, eng.EventsPerSec, eng.AllocsPerEvt)
	for _, s := range eng.Sharded {
		fmt.Printf("  sharded %d: %d events, %.0f events/sec\n", s.Shards, s.Events, s.EventsPerSec)
	}

	scen, err := scenarioSnapshot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap scenario: %v\n", err)
		os.Exit(1)
	}
	if err := writeJSON(*out, "BENCH_scenario.json", scen); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}
	pass := 0
	for i := range scen.Report.Phases {
		if scen.Report.Phases[i].SLOPass {
			pass++
		}
	}
	fmt.Printf("BENCH_scenario.json: %d flows over %s in %.0fms wall, %d/%d phases met SLO\n",
		scen.Report.Flows, scen.Horizon, scen.WallMs, pass, len(scen.Report.Phases))

	work, err := workloadSnapshot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap workload: %v\n", err)
		os.Exit(1)
	}
	if err := writeJSON(*out, "BENCH_workload.json", work); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("BENCH_workload.json: %d flows in %.0fms wall (%.0f flows/sec), %d distinct dests\n",
		work.Flows, work.WallMs, work.FlowsPerSec, work.DistinctDsts)

	lint, err := lintSnapshot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap lint: %v\n", err)
		os.Exit(1)
	}
	if err := writeJSON(*out, "BENCH_lint.json", lint); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("BENCH_lint.json: %d analyzers over %d packages in %.0fms wall, %d finding(s)\n",
		lint.Analyzers, lint.Packages, lint.WallMs, lint.Findings)
	fmt.Printf("  cache: cold %.0fms, warm %.0fms, warm hit rate %.0f%% (%d hit / %d analyzed)\n",
		lint.CacheColdMs, lint.CacheWarmMs, 100*lint.CacheWarmHitRate, lint.CacheWarmHits, lint.CacheWarmMisses)
}
