// Command switchv2p-sim runs a single simulation and prints its report:
// one scheme, one trace, one topology, one cache size.
//
// Examples:
//
//	switchv2p-sim -scheme switchv2p -trace hadoop -cache 0.5
//	switchv2p-sim -scheme nocache -trace websearch -duration 2ms
//	switchv2p-sim -topo ft16 -trace alibaba -vms 100000 -maxflows 20000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"switchv2p/internal/harness"
	"switchv2p/internal/simtime"
	"switchv2p/internal/telemetry"
	"switchv2p/internal/topology"
	"switchv2p/internal/trace"
)

func main() {
	var (
		scheme   = flag.String("scheme", "switchv2p", "scheme: "+strings.Join(harness.AllSchemes, ", "))
		traceN   = flag.String("trace", "hadoop", "trace: hadoop, websearch, alibaba, microbursts, video")
		topoName = flag.String("topo", "ft8", "topology: ft8 | ft16")
		cache    = flag.Float64("cache", 0.5, "aggregate cache size as a fraction of the VIP space")
		vms      = flag.Int("vms", 10240, "number of VMs")
		load     = flag.Float64("load", 0.30, "offered load fraction of host capacity")
		duration = flag.Duration("duration", time.Millisecond, "traced interval (simulated)")
		maxFlows = flag.Int("maxflows", 0, "cap on generated flows (0 = uncapped)")
		gateways = flag.Int("gateways", 0, "restrict to N gateways (0 = all)")
		seed     = flag.Int64("seed", 1, "random seed")
		wlFile   = flag.String("workload", "", "replay a workload file (from tracegen -o) instead of generating")

		telem         = flag.Bool("telemetry", false, "collect time-series telemetry and engine profile")
		telemOut      = flag.String("telemetry-out", "", "write telemetry to this file (.json or .csv); implies -telemetry")
		telemInterval = flag.Duration("telemetry-interval", 0, "telemetry sampling period (simulated; 0 = default)")
	)
	flag.Parse()

	var workload *trace.Workload
	if *wlFile != "" {
		f, err := os.Open(*wlFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		workload, err = trace.ReadWorkload(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	cfg := harness.Config{
		Workload:       workload,
		VMs:            *vms,
		Scheme:         *scheme,
		TraceName:      *traceN,
		Load:           *load,
		Duration:       simtime.FromStd(*duration),
		MaxFlows:       *maxFlows,
		CacheFraction:  *cache,
		ActiveGateways: *gateways,
		Seed:           *seed,
	}
	if *telem || *telemOut != "" {
		cfg.Telemetry = &telemetry.Options{Interval: simtime.FromStd(*telemInterval)}
	}
	switch *topoName {
	case "ft8":
		cfg.Topo = topology.FT8()
	case "ft16":
		cfg.Topo = topology.FT16()
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topoName)
		os.Exit(2)
	}

	t0 := time.Now()
	r, err := harness.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wall := time.Since(t0)

	fmt.Printf("scheme            %s\n", r.Scheme)
	fmt.Printf("trace             %s (%d flows, %d completed)\n", *traceN, r.Summary.Flows, r.Summary.Completed)
	fmt.Printf("topology          %s\n", r.World.Topo)
	fmt.Printf("cache fraction    %g (aggregate %d entries)\n", *cache, int(*cache*float64(*vms)))
	fmt.Printf("hit rate          %.2f%% (gateway packets %d / %d sent)\n", 100*r.HitRate, r.GatewayPackets, r.HostSent)
	fmt.Printf("avg FCT           %v (p99 %v)\n", r.Summary.AvgFCT, r.Summary.P99FCT)
	fmt.Printf("avg first packet  %v (p99 %v)\n", r.Summary.AvgFirstPacket, r.Summary.P99FirstPacket)
	fmt.Printf("avg packet stretch %.2f switches\n", r.AvgStretch)
	fmt.Printf("network bytes     %d MB across switches\n", r.TotalSwitchBytes>>20)
	fmt.Printf("drops             %d, retransmits %d, misdeliveries %d\n", r.Drops, r.Summary.Retransmits, r.Misdeliveries)
	if r.CoreStats != nil {
		tot := r.CoreStats.TotalCacheHitShare()
		fmt.Printf("hit layers        core %.1f%% / spine %.1f%% / tor %.1f%%\n", 100*tot[2], 100*tot[1], 100*tot[0])
		fmt.Printf("protocol          learning %d, spills %d/%d, promotions %d/%d, invalidations %d\n",
			r.LearningPkts, r.CoreStats.SpillInserted, r.CoreStats.SpillAttached,
			r.CoreStats.PromoteInserted, r.CoreStats.PromoteAttached, r.InvalidationPkts)
	}
	fmt.Printf("wall time         %v\n", wall.Round(time.Millisecond))

	if r.Telemetry != nil {
		fmt.Printf("\n--- telemetry ---\n%s", r.Telemetry.Summary())
		if *telemOut != "" {
			if err := writeTelemetry(*telemOut, r.Telemetry); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("telemetry written to %s\n", *telemOut)
		}
	}
}

// writeTelemetry exports the collector by file extension: .csv gets the
// wide timeline, anything else the full JSON document.
func writeTelemetry(path string, tel *telemetry.Collector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return tel.WriteCSV(f)
	}
	return tel.WriteJSON(f)
}
