// Command switchv2p-sim runs a single simulation and prints its report:
// one scheme, one trace, one topology, one cache size.
//
// Examples:
//
//	switchv2p-sim -scheme switchv2p -trace hadoop -cache 0.5
//	switchv2p-sim -scheme nocache -trace websearch -duration 2ms
//	switchv2p-sim -topo ft16 -trace alibaba -vms 100000 -maxflows 20000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"switchv2p/internal/faults"
	"switchv2p/internal/harness"
	"switchv2p/internal/simtime"
	"switchv2p/internal/telemetry"
	"switchv2p/internal/topology"
	"switchv2p/internal/trace"
)

func main() {
	var (
		scheme   = flag.String("scheme", "switchv2p", "scheme: "+strings.Join(harness.AllSchemes, ", "))
		traceN   = flag.String("trace", "hadoop", "trace: hadoop, websearch, alibaba, microbursts, video")
		topoName = flag.String("topo", "ft8", "topology: ft8 | ft16")
		cache    = flag.Float64("cache", 0.5, "aggregate cache size as a fraction of the VIP space")
		vms      = flag.Int("vms", 10240, "number of VMs")
		load     = flag.Float64("load", 0.30, "offered load fraction of host capacity")
		duration = flag.Duration("duration", time.Millisecond, "traced interval (simulated)")
		maxFlows = flag.Int("maxflows", 0, "cap on generated flows (0 = uncapped)")
		gateways = flag.Int("gateways", 0, "restrict to N gateways (0 = all)")
		seed     = flag.Int64("seed", 1, "random seed")
		wlFile   = flag.String("workload", "", "replay a workload file (from tracegen -o) instead of generating")

		shards = flag.Int("shards", 0, "run on the sharded deterministic engine with N workers (0 = serial; errors if the scheme does not support it)")
		oracle = flag.Bool("shard-oracle", false, "sharded engine, serial oracle dispatch (debugging aid: same output, no parallelism)")

		telem         = flag.Bool("telemetry", false, "collect time-series telemetry and engine profile")
		telemOut      = flag.String("telemetry-out", "", "write telemetry to this file (.json or .csv); implies -telemetry")
		telemInterval = flag.Duration("telemetry-interval", 0, "telemetry sampling period (simulated; 0 = default)")

		// Fault injection (internal/faults). Times are simulated.
		faultSwitch    = flag.Int("fault-switch", -1, "fail this switch index (-1 = none)")
		faultSwitchAt  = flag.Duration("fault-switch-at", 0, "simulated time of the switch failure")
		faultSwitchRec = flag.Duration("fault-switch-recover", 0, "simulated time of the switch recovery (0 = never)")
		faultGateway   = flag.Int("fault-gateway", -1, "outage the gateway instance on this host index (-1 = none)")
		faultGwAt      = flag.Duration("fault-gateway-at", 0, "simulated time of the gateway outage")
		faultGwRec     = flag.Duration("fault-gateway-recover", 0, "simulated time of the gateway recovery (0 = never)")
		faultLink      = flag.String("fault-link", "", "fail this link, e.g. s3-s10 or h5-s0 (sN = switch, hN = host)")
		faultLinkAt    = flag.Duration("fault-link-at", 0, "simulated time of the link failure")
		faultLinkRec   = flag.Duration("fault-link-recover", 0, "simulated time of the link recovery (0 = never)")
		faultLoss      = flag.Float64("fault-loss", 0, "loss probability for the -fault-loss-link window (0 = none)")
		faultLossLink  = flag.String("fault-loss-link", "", "link for the loss window, same syntax as -fault-link")
		faultLossAt    = flag.Duration("fault-loss-at", 0, "simulated time the loss window opens")
		faultLossEnd   = flag.Duration("fault-loss-end", 0, "simulated time the loss window closes (0 = never)")
		faultLossSeed  = flag.Int64("fault-loss-seed", 0, "seed for the loss-window PRNG (0 = 1)")
		faultMTBF      = flag.Duration("fault-mtbf", 0, "random switch-failure model: mean time between failures (0 = off)")
		faultMTTR      = flag.Duration("fault-mttr", 0, "random switch-failure model: mean time to recovery")
		faultSeed      = flag.Int64("fault-seed", 0, "seed for the random switch-failure model (0 = 1)")
	)
	flag.Parse()

	var workload *trace.Workload
	if *wlFile != "" {
		f, err := os.Open(*wlFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		workload, err = trace.ReadWorkload(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	cfg := harness.Config{
		Workload:       workload,
		VMs:            *vms,
		Scheme:         *scheme,
		TraceName:      *traceN,
		Load:           *load,
		Duration:       simtime.FromStd(*duration),
		MaxFlows:       *maxFlows,
		CacheFraction:  *cache,
		ActiveGateways: *gateways,
		Seed:           *seed,
		Shards:         *shards,
		ShardOracle:    *oracle,
	}
	if *telem || *telemOut != "" {
		cfg.Telemetry = &telemetry.Options{Interval: simtime.FromStd(*telemInterval)}
	}

	fc := &faults.Config{LossSeed: *faultLossSeed}
	at := func(d time.Duration) simtime.Time { return simtime.Time(0).Add(simtime.FromStd(d)) }
	if *faultSwitch >= 0 {
		fc.Schedule = append(fc.Schedule, faults.Event{
			At: at(*faultSwitchAt), Kind: faults.SwitchFail, Switch: int32(*faultSwitch)})
		if *faultSwitchRec > 0 {
			fc.Schedule = append(fc.Schedule, faults.Event{
				At: at(*faultSwitchRec), Kind: faults.SwitchRecover, Switch: int32(*faultSwitch)})
		}
	}
	if *faultGateway >= 0 {
		fc.Schedule = append(fc.Schedule, faults.Event{
			At: at(*faultGwAt), Kind: faults.GatewayOutage, Gateway: int32(*faultGateway)})
		if *faultGwRec > 0 {
			fc.Schedule = append(fc.Schedule, faults.Event{
				At: at(*faultGwRec), Kind: faults.GatewayRecover, Gateway: int32(*faultGateway)})
		}
	}
	if *faultLink != "" {
		a, b, err := parseLink(*faultLink)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fc.Schedule = append(fc.Schedule, faults.Event{
			At: at(*faultLinkAt), Kind: faults.LinkDown, A: a, B: b})
		if *faultLinkRec > 0 {
			fc.Schedule = append(fc.Schedule, faults.Event{
				At: at(*faultLinkRec), Kind: faults.LinkUp, A: a, B: b})
		}
	}
	if *faultLoss > 0 {
		if *faultLossLink == "" {
			fmt.Fprintln(os.Stderr, "-fault-loss requires -fault-loss-link")
			os.Exit(2)
		}
		a, b, err := parseLink(*faultLossLink)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fc.Schedule = append(fc.Schedule, faults.Event{
			At: at(*faultLossAt), Kind: faults.LossStart, A: a, B: b, LossRate: *faultLoss})
		if *faultLossEnd > 0 {
			fc.Schedule = append(fc.Schedule, faults.Event{
				At: at(*faultLossEnd), Kind: faults.LossEnd, A: a, B: b})
		}
	}
	if *faultMTBF > 0 {
		fc.Random = &faults.RandomModel{
			Seed:    *faultSeed,
			MTBF:    simtime.FromStd(*faultMTBF),
			MTTR:    simtime.FromStd(*faultMTTR),
			Horizon: simtime.Time(0).Add(cfg.Duration),
		}
	}
	if !fc.Empty() {
		cfg.Faults = fc
	}
	switch *topoName {
	case "ft8":
		cfg.Topo = topology.FT8()
	case "ft16":
		cfg.Topo = topology.FT16()
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topoName)
		os.Exit(2)
	}

	t0 := time.Now()
	r, err := harness.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wall := time.Since(t0)

	fmt.Printf("scheme            %s\n", r.Scheme)
	fmt.Printf("trace             %s (%d flows, %d completed)\n", *traceN, r.Summary.Flows, r.Summary.Completed)
	fmt.Printf("topology          %s\n", r.World.Topo)
	fmt.Printf("cache fraction    %g (aggregate %d entries)\n", *cache, int(*cache*float64(*vms)))
	fmt.Printf("hit rate          %.2f%% (gateway packets %d / %d sent)\n", 100*r.HitRate, r.GatewayPackets, r.HostSent)
	fmt.Printf("avg FCT           %v (p99 %v)\n", r.Summary.AvgFCT, r.Summary.P99FCT)
	fmt.Printf("avg first packet  %v (p99 %v)\n", r.Summary.AvgFirstPacket, r.Summary.P99FirstPacket)
	fmt.Printf("avg packet stretch %.2f switches\n", r.AvgStretch)
	fmt.Printf("network bytes     %d MB across switches\n", r.TotalSwitchBytes>>20)
	fmt.Printf("drops             %d, retransmits %d, misdeliveries %d\n", r.Drops, r.Summary.Retransmits, r.Misdeliveries)
	if cfg.Faults != nil {
		fmt.Printf("faults            %d events applied, %d fault drops, %d loss drops, %d rerouted\n",
			r.FaultEvents, r.FaultDrops, r.LossDrops, r.Rerouted)
	}
	if r.CoreStats != nil {
		tot := r.CoreStats.TotalCacheHitShare()
		fmt.Printf("hit layers        core %.1f%% / spine %.1f%% / tor %.1f%%\n", 100*tot[2], 100*tot[1], 100*tot[0])
		fmt.Printf("protocol          learning %d, spills %d/%d, promotions %d/%d, invalidations %d\n",
			r.LearningPkts, r.CoreStats.SpillInserted, r.CoreStats.SpillAttached,
			r.CoreStats.PromoteInserted, r.CoreStats.PromoteAttached, r.InvalidationPkts)
	}
	fmt.Printf("wall time         %v\n", wall.Round(time.Millisecond))

	if r.Telemetry != nil {
		fmt.Printf("\n--- telemetry ---\n%s", r.Telemetry.Summary())
		if *telemOut != "" {
			if err := writeTelemetry(*telemOut, r.Telemetry); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("telemetry written to %s\n", *telemOut)
		}
	}
}

// parseLink parses a link spec like "s3-s10" (switch 3 to switch 10) or
// "h5-s0" (host 5 to switch 0) into a pair of node refs.
func parseLink(spec string) (a, b topology.NodeRef, err error) {
	parseNode := func(s string) (topology.NodeRef, error) {
		if len(s) < 2 {
			return topology.NodeRef{}, fmt.Errorf("bad node %q in link spec %q (want sN or hN)", s, spec)
		}
		idx, err := strconv.Atoi(s[1:])
		if err != nil || idx < 0 {
			return topology.NodeRef{}, fmt.Errorf("bad node %q in link spec %q (want sN or hN)", s, spec)
		}
		switch s[0] {
		case 's':
			return topology.SwitchRef(int32(idx)), nil
		case 'h':
			return topology.HostRef(int32(idx)), nil
		}
		return topology.NodeRef{}, fmt.Errorf("bad node %q in link spec %q (want sN or hN)", s, spec)
	}
	parts := strings.Split(spec, "-")
	if len(parts) != 2 {
		return a, b, fmt.Errorf("bad link spec %q (want e.g. s3-s10)", spec)
	}
	if a, err = parseNode(parts[0]); err != nil {
		return a, b, err
	}
	b, err = parseNode(parts[1])
	return a, b, err
}

// writeTelemetry exports the collector by file extension: .csv gets the
// wide timeline, anything else the full JSON document.
func writeTelemetry(path string, tel *telemetry.Collector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return tel.WriteCSV(f)
	}
	return tel.WriteJSON(f)
}
