// Command v2plint runs the repo's determinism & correctness lint suite
// (internal/analysis/v2plint) over a set of packages.
//
// Standalone:
//
//	go run ./cmd/v2plint ./...
//	go run ./cmd/v2plint -json ./...            # machine-readable findings
//	go run ./cmd/v2plint -fix ./...             # apply suggested fixes in place
//	go run ./cmd/v2plint -time ./...            # per-analyzer wall time on stderr
//	go run ./cmd/v2plint -jsonfile out.json ./... # plain text on stdout, JSON to a file
//
// All requested packages are loaded into one call-graph Program, so the
// interprocedural analyzers (hotpathreach, workersafe, planpure) see
// cross-package edges and interface implementations.
//
// Under the standard vet driver:
//
//	go build -o /tmp/v2plint ./cmd/v2plint
//	go vet -vettool=/tmp/v2plint ./...
//
// The exit code is 0 when the packages are clean and nonzero when any
// analyzer reports a finding; with -fix, findings that were repaired in
// place do not count against the exit code. A finding can be waived
// with a `//v2plint:allow <analyzer> <reason>` comment on or directly
// above the offending line — the reason is mandatory (allowreason).
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"switchv2p/internal/analysis/v2plint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// `go vet -vettool=` protocol probes: the build system asks the
	// tool for its version (for cache keying) and its flags before
	// handing it package config files.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			printVersion(stdout)
			return 0
		case args[0] == "-flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return v2plint.RunVetTool(args[0], stderr)
		}
	}
	var jsonOut, applyFixes, showTime bool
	var jsonFile string
	var patterns []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-json" || a == "--json":
			jsonOut = true
		case a == "-fix" || a == "--fix":
			applyFixes = true
		case a == "-time" || a == "--time":
			showTime = true
		case a == "-jsonfile" || a == "--jsonfile":
			if i+1 >= len(args) {
				fmt.Fprintln(stderr, "v2plint: -jsonfile needs a path")
				return 1
			}
			i++
			jsonFile = args[i]
		case strings.HasPrefix(a, "-jsonfile="):
			jsonFile = strings.TrimPrefix(a, "-jsonfile=")
		case a == "-h" || a == "-help" || a == "--help":
			usage(stdout)
			return 0
		default:
			if strings.HasPrefix(a, "-") {
				fmt.Fprintf(stderr, "v2plint: unknown flag %s\n", a)
				usage(stderr)
				return 1
			}
			patterns = append(patterns, a)
		}
	}

	pkgs, err := v2plint.LoadPackages("", patterns)
	if err != nil {
		fmt.Fprintf(stderr, "v2plint: %v\n", err)
		return 1
	}
	if len(pkgs) == 0 {
		if jsonOut {
			fmt.Fprintln(stdout, "[]")
		}
		return 0
	}
	// All loaded packages share one FileSet; load them into a single
	// Program so cross-package call edges and interface implementations
	// resolve before the interprocedural analyzers run.
	fs := pkgs[0].Fset
	prog := v2plint.NewProgram(fs)
	if showTime {
		prog.EnableTimings()
	}
	for _, p := range pkgs {
		prog.Add(p.Files, p.Pkg, p.Info)
	}
	diags := prog.Run(v2plint.Analyzers())
	if showTime {
		printTimings(stderr, prog.Timings())
	}

	if applyFixes {
		fixed, err := v2plint.ApplyFixes(fs, diags)
		if err != nil {
			fmt.Fprintf(stderr, "v2plint: %v\n", err)
			return 1
		}
		files := make([]string, 0, len(fixed))
		for file := range fixed {
			files = append(files, file)
		}
		sort.Strings(files)
		for _, file := range files {
			content := fixed[file]
			mode := os.FileMode(0o644)
			if st, err := os.Stat(file); err == nil {
				mode = st.Mode().Perm()
			}
			if err := os.WriteFile(file, content, mode); err != nil {
				fmt.Fprintf(stderr, "v2plint: %v\n", err)
				return 1
			}
			fmt.Fprintf(stderr, "v2plint: fixed %s\n", relPath(file))
		}
		// Only findings without a fix remain actionable.
		var rest []v2plint.Diagnostic
		for _, d := range diags {
			if len(d.Fixes) == 0 {
				rest = append(rest, d)
			}
		}
		diags = rest
	}

	if jsonFile != "" {
		var buf bytes.Buffer
		if err := encodeFindings(&buf, fs, diags); err != nil {
			fmt.Fprintf(stderr, "v2plint: %v\n", err)
			return 1
		}
		if err := os.WriteFile(jsonFile, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintf(stderr, "v2plint: %v\n", err)
			return 1
		}
	}
	if jsonOut {
		if err := encodeFindings(stdout, fs, diags); err != nil {
			fmt.Fprintf(stderr, "v2plint: %v\n", err)
			return 1
		}
	} else {
		// file:line:col relative to the working directory — the format
		// .github/v2plint-problem-matcher.json turns into annotations.
		for _, d := range diags {
			pos := fs.Position(d.Pos)
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", relPath(pos.Filename), pos.Line, pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "v2plint: %d finding(s)\n", len(diags))
		return 2
	}
	return 0
}

// encodeFindings writes the diagnostics as the indented JSON array that
// -json prints and -jsonfile persists for CI artifacts.
func encodeFindings(w io.Writer, fs *token.FileSet, diags []v2plint.Diagnostic) error {
	type finding struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
		Fix      string `json:"fix,omitempty"`
	}
	out := make([]finding, 0, len(diags))
	for _, d := range diags {
		pos := fs.Position(d.Pos)
		f := finding{
			File:     relPath(pos.Filename),
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
		if len(d.Fixes) > 0 {
			f.Fix = d.Fixes[0].Message
		}
		out = append(out, f)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// printTimings reports per-analyzer wall time (plus the shared
// "callgraph" construction entry), slowest first.
func printTimings(w io.Writer, timings map[string]time.Duration) {
	names := make([]string, 0, len(timings))
	for name := range timings {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if timings[names[i]] != timings[names[j]] {
			return timings[names[i]] > timings[names[j]]
		}
		return names[i] < names[j]
	})
	for _, name := range names {
		fmt.Fprintf(w, "v2plint: %-14s %s\n", name, timings[name].Round(time.Microsecond))
	}
}

// relPath shortens a file path relative to the working directory for
// readable output; absolute paths are kept when outside it.
func relPath(file string) string {
	wd, err := os.Getwd()
	if err != nil {
		return file
	}
	rel, err := filepath.Rel(wd, file)
	if err != nil || strings.HasPrefix(rel, "..") {
		return file
	}
	return rel
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: v2plint [-json] [-jsonfile path] [-fix] [-time] [packages]")
	fmt.Fprintln(w, "  -json           emit findings as a JSON array (file/line/col/analyzer/message/fix)")
	fmt.Fprintln(w, "  -jsonfile path  write the JSON array to path while keeping plain text on stdout")
	fmt.Fprintln(w, "  -fix            apply suggested fixes in place; unfixable findings still fail")
	fmt.Fprintln(w, "  -time           report per-analyzer wall time on stderr")
	fmt.Fprintln(w, "\nAnalyzers:")
	for _, a := range v2plint.Analyzers() {
		fmt.Fprintf(w, "  %-14s %s\n", a.Name, a.Doc)
	}
}

// printVersion answers the -V=full probe in the format cmd/go's toolID
// parser expects: "<name> version devel ... buildID=<content-id>".
// The content id is a hash of the executable so that vet's result
// cache is invalidated whenever the tool changes.
func printVersion(w io.Writer) {
	name := filepath.Base(os.Args[0])
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil))
			}
			f.Close()
		}
	}
	fmt.Fprintf(w, "%s version devel comments-go-here buildID=%s\n", name, id)
}
