// Command v2plint runs the repo's determinism & correctness lint suite
// (internal/analysis/v2plint) over a set of packages.
//
// Standalone:
//
//	go run ./cmd/v2plint ./...
//
// Under the standard vet driver:
//
//	go build -o /tmp/v2plint ./cmd/v2plint
//	go vet -vettool=/tmp/v2plint ./...
//
// The exit code is 0 when the packages are clean and nonzero when any
// analyzer reports a finding. A finding can be waived with a
// `//v2plint:allow <analyzer>` comment on or directly above the
// offending line.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"switchv2p/internal/analysis/v2plint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// `go vet -vettool=` protocol probes: the build system asks the
	// tool for its version (for cache keying) and its flags before
	// handing it package config files.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			printVersion(stdout)
			return 0
		case args[0] == "-flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return v2plint.RunVetTool(args[0], stderr)
		}
	}
	for _, a := range args {
		if a == "-h" || a == "-help" || a == "--help" {
			usage(stdout)
			return 0
		}
	}

	pkgs, err := v2plint.LoadPackages("", args)
	if err != nil {
		fmt.Fprintf(stderr, "v2plint: %v\n", err)
		return 1
	}
	findings := 0
	for _, p := range pkgs {
		for _, d := range v2plint.RunPackage(p.Fset, p.Files, p.Pkg, p.Info, v2plint.Analyzers()) {
			fmt.Fprintf(stdout, "%s: %s: %s\n", p.Fset.Position(d.Pos), d.Analyzer, d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "v2plint: %d finding(s)\n", findings)
		return 2
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: v2plint [packages]")
	fmt.Fprintln(w, "\nAnalyzers:")
	for _, a := range v2plint.Analyzers() {
		fmt.Fprintf(w, "  %-14s %s\n", a.Name, a.Doc)
	}
}

// printVersion answers the -V=full probe in the format cmd/go's toolID
// parser expects: "<name> version devel ... buildID=<content-id>".
// The content id is a hash of the executable so that vet's result
// cache is invalidated whenever the tool changes.
func printVersion(w io.Writer) {
	name := filepath.Base(os.Args[0])
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil))
			}
			f.Close()
		}
	}
	fmt.Fprintf(w, "%s version devel comments-go-here buildID=%s\n", name, id)
}
