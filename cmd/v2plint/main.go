// Command v2plint runs the repo's determinism & correctness lint suite
// (internal/analysis/v2plint) over a set of packages.
//
// Standalone:
//
//	go run ./cmd/v2plint ./...
//	go run ./cmd/v2plint -json ./...            # machine-readable findings
//	go run ./cmd/v2plint -fix ./...             # apply suggested fixes in place
//	go run ./cmd/v2plint -time ./...            # per-analyzer wall time on stderr
//	go run ./cmd/v2plint -jsonfile out.json ./... # plain text on stdout, JSON to a file
//	go run ./cmd/v2plint -cache ./...           # incremental: unchanged packages replay from cache
//
// All requested packages are loaded into one call-graph Program, so the
// interprocedural analyzers (hotpathreach, workersafe, planpure,
// detflow, shardstate) see cross-package edges and interface
// implementations. With -cache, unchanged packages (keyed by a content
// hash of their sources, their dependency cone, and the tool binary)
// replay stored findings without being type-checked, and edited ones
// are analyzed per package against cached fact summaries — vettool
// semantics; see internal/analysis/v2plint/cache.go.
//
// Under the standard vet driver:
//
//	go build -o /tmp/v2plint ./cmd/v2plint
//	go vet -vettool=/tmp/v2plint ./...
//
// The exit code is 0 when the packages are clean and nonzero when any
// analyzer reports a finding; with -fix, findings that were repaired in
// place do not count against the exit code. A finding can be waived
// with a `//v2plint:allow <analyzer> <reason>` comment on or directly
// above the offending line — the reason is mandatory (allowreason).
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"switchv2p/internal/analysis/v2plint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// `go vet -vettool=` protocol probes: the build system asks the
	// tool for its version (for cache keying) and its flags before
	// handing it package config files.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			printVersion(stdout)
			return 0
		case args[0] == "-flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return v2plint.RunVetTool(args[0], stderr)
		}
	}
	var jsonOut, applyFixes, showTime, useCache bool
	var jsonFile, cacheDir string
	var patterns []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-json" || a == "--json":
			jsonOut = true
		case a == "-fix" || a == "--fix":
			applyFixes = true
		case a == "-time" || a == "--time":
			showTime = true
		case a == "-cache" || a == "--cache":
			useCache = true
		case a == "-cachedir" || a == "--cachedir":
			if i+1 >= len(args) {
				fmt.Fprintln(stderr, "v2plint: -cachedir needs a path")
				return 1
			}
			i++
			cacheDir = args[i]
			useCache = true
		case strings.HasPrefix(a, "-cachedir="):
			cacheDir = strings.TrimPrefix(a, "-cachedir=")
			useCache = true
		case a == "-jsonfile" || a == "--jsonfile":
			if i+1 >= len(args) {
				fmt.Fprintln(stderr, "v2plint: -jsonfile needs a path")
				return 1
			}
			i++
			jsonFile = args[i]
		case strings.HasPrefix(a, "-jsonfile="):
			jsonFile = strings.TrimPrefix(a, "-jsonfile=")
		case a == "-h" || a == "-help" || a == "--help":
			usage(stdout)
			return 0
		default:
			if strings.HasPrefix(a, "-") {
				fmt.Fprintf(stderr, "v2plint: unknown flag %s\n", a)
				usage(stderr)
				return 1
			}
			patterns = append(patterns, a)
		}
	}

	if useCache && applyFixes {
		// Fixes rewrite sources mid-run; entries written before the
		// rewrite would be stale the moment it lands.
		fmt.Fprintln(stderr, "v2plint: -fix disables the cache")
		useCache = false
	}
	if useCache {
		if cacheDir == "" {
			base, err := os.UserCacheDir()
			if err != nil {
				fmt.Fprintf(stderr, "v2plint: %v (pass -cachedir)\n", err)
				return 1
			}
			cacheDir = filepath.Join(base, "v2plint")
		}
		return runCached(patterns, cacheDir, jsonOut, jsonFile, showTime, stdout, stderr)
	}

	pkgs, err := v2plint.LoadPackages("", patterns)
	if err != nil {
		fmt.Fprintf(stderr, "v2plint: %v\n", err)
		return 1
	}
	if len(pkgs) == 0 {
		if jsonOut {
			fmt.Fprintln(stdout, "[]")
		}
		return 0
	}
	// All loaded packages share one FileSet; load them into a single
	// Program so cross-package call edges and interface implementations
	// resolve before the interprocedural analyzers run.
	fs := pkgs[0].Fset
	prog := v2plint.NewProgram(fs)
	if showTime {
		prog.EnableTimings()
	}
	for _, p := range pkgs {
		prog.Add(p.Files, p.Pkg, p.Info)
	}
	diags := prog.Run(v2plint.Analyzers())
	if showTime {
		printTimings(stderr, prog.Timings())
	}

	if applyFixes {
		fixed, err := v2plint.ApplyFixes(fs, diags)
		if err != nil {
			fmt.Fprintf(stderr, "v2plint: %v\n", err)
			return 1
		}
		files := make([]string, 0, len(fixed))
		for file := range fixed {
			files = append(files, file)
		}
		sort.Strings(files)
		for _, file := range files {
			content := fixed[file]
			mode := os.FileMode(0o644)
			if st, err := os.Stat(file); err == nil {
				mode = st.Mode().Perm()
			}
			if err := os.WriteFile(file, content, mode); err != nil {
				fmt.Fprintf(stderr, "v2plint: %v\n", err)
				return 1
			}
			fmt.Fprintf(stderr, "v2plint: fixed %s\n", relPath(file))
		}
		// Only findings without a fix remain actionable.
		var rest []v2plint.Diagnostic
		for _, d := range diags {
			if len(d.Fixes) == 0 {
				rest = append(rest, d)
			}
		}
		diags = rest
	}

	return emit(v2plint.FindingsFromDiagnostics(fs, diags), jsonOut, jsonFile, stdout, stderr)
}

// runCached is the incremental driver path: unchanged packages replay
// their findings from the content-hashed cache; edited ones (and their
// dependents) are analyzed vettool-style and re-stored.
func runCached(patterns []string, cacheDir string, jsonOut bool, jsonFile string, showTime bool, stdout, stderr io.Writer) int {
	findings, stats, timings, err := v2plint.RunCached("", patterns, v2plint.Analyzers(), cacheDir, showTime)
	if err != nil {
		fmt.Fprintf(stderr, "v2plint: %v\n", err)
		return 1
	}
	if showTime {
		printTimings(stderr, timings)
	}
	fmt.Fprintf(stderr, "v2plint: cache %d/%d package(s) hit, %d analyzed\n", stats.Hits, stats.Packages, stats.Misses)
	return emit(findings, jsonOut, jsonFile, stdout, stderr)
}

// emit renders the globally sorted findings — text or JSON, optionally
// mirrored to -jsonfile — and returns the process exit code.
func emit(findings []v2plint.Finding, jsonOut bool, jsonFile string, stdout, stderr io.Writer) int {
	v2plint.SortFindings(findings)
	if jsonFile != "" {
		var buf bytes.Buffer
		if err := encodeFindings(&buf, findings); err != nil {
			fmt.Fprintf(stderr, "v2plint: %v\n", err)
			return 1
		}
		if err := os.WriteFile(jsonFile, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintf(stderr, "v2plint: %v\n", err)
			return 1
		}
	}
	if jsonOut {
		if err := encodeFindings(stdout, findings); err != nil {
			fmt.Fprintf(stderr, "v2plint: %v\n", err)
			return 1
		}
	} else {
		// file:line:col relative to the working directory — the format
		// .github/v2plint-problem-matcher.json turns into annotations.
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", relPath(f.File), f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "v2plint: %d finding(s)\n", len(findings))
		return 2
	}
	return 0
}

// encodeFindings writes the findings as the indented JSON array that
// -json prints and -jsonfile persists for CI artifacts, with paths
// shortened relative to the working directory.
func encodeFindings(w io.Writer, findings []v2plint.Finding) error {
	out := make([]v2plint.Finding, 0, len(findings))
	for _, f := range findings {
		f.File = relPath(f.File)
		out = append(out, f)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// printTimings reports per-analyzer wall time (plus the shared
// "callgraph" construction entry), slowest first.
func printTimings(w io.Writer, timings map[string]time.Duration) {
	names := make([]string, 0, len(timings))
	for name := range timings {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if timings[names[i]] != timings[names[j]] {
			return timings[names[i]] > timings[names[j]]
		}
		return names[i] < names[j]
	})
	for _, name := range names {
		fmt.Fprintf(w, "v2plint: %-14s %s\n", name, timings[name].Round(time.Microsecond))
	}
}

// relPath shortens a file path relative to the working directory for
// readable output; absolute paths are kept when outside it.
func relPath(file string) string {
	wd, err := os.Getwd()
	if err != nil {
		return file
	}
	rel, err := filepath.Rel(wd, file)
	if err != nil || strings.HasPrefix(rel, "..") {
		return file
	}
	return rel
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: v2plint [-json] [-jsonfile path] [-fix] [-time] [-cache] [-cachedir path] [packages]")
	fmt.Fprintln(w, "  -json           emit findings as a JSON array (file/line/col/analyzer/message/fix)")
	fmt.Fprintln(w, "  -jsonfile path  write the JSON array to path while keeping plain text on stdout")
	fmt.Fprintln(w, "  -fix            apply suggested fixes in place; unfixable findings still fail")
	fmt.Fprintln(w, "  -time           report per-analyzer wall time on stderr")
	fmt.Fprintln(w, "  -cache          replay unchanged packages from the content-hashed cache")
	fmt.Fprintln(w, "  -cachedir path  cache location (implies -cache; default os.UserCacheDir()/v2plint)")
	fmt.Fprintln(w, "\nAnalyzers:")
	for _, a := range v2plint.Analyzers() {
		fmt.Fprintf(w, "  %-14s %s\n", a.Name, a.Doc)
	}
}

// printVersion answers the -V=full probe in the format cmd/go's toolID
// parser expects: "<name> version devel ... buildID=<content-id>".
// The content id is a hash of the executable so that vet's result
// cache is invalidated whenever the tool changes.
func printVersion(w io.Writer) {
	name := filepath.Base(os.Args[0])
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil))
			}
			f.Close()
		}
	}
	fmt.Fprintf(w, "%s version devel comments-go-here buildID=%s\n", name, id)
}
