// Command v2plint runs the repo's determinism & correctness lint suite
// (internal/analysis/v2plint) over a set of packages.
//
// Standalone:
//
//	go run ./cmd/v2plint ./...
//	go run ./cmd/v2plint -json ./...   # machine-readable findings
//	go run ./cmd/v2plint -fix ./...    # apply suggested fixes in place
//
// Under the standard vet driver:
//
//	go build -o /tmp/v2plint ./cmd/v2plint
//	go vet -vettool=/tmp/v2plint ./...
//
// The exit code is 0 when the packages are clean and nonzero when any
// analyzer reports a finding; with -fix, findings that were repaired in
// place do not count against the exit code. A finding can be waived
// with a `//v2plint:allow <analyzer> <reason>` comment on or directly
// above the offending line — the reason is mandatory (allowreason).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"switchv2p/internal/analysis/v2plint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// `go vet -vettool=` protocol probes: the build system asks the
	// tool for its version (for cache keying) and its flags before
	// handing it package config files.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			printVersion(stdout)
			return 0
		case args[0] == "-flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return v2plint.RunVetTool(args[0], stderr)
		}
	}
	var jsonOut, applyFixes bool
	var patterns []string
	for _, a := range args {
		switch a {
		case "-json", "--json":
			jsonOut = true
		case "-fix", "--fix":
			applyFixes = true
		case "-h", "-help", "--help":
			usage(stdout)
			return 0
		default:
			if strings.HasPrefix(a, "-") {
				fmt.Fprintf(stderr, "v2plint: unknown flag %s\n", a)
				usage(stderr)
				return 1
			}
			patterns = append(patterns, a)
		}
	}

	pkgs, err := v2plint.LoadPackages("", patterns)
	if err != nil {
		fmt.Fprintf(stderr, "v2plint: %v\n", err)
		return 1
	}
	var diags []v2plint.Diagnostic
	for _, p := range pkgs {
		diags = append(diags, v2plint.RunPackage(p.Fset, p.Files, p.Pkg, p.Info, v2plint.Analyzers())...)
	}
	if len(pkgs) == 0 {
		if jsonOut {
			fmt.Fprintln(stdout, "[]")
		}
		return 0
	}
	// All loaded packages share one FileSet.
	fs := pkgs[0].Fset

	if applyFixes {
		fixed, err := v2plint.ApplyFixes(fs, diags)
		if err != nil {
			fmt.Fprintf(stderr, "v2plint: %v\n", err)
			return 1
		}
		files := make([]string, 0, len(fixed))
		for file := range fixed {
			files = append(files, file)
		}
		sort.Strings(files)
		for _, file := range files {
			content := fixed[file]
			mode := os.FileMode(0o644)
			if st, err := os.Stat(file); err == nil {
				mode = st.Mode().Perm()
			}
			if err := os.WriteFile(file, content, mode); err != nil {
				fmt.Fprintf(stderr, "v2plint: %v\n", err)
				return 1
			}
			fmt.Fprintf(stderr, "v2plint: fixed %s\n", relPath(file))
		}
		// Only findings without a fix remain actionable.
		var rest []v2plint.Diagnostic
		for _, d := range diags {
			if len(d.Fixes) == 0 {
				rest = append(rest, d)
			}
		}
		diags = rest
	}

	if jsonOut {
		type finding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
			Fix      string `json:"fix,omitempty"`
		}
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			pos := fs.Position(d.Pos)
			f := finding{
				File:     relPath(pos.Filename),
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}
			if len(d.Fixes) > 0 {
				f.Fix = d.Fixes[0].Message
			}
			out = append(out, f)
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "v2plint: %v\n", err)
			return 1
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s: %s: %s\n", fs.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "v2plint: %d finding(s)\n", len(diags))
		return 2
	}
	return 0
}

// relPath shortens a file path relative to the working directory for
// readable output; absolute paths are kept when outside it.
func relPath(file string) string {
	wd, err := os.Getwd()
	if err != nil {
		return file
	}
	rel, err := filepath.Rel(wd, file)
	if err != nil || strings.HasPrefix(rel, "..") {
		return file
	}
	return rel
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: v2plint [-json] [-fix] [packages]")
	fmt.Fprintln(w, "  -json  emit findings as a JSON array (file/line/col/analyzer/message/fix)")
	fmt.Fprintln(w, "  -fix   apply suggested fixes in place; unfixable findings still fail")
	fmt.Fprintln(w, "\nAnalyzers:")
	for _, a := range v2plint.Analyzers() {
		fmt.Fprintf(w, "  %-14s %s\n", a.Name, a.Doc)
	}
}

// printVersion answers the -V=full probe in the format cmd/go's toolID
// parser expects: "<name> version devel ... buildID=<content-id>".
// The content id is a hash of the executable so that vet's result
// cache is invalidated whenever the tool changes.
func printVersion(w io.Writer) {
	name := filepath.Base(os.Args[0])
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil))
			}
			f.Close()
		}
	}
	fmt.Fprintf(w, "%s version devel comments-go-here buildID=%s\n", name, id)
}
