package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"switchv2p/internal/analysis/v2plint"
)

// TestRepoIsClean is the acceptance smoke test: the whole module must
// lint clean. Any new time.Now, global-rand, or unsorted-map-range
// violation anywhere in the repo turns this test (and CI) red.
func TestRepoIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"switchv2p/..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("v2plint found violations (exit %d):\n%s%s", code, stdout.String(), stderr.String())
	}
}

func TestVersionProbe(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-V=full"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-V=full: exit %d", code)
	}
	f := strings.Fields(stdout.String())
	// cmd/go's toolID parser requires "<name> version devel ... buildID=<id>".
	if len(f) < 3 || f[1] != "version" || f[2] != "devel" || !strings.HasPrefix(f[len(f)-1], "buildID=") {
		t.Fatalf("-V=full output not in cmd/go toolID format: %q", stdout.String())
	}
}

func TestFlagsProbe(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-flags: exit %d", code)
	}
	if strings.TrimSpace(stdout.String()) != "[]" {
		t.Fatalf("-flags = %q, want []", stdout.String())
	}
}

// TestJSONCleanOutput pins the machine-readable contract ci.sh relies
// on: a clean run with -json prints an empty JSON array (never empty
// output) and exits 0.
func TestJSONCleanOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "switchv2p/internal/simtime"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("-json on clean package: exit %d\n%s%s", code, stdout.String(), stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Fatalf("-json clean output = %q, want []", got)
	}
}

// TestJSONFileOutput pins the -jsonfile contract CI's artifact upload
// relies on: the JSON array goes to the file while stdout stays in
// plain-text (problem-matcher) format.
func TestJSONFileOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "findings.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-jsonfile", path, "switchv2p/internal/simtime"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("-jsonfile on clean package: exit %d\n%s%s", code, stdout.String(), stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("findings file not written: %v", err)
	}
	if got := strings.TrimSpace(string(data)); got != "[]" {
		t.Fatalf("findings file = %q, want []", got)
	}
	if out := stdout.String(); out != "" {
		t.Fatalf("stdout = %q, want empty plain-text output on a clean run", out)
	}
}

// TestEmitGloballySorted pins the output-ordering contract: findings
// are rendered sorted by (file, line, column, analyzer) across
// packages, in both the plain-text and JSON formats, whatever order
// the analysis (or the cache replay) produced them in.
func TestEmitGloballySorted(t *testing.T) {
	unsorted := []v2plint.Finding{
		{File: "/b/late.go", Line: 3, Col: 1, Analyzer: "wallclock", Message: "m4"},
		{File: "/a/early.go", Line: 10, Col: 2, Analyzer: "detflow", Message: "m2"},
		{File: "/a/early.go", Line: 10, Col: 2, Analyzer: "allowreason", Message: "m1"},
		{File: "/a/early.go", Line: 10, Col: 9, Analyzer: "detrange", Message: "m3"},
	}
	var stdout, stderr bytes.Buffer
	if code := emit(append([]v2plint.Finding(nil), unsorted...), false, "", &stdout, &stderr); code != 2 {
		t.Fatalf("emit with findings: exit %d, want 2", code)
	}
	var got []string
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		got = append(got, line[strings.LastIndex(line, "m"):])
	}
	want := []string{"m1", "m2", "m3", "m4"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("text output order = %v, want %v", got, want)
	}

	stdout.Reset()
	if code := emit(append([]v2plint.Finding(nil), unsorted...), true, "", &stdout, &stderr); code != 2 {
		t.Fatalf("emit -json with findings: exit %d, want 2", code)
	}
	var decoded []v2plint.Finding
	if err := json.Unmarshal(stdout.Bytes(), &decoded); err != nil {
		t.Fatalf("-json output: %v", err)
	}
	for i, f := range decoded {
		if f.Message != want[i] {
			t.Fatalf("json output order: got %s at %d, want %s", f.Message, i, want[i])
		}
	}
}

// TestCacheFlagDriver runs the cached path end to end on a real repo
// package: cold then warm, clean both times, with the warm run a full
// replay.
func TestCacheFlagDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list -export")
	}
	cacheDir := filepath.Join(t.TempDir(), "cache")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-cachedir", cacheDir, "switchv2p/internal/simtime"}, &stdout, &stderr); code != 0 {
		t.Fatalf("cold cached run: exit %d\n%s%s", code, stdout.String(), stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-cachedir", cacheDir, "switchv2p/internal/simtime"}, &stdout, &stderr); code != 0 {
		t.Fatalf("warm cached run: exit %d\n%s%s", code, stdout.String(), stderr.String())
	}
	if msg := stderr.String(); !strings.Contains(msg, "cache 1/1 package(s) hit, 0 analyzed") {
		t.Fatalf("warm run stats line missing full hit: %q", msg)
	}
}

func TestUnknownFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 1 {
		t.Fatalf("unknown flag: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "unknown flag") {
		t.Fatalf("unknown flag: stderr %q does not mention it", stderr.String())
	}
}

// TestVetConfigRoundTrip drives the unit-checker protocol by hand:
// a dependency package is processed VetxOnly (producing summary facts
// in its .vetx), then the dependent package is analyzed with and
// without those facts. With facts, the hot root's cross-package
// allocation is reported with its witness chain; without, the analyzer
// degrades gracefully to silence — pinning both that facts work and
// that their absence cannot produce false positives.
func TestVetConfigRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list -export")
	}
	dir := t.TempDir()
	writeFile := func(rel, content string) string {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	writeFile("go.mod", "module example\n\ngo 1.22\n")
	helperGo := writeFile("helper/helper.go",
		"package helper\n\nfunc Describe(n int) []byte {\n\treturn make([]byte, n)\n}\n")
	hotGo := writeFile("hot/hot.go",
		"package hot\n\nimport \"example/helper\"\n\n//v2plint:hotpath\nfunc Fanout(n int) {\n\t_ = helper.Describe(n)\n}\n")

	// Export data for the helper, as cmd/go would hand it to the tool.
	list := exec.Command("go", "list", "-export", "-f", "{{.Export}}", "./helper")
	list.Dir = dir
	exportOut, err := list.Output()
	if err != nil {
		t.Fatalf("go list -export: %v", err)
	}
	helperExport := strings.TrimSpace(string(exportOut))
	if helperExport == "" {
		t.Fatal("go list -export returned no export file")
	}

	type cfg struct {
		ID          string
		Compiler    string
		Dir         string
		ImportPath  string
		GoFiles     []string
		ImportMap   map[string]string
		PackageFile map[string]string
		Standard    map[string]bool
		PackageVetx map[string]string
		VetxOnly    bool
		VetxOutput  string
	}
	writeCfg := func(name string, c cfg) string {
		t.Helper()
		data, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		return writeFile(name, string(data))
	}

	// Phase 1: facts-only pass over the dependency.
	helperVetx := filepath.Join(dir, "helper.vetx")
	helperCfg := writeCfg("helper.cfg", cfg{
		ID: "example/helper", Compiler: "gc",
		Dir: filepath.Dir(helperGo), ImportPath: "example/helper",
		GoFiles: []string{helperGo}, VetxOnly: true, VetxOutput: helperVetx,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{helperCfg}, &stdout, &stderr); code != 0 {
		t.Fatalf("helper VetxOnly pass: exit %d\n%s", code, stderr.String())
	}
	facts, err := os.ReadFile(helperVetx)
	if err != nil {
		t.Fatalf("helper vetx not written: %v", err)
	}
	var summaries map[string]struct {
		Display string `json:"display"`
		Effects map[string]struct {
			Detail string `json:"detail"`
		} `json:"effects"`
	}
	if err := json.Unmarshal(facts, &summaries); err != nil {
		t.Fatalf("helper vetx is not summary JSON: %v\n%s", err, facts)
	}
	s, ok := summaries["example/helper.Describe"]
	if !ok {
		t.Fatalf("vetx facts missing example/helper.Describe: %s", facts)
	}
	if s.Effects["alloc"].Detail != "make" {
		t.Fatalf("Describe alloc effect = %+v, want detail \"make\"", s.Effects)
	}

	// Phase 2: analyze the dependent package with the facts — the
	// cross-package chain must be reported.
	hotVetx := filepath.Join(dir, "hot.vetx")
	hotCfg := writeCfg("hot.cfg", cfg{
		ID: "example/hot", Compiler: "gc",
		Dir: filepath.Dir(hotGo), ImportPath: "example/hot",
		GoFiles:     []string{hotGo},
		ImportMap:   map[string]string{"example/helper": "example/helper"},
		PackageFile: map[string]string{"example/helper": helperExport},
		PackageVetx: map[string]string{"example/helper": helperVetx},
		VetxOutput:  hotVetx,
	})
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{hotCfg}, &stdout, &stderr); code != 2 {
		t.Fatalf("hot pass with facts: exit %d, want 2\n%s", code, stderr.String())
	}
	if msg := stderr.String(); !strings.Contains(msg, "hotpathreach") ||
		!strings.Contains(msg, "Fanout → helper.Describe → make") {
		t.Fatalf("hot pass with facts: missing witness chain in output:\n%s", msg)
	}

	// Phase 3: same package without the dependency facts — the graph
	// cannot see into helper, so the tool stays silent (degradation,
	// not false positives).
	hotNoFactsCfg := writeCfg("hotnofacts.cfg", cfg{
		ID: "example/hot", Compiler: "gc",
		Dir: filepath.Dir(hotGo), ImportPath: "example/hot",
		GoFiles:     []string{hotGo},
		ImportMap:   map[string]string{"example/helper": "example/helper"},
		PackageFile: map[string]string{"example/helper": helperExport},
	})
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{hotNoFactsCfg}, &stdout, &stderr); code != 0 {
		t.Fatalf("hot pass without facts: exit %d, want 0\n%s", code, stderr.String())
	}

	// A standard-library package writes an empty vetx and is never
	// analyzed.
	stdVetx := filepath.Join(dir, "std.vetx")
	stdCfg := writeCfg("std.cfg", cfg{
		ID: "fmt", Compiler: "gc", Dir: dir, ImportPath: "fmt",
		Standard: map[string]bool{"fmt": true}, VetxOnly: true, VetxOutput: stdVetx,
	})
	if code := run([]string{stdCfg}, &stdout, &stderr); code != 0 {
		t.Fatalf("standard package pass: exit %d\n%s", code, stderr.String())
	}
	if data, err := os.ReadFile(stdVetx); err != nil || len(data) != 0 {
		t.Fatalf("standard package vetx: data %q err %v, want empty file", data, err)
	}
}

// TestVetToolProtocol builds the binary and runs it under the real
// `go vet -vettool=` driver on a couple of simulation packages.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	bin := filepath.Join(t.TempDir(), "v2plint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building v2plint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin,
		"switchv2p/internal/simtime", "switchv2p/internal/eventq", "switchv2p/internal/vnet")
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool: %v\n%s", err, out)
	}
}
