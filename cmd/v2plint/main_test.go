package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsClean is the acceptance smoke test: the whole module must
// lint clean. Any new time.Now, global-rand, or unsorted-map-range
// violation anywhere in the repo turns this test (and CI) red.
func TestRepoIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"switchv2p/..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("v2plint found violations (exit %d):\n%s%s", code, stdout.String(), stderr.String())
	}
}

func TestVersionProbe(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-V=full"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-V=full: exit %d", code)
	}
	f := strings.Fields(stdout.String())
	// cmd/go's toolID parser requires "<name> version devel ... buildID=<id>".
	if len(f) < 3 || f[1] != "version" || f[2] != "devel" || !strings.HasPrefix(f[len(f)-1], "buildID=") {
		t.Fatalf("-V=full output not in cmd/go toolID format: %q", stdout.String())
	}
}

func TestFlagsProbe(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-flags: exit %d", code)
	}
	if strings.TrimSpace(stdout.String()) != "[]" {
		t.Fatalf("-flags = %q, want []", stdout.String())
	}
}

// TestJSONCleanOutput pins the machine-readable contract ci.sh relies
// on: a clean run with -json prints an empty JSON array (never empty
// output) and exits 0.
func TestJSONCleanOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "switchv2p/internal/simtime"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("-json on clean package: exit %d\n%s%s", code, stdout.String(), stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Fatalf("-json clean output = %q, want []", got)
	}
}

func TestUnknownFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 1 {
		t.Fatalf("unknown flag: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "unknown flag") {
		t.Fatalf("unknown flag: stderr %q does not mention it", stderr.String())
	}
}

// TestVetToolProtocol builds the binary and runs it under the real
// `go vet -vettool=` driver on a couple of simulation packages.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	bin := filepath.Join(t.TempDir(), "v2plint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building v2plint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin,
		"switchv2p/internal/simtime", "switchv2p/internal/eventq", "switchv2p/internal/vnet")
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool: %v\n%s", err, out)
	}
}
