// Command tracegen generates a workload and prints its address-reuse
// characteristics, mirroring the paper's §5 "Address reuse
// characteristics" analysis. Use it to inspect how each synthetic trace
// reproduces the published reuse structure.
//
// Example:
//
//	tracegen -trace hadoop -vms 10240 -duration 15ms
//
// The container-overlay workload is parameterized directly:
//
//	tracegen -density 64 -fanout 3 -reuse 0.7 -o containers.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"switchv2p/internal/containers"
	"switchv2p/internal/netaddr"
	"switchv2p/internal/simtime"
	"switchv2p/internal/trace"
	"switchv2p/internal/transport"
)

func main() {
	var (
		name     = flag.String("trace", "hadoop", "trace: hadoop, websearch, alibaba, microbursts, video, containers, all")
		vms      = flag.Int("vms", 10240, "VM population")
		servers  = flag.Int("servers", 128, "physical servers (load calibration)")
		load     = flag.Float64("load", 0.30, "offered load fraction")
		duration = flag.Duration("duration", time.Millisecond, "traced interval (simulated)")
		maxFlows = flag.Int("maxflows", 0, "cap on generated flows")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("o", "", "also write the workload to this file (JSON lines)")

		// Container-overlay knobs (imply -trace containers).
		density = flag.Int("density", 0, "containers per host; population = density × servers (implies -trace containers)")
		fanOut  = flag.Int("fanout", 0, "downstream services called per request (implies -trace containers)")
		reuse   = flag.Float64("reuse", -1, "endpoint reuse probability in [0,1] (implies -trace containers)")
	)
	flag.Parse()

	// Any container knob switches to the container-overlay generator;
	// zero/unset knobs take the Spec defaults inside the generator.
	containerSpec := containers.Spec{FanOut: *fanOut}
	if *reuse > 0 {
		containerSpec.Reuse = *reuse
	} else if *reuse == 0 {
		// Spec treats 0 as "default"; nudge to an effective zero so
		// -reuse 0 genuinely disables endpoint reuse.
		containerSpec.Reuse = 1e-12
	}
	if *density > 0 {
		containerSpec.PerHost = *density
		*vms = *density * *servers
	}
	if *density > 0 || *fanOut > 0 || *reuse >= 0 {
		*name = "containers"
		trace.Generators["containers"] = containers.Generator(containerSpec)
	}

	var alloc netaddr.VIPAllocator
	vips := make([]netaddr.VIP, *vms)
	for i := range vips {
		vips[i] = alloc.Next()
	}
	cfg := trace.Config{
		VIPs:        vips,
		Servers:     *servers,
		HostLinkBps: 100e9,
		Load:        *load,
		Duration:    simtime.FromStd(*duration),
		MaxFlows:    *maxFlows,
		Seed:        *seed,
	}

	names := []string{*name}
	if *name == "all" {
		names = []string{"hadoop", "websearch", "alibaba", "microbursts", "video", "containers"}
	}
	for _, n := range names {
		gen := trace.Generators[n]
		if gen == nil {
			fmt.Fprintf(os.Stderr, "unknown trace %q\n", n)
			os.Exit(2)
		}
		w, err := gen(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *out != "" && *name != "all" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := w.Write(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *out)
		}
		s := trace.Analyze(w)
		tcp, udp := 0, 0
		for i := range w.Flows {
			if w.Flows[i].Proto == transport.TCP {
				tcp++
			} else {
				udp++
			}
		}
		fmt.Printf("%-12s flows=%d (tcp=%d udp=%d) bytes=%dMB offeredLoad=%.2f\n",
			n, s.Flows, tcp, udp, s.TotalBytes>>20,
			trace.OfferedLoad(w, cfg.Servers, cfg.HostLinkBps, cfg.Duration))
		fmt.Printf("             destinations: distinct=%d >=2flows=%d >=10flows=%d meanReuseDist=%v\n",
			s.DistinctDests, s.DestsGE2, s.DestsGE10, s.MeanReuseDistance)
	}
}
