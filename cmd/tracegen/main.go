// Command tracegen generates a workload and prints its address-reuse
// characteristics, mirroring the paper's §5 "Address reuse
// characteristics" analysis. Use it to inspect how each synthetic trace
// reproduces the published reuse structure.
//
// Example:
//
//	tracegen -trace hadoop -vms 10240 -duration 15ms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"switchv2p/internal/netaddr"
	"switchv2p/internal/simtime"
	"switchv2p/internal/trace"
	"switchv2p/internal/transport"
)

func main() {
	var (
		name     = flag.String("trace", "hadoop", "trace: hadoop, websearch, alibaba, microbursts, video, all")
		vms      = flag.Int("vms", 10240, "VM population")
		servers  = flag.Int("servers", 128, "physical servers (load calibration)")
		load     = flag.Float64("load", 0.30, "offered load fraction")
		duration = flag.Duration("duration", time.Millisecond, "traced interval (simulated)")
		maxFlows = flag.Int("maxflows", 0, "cap on generated flows")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("o", "", "also write the workload to this file (JSON lines)")
	)
	flag.Parse()

	var alloc netaddr.VIPAllocator
	vips := make([]netaddr.VIP, *vms)
	for i := range vips {
		vips[i] = alloc.Next()
	}
	cfg := trace.Config{
		VIPs:        vips,
		Servers:     *servers,
		HostLinkBps: 100e9,
		Load:        *load,
		Duration:    simtime.FromStd(*duration),
		MaxFlows:    *maxFlows,
		Seed:        *seed,
	}

	names := []string{*name}
	if *name == "all" {
		names = []string{"hadoop", "websearch", "alibaba", "microbursts", "video"}
	}
	for _, n := range names {
		gen := trace.Generators[n]
		if gen == nil {
			fmt.Fprintf(os.Stderr, "unknown trace %q\n", n)
			os.Exit(2)
		}
		w, err := gen(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *out != "" && *name != "all" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := w.Write(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *out)
		}
		s := trace.Analyze(w)
		tcp, udp := 0, 0
		for i := range w.Flows {
			if w.Flows[i].Proto == transport.TCP {
				tcp++
			} else {
				udp++
			}
		}
		fmt.Printf("%-12s flows=%d (tcp=%d udp=%d) bytes=%dMB offeredLoad=%.2f\n",
			n, s.Flows, tcp, udp, s.TotalBytes>>20,
			trace.OfferedLoad(w, cfg.Servers, cfg.HostLinkBps, cfg.Duration))
		fmt.Printf("             destinations: distinct=%d >=2flows=%d >=10flows=%d meanReuseDist=%v\n",
			s.DistinctDests, s.DestsGE2, s.DestsGE10, s.MeanReuseDistance)
	}
}
