package main

import (
	"bytes"
	"reflect"
	"testing"

	"switchv2p/internal/containers"
	"switchv2p/internal/netaddr"
	"switchv2p/internal/simtime"
	"switchv2p/internal/trace"
)

func containerConfig(vms int) trace.Config {
	var alloc netaddr.VIPAllocator
	vips := make([]netaddr.VIP, vms)
	for i := range vips {
		vips[i] = alloc.Next()
	}
	return trace.Config{
		VIPs:        vips,
		Servers:     8,
		HostLinkBps: 100e9,
		Load:        0.30,
		Duration:    200 * simtime.Microsecond,
		MaxFlows:    500,
		Seed:        7,
	}
}

// TestContainerTraceRoundTrip pins the -containers path end to end: the
// parameterized generator produces a workload that survives the
// serialized format (-o) byte-for-byte.
func TestContainerTraceRoundTrip(t *testing.T) {
	gen := containers.Generator(containers.Spec{PerHost: 8, FanOut: 2, Reuse: 0.5})
	w, err := gen(containerConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Flows) == 0 {
		t.Fatal("generator produced no flows")
	}

	var buf bytes.Buffer
	if err := w.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != w.Name {
		t.Fatalf("name %q != %q", got.Name, w.Name)
	}
	if !reflect.DeepEqual(got.Flows, w.Flows) {
		t.Fatal("flows did not survive the round trip")
	}
}

// TestContainerKnobsChangeTrace pins that each tracegen knob actually
// reaches the generator: varying density, fan-out, or reuse produces a
// different workload.
func TestContainerKnobsChangeTrace(t *testing.T) {
	base := containers.Spec{PerHost: 8, FanOut: 2, Reuse: 0.5}
	gen := func(s containers.Spec) *trace.Workload {
		w, err := containers.Generator(s)(containerConfig(64))
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	ref := gen(base)
	for name, s := range map[string]containers.Spec{
		"fanout": {PerHost: 8, FanOut: 4, Reuse: 0.5},
		"reuse":  {PerHost: 8, FanOut: 2, Reuse: 0.95},
	} {
		if reflect.DeepEqual(gen(s).Flows, ref.Flows) {
			t.Errorf("%s knob had no effect", name)
		}
	}
}
