package main

import (
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"path/filepath"

	"switchv2p/internal/harness"
	"switchv2p/internal/p4model"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
)

// Scale selects the experiment size. "full" approaches the paper's trace
// sizes; "standard" preserves shapes at ~1/3 the wall time; "quick" is a
// smoke test.
type Scale struct {
	Name      string
	VMs       int
	Duration  simtime.Duration
	MaxFlows  int
	Fractions []float64 // cache-size sweep points (fraction of VIP space)
	FT16VMs   int
	FT16Flows int
	Seed      int64
	// Workers > 1 runs sweep points through the harness worker pool
	// (-parallel); output is identical at any worker count.
	Workers int
	// Shards > 0 runs each simulation on the sharded deterministic
	// engine with that many workers (-shards). Best-effort: schemes
	// outside the sharding whitelist stay on the serial engine.
	Shards int

	MigrationPackets int
	MigrationSenders int
}

var scales = map[string]Scale{
	"quick": {
		Name: "quick", VMs: 1024, Duration: 300 * simtime.Microsecond, MaxFlows: 1500,
		Fractions: []float64{0.1, 1.0}, FT16VMs: 20000, FT16Flows: 1500,
		MigrationPackets: 6400, MigrationSenders: 32,
	},
	// standard keeps the paper's ~5-10 flows-per-VM destination-reuse
	// ratio (99K flows / 10240 VMs) at a smaller absolute size.
	"standard": {
		Name: "standard", VMs: 4096, Duration: 3 * simtime.Millisecond, MaxFlows: 60000,
		Fractions: []float64{0.01, 0.1, 0.5, 1.0, 10}, FT16VMs: 100000, FT16Flows: 20000,
		MigrationPackets: 64000, MigrationSenders: 64,
	},
	"full": {
		Name: "full", VMs: 10240, Duration: 15 * simtime.Millisecond, MaxFlows: 100000,
		Fractions: []float64{0.01, 0.1, 0.5, 1.0, 10, 100}, FT16VMs: 410865, FT16Flows: 60000,
		MigrationPackets: 64000, MigrationSenders: 64,
	},
}

func (sc Scale) baseConfig(traceName string) harness.Config {
	return harness.Config{
		Topo:          topology.FT8(),
		VMs:           sc.VMs,
		TraceName:     traceName,
		Load:          0.30,
		Duration:      sc.Duration,
		MaxFlows:      sc.MaxFlows,
		CacheFraction: 0.5,
		Seed:          sc.Seed,
		SweepWorkers:  sc.Workers,
		Shards:        sc.Shards,
	}
}

// runPoint executes one experiment point, dropping the sharded-engine
// request for schemes outside its whitelist — -shards is best-effort
// across experiments that mix schemes.
func runPoint(cfg harness.Config) (*harness.Report, error) {
	if cfg.Shards > 0 && !harness.ShardSupported(cfg.Scheme) {
		cfg.Shards = 0
	}
	return harness.Run(cfg)
}

func newTable(headers ...string) (*tabwriter.Writer, func()) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(headers, "\t"))
	return tw, func() { tw.Flush() }
}

func us(d simtime.Duration) string { return fmt.Sprintf("%.1f", d.Micros()) }

// csvDir, when set via -csv, receives plot-ready CSV files per experiment.
var csvDir string

// writeCSV writes one experiment's CSV if -csv was given.
func writeCSV(name string, write func(w *os.File) error) {
	if csvDir == "" {
		return
	}
	f, err := os.Create(filepath.Join(csvDir, name))
	if err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
		return
	}
	defer f.Close()
	if err := write(f); err != nil {
		fmt.Fprintf(os.Stderr, "csv %s: %v\n", name, err)
	}
}

// table3 echoes the topology characteristics (Table 3).
func table3(sc Scale) error {
	tw, done := newTable("property", "FT8-10K", "FT16-400K")
	defer done()
	ft8, err := topology.New(topology.FT8())
	if err != nil {
		return err
	}
	ft16, err := topology.New(topology.FT16())
	if err != nil {
		return err
	}
	count := func(t *topology.Topology) (pods, racks, tors, cores, gws, servers int) {
		pods = t.Cfg.Pods
		racks = t.Cfg.RacksPerPod
		for _, s := range t.Switches {
			if s.Role.IsToR() {
				tors++
			}
			if s.Role == topology.RoleCore {
				cores++
			}
		}
		gws = len(t.Gateways())
		servers = len(t.Servers())
		return
	}
	p8, r8, t8, c8, g8, s8 := count(ft8)
	p16, r16, t16, c16, g16, s16 := count(ft16)
	fmt.Fprintf(tw, "#Pods\t%d\t%d\n", p8, p16)
	fmt.Fprintf(tw, "#Racks per pod\t%d\t%d\n", r8, r16)
	fmt.Fprintf(tw, "#ToR switches\t%d\t%d\n", t8, t16)
	fmt.Fprintf(tw, "#Core switches\t%d\t%d\n", c8, c16)
	fmt.Fprintf(tw, "#Gateways\t%d\t%d\n", g8, g16)
	fmt.Fprintf(tw, "#Physical servers\t%d\t%d\n", s8, s16)
	fmt.Fprintf(tw, "#VMs (configured)\t%d\t%d\n", sc.VMs, sc.FT16VMs)
	return nil
}

// fig5 runs the cache-size sweep for one FT8 trace (Figs. 5a-5d).
func fig5(sc Scale, traceName string) error {
	schemes := []string{
		harness.SchemeNoCache, harness.SchemeLocalLearning, harness.SchemeGwCache,
		harness.SchemeBluebird, harness.SchemeOnDemand, harness.SchemeDirect,
		harness.SchemeSwitchV2P,
	}
	pts, err := harness.CacheSizeSweep(sc.baseConfig(traceName), sc.Fractions, schemes)
	if err != nil {
		return err
	}
	writeCSV("fig5_"+traceName+".csv", func(w *os.File) error { return harness.WriteSweepCSV(w, pts) })
	printSweep(pts)
	return nil
}

func printSweep(pts []harness.SweepPoint) {
	tw, done := newTable("scheme", "cache", "hit-rate", "FCT(µs)", "FCTx", "first(µs)", "firstx")
	defer done()
	for _, p := range pts {
		fmt.Fprintf(tw, "%s\t%g\t%.3f\t%s\t%.2f\t%s\t%.2f\n",
			p.Scheme, p.CacheFraction, p.HitRate, us(p.FCT), p.FCTImprovement,
			us(p.FirstPacket), p.FirstPktImprovement)
	}
}

// fig6 runs the Alibaba sweep on FT16-400K.
func fig6(sc Scale) error {
	base := sc.baseConfig("alibaba")
	base.Topo = topology.FT16()
	base.VMs = sc.FT16VMs
	base.MaxFlows = sc.FT16Flows
	schemes := []string{
		harness.SchemeNoCache, harness.SchemeLocalLearning, harness.SchemeGwCache,
		harness.SchemeOnDemand, harness.SchemeDirect, harness.SchemeSwitchV2P,
	}
	pts, err := harness.CacheSizeSweep(base, sc.Fractions, schemes)
	if err != nil {
		return err
	}
	writeCSV("fig6_alibaba_ft16.csv", func(w *os.File) error { return harness.WriteSweepCSV(w, pts) })
	printSweep(pts)
	return nil
}

// fig7 prints the per-pod processed-bytes heatmap plus the §5.3 derived
// claims (total bytes ratios and packet stretch).
func fig7(sc Scale) error {
	schemes := []string{
		harness.SchemeNoCache, harness.SchemeLocalLearning, harness.SchemeGwCache,
		harness.SchemeSwitchV2P, harness.SchemeDirect,
	}
	reports := make(map[string]*harness.Report)
	tw, done := newTable("scheme", "pod1", "pod2", "pod3", "pod4", "pod5", "pod6", "pod7", "pod8", "totalMB", "stretch")
	for _, s := range schemes {
		cfg := sc.baseConfig("hadoop")
		cfg.Scheme = s
		r, err := runPoint(cfg)
		if err != nil {
			return err
		}
		reports[s] = r
		row := []string{r.Scheme}
		for _, b := range r.PerPodBytes {
			row = append(row, fmt.Sprintf("%d", b>>20))
		}
		row = append(row, fmt.Sprintf("%d", r.TotalSwitchBytes>>20), fmt.Sprintf("%.1f", r.AvgStretch))
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	done()
	nc, gw, sv, d := reports[harness.SchemeNoCache], reports[harness.SchemeGwCache],
		reports[harness.SchemeSwitchV2P], reports[harness.SchemeDirect]
	fmt.Printf("network bytes: SwitchV2P vs NoCache %.2fx, vs GwCache %.2fx, vs Direct +%.0f%%\n",
		float64(nc.TotalSwitchBytes)/float64(sv.TotalSwitchBytes),
		float64(gw.TotalSwitchBytes)/float64(sv.TotalSwitchBytes),
		100*(float64(sv.TotalSwitchBytes)/float64(d.TotalSwitchBytes)-1))
	return nil
}

// fig8 prints per-switch bytes inside gateway pod 8 (index 7).
func fig8(sc Scale) error {
	schemes := []string{
		harness.SchemeNoCache, harness.SchemeLocalLearning, harness.SchemeGwCache,
		harness.SchemeSwitchV2P,
	}
	tw, done := newTable("scheme", "sp1", "sp2", "sp3", "sp4", "tor5", "tor6", "tor7", "gwToR8")
	defer done()
	var ncGwToR, svGwToR int64
	for _, s := range schemes {
		cfg := sc.baseConfig("hadoop")
		cfg.Scheme = s
		r, err := runPoint(cfg)
		if err != nil {
			return err
		}
		row := []string{r.Scheme}
		bytes := r.PodSwitchBytes(7)
		for _, b := range bytes {
			row = append(row, fmt.Sprintf("%d", b>>20))
		}
		fmt.Fprintln(tw, strings.Join(row, "\t"))
		if s == harness.SchemeNoCache {
			ncGwToR = bytes[len(bytes)-1]
		}
		if s == harness.SchemeSwitchV2P {
			svGwToR = bytes[len(bytes)-1]
		}
	}
	if svGwToR > 0 {
		fmt.Printf("(gateway ToR traffic reduction vs NoCache: %.1fx)\n", float64(ncGwToR)/float64(svGwToR))
	}
	return nil
}

// fig9 sweeps the number of deployed gateways.
func fig9(sc Scale) error {
	schemes := []string{
		harness.SchemeNoCache, harness.SchemeLocalLearning, harness.SchemeGwCache,
		harness.SchemeSwitchV2P,
	}
	pts, err := harness.GatewaySweep(sc.baseConfig("hadoop"), []int{40, 20, 10, 8, 4}, schemes)
	if err != nil {
		return err
	}
	writeCSV("fig9_gateways.csv", func(w *os.File) error { return harness.WriteGatewayCSV(w, pts) })
	tw, done := newTable("scheme", "gateways", "FCT(µs)", "first(µs)", "drops")
	defer done()
	for _, p := range pts {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%d\n", p.Scheme, p.Gateways, us(p.FCT), us(p.FirstPacket), p.Drops)
	}
	return nil
}

// fig10 rescales the topology from 1 to 32 pods.
func fig10(sc Scale) error {
	schemes := []string{
		harness.SchemeLocalLearning, harness.SchemeGwCache, harness.SchemeSwitchV2P,
	}
	base := sc.baseConfig("hadoop")
	// Keep the VM count tied to the fixed 128 servers.
	pts, err := harness.TopologySweep(base, []int{1, 2, 4, 8, 16, 32}, schemes,
		func(pods int) (harness.Config, error) {
			cfg := base
			topoCfg, err := topology.ScaledFT8(pods)
			if err != nil {
				return cfg, err
			}
			cfg.Topo = topoCfg
			return cfg, nil
		})
	if err != nil {
		return err
	}
	writeCSV("fig10_topology.csv", func(w *os.File) error { return harness.WriteTopologyCSV(w, pts) })
	tw, done := newTable("scheme", "pods", "FCT(µs)")
	defer done()
	for _, p := range pts {
		fmt.Fprintf(tw, "%s\t%d\t%s\n", p.Scheme, p.Pods, us(p.FCT))
	}
	return nil
}

// table4 runs the VM-migration experiment for every row of Table 4.
func table4(sc Scale) error {
	type variant struct {
		label  string
		scheme string
		inval  bool
		tsvec  bool
	}
	variants := []variant{
		{"NoCache", harness.SchemeNoCache, true, true},
		{"OnDemand", harness.SchemeOnDemand, true, true},
		{"SwitchV2P w/o invalidations", harness.SchemeSwitchV2P, false, true},
		{"SwitchV2P w/o timestamp vector", harness.SchemeSwitchV2P, true, false},
		{"SwitchV2P w/ timestamp vector", harness.SchemeSwitchV2P, true, true},
	}
	tw, done := newTable("variant", "gwPkts", "avgLat", "lastMisArrival(µs)", "misdelivered", "invalidations")
	defer done()
	var ncLat simtime.Duration
	var ncMis int64
	var csvRows []*harness.MigrationResult
	for _, v := range variants {
		base := sc.baseConfig("hadoop")
		base.Scheme = v.scheme
		base.V2PInvalidation = &v.inval
		base.V2PTimestampVector = &v.tsvec
		mc := harness.DefaultMigrationConfig(base)
		mc.Senders = sc.MigrationSenders
		mc.TotalPackets = sc.MigrationPackets
		res, err := harness.Migration(mc)
		if err != nil {
			return err
		}
		if v.label == "NoCache" {
			ncLat = res.AvgPacketLatency
			ncMis = res.Misdelivered
		}
		latX := float64(res.AvgPacketLatency) / float64(ncLat)
		misX := float64(res.Misdelivered) / float64(ncMis)
		fmt.Fprintf(tw, "%s\t%.1f%%\t%.2fx\t%.0f\t%.1fx\t%d\n",
			v.label, 100*res.GatewayPacketShare, latX,
			float64(res.LastMisdeliveredArrival)/1000, misX, res.InvalidationPkts)
		res.Scheme = v.label
		csvRows = append(csvRows, res)
	}
	writeCSV("table4_migration.csv", func(w *os.File) error { return harness.WriteMigrationCSV(w, csvRows) })
	return nil
}

// table5 prints the per-layer cache-hit distribution for every trace.
func table5(sc Scale) error {
	tw, done := newTable("dataset", "core", "spine", "tor", "| first: core", "spine", "tor")
	defer done()
	for _, tr := range []string{"hadoop", "websearch", "alibaba", "microbursts", "video"} {
		cfg := sc.baseConfig(tr)
		cfg.Scheme = harness.SchemeSwitchV2P
		r, err := runPoint(cfg)
		if err != nil {
			return err
		}
		if r.CoreStats == nil {
			return fmt.Errorf("missing core stats")
		}
		tot := r.CoreStats.TotalCacheHitShare()
		fp := r.CoreStats.FirstPacketHitShare()
		fmt.Fprintf(tw, "%s\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\n",
			tr, 100*tot[2], 100*tot[1], 100*tot[0], 100*fp[2], 100*fp[1], 100*fp[0])
	}
	return nil
}

// table6 prints the P4 pipeline resource model.
func table6(sc Scale) error {
	u, err := p4model.Table6()
	if err != nil {
		return err
	}
	tw, done := newTable("resource", "utilization")
	defer done()
	fmt.Fprintf(tw, "Match Crossbar\t%.1f%%\n", 100*u.MatchCrossbar)
	fmt.Fprintf(tw, "Meter ALU\t%.1f%%\n", 100*u.MeterALU)
	fmt.Fprintf(tw, "Gateway\t%.1f%%\n", 100*u.Gateway)
	fmt.Fprintf(tw, "SRAM\t%.1f%%\n", 100*u.SRAM)
	fmt.Fprintf(tw, "TCAM\t%.1f%%\n", 100*u.TCAM)
	fmt.Fprintf(tw, "VLIW Instruction\t%.1f%%\n", 100*u.VLIW)
	fmt.Fprintf(tw, "Hash Bits\t%.1f%%\n", 100*u.HashBits)
	return nil
}

// controller compares the ILP controller at two refresh rates against
// SwitchV2P on WebSearch (Fig. 5c's Controller points, §A.2).
func controller(sc Scale) error {
	tw, done := newTable("scheme", "interval(µs)", "cache", "hit-rate", "FCT(µs)")
	defer done()
	for _, interval := range []simtime.Duration{150 * simtime.Microsecond, 300 * simtime.Microsecond} {
		for _, frac := range sc.Fractions {
			cfg := sc.baseConfig("websearch")
			cfg.Scheme = harness.SchemeController
			cfg.ControllerInterval = interval
			cfg.CacheFraction = frac
			r, err := runPoint(cfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "Controller\t%.0f\t%g\t%.3f\t%s\n",
				interval.Micros(), frac, r.HitRate, us(r.Summary.AvgFCT))
		}
	}
	for _, frac := range sc.Fractions {
		cfg := sc.baseConfig("websearch")
		cfg.Scheme = harness.SchemeSwitchV2P
		cfg.CacheFraction = frac
		r, err := runPoint(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "SwitchV2P\t-\t%g\t%.3f\t%s\n", frac, r.HitRate, us(r.Summary.AvgFCT))
	}
	return nil
}

// ablation toggles each SwitchV2P mechanism on the Hadoop workload
// (design-choice ablations from DESIGN.md: topology-aware collaboration
// vs the paper's §5.3 "Topology-aware caching" observation).
func ablation(sc Scale) error {
	off := false
	type variant struct {
		label string
		mod   func(*harness.Config)
	}
	variants := []variant{
		{"full", func(*harness.Config) {}},
		{"no-learning-packets", func(c *harness.Config) { c.V2PLearningPackets = &off }},
		{"no-spillover", func(c *harness.Config) { c.V2PSpillover = &off }},
		{"no-promotion", func(c *harness.Config) { c.V2PPromotion = &off }},
		{"lru-caches", func(c *harness.Config) { c.V2PLRU = true }},
		{"tor-only-memory", func(c *harness.Config) {
			c.V2PSizeFor = nil // set below per topology
			c.V2PAlloc = "tor-only"
		}},
		{"weighted-memory", func(c *harness.Config) { c.V2PAlloc = "bandwidth" }},
	}
	variants = append(variants, variant{"hybrid-host-offload", func(c *harness.Config) {
		c.Scheme = harness.SchemeHybrid
	}})
	tw, done := newTable("variant", "hit-rate", "FCT(µs)", "first(µs)", "learnPkts", "spills", "promos")
	defer done()
	for _, v := range variants {
		cfg := sc.baseConfig("hadoop")
		cfg.Scheme = harness.SchemeSwitchV2P
		v.mod(&cfg)
		r, err := runPoint(cfg)
		if err != nil {
			return err
		}
		spills, promos := int64(0), int64(0)
		if r.CoreStats != nil {
			spills, promos = r.CoreStats.SpillInserted, r.CoreStats.PromoteInserted
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%s\t%s\t%d\t%d\t%d\n",
			v.label, r.HitRate, us(r.Summary.AvgFCT), us(r.Summary.AvgFirstPacket),
			r.LearningPkts, spills, promos)
	}
	return nil
}
