// Command experiments regenerates every table and figure of the paper's
// evaluation section (§5) and prints the same rows/series the paper
// reports. Absolute numbers differ from the paper (different substrate),
// but the shapes — who wins, by what rough factor, where crossovers
// fall — are reproduced.
//
// Usage:
//
//	experiments -exp fig5a            # one experiment
//	experiments -exp all              # everything
//	experiments -exp fig5a -scale quick|standard|full
//	experiments -scenario production-day   # long-horizon scenario (internal/scenario)
//
// Experiments: table3 fig5a fig5b fig5c fig5d fig6 fig7 fig8 fig9 fig10
// table4 table5 table6 controller. Scenarios (multi-phase operational
// runs with per-phase SLO tables, not part of "all"): production-day.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table3, fig5a..fig5d, fig6..fig10, table4..table6, controller, ablation, all)")
	crossover := flag.Bool("container-crossover", false, "run the container-overlay host-vs-switch caching crossover instead of -exp")
	scen := flag.String("scenario", "", "run a long-horizon operational scenario instead of -exp (production-day)")
	scaleName := flag.String("scale", "standard", "quick | standard | full")
	seed := flag.Int64("seed", 1, "random seed")
	parallel := flag.Bool("parallel", false, "run sweep points on all CPUs (identical output, less wall clock)")
	shards := flag.Int("shards", 0, "run schemes that support it on the sharded engine with N workers (0 = serial; others stay serial)")
	flag.StringVar(&csvDir, "csv", "", "also write plot-ready CSV files into this directory")
	flag.Parse()

	sc, ok := scales[*scaleName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scale %q (quick|standard|full)\n", *scaleName)
		os.Exit(2)
	}
	sc.Seed = *seed
	if *parallel {
		sc.Workers = runtime.NumCPU()
	}
	sc.Shards = *shards

	// The container crossover is the headline extension experiment: the
	// paper never ran it, so it is separate from -exp and not in "all".
	if *crossover {
		fmt.Printf("\n=== container-crossover: host vs ToR caching (scale=%s) ===\n", *scaleName)
		t0 := time.Now()
		if err := containerCrossover(sc); err != nil {
			fmt.Fprintf(os.Stderr, "container-crossover: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("--- container-crossover done in %v\n", time.Since(t0).Round(time.Millisecond))
		return
	}

	// Scenarios are long-horizon multi-phase runs (internal/scenario);
	// they are separate from -exp and never part of "all".
	if *scen != "" {
		fn, ok := scenarios[*scen]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown scenario %q (production-day)\n", *scen)
			os.Exit(2)
		}
		fmt.Printf("\n=== scenario %s (scale=%s) ===\n", *scen, *scaleName)
		t0 := time.Now()
		if err := fn(sc); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *scen, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s done in %v\n", *scen, time.Since(t0).Round(time.Millisecond))
		return
	}

	runners := []struct {
		id  string
		fn  func(sc Scale) error
		doc string
	}{
		{"table3", table3, "topology characteristics"},
		{"fig5a", func(s Scale) error { return fig5(s, "hadoop") }, "Hadoop sweep (FT8-10K)"},
		{"fig5b", func(s Scale) error { return fig5(s, "microbursts") }, "Microbursts sweep (FT8-10K)"},
		{"fig5c", func(s Scale) error { return fig5(s, "websearch") }, "WebSearch sweep (FT8-10K)"},
		{"fig5d", func(s Scale) error { return fig5(s, "video") }, "Video sweep (FT8-10K)"},
		{"fig6", fig6, "Alibaba sweep (FT16-400K)"},
		{"fig7", fig7, "per-pod processed bytes (Hadoop @50%)"},
		{"fig8", fig8, "pod-8 per-switch bytes (Hadoop @50%)"},
		{"fig9", fig9, "fewer gateways (Hadoop @50%)"},
		{"fig10", fig10, "topology scaling (Hadoop @50%)"},
		{"table4", table4, "VM migration overheads"},
		{"table5", table5, "cache-hit distribution by layer"},
		{"table6", table6, "P4 per-stage resource utilization"},
		{"controller", controller, "centralized ILP controller (WebSearch)"},
		{"ablation", ablation, "SwitchV2P mechanism ablations (Hadoop @50%)"},
	}

	ran := false
	for _, r := range runners {
		if *exp != "all" && *exp != r.id {
			continue
		}
		ran = true
		fmt.Printf("\n=== %s: %s (scale=%s) ===\n", r.id, r.doc, *scaleName)
		t0 := time.Now()
		if err := r.fn(sc); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.id, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s done in %v\n", r.id, time.Since(t0).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
