package main

import (
	"testing"

	"switchv2p/internal/harness"
	"switchv2p/internal/simtime"
)

func TestScalesWellFormed(t *testing.T) {
	for name, sc := range scales {
		if sc.VMs <= 0 || sc.Duration <= 0 || len(sc.Fractions) == 0 {
			t.Fatalf("scale %q malformed: %+v", name, sc)
		}
		if sc.MigrationSenders <= 0 || sc.MigrationPackets < sc.MigrationSenders {
			t.Fatalf("scale %q migration params malformed", name)
		}
		cfg := sc.baseConfig("hadoop")
		if cfg.TraceName != "hadoop" || cfg.Load != 0.30 {
			t.Fatalf("scale %q baseConfig wrong: %+v", name, cfg)
		}
		if cfg.Topo.Pods != 8 {
			t.Fatalf("scale %q must default to FT8", name)
		}
	}
}

func TestScalesOrdering(t *testing.T) {
	q, s, f := scales["quick"], scales["standard"], scales["full"]
	if !(q.VMs <= s.VMs && s.VMs <= f.VMs) {
		t.Fatal("VM counts not ordered quick <= standard <= full")
	}
	if !(q.Duration <= s.Duration && s.Duration <= f.Duration) {
		t.Fatal("durations not ordered")
	}
}

func TestCrossoverGridsWellFormed(t *testing.T) {
	for name := range scales {
		grid, ok := crossoverGrids[name]
		if !ok {
			t.Fatalf("scale %q has no container-crossover grid", name)
		}
		if len(grid.Densities) == 0 || len(grid.Reuses) == 0 || len(grid.Fractions) == 0 {
			t.Fatalf("grid %q has an empty axis: %+v", name, grid)
		}
		for _, d := range grid.Densities {
			if d <= 0 {
				t.Fatalf("grid %q density %d", name, d)
			}
		}
		for _, r := range grid.Reuses {
			if r < 0 || r > 1 {
				t.Fatalf("grid %q reuse %v outside [0,1]", name, r)
			}
		}
		for _, f := range grid.Fractions {
			if f <= 0 || f > 1 {
				t.Fatalf("grid %q cache fraction %v outside (0,1]", name, f)
			}
		}
	}
	for name := range crossoverGrids {
		if _, ok := scales[name]; !ok {
			t.Fatalf("crossover grid %q has no matching scale", name)
		}
	}
	if len(crossoverSchemes) < 5 {
		t.Fatalf("crossover scheme set too small: %v", crossoverSchemes)
	}
}

func TestUsFormatting(t *testing.T) {
	if got := us(1500 * simtime.Nanosecond); got != "1.5" {
		t.Fatalf("us(1.5µs) = %q", got)
	}
	if got := us(40 * simtime.Microsecond); got != "40.0" {
		t.Fatalf("us(40µs) = %q", got)
	}
}

func TestQuickScaleTable5Runs(t *testing.T) {
	// table5 on the smallest trace only (video) would skip layers; run the
	// harness directly on one trace to keep the test fast.
	sc := scales["quick"]
	cfg := sc.baseConfig("hadoop")
	cfg.Scheme = harness.SchemeSwitchV2P
	r, err := harness.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.CoreStats == nil {
		t.Fatal("missing core stats for table5")
	}
}
