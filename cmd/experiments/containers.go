package main

import (
	"fmt"
	"os"

	"switchv2p/internal/containers"
	"switchv2p/internal/harness"
	"switchv2p/internal/simtime"
)

// crossoverGrid holds the per-scale sweep axes of the container
// crossover experiment.
type crossoverGrid struct {
	Densities []int     // containers per host
	Reuses    []float64 // reuse-distance knob
	Fractions []float64 // aggregate cache budget / container count
}

var crossoverGrids = map[string]crossoverGrid{
	"quick": {
		Densities: []int{4, 16},
		Reuses:    []float64{0.2, 0.9},
		Fractions: []float64{0.25},
	},
	"standard": {
		Densities: []int{8, 32, 64, 128},
		Reuses:    []float64{0.1, 0.9},
		Fractions: []float64{0.05, 0.5},
	},
	"full": {
		Densities: []int{8, 32, 64, 128, 256},
		Reuses:    []float64{0.1, 0.5, 0.9},
		Fractions: []float64{0.01, 0.05, 0.5},
	},
}

// crossoverSchemes is the fixed comparison set: the paper's in-switch
// design, the two host-tier designs, and the two bracketing baselines.
var crossoverSchemes = []string{
	harness.SchemeSwitchV2P, harness.SchemeHostCache, harness.SchemeHostToR,
	harness.SchemeNoCache, harness.SchemeGwCache,
}

// crossoverSLO is the tail first-packet latency budget used for the
// per-scheme SLO rows: generous enough that a healthy scheme passes
// every cell, tight enough that a resolution stall (gateway detour
// storms, misdelivery loops) fails it.
const crossoverSLO = 400 * simtime.Microsecond

// containerCrossover runs the headline host-vs-switch experiment: the
// container-overlay workload swept over container density × reuse
// distance × cache size for every scheme, reporting gateway offload and
// p99 first-packet latency, the per-cell offload winner, and one SLO
// row per scheme.
func containerCrossover(sc Scale) error {
	grid, ok := crossoverGrids[sc.Name]
	if !ok {
		return fmt.Errorf("no crossover grid for scale %q", sc.Name)
	}
	base := sc.baseConfig("")
	base.Containers = &containers.Spec{}

	pts, err := harness.ContainerCrossover(base, grid.Densities, grid.Reuses, grid.Fractions, crossoverSchemes)
	if err != nil {
		return err
	}

	tw, done := newTable("perHost", "reuse", "cache", "scheme", "offload", "p99first(µs)", "p99FCT(µs)", "gwPkts")
	for _, p := range pts {
		fmt.Fprintf(tw, "%d\t%.2f\t%g\t%s\t%.3f\t%s\t%s\t%d\n",
			p.PerHost, p.Reuse, p.CacheFraction, p.Scheme,
			p.HitRate, us(p.P99FirstPacket), us(p.P99FCT), p.GatewayPackets)
	}
	done()

	// Per-cell offload winner: where the host/ToR crossover falls.
	perScheme := len(crossoverSchemes)
	fmt.Println("\ncrossover (best gateway offload per cell):")
	tw, done = newTable("perHost", "reuse", "cache", "winner", "offload", "switchv2p", "hostcache", "hosttor")
	for i := 0; i < len(pts); i += perScheme {
		cell := pts[i : i+perScheme]
		best := cell[0]
		byScheme := map[string]float64{}
		for _, p := range cell {
			byScheme[p.Scheme] = p.HitRate
			if p.HitRate > best.HitRate {
				best = p
			}
		}
		fmt.Fprintf(tw, "%d\t%.2f\t%g\t%s\t%.3f\t%.3f\t%.3f\t%.3f\n",
			best.PerHost, best.Reuse, best.CacheFraction, best.Scheme, best.HitRate,
			byScheme[harness.SchemeSwitchV2P], byScheme[harness.SchemeHostCache],
			byScheme[harness.SchemeHostToR])
	}
	done()

	// SLO rows: one per scheme, across all its cells.
	fmt.Printf("\nSLO (p99 first packet <= %s µs):\n", us(simtime.Duration(crossoverSLO)))
	tw, done = newTable("scheme", "SLO", "cells", "worst-p99first(µs)", "min-offload", "max-offload")
	for _, scheme := range crossoverSchemes {
		var cells, pass int
		var worst simtime.Duration
		minOff, maxOff := 1.0, 0.0
		for _, p := range pts {
			if p.Scheme != scheme {
				continue
			}
			cells++
			if p.P99FirstPacket <= crossoverSLO {
				pass++
			}
			if p.P99FirstPacket > worst {
				worst = p.P99FirstPacket
			}
			if p.HitRate < minOff {
				minOff = p.HitRate
			}
			if p.HitRate > maxOff {
				maxOff = p.HitRate
			}
		}
		verdict := "pass"
		if pass < cells {
			verdict = fmt.Sprintf("FAIL(%d/%d)", pass, cells)
		}
		fmt.Fprintf(tw, "%s\tSLO=%s\t%d\t%s\t%.3f\t%.3f\n",
			scheme, verdict, cells, us(worst), minOff, maxOff)
	}
	done()

	writeCSV("container_crossover.csv", func(w *os.File) error {
		return harness.WriteCrossoverCSV(w, pts)
	})
	return nil
}
