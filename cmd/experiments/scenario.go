package main

import (
	"fmt"
	"os"

	"switchv2p/internal/harness"
	"switchv2p/internal/scenario"
	"switchv2p/internal/simtime"
)

// scenarios maps -scenario names to runners.
var scenarios = map[string]func(Scale) error{
	"production-day": productionDay,
}

// dayOptions sizes the production day for the chosen scale: quick
// compresses the same six-phase structure into milliseconds for CI
// smokes; standard and full run multi-hour simulated horizons (the
// event count follows the flow budget, not the horizon, and streaming
// telemetry keeps sampling constant-memory, so long horizons are cheap).
func dayOptions(sc Scale) scenario.DayOptions {
	switch sc.Name {
	case "quick":
		return scenario.DayOptions{
			DayLength:  24 * simtime.Millisecond,
			FlowBudget: 2400, Churn: 24, Migrations: 16,
			UpgradeWaves: 2, DrainGateways: 2,
		}
	case "full":
		return scenario.DayOptions{
			DayLength:  8 * 3600 * simtime.Second,
			FlowBudget: 100000, Churn: 256, Migrations: 128,
			UpgradeWaves: 8, DrainGateways: 2,
		}
	default: // standard
		return scenario.DayOptions{
			DayLength:  4 * 3600 * simtime.Second,
			FlowBudget: 48000, Churn: 128, Migrations: 64,
			UpgradeWaves: 4, DrainGateways: 2,
		}
	}
}

// productionDay runs the canonical long-horizon scenario for every
// scheme and prints one per-phase SLO table each.
func productionDay(sc Scale) error {
	base := sc.baseConfig("hadoop")
	base.SweepWorkers = 0 // the scenario runner owns concurrency
	spec := scenario.ProductionDay(base, dayOptions(sc))

	workers := sc.Workers
	if workers < 1 {
		workers = 1
	}
	reports, err := scenario.RunAll(spec, harness.AllSchemes, workers)
	if err != nil {
		return err
	}
	for i, rep := range reports {
		if i > 0 {
			fmt.Println()
		}
		if err := rep.WriteTable(os.Stdout); err != nil {
			return err
		}
		rep := rep
		writeCSV(fmt.Sprintf("scenario_%s_%s.json", spec.Name, rep.Scheme), func(f *os.File) error {
			return rep.WriteJSON(f)
		})
	}
	return nil
}
