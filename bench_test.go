// Benchmarks: one per table and figure of the paper's evaluation (§5),
// each running a scaled-down version of the corresponding experiment
// through the public API, plus ablation benches for the design choices
// called out in DESIGN.md. Regenerate the full-size results with
// cmd/experiments.
package switchv2p_test

import (
	"testing"
	"time"

	"switchv2p"
)

// benchBase is the scaled-down configuration shared by the benches.
func benchBase(scheme, traceName string) switchv2p.Config {
	return switchv2p.Config{
		VMs:           1024,
		Scheme:        scheme,
		TraceName:     traceName,
		Load:          0.30,
		Duration:      switchv2p.FromStd(200 * time.Microsecond),
		MaxFlows:      1000,
		CacheFraction: 0.5,
		Seed:          1,
	}
}

func runBench(b *testing.B, cfg switchv2p.Config) *switchv2p.Report {
	b.Helper()
	var last *switchv2p.Report
	for i := 0; i < b.N; i++ {
		r, err := switchv2p.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.HitRate, "hitrate")
	b.ReportMetric(last.Summary.AvgFCT.Micros(), "fct-µs")
	b.ReportMetric(last.Summary.AvgFirstPacket.Micros(), "first-µs")
	return last
}

// BenchmarkTable3 builds both evaluation topologies (Table 3).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := switchv2p.Build(benchBase(switchv2p.SchemeNoCache, "hadoop")); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig. 5a-5d: cache-size experiments per trace on FT8-10K.
func BenchmarkFig5aHadoop(b *testing.B) {
	runBench(b, benchBase(switchv2p.SchemeSwitchV2P, "hadoop"))
}

func BenchmarkFig5bMicrobursts(b *testing.B) {
	runBench(b, benchBase(switchv2p.SchemeSwitchV2P, "microbursts"))
}

func BenchmarkFig5cWebSearch(b *testing.B) {
	runBench(b, benchBase(switchv2p.SchemeSwitchV2P, "websearch"))
}

func BenchmarkFig5dVideo(b *testing.B) {
	runBench(b, benchBase(switchv2p.SchemeSwitchV2P, "video"))
}

// BenchmarkFig5Baselines covers the comparison schemes on Hadoop.
func BenchmarkFig5Baselines(b *testing.B) {
	for _, scheme := range []string{
		switchv2p.SchemeNoCache, switchv2p.SchemeLocalLearning,
		switchv2p.SchemeGwCache, switchv2p.SchemeBluebird,
		switchv2p.SchemeOnDemand, switchv2p.SchemeDirect,
	} {
		b.Run(scheme, func(b *testing.B) {
			runBench(b, benchBase(scheme, "hadoop"))
		})
	}
}

// BenchmarkFig6Alibaba runs the Alibaba workload on FT16-400K.
func BenchmarkFig6Alibaba(b *testing.B) {
	cfg := benchBase(switchv2p.SchemeSwitchV2P, "alibaba")
	cfg.Topo = switchv2p.FT16()
	cfg.VMs = 20000
	cfg.MaxFlows = 500
	runBench(b, cfg)
}

// BenchmarkFig7PodBytes measures the per-pod byte distribution run.
func BenchmarkFig7PodBytes(b *testing.B) {
	r := runBench(b, benchBase(switchv2p.SchemeSwitchV2P, "hadoop"))
	var gw int64
	for _, pod := range []int{0, 2, 5, 7} {
		gw += r.PerPodBytes[pod]
	}
	b.ReportMetric(float64(gw)/float64(r.TotalSwitchBytes), "gwpod-byteshare")
}

// BenchmarkFig8PodSwitchBytes measures the gateway-pod switch breakdown.
func BenchmarkFig8PodSwitchBytes(b *testing.B) {
	r := runBench(b, benchBase(switchv2p.SchemeSwitchV2P, "hadoop"))
	row := r.PodSwitchBytes(7)
	b.ReportMetric(float64(row[len(row)-1]), "gwtor-bytes")
}

// BenchmarkFig9FewerGateways sweeps the gateway count.
func BenchmarkFig9FewerGateways(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := switchv2p.GatewaySweep(
			benchBase(switchv2p.SchemeSwitchV2P, "hadoop"),
			[]int{40, 4},
			[]string{switchv2p.SchemeSwitchV2P},
		); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10TopologyScaling runs a rescaled-topology point.
func BenchmarkFig10TopologyScaling(b *testing.B) {
	cfg := benchBase(switchv2p.SchemeSwitchV2P, "hadoop")
	cfg.Topo = switchv2p.FT8()
	cfg.Topo.Pods = 16
	cfg.Topo.ServersPerRack = 2
	cfg.Topo.GatewayPods = []int{0, 2, 4, 6, 8, 10, 12, 14}
	cfg.Topo.GatewaysPerPod = 5
	runBench(b, cfg)
}

// BenchmarkTable4Migration runs the incast + migration experiment.
func BenchmarkTable4Migration(b *testing.B) {
	var last *switchv2p.MigrationResult
	for i := 0; i < b.N; i++ {
		mc := switchv2p.DefaultMigrationConfig(benchBase(switchv2p.SchemeSwitchV2P, "hadoop"))
		mc.Senders = 16
		mc.TotalPackets = 4000
		r, err := switchv2p.Migration(mc)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.Misdelivered), "misdelivered")
	b.ReportMetric(float64(last.InvalidationPkts), "invalidations")
}

// BenchmarkTable5HitDistribution measures the per-layer attribution run.
func BenchmarkTable5HitDistribution(b *testing.B) {
	r := runBench(b, benchBase(switchv2p.SchemeSwitchV2P, "hadoop"))
	if r.CoreStats == nil {
		b.Fatal("missing core stats")
	}
	share := r.CoreStats.TotalCacheHitShare()
	b.ReportMetric(share[0], "tor-hitshare")
}

// BenchmarkTable6P4Model evaluates the pipeline resource model.
func BenchmarkTable6P4Model(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := switchv2p.P4Utilization(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkControllerILP runs the centralized-controller baseline
// (Appendix A.2) on WebSearch.
func BenchmarkControllerILP(b *testing.B) {
	cfg := benchBase(switchv2p.SchemeController, "websearch")
	cfg.ControllerInterval = switchv2p.FromStd(150 * time.Microsecond)
	runBench(b, cfg)
}

// BenchmarkEngineEventsPerSec measures raw discrete-event throughput
// via the telemetry profiling hooks (ProfileOnly leaves the sampler off,
// so the measured loop is the plain simulation). The allocs/event metric
// tracks the pooled typed-event hot path: protocol logic still
// allocates (packets, flows), but per-hop link events must not.
func BenchmarkEngineEventsPerSec(b *testing.B) {
	cfg := benchBase(switchv2p.SchemeSwitchV2P, "hadoop")
	cfg.Telemetry = &switchv2p.TelemetryOptions{ProfileOnly: true}
	var last *switchv2p.Report
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := switchv2p.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	p := &last.Telemetry.Profile
	b.ReportMetric(p.EventsPerSec(), "events/sec")
	b.ReportMetric(float64(p.HeapHighWater), "heap-highwater")
	b.ReportMetric(p.AllocsPerEvent(), "allocs/event")
}

// Ablation benches: toggle each SwitchV2P mechanism (DESIGN.md).
func BenchmarkAblation(b *testing.B) {
	off := false
	lowP := 0.0005
	mods := map[string]func(*switchv2p.Config){
		"full":              func(c *switchv2p.Config) {},
		"no-learningpkts":   func(c *switchv2p.Config) { c.V2PLearningPackets = &off },
		"no-spillover":      func(c *switchv2p.Config) { c.V2PSpillover = &off },
		"no-promotion":      func(c *switchv2p.Config) { c.V2PPromotion = &off },
		"low-plearn":        func(c *switchv2p.Config) { c.V2PPLearn = &lowP },
		"tor-only-cache":    func(c *switchv2p.Config) { c.V2PAlloc = "tor-only" },
		"bandwidth-alloc":   func(c *switchv2p.Config) { c.V2PAlloc = "bandwidth" },
		"lru-caches":        func(c *switchv2p.Config) { c.V2PLRU = true },
		"uniform-allswitch": func(c *switchv2p.Config) {},
	}
	for name, mod := range mods {
		b.Run(name, func(b *testing.B) {
			cfg := benchBase(switchv2p.SchemeSwitchV2P, "hadoop")
			mod(&cfg)
			runBench(b, cfg)
		})
	}
}
