package switchv2p_test

import (
	"testing"
	"time"

	"switchv2p"
)

func apiConfig(scheme string) switchv2p.Config {
	return switchv2p.Config{
		VMs:           512,
		Scheme:        scheme,
		TraceName:     "hadoop",
		Duration:      switchv2p.FromStd(150 * time.Microsecond),
		MaxFlows:      200,
		CacheFraction: 0.5,
		Seed:          2,
	}
}

func TestPublicRun(t *testing.T) {
	r, err := switchv2p.Run(apiConfig(switchv2p.SchemeSwitchV2P))
	if err != nil {
		t.Fatal(err)
	}
	if r.Summary.Completed == 0 {
		t.Fatalf("no flows completed: %+v", r.Summary)
	}
	if r.HitRate <= 0 {
		t.Fatalf("hit rate = %v", r.HitRate)
	}
	if r.CoreStats == nil {
		t.Fatal("SwitchV2P run missing core stats")
	}
}

func TestPublicAllSchemes(t *testing.T) {
	names := switchv2p.AllSchemes()
	if len(names) != 11 {
		t.Fatalf("AllSchemes = %v", names)
	}
	// The returned slice is a copy: mutating it must not corrupt state.
	names[0] = "corrupted"
	if switchv2p.AllSchemes()[0] == "corrupted" {
		t.Fatal("AllSchemes returns internal storage")
	}
}

func TestPublicBuildThenCustomEvents(t *testing.T) {
	w, err := switchv2p.Build(apiConfig(switchv2p.SchemeSwitchV2P))
	if err != nil {
		t.Fatal(err)
	}
	// Schedule a migration mid-run through the exposed world.
	vip := w.VIPs[0]
	target := w.VIPs[100]
	targetHost, _ := w.Net.HostOf(target)
	cur, _ := w.Net.HostOf(vip)
	if cur == targetHost {
		t.Skip("same host; pick different seed")
	}
	w.Engine.Q.At(switchv2p.Time(50*time.Microsecond.Nanoseconds()), func() {
		if err := w.Net.Migrate(vip, targetHost); err != nil {
			t.Errorf("migrate: %v", err)
		}
	})
	w.Engine.Run(1 << 62)
	r := w.Report()
	if r.Summary.Flows == 0 {
		t.Fatal("no flows")
	}
}

func TestPublicTopologies(t *testing.T) {
	ft8 := switchv2p.FT8()
	if ft8.Pods != 8 || ft8.GatewaysPerPod != 10 {
		t.Fatalf("FT8 = %+v", ft8)
	}
	ft16 := switchv2p.FT16()
	if ft16.Pods != 50 {
		t.Fatalf("FT16 = %+v", ft16)
	}
}

func TestPublicP4Utilization(t *testing.T) {
	u, err := switchv2p.P4Utilization()
	if err != nil {
		t.Fatal(err)
	}
	if !u.Fits() {
		t.Fatalf("prototype does not fit: %v", u)
	}
}

func TestPublicCacheSizeSweep(t *testing.T) {
	pts, err := switchv2p.CacheSizeSweep(apiConfig(""), []float64{0.5},
		[]string{switchv2p.SchemeNoCache, switchv2p.SchemeSwitchV2P})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
}

func TestPublicMigration(t *testing.T) {
	mc := switchv2p.DefaultMigrationConfig(apiConfig(switchv2p.SchemeSwitchV2P))
	mc.Senders = 8
	mc.TotalPackets = 800
	res, err := switchv2p.Migration(mc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatalf("nothing delivered: %+v", res)
	}
}
