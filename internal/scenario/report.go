package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"text/tabwriter"

	"switchv2p/internal/harness"
	"switchv2p/internal/simtime"
	"switchv2p/internal/transport"
)

// PhaseReport is one phase's outcome: traffic summary, counter deltas
// between the phase-boundary snapshots, the churn/fault activity that
// actually happened, and the SLO verdict.
type PhaseReport struct {
	Name    string  `json:"name"`
	StartUs float64 `json:"start_us"`
	EndUs   float64 `json:"end_us"`

	Flows     int `json:"flows"` // flows that started inside the phase
	Completed int `json:"completed"`
	TimedOut  int `json:"timed_out"`

	P50FirstPacketUs float64 `json:"p50_first_packet_us"`
	P99FirstPacketUs float64 `json:"p99_first_packet_us"`
	P99FCTUs         float64 `json:"p99_fct_us"`

	// Offload is the fraction of the phase's host-sent packets kept off
	// the gateways (1 − Δgateway/Δhost-sent); −1 when the phase carried
	// no traffic. CacheChurn is evictions per lookup over the phase; −1
	// when the scheme has no in-network cache or saw no lookups.
	Offload    float64 `json:"offload"`
	CacheChurn float64 `json:"cache_churn"`

	HostSent       int64 `json:"host_sent"`
	GatewayPackets int64 `json:"gateway_packets"`
	Drops          int64 `json:"drops"`
	FaultDrops     int64 `json:"fault_drops"`
	// StaleLookups counts gateway lookups for VIPs that had departed —
	// stragglers from flows outliving their destination VM.
	StaleLookups int64 `json:"stale_lookups"`

	Arrivals    int `json:"arrivals"`
	Departures  int `json:"departures"`
	Migrations  int `json:"migrations"`
	FaultEvents int `json:"fault_events"`

	SLOPass    bool     `json:"slo_pass"`
	Violations []string `json:"violations,omitempty"`
}

// Report is the scenario's outcome across all phases.
type Report struct {
	Name      string        `json:"name"`
	Scheme    string        `json:"scheme"`
	Seed      int64         `json:"seed"`
	HorizonUs float64       `json:"horizon_us"`
	Flows     int           `json:"flows"`
	Phases    []PhaseReport `json:"phases"`
	SLOPass   bool          `json:"slo_pass"`

	// Final is the whole-run harness report (totals, telemetry handle);
	// excluded from JSON, which stays phase-oriented.
	Final *harness.Report `json:"-"`
}

func usOf(t simtime.Time) float64        { return float64(t) / 1e3 }
func usOfDur(d simtime.Duration) float64 { return float64(d) / 1e3 }
func fmtUs(v float64) string             { return strconv.FormatFloat(v, 'f', 1, 64) }

// fmtRatio prints a ratio; the −1 sentinel ("not measured") renders as
// a dash. Slightly negative offloads are real measurements — in-flight
// packets cross the snapshot boundary — and print as numbers.
func fmtRatio(v float64) string {
	if v <= -1 {
		return "-"
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}

// assemble builds the report from the run's snapshots and flow records.
func assemble(spec Spec, w *harness.World, pl *plan, rs *runState) *Report {
	rep := &Report{
		Name:      spec.Name,
		Scheme:    w.Scheme.Name(),
		Seed:      w.Cfg.Seed,
		HorizonUs: usOf(pl.horizon),
		Flows:     len(w.Agent.Records),
		Phases:    make([]PhaseReport, len(spec.Phases)),
		SLOPass:   true,
		Final:     w.Report(),
	}

	// Bucket flow records by the phase their spec'd start falls in.
	// Starts are sorted per construction order, not globally; search the
	// window list per record.
	buckets := make([][]*transport.FlowRecord, len(spec.Phases))
	starts := make([]simtime.Time, len(spec.Phases))
	for k := range pl.windows {
		starts[k] = pl.windows[k].start
	}
	for _, r := range w.Agent.Records {
		s := r.Spec.Start
		k := sort.Search(len(starts), func(i int) bool { return starts[i] > s }) - 1
		if k >= 0 && s < pl.windows[k].end {
			buckets[k] = append(buckets[k], r)
		}
	}

	for k := range spec.Phases {
		p := &spec.Phases[k]
		win := pl.windows[k]
		sum := transport.Summarize(buckets[k])
		delta := func(f func(counterSnap) int64) int64 {
			return f(rs.snaps[k+1]) - f(rs.snaps[k])
		}
		pr := PhaseReport{
			Name:             p.Name,
			StartUs:          usOf(win.start),
			EndUs:            usOf(win.end),
			Flows:            sum.Flows,
			Completed:        sum.Completed,
			TimedOut:         sum.TimedOut,
			P50FirstPacketUs: usOfDur(sum.P50FirstPacket),
			P99FirstPacketUs: usOfDur(sum.P99FirstPacket),
			P99FCTUs:         usOfDur(sum.P99FCT),
			HostSent:         delta(func(s counterSnap) int64 { return s.hostSent }),
			GatewayPackets:   delta(func(s counterSnap) int64 { return s.gwPkts }),
			Drops:            delta(func(s counterSnap) int64 { return s.drops }),
			FaultDrops:       delta(func(s counterSnap) int64 { return s.faultDrops }),
			StaleLookups:     delta(func(s counterSnap) int64 { return s.staleLookups }),
			Arrivals:         rs.applied[k].arrivals,
			Departures:       rs.applied[k].departures,
			Migrations:       rs.applied[k].migrations,
		}
		pr.Offload = -1
		if pr.HostSent > 0 {
			off := 1 - float64(pr.GatewayPackets)/float64(pr.HostSent)
			// Packets in flight across the boundary can push the
			// measurement slightly negative; keep it clear of the −1
			// "not measured" sentinel.
			if off < -0.999 {
				off = -0.999
			}
			pr.Offload = off
		}
		pr.CacheChurn = -1
		if coreStatsOf(w) != nil {
			if lk := delta(func(s counterSnap) int64 { return s.lookups }); lk > 0 {
				pr.CacheChurn = float64(delta(func(s counterSnap) int64 { return s.evictions })) / float64(lk)
			}
		}
		if w.Injector != nil {
			for i := range w.Injector.Applied {
				at := w.Injector.Applied[i].At
				if at >= win.start && at < win.end {
					pr.FaultEvents++
				}
			}
		}
		evaluateSLO(p, sum, &pr)
		if !pr.SLOPass {
			rep.SLOPass = false
		}
		rep.Phases[k] = pr
	}
	return rep
}

// evaluateSLO checks the phase's declared objectives against its
// measured outcome. Probes whose inputs don't apply (no traffic, no
// cache) are skipped, not failed.
func evaluateSLO(p *Phase, sum transport.Summary, pr *PhaseReport) {
	var v []string
	if p.SLO.MaxP99FirstPacket > 0 && sum.Flows > 0 && sum.P99FirstPacket > p.SLO.MaxP99FirstPacket {
		v = append(v, fmt.Sprintf("p99 first-packet %v > %v", sum.P99FirstPacket, p.SLO.MaxP99FirstPacket))
	}
	if p.SLO.MinOffload > 0 && pr.Offload > -1 && pr.Offload < p.SLO.MinOffload {
		v = append(v, fmt.Sprintf("offload %s < %s", fmtRatio(pr.Offload), fmtRatio(p.SLO.MinOffload)))
	}
	if p.SLO.MaxCacheChurn > 0 && pr.CacheChurn >= 0 && pr.CacheChurn > p.SLO.MaxCacheChurn {
		v = append(v, fmt.Sprintf("cache churn %s > %s", fmtRatio(pr.CacheChurn), fmtRatio(p.SLO.MaxCacheChurn)))
	}
	pr.Violations = v
	pr.SLOPass = len(v) == 0
}

// WriteJSON emits the report as indented JSON (deterministic for a
// deterministic report).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable renders the per-phase SLO table.
func (r *Report) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "scenario %s  scheme=%s  seed=%d  horizon=%sµs  flows=%d\n",
		r.Name, r.Scheme, r.Seed, fmtUs(r.HorizonUs), r.Flows)
	fmt.Fprintln(tw, "PHASE\tWINDOW(µs)\tFLOWS\tP99-FP(µs)\tOFFLOAD\tCHURN\tOPS(a/d/m)\tFAULTS\tSLO")
	for i := range r.Phases {
		p := &r.Phases[i]
		verdict := "pass"
		if !p.SLOPass {
			verdict = "FAIL"
		}
		fmt.Fprintf(tw, "%s\t[%s,%s)\t%d\t%s\t%s\t%s\t%d/%d/%d\t%d\t%s\n",
			p.Name, fmtUs(p.StartUs), fmtUs(p.EndUs), p.Flows,
			fmtUs(p.P99FirstPacketUs), fmtRatio(p.Offload), fmtRatio(p.CacheChurn),
			p.Arrivals, p.Departures, p.Migrations, p.FaultEvents, verdict)
	}
	for i := range r.Phases {
		p := &r.Phases[i]
		for _, viol := range p.Violations {
			fmt.Fprintf(tw, "  ! %s\t%s\n", p.Name, viol)
		}
	}
	return tw.Flush()
}
