// Package scenario sequences long-horizon, multi-phase operational
// scenarios over the simulator: diurnal load curves modulating the
// trace generators, tenant arrival/departure churn, VM migration
// storms, gateway fleet autoscaling (drain/restore mid-run), and
// rolling switch upgrades as scheduled fail/recover waves. Each phase
// declares SLO probes — p99 first-packet latency, gateway offload,
// cache churn — evaluated per phase from counter deltas taken at phase
// boundaries inside the simulation.
//
// Everything is planned up front from the spec's seed: the phase
// timeline, every churn/migration operation, and the fault schedule are
// deterministic functions of (Spec, Base.Seed), so same-seed runs
// produce byte-identical reports at any worker count.
//
// Long horizons ride on the streaming telemetry collector
// (internal/telemetry StreamOptions): hours of simulated time sample in
// constant memory while exporters receive the full time series
// incrementally.
package scenario

import (
	"fmt"

	"switchv2p/internal/harness"
	"switchv2p/internal/simtime"
	"switchv2p/internal/vnet"
)

// SLO declares per-phase service-level objectives. Zero values disable
// the corresponding check.
type SLO struct {
	// MaxP99FirstPacket bounds the phase's p99 first-packet latency over
	// flows that started inside the phase.
	MaxP99FirstPacket simtime.Duration
	// MinOffload bounds from below the fraction of the phase's
	// host-sent packets kept off the translation gateways (the paper's
	// hit-rate metric, windowed to the phase). Skipped when the phase
	// carried no traffic.
	MinOffload float64
	// MaxCacheChurn bounds cache evictions per lookup over the phase —
	// a timescale-free churn measure (0.5 = one eviction per two
	// lookups). Skipped for schemes without in-network caches.
	MaxCacheChurn float64
}

// Phase is one contiguous segment of the scenario timeline.
type Phase struct {
	Name     string
	Duration simtime.Duration

	// LoadStart/LoadEnd scale the base offered load linearly across the
	// phase — the diurnal curve. Both zero leaves the phase quiet.
	LoadStart, LoadEnd float64

	// Arrivals places that many new tenant VMs (pre-reserved VIPs) at
	// deterministic times inside the phase; Departures removes that many
	// existing VMs. Departing VMs receive no traffic from their
	// departure phase onward.
	Arrivals, Departures int

	// Migrations schedules a migration storm: that many VMs bulk-remap
	// to new hosts across the middle of the phase, generating
	// invalidation pressure on warm caches.
	Migrations int

	// DrainGateways outages that many additional gateway instances at
	// phase start (fleet scale-down); RestoreGateways recovers that many
	// previously drained instances at phase start (scale-up).
	DrainGateways, RestoreGateways int

	// UpgradeWaves rolls a fail/recover upgrade over the fabric (spine
	// and core) switches in that many waves spread across the phase;
	// each switch is down for UpgradeDowntime (default: a quarter of the
	// wave spacing). A failed switch loses its V2P cache and re-learns
	// from traffic after recovery.
	UpgradeWaves    int
	UpgradeDowntime simtime.Duration

	SLO SLO
}

// Spec is a complete scenario: a harness base configuration plus the
// phase timeline.
type Spec struct {
	Name string
	// Base supplies the topology, VM population, scheme, trace family,
	// base load and seed. Base.Workload and Base.Faults must be unset:
	// the planner owns both.
	Base   harness.Config
	Phases []Phase

	// FlowBudget caps total generated flows, distributed over phases
	// proportionally to their mean load so the diurnal shape survives
	// the cap (0 = DefaultFlowBudget).
	FlowBudget int

	// SampleInterval overrides the telemetry sampling period when
	// Base.Telemetry is set (0 = keep the collector's own interval).
	SampleInterval simtime.Duration

	// ChurnTenant is the VNI arrivals belong to (0 = DefaultChurnTenant;
	// arrivals always land in a non-default VPC so churn exercises the
	// multitenancy path).
	ChurnTenant vnet.TenantID

	// DrainGrace extends the horizon past the last phase so in-flight
	// flows can complete (0 = DefaultDrainGrace).
	DrainGrace simtime.Duration
}

// Defaults for Spec zero values.
const (
	DefaultFlowBudget  = 48000
	DefaultChurnTenant = vnet.TenantID(2)
	DefaultDrainGrace  = 5 * simtime.Millisecond
)

func (s Spec) withDefaults() Spec {
	if s.Name == "" {
		s.Name = "scenario"
	}
	s.Base = s.Base.WithDefaults()
	if s.FlowBudget == 0 {
		s.FlowBudget = DefaultFlowBudget
	}
	if s.ChurnTenant == 0 {
		s.ChurnTenant = DefaultChurnTenant
	}
	if s.DrainGrace == 0 {
		s.DrainGrace = DefaultDrainGrace
	}
	return s
}

// meanLoad is the phase's average load factor under the linear ramp.
func (p *Phase) meanLoad() float64 { return (p.LoadStart + p.LoadEnd) / 2 }

// Validate checks the spec (after defaults are applied).
func (s Spec) Validate() error {
	if len(s.Phases) == 0 {
		return fmt.Errorf("scenario %q: no phases", s.Name)
	}
	if s.Base.Workload != nil {
		return fmt.Errorf("scenario %q: Base.Workload must be unset (the planner generates traffic)", s.Name)
	}
	if !s.Base.Faults.Empty() {
		return fmt.Errorf("scenario %q: Base.Faults must be unset (the planner owns the fault schedule)", s.Name)
	}
	if s.ChurnTenant > vnet.MaxTenantID {
		return fmt.Errorf("scenario %q: churn tenant %d exceeds the VNI space", s.Name, s.ChurnTenant)
	}
	departures := 0
	for i := range s.Phases {
		p := &s.Phases[i]
		if p.Name == "" {
			return fmt.Errorf("scenario %q: phase %d has no name", s.Name, i)
		}
		if p.Duration <= 0 {
			return fmt.Errorf("scenario %q: phase %q has non-positive duration", s.Name, p.Name)
		}
		if p.LoadStart < 0 || p.LoadEnd < 0 {
			return fmt.Errorf("scenario %q: phase %q has negative load factor", s.Name, p.Name)
		}
		if p.Arrivals < 0 || p.Departures < 0 || p.Migrations < 0 ||
			p.DrainGateways < 0 || p.RestoreGateways < 0 || p.UpgradeWaves < 0 {
			return fmt.Errorf("scenario %q: phase %q has a negative event count", s.Name, p.Name)
		}
		departures += p.Departures
	}
	if departures >= s.Base.VMs {
		return fmt.Errorf("scenario %q: %d departures would drain the whole %d-VM population",
			s.Name, departures, s.Base.VMs)
	}
	return nil
}

// DayOptions sizes a ProductionDay scenario.
type DayOptions struct {
	// DayLength is the total simulated horizon (0 = 4 simulated hours).
	// CI smokes compress the same phase structure into milliseconds.
	DayLength simtime.Duration
	// FlowBudget caps total flows across the day (0 = DefaultFlowBudget).
	FlowBudget int
	// Churn is the number of tenant arrivals (and departures) in the
	// midday-churn phase (0 = 64).
	Churn int
	// Migrations sizes the migration storm (0 = 48).
	Migrations int
	// UpgradeWaves is the number of rolling-upgrade waves (0 = 4).
	UpgradeWaves int
	// DrainGateways is how many gateway instances the autoscale phase
	// drains (0 = 2); they are restored when the upgrade phase begins.
	DrainGateways int
	// SampleInterval overrides the telemetry sampling period.
	SampleInterval simtime.Duration
}

// ProductionDay builds the canonical long-horizon scenario: a simulated
// operational day with a morning diurnal ramp, midday tenant churn, a
// migration storm, gateway fleet autoscaling, a rolling fabric upgrade,
// and an evening drain. Phase durations are fixed fractions of
// DayLength, so the same structure scales from a CI smoke to a
// multi-hour soak.
func ProductionDay(base harness.Config, o DayOptions) Spec {
	day := o.DayLength
	if day <= 0 {
		day = 4 * 3600 * simtime.Second
	}
	churn := o.Churn
	if churn <= 0 {
		churn = 64
	}
	migrations := o.Migrations
	if migrations <= 0 {
		migrations = 48
	}
	waves := o.UpgradeWaves
	if waves <= 0 {
		waves = 4
	}
	drain := o.DrainGateways
	if drain <= 0 {
		drain = 2
	}
	frac := func(sixteenths int64) simtime.Duration { return day / 16 * simtime.Duration(sixteenths) }
	return Spec{
		Name:           "production-day",
		Base:           base,
		FlowBudget:     o.FlowBudget,
		SampleInterval: o.SampleInterval,
		Phases: []Phase{
			{
				Name: "morning-ramp", Duration: frac(3),
				LoadStart: 0.1, LoadEnd: 1.0,
				SLO: SLO{MaxP99FirstPacket: simtime.Millisecond, MinOffload: 0.3, MaxCacheChurn: 0.5},
			},
			{
				Name: "midday-churn", Duration: frac(4),
				LoadStart: 1.0, LoadEnd: 1.0,
				Arrivals: churn, Departures: churn,
				SLO: SLO{MaxP99FirstPacket: simtime.Millisecond, MinOffload: 0.5, MaxCacheChurn: 0.5},
			},
			{
				Name: "migration-storm", Duration: frac(2),
				LoadStart: 0.8, LoadEnd: 0.8,
				Migrations: migrations,
				SLO:        SLO{MaxP99FirstPacket: 2 * simtime.Millisecond, MinOffload: 0.5, MaxCacheChurn: 0.5},
			},
			{
				Name: "gateway-autoscale", Duration: frac(2),
				LoadStart: 0.6, LoadEnd: 0.6,
				DrainGateways: drain,
				SLO:           SLO{MaxP99FirstPacket: 2 * simtime.Millisecond, MinOffload: 0.5, MaxCacheChurn: 0.5},
			},
			{
				Name: "rolling-upgrade", Duration: frac(3),
				LoadStart: 0.5, LoadEnd: 0.5,
				RestoreGateways: drain, UpgradeWaves: waves,
				SLO: SLO{MaxP99FirstPacket: 5 * simtime.Millisecond, MinOffload: 0.4, MaxCacheChurn: 0.5},
			},
			{
				Name: "evening-drain", Duration: frac(2),
				LoadStart: 0.6, LoadEnd: 0.1,
				SLO: SLO{MaxP99FirstPacket: simtime.Millisecond, MinOffload: 0.5, MaxCacheChurn: 0.5},
			},
		},
	}
}
