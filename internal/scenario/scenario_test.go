package scenario

import (
	"bytes"
	"strings"
	"testing"

	"switchv2p/internal/harness"
	"switchv2p/internal/simtime"
	"switchv2p/internal/telemetry"
	"switchv2p/internal/trace"
	"switchv2p/internal/vnet"
)

var wlStub = trace.Workload{Name: "stub"}

// miniDay compresses the production-day structure into a few simulated
// milliseconds so tests run fast while exercising every phase type.
func miniDay(seed int64) Spec {
	return ProductionDay(harness.Config{
		VMs:  512,
		Load: 0.5,
		Seed: seed,
	}, DayOptions{
		DayLength:     4 * simtime.Millisecond,
		FlowBudget:    1200,
		Churn:         12,
		Migrations:    8,
		UpgradeWaves:  2,
		DrainGateways: 2,
	})
}

func TestProductionDayRuns(t *testing.T) {
	rep, err := Run(miniDay(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) != 6 {
		t.Fatalf("got %d phases, want 6", len(rep.Phases))
	}
	trafficPhases := 0
	for i := range rep.Phases {
		if rep.Phases[i].Flows > 0 {
			trafficPhases++
		}
	}
	if trafficPhases < 4 {
		t.Errorf("only %d phases carried traffic, want >= 4", trafficPhases)
	}
	if rep.Flows == 0 || rep.Final == nil || rep.Final.HostSent == 0 {
		t.Fatalf("scenario moved no traffic: flows=%d", rep.Flows)
	}

	byName := map[string]*PhaseReport{}
	for i := range rep.Phases {
		byName[rep.Phases[i].Name] = &rep.Phases[i]
	}
	if p := byName["midday-churn"]; p.Arrivals != 12 || p.Departures != 12 {
		t.Errorf("midday-churn applied %d/%d arrivals/departures, want 12/12", p.Arrivals, p.Departures)
	}
	if p := byName["migration-storm"]; p.Migrations != 8 {
		t.Errorf("migration-storm applied %d migrations, want 8", p.Migrations)
	}
	if p := byName["gateway-autoscale"]; p.FaultEvents != 2 {
		t.Errorf("gateway-autoscale applied %d fault events, want 2 drains", p.FaultEvents)
	}
	if p := byName["rolling-upgrade"]; p.FaultEvents < 4 {
		t.Errorf("rolling-upgrade applied %d fault events, want >= 4 (restores + waves)", p.FaultEvents)
	}
	for i := range rep.Phases {
		p := &rep.Phases[i]
		if p.Flows > 0 && p.Offload <= -1 {
			t.Errorf("phase %s carried traffic but has no offload measurement", p.Name)
		}
	}
}

// TestSameSeedByteIdentical: two runs of the same spec must produce
// byte-identical table and JSON reports.
func TestSameSeedByteIdentical(t *testing.T) {
	var tab [2]bytes.Buffer
	var js [2]bytes.Buffer
	for i := 0; i < 2; i++ {
		rep, err := Run(miniDay(11))
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteTable(&tab[i]); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteJSON(&js[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(tab[0].Bytes(), tab[1].Bytes()) {
		t.Errorf("same-seed tables diverge:\n--- run 0\n%s\n--- run 1\n%s", tab[0].String(), tab[1].String())
	}
	if !bytes.Equal(js[0].Bytes(), js[1].Bytes()) {
		t.Error("same-seed JSON reports diverge")
	}
	if tab[0].Len() == 0 || !strings.Contains(tab[0].String(), "morning-ramp") {
		t.Error("table output is empty or missing phases")
	}
}

// TestWorkerCountInvariance: RunAll must produce identical reports at
// any worker count.
func TestWorkerCountInvariance(t *testing.T) {
	schemes := []string{harness.SchemeSwitchV2P, harness.SchemeNoCache, harness.SchemeGwCache}
	spec := miniDay(3)
	serial, err := RunAll(spec, schemes, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunAll(spec, schemes, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range schemes {
		var a, b bytes.Buffer
		if err := serial[i].WriteJSON(&a); err != nil {
			t.Fatal(err)
		}
		if err := parallel[i].WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("scheme %s: report differs between 1 and 3 workers", schemes[i])
		}
		if serial[i].Scheme == "" {
			t.Errorf("scheme %s: empty report", schemes[i])
		}
	}
}

func TestRunAllRejectsSharedStreamWriters(t *testing.T) {
	spec := miniDay(1)
	var sink bytes.Buffer
	spec.Base.Telemetry = &telemetry.Options{
		Interval: 50 * simtime.Microsecond,
		Stream:   &telemetry.StreamOptions{CSV: &sink},
	}
	if _, err := RunAll(spec, []string{harness.SchemeSwitchV2P, harness.SchemeNoCache}, 2); err == nil {
		t.Fatal("RunAll accepted shared streaming writers with 2 workers")
	}
	if _, err := RunAll(spec, []string{harness.SchemeNoCache}, 1); err != nil {
		t.Fatalf("RunAll with 1 worker should allow streaming: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	base := func() Spec { return miniDay(1).withDefaults() }
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"no phases", func(s *Spec) { s.Phases = nil }, "no phases"},
		{"workload set", func(s *Spec) { s.Base.Workload = &wlStub }, "Workload"},
		{"negative count", func(s *Spec) { s.Phases[0].Migrations = -1 }, "negative"},
		{"unnamed phase", func(s *Spec) { s.Phases[2].Name = "" }, "no name"},
		{"zero duration", func(s *Spec) { s.Phases[1].Duration = 0 }, "duration"},
		{"drain population", func(s *Spec) { s.Phases[1].Departures = s.Base.VMs }, "population"},
		{"tenant range", func(s *Spec) { s.ChurnTenant = vnet.MaxTenantID + 1 }, "VNI"},
	}
	for _, tc := range cases {
		s := base()
		tc.mut(&s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestPlannerRejectsOverdrain(t *testing.T) {
	s := miniDay(1)
	s.Phases[3].DrainGateways = 1000
	if _, err := Run(s); err == nil {
		t.Fatal("Run accepted draining more gateways than exist")
	}
}
