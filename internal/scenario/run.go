package scenario

import (
	"fmt"
	"sync"
	"sync/atomic"

	"switchv2p/internal/baselines"
	"switchv2p/internal/core"
	"switchv2p/internal/harness"
)

// counterSnap is a point-in-time copy of the engine and scheme counters
// the per-phase SLO probes difference. Snapshots are taken inside the
// simulation, by events scheduled at phase boundaries, so phase
// attribution is exact regardless of how long the run is.
type counterSnap struct {
	hostSent, gwPkts   int64
	drops, faultDrops  int64
	staleLookups       int64 // gateway lookups for departed VIPs
	lookups, evictions int64
}

type opCounts struct{ arrivals, departures, migrations int }

type runState struct {
	snaps   []counterSnap // snaps[0] at t=0, snaps[k+1] at end of phase k
	applied []opCounts    // churn operations actually executed, per phase
	opErr   error
}

func takeSnap(w *harness.World) counterSnap {
	c := &w.Engine.C
	s := counterSnap{
		hostSent:     c.HostSent,
		gwPkts:       c.GatewayPackets,
		drops:        c.Drops,
		faultDrops:   c.FaultDrops,
		staleLookups: c.GatewayUnknownVIP,
	}
	if st := coreStatsOf(w); st != nil {
		s.lookups = st.Lookups
		for _, e := range st.EvictionsByLayer {
			s.evictions += e
		}
	}
	return s
}

// coreStatsOf exposes the live SwitchV2P stats for schemes that have
// them (mirrors harness.Report's type switch); nil for cacheless
// baselines, which then skip the cache-churn SLO.
func coreStatsOf(w *harness.World) *core.Stats {
	switch s := w.Scheme.(type) {
	case *core.Scheme:
		return &s.S
	case *baselines.Hybrid:
		return &s.Scheme.S
	}
	return nil
}

// schedule installs the planned churn operations and the phase-boundary
// counter snapshots on the event queue.
func schedule(spec Spec, w *harness.World, pl *plan) *runState {
	rs := &runState{
		snaps:   make([]counterSnap, len(spec.Phases)+1),
		applied: make([]opCounts, len(spec.Phases)),
	}
	rs.snaps[0] = takeSnap(w) // t=0 baseline (all zeros, but uniform)

	for i := range pl.ops {
		op := pl.ops[i]
		w.Engine.Q.At(op.at, func() {
			var err error
			switch op.kind {
			case opArrive:
				err = w.Net.PlaceVM(op.vip, op.host, spec.ChurnTenant)
				rs.applied[op.phase].arrivals++
			case opDepart:
				err = w.Net.RemoveVM(op.vip)
				rs.applied[op.phase].departures++
			case opMigrate:
				err = w.Net.Migrate(op.vip, op.host)
				rs.applied[op.phase].migrations++
			}
			if err != nil && rs.opErr == nil {
				rs.opErr = fmt.Errorf("scenario %q: churn op at %v: %w", spec.Name, op.at, err)
			}
		})
	}
	for k := range spec.Phases {
		k := k
		w.Engine.Q.At(pl.windows[k].end, func() {
			rs.snaps[k+1] = takeSnap(w)
		})
	}
	return rs
}

// Run plans, builds and executes the scenario, returning the per-phase
// SLO report. Same spec, same seed → byte-identical report.
func Run(spec Spec) (*Report, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	w, pl, err := build(spec)
	if err != nil {
		return nil, err
	}
	rs := schedule(spec, w, pl)

	w.Engine.Run(w.Cfg.Horizon)

	if w.Injector != nil {
		if err := w.Injector.Err(); err != nil {
			return nil, err
		}
	}
	if err := w.Telem.FlushStreams(); err != nil {
		return nil, err
	}
	if rs.opErr != nil {
		return nil, rs.opErr
	}
	return assemble(spec, w, pl, rs), nil
}

// RunAll runs the scenario once per scheme (spec.Base.Scheme is
// overridden) with at most workers concurrent runs. Reports come back
// in scheme order regardless of worker count; each run is seeded only
// from its own config, so results are worker-count invariant.
func RunAll(spec Spec, schemes []string, workers int) ([]*Report, error) {
	if len(schemes) == 0 {
		schemes = harness.AllSchemes
	}
	if spec.Base.Telemetry != nil && spec.Base.Telemetry.Stream != nil && workers > 1 {
		return nil, fmt.Errorf("scenario %q: streaming telemetry shares its writers; run with workers <= 1", spec.Name)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(schemes) {
		workers = len(schemes)
	}

	reports := make([]*Report, len(schemes))
	errs := make([]error, len(schemes))
	var next atomic.Int64
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(schemes) {
					return
				}
				s := spec
				s.Base.Scheme = schemes[i]
				//v2plint:workerlocal each worker writes only the slice slot for the index i it claimed via next.Add
				reports[i], errs[i] = Run(s)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return reports, nil
}
