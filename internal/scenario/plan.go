package scenario

import (
	"fmt"
	"math"
	"math/rand"

	"switchv2p/internal/faults"
	"switchv2p/internal/harness"
	"switchv2p/internal/netaddr"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
	"switchv2p/internal/trace"
)

// The planner turns a Spec into a concrete, fully deterministic run: a
// phase timeline, a fault schedule (gateway drains/restores, rolling
// upgrade waves), a churn operation list (arrivals, departures,
// migrations) and the per-phase traffic. All randomness comes from a
// single PRNG seeded off Base.Seed, drawn in a fixed order.

type opKind uint8

const (
	opArrive opKind = iota
	opDepart
	opMigrate
)

type plannedOp struct {
	at    simtime.Time
	kind  opKind
	vip   netaddr.VIP
	host  int32 // arrival host / migration target
	phase int
}

type phaseWindow struct{ start, end simtime.Time }

func (w phaseWindow) duration() simtime.Duration { return simtime.Duration(w.end - w.start) }

// plan is the planner's output: everything the runner schedules.
type plan struct {
	windows []phaseWindow
	horizon simtime.Time // end of the last phase (grace excluded)
	ops     []plannedOp
	flows   []int // flows planned per phase
}

// vmLife tracks one VM across the scenario timeline during planning.
type vmLife struct {
	vip      netaddr.VIP
	bornAt   simtime.Time // 0 for the initial population
	diesAt   simtime.Time // simtime.Never when the VM never departs
	host     int32        // plan-time host (placement, arrival target or migration target)
	migrated bool
}

// build assembles the world and the plan. The order matters: the fault
// schedule must exist before harness.Build (the injector attaches
// there), while churn and traffic planning need the built world (VIP
// reservations, placements).
func build(spec Spec) (*harness.World, *plan, error) {
	base := spec.Base
	topo, err := topology.New(base.Topo)
	if err != nil {
		return nil, nil, err
	}

	pl := &plan{
		windows: make([]phaseWindow, len(spec.Phases)),
		flows:   make([]int, len(spec.Phases)),
	}
	var t simtime.Time
	for k := range spec.Phases {
		pl.windows[k] = phaseWindow{start: t, end: t + simtime.Time(spec.Phases[k].Duration)}
		t = pl.windows[k].end
	}
	pl.horizon = t

	sched, err := planFaults(spec, topo, pl)
	if err != nil {
		return nil, nil, err
	}

	cfg := base
	cfg.Workload = &trace.Workload{Name: spec.Name} // planner-owned; flows added below
	if len(sched.Schedule) > 0 {
		cfg.Faults = &faults.Config{Schedule: sched.Schedule}
	}
	cfg.Horizon = pl.horizon + simtime.Time(spec.DrainGrace)
	if cfg.Telemetry != nil && spec.SampleInterval > 0 {
		topts := *cfg.Telemetry
		topts.Interval = spec.SampleInterval
		cfg.Telemetry = &topts
	}
	w, err := harness.Build(cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := planPopulation(spec, w, pl); err != nil {
		return nil, nil, err
	}
	return w, pl, nil
}

// planFaults compiles gateway autoscaling and rolling-upgrade phases
// into a deterministic fault schedule. Drains take gateways from the
// front of the topology's gateway list (each at most once); restores
// recover the most recently drained.
func planFaults(spec Spec, topo *topology.Topology, pl *plan) (faults.Config, error) {
	var cfg faults.Config
	gws := topo.Gateways()
	var drained []int32
	nextFresh := 0

	var fabric []int32
	for _, sw := range topo.Switches {
		if sw.Role == topology.RoleSpine || sw.Role == topology.RoleCore {
			fabric = append(fabric, sw.Idx)
		}
	}

	for k := range spec.Phases {
		p := &spec.Phases[k]
		start := pl.windows[k].start

		if p.RestoreGateways > 0 {
			if p.RestoreGateways > len(drained) {
				return cfg, fmt.Errorf("scenario %q: phase %q restores %d gateways but only %d are drained",
					spec.Name, p.Name, p.RestoreGateways, len(drained))
			}
			for i := 0; i < p.RestoreGateways; i++ {
				g := drained[len(drained)-1]
				drained = drained[:len(drained)-1]
				cfg.Schedule = append(cfg.Schedule, faults.Event{At: start, Kind: faults.GatewayRecover, Gateway: g})
			}
		}
		if p.DrainGateways > 0 {
			if nextFresh+p.DrainGateways > len(gws) {
				return cfg, fmt.Errorf("scenario %q: phase %q drains more gateways than exist", spec.Name, p.Name)
			}
			if len(drained)+p.DrainGateways >= len(gws) {
				return cfg, fmt.Errorf("scenario %q: phase %q would drain the whole gateway fleet", spec.Name, p.Name)
			}
			for i := 0; i < p.DrainGateways; i++ {
				g := gws[nextFresh]
				nextFresh++
				drained = append(drained, g)
				cfg.Schedule = append(cfg.Schedule, faults.Event{At: start, Kind: faults.GatewayOutage, Gateway: g})
			}
		}

		if p.UpgradeWaves > 0 {
			waves := p.UpgradeWaves
			if waves > len(fabric) {
				waves = len(fabric)
			}
			span := p.Duration / simtime.Duration(waves)
			down := p.UpgradeDowntime
			if down <= 0 {
				down = span / 4
			}
			if max := span * 8 / 10; down > max {
				down = max
			}
			for i := 0; i < waves; i++ {
				waveStart := start + simtime.Time(span)*simtime.Time(i) + simtime.Time(span/10)
				for j := i; j < len(fabric); j += waves {
					cfg.Schedule = append(cfg.Schedule,
						faults.Event{At: waveStart, Kind: faults.SwitchFail, Switch: fabric[j]},
						faults.Event{At: waveStart + simtime.Time(down), Kind: faults.SwitchRecover, Switch: fabric[j]})
				}
			}
		}
	}
	return cfg, nil
}

// planPopulation plans tenant churn, per-phase traffic shaped by the
// diurnal ramp, and migration storms against the built world.
func planPopulation(spec Spec, w *harness.World, pl *plan) error {
	rng := rand.New(rand.NewSource(w.Cfg.Seed ^ 0x5cee7a11))
	servers := w.Topo.Servers()

	lives := make([]vmLife, 0, len(w.VIPs))
	for _, vip := range w.VIPs {
		h, _ := w.Net.HostOf(vip)
		lives = append(lives, vmLife{vip: vip, diesAt: simtime.Never, host: h})
	}

	// ladder spreads n events deterministically over [lo,hi] fractions
	// of phase k, strictly inside the phase.
	ladder := func(k, i, n int, lo, hi float64) simtime.Time {
		win := pl.windows[k]
		f := lo
		if n > 1 {
			f = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		return win.start + simtime.Time(f*float64(win.duration()))
	}

	// Pass 1: churn lifetimes. Arrivals reserve fresh VIPs; departures
	// pick uniformly among VMs alive since before the phase.
	for k := range spec.Phases {
		p := &spec.Phases[k]
		for i := 0; i < p.Arrivals; i++ {
			vip := w.Net.ReserveVIP()
			host := servers[rng.Intn(len(servers))]
			at := ladder(k, i, p.Arrivals, 0.10, 0.60)
			lives = append(lives, vmLife{vip: vip, bornAt: at, diesAt: simtime.Never, host: host})
			pl.ops = append(pl.ops, plannedOp{at: at, kind: opArrive, vip: vip, host: host, phase: k})
		}
		if p.Departures > 0 {
			var cand []int
			for li := range lives {
				if lives[li].diesAt == simtime.Never && lives[li].bornAt < pl.windows[k].start {
					cand = append(cand, li)
				}
			}
			if len(cand) <= p.Departures {
				return fmt.Errorf("scenario %q: phase %q wants %d departures, only %d candidates",
					spec.Name, p.Name, p.Departures, len(cand))
			}
			for i := 0; i < p.Departures; i++ {
				j := rng.Intn(len(cand))
				li := cand[j]
				cand[j] = cand[len(cand)-1]
				cand = cand[:len(cand)-1]
				at := ladder(k, i, p.Departures, 0.30, 0.80)
				lives[li].diesAt = at
				pl.ops = append(pl.ops, plannedOp{at: at, kind: opDepart, vip: lives[li].vip, phase: k})
			}
		}
	}

	// Pass 2: traffic and migration storms. Traffic in phase k flows
	// only between VMs alive for the whole phase, so departures starve
	// their VMs of new flows from the departure phase on (in-flight
	// flows from earlier phases may straggle — the gateway counts those
	// lookups in GatewayUnknownVIP and drops them, as in production).
	var totalMean float64
	for k := range spec.Phases {
		totalMean += spec.Phases[k].meanLoad()
	}
	if totalMean <= 0 {
		return fmt.Errorf("scenario %q: every phase is quiet", spec.Name)
	}
	gen := trace.Generators[w.Cfg.TraceName]
	if gen == nil {
		return fmt.Errorf("scenario %q: unknown trace %q", spec.Name, w.Cfg.TraceName)
	}

	var nextID uint64 = 1
	for k := range spec.Phases {
		p := &spec.Phases[k]
		win := pl.windows[k]

		mean := p.meanLoad()
		if mean > 0 {
			budget := int(math.Round(float64(spec.FlowBudget) * mean / totalMean))
			if budget > 1 {
				var alive []netaddr.VIP
				for li := range lives {
					if lives[li].bornAt <= win.start && lives[li].diesAt >= win.end {
						alive = append(alive, lives[li].vip)
					}
				}
				if len(alive) < 2 {
					return fmt.Errorf("scenario %q: phase %q has %d live VMs, need 2", spec.Name, p.Name, len(alive))
				}
				effLoad := w.Cfg.Load * mean
				if effLoad > 1 {
					effLoad = 1
				}
				wl, err := gen(trace.Config{
					VIPs:        alive,
					Servers:     len(servers),
					HostLinkBps: w.Cfg.Topo.HostLinkBps,
					Load:        effLoad,
					Duration:    p.Duration,
					MaxFlows:    budget,
					Seed:        w.Cfg.Seed + int64(k+1)*1000003,
				})
				if err != nil {
					return fmt.Errorf("scenario %q: phase %q traffic: %w", spec.Name, p.Name, err)
				}
				for i := range wl.Flows {
					f := wl.Flows[i]
					x := float64(f.Start) / float64(p.Duration)
					if x >= 1 {
						x = 1
					}
					f.Start = win.start + simtime.Time(rampWarp(x, p.LoadStart, p.LoadEnd)*float64(win.duration()))
					f.ID = nextID
					nextID++
					w.Agent.AddFlow(f)
				}
				pl.flows[k] = len(wl.Flows)
			}
		}

		if p.Migrations > 0 {
			var cand []int
			for li := range lives {
				l := &lives[li]
				if l.diesAt == simtime.Never && !l.migrated && l.bornAt <= win.start {
					cand = append(cand, li)
				}
			}
			if len(cand) < p.Migrations {
				return fmt.Errorf("scenario %q: phase %q wants %d migrations, only %d candidates",
					spec.Name, p.Name, p.Migrations, len(cand))
			}
			for i := 0; i < p.Migrations; i++ {
				j := rng.Intn(len(cand))
				li := cand[j]
				cand[j] = cand[len(cand)-1]
				cand = cand[:len(cand)-1]
				cur := lives[li].host
				tgt := cur
				for tgt == cur {
					tgt = servers[rng.Intn(len(servers))]
				}
				at := ladder(k, i, p.Migrations, 0.30, 0.70)
				lives[li].migrated = true
				lives[li].host = tgt
				pl.ops = append(pl.ops, plannedOp{at: at, kind: opMigrate, vip: lives[li].vip, host: tgt, phase: k})
			}
		}
	}
	return nil
}

// rampWarp maps a uniform start fraction x in [0,1] through the inverse
// CDF of a linear load density a→b, so flow arrival density inside the
// phase follows the diurnal ramp. Monotone: generator start ordering is
// preserved.
func rampWarp(x, a, b float64) float64 {
	if a == b || a+b <= 0 {
		return x
	}
	// Density f(t) ∝ a + (b-a)t; CDF F(t) = (a·t + (b-a)t²/2)/((a+b)/2).
	// Solve F(t) = x for t.
	disc := a*a + (b-a)*(a+b)*x
	if disc < 0 {
		disc = 0
	}
	return (math.Sqrt(disc) - a) / (b - a)
}
