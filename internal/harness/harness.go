// Package harness assembles full experiments: it builds a topology,
// places VMs, generates a workload, constructs the scheme under test,
// runs the simulation, and collects a Report with the metrics the
// paper's tables and figures use. The sweep helpers regenerate each
// figure's series.
package harness

import (
	"fmt"
	"math/rand"

	"switchv2p/internal/baselines"
	"switchv2p/internal/containers"
	"switchv2p/internal/core"
	"switchv2p/internal/faults"
	"switchv2p/internal/netaddr"
	"switchv2p/internal/simnet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/telemetry"
	"switchv2p/internal/topology"
	"switchv2p/internal/trace"
	"switchv2p/internal/transport"
	"switchv2p/internal/vnet"
)

// Scheme names accepted by Config.Scheme.
const (
	SchemeSwitchV2P     = "switchv2p"
	SchemeNoCache       = "nocache"
	SchemeLocalLearning = "locallearning"
	SchemeGwCache       = "gwcache"
	SchemeBluebird      = "bluebird"
	SchemeOnDemand      = "ondemand"
	SchemeDirect        = "direct"
	SchemeController    = "controller"
	SchemeHybrid        = "hybrid"
	SchemeHostCache     = "hostcache"
	SchemeHostToR       = "hosttor"
)

// AllSchemes lists every supported scheme name.
var AllSchemes = []string{
	SchemeSwitchV2P, SchemeNoCache, SchemeLocalLearning, SchemeGwCache,
	SchemeBluebird, SchemeOnDemand, SchemeDirect, SchemeController,
	SchemeHybrid, SchemeHostCache, SchemeHostToR,
}

// Config describes one simulation run.
type Config struct {
	Topo   topology.Config
	VMs    int
	Scheme string

	// TraceName selects a generator from internal/trace; Workload, when
	// non-nil, is used directly instead.
	TraceName string
	Workload  *trace.Workload

	Load     float64          // offered load fraction (default 0.30)
	Duration simtime.Duration // traced interval (default 1 ms)
	MaxFlows int              // cap on generated flows (0 = uncapped)

	// CacheFraction sizes the aggregate in-network cache relative to the
	// VIP address-space size (the paper's x-axis: 0.01 .. 1500).
	CacheFraction float64

	// SwitchV2P toggles, applied on top of core.DefaultOptions (cache
	// sizing is always computed from CacheFraction).
	V2PLearningPackets *bool
	V2PSpillover       *bool
	V2PPromotion       *bool
	V2PInvalidation    *bool
	V2PTimestampVector *bool
	V2PPLearn          *float64
	// V2PSizeFor optionally overrides per-switch cache sizing
	// (heterogeneous allocation ablation).
	V2PSizeFor func(sw topology.Switch) int
	// V2PAlloc selects a named heterogeneous allocation policy:
	// "" (uniform), "tor-only", or "bandwidth" (fan-in proportional).
	V2PAlloc string
	// V2PLRU replaces the direct-mapped caches with idealized
	// fully-associative LRU caches (ablation).
	V2PLRU bool

	// ControllerInterval is the Controller baseline's refresh period.
	ControllerInterval simtime.Duration

	// Containers, when non-nil, replaces uniform VM placement with a
	// container deployment (internal/containers): Spec.PerHost containers
	// on every server, placed through the vnet churn APIs with services
	// striped across tenants, and the workload generated from the
	// deployment's service mesh instead of TraceName. VMs is derived from
	// the deployment size.
	Containers *containers.Spec

	// HostTTL sets the host-cache schemes' entry TTL (hostcache,
	// hosttor); 0 = entries never expire.
	HostTTL simtime.Duration
	// HostSplit is the fraction of the aggregate cache budget given to
	// the host tier in the hosttor hybrid (default 0.5; hostcache always
	// gets the whole budget).
	HostSplit float64

	// ActiveGateways restricts the gateway pool (Fig. 9); 0 = all.
	ActiveGateways int

	// Horizon stops the simulation at a fixed time (0 = run to drain).
	Horizon simtime.Time

	// Telemetry enables the observability subsystem (internal/telemetry):
	// engine profiling hooks plus an event-driven sampler that records
	// per-switch cache occupancy/hit-rate, queue depth/drop, gateway
	// load and protocol-rate time-series into Report.Telemetry.
	// Strictly opt-in: nil leaves the simulation byte-identical to an
	// uninstrumented run.
	Telemetry *telemetry.Options

	// Faults configures deterministic fault injection (internal/faults):
	// an explicit schedule of link/switch/gateway failures and loss
	// windows, a seeded random switch-failure model, or both. nil (or an
	// empty config) injects nothing and leaves the hot paths on their
	// healthy fast branches.
	Faults *faults.Config

	// Shards enables the sharded deterministic engine with that many
	// worker goroutines over the topology's pod/core domains (0 = the
	// classic serial engine). Results are byte-identical at every shard
	// count and to ShardOracle mode — the worker count only changes how
	// domains are claimed, never what they compute — but not to the
	// serial engine, whose global event tie-breaking differs (see
	// DESIGN.md). Only schemes free of global mutable per-event state
	// support sharding: switchv2p, nocache, direct, gwcache.
	Shards int
	// ShardOracle runs the sharded engine in its serial oracle mode:
	// the same domain decomposition, cross-shard mailboxes and event
	// keys as Shards>0, dispatched by one goroutine in globally
	// earliest-first order. The determinism tests compare it against the
	// windowed parallel runs to validate the synchronization protocol.
	ShardOracle bool

	// SweepWorkers bounds how many simulations the sweep helpers
	// (CacheSizeSweep, GatewaySweep, TopologySweep) run concurrently;
	// 0 or 1 means serial. Every sweep point is an independent run
	// seeded only from its own Config, so results and output order are
	// identical at any worker count.
	SweepWorkers int

	Seed int64
}

// ShardSupported reports whether the named scheme can run on the
// sharded deterministic engine (Config.Shards / Config.ShardOracle).
// The whitelist is audited by hand: a scheme qualifies only if every
// per-event mutation it performs is confined to the event's own shard
// domain or routed through per-shard slots (simnet.ShardAware).
func ShardSupported(scheme string) bool {
	switch scheme {
	case SchemeSwitchV2P, SchemeNoCache, SchemeDirect, SchemeGwCache:
		return true
	}
	return false
}

// forScheme returns the config with Scheme set to the given name,
// dropping any sharded-engine request the scheme cannot honor. The
// sweep helpers use it because their scheme lists mix whitelisted and
// serial-only schemes: a Shards setting on the base config is
// best-effort across the sweep, strict on a direct Build/Run.
func (c Config) forScheme(scheme string) Config {
	c.Scheme = scheme
	if !ShardSupported(scheme) {
		c.Shards = 0
		c.ShardOracle = false
	}
	return c
}

// WithDefaults returns the config with every zero value filled in the
// way Build would fill it. Exported for drivers (internal/scenario)
// that must know the effective topology/trace/seed before building.
func (c Config) WithDefaults() Config { return c.withDefaults() }

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.Topo.Pods == 0 {
		c.Topo = topology.FT8()
	}
	if c.VMs == 0 {
		c.VMs = 1024
	}
	if c.Scheme == "" {
		c.Scheme = SchemeSwitchV2P
	}
	if c.TraceName == "" && c.Workload == nil {
		c.TraceName = "hadoop"
	}
	if c.Load == 0 {
		c.Load = 0.30
	}
	if c.Duration == 0 {
		c.Duration = simtime.Millisecond
	}
	if c.CacheFraction == 0 {
		c.CacheFraction = 0.5
	}
	if c.ControllerInterval == 0 {
		c.ControllerInterval = 150 * simtime.Microsecond
	}
	if c.Horizon == 0 {
		c.Horizon = simtime.Never
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Report is the outcome of one run.
type Report struct {
	Scheme  string
	Summary transport.Summary

	// HitRate is the paper's definition: the fraction of sent packets
	// that did not reach a translation gateway.
	HitRate        float64
	GatewayPackets int64
	HostSent       int64

	AvgStretch       float64
	TotalSwitchBytes int64
	PerPodBytes      []int64 // bytes processed by each pod's switches
	PerSwitchBytes   []int64 // indexed by switch

	Misdeliveries    int64
	LastMisdelivered simtime.Time
	Drops            int64
	LearningPkts     int64
	InvalidationPkts int64
	AvgPacketLatency simtime.Duration

	// Fault-injection outcomes (all zero without Config.Faults).
	FaultDrops  int64 // packets dropped at downed links/switches/gateways
	LossDrops   int64 // packets dropped by probabilistic loss windows
	Rerouted    int64 // packets steered off their hash-preferred ECMP hop
	FaultEvents int   // fault events applied during the run

	// CoreStats is present for SwitchV2P runs (Table 5 attribution).
	CoreStats *core.Stats

	// HostStats is present for the host-cache scheme family (hostcache,
	// hosttor): host-tier hits, installs, evictions, TTL expiries and
	// host-layer invalidations.
	HostStats *baselines.HostStats

	// Telemetry holds the run's collected observability data when
	// Config.Telemetry was set; nil otherwise.
	Telemetry *telemetry.Collector

	// World exposes the built simulation for further inspection or
	// additional phases (e.g. the migration experiment).
	World *World
}

// World is the assembled simulation.
type World struct {
	Topo   *topology.Topology
	Net    *vnet.Net
	Engine *simnet.Engine
	Agent  *transport.Agent
	Scheme simnet.Scheme
	VIPs   []netaddr.VIP
	Cfg    Config

	// Telem is the attached telemetry collector (nil when disabled).
	Telem *telemetry.Collector

	// Injector is the attached fault injector (nil when Config.Faults
	// is unset); inspect Injector.Applied and Injector.Err after a run.
	Injector *faults.Injector
}

// totalCacheEntries converts the cache fraction into aggregate entries.
func totalCacheEntries(fraction float64, vms int) int {
	return int(fraction * float64(vms))
}

// BuildScheme constructs the named scheme sized for the topology.
func BuildScheme(cfg Config, topo *topology.Topology) (simnet.Scheme, error) {
	total := totalCacheEntries(cfg.CacheFraction, cfg.VMs)
	nSwitches := len(topo.Switches)
	perSwitch := total / nSwitches
	// Budgets smaller than the switch count are spread one entry per
	// switch over the first (total mod N) switches instead of vanishing
	// to integer division.
	spread := func(sw topology.Switch) int {
		lines := perSwitch
		if int(sw.Idx) < total%nSwitches {
			lines++
		}
		return lines
	}
	switch cfg.Scheme {
	case SchemeSwitchV2P:
		opts := core.DefaultOptions(perSwitch)
		opts.SizeFor = spread
		opts.Seed = cfg.Seed
		if cfg.V2PLearningPackets != nil {
			opts.LearningPackets = *cfg.V2PLearningPackets
		}
		if cfg.V2PSpillover != nil {
			opts.Spillover = *cfg.V2PSpillover
		}
		if cfg.V2PPromotion != nil {
			opts.Promotion = *cfg.V2PPromotion
		}
		if cfg.V2PInvalidation != nil {
			opts.Invalidation = *cfg.V2PInvalidation
		}
		if cfg.V2PTimestampVector != nil {
			opts.TimestampVector = *cfg.V2PTimestampVector
		}
		if cfg.V2PPLearn != nil {
			opts.PLearn = *cfg.V2PPLearn
		}
		if cfg.V2PSizeFor != nil {
			opts.SizeFor = cfg.V2PSizeFor
		}
		switch cfg.V2PAlloc {
		case "":
		case "tor-only":
			opts.SizeFor = core.AllocToROnly(topo, total)
		case "bandwidth":
			opts.SizeFor = core.AllocBandwidthProportional(topo, total)
		default:
			return nil, fmt.Errorf("harness: unknown V2P allocation policy %q", cfg.V2PAlloc)
		}
		opts.LRU = cfg.V2PLRU
		return core.New(topo, opts), nil
	case SchemeNoCache:
		return baselines.NewNoCache(), nil
	case SchemeLocalLearning:
		return baselines.NewLocalLearning(topo, perSwitch), nil
	case SchemeGwCache:
		return baselines.NewGwCache(topo, total), nil
	case SchemeBluebird:
		nToRs := len(topo.ToRs())
		return baselines.NewBluebird(topo, total/nToRs, baselines.DefaultBluebirdParams()), nil
	case SchemeOnDemand:
		return baselines.NewOnDemand(topo, 40*simtime.Microsecond), nil
	case SchemeDirect:
		return baselines.NewDirect(), nil
	case SchemeController:
		return baselines.NewController(topo, perSwitch, cfg.ControllerInterval), nil
	case SchemeHybrid:
		opts := core.DefaultOptions(perSwitch)
		opts.SizeFor = spread
		opts.Seed = cfg.Seed
		// Hoverboard-style offload after 20 packets; millisecond-scale
		// rule installation as in Zeta/Achelous.
		return baselines.NewHybrid(topo, opts, 20, simtime.Millisecond), nil
	case SchemeHostCache:
		// The whole budget goes to the hosts, divided evenly: per-host
		// hardware capacity is uniform, so small aggregate budgets can
		// floor to zero entries per host — exactly the regime where
		// in-switch aggregation wins the crossover.
		opt := baselines.DefaultHostTierOptions(total / len(topo.Servers()))
		opt.TTL = cfg.HostTTL
		return baselines.NewHostCache(topo, opt), nil
	case SchemeHostToR:
		// Split the budget between the host tier and a ToR-only
		// SwitchV2P tier.
		split := cfg.HostSplit
		if split <= 0 || split >= 1 {
			split = 0.5
		}
		hostBudget := int(float64(total) * split)
		opts := core.DefaultOptions(0)
		opts.SizeFor = core.AllocToROnly(topo, total-hostBudget)
		opts.Seed = cfg.Seed
		opt := baselines.DefaultHostTierOptions(hostBudget / len(topo.Servers()))
		opt.TTL = cfg.HostTTL
		return baselines.NewHostToR(topo, opts, opt), nil
	default:
		return nil, fmt.Errorf("harness: unknown scheme %q", cfg.Scheme)
	}
}

// Build assembles a World without running it.
func Build(cfg Config) (*World, error) {
	cfg = cfg.withDefaults()
	topo, err := topology.New(cfg.Topo)
	if err != nil {
		return nil, err
	}
	net := vnet.New(topo)
	var vips []netaddr.VIP
	var dep *containers.Deployment
	if cfg.Containers != nil {
		// Container deployment: density-driven placement through the vnet
		// churn APIs replaces uniform placement, and VMs is derived from
		// the deployment before BuildScheme sizes the caches against it.
		dep, err = containers.Place(net, *cfg.Containers, cfg.Seed)
		if err != nil {
			return nil, err
		}
		vips = dep.VIPs
		cfg.VMs = len(vips)
	} else {
		rng := rand.New(rand.NewSource(cfg.Seed))
		vips = net.PlaceUniform(cfg.VMs, rng)
	}

	scheme, err := BuildScheme(cfg, topo)
	if err != nil {
		return nil, err
	}
	engCfg := simnet.DefaultConfig()
	engCfg.ActiveGateways = cfg.ActiveGateways
	engine := simnet.New(topo, net, scheme, engCfg)
	if cfg.Shards > 0 || cfg.ShardOracle {
		if !ShardSupported(cfg.Scheme) {
			return nil, fmt.Errorf("harness: scheme %q does not support the sharded engine; use one of: %s, %s, %s, %s",
				cfg.Scheme, SchemeSwitchV2P, SchemeNoCache, SchemeDirect, SchemeGwCache)
		}
		workers := cfg.Shards
		if workers <= 0 {
			workers = 1
		}
		engine.ShardOracle = cfg.ShardOracle
		engine.EnableSharding(workers)
	}
	agent := transport.New(engine, transport.DefaultConfig())

	w := &World{
		Topo: topo, Net: net, Engine: engine, Agent: agent,
		Scheme: scheme, VIPs: vips, Cfg: cfg,
	}
	if cfg.Telemetry != nil {
		w.attachTelemetry(*cfg.Telemetry)
	}
	if !cfg.Faults.Empty() {
		inj, err := faults.New(cfg.Faults, topo)
		if err != nil {
			return nil, err
		}
		inj.Attach(engine, cfg.Faults, w.Telem)
		w.Injector = inj
	}

	workload := cfg.Workload
	if workload == nil {
		traceCfg := trace.Config{
			VIPs:        vips,
			Servers:     len(topo.Servers()),
			HostLinkBps: cfg.Topo.HostLinkBps,
			Load:        cfg.Load,
			Duration:    cfg.Duration,
			MaxFlows:    cfg.MaxFlows,
			Seed:        cfg.Seed,
		}
		if dep != nil {
			workload, err = dep.Workload(traceCfg)
		} else {
			gen := trace.Generators[cfg.TraceName]
			if gen == nil {
				return nil, fmt.Errorf("harness: unknown trace %q", cfg.TraceName)
			}
			workload, err = gen(traceCfg)
		}
		if err != nil {
			return nil, err
		}
	}
	for _, f := range workload.Flows {
		agent.AddFlow(f)
	}
	return w, nil
}

// Run builds and runs a full experiment.
func Run(cfg Config) (*Report, error) {
	w, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	w.Engine.Run(w.Cfg.Horizon)
	if w.Injector != nil {
		if err := w.Injector.Err(); err != nil {
			return nil, err
		}
	}
	// Streaming telemetry buffers bytes in its writers until flushed; a
	// buffered (or absent) collector makes this a no-op.
	if err := w.Telem.FlushStreams(); err != nil {
		return nil, err
	}
	return w.Report(), nil
}

// Report assembles the metrics from the current simulation state.
func (w *World) Report() *Report {
	c := &w.Engine.C
	r := &Report{
		Scheme:           w.Scheme.Name(),
		Summary:          w.Agent.Summarize(),
		GatewayPackets:   c.GatewayPackets,
		HostSent:         c.HostSent,
		AvgStretch:       c.AvgStretch(),
		TotalSwitchBytes: c.TotalSwitchBytes(),
		PerSwitchBytes:   append([]int64(nil), c.SwitchBytes...),
		Misdeliveries:    c.Misdeliveries,
		LastMisdelivered: c.LastMisdelivered,
		Drops:            c.Drops,
		LearningPkts:     c.LearningPkts,
		InvalidationPkts: c.InvalidationPkts,
		AvgPacketLatency: c.AvgPacketLatency(),
		FaultDrops:       c.FaultDrops,
		LossDrops:        c.LossDrops,
		Rerouted:         c.Rerouted,
		World:            w,
	}
	if w.Injector != nil {
		r.FaultEvents = len(w.Injector.Applied)
	}
	if c.HostSent > 0 {
		r.HitRate = 1 - float64(c.GatewayPackets)/float64(c.HostSent)
	}
	r.PerPodBytes = make([]int64, w.Topo.Cfg.Pods)
	for _, sw := range w.Topo.Switches {
		if sw.Pod >= 0 {
			r.PerPodBytes[sw.Pod] += c.SwitchBytes[sw.Idx]
		}
	}
	switch s := w.Scheme.(type) {
	case *core.Scheme:
		stats := s.S
		r.CoreStats = &stats
	case *baselines.Hybrid:
		stats := s.Scheme.S
		r.CoreStats = &stats
	case *baselines.HostCache:
		hs := *s.HostStats()
		r.HostStats = &hs
	case *baselines.HostToR:
		stats := s.Scheme.S
		r.CoreStats = &stats
		hs := *s.HostStats()
		r.HostStats = &hs
	}
	r.Telemetry = w.Telem
	return r
}

// PodSwitchBytes returns pod-local per-switch byte counts in the paper's
// Fig. 8 order (spines first, then ToRs, gateway ToR last).
func (r *Report) PodSwitchBytes(pod int) []int64 {
	topo := r.World.Topo
	var out []int64
	for _, idx := range topo.SwitchesInPod(pod) {
		out = append(out, r.PerSwitchBytes[idx])
	}
	return out
}
