package harness

import (
	"bytes"
	"runtime"
	"testing"

	"switchv2p/internal/simtime"
	"switchv2p/internal/telemetry"
)

// TestStreamingTelemetryOracle proves the streaming exporters against
// the buffered ones on a full experiment: a short run with buffered
// collection, exported at the end, must be byte-identical to the same
// run streamed incrementally through a small ring window. The buffered
// path is the oracle; any divergence in the incremental emitters fails
// here.
func TestStreamingTelemetryOracle(t *testing.T) {
	buffered := quickConfig(SchemeSwitchV2P)
	buffered.Telemetry = &telemetry.Options{Interval: 5 * simtime.Microsecond}
	oracle, err := Run(buffered)
	if err != nil {
		t.Fatal(err)
	}
	var wantCSV, wantNDJ bytes.Buffer
	if err := oracle.Telemetry.WriteCSV(&wantCSV); err != nil {
		t.Fatal(err)
	}
	if err := oracle.Telemetry.WriteNDJSON(&wantNDJ); err != nil {
		t.Fatal(err)
	}

	var gotCSV, gotNDJ bytes.Buffer
	streamed := quickConfig(SchemeSwitchV2P)
	streamed.Telemetry = &telemetry.Options{
		Interval: 5 * simtime.Microsecond,
		Stream:   &telemetry.StreamOptions{CSV: &gotCSV, NDJSON: &gotNDJ, Window: 16},
	}
	rep, err := Run(streamed)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Telemetry.StreamErr(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(gotCSV.Bytes(), wantCSV.Bytes()) {
		t.Errorf("streamed CSV diverges from buffered oracle (%d vs %d bytes)", gotCSV.Len(), wantCSV.Len())
	}
	if !bytes.Equal(gotNDJ.Bytes(), wantNDJ.Bytes()) {
		t.Errorf("streamed NDJSON diverges from buffered oracle (%d vs %d bytes)", gotNDJ.Len(), wantNDJ.Len())
	}
	// Streaming must not perturb the simulation either.
	if got, want := reportFingerprint(rep), reportFingerprint(oracle); got != want {
		t.Errorf("streaming telemetry perturbed the run\nbuffered: %s\nstreamed: %s", want, got)
	}
	if rep.Telemetry.Timeline.Dropped == 0 {
		t.Error("window never evicted; test did not exercise the ring")
	}
	if got := len(rep.Telemetry.Timeline.Times); got > 16 {
		t.Errorf("streaming collector retains %d samples, window is 16", got)
	}
}

// TestStreamingLongHorizonConstantMemory runs a long simulated horizon
// with streaming telemetry and checks, via in-simulation heap
// checkpoints, that retained memory does not grow with simulated time:
// the collector holds only its ring window no matter how many samples
// have been emitted.
func TestStreamingLongHorizonConstantMemory(t *testing.T) {
	var csv lengthWriter
	cfg := quickConfig(SchemeSwitchV2P)
	cfg.Duration = 10 * simtime.Millisecond // 50x the quick config
	cfg.MaxFlows = 200
	cfg.Telemetry = &telemetry.Options{
		Interval: 500 * simtime.Nanosecond, // ~20k ticks over the run
		Stream:   &telemetry.StreamOptions{CSV: &csv, Window: 64},
	}
	w, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}

	heapAt := func() uint64 {
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return m.HeapAlloc
	}
	var early, late uint64
	w.Engine.Q.At(2*simtime.Time(simtime.Millisecond), func() { early = heapAt() })
	w.Engine.Q.At(10*simtime.Time(simtime.Millisecond), func() { late = heapAt() })
	w.Engine.Run(simtime.Never)
	if err := w.Telem.FlushStreams(); err != nil {
		t.Fatal(err)
	}

	if early == 0 || late == 0 {
		t.Fatal("heap checkpoints did not run")
	}
	ticks := w.Telem.Ticks()
	if ticks < 10000 {
		t.Fatalf("only %d ticks; horizon too short to prove anything", ticks)
	}
	if got := len(w.Telem.Timeline.Times); got > 64 {
		t.Errorf("collector retains %d samples, window is 64", got)
	}
	if w.Telem.Timeline.Dropped != ticks-int64(len(w.Telem.Timeline.Times)) {
		t.Errorf("eviction accounting off: %d dropped, %d ticks, %d retained",
			w.Telem.Timeline.Dropped, ticks, len(w.Telem.Timeline.Times))
	}
	if csv.n == 0 {
		t.Error("no CSV bytes streamed")
	}
	// Between the checkpoints ~16k further samples stream out. Buffered
	// collection would retain them all (multi-MB); streaming must stay
	// within GC noise. 3 MiB is far below the buffered footprint.
	const slack = 3 << 20
	if late > early+slack {
		t.Errorf("heap grew %d bytes between 2ms and 10ms of simulated time; streaming should be constant-memory", late-early)
	}
}

// lengthWriter counts bytes without retaining them, so the test's own
// sink cannot mask collector growth.
type lengthWriter struct{ n int64 }

func (l *lengthWriter) Write(p []byte) (int, error) {
	l.n += int64(len(p))
	return len(p), nil
}
