package harness

import (
	"bytes"
	"fmt"
	"testing"

	"switchv2p/internal/core"
	"switchv2p/internal/faults"
	"switchv2p/internal/simtime"
	"switchv2p/internal/telemetry"
	"switchv2p/internal/topology"
)

// faultyConfig layers a full fault scenario — explicit switch failure,
// gateway outage, loss window, plus a seeded random switch-failure
// model — over the standard quick config.
func faultyConfig(scheme string, faultSeed int64) Config {
	cfg := quickConfig(scheme)
	topo, err := topology.New(cfg.Topo)
	if err != nil {
		panic(err)
	}
	gw := topo.Gateways()[0]
	host := topo.Servers()[0]
	cfg.Faults = &faults.Config{
		Schedule: []faults.Event{
			{At: simtime.Time(40 * simtime.Microsecond), Kind: faults.SwitchFail, Switch: 1},
			{At: simtime.Time(90 * simtime.Microsecond), Kind: faults.SwitchRecover, Switch: 1},
			{At: simtime.Time(30 * simtime.Microsecond), Kind: faults.GatewayOutage, Gateway: gw},
			{At: simtime.Time(120 * simtime.Microsecond), Kind: faults.GatewayRecover, Gateway: gw},
			{At: simtime.Time(50 * simtime.Microsecond), Kind: faults.LossStart,
				A: topology.HostRef(host), B: topology.SwitchRef(topo.Hosts[host].ToR), LossRate: 0.3},
			{At: simtime.Time(100 * simtime.Microsecond), Kind: faults.LossEnd,
				A: topology.HostRef(host), B: topology.SwitchRef(topo.Hosts[host].ToR)},
		},
		Random: &faults.RandomModel{
			Seed:    faultSeed,
			MTBF:    2 * simtime.Millisecond,
			MTTR:    50 * simtime.Microsecond,
			Horizon: simtime.Time(0).Add(cfg.Duration),
		},
		LossSeed: faultSeed,
	}
	return cfg
}

// TestFaultInjectionDeterminism is the regression guard for the
// subsystem's core promise: two runs with the same workload seed and the
// same fault config are byte-identical — same report, same fault
// timeline, same exported telemetry document.
func TestFaultInjectionDeterminism(t *testing.T) {
	for _, scheme := range []string{SchemeSwitchV2P, SchemeNoCache} {
		run := func() (*Report, string, string) {
			cfg := faultyConfig(scheme, 7)
			cfg.Telemetry = &telemetry.Options{Interval: 5 * simtime.Microsecond}
			r, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// The comparable document: sampled timeline plus registry
			// contents. The engine profile is wall-clock and so is
			// legitimately different run to run.
			var timeline, doc bytes.Buffer
			if err := r.Telemetry.WriteFaultsCSV(&timeline); err != nil {
				t.Fatal(err)
			}
			if err := r.Telemetry.WriteCSV(&doc); err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&doc, "%+v\n%+v\n", r.Telemetry.Registry.Counters(), r.Telemetry.Registry.Gauges())
			return r, timeline.String(), doc.String()
		}
		r1, tl1, doc1 := run()
		r2, tl2, doc2 := run()

		if r1.FaultEvents == 0 {
			t.Fatalf("%s: no fault events applied", scheme)
		}
		if r1.FaultDrops+r1.LossDrops == 0 {
			t.Fatalf("%s: fault scenario dropped nothing", scheme)
		}
		if got, want := reportFingerprint(r2), reportFingerprint(r1); got != want {
			t.Errorf("%s: reports differ across identical fault runs\nfirst:  %s\nsecond: %s", scheme, want, got)
		}
		if tl1 != tl2 {
			t.Errorf("%s: fault timelines differ across identical fault runs\nfirst:\n%s\nsecond:\n%s", scheme, tl1, tl2)
		}
		if doc1 != doc2 {
			t.Errorf("%s: telemetry documents differ across identical fault runs", scheme)
		}
		if len(tl1) == 0 {
			t.Errorf("%s: empty fault timeline", scheme)
		}

		// A different fault seed must change the scenario (different
		// random failure times), or the seed is not actually wired in.
		cfg := faultyConfig(scheme, 8)
		cfg.Telemetry = &telemetry.Options{Interval: 5 * simtime.Microsecond}
		r3, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var tl3 bytes.Buffer
		if err := r3.Telemetry.WriteFaultsCSV(&tl3); err != nil {
			t.Fatal(err)
		}
		if tl3.String() == tl1 {
			t.Errorf("%s: fault timeline identical across different fault seeds", scheme)
		}
	}
}

// TestSwitchFailureFlushesAndRelearns checks the cache-loss semantics
// end to end: when a ToR that has learned mappings crashes, its cache
// must be empty, and after recovery it must re-learn from passing
// traffic without any control-plane help.
func TestSwitchFailureFlushesAndRelearns(t *testing.T) {
	// Scout run: find a ToR with learned state at 100µs.
	scout, err := Build(quickConfig(SchemeSwitchV2P))
	if err != nil {
		t.Fatal(err)
	}
	scout.Engine.Run(simtime.Time(100 * simtime.Microsecond))
	scheme := scout.Scheme.(*core.Scheme)
	victim := int32(-1)
	for _, sw := range scout.Topo.Switches {
		if sw.Role.IsToR() && scheme.Cache(sw.Idx).Used() > 0 {
			victim = sw.Idx
			break
		}
	}
	if victim < 0 {
		t.Fatal("no ToR learned anything by 100µs")
	}

	// Real run: same seed, crash that ToR at 100µs, recover at 150µs.
	cfg := quickConfig(SchemeSwitchV2P)
	cfg.Faults = &faults.Config{Schedule: []faults.Event{
		{At: simtime.Time(100 * simtime.Microsecond), Kind: faults.SwitchFail, Switch: victim},
		{At: simtime.Time(150 * simtime.Microsecond), Kind: faults.SwitchRecover, Switch: victim},
	}}
	w, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Run to just past the failure: the cache must be flushed.
	w.Engine.Run(simtime.Time(110 * simtime.Microsecond))
	cache := w.Scheme.(*core.Scheme).Cache(victim)
	if got := cache.Used(); got != 0 {
		t.Fatalf("victim ToR still holds %d mappings right after the crash", got)
	}
	if !w.Engine.SwitchFaulted(victim) {
		t.Fatal("victim not marked failed")
	}
	// Drain: the recovered ToR must have re-learned from traffic.
	w.Engine.Run(simtime.Never)
	if err := w.Injector.Err(); err != nil {
		t.Fatal(err)
	}
	if w.Engine.SwitchFaulted(victim) {
		t.Fatal("victim still marked failed after recovery")
	}
	if got := cache.Used(); got == 0 {
		t.Fatal("recovered ToR re-learned nothing")
	}
	c := &w.Engine.C
	if c.FaultDrops == 0 {
		t.Fatal("switch failure dropped nothing")
	}
	if c.Delivered+c.Drops < c.HostSent {
		t.Fatalf("conservation violated: delivered %d + drops %d < sent %d",
			c.Delivered, c.Drops, c.HostSent)
	}
}
