package harness

import (
	"math/rand"
	"testing"
	"testing/quick"

	"switchv2p/internal/faults"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
	"switchv2p/internal/trace"
	"switchv2p/internal/transport"
)

// TestSystemInvariantsUnderRandomScenarios is the repo's core
// correctness property (README "Key invariant"): across random small
// topologies, random workloads, random schemes, random cache sizes and
// random mid-run VM migrations —
//
//  1. every TCP flow completes (caches are never needed for correctness),
//  2. no control packets leak to hosts,
//  3. the gateway never sees an unknown VIP,
//  4. packet conservation holds at drain.
func TestSystemInvariantsUnderRandomScenarios(t *testing.T) {
	schemes := []string{
		SchemeSwitchV2P, SchemeNoCache, SchemeLocalLearning, SchemeGwCache,
		SchemeOnDemand, SchemeDirect, SchemeController, SchemeHybrid,
		SchemeHostCache, SchemeHostToR,
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))

		topoCfg := topology.FT8()
		topoCfg.Pods = 2 + rng.Intn(3)*2 // 2, 4 or 6
		topoCfg.RacksPerPod = 2 + rng.Intn(2)
		topoCfg.SpinesPerPod = 2
		topoCfg.Cores = 4
		topoCfg.ServersPerRack = 2
		topoCfg.GatewayPods = []int{0}
		topoCfg.GatewaysPerPod = 2 + rng.Intn(3)

		cfg := Config{
			Topo:          topoCfg,
			VMs:           64 + rng.Intn(128),
			Scheme:        schemes[rng.Intn(len(schemes))],
			CacheFraction: []float64{0.05, 0.5, 2}[rng.Intn(3)],
			Seed:          seed,
			Workload:      &trace.Workload{Name: "custom"},
		}
		w, err := Build(cfg)
		if err != nil {
			t.Logf("seed %d: build: %v", seed, err)
			return false
		}
		// Random TCP flows.
		nFlows := 5 + rng.Intn(30)
		for i := 0; i < nFlows; i++ {
			src := w.VIPs[rng.Intn(len(w.VIPs))]
			dst := w.VIPs[rng.Intn(len(w.VIPs))]
			if src == dst {
				continue
			}
			w.Agent.AddFlow(transport.FlowSpec{
				ID: uint64(i + 1), Src: src, Dst: dst, Proto: transport.TCP,
				Bytes: 1 + rng.Intn(100_000),
				Start: simtime.Time(rng.Intn(200_000)),
			})
		}
		// Random migrations mid-run.
		servers := w.Topo.Servers()
		for m := 0; m < 1+rng.Intn(3); m++ {
			vip := w.VIPs[rng.Intn(len(w.VIPs))]
			target := servers[rng.Intn(len(servers))]
			at := simtime.Time(rng.Intn(300_000))
			w.Engine.Q.At(at, func() {
				if cur, _ := w.Net.HostOf(vip); cur != target {
					_ = w.Net.Migrate(vip, target)
				}
			})
		}
		w.Engine.Run(simtime.Never)

		s := w.Agent.Summarize()
		c := &w.Engine.C
		if s.Completed != s.Flows {
			t.Logf("seed %d scheme %s: completed %d/%d (timedout %d, drops %d)",
				seed, cfg.Scheme, s.Completed, s.Flows, s.TimedOut, c.Drops)
			return false
		}
		if c.StrayControlPkts != 0 {
			t.Errorf("seed %d scheme %s: %d stray control packets", seed, cfg.Scheme, c.StrayControlPkts)
			return false
		}
		if c.GatewayUnknownVIP != 0 {
			t.Errorf("seed %d scheme %s: %d gateway unknown VIPs", seed, cfg.Scheme, c.GatewayUnknownVIP)
			return false
		}
		// Conservation: every host-sent tenant packet was delivered,
		// dropped, or consumed legitimately. (Misdelivered packets are
		// re-sends of the same packet, so they do not add to HostSent.)
		if c.Delivered+c.Drops < c.HostSent {
			t.Logf("seed %d: conservation violated: delivered %d + drops %d < sent %d",
				seed, c.Delivered, c.Drops, c.HostSent)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSystemInvariantsUnderFaultSchedules re-runs the random-scenario
// property with a random fault schedule layered on top: switch crashes
// with recovery, gateway outages, link failures and loss windows. Under
// faults the "every flow completes" invariant necessarily weakens —
// flows caught in a long outage exhaust their retries — but nothing may
// be lost silently:
//
//  1. every flow completes or times out (none vanish),
//  2. no control packets leak to hosts,
//  3. the gateway never sees an unknown VIP,
//  4. packet conservation holds (fault drops are still drops),
//  5. the injector applied its whole schedule without errors.
func TestSystemInvariantsUnderFaultSchedules(t *testing.T) {
	schemes := []string{
		SchemeSwitchV2P, SchemeNoCache, SchemeLocalLearning, SchemeGwCache,
		SchemeOnDemand, SchemeDirect, SchemeController, SchemeHybrid,
		SchemeHostCache, SchemeHostToR,
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))

		topoCfg := topology.FT8()
		topoCfg.Pods = 2 + rng.Intn(3)*2
		topoCfg.RacksPerPod = 2 + rng.Intn(2)
		topoCfg.SpinesPerPod = 2
		topoCfg.Cores = 4
		topoCfg.ServersPerRack = 2
		topoCfg.GatewayPods = []int{0}
		topoCfg.GatewaysPerPod = 2 + rng.Intn(3)

		topo, err := topology.New(topoCfg)
		if err != nil {
			t.Errorf("seed %d: topology: %v", seed, err)
			return false
		}

		// Random fault schedule. Every fault recovers before 400µs so the
		// drain phase runs on a healthy network and stalled flows get a
		// chance to finish (or exhaust their retries — both are legal).
		var schedule []faults.Event
		window := func() (simtime.Time, simtime.Time) {
			a := simtime.Time(rng.Intn(200_000))
			return a, a + simtime.Time(1+rng.Intn(200_000))
		}
		for i := 0; i < 1+rng.Intn(2); i++ {
			sw := int32(rng.Intn(len(topo.Switches)))
			at, rec := window()
			schedule = append(schedule,
				faults.Event{At: at, Kind: faults.SwitchFail, Switch: sw},
				faults.Event{At: rec, Kind: faults.SwitchRecover, Switch: sw})
		}
		gws := topo.Gateways()
		if rng.Intn(2) == 0 && len(gws) > 1 {
			g := gws[rng.Intn(len(gws))]
			at, rec := window()
			schedule = append(schedule,
				faults.Event{At: at, Kind: faults.GatewayOutage, Gateway: g},
				faults.Event{At: rec, Kind: faults.GatewayRecover, Gateway: g})
		}
		if rng.Intn(2) == 0 {
			edge := topo.Edges[rng.Intn(len(topo.Edges))]
			at, rec := window()
			schedule = append(schedule,
				faults.Event{At: at, Kind: faults.LinkDown, A: edge.A, B: edge.B},
				faults.Event{At: rec, Kind: faults.LinkUp, A: edge.A, B: edge.B})
		}
		if rng.Intn(2) == 0 {
			edge := topo.Edges[rng.Intn(len(topo.Edges))]
			at, rec := window()
			schedule = append(schedule,
				faults.Event{At: at, Kind: faults.LossStart, A: edge.A, B: edge.B,
					LossRate: []float64{0.05, 0.5, 1}[rng.Intn(3)]},
				faults.Event{At: rec, Kind: faults.LossEnd, A: edge.A, B: edge.B})
		}

		cfg := Config{
			Topo:          topoCfg,
			VMs:           64 + rng.Intn(128),
			Scheme:        schemes[rng.Intn(len(schemes))],
			CacheFraction: []float64{0.05, 0.5, 2}[rng.Intn(3)],
			Seed:          seed,
			Workload:      &trace.Workload{Name: "custom"},
			Faults:        &faults.Config{Schedule: schedule, LossSeed: seed},
		}
		w, err := Build(cfg)
		if err != nil {
			t.Errorf("seed %d: build: %v", seed, err)
			return false
		}
		nFlows := 5 + rng.Intn(30)
		for i := 0; i < nFlows; i++ {
			src := w.VIPs[rng.Intn(len(w.VIPs))]
			dst := w.VIPs[rng.Intn(len(w.VIPs))]
			if src == dst {
				continue
			}
			w.Agent.AddFlow(transport.FlowSpec{
				ID: uint64(i + 1), Src: src, Dst: dst, Proto: transport.TCP,
				Bytes: 1 + rng.Intn(100_000),
				Start: simtime.Time(rng.Intn(200_000)),
			})
		}
		w.Engine.Run(simtime.Never)

		s := w.Agent.Summarize()
		c := &w.Engine.C
		if s.Completed+s.TimedOut != s.Flows {
			t.Errorf("seed %d scheme %s: completed %d + timedout %d != flows %d",
				seed, cfg.Scheme, s.Completed, s.TimedOut, s.Flows)
			return false
		}
		if c.StrayControlPkts != 0 {
			t.Errorf("seed %d scheme %s: %d stray control packets under faults",
				seed, cfg.Scheme, c.StrayControlPkts)
			return false
		}
		if c.GatewayUnknownVIP != 0 {
			t.Errorf("seed %d scheme %s: %d gateway unknown VIPs under faults",
				seed, cfg.Scheme, c.GatewayUnknownVIP)
			return false
		}
		if c.Delivered+c.Drops < c.HostSent {
			t.Errorf("seed %d scheme %s: conservation violated: delivered %d + drops %d < sent %d",
				seed, cfg.Scheme, c.Delivered, c.Drops, c.HostSent)
			return false
		}
		if err := w.Injector.Err(); err != nil {
			t.Errorf("seed %d scheme %s: injector: %v", seed, cfg.Scheme, err)
			return false
		}
		if len(w.Injector.Applied) != len(schedule) {
			t.Errorf("seed %d scheme %s: applied %d of %d fault events",
				seed, cfg.Scheme, len(w.Injector.Applied), len(schedule))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
