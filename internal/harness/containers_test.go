package harness

import (
	"reflect"
	"testing"

	"switchv2p/internal/containers"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
)

func crossoverBase() Config {
	return Config{
		Topo:     topology.FT8(),
		Load:     0.30,
		Duration: 150 * simtime.Microsecond,
		MaxFlows: 600,
		Seed:     3,
	}
}

// TestContainerDeploymentBuild pins the Config.Containers wiring: the
// deployment replaces uniform placement, VMs is derived from density ×
// servers before cache sizing, and the host-cache schemes surface their
// host-tier stats in the report.
func TestContainerDeploymentBuild(t *testing.T) {
	cfg := crossoverBase()
	cfg.Scheme = SchemeHostCache
	cfg.Containers = &containers.Spec{PerHost: 8}
	cfg.CacheFraction = 0.5
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	servers := len(r.World.Topo.Servers())
	if want := 8 * servers; len(r.World.VIPs) != want {
		t.Fatalf("deployment placed %d containers, want %d", len(r.World.VIPs), want)
	}
	if r.World.Cfg.VMs != 8*servers {
		t.Fatalf("VMs not derived from deployment: %d", r.World.Cfg.VMs)
	}
	if r.HostStats == nil {
		t.Fatal("hostcache run missing host stats")
	}
	if r.HostStats.Lookups == 0 || r.HostStats.Hits == 0 {
		t.Fatalf("host tier inactive: %+v", r.HostStats)
	}
	if r.HitRate <= 0 {
		t.Fatalf("hostcache offload = %v", r.HitRate)
	}

	cfg.Scheme = SchemeHostToR
	r, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.HostStats == nil || r.CoreStats == nil {
		t.Fatal("hosttor run must report both host and core stats")
	}
}

// TestContainerCrossoverDeterministic pins the crossover sweep's
// parallel-determinism contract: the full point series is identical —
// values and order — at any SweepWorkers count.
func TestContainerCrossoverDeterministic(t *testing.T) {
	run := func(workers int) []CrossoverPoint {
		base := crossoverBase()
		base.Containers = &containers.Spec{}
		base.SweepWorkers = workers
		pts, err := ContainerCrossover(base, []int{4, 8}, []float64{0.3, 0.9}, []float64{0.25},
			[]string{SchemeSwitchV2P, SchemeHostCache, SchemeHostToR, SchemeNoCache, SchemeGwCache})
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("crossover sweep diverges between 1 and 8 workers:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	if len(serial) != 2*2*1*5 {
		t.Fatalf("points = %d", len(serial))
	}
}
