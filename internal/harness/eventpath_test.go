package harness

import (
	"reflect"
	"testing"

	"switchv2p/internal/telemetry"
)

// TestEventPathsByteIdenticalFullScenario is the tentpole's determinism
// guard at full-system scale: a standard SwitchV2P run (real trace, real
// transport, telemetry sampling on) must produce byte-identical engine
// Counters, report fingerprints, and telemetry counter/gauge snapshots
// whether the links schedule pooled typed-event records (the default) or
// the legacy per-event closures.
func TestEventPathsByteIdenticalFullScenario(t *testing.T) {
	run := func(closures bool) (*Report, []telemetry.CounterValue, []telemetry.GaugeValue) {
		t.Helper()
		cfg := quickConfig(SchemeSwitchV2P)
		cfg.Telemetry = &telemetry.Options{}
		w, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		w.Engine.ClosureEvents = closures
		w.Engine.Run(w.Cfg.Horizon)
		return w.Report(), w.Telem.Registry.Counters(), w.Telem.Registry.Gauges()
	}

	typedR, typedC, typedG := run(false)
	closureR, closureC, closureG := run(true)

	if !reflect.DeepEqual(typedR.World.Engine.C, closureR.World.Engine.C) {
		t.Fatalf("engine counters diverge between event paths:\ntyped:   %+v\nclosure: %+v",
			typedR.World.Engine.C, closureR.World.Engine.C)
	}
	if got, want := reportFingerprint(typedR), reportFingerprint(closureR); got != want {
		t.Fatalf("reports diverge between event paths:\ntyped:   %s\nclosure: %s", got, want)
	}
	if !reflect.DeepEqual(typedC, closureC) {
		t.Fatalf("telemetry counter snapshots diverge:\ntyped:   %+v\nclosure: %+v", typedC, closureC)
	}
	if !reflect.DeepEqual(typedG, closureG) {
		t.Fatalf("telemetry gauge snapshots diverge:\ntyped:   %+v\nclosure: %+v", typedG, closureG)
	}
}
