package harness

import (
	"testing"

	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
)

// quickConfig returns a small, fast configuration for tests.
func quickConfig(scheme string) Config {
	return Config{
		Topo:          topology.FT8(),
		VMs:           512,
		Scheme:        scheme,
		TraceName:     "hadoop",
		Load:          0.2,
		Duration:      200 * simtime.Microsecond,
		MaxFlows:      300,
		CacheFraction: 0.5,
		Seed:          3,
	}
}

func TestRunAllSchemes(t *testing.T) {
	for _, scheme := range AllSchemes {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			r, err := Run(quickConfig(scheme))
			if err != nil {
				t.Fatal(err)
			}
			if r.Scheme == "" {
				t.Fatal("empty scheme name")
			}
			if r.Summary.Flows == 0 {
				t.Fatal("no flows simulated")
			}
			if r.Summary.Completed == 0 {
				t.Fatalf("no flows completed: %+v", r.Summary)
			}
			if r.HitRate < 0 || r.HitRate > 1 {
				t.Fatalf("hit rate %v out of range", r.HitRate)
			}
		})
	}
}

func TestUnknownSchemeAndTrace(t *testing.T) {
	cfg := quickConfig("nosuchscheme")
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	cfg = quickConfig(SchemeNoCache)
	cfg.TraceName = "nosuchtrace"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown trace accepted")
	}
}

func TestHitRateOrdering(t *testing.T) {
	// SwitchV2P must beat NoCache (0) and LocalLearning on hit rate for a
	// reuse-heavy trace at a moderate cache size.
	get := func(scheme string) float64 {
		r, err := Run(quickConfig(scheme))
		if err != nil {
			t.Fatal(err)
		}
		return r.HitRate
	}
	nc := get(SchemeNoCache)
	sv := get(SchemeSwitchV2P)
	ll := get(SchemeLocalLearning)
	if nc != 0 {
		t.Fatalf("NoCache hit rate = %v, want 0", nc)
	}
	if sv <= ll {
		t.Fatalf("SwitchV2P hit rate %v not above LocalLearning %v", sv, ll)
	}
	if sv < 0.3 {
		t.Fatalf("SwitchV2P hit rate %v unexpectedly low", sv)
	}
}

func TestFCTImprovementShape(t *testing.T) {
	// Fig. 5a shape: at a decent cache size, SwitchV2P improves FCT over
	// NoCache; Direct is the upper bound.
	pts, err := CacheSizeSweep(quickConfig(""), []float64{0.5},
		[]string{SchemeNoCache, SchemeSwitchV2P, SchemeDirect})
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[string]SweepPoint{}
	for _, p := range pts {
		byScheme[p.Scheme] = p
	}
	if got := byScheme["NoCache"].FCTImprovement; got != 1 {
		t.Fatalf("NoCache improvement = %v, want 1 (self-normalized)", got)
	}
	sv := byScheme["SwitchV2P"].FCTImprovement
	d := byScheme["Direct"].FCTImprovement
	if sv <= 1 {
		t.Fatalf("SwitchV2P FCT improvement = %v, want > 1", sv)
	}
	if d < sv {
		t.Fatalf("Direct improvement %v below SwitchV2P %v", d, sv)
	}
}

func TestCacheSizeMonotonicityRough(t *testing.T) {
	// Bigger caches should not dramatically hurt the hit rate.
	pts, err := CacheSizeSweep(quickConfig(""), []float64{0.05, 1.0},
		[]string{SchemeSwitchV2P})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	small, big := pts[0], pts[1]
	if big.HitRate < small.HitRate-0.05 {
		t.Fatalf("hit rate degraded with cache size: %v -> %v", small.HitRate, big.HitRate)
	}
}

func TestPerPodBytesGatewayConcentration(t *testing.T) {
	// Fig. 7 shape: under NoCache, gateway pods (0,2,5,7) carry more
	// bytes than non-gateway pods; SwitchV2P narrows the gap.
	nc, err := Run(quickConfig(SchemeNoCache))
	if err != nil {
		t.Fatal(err)
	}
	sv, err := Run(quickConfig(SchemeSwitchV2P))
	if err != nil {
		t.Fatal(err)
	}
	sum := func(bytes []int64, pods []int) int64 {
		var n int64
		for _, p := range pods {
			n += bytes[p]
		}
		return n
	}
	gwPods, otherPods := []int{0, 2, 5, 7}, []int{1, 3, 4, 6}
	ncGw, ncOther := sum(nc.PerPodBytes, gwPods), sum(nc.PerPodBytes, otherPods)
	svGw := sum(sv.PerPodBytes, gwPods)
	if ncGw <= ncOther {
		t.Fatalf("NoCache gateway pods not hotter: gw=%d other=%d", ncGw, ncOther)
	}
	if svGw >= ncGw {
		t.Fatalf("SwitchV2P did not reduce gateway-pod load: %d vs %d", svGw, ncGw)
	}
	// Total network bytes also shrink (the paper's 1.9x claim direction).
	if sv.TotalSwitchBytes >= nc.TotalSwitchBytes {
		t.Fatalf("SwitchV2P total bytes %d not below NoCache %d",
			sv.TotalSwitchBytes, nc.TotalSwitchBytes)
	}
}

func TestStretchImproves(t *testing.T) {
	nc, err := Run(quickConfig(SchemeNoCache))
	if err != nil {
		t.Fatal(err)
	}
	sv, err := Run(quickConfig(SchemeSwitchV2P))
	if err != nil {
		t.Fatal(err)
	}
	if sv.AvgStretch >= nc.AvgStretch {
		t.Fatalf("stretch: SwitchV2P %v >= NoCache %v", sv.AvgStretch, nc.AvgStretch)
	}
}

func TestPodSwitchBytesOrdering(t *testing.T) {
	r, err := Run(quickConfig(SchemeNoCache))
	if err != nil {
		t.Fatal(err)
	}
	row := r.PodSwitchBytes(7)
	if len(row) != 8 {
		t.Fatalf("pod 7 has %d switches, want 8", len(row))
	}
	// The gateway ToR (last entry) is the hottest switch in a gateway pod
	// under NoCache.
	last := row[len(row)-1]
	for i, b := range row[:len(row)-1] {
		if b > last {
			t.Fatalf("switch %d busier (%d) than the gateway ToR (%d)", i, b, last)
		}
	}
}

func TestGatewaySweepShape(t *testing.T) {
	base := quickConfig("")
	pts, err := GatewaySweep(base, []int{40, 4}, []string{SchemeNoCache, SchemeSwitchV2P})
	if err != nil {
		t.Fatal(err)
	}
	get := func(scheme string, gws int) GatewayPoint {
		for _, p := range pts {
			if p.Scheme == scheme && p.Gateways == gws {
				return p
			}
		}
		t.Fatalf("missing point %s/%d", scheme, gws)
		return GatewayPoint{}
	}
	// Fig. 9 shape: NoCache degrades with 10x fewer gateways much more
	// than SwitchV2P.
	ncRatio := float64(get(SchemeNoCache, 4).FCT) / float64(get(SchemeNoCache, 40).FCT)
	svRatio := float64(get(SchemeSwitchV2P, 4).FCT) / float64(get(SchemeSwitchV2P, 40).FCT)
	// At this small test scale neither may degrade much; allow noise but
	// catch a real inversion.
	if svRatio > ncRatio*1.1 {
		t.Fatalf("SwitchV2P degraded more than NoCache: %v vs %v", svRatio, ncRatio)
	}
	if svRatio > 1.5 {
		t.Fatalf("SwitchV2P with 4 gateways degraded %vx, want near-flat", svRatio)
	}
}

func TestMigrationExperimentVariants(t *testing.T) {
	run := func(scheme string, inval, ts bool) *MigrationResult {
		base := quickConfig(scheme)
		base.V2PInvalidation = &inval
		base.V2PTimestampVector = &ts
		mc := DefaultMigrationConfig(base)
		mc.Senders = 16
		mc.TotalPackets = 4000
		res, err := Migration(mc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	nc := run(SchemeNoCache, true, true)
	od := run(SchemeOnDemand, true, true)
	svFull := run(SchemeSwitchV2P, true, true)
	svNoInval := run(SchemeSwitchV2P, false, true)
	svNoTS := run(SchemeSwitchV2P, true, false)

	// Table 4 shapes:
	// NoCache: all packets via gateway, fewest misdeliveries.
	if nc.GatewayPacketShare < 0.99 {
		t.Fatalf("NoCache gateway share = %v", nc.GatewayPacketShare)
	}
	// SwitchV2P's misdeliveries stay within a small factor of NoCache's
	// (Table 4 reports 1.2x at full scale; the exact ratio depends on how
	// the invalidation convergence window compares with the 40 µs gateway
	// pipeline).
	if svFull.Misdelivered > 2*nc.Misdelivered {
		t.Fatalf("SwitchV2P misdelivered %d far above NoCache %d", svFull.Misdelivered, nc.Misdelivered)
	}
	// OnDemand: zero gateway traffic, many misdeliveries (stale hosts).
	if od.GatewayPacketShare > 0.01 {
		t.Fatalf("OnDemand gateway share = %v", od.GatewayPacketShare)
	}
	if od.Misdelivered <= svFull.Misdelivered {
		t.Fatalf("OnDemand misdelivered %d not above full SwitchV2P %d",
			od.Misdelivered, svFull.Misdelivered)
	}
	// SwitchV2P: small gateway share; invalidations curb misdeliveries.
	if svFull.GatewayPacketShare > 0.5 {
		t.Fatalf("SwitchV2P gateway share = %v, want small", svFull.GatewayPacketShare)
	}
	if svNoInval.Misdelivered < svFull.Misdelivered {
		t.Fatalf("disabling invalidations reduced misdeliveries: %d < %d",
			svNoInval.Misdelivered, svFull.Misdelivered)
	}
	if svNoInval.InvalidationPkts != 0 {
		t.Fatalf("no-invalidation variant sent %d invalidations", svNoInval.InvalidationPkts)
	}
	// The timestamp vector slashes invalidation packet counts.
	if svNoTS.InvalidationPkts <= svFull.InvalidationPkts {
		t.Fatalf("timestamp vector did not reduce invalidations: %d vs %d",
			svNoTS.InvalidationPkts, svFull.InvalidationPkts)
	}
	// Packets keep arriving at the right place in all variants.
	for _, r := range []*MigrationResult{nc, od, svFull, svNoInval, svNoTS} {
		if r.Delivered == 0 {
			t.Fatalf("%s delivered nothing", r.Scheme)
		}
	}
}

func TestV2PSizeForToROnly(t *testing.T) {
	cfg := quickConfig(SchemeSwitchV2P)
	cfg.V2PSizeFor = func(sw topology.Switch) int {
		if sw.Role.IsToR() {
			return 64
		}
		return 0
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.CoreStats == nil {
		t.Fatal("missing core stats")
	}
	if r.CoreStats.HitsByLayer[1] != 0 || r.CoreStats.HitsByLayer[2] != 0 {
		t.Fatalf("spine/core hits with ToR-only allocation: %+v", r.CoreStats.HitsByLayer)
	}
}

func TestDeterministicReports(t *testing.T) {
	a, err := Run(quickConfig(SchemeSwitchV2P))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickConfig(SchemeSwitchV2P))
	if err != nil {
		t.Fatal(err)
	}
	if a.HitRate != b.HitRate || a.Summary.AvgFCT != b.Summary.AvgFCT ||
		a.TotalSwitchBytes != b.TotalSwitchBytes {
		t.Fatalf("non-deterministic runs:\n%+v\n%+v", a.Summary, b.Summary)
	}
}

func TestTopologySweepShape(t *testing.T) {
	base := quickConfig("")
	pts, err := TopologySweep(base, []int{4, 16}, []string{SchemeSwitchV2P, SchemeLocalLearning},
		func(pods int) (Config, error) {
			cfg := base
			topoCfg, err := topology.ScaledFT8(pods)
			if err != nil {
				return cfg, err
			}
			cfg.Topo = topoCfg
			return cfg, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4", len(pts))
	}
	for _, p := range pts {
		if p.FCT <= 0 {
			t.Fatalf("point %+v has no FCT", p)
		}
	}
}

func TestMigrationConfigValidation(t *testing.T) {
	base := quickConfig(SchemeSwitchV2P)
	mc := DefaultMigrationConfig(base)
	mc.Senders = 100000 // more than servers
	if _, err := Migration(mc); err == nil {
		t.Fatal("accepted more senders than servers")
	}
}

func TestCacheSizeSweepUnknownScheme(t *testing.T) {
	if _, err := CacheSizeSweep(quickConfig(""), []float64{0.5}, []string{"bogus"}); err == nil {
		t.Fatal("unknown scheme accepted in sweep")
	}
}

func TestBadAllocPolicy(t *testing.T) {
	cfg := quickConfig(SchemeSwitchV2P)
	cfg.V2PAlloc = "nonsense"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown allocation policy accepted")
	}
}

func TestFT16PaperScaleVMCount(t *testing.T) {
	// The paper's full FT16-400K population (410,865 containers) must
	// build and run; capped flows keep the runtime around a second.
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Config{
		Topo:          topology.FT16(),
		VMs:           410865,
		Scheme:        SchemeSwitchV2P,
		TraceName:     "alibaba",
		Load:          0.3,
		Duration:      simtime.Millisecond,
		MaxFlows:      3000,
		CacheFraction: 0.5,
		Seed:          1,
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Summary.Completed != r.Summary.Flows {
		t.Fatalf("completed %d/%d", r.Summary.Completed, r.Summary.Flows)
	}
	if r.HitRate <= 0.3 {
		t.Fatalf("hit rate %v unexpectedly low for the RPC trace", r.HitRate)
	}
}
