package harness

import (
	"switchv2p/internal/containers"
	"switchv2p/internal/simtime"
)

// CrossoverPoint is one cell of the host-vs-switch caching crossover
// sweep: one (container density, reuse, cache size, scheme) run.
type CrossoverPoint struct {
	PerHost       int     // containers per host
	Reuse         float64 // reuse-distance knob (high = short reuse distances)
	CacheFraction float64

	Scheme         string
	HitRate        float64 // gateway offload: 1 - gateway packets / host sent
	P99FirstPacket simtime.Duration
	P99FCT         simtime.Duration
	GatewayPackets int64
	HostSent       int64
}

// ContainerCrossover runs the headline host-vs-switch experiment: for
// every (density, reuse, fraction) cell of the container-overlay
// workload, measure every scheme's gateway offload and tail first-packet
// latency. base.Containers supplies the deployment spec defaults
// (density and reuse are overridden per cell); base.VMs is ignored —
// the population is density × servers.
//
// Points run through the bounded parallel sweep runner when
// base.SweepWorkers > 1. Every point is an independent simulation seeded
// only from its own Config (sharding requests degrade per scheme via
// forScheme), so the returned series is byte-identical — values and
// order — at any worker count.
func ContainerCrossover(base Config, densities []int, reuses, fractions []float64, schemes []string) ([]CrossoverPoint, error) {
	spec := containers.Spec{}
	if base.Containers != nil {
		spec = *base.Containers
	}
	type job struct {
		perHost  int
		reuse    float64
		fraction float64
		scheme   string
	}
	var jobs []job
	for _, d := range densities {
		for _, reuse := range reuses {
			for _, f := range fractions {
				for _, scheme := range schemes {
					jobs = append(jobs, job{d, reuse, f, scheme})
				}
			}
		}
	}
	out := make([]CrossoverPoint, len(jobs))
	err := runIndexed(base.sweepWorkers(), len(jobs), func(i int) error {
		j := jobs[i]
		cfg := base.forScheme(j.scheme)
		cellSpec := spec
		cellSpec.PerHost = j.perHost
		cellSpec.Reuse = j.reuse
		cfg.Containers = &cellSpec
		cfg.CacheFraction = j.fraction
		r, err := Run(cfg)
		if err != nil {
			return err
		}
		out[i] = CrossoverPoint{
			PerHost:        j.perHost,
			Reuse:          j.reuse,
			CacheFraction:  j.fraction,
			Scheme:         j.scheme,
			HitRate:        r.HitRate,
			P99FirstPacket: r.Summary.P99FirstPacket,
			P99FCT:         r.Summary.P99FCT,
			GatewayPackets: r.GatewayPackets,
			HostSent:       r.HostSent,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
