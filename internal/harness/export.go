package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"switchv2p/internal/simtime"
)

// CSV exporters: plot-ready output for the figures. Columns mirror the
// paper's axes so the series can be fed straight into a plotting tool.

func writeAll(w *csv.Writer, rows [][]string) error {
	for _, row := range rows {
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// f formats floats at fixed precision so re-exported CSVs diff cleanly:
// 'g' switches between %e and %f by magnitude, which makes a value's
// textual form depend on neighbours' scale and breaks byte comparisons.
func f(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }

func us(d simtime.Duration) string { return f(d.Micros()) }

// WriteSweepCSV exports Fig. 5/6-style cache-size sweep points.
func WriteSweepCSV(out io.Writer, pts []SweepPoint) error {
	w := csv.NewWriter(out)
	rows := [][]string{{
		"scheme", "cache_fraction", "hit_rate",
		"fct_us", "fct_improvement", "first_packet_us", "first_packet_improvement",
	}}
	for _, p := range pts {
		rows = append(rows, []string{
			p.Scheme, f(p.CacheFraction), f(p.HitRate),
			us(p.FCT), f(p.FCTImprovement), us(p.FirstPacket), f(p.FirstPktImprovement),
		})
	}
	return writeAll(w, rows)
}

// WriteGatewayCSV exports Fig. 9-style gateway sweep points.
func WriteGatewayCSV(out io.Writer, pts []GatewayPoint) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"scheme", "gateways", "fct_us", "first_packet_us", "drops"}}
	for _, p := range pts {
		rows = append(rows, []string{
			p.Scheme, strconv.Itoa(p.Gateways), us(p.FCT), us(p.FirstPacket),
			strconv.FormatInt(p.Drops, 10),
		})
	}
	return writeAll(w, rows)
}

// WriteTopologyCSV exports Fig. 10-style topology-scaling points.
func WriteTopologyCSV(out io.Writer, pts []TopologyPoint) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"scheme", "pods", "fct_us"}}
	for _, p := range pts {
		rows = append(rows, []string{p.Scheme, strconv.Itoa(p.Pods), us(p.FCT)})
	}
	return writeAll(w, rows)
}

// WriteCrossoverCSV exports container crossover sweep points.
func WriteCrossoverCSV(out io.Writer, pts []CrossoverPoint) error {
	w := csv.NewWriter(out)
	rows := [][]string{{
		"per_host", "reuse", "cache_fraction", "scheme", "gateway_offload",
		"p99_first_packet_us", "p99_fct_us", "gateway_packets", "host_sent",
	}}
	for _, p := range pts {
		rows = append(rows, []string{
			strconv.Itoa(p.PerHost), f(p.Reuse), f(p.CacheFraction), p.Scheme,
			f(p.HitRate), us(p.P99FirstPacket), us(p.P99FCT),
			strconv.FormatInt(p.GatewayPackets, 10), strconv.FormatInt(p.HostSent, 10),
		})
	}
	return writeAll(w, rows)
}

// WritePodBytesCSV exports a Fig. 7-style per-pod byte heatmap row for
// one report.
func WritePodBytesCSV(out io.Writer, reports []*Report) error {
	if len(reports) == 0 {
		return fmt.Errorf("harness: no reports")
	}
	w := csv.NewWriter(out)
	header := []string{"scheme"}
	for pod := range reports[0].PerPodBytes {
		header = append(header, fmt.Sprintf("pod%d_bytes", pod+1))
	}
	header = append(header, "total_bytes", "avg_stretch")
	rows := [][]string{header}
	for _, r := range reports {
		row := []string{r.Scheme}
		for _, b := range r.PerPodBytes {
			row = append(row, strconv.FormatInt(b, 10))
		}
		row = append(row, strconv.FormatInt(r.TotalSwitchBytes, 10), f(r.AvgStretch))
		rows = append(rows, row)
	}
	return writeAll(w, rows)
}

// WriteTelemetryCSV exports a report's telemetry timeline in wide form
// (one column per series). It fails when the run was built without
// telemetry or in profile-only mode, which records no timeline.
func WriteTelemetryCSV(out io.Writer, r *Report) error {
	if r.Telemetry == nil || r.Telemetry.ProfileOnly() {
		return fmt.Errorf("harness: report has no telemetry timeline")
	}
	return r.Telemetry.Timeline.WriteCSV(out)
}

// WriteMigrationCSV exports Table 4-style migration results.
func WriteMigrationCSV(out io.Writer, results []*MigrationResult) error {
	w := csv.NewWriter(out)
	rows := [][]string{{
		"scheme", "gateway_packet_share", "avg_packet_latency_us",
		"last_misdelivered_us", "misdelivered", "invalidation_packets",
	}}
	for _, r := range results {
		rows = append(rows, []string{
			r.Scheme, f(r.GatewayPacketShare), us(r.AvgPacketLatency),
			f(float64(r.LastMisdeliveredArrival) / 1000),
			strconv.FormatInt(r.Misdelivered, 10),
			strconv.FormatInt(r.InvalidationPkts, 10),
		})
	}
	return writeAll(w, rows)
}
