package harness

import (
	"fmt"
	"sync"
	"sync/atomic"

	"switchv2p/internal/netaddr"
	"switchv2p/internal/simtime"
	"switchv2p/internal/trace"
)

// sweepWorkers returns the effective sweep concurrency from a Config.
func (c Config) sweepWorkers() int {
	if c.SweepWorkers > 1 {
		return c.SweepWorkers
	}
	return 1
}

// runIndexed runs n independent jobs through a bounded worker pool,
// returning the first error. Jobs are identified by index, so callers
// store results into pre-sized slices and output order never depends on
// scheduling. workers <= 1 degenerates to a plain serial loop.
func runIndexed(workers, n int, job func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				mu.Lock()
				failed := firstErr != nil
				mu.Unlock()
				if failed {
					return
				}
				if err := job(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// SweepPoint is one (scheme, cache size) measurement of a Fig. 5/6-style
// sweep, with improvements normalized by the NoCache baseline as in the
// paper (higher is better).
type SweepPoint struct {
	Scheme        string
	CacheFraction float64

	HitRate             float64
	FCT                 simtime.Duration
	FirstPacket         simtime.Duration
	FCTImprovement      float64
	FirstPktImprovement float64
}

// CacheSizeSweep reproduces the Fig. 5/6 experiment structure: it runs
// NoCache once as the normalization baseline, then every (scheme,
// fraction) combination. Schemes without an in-network cache (NoCache,
// OnDemand, Direct) are measured once at fraction 0.
//
// With base.SweepWorkers > 1 the points run through a bounded worker
// pool. Every point is an independent simulation seeded only from its
// own Config, so the returned series is identical — values and order —
// at any worker count.
func CacheSizeSweep(base Config, fractions []float64, schemes []string) ([]SweepPoint, error) {
	baseCfg := base
	baseCfg.Scheme = SchemeNoCache
	nc, err := Run(baseCfg)
	if err != nil {
		return nil, err
	}
	ncFCT := nc.Summary.AvgFCT
	ncFirst := nc.Summary.AvgFirstPacket

	type job struct {
		scheme  string
		frac    float64
		setFrac bool // cache schemes: override CacheFraction with frac
		useNC   bool // reuse the NoCache baseline report
	}
	var jobs []job
	for _, scheme := range schemes {
		switch scheme {
		case SchemeNoCache:
			jobs = append(jobs, job{scheme: scheme, useNC: true})
		case SchemeOnDemand, SchemeDirect:
			jobs = append(jobs, job{scheme: scheme})
		default:
			for _, f := range fractions {
				jobs = append(jobs, job{scheme: scheme, frac: f, setFrac: true})
			}
		}
	}

	reports := make([]*Report, len(jobs))
	err = runIndexed(base.sweepWorkers(), len(jobs), func(i int) error {
		if jobs[i].useNC {
			reports[i] = nc
			return nil
		}
		cfg := base.forScheme(jobs[i].scheme)
		if jobs[i].setFrac {
			cfg.CacheFraction = jobs[i].frac
		}
		r, err := Run(cfg)
		if err != nil {
			return err
		}
		reports[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := make([]SweepPoint, 0, len(jobs))
	for i, r := range reports {
		p := SweepPoint{
			Scheme:        r.Scheme,
			CacheFraction: jobs[i].frac,
			HitRate:       r.HitRate,
			FCT:           r.Summary.AvgFCT,
			FirstPacket:   r.Summary.AvgFirstPacket,
		}
		if r.Summary.AvgFCT > 0 {
			p.FCTImprovement = float64(ncFCT) / float64(r.Summary.AvgFCT)
		}
		if r.Summary.AvgFirstPacket > 0 {
			p.FirstPktImprovement = float64(ncFirst) / float64(r.Summary.AvgFirstPacket)
		}
		out = append(out, p)
	}
	return out, nil
}

// GatewayPoint is one measurement of the Fig. 9 gateway-reduction sweep.
type GatewayPoint struct {
	Scheme      string
	Gateways    int
	FCT         simtime.Duration
	FirstPacket simtime.Duration
	Drops       int64
}

// GatewaySweep reproduces Fig. 9: performance as the number of deployed
// gateways shrinks. Points run concurrently when base.SweepWorkers > 1
// (see CacheSizeSweep for the determinism argument).
func GatewaySweep(base Config, gatewayCounts []int, schemes []string) ([]GatewayPoint, error) {
	type job struct {
		scheme   string
		gateways int
	}
	var jobs []job
	for _, scheme := range schemes {
		for _, n := range gatewayCounts {
			jobs = append(jobs, job{scheme: scheme, gateways: n})
		}
	}
	out := make([]GatewayPoint, len(jobs))
	err := runIndexed(base.sweepWorkers(), len(jobs), func(i int) error {
		cfg := base.forScheme(jobs[i].scheme)
		cfg.ActiveGateways = jobs[i].gateways
		r, err := Run(cfg)
		if err != nil {
			return err
		}
		out[i] = GatewayPoint{
			Scheme:      jobs[i].scheme,
			Gateways:    jobs[i].gateways,
			FCT:         r.Summary.AvgFCT,
			FirstPacket: r.Summary.AvgFirstPacket,
			Drops:       r.Drops,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TopologyPoint is one measurement of the Fig. 10 topology-scaling sweep.
type TopologyPoint struct {
	Scheme string
	Pods   int
	FCT    simtime.Duration
}

// TopologySweep reproduces Fig. 10: the FT8 topology rescaled from 1 to
// 32 pods with a fixed server count. Points run concurrently when
// base.SweepWorkers > 1; scaled must be safe to call from multiple
// goroutines (the stock closures only assemble Config values).
func TopologySweep(base Config, pods []int, schemes []string, scaled func(pods int) (Config, error)) ([]TopologyPoint, error) {
	type job struct {
		scheme string
		pods   int
	}
	var jobs []job
	for _, scheme := range schemes {
		for _, p := range pods {
			jobs = append(jobs, job{scheme: scheme, pods: p})
		}
	}
	out := make([]TopologyPoint, len(jobs))
	err := runIndexed(base.sweepWorkers(), len(jobs), func(i int) error {
		cfg, err := scaled(jobs[i].pods)
		if err != nil {
			return err
		}
		cfg = cfg.forScheme(jobs[i].scheme)
		r, err := Run(cfg)
		if err != nil {
			return err
		}
		out[i] = TopologyPoint{Scheme: jobs[i].scheme, Pods: jobs[i].pods, FCT: r.Summary.AvgFCT}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MigrationConfig parameterizes the §5.2 VM-migration experiment.
type MigrationConfig struct {
	Base Config
	// Senders UDP sources on distinct servers target one VM.
	Senders int
	// TotalPackets across all senders over Duration.
	TotalPackets int
	Payload      int
	Duration     simtime.Duration
	// MigrateAt moves the destination VM to another rack.
	MigrateAt simtime.Time
}

// DefaultMigrationConfig returns the paper's §5.2 parameters: 64 senders,
// 64K packets over 1 ms, migration at 500 µs. The payload is sized so
// the aggregate incast (64K packets/ms with headers) stays just under
// the destination's 100 Gbps NIC: the experiment measures translation
// staleness, not congestion collapse.
func DefaultMigrationConfig(base Config) MigrationConfig {
	return MigrationConfig{
		Base:         base,
		Senders:      64,
		TotalPackets: 64000,
		Payload:      64,
		Duration:     simtime.Millisecond,
		MigrateAt:    simtime.Time(500 * simtime.Microsecond),
	}
}

// MigrationResult is one row of Table 4.
type MigrationResult struct {
	Scheme                  string
	GatewayPacketShare      float64 // fraction of sent packets that reached a gateway
	AvgPacketLatency        simtime.Duration
	LastMisdeliveredArrival simtime.Time
	Misdelivered            int64
	InvalidationPkts        int64
	Delivered               int64
	Drops                   int64
}

// Migration runs the §5.2 incast + mid-trace migration experiment for
// the scheme in cfg.Base.Scheme.
func Migration(cfg MigrationConfig) (*MigrationResult, error) {
	base := cfg.Base.withDefaults().forScheme(cfg.Base.Scheme)
	w, err := Build(withoutWorkload(base))
	if err != nil {
		return nil, err
	}
	// Pick the destination VM and sender VMs on distinct servers.
	servers := w.Topo.Servers()
	if cfg.Senders+1 > len(servers) {
		return nil, fmt.Errorf("harness: %d senders exceed %d servers", cfg.Senders, len(servers))
	}
	// One VM per chosen server: use the first VM placed on it.
	vmOn := func(server int32) (netaddr.VIP, bool) {
		vms := w.Net.VMsAt(server)
		if len(vms) == 0 {
			return 0, false
		}
		return vms[0], true
	}
	dst, ok := vmOn(servers[0])
	if !ok {
		return nil, fmt.Errorf("harness: no VM on destination server")
	}
	var srcs []netaddr.VIP
	for _, s := range servers[1:] {
		if len(srcs) == cfg.Senders {
			break
		}
		if v, ok := vmOn(s); ok {
			srcs = append(srcs, v)
		}
	}
	if len(srcs) < cfg.Senders {
		return nil, fmt.Errorf("harness: only %d sender VMs available", len(srcs))
	}
	wl := trace.Incast(dst, srcs, cfg.TotalPackets, cfg.Payload, cfg.Duration)
	for _, f := range wl.Flows {
		w.Agent.AddFlow(f)
	}
	// Migrate the destination to a server in a different rack.
	dstHost, _ := w.Net.HostOf(dst)
	var newHost int32 = -1
	for _, s := range servers {
		h := w.Topo.Hosts[s]
		if h.Pod != w.Topo.Hosts[dstHost].Pod || h.Rack != w.Topo.Hosts[dstHost].Rack {
			used := false
			for _, src := range srcs {
				if sh, _ := w.Net.HostOf(src); sh == s {
					used = true
					break
				}
			}
			if !used {
				newHost = s
				break
			}
		}
	}
	if newHost < 0 {
		return nil, fmt.Errorf("harness: no migration target found")
	}
	// Barrier op so the shared placement mutation is safe under the
	// sharded engine; degrades to a plain queue event when serial.
	w.Engine.AtBarrier(cfg.MigrateAt, func() {
		if err := w.Net.Migrate(dst, newHost); err != nil {
			panic(err)
		}
	})
	w.Engine.Run(simtime.Never)

	c := &w.Engine.C
	res := &MigrationResult{
		Scheme:                  w.Scheme.Name(),
		AvgPacketLatency:        c.AvgPacketLatency(),
		LastMisdeliveredArrival: c.LastMisdelivered,
		Misdelivered:            c.Misdeliveries,
		InvalidationPkts:        c.InvalidationPkts,
		Delivered:               c.Delivered,
		Drops:                   c.Drops,
	}
	if c.HostSent > 0 {
		res.GatewayPacketShare = float64(c.GatewayPackets) / float64(c.HostSent)
	}
	return res, nil
}

// withoutWorkload clears trace generation so Build produces an idle world.
func withoutWorkload(cfg Config) Config {
	cfg.Workload = &trace.Workload{Name: "empty"}
	return cfg
}
