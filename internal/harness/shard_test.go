package harness

// Determinism guards for the sharded engine (internal/simnet/shard.go):
// byte-identical results at every shard count, oracle-vs-windowed
// protocol validation, fault schedules at >1 shard, and the scheme
// whitelist.

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"switchv2p/internal/simtime"
	"switchv2p/internal/telemetry"
)

// runShardedDoc runs one configuration to completion and flattens every
// comparable outcome — the report fingerprint, the engine counters, the
// sampled timeline, the registry contents and the fault timeline — into
// one string. The engine profile is wall-clock and so deliberately
// excluded.
func runShardedDoc(t *testing.T, cfg Config) (*Report, string) {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var doc bytes.Buffer
	doc.WriteString(reportFingerprint(r))
	fmt.Fprintf(&doc, "\n%+v\n", r.World.Engine.C)
	if r.CoreStats != nil {
		fmt.Fprintf(&doc, "%+v\n", *r.CoreStats)
	}
	if r.Telemetry != nil {
		if err := r.Telemetry.WriteCSV(&doc); err != nil {
			t.Fatal(err)
		}
		if err := r.Telemetry.WriteFaultsCSV(&doc); err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&doc, "%+v\n%+v\n", r.Telemetry.Registry.Counters(), r.Telemetry.Registry.Gauges())
	}
	return r, doc.String()
}

// TestShardCountByteIdentical is the tentpole's acceptance guard: the
// same seed run at 1, 2, 4 and 8 shard workers must produce
// byte-identical reports and telemetry snapshots — the worker count only
// changes which goroutine claims a domain, never what it computes.
func TestShardCountByteIdentical(t *testing.T) {
	for _, scheme := range []string{SchemeSwitchV2P, SchemeNoCache} {
		var refDoc string
		var ref *Report
		for _, shards := range []int{1, 2, 4, 8} {
			cfg := quickConfig(scheme)
			cfg.Telemetry = &telemetry.Options{Interval: 5 * simtime.Microsecond}
			cfg.Shards = shards
			r, doc := runShardedDoc(t, cfg)
			if r.HostSent == 0 || r.Summary.Flows == 0 {
				t.Fatalf("%s shards=%d: empty run (sent=%d flows=%d)",
					scheme, shards, r.HostSent, r.Summary.Flows)
			}
			if shards == 1 {
				ref, refDoc = r, doc
				continue
			}
			if doc != refDoc {
				t.Errorf("%s: results diverge between 1 and %d shards\n1 shard:\n%s\n%d shards:\n%s",
					scheme, shards, refDoc, shards, doc)
			}
			if !reflect.DeepEqual(r.World.Engine.C, ref.World.Engine.C) {
				t.Errorf("%s: engine counters diverge between 1 and %d shards:\n1: %+v\n%d: %+v",
					scheme, shards, ref.World.Engine.C, shards, r.World.Engine.C)
			}
		}
	}
}

// TestShardOracleMatchesWindowed validates the conservative
// synchronization protocol itself: the serial oracle (globally
// earliest-first dispatch over the same domains, mailboxes and event
// keys) and the windowed parallel runs must be byte-identical. Any
// event the windowed engine dispatches out of global order in a way
// that matters would break this.
func TestShardOracleMatchesWindowed(t *testing.T) {
	oracle := quickConfig(SchemeSwitchV2P)
	oracle.Telemetry = &telemetry.Options{Interval: 5 * simtime.Microsecond}
	oracle.ShardOracle = true
	_, oracleDoc := runShardedDoc(t, oracle)

	windowed := quickConfig(SchemeSwitchV2P)
	windowed.Telemetry = &telemetry.Options{Interval: 5 * simtime.Microsecond}
	windowed.Shards = 4
	_, windowedDoc := runShardedDoc(t, windowed)

	if oracleDoc != windowedDoc {
		t.Fatalf("oracle and windowed runs diverge\noracle:\n%s\nwindowed:\n%s", oracleDoc, windowedDoc)
	}
}

// TestShardFaultScheduleDeterministic runs the full fault scenario
// (explicit schedule, random failure model, loss windows) at more than
// one shard: faults apply at barriers, so every shard count must see
// the identical fault timeline and identical outcomes.
func TestShardFaultScheduleDeterministic(t *testing.T) {
	var refDoc string
	var ref *Report
	for _, shards := range []int{1, 2, 4} {
		cfg := faultyConfig(SchemeSwitchV2P, 7)
		cfg.Telemetry = &telemetry.Options{Interval: 5 * simtime.Microsecond}
		cfg.Shards = shards
		r, doc := runShardedDoc(t, cfg)
		if r.FaultEvents == 0 {
			t.Fatalf("shards=%d: no fault events applied", shards)
		}
		if r.FaultDrops+r.LossDrops == 0 {
			t.Fatalf("shards=%d: fault scenario dropped nothing", shards)
		}
		if shards == 1 {
			ref, refDoc = r, doc
			continue
		}
		if doc != refDoc {
			t.Errorf("fault run diverges between 1 and %d shards\n1 shard:\n%s\n%d shards:\n%s",
				shards, refDoc, shards, doc)
		}
		if r.FaultEvents != ref.FaultEvents {
			t.Errorf("fault event counts diverge: 1 shard %d, %d shards %d",
				ref.FaultEvents, shards, r.FaultEvents)
		}
	}
}

// TestShardRejectsUnsupportedScheme pins the whitelist: schemes with
// global mutable per-event state cannot run sharded and must be refused
// with a descriptive error at build time, not a corrupt result at run
// time.
func TestShardRejectsUnsupportedScheme(t *testing.T) {
	// The host-cache family (hostcache, hosttor) runs unsharded for now:
	// the host tier's pending-install maps and LRU lists are global
	// per-event mutable state, so the schemes are deliberately absent
	// from the ShardSupported whitelist until they grow per-shard slots.
	for _, scheme := range []string{
		SchemeLocalLearning, SchemeOnDemand, SchemeBluebird,
		SchemeController, SchemeHybrid, SchemeHostCache, SchemeHostToR,
	} {
		cfg := quickConfig(scheme)
		cfg.Shards = 2
		if _, err := Build(cfg); err == nil {
			t.Errorf("%s: sharded build succeeded, want a whitelist error", scheme)
		}
	}
}

// TestForSchemeDegradesShards pins the sweep helpers' best-effort
// contract: forScheme keeps a base config's Shards request for
// whitelisted schemes and silently drops it (falling back to the serial
// engine) for serial-only schemes — including the host-cache family —
// so mixed-scheme sweeps build instead of erroring.
func TestForSchemeDegradesShards(t *testing.T) {
	base := quickConfig(SchemeSwitchV2P)
	base.Shards = 4
	base.ShardOracle = true
	for _, tc := range []struct {
		scheme  string
		sharded bool
	}{
		{SchemeSwitchV2P, true},
		{SchemeNoCache, true},
		{SchemeDirect, true},
		{SchemeGwCache, true},
		{SchemeHybrid, false},
		{SchemeHostCache, false},
		{SchemeHostToR, false},
	} {
		got := base.forScheme(tc.scheme)
		if got.Scheme != tc.scheme {
			t.Errorf("forScheme(%s).Scheme = %s", tc.scheme, got.Scheme)
		}
		if tc.sharded && (got.Shards != 4 || !got.ShardOracle) {
			t.Errorf("%s: forScheme dropped shards for a whitelisted scheme", tc.scheme)
		}
		if !tc.sharded && (got.Shards != 0 || got.ShardOracle) {
			t.Errorf("%s: forScheme kept Shards=%d ShardOracle=%v for a serial-only scheme",
				tc.scheme, got.Shards, got.ShardOracle)
		}
		// The degraded config must actually build.
		if _, err := Build(got); err != nil {
			t.Errorf("%s: degraded build failed: %v", tc.scheme, err)
		}
	}
}
