package harness

import (
	"bytes"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"switchv2p/internal/simtime"
	"switchv2p/internal/telemetry"
	"switchv2p/internal/topology"
)

// reportFingerprint flattens every simulation-visible Report field into a
// comparable string. Telemetry and World are deliberately excluded: the
// former only exists on instrumented runs, the latter holds pointers.
func reportFingerprint(r *Report) string {
	return fmt.Sprintf("%s|%+v|%v|%d|%d|%v|%d|%v|%v|%d|%v|%d|%d|%d|%v|%d|%d|%d|%d",
		r.Scheme, r.Summary, r.HitRate, r.GatewayPackets, r.HostSent,
		r.AvgStretch, r.TotalSwitchBytes, r.PerPodBytes, r.PerSwitchBytes,
		r.Misdeliveries, r.LastMisdelivered, r.Drops, r.LearningPkts,
		r.InvalidationPkts, r.AvgPacketLatency,
		r.FaultDrops, r.LossDrops, r.Rerouted, r.FaultEvents)
}

// TestTelemetryZeroPerturbation is the guard the tentpole promises:
// attaching the collector must not change a single simulation result.
func TestTelemetryZeroPerturbation(t *testing.T) {
	for _, scheme := range []string{SchemeSwitchV2P, SchemeGwCache, SchemeNoCache} {
		plain, err := Run(quickConfig(scheme))
		if err != nil {
			t.Fatal(err)
		}
		cfg := quickConfig(scheme)
		cfg.Telemetry = &telemetry.Options{Interval: 5 * simtime.Microsecond}
		instrumented, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := reportFingerprint(instrumented), reportFingerprint(plain); got != want {
			t.Fatalf("%s: telemetry perturbed the run\nplain:        %s\ninstrumented: %s", scheme, want, got)
		}
		if instrumented.CoreStats != nil && !reflect.DeepEqual(instrumented.CoreStats, plain.CoreStats) {
			t.Fatalf("%s: telemetry perturbed core stats", scheme)
		}
		if instrumented.Telemetry == nil || len(instrumented.Telemetry.Timeline.Times) == 0 {
			t.Fatalf("%s: instrumented run collected no samples", scheme)
		}
		if plain.Telemetry != nil {
			t.Fatalf("%s: plain run grew a collector", scheme)
		}
	}
}

// TestTelemetryProfileRun checks the engine profiling hooks: the profiled
// event loop must dispatch the same simulation while recording throughput.
func TestTelemetryProfileRun(t *testing.T) {
	plain, err := Run(quickConfig(SchemeSwitchV2P))
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig(SchemeSwitchV2P)
	cfg.Telemetry = &telemetry.Options{ProfileOnly: true}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reportFingerprint(r), reportFingerprint(plain); got != want {
		t.Fatalf("profiled run diverged\nplain:    %s\nprofiled: %s", want, got)
	}
	p := &r.Telemetry.Profile
	if p.Events == 0 || p.HeapHighWater == 0 || p.Wall <= 0 || p.SimEnd == 0 {
		t.Fatalf("profile not populated: %+v", p)
	}
	if len(r.Telemetry.Timeline.Times) != 0 {
		t.Fatal("profile-only run recorded timeline samples")
	}
}

// TestSweepParallelDeterminism checks the satellite guarantee: sweeps run
// through the worker pool export byte-identical CSV to serial runs.
func TestSweepParallelDeterminism(t *testing.T) {
	serial := quickConfig(SchemeSwitchV2P)
	parallel := serial
	parallel.SweepWorkers = runtime.NumCPU()
	if parallel.SweepWorkers < 2 {
		parallel.SweepWorkers = 2
	}
	schemes := []string{SchemeSwitchV2P, SchemeNoCache}

	runBoth := func(name string, export func(Config) ([]byte, error)) {
		t.Helper()
		s, err := export(serial)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		p, err := export(parallel)
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		if !bytes.Equal(s, p) {
			t.Fatalf("%s: parallel CSV differs from serial\nserial:\n%s\nparallel:\n%s", name, s, p)
		}
	}

	runBoth("cache", func(cfg Config) ([]byte, error) {
		pts, err := CacheSizeSweep(cfg, []float64{0.25, 1}, schemes)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := WriteSweepCSV(&buf, pts); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
	runBoth("gateway", func(cfg Config) ([]byte, error) {
		pts, err := GatewaySweep(cfg, []int{4, 2}, schemes)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := WriteGatewayCSV(&buf, pts); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
	runBoth("topology", func(cfg Config) ([]byte, error) {
		pts, err := TopologySweep(cfg, []int{4, 8}, schemes, func(pods int) (Config, error) {
			c := cfg
			topo, err := topology.ScaledFT8(pods)
			if err != nil {
				return c, err
			}
			c.Topo = topo
			return c, nil
		})
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := WriteTopologyCSV(&buf, pts); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
}
