package harness

import (
	"fmt"

	"switchv2p/internal/core"
	"switchv2p/internal/telemetry"
)

// cacheScheme is satisfied by SwitchV2P and by every baseline that
// embeds *core.Scheme (GwCache, Hybrid): the telemetry sampler uses it
// to probe per-switch cache occupancy and hit rates.
type cacheScheme interface {
	Cache(sw int32) core.MappingCache
	Stats() *core.Stats
}

// attachTelemetry builds the run's collector and wires every probe and
// counter handle: engine profiling hooks, per-switch queue and cache
// series, gateway load series, protocol and transport packet rates.
// All probes are pure observations — attaching telemetry never changes
// a simulation result.
func (w *World) attachTelemetry(opts telemetry.Options) {
	tel := telemetry.New(opts)
	w.Telem = tel
	e := w.Engine
	e.Prof = &tel.Profile

	reg := tel.Registry
	w.Agent.RetxCounter = reg.Counter("transport.retransmits")
	w.Agent.RTOCounter = reg.Counter("transport.rtos")
	e.BufGauge = reg.Gauge("net.switch_buffer_bytes")

	if opts.ProfileOnly {
		return
	}
	iv := tel.Interval
	c := &e.C

	// Network-wide series.
	tel.AddProbe("net.inflight_pkts", func() float64 { return float64(e.InFlightPackets()) })
	tel.AddProbe("net.sent_per_sec", telemetry.RateProbe(iv, func() int64 { return c.HostSent }))
	tel.AddProbe("net.drops_per_sec", telemetry.RateProbe(iv, func() int64 { return c.Drops }))
	tel.AddProbe("net.fault_drops_per_sec", telemetry.RateProbe(iv, func() int64 { return c.FaultDrops }))
	tel.AddProbe("proto.learning_per_sec", telemetry.RateProbe(iv, func() int64 { return c.LearningPkts }))
	tel.AddProbe("proto.invalidation_per_sec", telemetry.RateProbe(iv, func() int64 { return c.InvalidationPkts }))
	tel.AddProbe("transport.retx_per_sec", telemetry.RateProbe(iv, w.Agent.RetxCounter.Value))
	tel.AddProbe("transport.rto_per_sec", telemetry.RateProbe(iv, w.Agent.RTOCounter.Value))

	// Gateway load: aggregate plus one series per active gateway.
	tel.AddProbe("gateway.pkts_per_sec", telemetry.RateProbe(iv, func() int64 { return c.GatewayPackets }))
	tel.AddProbe("gateway.bytes_per_sec", telemetry.RateProbe(iv, func() int64 { return c.GatewayBytes }))
	for _, g := range e.Gateways() {
		tel.AddProbe(fmt.Sprintf("gw%d.pkts_per_sec", g),
			telemetry.RateProbe(iv, func() int64 { return c.GatewayPktByHost[g] }))
		tel.AddProbe(fmt.Sprintf("gw%d.bytes_per_sec", g),
			telemetry.RateProbe(iv, func() int64 { return c.GatewayByteByHost[g] }))
	}

	// Per-switch queue series (shared-buffer depth and overflow drops).
	for i := range w.Topo.Switches {
		sw := int32(i)
		tel.AddProbe(fmt.Sprintf("sw%d.queue_bytes", i),
			func() float64 { return float64(e.BufferUsed(sw)) })
		tel.AddProbe(fmt.Sprintf("sw%d.drops_per_sec", i),
			telemetry.RateProbe(iv, func() int64 { return c.SwitchDrops[sw] }))
	}

	// Cache series, when the scheme exposes per-switch caches.
	if cs, ok := w.Scheme.(cacheScheme); ok {
		st := cs.Stats()
		layers := []struct {
			name string
			l    int
		}{{"tor", core.LayerToR}, {"spine", core.LayerSpine}, {"core", core.LayerCore}}
		tel.AddProbe("cache.hitrate", telemetry.RatioProbe(
			func() int64 { return st.Hits }, func() int64 { return st.Lookups }))
		for _, ly := range layers {
			tel.AddProbe("cache."+ly.name+".hitrate", telemetry.RatioProbe(
				func() int64 { return st.HitsByLayer[ly.l] },
				func() int64 { return st.LookupsByLayer[ly.l] }))
			tel.AddProbe("cache."+ly.name+".evictions_per_sec", telemetry.RateProbe(iv,
				func() int64 { return st.EvictionsByLayer[ly.l] }))
		}
		tel.AddProbe("cache.spill_inserted_per_sec", telemetry.RateProbe(iv,
			func() int64 { return st.SpillInserted }))
		tel.AddProbe("cache.promote_inserted_per_sec", telemetry.RateProbe(iv,
			func() int64 { return st.PromoteInserted }))

		capacity := int64(0)
		for i := range w.Topo.Switches {
			cache := cs.Cache(int32(i))
			capacity += int64(cache.Len())
			if cache.Len() == 0 {
				continue // non-caching switch: no per-switch series
			}
			tel.AddProbe(fmt.Sprintf("sw%d.cache_used", i),
				func() float64 { return float64(cache.Used()) })
			tel.AddProbe(fmt.Sprintf("sw%d.cache_hitrate", i), telemetry.RatioProbe(
				func() int64 { _, h := cache.HitStats(); return h },
				func() int64 { l, _ := cache.HitStats(); return l }))
		}
		reg.Gauge("cache.capacity_entries").Set(capacity)
	}

	if e.Sharded() {
		// The sharded root queue is frozen; the engine drives the sampler
		// at barrier-aligned instants instead of the collector scheduling
		// its own queue events.
		if sampleIv, ok := tel.BarrierSampling(); ok {
			e.SetBarrierSampler(sampleIv, tel.TickAt)
		}
	} else {
		tel.Attach(e.Q)
	}
}
