package harness

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"switchv2p/internal/simtime"
	"switchv2p/internal/telemetry"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	rows, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestWriteSweepCSV(t *testing.T) {
	pts := []SweepPoint{
		{Scheme: "SwitchV2P", CacheFraction: 0.5, HitRate: 0.81,
			FCT: 90 * simtime.Microsecond, FCTImprovement: 1.9,
			FirstPacket: 54 * simtime.Microsecond, FirstPktImprovement: 1.2},
		{Scheme: "NoCache", CacheFraction: 0, HitRate: 0,
			FCT: 175 * simtime.Microsecond, FCTImprovement: 1,
			FirstPacket: 67 * simtime.Microsecond, FirstPktImprovement: 1},
	}
	var buf bytes.Buffer
	if err := WriteSweepCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] != "scheme" || rows[1][0] != "SwitchV2P" || rows[1][2] != "0.810000" {
		t.Fatalf("unexpected rows: %v", rows[:2])
	}
	if rows[1][3] != "90.000000" {
		t.Fatalf("fct_us = %q, want 90.000000", rows[1][3])
	}
}

func TestWriteGatewayAndTopologyCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteGatewayCSV(&buf, []GatewayPoint{
		{Scheme: "nocache", Gateways: 4, FCT: 290 * simtime.Microsecond, Drops: 7},
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "nocache,4,290.000000,0.000000,7") {
		t.Fatalf("gateway csv: %q", buf.String())
	}
	buf.Reset()
	if err := WriteTopologyCSV(&buf, []TopologyPoint{
		{Scheme: "switchv2p", Pods: 16, FCT: 85 * simtime.Microsecond},
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "switchv2p,16,85.000000") {
		t.Fatalf("topology csv: %q", buf.String())
	}
}

func TestWritePodBytesCSVFromRun(t *testing.T) {
	r, err := Run(quickConfig(SchemeNoCache))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePodBytesCSV(&buf, []*Report{r}); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if got := len(rows[0]); got != 1+8+2 {
		t.Fatalf("header width = %d, want 11", got)
	}
	if err := WritePodBytesCSV(&buf, nil); err == nil {
		t.Fatal("empty reports accepted")
	}
}

func TestWriteMigrationCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteMigrationCSV(&buf, []*MigrationResult{{
		Scheme: "SwitchV2P", GatewayPacketShare: 0.1,
		AvgPacketLatency:        17 * simtime.Microsecond,
		LastMisdeliveredArrival: simtime.Time(605 * simtime.Microsecond),
		Misdelivered:            271, InvalidationPkts: 22,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SwitchV2P,0.100000,17.000000,605.000000,271,22") {
		t.Fatalf("migration csv: %q", buf.String())
	}
}

func TestWriteTelemetryCSV(t *testing.T) {
	cfg := quickConfig(SchemeSwitchV2P)
	cfg.Telemetry = &telemetry.Options{}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTelemetryCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) < 3 {
		t.Fatalf("timeline rows = %d, want several samples", len(rows))
	}
	if rows[0][0] != "time_us" {
		t.Fatalf("header = %v", rows[0])
	}
	want := map[string]bool{"cache.hitrate": false, "gateway.pkts_per_sec": false}
	for _, col := range rows[0] {
		if _, ok := want[col]; ok {
			want[col] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("series %q missing from header %v", name, rows[0])
		}
	}
	for _, row := range rows[1:] {
		if len(row) != len(rows[0]) {
			t.Fatalf("ragged row %v", row)
		}
	}

	// No telemetry (or profile-only) => explicit error, not an empty file.
	plain, err := Run(quickConfig(SchemeSwitchV2P))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTelemetryCSV(&buf, plain); err == nil {
		t.Fatal("telemetry-less report accepted")
	}
}
