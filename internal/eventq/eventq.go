// Package eventq implements the discrete-event scheduler at the heart of
// the simulator: a binary min-heap of timestamped events with stable FIFO
// ordering among events scheduled for the same instant. Stability matters
// for determinism: two packets enqueued for the same nanosecond must always
// dequeue in the order they were scheduled.
package eventq

import "switchv2p/internal/simtime"

// Event is a callback scheduled to run at a simulated instant.
type Event func()

// Timed is the typed-event fast path: a pre-bound event record whose
// Fire method runs when its instant arrives. Schedulers on hot paths
// implement Timed with a reusable (pooled) record instead of capturing
// state in a fresh closure per event — storing a pointer-typed Timed in
// the queue allocates nothing. Closure events and typed events share one
// insertion-order sequence, so interleaving the two kinds preserves
// same-instant FIFO stability.
type Timed interface {
	// Fire runs the event. The queue has already released its reference
	// to the record when Fire is called, so Fire may recycle or
	// reschedule the same record immediately.
	Fire()
}

type item struct {
	at  simtime.Time
	seq uint64 // tie-breaker: insertion order, shared by both event kinds
	fn  Event  // exactly one of fn / ev is set
	ev  Timed
}

// Queue is a min-heap of events ordered by (time, insertion order).
// The zero value is an empty queue ready for use.
type Queue struct {
	heap   []item
	seq    uint64
	now    simtime.Time
	frozen string // non-empty: scheduling panics with this message
}

// CrossKeyBase is the tie-break key space reserved for cross-queue
// handoffs (AtTimedKeyed). Ordinary insertions draw sequence numbers
// from 1 upward, so any key with this bit set sorts after every local
// event scheduled for the same instant — and two handoff keys order
// among themselves by their explicit key value, independent of the
// moment they were inserted. That independence is what makes a sharded
// simulation's dispatch order a pure function of event content rather
// than of when a synchronization round happened to drain a mailbox.
const CrossKeyBase = uint64(1) << 63

// Freeze makes every subsequent scheduling call (At, After, AtTimed,
// AfterTimed, AtTimedKeyed) panic with the given message. The sharded
// engine freezes the root queue so stray schedulers — a scheme or tool
// that was not audited for shard ownership — fail loudly instead of
// silently scheduling events no worker will ever dispatch.
func (q *Queue) Freeze(msg string) { q.frozen = msg }

// Frozen reports whether the queue rejects new events.
func (q *Queue) Frozen() bool { return q.frozen != "" }

// Now returns the current simulated time: the timestamp of the most
// recently dispatched event.
func (q *Queue) Now() simtime.Time { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// At schedules fn to run at instant t. Scheduling in the past (before the
// current instant) panics: it would violate causality and always indicates
// a bug in the caller.
//
//v2plint:hotpath
func (q *Queue) At(t simtime.Time, fn Event) {
	if t < q.now {
		panic("eventq: scheduling event in the past")
	}
	if q.frozen != "" {
		panic(q.frozen)
	}
	q.seq++
	q.heap = append(q.heap, item{at: t, seq: q.seq, fn: fn})
	q.up(len(q.heap) - 1)
}

// After schedules fn to run d after the current instant.
//
//v2plint:hotpath
func (q *Queue) After(d simtime.Duration, fn Event) {
	q.At(q.now.Add(d), fn)
}

// AtTimed schedules the pre-bound event record ev to fire at instant t.
// It is the allocation-free counterpart of At: the record is stored in
// the heap by reference, and ownership passes to the queue until Fire.
//
//v2plint:hotpath
func (q *Queue) AtTimed(t simtime.Time, ev Timed) {
	if t < q.now {
		panic("eventq: scheduling event in the past")
	}
	if q.frozen != "" {
		panic(q.frozen)
	}
	q.seq++
	q.heap = append(q.heap, item{at: t, seq: q.seq, ev: ev})
	q.up(len(q.heap) - 1)
}

// AtTimedKeyed schedules ev at instant t with an explicit tie-break key
// instead of the insertion-order sequence. The key must be >= CrossKeyBase
// so handoff events never interleave with (or collide with) local
// sequence numbers; the caller owns key uniqueness within its key space.
// Used by the sharded engine for cross-shard packet handoffs: the key is
// derived from (source shard, source emission order), so the dispatch
// order at the destination is identical whether the record was inserted
// eagerly (oracle mode) or at a barrier (windowed parallel mode).
//
//v2plint:hotpath
func (q *Queue) AtTimedKeyed(t simtime.Time, ev Timed, key uint64) {
	if t < q.now {
		panic("eventq: scheduling event in the past")
	}
	if key < CrossKeyBase {
		panic("eventq: AtTimedKeyed key below CrossKeyBase")
	}
	if q.frozen != "" {
		panic(q.frozen)
	}
	q.heap = append(q.heap, item{at: t, seq: key, ev: ev})
	q.up(len(q.heap) - 1)
}

// AfterTimed schedules ev to fire d after the current instant.
//
//v2plint:hotpath
func (q *Queue) AfterTimed(d simtime.Duration, ev Timed) {
	q.AtTimed(q.now.Add(d), ev)
}

// Step dispatches the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was dispatched.
//
//v2plint:hotpath
func (q *Queue) Step() bool {
	if len(q.heap) == 0 {
		return false
	}
	it := q.heap[0]
	n := len(q.heap) - 1
	q.heap[0] = q.heap[n]
	q.heap[n] = item{} // release the closure / record for GC
	q.heap = q.heap[:n]
	if n > 0 {
		q.down(0)
	}
	q.now = it.at
	if it.ev != nil {
		it.ev.Fire()
	} else {
		//v2plint:allow hotpathreach legacy At/After closure path kept for setup and tests; the hot path schedules Event values via AtTimed/AfterTimed
		it.fn()
	}
	return true
}

// Run dispatches events until the queue is empty or until the next event
// would be later than horizon. It returns the number of events dispatched.
// Use horizon = simtime.Never to drain the queue.
//
//v2plint:hotpath
func (q *Queue) Run(horizon simtime.Time) int {
	n := 0
	for len(q.heap) > 0 && q.heap[0].at <= horizon {
		q.Step()
		n++
	}
	return n
}

// RunBefore dispatches events strictly earlier than t and returns the
// number dispatched. It is the sharded engine's window drain: with
// lookahead W, each shard runs RunBefore(T+W) knowing no cross-shard
// influence can arrive inside [T, T+W).
//
//v2plint:hotpath
func (q *Queue) RunBefore(t simtime.Time) int {
	n := 0
	for len(q.heap) > 0 && q.heap[0].at < t {
		q.Step()
		n++
	}
	return n
}

// PeekKey returns the (time, tie-break key) of the earliest pending
// event and whether one exists. The sharded oracle loop uses it to pick
// the globally next event across shard queues: compare (time, key)
// lexicographically, then by shard index.
func (q *Queue) PeekKey() (simtime.Time, uint64, bool) {
	if len(q.heap) == 0 {
		return 0, 0, false
	}
	return q.heap[0].at, q.heap[0].seq, true
}

// PeekTime returns the timestamp of the earliest pending event and whether
// one exists.
//
//v2plint:hotpath
func (q *Queue) PeekTime() (simtime.Time, bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].at, true
}

func (q *Queue) less(i, j int) bool {
	a, b := &q.heap[i], &q.heap[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// The heap is 4-ary: simulation queues grow large (hundreds of
// thousands of pending events), and the shallower tree roughly halves
// the swap count of sift-down compared to a binary heap.
const heapArity = 4

// up sifts the item at i toward the root (heap insert).
//
//v2plint:hotpath
func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / heapArity
		if !q.less(i, parent) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

// down sifts the item at i toward the leaves (heap pop).
//
//v2plint:hotpath
func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		first := heapArity*i + 1
		if first >= n {
			return
		}
		small := i
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if q.less(c, small) {
				small = c
			}
		}
		if small == i {
			return
		}
		q.heap[i], q.heap[small] = q.heap[small], q.heap[i]
		i = small
	}
}
