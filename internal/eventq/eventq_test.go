package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"switchv2p/internal/simtime"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
	if q.Step() {
		t.Fatalf("Step on empty queue returned true")
	}
	if _, ok := q.PeekTime(); ok {
		t.Fatalf("PeekTime on empty queue returned ok")
	}
	if q.Now() != 0 {
		t.Fatalf("Now = %v, want 0", q.Now())
	}
}

func TestDispatchOrder(t *testing.T) {
	var q Queue
	var got []int
	q.At(30, func() { got = append(got, 3) })
	q.At(10, func() { got = append(got, 1) })
	q.At(20, func() { got = append(got, 2) })
	q.Run(simtime.Never)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("dispatch order = %v", got)
	}
	if q.Now() != 30 {
		t.Fatalf("Now = %v, want 30", q.Now())
	}
}

func TestFIFOAmongEqualTimestamps(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		q.At(42, func() { got = append(got, i) })
	}
	q.Run(simtime.Never)
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-timestamp events dispatched out of order: got[%d]=%d", i, v)
		}
	}
}

func TestAfterUsesCurrentInstant(t *testing.T) {
	var q Queue
	var fired simtime.Time
	q.At(100, func() {
		q.After(50, func() { fired = q.Now() })
	})
	q.Run(simtime.Never)
	if fired != 150 {
		t.Fatalf("nested After fired at %v, want 150", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var q Queue
	q.At(100, func() {})
	q.Step()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic scheduling in the past")
		}
	}()
	q.At(50, func() {})
}

func TestRunHorizon(t *testing.T) {
	var q Queue
	count := 0
	for _, at := range []simtime.Time{10, 20, 30, 40} {
		q.At(at, func() { count++ })
	}
	if n := q.Run(25); n != 2 || count != 2 {
		t.Fatalf("Run(25) dispatched %d (count %d), want 2", n, count)
	}
	if at, ok := q.PeekTime(); !ok || at != 30 {
		t.Fatalf("PeekTime = %v,%v, want 30,true", at, ok)
	}
	if n := q.Run(simtime.Never); n != 2 || count != 4 {
		t.Fatalf("drain dispatched %d (count %d), want 2 more", n, count)
	}
}

func TestEventsScheduledDuringDispatch(t *testing.T) {
	var q Queue
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 10 {
			q.After(1, rec)
		}
	}
	q.At(0, rec)
	q.Run(simtime.Never)
	if depth != 10 {
		t.Fatalf("depth = %d, want 10", depth)
	}
	if q.Now() != 9 {
		t.Fatalf("Now = %v, want 9", q.Now())
	}
}

func TestRandomizedOrderProperty(t *testing.T) {
	// Property: events always fire in non-decreasing timestamp order, and
	// the clock equals the last fired timestamp.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		n := 200
		times := make([]simtime.Time, n)
		for i := range times {
			times[i] = simtime.Time(rng.Intn(50))
		}
		var fired []simtime.Time
		for _, at := range times {
			at := at
			q.At(at, func() { fired = append(fired, at) })
		}
		q.Run(simtime.Never)
		if len(fired) != n {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		return q.Now() == fired[n-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// recordEvent is a minimal Timed implementation for the tests: a
// pre-bound record appending its id to a shared log.
type recordEvent struct {
	out *[]int
	id  int
}

func (r *recordEvent) Fire() { *r.out = append(*r.out, r.id) }

// TestTypedAndClosureFIFOInterleaved checks same-instant FIFO stability
// when typed-event records and closure events share a timestamp: the two
// kinds draw from one insertion-order sequence, so scheduling order is
// dispatch order regardless of kind.
func TestTypedAndClosureFIFOInterleaved(t *testing.T) {
	var q Queue
	var got []int
	const n = 100
	for i := 0; i < n; i++ {
		i := i
		if i%2 == 0 {
			q.AtTimed(42, &recordEvent{out: &got, id: i})
		} else {
			q.At(42, func() { got = append(got, i) })
		}
	}
	if q.Len() != n {
		t.Fatalf("Len = %d, want %d", q.Len(), n)
	}
	q.Run(simtime.Never)
	if len(got) != n {
		t.Fatalf("dispatched %d events, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-timestamp events dispatched out of order: got[%d]=%d", i, v)
		}
	}
}

// TestTypedAfterAndPastPanic covers AfterTimed's base instant and the
// causality panic on the typed path.
func TestTypedAfterAndPastPanic(t *testing.T) {
	var q Queue
	var got []int
	q.At(100, func() { q.AfterTimed(50, &recordEvent{out: &got, id: 150}) })
	q.Run(simtime.Never)
	if len(got) != 1 || got[0] != 150 || q.Now() != 150 {
		t.Fatalf("AfterTimed fired %v at %v, want [150] at 150", got, q.Now())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling typed event in the past")
		}
	}()
	q.AtTimed(50, &recordEvent{out: &got, id: 0})
}

// TestStepRunEquivalenceAtHorizon drives two identically loaded queues —
// one with Run(horizon), one with a manual PeekTime/Step loop — and
// checks they dispatch the same events, stop at the same clock, and
// leave the same residue at the horizon boundary (events exactly at the
// horizon run; events just past it stay pending).
func TestStepRunEquivalenceAtHorizon(t *testing.T) {
	const horizon = simtime.Time(20)
	load := func(q *Queue, out *[]int) {
		// Timestamps straddle the horizon, with ties both at and beyond
		// it, mixing typed and closure events.
		for i, at := range []simtime.Time{10, 20, 20, 21, 30, 20, 40} {
			i := i
			if i%2 == 0 {
				q.AtTimed(at, &recordEvent{out: out, id: i})
			} else {
				at := at
				q.At(at, func() { *out = append(*out, i) })
			}
		}
	}
	var qRun, qStep Queue
	var gotRun, gotStep []int
	load(&qRun, &gotRun)
	load(&qStep, &gotStep)

	nRun := qRun.Run(horizon)
	nStep := 0
	for {
		at, ok := qStep.PeekTime()
		if !ok || at > horizon {
			break
		}
		qStep.Step()
		nStep++
	}

	if nRun != nStep {
		t.Fatalf("Run dispatched %d, Step loop dispatched %d", nRun, nStep)
	}
	if nRun != 4 {
		t.Fatalf("dispatched %d events up to horizon, want 4 (10, 20, 20, 20)", nRun)
	}
	if len(gotRun) != len(gotStep) {
		t.Fatalf("logs differ in length: %v vs %v", gotRun, gotStep)
	}
	for i := range gotRun {
		if gotRun[i] != gotStep[i] {
			t.Fatalf("logs diverge at %d: %v vs %v", i, gotRun, gotStep)
		}
	}
	if qRun.Now() != qStep.Now() || qRun.Now() != horizon {
		t.Fatalf("clocks differ: Run at %v, Step at %v, want %v", qRun.Now(), qStep.Now(), horizon)
	}
	if qRun.Len() != qStep.Len() || qRun.Len() != 3 {
		t.Fatalf("residue differs: Run %d, Step %d, want 3 pending", qRun.Len(), qStep.Len())
	}

	// Draining past the horizon stays equivalent.
	qRun.Run(simtime.Never)
	for qStep.Step() {
	}
	if len(gotRun) != 7 || len(gotStep) != 7 {
		t.Fatalf("drain incomplete: %v vs %v", gotRun, gotStep)
	}
	for i := range gotRun {
		if gotRun[i] != gotStep[i] {
			t.Fatalf("post-drain logs diverge at %d: %v vs %v", i, gotRun, gotStep)
		}
	}
}

// TestTypedScheduleAllocFree proves the typed fast path allocates
// nothing once the heap's backing array is warm: scheduling a pooled
// record and stepping it costs zero heap allocations.
func TestTypedScheduleAllocFree(t *testing.T) {
	var q Queue
	sink := 0
	ev := &countEvent{n: &sink}
	// Warm the heap's backing array.
	q.AtTimed(1, ev)
	q.Step()
	allocs := testing.AllocsPerRun(100, func() {
		q.AfterTimed(1, ev)
		q.Step()
	})
	if allocs != 0 {
		t.Fatalf("typed schedule+dispatch allocates %v per op, want 0", allocs)
	}
}

// countEvent increments a counter on Fire (no per-fire append, so the
// alloc test measures only the queue).
type countEvent struct{ n *int }

func (c *countEvent) Fire() { *c.n++ }

func BenchmarkQueue(b *testing.B) {
	b.Run("closure", func(b *testing.B) {
		var q Queue
		rng := rand.New(rand.NewSource(1))
		fn := func() {}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q.At(q.Now().Add(simtime.Duration(rng.Intn(1000))), fn)
			if q.Len() > 1024 {
				q.Step()
			}
		}
	})
	b.Run("typed", func(b *testing.B) {
		var q Queue
		rng := rand.New(rand.NewSource(1))
		sink := 0
		ev := &countEvent{n: &sink}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q.AtTimed(q.Now().Add(simtime.Duration(rng.Intn(1000))), ev)
			if q.Len() > 1024 {
				q.Step()
			}
		}
	})
}
