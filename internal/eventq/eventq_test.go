package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"switchv2p/internal/simtime"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
	if q.Step() {
		t.Fatalf("Step on empty queue returned true")
	}
	if _, ok := q.PeekTime(); ok {
		t.Fatalf("PeekTime on empty queue returned ok")
	}
	if q.Now() != 0 {
		t.Fatalf("Now = %v, want 0", q.Now())
	}
}

func TestDispatchOrder(t *testing.T) {
	var q Queue
	var got []int
	q.At(30, func() { got = append(got, 3) })
	q.At(10, func() { got = append(got, 1) })
	q.At(20, func() { got = append(got, 2) })
	q.Run(simtime.Never)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("dispatch order = %v", got)
	}
	if q.Now() != 30 {
		t.Fatalf("Now = %v, want 30", q.Now())
	}
}

func TestFIFOAmongEqualTimestamps(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		q.At(42, func() { got = append(got, i) })
	}
	q.Run(simtime.Never)
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-timestamp events dispatched out of order: got[%d]=%d", i, v)
		}
	}
}

func TestAfterUsesCurrentInstant(t *testing.T) {
	var q Queue
	var fired simtime.Time
	q.At(100, func() {
		q.After(50, func() { fired = q.Now() })
	})
	q.Run(simtime.Never)
	if fired != 150 {
		t.Fatalf("nested After fired at %v, want 150", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var q Queue
	q.At(100, func() {})
	q.Step()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic scheduling in the past")
		}
	}()
	q.At(50, func() {})
}

func TestRunHorizon(t *testing.T) {
	var q Queue
	count := 0
	for _, at := range []simtime.Time{10, 20, 30, 40} {
		q.At(at, func() { count++ })
	}
	if n := q.Run(25); n != 2 || count != 2 {
		t.Fatalf("Run(25) dispatched %d (count %d), want 2", n, count)
	}
	if at, ok := q.PeekTime(); !ok || at != 30 {
		t.Fatalf("PeekTime = %v,%v, want 30,true", at, ok)
	}
	if n := q.Run(simtime.Never); n != 2 || count != 4 {
		t.Fatalf("drain dispatched %d (count %d), want 2 more", n, count)
	}
}

func TestEventsScheduledDuringDispatch(t *testing.T) {
	var q Queue
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 10 {
			q.After(1, rec)
		}
	}
	q.At(0, rec)
	q.Run(simtime.Never)
	if depth != 10 {
		t.Fatalf("depth = %d, want 10", depth)
	}
	if q.Now() != 9 {
		t.Fatalf("Now = %v, want 9", q.Now())
	}
}

func TestRandomizedOrderProperty(t *testing.T) {
	// Property: events always fire in non-decreasing timestamp order, and
	// the clock equals the last fired timestamp.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		n := 200
		times := make([]simtime.Time, n)
		for i := range times {
			times[i] = simtime.Time(rng.Intn(50))
		}
		var fired []simtime.Time
		for _, at := range times {
			at := at
			q.At(at, func() { fired = append(fired, at) })
		}
		q.Run(simtime.Never)
		if len(fired) != n {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		return q.Now() == fired[n-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkQueue(b *testing.B) {
	var q Queue
	rng := rand.New(rand.NewSource(1))
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.At(q.Now().Add(simtime.Duration(rng.Intn(1000))), fn)
		if q.Len() > 1024 {
			q.Step()
		}
	}
}
