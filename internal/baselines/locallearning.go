package baselines

import (
	"switchv2p/internal/core"
	"switchv2p/internal/netaddr"
	"switchv2p/internal/packet"
	"switchv2p/internal/simnet"
	"switchv2p/internal/topology"
)

// LocalLearning is the §3.1 strawman: every switch performs destination
// learning, admits every insertion, and looks up unresolved packets —
// with no topology awareness, learning packets, spillover, promotion or
// invalidation.
type LocalLearning struct {
	topo   *topology.Topology
	caches []*core.Cache

	// Stats.
	Lookups, Hits int64 //v2plint:shardlocal aggregate counter, post-run read only
}

// NewLocalLearning builds the strawman with the given per-switch cache
// size.
func NewLocalLearning(topo *topology.Topology, linesPerSwitch int) *LocalLearning {
	l := &LocalLearning{topo: topo}
	l.caches = make([]*core.Cache, len(topo.Switches))
	for i := range l.caches {
		l.caches[i] = core.NewCache(linesPerSwitch)
	}
	return l
}

// Name implements simnet.Scheme.
func (*LocalLearning) Name() string { return "LocalLearning" }

// Cache exposes a switch's cache for tests.
func (l *LocalLearning) Cache(sw int32) *core.Cache { return l.caches[sw] }

// FlushCache implements simnet.CacheFlusher.
func (l *LocalLearning) FlushCache(sw int32) { l.caches[sw].Flush() }

// SenderResolve implements simnet.Scheme.
func (*LocalLearning) SenderResolve(e *simnet.Engine, host int32, p *packet.Packet) bool {
	if !p.Resolved {
		p.DstPIP = e.GatewayFor(p.SrcPIP, p.FlowID)
	}
	return true
}

// SwitchArrive implements simnet.Scheme: greedy local lookup + learn.
func (l *LocalLearning) SwitchArrive(e *simnet.Engine, sw int32, from topology.NodeRef, p *packet.Packet) bool {
	switch p.Kind {
	case packet.Data, packet.Ack:
	default:
		return true
	}
	cache := l.caches[sw]
	if !p.Resolved && cache.Len() > 0 {
		l.Lookups++
		// Never resolve back to the address the packet was just
		// misdelivered to; without this guard a follow-me re-forward
		// could ping-pong.
		if pip, hit, _ := cache.Lookup(p.DstVIP); hit && pip != p.StalePIP {
			p.DstPIP = pip
			p.Resolved = true
			p.HitSwitch = int32(sw)
			l.Hits++
		}
	}
	if p.Resolved {
		cache.Insert(netaddr.Mapping{VIP: p.DstVIP, PIP: p.DstPIP})
	}
	return true
}

// HostMisdeliver implements simnet.Scheme. The old host tags the packet
// with its own address before follow-me so that stale cached entries for
// it are not reused en route (LocalLearning has no invalidation protocol,
// so without the tag packets could loop back here forever).
func (l *LocalLearning) HostMisdeliver(e *simnet.Engine, host int32, p *packet.Packet) {
	p.StalePIP = e.Topo.Hosts[host].PIP
	followMe(e, host, p)
}
