package baselines

import (
	"switchv2p/internal/packet"
	"switchv2p/internal/simnet"
	"switchv2p/internal/topology"
)

// NoCache is the pure gateway baseline: every packet detours through a
// translation gateway; switches are passive. Misdelivered packets are
// re-forwarded by the old host's follow-me rule.
type NoCache struct{}

// NewNoCache returns the NoCache baseline.
func NewNoCache() *NoCache { return &NoCache{} }

// Name implements simnet.Scheme.
func (*NoCache) Name() string { return "NoCache" }

// SenderResolve implements simnet.Scheme.
func (*NoCache) SenderResolve(e *simnet.Engine, host int32, p *packet.Packet) bool {
	if !p.Resolved {
		p.DstPIP = e.GatewayFor(p.SrcPIP, p.FlowID)
	}
	return true
}

// SwitchArrive implements simnet.Scheme: switches only forward.
func (*NoCache) SwitchArrive(e *simnet.Engine, sw int32, from topology.NodeRef, p *packet.Packet) bool {
	return true
}

// HostMisdeliver implements simnet.Scheme.
func (*NoCache) HostMisdeliver(e *simnet.Engine, host int32, p *packet.Packet) {
	followMe(e, host, p)
}

// FlushCache implements simnet.CacheFlusher. NoCache keeps no
// switch-resident translation state, so a switch failure flushes
// nothing.
func (*NoCache) FlushCache(int32) {}
