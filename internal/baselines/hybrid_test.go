package baselines

import (
	"testing"

	"switchv2p/internal/core"
	"switchv2p/internal/netaddr"
	"switchv2p/internal/packet"
	"switchv2p/internal/simnet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
)

func newHybridWorld(t testing.TB, threshold int) (*world, *Hybrid) {
	t.Helper()
	var h *Hybrid
	w := newWorld(t, func(topo *topology.Topology) simnet.Scheme {
		opts := core.DefaultOptions(1024)
		opts.PLearn = 1.0
		h = NewHybrid(topo, opts, threshold, simtime.Millisecond)
		return h
	})
	return w, h
}

func TestHybridOffloadsHotDestination(t *testing.T) {
	w, h := newHybridWorld(t, 3)
	src, dst := w.vips[0], w.vips[9]
	srcHost := w.hostOf(src)

	// Below the threshold: no host rule; traffic resolves in-network or
	// at the gateway.
	w.send(1, 0, src, dst)
	w.send(1, 1, src, dst)
	if _, ok := h.HostRule(srcHost, dst); ok {
		t.Fatal("host rule installed below threshold")
	}
	// Third packet crosses the threshold; the rule lands after the
	// control-plane latency (1 ms).
	w.send(1, 2, src, dst)
	w.e.Q.After(2*simtime.Millisecond, func() {})
	w.e.Run(simtime.Never)
	if _, ok := h.HostRule(srcHost, dst); !ok {
		t.Fatal("host rule not installed after threshold + latency")
	}
	if h.RulesOffload != 1 {
		t.Fatalf("rules offloaded = %d, want 1", h.RulesOffload)
	}
	// Subsequent packets resolve at the host: no gateway, no switch
	// lookups for them.
	gw := w.e.C.GatewayPackets
	lookups := h.Scheme.S.Lookups
	w.send(1, 3, src, dst)
	if w.e.C.GatewayPackets != gw {
		t.Fatal("host-resolved packet used the gateway")
	}
	if h.Scheme.S.Lookups != lookups {
		t.Fatal("switches performed lookups for a host-resolved packet (§4 violated)")
	}
	if h.HostHits == 0 {
		t.Fatal("host hits not counted")
	}
}

func TestHybridSwitchEntryDecays(t *testing.T) {
	// §4: once a mapping is cached at the host, the corresponding switch
	// entries stop being hit; their access bits stay clear and they lose
	// to conservative insertions.
	w, h := newHybridWorld(t, 1) // offload immediately
	src, dst := w.vips[0], w.vips[9]
	srcToR := w.topo.Hosts[w.hostOf(src)].ToR

	w.send(1, 0, src, dst) // cold: resolves via gateway, seeds caches, offloads
	w.e.Q.After(2*simtime.Millisecond, func() {})
	w.e.Run(simtime.Never)
	// The sender ToR holds dst's mapping (learning packet), with its
	// access bit clear (never hit).
	cache := h.Scheme.Cache(srcToR)
	if _, ok := cache.Peek(dst); !ok {
		t.Skip("sender ToR was not seeded; nothing to decay")
	}
	// Host-resolved traffic leaves the access bit untouched...
	w.send(1, 1, src, dst)
	w.send(1, 2, src, dst)
	// ...so a conservative insertion can displace it (access bit clear).
	pip, _ := w.net.Lookup(dst)
	_ = pip
	res := cache.InsertIfClear(netaddr.Mapping{VIP: w.vips[50], PIP: 0x0a000001})
	if !res.Inserted && res.Evicted.IsValid() {
		t.Fatal("unexpected insert result")
	}
	// Note: direct-mapped indexing means the new key may land on another
	// line; the essential §4 property asserted here is that the dst line
	// was never marked accessed by host-resolved traffic:
	if _, hit, was := cache.Lookup(dst); hit && was {
		t.Fatal("switch entry for host-cached destination was marked accessed")
	}
}

func TestHybridColdTrafficStillUsesSwitches(t *testing.T) {
	w, h := newHybridWorld(t, 1000000) // effectively never offload
	src, dst := w.vips[0], w.vips[9]
	w.send(1, 0, src, dst)
	gw := w.e.C.GatewayPackets
	w.send(1, 1, src, dst)
	if w.e.C.GatewayPackets != gw {
		t.Fatal("second packet should hit in-network caches, not the gateway")
	}
	if h.Scheme.S.Hits == 0 {
		t.Fatal("no switch hits for cold traffic")
	}
	if h.HostHits != 0 {
		t.Fatal("host hits without offload")
	}
}

func TestHybridMigrationRecovery(t *testing.T) {
	w, h := newHybridWorld(t, 1)
	src, dst := w.vips[0], w.vips[9]
	w.send(1, 0, src, dst)
	w.e.Q.After(2*simtime.Millisecond, func() {})
	w.e.Run(simtime.Never)
	if _, ok := h.HostRule(w.hostOf(src), dst); !ok {
		t.Fatal("precondition: no host rule")
	}
	newHost := w.hostOf(w.vips[100])
	if err := w.net.Migrate(dst, newHost); err != nil {
		t.Fatal(err)
	}
	var deliveredTo int32 = -1
	w.e.Handler = func(hh int32, p *packet.Packet) { deliveredTo = hh }
	// The stale host rule misroutes; SwitchV2P's misdelivery path (via
	// gateway) still delivers correctly.
	w.send(1, 1, src, dst)
	if deliveredTo != newHost {
		t.Fatalf("delivered to %d, want %d", deliveredTo, newHost)
	}
	if w.e.C.Misdeliveries == 0 {
		t.Fatal("expected a misdelivery from the stale host rule")
	}
}
