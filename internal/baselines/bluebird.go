package baselines

import (
	"switchv2p/internal/core"
	"switchv2p/internal/netaddr"
	"switchv2p/internal/packet"
	"switchv2p/internal/simnet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
)

// BluebirdParams are the slow-path parameters from the Bluebird paper,
// as used in §5: a 20 Gbps data-to-control-plane link, 8.5 µs
// control-plane forwarding latency, and 2 ms cache-insertion latency.
type BluebirdParams struct {
	CPLinkBps        int64
	CPForwardLatency simtime.Duration
	CacheInsertDelay simtime.Duration
	// CPQueueBytes bounds the DP->CP queue; excess packets are dropped
	// (the bandwidth-limited link is Bluebird's bottleneck in §5.1).
	CPQueueBytes int
}

// DefaultBluebirdParams returns the paper's parameters.
func DefaultBluebirdParams() BluebirdParams {
	return BluebirdParams{
		CPLinkBps:        20e9,
		CPForwardLatency: simtime.Duration(8500),
		CacheInsertDelay: 2 * simtime.Millisecond,
		CPQueueBytes:     1 << 20,
	}
}

// bluebirdCP models one ToR's switch control plane (SFE): a serializing
// 20 Gbps link with a bounded queue, a fixed forwarding latency, and
// delayed cache insertion.
type bluebirdCP struct {
	busyUntil   simtime.Time
	queuedBytes int
}

// Bluebird resolves addresses in the ToR data plane when the route cache
// hits; otherwise the packet takes the control-plane slow path, which
// also installs the mapping (after the insertion delay). There are no
// translation gateways.
type Bluebird struct {
	topo   *topology.Topology
	params BluebirdParams
	caches []*core.Cache // route caches, ToRs only
	cp     []bluebirdCP  // per-ToR control plane

	// Stats: aggregate counters, only read after the run; cross-slot
	// increments cannot influence scheduling. Sharding the centralized
	// schemes' state is the ROADMAP item 1 follow-on.
	Hits, Misses int64 //v2plint:shardlocal aggregate counter, post-run read only
	CPDrops      int64 //v2plint:shardlocal aggregate counter, post-run read only
	CPForwarded  int64 //v2plint:shardlocal aggregate counter, post-run read only
}

// NewBluebird builds the baseline with the given per-ToR route-cache
// size.
func NewBluebird(topo *topology.Topology, linesPerToR int, params BluebirdParams) *Bluebird {
	b := &Bluebird{topo: topo, params: params}
	b.caches = make([]*core.Cache, len(topo.Switches))
	b.cp = make([]bluebirdCP, len(topo.Switches))
	for i, sw := range topo.Switches {
		lines := 0
		if sw.Role.IsToR() {
			lines = linesPerToR
		}
		b.caches[i] = core.NewCache(lines)
	}
	return b
}

// Name implements simnet.Scheme.
func (*Bluebird) Name() string { return "Bluebird" }

// Cache exposes a ToR's route cache for tests.
func (b *Bluebird) Cache(sw int32) *core.Cache { return b.caches[sw] }

// FlushCache implements simnet.CacheFlusher: a failed ToR loses its
// route cache and whatever work its local control plane had queued.
func (b *Bluebird) FlushCache(sw int32) {
	b.caches[sw].Flush()
	b.cp[sw] = bluebirdCP{}
}

// SenderResolve implements simnet.Scheme: hosts leave packets unresolved
// with no outer destination; the first-hop ToR owns resolution.
func (*Bluebird) SenderResolve(e *simnet.Engine, host int32, p *packet.Packet) bool { return true }

// SwitchArrive implements simnet.Scheme.
func (b *Bluebird) SwitchArrive(e *simnet.Engine, sw int32, from topology.NodeRef, p *packet.Packet) bool {
	switch p.Kind {
	case packet.Data, packet.Ack:
	default:
		return true
	}
	if p.Resolved {
		return true
	}
	role := b.topo.Switches[sw].Role
	if !role.IsToR() {
		// Unresolved packets never get past the first-hop ToR.
		return true
	}
	cache := b.caches[sw]
	if pip, hit, _ := cache.Lookup(p.DstVIP); hit && pip != p.StalePIP {
		p.DstPIP = pip
		p.Resolved = true
		b.Hits++
		return true
	}
	b.Misses++
	b.slowPath(e, sw, p)
	return false // consumed: the CP re-injects it
}

// slowPath sends the packet over the DP->CP link, resolves it in the
// control plane, re-injects it, and schedules the cache insertion.
func (b *Bluebird) slowPath(e *simnet.Engine, sw int32, p *packet.Packet) {
	cp := &b.cp[sw]
	size := p.Size()
	if cp.queuedBytes+size > b.params.CPQueueBytes {
		b.CPDrops++
		return
	}
	cp.queuedBytes += size
	now := e.Now()
	start := cp.busyUntil
	if start < now {
		start = now
	}
	done := start.Add(simtime.TransmitTime(size, b.params.CPLinkBps))
	cp.busyUntil = done
	e.Q.At(done.Add(b.params.CPForwardLatency), func() {
		cp.queuedBytes -= size
		pip, ok := e.Net.Lookup(p.DstVIP)
		if !ok {
			b.CPDrops++
			return
		}
		b.CPForwarded++
		p.DstPIP = pip
		p.Resolved = true
		e.InjectFromSwitch(sw, p)
	})
	// The cache entry becomes visible after the insertion latency, with
	// the mapping as known then.
	e.Q.After(b.params.CacheInsertDelay, func() {
		if pip, ok := e.Net.Lookup(p.DstVIP); ok {
			b.caches[sw].Insert(netaddr.Mapping{VIP: p.DstVIP, PIP: pip})
		}
	})
}

// HostMisdeliver implements simnet.Scheme.
func (b *Bluebird) HostMisdeliver(e *simnet.Engine, host int32, p *packet.Packet) {
	p.StalePIP = e.Topo.Hosts[host].PIP
	followMe(e, host, p)
}
