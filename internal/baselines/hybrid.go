package baselines

import (
	"switchv2p/internal/core"
	"switchv2p/internal/netaddr"
	"switchv2p/internal/packet"
	"switchv2p/internal/simnet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
)

// Hybrid layers Andromeda's Hoverboard-style dynamic host offload on top
// of SwitchV2P — the paper's "seamless integration with gateway/hybrid
// solutions" objective (§3) and the §4 "Handling dynamic caching in the
// host" discussion: hot destinations get a host flow rule after
// OffloadThreshold packets (installed by the control plane after
// InstallLatency), while everything else resolves through SwitchV2P's
// in-network caches. Host-resolved packets are already resolved when
// they reach the switches, so SwitchV2P performs no lookups for them and
// the corresponding switch entries naturally decay (their access bits
// stay clear), exactly as §4 describes.
type Hybrid struct {
	*core.Scheme

	// OffloadThreshold is the per-(host, destination) packet count after
	// which the controller installs a host rule (Hoverboard's policy;
	// Zeta uses a similar threshold).
	OffloadThreshold int
	// InstallLatency models the control-plane rule installation time
	// (order of milliseconds in Zeta/Achelous).
	InstallLatency simtime.Duration

	counts    map[hostDstKey]int            //v2plint:shardlocal offload counters share one map across hosts; per-domain sharding is ROADMAP item 3
	hostCache []map[netaddr.VIP]netaddr.PIP //v2plint:shardlocal controller installs fire after InstallLatency, outside the originating slot; sharding is ROADMAP item 3

	// Stats.
	HostHits     int64 //v2plint:shardlocal aggregate counter, post-run read only
	RulesOffload int64 //v2plint:shardlocal aggregate counter, post-run read only
}

type hostDstKey struct {
	host int32
	dst  netaddr.VIP
}

// NewHybrid builds the hybrid scheme: SwitchV2P options for the switch
// tier, plus the host offload policy.
func NewHybrid(topo *topology.Topology, opts core.Options, threshold int, installLatency simtime.Duration) *Hybrid {
	return &Hybrid{
		Scheme:           core.New(topo, opts),
		OffloadThreshold: threshold,
		InstallLatency:   installLatency,
		counts:           make(map[hostDstKey]int),
		hostCache:        make([]map[netaddr.VIP]netaddr.PIP, len(topo.Hosts)),
	}
}

// Name implements simnet.Scheme.
func (*Hybrid) Name() string { return "Hybrid" }

// SenderResolve implements simnet.Scheme: consult the host flow rules
// first; count packets toward the offload threshold otherwise.
func (h *Hybrid) SenderResolve(e *simnet.Engine, host int32, p *packet.Packet) bool {
	if p.Resolved {
		return true
	}
	if pip, ok := h.hostCache[host][p.DstVIP]; ok {
		p.DstPIP = pip
		p.Resolved = true
		h.HostHits++
		return true
	}
	key := hostDstKey{host, p.DstVIP}
	h.counts[key]++
	if h.counts[key] == h.OffloadThreshold {
		h.RulesOffload++
		vip := p.DstVIP
		e.Q.After(h.InstallLatency, func() {
			if pip, ok := e.Net.Lookup(vip); ok {
				if h.hostCache[host] == nil {
					h.hostCache[host] = make(map[netaddr.VIP]netaddr.PIP)
				}
				h.hostCache[host][vip] = pip
			}
		})
	}
	// Cold path: SwitchV2P's gateway-driven resolution.
	return h.Scheme.SenderResolve(e, host, p)
}

// HostMisdeliver implements simnet.Scheme: drop the stale host rule (the
// follow-me signal doubles as rule invalidation) and fall back to
// SwitchV2P's gateway re-forwarding.
func (h *Hybrid) HostMisdeliver(e *simnet.Engine, host int32, p *packet.Packet) {
	// The *sender's* rule is stale, but the misdelivery is observed at the
	// old destination; the control plane is responsible for refreshing
	// sender rules. Here we invalidate lazily: any host that still has a
	// rule pointing at this (old) location drops it on its next install
	// cycle; the data path recovers via the gateway immediately.
	h.Scheme.HostMisdeliver(e, host, p)
}

// HostRule exposes a host's installed rule for tests.
func (h *Hybrid) HostRule(host int32, vip netaddr.VIP) (netaddr.PIP, bool) {
	pip, ok := h.hostCache[host][vip]
	return pip, ok
}

var _ simnet.Scheme = (*Hybrid)(nil)
