package baselines

import (
	"testing"

	"switchv2p/internal/netaddr"
	"switchv2p/internal/packet"
	"switchv2p/internal/simnet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
	"switchv2p/internal/vnet"
)

type world struct {
	topo *topology.Topology
	net  *vnet.Net
	e    *simnet.Engine
	vips []netaddr.VIP
}

func newWorld(t testing.TB, mk func(topo *topology.Topology) simnet.Scheme) *world {
	t.Helper()
	topo, err := topology.New(topology.FT8())
	if err != nil {
		t.Fatal(err)
	}
	n := vnet.New(topo)
	vips := n.PlaceRoundRobin(256)
	scheme := mk(topo)
	e := simnet.New(topo, n, scheme, simnet.DefaultConfig())
	return &world{topo: topo, net: n, e: e, vips: vips}
}

func (w *world) hostOf(v netaddr.VIP) int32 {
	h, _ := w.net.HostOf(v)
	return h
}

func (w *world) send(flow uint64, seq int, src, dst netaddr.VIP) {
	p := packet.NewData(flow, seq, 1000, src, dst, 0)
	p.FirstSent = seq == 0
	w.e.HostSend(w.hostOf(src), p)
	w.e.Run(simtime.Never)
}

func TestNoCacheAlwaysGateway(t *testing.T) {
	w := newWorld(t, func(*topology.Topology) simnet.Scheme { return NewNoCache() })
	src, dst := w.vips[0], w.vips[9]
	for i := 0; i < 5; i++ {
		w.send(1, i, src, dst)
	}
	if w.e.C.GatewayPackets != 5 {
		t.Fatalf("gateway packets = %d, want 5 (every packet)", w.e.C.GatewayPackets)
	}
	if w.e.C.Delivered != 5 {
		t.Fatalf("delivered = %d", w.e.C.Delivered)
	}
}

func TestNoCacheFollowMeAfterMigration(t *testing.T) {
	w := newWorld(t, func(*topology.Topology) simnet.Scheme { return NewNoCache() })
	src, dst := w.vips[0], w.vips[9]
	oldHost := w.hostOf(dst)
	newHost := w.hostOf(w.vips[100])
	// A stale-resolved packet (as if buffered pre-migration).
	if err := w.net.Migrate(dst, newHost); err != nil {
		t.Fatal(err)
	}
	p := packet.NewData(1, 0, 1000, src, dst, 0)
	p.DstPIP = w.topo.Hosts[oldHost].PIP
	p.Resolved = true
	var deliveredTo int32 = -1
	w.e.Handler = func(h int32, q *packet.Packet) { deliveredTo = h }
	w.e.HostSend(w.hostOf(src), p)
	w.e.Run(simtime.Never)
	if deliveredTo != newHost {
		t.Fatalf("delivered to %d, want %d (follow-me)", deliveredTo, newHost)
	}
	if w.e.C.Misdeliveries != 1 {
		t.Fatalf("misdeliveries = %d", w.e.C.Misdeliveries)
	}
	// Follow-me goes straight to the new host: no gateway involved.
	if w.e.C.GatewayPackets != 0 {
		t.Fatalf("gateway packets = %d, want 0", w.e.C.GatewayPackets)
	}
}

func TestLocalLearningLearnsOnGatewayPath(t *testing.T) {
	var ll *LocalLearning
	w := newWorld(t, func(topo *topology.Topology) simnet.Scheme {
		ll = NewLocalLearning(topo, 1024)
		return ll
	})
	src, dst := w.vips[0], w.vips[9]
	w.send(1, 0, src, dst)
	if w.e.C.GatewayPackets != 1 {
		t.Fatalf("first packet gateway packets = %d", w.e.C.GatewayPackets)
	}
	// Every switch on the gateway->dst path learned dst; the gateway ToR
	// is on the src->gateway path too, so the second packet hits there.
	w.send(1, 1, src, dst)
	if w.e.C.GatewayPackets != 1 {
		t.Fatalf("second packet reached gateway (total %d)", w.e.C.GatewayPackets)
	}
	if ll.Hits == 0 {
		t.Fatal("no hits recorded")
	}
}

func TestLocalLearningNoSourceLearning(t *testing.T) {
	var ll *LocalLearning
	w := newWorld(t, func(topo *topology.Topology) simnet.Scheme {
		ll = NewLocalLearning(topo, 1024)
		return ll
	})
	src, dst := w.vips[0], w.vips[9]
	w.send(1, 0, src, dst)
	// The strawman never learns the SENDER's mapping anywhere (it only
	// destination-learns), so src must be absent from every cache unless
	// src itself was a resolved destination — it wasn't.
	for _, sw := range w.topo.Switches {
		if _, ok := ll.Cache(sw.Idx).Peek(src); ok {
			t.Fatalf("switch %d learned the sender mapping", sw.Idx)
		}
	}
}

func TestGwCacheOnlyGatewayToRsCache(t *testing.T) {
	var gc *GwCache
	w := newWorld(t, func(topo *topology.Topology) simnet.Scheme {
		gc = NewGwCache(topo, 4096)
		return gc
	})
	src, dst := w.vips[0], w.vips[9]
	w.send(1, 0, src, dst)
	w.send(1, 1, src, dst)
	if w.e.C.GatewayPackets != 1 {
		t.Fatalf("gateway packets = %d, want 1 (second hits gw ToR cache)", w.e.C.GatewayPackets)
	}
	for _, sw := range w.topo.Switches {
		isGwToR := sw.Role == topology.RoleGatewayToR
		if got := gc.Cache(sw.Idx).Len() > 0; got != isGwToR {
			t.Fatalf("switch %d (%v) caching=%v, want %v", sw.Idx, sw.Role, got, isGwToR)
		}
	}
	// Per-switch share: 4096 lines over 4 gateway ToRs.
	for _, sw := range w.topo.Switches {
		if sw.Role == topology.RoleGatewayToR {
			if got := gc.Cache(sw.Idx).Len(); got != 1024 {
				t.Fatalf("gateway ToR cache = %d lines, want 1024", got)
			}
		}
	}
	// No learning packets or invalidations in GwCache.
	if w.e.C.LearningPkts != 0 || w.e.C.InvalidationPkts != 0 {
		t.Fatalf("GwCache generated control packets: %+v", w.e.C)
	}
}

func TestBluebirdSlowPathThenFastPath(t *testing.T) {
	var bb *Bluebird
	w := newWorld(t, func(topo *topology.Topology) simnet.Scheme {
		bb = NewBluebird(topo, 1024, DefaultBluebirdParams())
		return bb
	})
	src, dst := w.vips[0], w.vips[9]
	// First packet at t=0; run only to 1 ms so the 2 ms cache insertion
	// has NOT completed yet.
	w.e.HostSend(w.hostOf(src), packet.NewData(1, 0, 1000, src, dst, 0))
	w.e.Run(simtime.Time(1 * simtime.Millisecond))
	if bb.Misses != 1 || bb.CPForwarded != 1 {
		t.Fatalf("misses=%d cpForwarded=%d, want 1/1", bb.Misses, bb.CPForwarded)
	}
	if w.e.C.GatewayPackets != 0 {
		t.Fatalf("Bluebird used a gateway (%d packets)", w.e.C.GatewayPackets)
	}
	if w.e.C.Delivered != 1 {
		t.Fatalf("delivered = %d", w.e.C.Delivered)
	}
	// The slow path costs at least the CP forwarding latency.
	if lat := w.e.C.AvgPacketLatency(); lat < bb.params.CPForwardLatency {
		t.Fatalf("latency %v below CP forwarding latency", lat)
	}
	// Before the 2 ms insertion completes, another packet still misses.
	w.e.HostSend(w.hostOf(src), packet.NewData(1, 1, 1000, src, dst, 0))
	w.e.Run(simtime.Time(1500 * simtime.Microsecond))
	if bb.Misses != 2 {
		t.Fatalf("second packet within insertion window: misses=%d, want 2", bb.Misses)
	}
	// After the insertion delay, packets hit the route cache.
	w.e.Run(simtime.Never)
	w.send(1, 2, src, dst)
	if bb.Hits != 1 {
		t.Fatalf("post-insertion hits=%d, want 1", bb.Hits)
	}
}

func TestBluebirdCPQueueDrops(t *testing.T) {
	var bb *Bluebird
	w := newWorld(t, func(topo *topology.Topology) simnet.Scheme {
		params := DefaultBluebirdParams()
		params.CPQueueBytes = 2000 // fits one packet only
		bb = NewBluebird(topo, 1024, params)
		return bb
	})
	src, dst := w.vips[0], w.vips[9]
	// Burst of misses into the tiny CP queue.
	for i := 0; i < 10; i++ {
		p := packet.NewData(1, i, 1000, src, dst, 0)
		w.e.HostSend(w.hostOf(src), p)
	}
	w.e.Run(simtime.Never)
	if bb.CPDrops == 0 {
		t.Fatal("expected CP queue drops")
	}
	if w.e.C.Delivered == 0 {
		t.Fatal("expected some deliveries")
	}
}

func TestOnDemandMissPenaltyThenDirect(t *testing.T) {
	var od *OnDemand
	w := newWorld(t, func(topo *topology.Topology) simnet.Scheme {
		od = NewOnDemand(topo, 40*simtime.Microsecond)
		return od
	})
	src, dst := w.vips[0], w.vips[9]
	w.send(1, 0, src, dst)
	// The data packet never detours via a gateway: the miss stalls it at
	// the host for the 40 µs rule-installation penalty instead.
	if w.e.C.GatewayPackets != 0 || od.HostMisses != 1 {
		t.Fatalf("first packet: gw=%d misses=%d", w.e.C.GatewayPackets, od.HostMisses)
	}
	if lat := w.e.C.AvgPacketLatency(); lat < 40*simtime.Microsecond {
		t.Fatalf("first packet latency %v below the miss penalty", lat)
	}
	// The run drained the queue, so the install (at +40µs) completed.
	w.send(1, 1, src, dst)
	if w.e.C.GatewayPackets != 0 || od.HostHits != 1 {
		t.Fatalf("second packet: gw=%d hits=%d", w.e.C.GatewayPackets, od.HostHits)
	}
}

func TestOnDemandStaysStaleAfterMigration(t *testing.T) {
	var od *OnDemand
	w := newWorld(t, func(topo *topology.Topology) simnet.Scheme {
		od = NewOnDemand(topo, 40*simtime.Microsecond)
		return od
	})
	src, dst := w.vips[0], w.vips[9]
	newHost := w.hostOf(w.vips[100])
	w.send(1, 0, src, dst) // warm host cache
	if err := w.net.Migrate(dst, newHost); err != nil {
		t.Fatal(err)
	}
	var deliveredTo int32 = -1
	w.e.Handler = func(h int32, q *packet.Packet) { deliveredTo = h }
	// Host cache is stale: every subsequent packet is misdelivered and
	// follow-me'd, matching the Table 4 OnDemand behavior.
	for i := 1; i <= 3; i++ {
		w.send(1, i, src, dst)
	}
	if deliveredTo != newHost {
		t.Fatalf("delivered to %d, want %d", deliveredTo, newHost)
	}
	if w.e.C.Misdeliveries != 3 {
		t.Fatalf("misdeliveries = %d, want 3 (stale host cache)", w.e.C.Misdeliveries)
	}
}

func TestDirectNeverGateway(t *testing.T) {
	w := newWorld(t, func(*topology.Topology) simnet.Scheme { return NewDirect() })
	src, dst := w.vips[0], w.vips[9]
	for i := 0; i < 5; i++ {
		w.send(1, i, src, dst)
	}
	if w.e.C.GatewayPackets != 0 {
		t.Fatalf("gateway packets = %d, want 0", w.e.C.GatewayPackets)
	}
	if w.e.C.Delivered != 5 {
		t.Fatalf("delivered = %d", w.e.C.Delivered)
	}
	// Direct latency: no gateway detour, just the path.
	if lat := w.e.C.AvgPacketLatency(); lat > 15*simtime.Microsecond {
		t.Fatalf("Direct latency = %v, want < 15µs", lat)
	}
}

func TestLatencyOrdering(t *testing.T) {
	// Sanity: for a fresh flow, Direct < SwitchV2P-ish/NoCache; and
	// NoCache pays the gateway detour.
	run := func(mk func(topo *topology.Topology) simnet.Scheme) simtime.Duration {
		w := newWorld(t, mk)
		w.send(1, 0, w.vips[0], w.vips[9])
		return w.e.C.AvgPacketLatency()
	}
	direct := run(func(*topology.Topology) simnet.Scheme { return NewDirect() })
	nocache := run(func(*topology.Topology) simnet.Scheme { return NewNoCache() })
	if direct >= nocache {
		t.Fatalf("Direct (%v) not faster than NoCache (%v)", direct, nocache)
	}
	if nocache < 40*simtime.Microsecond {
		t.Fatalf("NoCache latency %v below gateway processing time", nocache)
	}
}
