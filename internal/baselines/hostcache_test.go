package baselines

import (
	"testing"

	"switchv2p/internal/core"
	"switchv2p/internal/packet"
	"switchv2p/internal/simnet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
)

func TestHostTableLRU(t *testing.T) {
	tb := newHostTable(2)
	tb.insert(1, 101, 0)
	tb.insert(2, 102, 0)
	if _, _, ok := tb.lookup(1); !ok { // promotes 1 to MRU
		t.Fatal("entry 1 missing")
	}
	if evicted := tb.insert(3, 103, 0); !evicted {
		t.Fatal("full insert must evict")
	}
	if _, _, ok := tb.lookup(2); ok {
		t.Fatal("LRU entry 2 should have been evicted")
	}
	if pip, _, ok := tb.lookup(1); !ok || pip != 101 {
		t.Fatal("MRU entry 1 lost")
	}
	if pip, _, ok := tb.lookup(3); !ok || pip != 103 {
		t.Fatal("fresh entry 3 lost")
	}
	// Refresh in place never evicts.
	if evicted := tb.insert(1, 201, 5); evicted {
		t.Fatal("refresh evicted")
	}
	if pip, at, _ := tb.lookup(1); pip != 201 || at != 5 {
		t.Fatalf("refresh not applied: pip=%d at=%d", pip, at)
	}
	if tb.len() != 2 {
		t.Fatalf("len = %d", tb.len())
	}
}

func TestHostTableInvalidateAndFree(t *testing.T) {
	tb := newHostTable(2)
	tb.insert(1, 101, 0)
	tb.insert(2, 102, 0)
	// Targeted invalidation only fires on a matching stale PIP.
	if tb.invalidate(1, 999) {
		t.Fatal("invalidated a fresh entry")
	}
	if !tb.invalidate(1, 101) {
		t.Fatal("stale entry survived invalidation")
	}
	if tb.len() != 1 {
		t.Fatalf("len = %d", tb.len())
	}
	// The freed slot is reused without evicting.
	if evicted := tb.insert(3, 103, 0); evicted {
		t.Fatal("insert into freed slot evicted")
	}
	tb.flush()
	if tb.len() != 0 {
		t.Fatal("flush left entries")
	}
	if evicted := tb.insert(4, 104, 0); evicted {
		t.Fatal("insert into flushed table evicted")
	}
}

func TestHostTableZeroCapacity(t *testing.T) {
	tb := newHostTable(0)
	if evicted := tb.insert(1, 101, 0); evicted {
		t.Fatal("zero-capacity insert evicted")
	}
	if _, _, ok := tb.lookup(1); ok {
		t.Fatal("zero-capacity table cached an entry")
	}
}

func newHostCacheWorld(t testing.TB, opt HostTierOptions) (*world, *HostCache) {
	t.Helper()
	var hc *HostCache
	w := newWorld(t, func(topo *topology.Topology) simnet.Scheme {
		hc = NewHostCache(topo, opt)
		return hc
	})
	return w, hc
}

// TestHostCacheMissInstallHit is the scheme's core behavior: first
// packet detours via a gateway while the mapping installs; after the
// install latency the sender hits and sends direct.
func TestHostCacheMissInstallHit(t *testing.T) {
	w, hc := newHostCacheWorld(t, DefaultHostTierOptions(16))
	src, dst := w.vips[0], w.vips[9]
	w.send(1, 0, src, dst)
	if w.e.C.GatewayPackets != 1 {
		t.Fatalf("first packet gateway detours = %d, want 1", w.e.C.GatewayPackets)
	}
	if pip, ok := hc.HostEntry(w.hostOf(src), dst); !ok {
		t.Fatal("mapping not installed after drain")
	} else if want := w.topo.Hosts[w.hostOf(dst)].PIP; pip != want {
		t.Fatalf("installed pip = %d, want %d", pip, want)
	}
	w.send(1, 1, src, dst)
	if w.e.C.GatewayPackets != 1 {
		t.Fatalf("second packet still detoured: gateway packets = %d", w.e.C.GatewayPackets)
	}
	hs := hc.HostStats()
	if hs.Hits == 0 || hs.Misses == 0 || hs.Installs == 0 {
		t.Fatalf("stats: %+v", hs)
	}
}

// TestHostCacheReceiveSideLearning pins ONCache-style learning from
// incoming traffic: delivering a packet teaches the *destination* host
// the sender's translation, so the reverse direction hits immediately.
func TestHostCacheReceiveSideLearning(t *testing.T) {
	w, hc := newHostCacheWorld(t, DefaultHostTierOptions(16))
	src, dst := w.vips[0], w.vips[9]
	w.send(1, 0, src, dst)
	if pip, ok := hc.HostEntry(w.hostOf(dst), src); !ok {
		t.Fatal("receiver did not learn the sender's translation")
	} else if want := w.topo.Hosts[w.hostOf(src)].PIP; pip != want {
		t.Fatalf("learned pip = %d, want %d", pip, want)
	}
	if hc.HostStats().Learned == 0 {
		t.Fatal("Learned counter not incremented")
	}
	// Reverse packet: no new gateway detour.
	before := w.e.C.GatewayPackets
	w.send(2, 0, dst, src)
	if w.e.C.GatewayPackets != before {
		t.Fatalf("reverse direction detoured: %d -> %d", before, w.e.C.GatewayPackets)
	}
}

// TestHostCacheTTLExpiry: an expired entry is a miss and is dropped.
func TestHostCacheTTLExpiry(t *testing.T) {
	opt := DefaultHostTierOptions(16)
	opt.TTL = 50 * simtime.Microsecond
	w, hc := newHostCacheWorld(t, opt)
	src, dst := w.vips[0], w.vips[9]
	w.send(1, 0, src, dst) // install
	host := w.hostOf(src)
	if _, ok := hc.HostEntry(host, dst); !ok {
		t.Fatal("not installed")
	}
	// Advance simulated time past the TTL with an idle event.
	w.e.Q.After(simtime.Duration(simtime.Millisecond), func() {})
	w.e.Run(simtime.Never)
	before := w.e.C.GatewayPackets
	w.send(1, 1, src, dst)
	if w.e.C.GatewayPackets != before+1 {
		t.Fatal("expired entry did not miss")
	}
	if hc.HostStats().Expired == 0 {
		t.Fatal("Expired counter not incremented")
	}
}

// TestHostCacheInvalidationOnMigration: the old host notifies the sender
// (host-layer invalidation) and follow-me recovers the packet.
func TestHostCacheInvalidationOnMigration(t *testing.T) {
	w, hc := newHostCacheWorld(t, DefaultHostTierOptions(16))
	src, dst := w.vips[0], w.vips[9]
	w.send(1, 0, src, dst) // warm the sender's entry
	srcHost := w.hostOf(src)
	oldHost := w.hostOf(dst)
	newHost := w.hostOf(w.vips[100])
	if err := w.net.Migrate(dst, newHost); err != nil {
		t.Fatal(err)
	}
	w.send(1, 1, src, dst) // stale hit → misdelivery → invalidate + follow-me
	if w.e.C.Misdeliveries == 0 {
		t.Fatal("no misdelivery on stale entry")
	}
	hs := hc.HostStats()
	if hs.InvalidationsSent == 0 || hs.Invalidations == 0 {
		t.Fatalf("host-layer invalidation did not fire: %+v", hs)
	}
	if pip, ok := hc.HostEntry(srcHost, dst); ok && pip == w.topo.Hosts[oldHost].PIP {
		t.Fatal("stale entry survived invalidation")
	}
	if w.e.C.Delivered != 2 {
		t.Fatalf("delivered = %d, want 2", w.e.C.Delivered)
	}
}

// TestHostCacheFlushIsNoOp: switch failures destroy no host state.
func TestHostCacheFlushIsNoOp(t *testing.T) {
	w, hc := newHostCacheWorld(t, DefaultHostTierOptions(16))
	src, dst := w.vips[0], w.vips[9]
	w.send(1, 0, src, dst)
	host := w.hostOf(src)
	n := hc.HostTableLen(host)
	if n == 0 {
		t.Fatal("nothing installed")
	}
	for sw := range w.topo.Switches {
		hc.FlushCache(int32(sw))
	}
	if hc.HostTableLen(host) != n {
		t.Fatal("switch flush destroyed host-resident state")
	}
}

// TestHostToRLayering: the hybrid resolves at the host tier first; host
// misses flow through the embedded SwitchV2P machinery, and a switch
// failure flushes only the switch tier.
func TestHostToRLayering(t *testing.T) {
	var ht *HostToR
	w := newWorld(t, func(topo *topology.Topology) simnet.Scheme {
		opts := core.DefaultOptions(0)
		opts.SizeFor = core.AllocToROnly(topo, 512)
		ht = NewHostToR(topo, opts, DefaultHostTierOptions(16))
		return ht
	})
	src, dst := w.vips[0], w.vips[9]
	w.send(1, 0, src, dst)
	if w.e.C.GatewayPackets != 1 {
		t.Fatalf("first packet gateway detours = %d, want 1", w.e.C.GatewayPackets)
	}
	w.send(1, 1, src, dst)
	if w.e.C.GatewayPackets != 1 {
		t.Fatalf("host tier did not absorb the second packet: %d", w.e.C.GatewayPackets)
	}
	if ht.HostStats().Hits == 0 {
		t.Fatal("no host-tier hits")
	}
	// Flushing the sender's ToR clears switch state but not host tables.
	host := w.hostOf(src)
	n := ht.HostTableLen(host)
	ht.FlushCache(w.topo.Hosts[host].ToR)
	if ht.HostTableLen(host) != n {
		t.Fatal("switch flush reached the host tier")
	}
}

// TestHostSchemesVIPDepartureDuringInstall: an install whose VM vanished
// mid-flight must not install a dangling mapping.
func TestHostCacheDepartureDuringInstall(t *testing.T) {
	w, hc := newHostCacheWorld(t, DefaultHostTierOptions(16))
	src, dst := w.vips[0], w.vips[9]
	p := packet.NewData(1, 0, 1000, src, dst, 0)
	p.FirstSent = true
	w.e.HostSend(w.hostOf(src), p)
	// Remove the VM before the install latency elapses.
	if err := w.net.RemoveVM(dst); err != nil {
		t.Fatal(err)
	}
	w.e.Run(simtime.Never)
	if _, ok := hc.HostEntry(w.hostOf(src), dst); ok {
		t.Fatal("dangling mapping installed for a departed VM")
	}
}
