package baselines

import (
	"switchv2p/internal/netaddr"
	"switchv2p/internal/packet"
	"switchv2p/internal/simnet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
)

// OnDemand is the host-driven design with a first lookup at the gateway:
// VL2's on-demand resolution / Andromeda's Hoverboard with an immediate
// offload policy / Achelous ALM. The first packet to an unknown
// destination detours via a gateway while the mapping is installed into
// the sender's (unbounded) host cache after the miss penalty; subsequent
// packets go direct. The host caches are never proactively updated, so a
// migration leaves them stale until well after the event (§5.2 assumes
// the controller cannot refresh hosts within the experiment).
type OnDemand struct {
	// MissPenalty is the rule-installation latency charged on a host
	// cache miss (40 µs in §5).
	MissPenalty simtime.Duration

	// hostCache entries are installed by a closure that fires after the
	// miss penalty elapses, outside the originating event's slot.
	hostCache []map[netaddr.VIP]netaddr.PIP //v2plint:shardlocal deferred installs are per-event global state today; per-domain sharding is ROADMAP item 3

	// Stats.
	HostHits, HostMisses int64 //v2plint:shardlocal aggregate counter, post-run read only
}

// NewOnDemand builds the baseline.
func NewOnDemand(topo *topology.Topology, missPenalty simtime.Duration) *OnDemand {
	return &OnDemand{
		MissPenalty: missPenalty,
		hostCache:   make([]map[netaddr.VIP]netaddr.PIP, len(topo.Hosts)),
	}
}

// Name implements simnet.Scheme.
func (*OnDemand) Name() string { return "OnDemand" }

// SenderResolve implements simnet.Scheme. On a miss the packet is held
// at the host for the rule-installation penalty while the mapping is
// fetched from the control plane, then sent directly: the data packet
// never detours through a gateway (matching Table 4's 0% gateway share
// for OnDemand).
func (o *OnDemand) SenderResolve(e *simnet.Engine, host int32, p *packet.Packet) bool {
	if p.Resolved {
		return true
	}
	if pip, ok := o.hostCache[host][p.DstVIP]; ok {
		p.DstPIP = pip
		p.Resolved = true
		o.HostHits++
		return true
	}
	o.HostMisses++
	vip := p.DstVIP
	e.Q.After(o.MissPenalty, func() {
		pip, ok := e.Net.Lookup(vip)
		if !ok {
			return // unknown VIP: the packet is dropped at the host
		}
		if o.hostCache[host] == nil {
			o.hostCache[host] = make(map[netaddr.VIP]netaddr.PIP)
		}
		o.hostCache[host][vip] = pip
		p.DstPIP = pip
		p.Resolved = true
		e.Resend(host, p)
	})
	return false
}

// SwitchArrive implements simnet.Scheme: switches are passive.
func (*OnDemand) SwitchArrive(e *simnet.Engine, sw int32, from topology.NodeRef, p *packet.Packet) bool {
	return true
}

// HostMisdeliver implements simnet.Scheme.
func (*OnDemand) HostMisdeliver(e *simnet.Engine, host int32, p *packet.Packet) {
	followMe(e, host, p)
}

// FlushCache implements simnet.CacheFlusher. OnDemand's caches live in
// the hosts, keyed per host — a switch failure destroys no OnDemand
// state, so there is nothing to flush.
func (*OnDemand) FlushCache(int32) {}

// Direct is the pure host-driven baseline: hosts are preprogrammed with
// every mapping (§5's "preprogrammed model"), estimating the best
// possible network performance while ignoring update overheads.
type Direct struct{}

// NewDirect returns the Direct baseline.
func NewDirect() *Direct { return &Direct{} }

// Name implements simnet.Scheme.
func (*Direct) Name() string { return "Direct" }

// SenderResolve implements simnet.Scheme: resolve from the authoritative
// database — the preprogrammed host state, assumed always current.
func (*Direct) SenderResolve(e *simnet.Engine, host int32, p *packet.Packet) bool {
	if p.Resolved {
		return true
	}
	if pip, ok := e.Net.Lookup(p.DstVIP); ok {
		p.DstPIP = pip
		p.Resolved = true
		return true
	}
	// Unknown VIP: fall back to a gateway, which will count and drop it.
	p.DstPIP = e.GatewayFor(p.SrcPIP, p.FlowID)
	return true
}

// SwitchArrive implements simnet.Scheme.
func (*Direct) SwitchArrive(e *simnet.Engine, sw int32, from topology.NodeRef, p *packet.Packet) bool {
	return true
}

// HostMisdeliver implements simnet.Scheme.
func (*Direct) HostMisdeliver(e *simnet.Engine, host int32, p *packet.Packet) {
	followMe(e, host, p)
}

// FlushCache implements simnet.CacheFlusher. Direct holds no
// switch-resident translation state (hosts are preprogrammed), so a
// switch failure flushes nothing.
func (*Direct) FlushCache(int32) {}
