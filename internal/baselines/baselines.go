// Package baselines implements the V2P translation mechanisms the paper
// compares SwitchV2P against (§5 "Evaluation"):
//
//   - NoCache: a pure gateway design (Andromeda's Hoverboard model
//     without host offloading).
//   - LocalLearning: the §3.1 strawman — every switch destination-learns
//     and admits everything.
//   - GwCache: Sailfish-style caching at the gateway ToRs only.
//   - Bluebird: ToR route caches with a bandwidth-limited control-plane
//     slow path.
//   - OnDemand: host-driven with a first lookup at the gateway (VL2 /
//     Hoverboard with immediate offload / Achelous ALM).
//   - Direct: pure host-driven, hosts preprogrammed with all mappings.
//   - Controller: centralized ILP-optimized cache placement (Appendix A).
package baselines

import (
	"switchv2p/internal/packet"
	"switchv2p/internal/simnet"
)

// followMe re-forwards a misdelivered packet using the old host's
// follow-me rule (Andromeda §3.3); if no rule exists the packet falls
// back to a gateway.
func followMe(e *simnet.Engine, host int32, p *packet.Packet) {
	if pip, ok := e.Net.FollowMe(host, p.DstVIP); ok {
		p.DstPIP = pip
		p.Resolved = true
		e.Resend(host, p)
		return
	}
	p.Resolved = false
	p.DstPIP = e.GatewayFor(p.SrcPIP, p.FlowID)
	e.Resend(host, p)
}
