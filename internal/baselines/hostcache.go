package baselines

import (
	"switchv2p/internal/core"
	"switchv2p/internal/netaddr"
	"switchv2p/internal/packet"
	"switchv2p/internal/simnet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
)

// This file implements the host-cache scheme family — the ONCache-style
// competing design point: overlay translations cached at the *host* fast
// path rather than in switches.
//
//   - HostCache: a bounded per-host translation cache with miss-to-
//     gateway. Unlike OnDemand (unbounded cache, packet stalled at the
//     host during rule installation) the first packet detours via a
//     translation gateway while the mapping is installed asynchronously,
//     and the cache has finite capacity with LRU replacement and an
//     optional TTL — the knobs the container-crossover experiment
//     sweeps.
//   - HostToR: the hybrid tier — the same host cache layered in front of
//     a ToR-only SwitchV2P deployment, with the paper's invalidation
//     protocol extended to the host layer (see PROTOCOL.md "Host-layer
//     invalidation").

// hostSlot is one entry of a hostTable; slots form an intrusive
// doubly-linked LRU list by index.
type hostSlot struct {
	vip        netaddr.VIP
	pip        netaddr.PIP
	at         simtime.Time // install time, for TTL expiry
	prev, next int32
}

// hostTable is a bounded per-host VIP→PIP translation table with LRU
// replacement. All storage is allocated at construction; lookups and
// LRU maintenance are allocation-free.
type hostTable struct {
	capacity   int
	index      map[netaddr.VIP]int32
	slots      []hostSlot
	head, tail int32 // MRU head, LRU tail; -1 when empty
	used       int
	free       []int32 // slots vacated by invalidation/expiry
}

func newHostTable(capacity int) hostTable {
	t := hostTable{capacity: capacity, head: -1, tail: -1}
	if capacity > 0 {
		t.index = make(map[netaddr.VIP]int32, capacity)
		t.slots = make([]hostSlot, capacity)
		t.free = make([]int32, 0, capacity)
	}
	return t
}

// lookup returns the cached translation and its install time, promoting
// the entry to MRU.
//
//v2plint:hotpath
func (t *hostTable) lookup(vip netaddr.VIP) (netaddr.PIP, simtime.Time, bool) {
	i, ok := t.index[vip]
	if !ok {
		return 0, 0, false
	}
	t.moveToFront(i)
	s := &t.slots[i]
	return s.pip, s.at, true
}

//v2plint:hotpath
func (t *hostTable) moveToFront(i int32) {
	if t.head == i {
		return
	}
	t.unlink(i)
	t.pushFront(i)
}

//v2plint:hotpath
func (t *hostTable) unlink(i int32) {
	s := &t.slots[i]
	if s.prev >= 0 {
		t.slots[s.prev].next = s.next
	} else {
		t.head = s.next
	}
	if s.next >= 0 {
		t.slots[s.next].prev = s.prev
	} else {
		t.tail = s.prev
	}
	s.prev, s.next = -1, -1
}

//v2plint:hotpath
func (t *hostTable) pushFront(i int32) {
	s := &t.slots[i]
	s.prev, s.next = -1, t.head
	if t.head >= 0 {
		t.slots[t.head].prev = i
	}
	t.head = i
	if t.tail < 0 {
		t.tail = i
	}
}

// insert installs (or refreshes) a translation, evicting the LRU entry
// when the table is full. Reports whether a valid entry was displaced.
func (t *hostTable) insert(vip netaddr.VIP, pip netaddr.PIP, now simtime.Time) (evicted bool) {
	if t.capacity == 0 {
		return false
	}
	if i, ok := t.index[vip]; ok {
		s := &t.slots[i]
		s.pip, s.at = pip, now
		t.moveToFront(i)
		return false
	}
	var i int32
	switch {
	case len(t.free) > 0:
		i = t.free[len(t.free)-1]
		t.free = t.free[:len(t.free)-1]
	case t.used < t.capacity:
		i = int32(t.used)
		t.used++
	default:
		i = t.tail
		t.unlink(i)
		delete(t.index, t.slots[i].vip)
		evicted = true
	}
	t.slots[i] = hostSlot{vip: vip, pip: pip, at: now, prev: -1, next: -1}
	t.pushFront(i)
	t.index[vip] = i
	return evicted
}

// remove drops the entry outright (TTL expiry).
func (t *hostTable) remove(vip netaddr.VIP) {
	i, ok := t.index[vip]
	if !ok {
		return
	}
	t.unlink(i)
	delete(t.index, vip)
	t.free = append(t.free, i)
}

// invalidate drops the entry only if it still points at the stale
// location, mirroring the switch-layer protocol's targeted
// (VIP, stale PIP) invalidation.
func (t *hostTable) invalidate(vip netaddr.VIP, stale netaddr.PIP) bool {
	i, ok := t.index[vip]
	if !ok || t.slots[i].pip != stale {
		return false
	}
	t.unlink(i)
	delete(t.index, vip)
	t.free = append(t.free, i)
	return true
}

// flush empties the table.
func (t *hostTable) flush() {
	clear(t.index)
	t.head, t.tail = -1, -1
	t.used = 0
	t.free = t.free[:0]
}

func (t *hostTable) len() int { return len(t.index) }

// HostTierOptions parameterizes the host-cache tier shared by HostCache
// and HostToR.
type HostTierOptions struct {
	// PerHost is each host table's capacity in entries.
	PerHost int
	// TTL expires entries this long after installation (0 = never): the
	// pluggable coarse defense against migration staleness when no
	// invalidation reaches the sender.
	TTL simtime.Duration
	// InstallLatency is the delay between a host-cache miss and the
	// mapping landing in the sender's table (the vswitch/eBPF map update
	// latency; the first packet is already on its slow-path detour).
	InstallLatency simtime.Duration
}

// DefaultHostTierOptions mirrors OnDemand's §5 rule-installation
// latency; entries do not expire unless a TTL is configured.
func DefaultHostTierOptions(perHost int) HostTierOptions {
	return HostTierOptions{PerHost: perHost, InstallLatency: 40 * simtime.Microsecond}
}

// HostStats counts host-tier cache activity.
type HostStats struct {
	Lookups, Hits, Misses int64
	Installs, Evictions   int64
	Learned               int64 // receive-side installs at the destination ToR
	Expired               int64 // TTL expiries observed at lookup
	Invalidations         int64 // stale entries dropped by host-layer invalidation
	InvalidationsSent     int64 // misdeliveries that triggered a sender notification
}

// hostTier is the per-host translation-cache layer shared by HostCache
// and HostToR: bounded LRU tables, asynchronous slow-path installation,
// TTL expiry, and host-layer invalidation driven by misdeliveries.
type hostTier struct {
	opt    HostTierOptions
	tables []hostTable
	// pending dedupes in-flight slow-path installs. It is indexed by
	// host but written from install-completion closures that run after
	// the slow-path delay, outside the originating event's slot.
	pending []map[netaddr.VIP]struct{} //v2plint:shardlocal pending-install set is per-event global state today; per-domain sharding is ROADMAP item 3

	HS HostStats //v2plint:shardlocal aggregate stats, reduced post-run; sharding them rides along with ROADMAP item 3
}

func newHostTier(topo *topology.Topology, opt HostTierOptions) hostTier {
	tables := make([]hostTable, len(topo.Hosts))
	for i := range tables {
		tables[i] = newHostTable(opt.PerHost)
	}
	return hostTier{
		opt:     opt,
		tables:  tables,
		pending: make([]map[netaddr.VIP]struct{}, len(topo.Hosts)),
	}
}

// resolve consults the sender's host table; on a hit the packet is
// resolved in place. TTL-expired entries are dropped and count as
// misses.
//
//v2plint:hotpath
func (t *hostTier) resolve(e *simnet.Engine, host int32, p *packet.Packet) bool {
	t.HS.Lookups++
	pip, at, ok := t.tables[host].lookup(p.DstVIP)
	if ok && t.opt.TTL > 0 && e.Now().Sub(at) > t.opt.TTL {
		t.tables[host].remove(p.DstVIP)
		t.HS.Expired++
		ok = false
	}
	if !ok {
		t.HS.Misses++
		return false
	}
	p.DstPIP = pip
	p.Resolved = true
	t.HS.Hits++
	return true
}

// scheduleInstall asks the control plane to install the mapping into the
// sender's table after the install latency. At most one installation is
// in flight per (host, VIP); the data packet is already on its slow
// path, so this is purely a cache-fill side effect (cold path).
func (t *hostTier) scheduleInstall(e *simnet.Engine, host int32, vip netaddr.VIP) {
	if t.opt.PerHost == 0 {
		return
	}
	if t.pending[host] == nil {
		t.pending[host] = make(map[netaddr.VIP]struct{})
	}
	if _, inFlight := t.pending[host][vip]; inFlight {
		return
	}
	t.pending[host][vip] = struct{}{}
	e.Q.After(t.opt.InstallLatency, func() {
		delete(t.pending[host], vip)
		pip, ok := e.Net.Lookup(vip)
		if !ok {
			return // the VM departed while the install was in flight
		}
		t.HS.Installs++
		//v2plint:allow shardstate install completes after the slow-path delay, outside the originating slot; LRU tables are per-event global state until ROADMAP item 3 shards them
		if t.tables[host].insert(vip, pip, e.Now()) {
			t.HS.Evictions++
		}
	})
}

// learnAtToR is receive-side learning: when a resolved tenant packet
// crosses its last-hop ToR, the destination host snoops the sender's
// translation from the outer header and installs it — ONCache learns
// from incoming traffic, so the reverse direction (responses, ACKs) hits
// without ever paying a gateway detour. Runs on every switch arrival.
//
//v2plint:hotpath
func (t *hostTier) learnAtToR(e *simnet.Engine, sw int32, p *packet.Packet) {
	if t.opt.PerHost == 0 || !p.Resolved {
		return
	}
	switch p.Kind {
	case packet.Data, packet.Ack:
	default:
		return
	}
	dst, ok := e.Topo.HostByPIP(p.DstPIP)
	if !ok || e.Topo.Hosts[dst].ToR != sw || e.Topo.Hosts[dst].Gateway {
		return
	}
	t.HS.Learned++
	//v2plint:allow shardstate receive-side learning writes the destination host's table from the ToR's event; cross-slot until ROADMAP item 3 shards the tables
	if t.tables[dst].insert(p.SrcVIP, p.SrcPIP, e.Now()) {
		t.HS.Evictions++
	}
}

// invalidateSender is the host-layer invalidation protocol: the old host
// observes a misdelivered packet, reads the sender from the outer
// header, and notifies it to drop the (VIP → old host) entry — the same
// targeted (VIP, stale PIP) pairing the switch-layer protocol uses, so
// a concurrent re-install of the fresh mapping is never clobbered.
func (t *hostTier) invalidateSender(e *simnet.Engine, staleHost int32, p *packet.Packet) {
	sender, ok := e.Topo.HostByPIP(p.SrcPIP)
	if !ok {
		return
	}
	t.HS.InvalidationsSent++
	//v2plint:allow shardstate invalidation notifies the sender's table from the stale host's event; cross-slot until ROADMAP item 3 shards the tables
	if t.tables[sender].invalidate(p.DstVIP, e.Topo.Hosts[staleHost].PIP) {
		t.HS.Invalidations++
	}
}

// flushHost empties one host's table (test hook; switch failures do not
// destroy host state).
func (t *hostTier) flushHost(host int32) { t.tables[host].flush() }

// HostTableLen exposes a host table's occupancy for tests and probes.
func (t *hostTier) HostTableLen(host int32) int { return t.tables[host].len() }

// HostStats exposes the tier's counters.
func (t *hostTier) HostStats() *HostStats { return &t.HS }

// HostEntry exposes a host's cached translation for tests.
func (t *hostTier) HostEntry(host int32, vip netaddr.VIP) (netaddr.PIP, bool) {
	i, ok := t.tables[host].index[vip]
	if !ok {
		return 0, false
	}
	return t.tables[host].slots[i].pip, true
}

// HostCache is the ONCache-style host-resident design: every sender
// keeps a bounded LRU translation cache; misses detour the packet via a
// translation gateway (miss-to-gateway) while the mapping is installed
// asynchronously. Switches are passive. Migration staleness is repaired
// by host-layer invalidation (the old host notifies the sender) plus the
// optional TTL.
type HostCache struct {
	hostTier
}

// NewHostCache builds the scheme.
func NewHostCache(topo *topology.Topology, opt HostTierOptions) *HostCache {
	return &HostCache{hostTier: newHostTier(topo, opt)}
}

// Name implements simnet.Scheme.
func (*HostCache) Name() string { return "HostCache" }

// SenderResolve implements simnet.Scheme: host-cache hit → direct;
// miss → gateway detour plus an asynchronous cache fill.
func (h *HostCache) SenderResolve(e *simnet.Engine, host int32, p *packet.Packet) bool {
	if p.Resolved {
		return true
	}
	if h.resolve(e, host, p) {
		return true
	}
	h.scheduleInstall(e, host, p.DstVIP)
	p.DstPIP = e.GatewayFor(p.SrcPIP, p.FlowID)
	return true
}

// SwitchArrive implements simnet.Scheme: switches hold no state, but the
// destination host's receive-side learning fires at its last-hop ToR.
func (h *HostCache) SwitchArrive(e *simnet.Engine, sw int32, from topology.NodeRef, p *packet.Packet) bool {
	h.learnAtToR(e, sw, p)
	return true
}

// HostMisdeliver implements simnet.Scheme: invalidate the sender's stale
// entry (host-layer invalidation), then recover the packet via the
// follow-me rule or a gateway like the other host-driven designs.
func (h *HostCache) HostMisdeliver(e *simnet.Engine, host int32, p *packet.Packet) {
	h.invalidateSender(e, host, p)
	followMe(e, host, p)
}

// FlushCache implements simnet.CacheFlusher. HostCache keeps all
// translation state in the hosts: a switch failure destroys no scheme
// state, so there is nothing to flush (host tables survive exactly as
// ONCache's eBPF maps survive a ToR reboot).
func (*HostCache) FlushCache(int32) {}

// HostToR is the hybrid tier: the host cache in front of a ToR-only
// SwitchV2P deployment. Host hits bypass the network-side machinery
// entirely; misses take SwitchV2P's gateway-driven slow path, where the
// ToR caches can still resolve the packet in-flight, and the mapping is
// installed into the sender's host table asynchronously. Misdeliveries
// run both invalidation layers: the host layer notifies the sender, the
// switch layer tags the packet so the ToR protocol invalidates stale
// switch entries (PROTOCOL.md "Host-layer invalidation").
type HostToR struct {
	*core.Scheme
	hostTier
}

// NewHostToR builds the hybrid: SwitchV2P options for the ToR tier (size
// the caches with core.AllocToROnly for a ToR-only deployment) plus the
// host-tier options.
func NewHostToR(topo *topology.Topology, opts core.Options, hostOpt HostTierOptions) *HostToR {
	return &HostToR{
		Scheme:   core.New(topo, opts),
		hostTier: newHostTier(topo, hostOpt),
	}
}

// Name implements simnet.Scheme.
func (*HostToR) Name() string { return "HostToR" }

// SenderResolve implements simnet.Scheme: host tier first, then
// SwitchV2P's gateway-driven resolution.
func (h *HostToR) SenderResolve(e *simnet.Engine, host int32, p *packet.Packet) bool {
	if p.Resolved {
		return true
	}
	if h.resolve(e, host, p) {
		return true
	}
	h.scheduleInstall(e, host, p.DstVIP)
	return h.Scheme.SenderResolve(e, host, p)
}

// SwitchArrive implements simnet.Scheme: receive-side host learning at
// the destination ToR, then SwitchV2P's switch-layer protocol.
func (h *HostToR) SwitchArrive(e *simnet.Engine, sw int32, from topology.NodeRef, p *packet.Packet) bool {
	h.learnAtToR(e, sw, p)
	return h.Scheme.SwitchArrive(e, sw, from, p)
}

// HostMisdeliver implements simnet.Scheme: both invalidation layers,
// then SwitchV2P's gateway re-forwarding with the misdelivery tag.
func (h *HostToR) HostMisdeliver(e *simnet.Engine, host int32, p *packet.Packet) {
	h.invalidateSender(e, host, p)
	h.Scheme.HostMisdeliver(e, host, p)
}

// FlushCache is promoted from the embedded *core.Scheme: a switch
// failure flushes that switch's ToR cache and protocol state; the host
// tables are host-resident and deliberately survive.

var (
	_ simnet.Scheme       = (*HostCache)(nil)
	_ simnet.CacheFlusher = (*HostCache)(nil)
	_ simnet.Scheme       = (*HostToR)(nil)
	_ simnet.CacheFlusher = (*HostToR)(nil)
)
