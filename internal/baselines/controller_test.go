package baselines

import (
	"testing"

	"switchv2p/internal/packet"
	"switchv2p/internal/simnet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
)

func TestControllerInstallsAndHits(t *testing.T) {
	var ctl *Controller
	w := newWorld(t, func(topo *topology.Topology) simnet.Scheme {
		ctl = NewController(topo, 64, 150*simtime.Microsecond)
		return ctl
	})
	src, dst := w.vips[0], w.vips[9]
	// Repeated traffic before the first controller invocation: all via
	// gateway.
	for i := 0; i < 5; i++ {
		p := packet.NewData(1, i, 500, src, dst, 0)
		w.e.HostSend(w.hostOf(src), p)
	}
	w.e.Run(simtime.Time(100 * simtime.Microsecond))
	if w.e.C.GatewayPackets != 5 {
		t.Fatalf("pre-invocation gateway packets = %d, want 5", w.e.C.GatewayPackets)
	}
	// Let the controller run at 150 µs, then send again.
	w.e.Run(simtime.Time(400 * simtime.Microsecond))
	if ctl.Invocations == 0 {
		t.Fatal("controller never invoked")
	}
	srcToR := w.topo.Hosts[w.hostOf(src)].ToR
	if ctl.Installed(srcToR) == 0 {
		t.Fatalf("controller installed nothing at the source ToR")
	}
	p := packet.NewData(1, 6, 500, src, dst, 0)
	w.e.HostSend(w.hostOf(src), p)
	w.e.Run(simtime.Time(600 * simtime.Microsecond))
	if w.e.C.GatewayPackets != 5 {
		t.Fatalf("post-installation packet used the gateway (total %d)", w.e.C.GatewayPackets)
	}
	if ctl.Hits == 0 {
		t.Fatal("no controller-cache hits")
	}
}

func TestControllerExactPathUsedForSmallMatrices(t *testing.T) {
	var ctl *Controller
	w := newWorld(t, func(topo *topology.Topology) simnet.Scheme {
		ctl = NewController(topo, 64, 150*simtime.Microsecond)
		return ctl
	})
	// One pair only -> ToR-restricted exact ILP.
	p := packet.NewData(1, 0, 500, w.vips[0], w.vips[9], 0)
	w.e.HostSend(w.hostOf(w.vips[0]), p)
	w.e.Run(simtime.Time(200 * simtime.Microsecond))
	if ctl.ExactSolves == 0 {
		t.Fatalf("exact solver not used: exact=%d greedy=%d", ctl.ExactSolves, ctl.GreedySolves)
	}
}

func TestControllerGreedyPathForLargeMatrices(t *testing.T) {
	var ctl *Controller
	w := newWorld(t, func(topo *topology.Topology) simnet.Scheme {
		ctl = NewController(topo, 16, 150*simtime.Microsecond)
		ctl.ExactVarLimit = 4
		return ctl
	})
	// Many distinct pairs exceed the exact limit.
	for i := 0; i < 30; i++ {
		p := packet.NewData(uint64(i+1), 0, 500, w.vips[i], w.vips[60+i], 0)
		w.e.HostSend(w.hostOf(w.vips[i]), p)
	}
	w.e.Run(simtime.Time(300 * simtime.Microsecond))
	if ctl.GreedySolves == 0 {
		t.Fatalf("greedy solver not used: exact=%d greedy=%d", ctl.ExactSolves, ctl.GreedySolves)
	}
}

func TestControllerRespectsCapacity(t *testing.T) {
	var ctl *Controller
	w := newWorld(t, func(topo *topology.Topology) simnet.Scheme {
		ctl = NewController(topo, 2, 150*simtime.Microsecond)
		ctl.ExactVarLimit = 0 // force greedy
		return ctl
	})
	// Many destinations from one source rack.
	for i := 0; i < 20; i++ {
		p := packet.NewData(uint64(i+1), 0, 500, w.vips[0], w.vips[30+i], 0)
		w.e.HostSend(w.hostOf(w.vips[0]), p)
	}
	w.e.Run(simtime.Never)
	for _, sw := range w.topo.Switches {
		if got := ctl.Installed(sw.Idx); got > 2 {
			t.Fatalf("switch %d has %d installed entries, capacity 2", sw.Idx, got)
		}
	}
}

func TestControllerStaleEntriesEventuallyReplaced(t *testing.T) {
	var ctl *Controller
	w := newWorld(t, func(topo *topology.Topology) simnet.Scheme {
		ctl = NewController(topo, 64, 150*simtime.Microsecond)
		return ctl
	})
	src, dst := w.vips[0], w.vips[9]
	for i := 0; i < 5; i++ {
		w.e.HostSend(w.hostOf(src), packet.NewData(1, i, 500, src, dst, 0))
	}
	w.e.Run(simtime.Time(200 * simtime.Microsecond)) // installed now
	newHost := w.hostOf(w.vips[100])
	if err := w.net.Migrate(dst, newHost); err != nil {
		t.Fatal(err)
	}
	// A packet resolved from the stale installed entry is misdelivered
	// but still arrives via follow-me.
	var deliveredTo int32 = -1
	w.e.Handler = func(h int32, q *packet.Packet) { deliveredTo = h }
	w.e.HostSend(w.hostOf(src), packet.NewData(1, 6, 500, src, dst, 0))
	w.e.Run(simtime.Never)
	if deliveredTo != newHost {
		t.Fatalf("delivered to %d, want %d", deliveredTo, newHost)
	}
}
