package baselines

import (
	"switchv2p/internal/core"
	"switchv2p/internal/simnet"
	"switchv2p/internal/topology"
)

// GwCache mimics Sailfish: V2P caches exist only at the gateway ToRs and
// learn dynamically in the data plane (destination learning); all other
// switches are passive. It reuses the SwitchV2P per-switch machinery with
// every collaborative mechanism disabled and zero-sized caches everywhere
// except the gateway ToRs.
type GwCache struct {
	*core.Scheme
}

// NewGwCache builds the baseline. totalLines is the aggregate cache
// budget, divided evenly among the gateway ToRs (they are the only
// caching switches, so each gets a proportionally larger share — the
// effect §5.1 discusses for small cache sizes).
func NewGwCache(topo *topology.Topology, totalLines int) *GwCache {
	nGwToRs := 0
	for _, sw := range topo.Switches {
		if sw.Role == topology.RoleGatewayToR {
			nGwToRs++
		}
	}
	perSwitch := 0
	if nGwToRs > 0 {
		perSwitch = totalLines / nGwToRs
	}
	opts := core.Options{
		SizeFor: func(sw topology.Switch) int {
			if sw.Role == topology.RoleGatewayToR {
				return perSwitch
			}
			return 0
		},
		// No learning packets, spillover, promotion or invalidation
		// packets: only the gateway-ToR destination-learning cache.
		Seed: 1,
	}
	return &GwCache{Scheme: core.New(topo, opts)}
}

// Name implements simnet.Scheme.
func (*GwCache) Name() string { return "GwCache" }

var _ simnet.Scheme = (*GwCache)(nil)
