package baselines

import (
	"sort"

	"switchv2p/internal/ilp"
	"switchv2p/internal/netaddr"
	"switchv2p/internal/packet"
	"switchv2p/internal/simnet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
)

// Controller is the centralized cache-allocation baseline (Appendix A):
// a controller periodically halts to collect the exact traffic matrix,
// solves the cache-placement optimization, and installs mappings into
// the switches. Switches perform lookups but never learn: placement is
// entirely controller-driven. The paper uses Z3 on the full ILP and
// notes it is impractical; this implementation solves the ToR-restricted
// subproblem exactly with the internal branch-and-bound ILP solver when
// small enough and otherwise uses the equivalent lazy-greedy
// maximum-coverage placement over all uplink candidates (documented
// substitution in DESIGN.md).
type Controller struct {
	topo *topology.Topology
	// Interval between controller invocations (150/300 µs in §A.2).
	Interval simtime.Duration
	// LinesPerSwitch is capacity M of each switch.
	LinesPerSwitch int
	// ExactVarLimit: when the ToR-restricted ILP has at most this many
	// variables it is solved exactly.
	ExactVarLimit int

	installed []map[netaddr.VIP]netaddr.PIP // per switch
	counts    map[pairKey]int64             //v2plint:shardlocal traffic matrix is global by design in the centralized controller (ROADMAP item 1 covers sharding it)
	scheduled bool                          //v2plint:shardlocal single global invocation-timer flag; the controller is centralized by design

	// Stats.
	Lookups, Hits int64 //v2plint:shardlocal aggregate counter, post-run read only
	Invocations   int64
	ExactSolves   int64
	GreedySolves  int64
}

type pairKey struct {
	src, dst netaddr.VIP
}

// NewController builds the baseline.
func NewController(topo *topology.Topology, linesPerSwitch int, interval simtime.Duration) *Controller {
	c := &Controller{
		topo:           topo,
		Interval:       interval,
		LinesPerSwitch: linesPerSwitch,
		ExactVarLimit:  24,
		counts:         make(map[pairKey]int64),
	}
	c.installed = make([]map[netaddr.VIP]netaddr.PIP, len(topo.Switches))
	for i := range c.installed {
		c.installed[i] = make(map[netaddr.VIP]netaddr.PIP)
	}
	return c
}

// Name implements simnet.Scheme.
func (*Controller) Name() string { return "Controller" }

// Installed exposes a switch's installed table size (tests).
func (c *Controller) Installed(sw int32) int { return len(c.installed[sw]) }

// FlushCache implements simnet.CacheFlusher: a failed switch loses its
// installed rules until the controller's next placement reinstalls them.
func (c *Controller) FlushCache(sw int32) { clear(c.installed[sw]) }

// SenderResolve implements simnet.Scheme.
func (c *Controller) SenderResolve(e *simnet.Engine, host int32, p *packet.Packet) bool {
	c.ensureScheduled(e)
	if !p.Resolved {
		p.DstPIP = e.GatewayFor(p.SrcPIP, p.FlowID)
	}
	return true
}

// SwitchArrive implements simnet.Scheme.
func (c *Controller) SwitchArrive(e *simnet.Engine, sw int32, from topology.NodeRef, p *packet.Packet) bool {
	switch p.Kind {
	case packet.Data, packet.Ack:
	default:
		return true
	}
	role := c.topo.Switches[sw].Role
	// ToRs record the connection matrix for the controller.
	if role.IsToR() && from.Kind == topology.KindHost && p.SrcVIP.IsValid() && p.DstVIP.IsValid() {
		c.counts[pairKey{p.SrcVIP, p.DstVIP}]++
	}
	if !p.Resolved {
		c.Lookups++
		if pip, ok := c.installed[sw][p.DstVIP]; ok && pip != p.StalePIP {
			p.DstPIP = pip
			p.Resolved = true
			p.HitSwitch = int32(sw)
			c.Hits++
		}
	}
	return true
}

// HostMisdeliver implements simnet.Scheme.
func (c *Controller) HostMisdeliver(e *simnet.Engine, host int32, p *packet.Packet) {
	p.StalePIP = e.Topo.Hosts[host].PIP
	p.Resolved = false
	p.DstPIP = e.GatewayFor(p.SrcPIP, p.FlowID)
	e.Resend(host, p)
}

func (c *Controller) ensureScheduled(e *simnet.Engine) {
	if c.scheduled {
		return
	}
	c.scheduled = true
	var tick func()
	tick = func() {
		if !c.invoke(e) {
			// No traffic since the last round: go quiet so the event
			// queue can drain; the next send re-arms the timer.
			c.scheduled = false
			return
		}
		e.Q.After(c.Interval, tick)
	}
	e.Q.After(c.Interval, tick)
}

// invoke runs one controller round: snapshot the traffic matrix, solve
// the placement, install. It reports whether any traffic was observed.
func (c *Controller) invoke(e *simnet.Engine) bool {
	c.Invocations++
	pairs := c.snapshotPairs(e)
	if len(pairs) == 0 {
		return false
	}
	placement := c.place(e, pairs)
	for sw := range c.installed {
		c.installed[sw] = placement[sw]
	}
	return true
}

type pairDemand struct {
	srcToR int32
	dst    netaddr.VIP
	dstPIP netaddr.PIP
	dstToR int32
	count  int64
}

// snapshotPairs drains the traffic matrix into per-(srcToR,dst) demands
// with current authoritative destinations.
func (c *Controller) snapshotPairs(e *simnet.Engine) []pairDemand {
	agg := make(map[[2]int64]*pairDemand)
	for k, n := range c.counts {
		srcHost, ok := e.Net.HostOf(k.src)
		if !ok {
			continue
		}
		dstHost, ok2 := e.Net.HostOf(k.dst)
		if !ok2 {
			continue
		}
		srcToR := c.topo.Hosts[srcHost].ToR
		key := [2]int64{int64(srcToR), int64(k.dst)}
		if d := agg[key]; d != nil {
			d.count += n
		} else {
			agg[key] = &pairDemand{
				srcToR: srcToR,
				dst:    k.dst,
				dstPIP: c.topo.Hosts[dstHost].PIP,
				dstToR: c.topo.Hosts[dstHost].ToR,
				count:  n,
			}
		}
	}
	c.counts = make(map[pairKey]int64)
	keys := make([][2]int64, 0, len(agg))
	for key := range agg {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		di, dj := agg[keys[i]], agg[keys[j]]
		if di.count != dj.count {
			return di.count > dj.count
		}
		if di.srcToR != dj.srcToR {
			return di.srcToR < dj.srcToR
		}
		return di.dst < dj.dst
	})
	out := make([]pairDemand, 0, len(keys))
	for _, key := range keys {
		out = append(out, *agg[key])
	}
	return out
}

// hopCost converts a switch-to-switch distance into a latency estimate.
func (c *Controller) hopCost(e *simnet.Engine, hops int) float64 {
	return float64(hops) * float64(e.Topo.Cfg.LinkDelay)
}

// saving computes the per-packet latency saved by serving demand d from
// switch s instead of the gateway path.
func (c *Controller) saving(e *simnet.Engine, d *pairDemand, s int32) float64 {
	// Mean gateway detour: srcToR -> gwToR -> dstToR plus processing.
	gws := e.Gateways()
	gwHops := 0.0
	for _, g := range gws {
		gwToR := c.topo.Hosts[g].ToR
		gwHops += float64(c.topo.SwitchDistance(d.srcToR, gwToR) + 2 + c.topo.SwitchDistance(gwToR, d.dstToR))
	}
	gwHops /= float64(len(gws))
	viaGW := c.hopCost(e, int(gwHops)) + float64(e.Cfg.GatewayDelay)
	viaS := c.hopCost(e, c.topo.SwitchDistance(d.srcToR, s)+c.topo.SwitchDistance(s, d.dstToR))
	if viaS >= viaGW {
		return 0
	}
	return viaGW - viaS
}

// candidates returns the uplink switches that could serve a demand: the
// source ToR, the spines of its pod, and the core layer.
func (c *Controller) candidates(d *pairDemand) []int32 {
	out := []int32{d.srcToR}
	pod := c.topo.Switches[d.srcToR].Pod
	for _, sw := range c.topo.Switches {
		if sw.Role.IsSpine() && sw.Pod == pod {
			out = append(out, sw.Idx)
		}
		if sw.Role == topology.RoleCore {
			out = append(out, sw.Idx)
		}
	}
	return out
}

// place computes the new per-switch mapping tables.
func (c *Controller) place(e *simnet.Engine, pairs []pairDemand) []map[netaddr.VIP]netaddr.PIP {
	// ToR-restricted exact formulation: one variable per (srcToR, dst)
	// demand, capacity per ToR. Solved exactly when small.
	if len(pairs) <= c.ExactVarLimit {
		return c.placeExact(e, pairs)
	}
	return c.placeGreedy(e, pairs)
}

func (c *Controller) placeExact(e *simnet.Engine, pairs []pairDemand) []map[netaddr.VIP]netaddr.PIP {
	c.ExactSolves++
	p := &ilp.Problem{Obj: make([]float64, len(pairs))}
	perToR := make(map[int32][]ilp.Term)
	for i := range pairs {
		d := &pairs[i]
		p.Obj[i] = float64(d.count) * c.saving(e, d, d.srcToR)
		perToR[d.srcToR] = append(perToR[d.srcToR], ilp.Term{Var: i, Coeff: 1})
	}
	// Constraint order steers the solver's branching and tie-breaking,
	// so emit rows in sorted ToR order, never map order.
	tors := make([]int32, 0, len(perToR))
	for tor := range perToR {
		tors = append(tors, tor)
	}
	sort.Slice(tors, func(i, j int) bool { return tors[i] < tors[j] })
	for _, tor := range tors {
		p.Constraints = append(p.Constraints, ilp.Constraint{Terms: perToR[tor], Bound: float64(c.LinesPerSwitch)})
	}
	sol, err := ilp.Solve(p, ilp.Options{MaxNodes: 200_000})
	if err != nil {
		return c.placeGreedy(e, pairs)
	}
	placement := c.emptyPlacement()
	for i, selected := range sol.X {
		if selected {
			d := &pairs[i]
			placement[d.srcToR][d.dst] = d.dstPIP
		}
	}
	return placement
}

// placeGreedy is the scalable lazy-greedy maximum-coverage placement
// over all uplink candidates, capturing cross-pair sharing at spines and
// cores.
func (c *Controller) placeGreedy(e *simnet.Engine, pairs []pairDemand) []map[netaddr.VIP]netaddr.PIP {
	c.GreedySolves++
	placement := c.emptyPlacement()
	capacity := make([]int, len(c.topo.Switches))
	for i := range capacity {
		capacity[i] = c.LinesPerSwitch
	}
	// bestServed[pair index] = best saving already achieved.
	bestServed := make([]float64, len(pairs))

	// Candidate moves: (switch, dst VIP) gathered from each demand's
	// uplink. covers[(s,dst)] = pair indices that could be served.
	type moveKey struct {
		s   int32
		dst netaddr.VIP
	}
	covers := make(map[moveKey][]int)
	pipOf := make(map[netaddr.VIP]netaddr.PIP)
	for i := range pairs {
		d := &pairs[i]
		pipOf[d.dst] = d.dstPIP
		for _, s := range c.candidates(d) {
			covers[moveKey{s, d.dst}] = append(covers[moveKey{s, d.dst}], i)
		}
	}
	gain := func(k moveKey) float64 {
		g := 0.0
		for _, i := range covers[k] {
			d := &pairs[i]
			if sv := float64(d.count) * c.saving(e, d, k.s); sv > bestServed[i] {
				g += sv - bestServed[i]
			}
		}
		return g
	}
	// Lazy greedy with a sorted slice re-evaluated on pop.
	type scored struct {
		k moveKey
		g float64
	}
	moveKeys := make([]moveKey, 0, len(covers))
	for k := range covers {
		moveKeys = append(moveKeys, k)
	}
	sort.Slice(moveKeys, func(i, j int) bool {
		if moveKeys[i].s != moveKeys[j].s {
			return moveKeys[i].s < moveKeys[j].s
		}
		return moveKeys[i].dst < moveKeys[j].dst
	})
	heap := make([]scored, 0, len(moveKeys))
	for _, k := range moveKeys {
		heap = append(heap, scored{k, gain(k)})
	}
	sort.Slice(heap, func(i, j int) bool {
		if heap[i].g != heap[j].g {
			return heap[i].g > heap[j].g
		}
		if heap[i].k.s != heap[j].k.s {
			return heap[i].k.s < heap[j].k.s
		}
		return heap[i].k.dst < heap[j].k.dst
	})
	for len(heap) > 0 {
		top := heap[0]
		heap = heap[1:]
		if top.g <= 0 {
			break
		}
		if capacity[top.k.s] == 0 {
			continue
		}
		// Lazy re-evaluation: the stored gain may be stale.
		if g := gain(top.k); g < top.g {
			if g <= 0 {
				continue
			}
			// Re-insert in order.
			idx := sort.Search(len(heap), func(i int) bool { return heap[i].g <= g })
			heap = append(heap, scored{})
			copy(heap[idx+1:], heap[idx:])
			heap[idx] = scored{top.k, g}
			continue
		}
		// Take the move.
		capacity[top.k.s]--
		placement[top.k.s][top.k.dst] = pipOf[top.k.dst]
		for _, i := range covers[top.k] {
			d := &pairs[i]
			if sv := float64(d.count) * c.saving(e, d, top.k.s); sv > bestServed[i] {
				bestServed[i] = sv
			}
		}
	}
	return placement
}

func (c *Controller) emptyPlacement() []map[netaddr.VIP]netaddr.PIP {
	out := make([]map[netaddr.VIP]netaddr.PIP, len(c.topo.Switches))
	for i := range out {
		out[i] = make(map[netaddr.VIP]netaddr.PIP)
	}
	return out
}
