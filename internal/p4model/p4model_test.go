package p4model

import (
	"math"
	"testing"
)

func TestTable6Shape(t *testing.T) {
	u, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	if !u.Fits() {
		t.Fatalf("Table 6 design does not fit: %v", u)
	}
	// Paper's Table 6: Match Crossbar 7.2%, Meter ALU 17.5%, Gateway 25%,
	// SRAM 3.9%, TCAM 1.7%, VLIW 10%, Hash Bits 4.7%. The model must land
	// in the same ballpark (within a factor of ~2 on each row) and keep
	// the ordering of the dominant consumers.
	approx := func(name string, got, want float64) {
		if got < want/2 || got > want*2 {
			t.Errorf("%s utilization = %.3f, want ~%.3f", name, got, want)
		}
	}
	approx("crossbar", u.MatchCrossbar, 0.072)
	approx("meterALU", u.MeterALU, 0.175)
	approx("gateway", u.Gateway, 0.25)
	approx("sram", u.SRAM, 0.039)
	approx("tcam", u.TCAM, 0.017)
	approx("vliw", u.VLIW, 0.10)
	approx("hash", u.HashBits, 0.047)
	// Gateway predicates and meter ALUs are the top consumers, as in the
	// paper.
	if !(u.Gateway > u.MeterALU && u.MeterALU > u.VLIW) {
		t.Errorf("consumer ordering broken: %v", u)
	}
}

func TestSRAMAndHashScaleWithCacheSize(t *testing.T) {
	// §5.3: "Hash Bits and SRAM utilization are the only components that
	// increase ... as the cache size is expanded."
	small, err := Tofino().Utilization(SwitchV2PDesign(10_000, 1024))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Tofino().Utilization(SwitchV2PDesign(190_000, 1024))
	if err != nil {
		t.Fatal(err)
	}
	if big.SRAM <= small.SRAM {
		t.Fatalf("SRAM did not grow: %v -> %v", small.SRAM, big.SRAM)
	}
	if big.HashBits < small.HashBits {
		t.Fatalf("hash bits shrank: %v -> %v", small.HashBits, big.HashBits)
	}
	for name, pair := range map[string][2]float64{
		"crossbar": {small.MatchCrossbar, big.MatchCrossbar},
		"meterALU": {small.MeterALU, big.MeterALU},
		"gateway":  {small.Gateway, big.Gateway},
		"vliw":     {small.VLIW, big.VLIW},
		"tcam":     {small.TCAM, big.TCAM},
	} {
		if math.Abs(pair[0]-pair[1]) > 1e-9 {
			t.Fatalf("%s changed with cache size: %v -> %v", name, pair[0], pair[1])
		}
	}
}

func TestOversubscriptionDetected(t *testing.T) {
	d := SwitchV2PDesign(50_000_000, 1024) // absurd cache
	if _, err := Tofino().Utilization(d); err == nil {
		t.Fatal("oversubscribed design accepted")
	}
}

func TestEmptyPipelineRejected(t *testing.T) {
	pl := Pipeline{}
	if _, err := pl.Utilization(SwitchV2PDesign(1000, 80)); err == nil {
		t.Fatal("zero-stage pipeline accepted")
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 1024: 10, 96000: 17}
	for n, want := range cases {
		if got := bitsFor(n); got != want {
			t.Errorf("bitsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestUtilizationString(t *testing.T) {
	u, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	s := u.String()
	if len(s) == 0 || s[0] != 'M' {
		t.Fatalf("String() = %q", s)
	}
}

func TestTernaryTablesUseTCAM(t *testing.T) {
	d := Design{
		Name:   "ternary-only",
		Tables: []Table{{Name: "t", KeyBits: 88, Entries: 1024, Ternary: true, ValueBits: 8}},
	}
	u, err := Tofino().Utilization(d)
	if err != nil {
		t.Fatal(err)
	}
	if u.TCAM == 0 {
		t.Fatal("ternary table consumed no TCAM")
	}
	if u.MatchCrossbar != 0 {
		t.Fatal("ternary table consumed exact-match crossbar")
	}
}
