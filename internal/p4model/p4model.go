// Package p4model is an analytic resource model of a Tofino-like
// reconfigurable match-action pipeline, used to reproduce the paper's
// Table 6 (per-stage resource utilization of the SwitchV2P P4
// prototype). The paper measured its prototype with Intel P4 Studio;
// that toolchain is proprietary, so this package computes the same
// static accounting from a description of the switch program: match
// tables consume crossbar bits and TCAM/SRAM blocks, register arrays
// consume SRAM blocks and stateful (meter) ALUs, actions consume VLIW
// slots, and conditionals consume gateway predicates (the substitution
// is documented in DESIGN.md).
package p4model

import (
	"fmt"
)

// StageResources is the per-stage capacity of the modeled pipeline,
// using commonly cited Tofino-generation figures.
type StageResources struct {
	MatchCrossbarBits int // exact-match crossbar input bits
	SRAMBlocks        int
	SRAMBlockBytes    int
	TCAMBlocks        int
	HashBits          int
	MeterALUs         int // stateful ALUs
	VLIWSlots         int
	Gateways          int // conditional-branch predicates
}

// TofinoStage returns the per-stage capacities of a Tofino-class MAU.
func TofinoStage() StageResources {
	return StageResources{
		MatchCrossbarBits: 1280,
		SRAMBlocks:        80,
		SRAMBlockBytes:    16 << 10,
		TCAMBlocks:        24,
		HashBits:          416,
		MeterALUs:         4,
		VLIWSlots:         32,
		Gateways:          16,
	}
}

// Pipeline is a fixed-function pipeline: a number of identical stages.
type Pipeline struct {
	Stages int
	Stage  StageResources
}

// Tofino returns a 12-stage Tofino-class pipeline.
func Tofino() Pipeline {
	return Pipeline{Stages: 12, Stage: TofinoStage()}
}

// Table describes one match-action table of the program.
type Table struct {
	Name      string
	KeyBits   int
	Entries   int
	Ternary   bool // TCAM-backed if true, exact (SRAM) otherwise
	ValueBits int
}

// RegisterArray describes one stateful register array.
type RegisterArray struct {
	Name      string
	Entries   int
	WidthBits int
	// Hashed indicates the index is computed by the hash unit (consumes
	// hash bits for key + index).
	Hashed  bool
	KeyBits int
}

// Design is a complete switch program description.
type Design struct {
	Name      string
	Tables    []Table
	Registers []RegisterArray
	// Actions is the number of distinct VLIW actions.
	Actions int
	// Branches is the number of conditional predicates (if/else).
	Branches int
	// ExtraHashBits covers non-table hashing (e.g. ECMP selection).
	ExtraHashBits int
}

// SwitchV2PDesign describes the SwitchV2P data-plane program (§3.4): a
// direct-mapped cache of cacheEntries mappings implemented as three
// register arrays (keys, values, access bits), the role/gateway/port
// configuration tables, the invalidation timestamp vector, and the
// option-processing logic.
func SwitchV2PDesign(cacheEntries, switches int) Design {
	return Design{
		Name: "SwitchV2P",
		Tables: []Table{
			{Name: "role_config", KeyBits: 16, Entries: 16, ValueBits: 8},
			{Name: "gateway_addrs", KeyBits: 32, Entries: 256, Ternary: true, ValueBits: 8},
			{Name: "port_to_pip", KeyBits: 16, Entries: 256, ValueBits: 32},
			{Name: "tunnel_options", KeyBits: 24, Entries: 64, ValueBits: 16},
			{Name: "mirror_sessions", KeyBits: 16, Entries: 64, ValueBits: 32},
			{Name: "switch_ids", KeyBits: 32, Entries: 1024, Ternary: true, ValueBits: 32},
		},
		Registers: []RegisterArray{
			{Name: "cache_keys", Entries: cacheEntries, WidthBits: 32, Hashed: true, KeyBits: 32},
			{Name: "cache_values", Entries: cacheEntries, WidthBits: 32, Hashed: true, KeyBits: 32},
			{Name: "cache_access", Entries: cacheEntries, WidthBits: 1, Hashed: true, KeyBits: 32},
			{Name: "spill_stage", Entries: 4096, WidthBits: 64},
			{Name: "promo_stage", Entries: 4096, WidthBits: 64},
			{Name: "ts_vector", Entries: switches, WidthBits: 32},
			{Name: "stat_hits", Entries: 1024, WidthBits: 32},
			{Name: "stat_lookups", Entries: 1024, WidthBits: 32},
		},
		Actions:       38,
		Branches:      48,
		ExtraHashBits: 64, // ECMP flow hash
	}
}

func bitsFor(n int) int {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	return b
}

// Utilization is the Table 6 report: average per-stage utilization of
// each resource class, in [0,1].
type Utilization struct {
	MatchCrossbar float64
	MeterALU      float64
	Gateway       float64
	SRAM          float64
	TCAM          float64
	VLIW          float64
	HashBits      float64
}

// Fits reports whether no resource class is over-subscribed.
func (u Utilization) Fits() bool {
	for _, v := range []float64{u.MatchCrossbar, u.MeterALU, u.Gateway, u.SRAM, u.TCAM, u.VLIW, u.HashBits} {
		if v > 1 {
			return false
		}
	}
	return true
}

// String renders the utilization as Table 6 rows.
func (u Utilization) String() string {
	return fmt.Sprintf(
		"Match Crossbar %.1f%% | Meter ALU %.1f%% | Gateway %.1f%% | SRAM %.1f%% | TCAM %.1f%% | VLIW %.1f%% | Hash Bits %.1f%%",
		100*u.MatchCrossbar, 100*u.MeterALU, 100*u.Gateway, 100*u.SRAM,
		100*u.TCAM, 100*u.VLIW, 100*u.HashBits)
}

// Utilization computes the average per-stage utilization of the design
// on the pipeline.
func (pl Pipeline) Utilization(d Design) (Utilization, error) {
	if pl.Stages <= 0 {
		return Utilization{}, fmt.Errorf("p4model: pipeline has no stages")
	}
	var crossbar, sramBlocks, tcamBlocks, hashBits, alus, vliw, gateways int

	for _, t := range d.Tables {
		if t.Ternary {
			// TCAM blocks: 44-bit × 512-entry slices.
			wSlices := ceilDiv(t.KeyBits, 44)
			dSlices := ceilDiv(t.Entries, 512)
			tcamBlocks += wSlices * dSlices
			// Ternary results still live in SRAM.
			sramBlocks += ceilDiv(t.Entries*t.ValueBits/8, pl.Stage.SRAMBlockBytes)
		} else {
			// Exact-match keys are replicated across hash ways on the
			// crossbar (4-way cuckoo placement).
			crossbar += 4 * t.KeyBits
			hashBits += t.KeyBits // exact match hashing
			bytes := t.Entries * (t.KeyBits + t.ValueBits) / 8
			sramBlocks += 1 + bytes/pl.Stage.SRAMBlockBytes
		}
	}
	for _, r := range d.Registers {
		bytes := ceilDiv(r.Entries*r.WidthBits, 8)
		sramBlocks += 1 + bytes/pl.Stage.SRAMBlockBytes
		alus++
		if r.Hashed {
			hashBits += bitsFor(r.Entries)
			crossbar += 2 * r.KeyBits
		}
	}
	hashBits += d.ExtraHashBits
	vliw = d.Actions
	gateways = d.Branches
	// Branch predicates read their operands through the crossbar as well
	// (~16 bits per condition on average).
	crossbar += 16 * d.Branches

	u := Utilization{
		MatchCrossbar: ratio(crossbar, pl.Stage.MatchCrossbarBits*pl.Stages),
		MeterALU:      ratio(alus, pl.Stage.MeterALUs*pl.Stages),
		Gateway:       ratio(gateways, pl.Stage.Gateways*pl.Stages),
		SRAM:          ratio(sramBlocks, pl.Stage.SRAMBlocks*pl.Stages),
		TCAM:          ratio(tcamBlocks, pl.Stage.TCAMBlocks*pl.Stages),
		VLIW:          ratio(vliw, pl.Stage.VLIWSlots*pl.Stages),
		HashBits:      ratio(hashBits, pl.Stage.HashBits*pl.Stages),
	}
	if !u.Fits() {
		return u, fmt.Errorf("p4model: design %q exceeds pipeline capacity: %v", d.Name, u)
	}
	return u, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func ratio(used, capacity int) float64 {
	if capacity == 0 {
		return 0
	}
	return float64(used) / float64(capacity)
}

// Table6 computes the paper's Table 6 configuration: the SwitchV2P
// program with a cache of half the Bluebird-reported per-switch capacity
// (50% of 192K entries) on a Tofino-class pipeline.
func Table6() (Utilization, error) {
	return Tofino().Utilization(SwitchV2PDesign(96_000, 1024))
}
