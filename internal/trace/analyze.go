package trace

import (
	"fmt"

	"switchv2p/internal/netaddr"
	"switchv2p/internal/simtime"
)

// ReuseStats characterizes a workload's cross-flow destination reuse,
// mirroring the paper's "Address reuse characteristics" analysis (§5).
type ReuseStats struct {
	Flows         int
	DistinctDests int
	DestsGE2      int // VMs that are a destination in >= 2 flows
	DestsGE10     int // VMs that are a destination in >= 10 flows
	// MeanReuseDistance is the mean time between consecutive flows to
	// the same destination (0 if no destination repeats).
	MeanReuseDistance simtime.Duration
	TotalBytes        int64
}

// Analyze computes reuse statistics for a workload.
func Analyze(w *Workload) ReuseStats {
	var s ReuseStats
	s.Flows = len(w.Flows)
	s.TotalBytes = w.TotalBytes()
	counts := make(map[netaddr.VIP]int)
	lastSeen := make(map[netaddr.VIP]simtime.Time)
	var distSum int64
	var distN int64
	for i := range w.Flows {
		f := &w.Flows[i]
		counts[f.Dst]++
		if t, ok := lastSeen[f.Dst]; ok {
			distSum += int64(f.Start.Sub(t))
			distN++
		}
		lastSeen[f.Dst] = f.Start
	}
	s.DistinctDests = len(counts)
	for _, c := range counts {
		if c >= 2 {
			s.DestsGE2++
		}
		if c >= 10 {
			s.DestsGE10++
		}
	}
	if distN > 0 {
		s.MeanReuseDistance = simtime.Duration(distSum / distN)
	}
	return s
}

// String renders the analysis like the paper's prose.
func (s ReuseStats) String() string {
	return fmt.Sprintf("flows=%d distinctDests=%d dests>=2:%d dests>=10:%d meanReuseDist=%v bytes=%d",
		s.Flows, s.DistinctDests, s.DestsGE2, s.DestsGE10, s.MeanReuseDistance, s.TotalBytes)
}

// OfferedLoad returns the workload's offered load as a fraction of the
// aggregate host-link capacity over the duration.
func OfferedLoad(w *Workload, servers int, hostLinkBps int64, d simtime.Duration) float64 {
	bits := float64(w.TotalBytes()) * 8
	capacity := float64(servers) * float64(hostLinkBps) * d.Seconds()
	return bits / capacity
}
