package trace

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"switchv2p/internal/netaddr"
	"switchv2p/internal/simtime"
	"switchv2p/internal/transport"
)

func vipPool(n int) []netaddr.VIP {
	var alloc netaddr.VIPAllocator
	out := make([]netaddr.VIP, n)
	for i := range out {
		out[i] = alloc.Next()
	}
	return out
}

func baseConfig() Config {
	return Config{
		VIPs:        vipPool(1024),
		Servers:     128,
		HostLinkBps: 100e9,
		Load:        0.30,
		Duration:    2 * simtime.Millisecond,
		Seed:        7,
	}
}

func TestCDFValidation(t *testing.T) {
	if _, err := NewCDF(nil); err == nil {
		t.Fatal("empty CDF accepted")
	}
	if _, err := NewCDF([][2]float64{{100, 0.5}}); err == nil {
		t.Fatal("CDF not ending at 1 accepted")
	}
	if _, err := NewCDF([][2]float64{{100, 0.5}, {50, 1.0}}); err == nil {
		t.Fatal("decreasing values accepted")
	}
	if _, err := NewCDF([][2]float64{{100, 0.5}, {200, 0.4}}); err == nil {
		t.Fatal("non-increasing probs accepted")
	}
	if _, err := NewCDF([][2]float64{{-5, 1.0}}); err == nil {
		t.Fatal("negative value accepted")
	}
}

func TestCDFSampleWithinRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, cdf := range map[string]*CDF{
		"hadoop": HadoopCDF(), "websearch": WebSearchCDF(), "alibaba": AlibabaRPCCDF(),
	} {
		for i := 0; i < 10000; i++ {
			v := cdf.Sample(rng)
			if v <= 0 || v > cdf.Max() {
				t.Fatalf("%s sample %v out of (0, %v]", name, v, cdf.Max())
			}
		}
	}
}

func TestCDFEmpiricalMeanMatchesAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cdf := HadoopCDF()
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += cdf.Sample(rng)
	}
	emp := sum / n
	ana := cdf.Mean()
	if math.Abs(emp-ana)/ana > 0.25 {
		t.Fatalf("empirical mean %v vs analytic %v: >25%% apart", emp, ana)
	}
}

func TestHadoopShape(t *testing.T) {
	w, err := Hadoop(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := Analyze(w)
	// High destination reuse: the vast majority of destination VMs see >=2
	// flows, as in the paper's characterization.
	if s.Flows < 100 {
		t.Fatalf("too few flows: %d", s.Flows)
	}
	if frac := float64(s.DestsGE2) / float64(s.DistinctDests); frac < 0.6 {
		t.Fatalf("Hadoop dest>=2 fraction = %v, want high reuse", frac)
	}
	// Short flows dominate: median well under 100 KB.
	smaller := 0
	for i := range w.Flows {
		if w.Flows[i].Bytes < 100_000 {
			smaller++
		}
	}
	if frac := float64(smaller) / float64(len(w.Flows)); frac < 0.7 {
		t.Fatalf("Hadoop short-flow fraction = %v, want mostly short", frac)
	}
}

func TestWebSearchShape(t *testing.T) {
	// Keep the flow count below the 48% destination-coverage pool so the
	// minimal-reuse structure is visible (the paper's population is 10240
	// VMs for ~6K flows).
	cfg := baseConfig()
	cfg.Duration = simtime.Millisecond
	w, err := WebSearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := Analyze(w)
	// Minimal cross-flow sharing: far fewer repeat destinations than Hadoop.
	if frac := float64(s.DestsGE2) / float64(s.DistinctDests); frac > 0.5 {
		t.Fatalf("WebSearch dest>=2 fraction = %v, want minimal reuse", frac)
	}
	// Heavy flows: mean size > 500 KB.
	if mean := float64(s.TotalBytes) / float64(s.Flows); mean < 500_000 {
		t.Fatalf("WebSearch mean flow = %v bytes, want heavy", mean)
	}
}

func TestAlibabaShape(t *testing.T) {
	w, err := Alibaba(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := Analyze(w)
	// Strong skew: some VMs are destinations in >= 10 flows, and only a
	// minority of VMs are destinations at all.
	if s.DestsGE10 == 0 {
		t.Fatal("Alibaba has no hot destinations")
	}
	if frac := float64(s.DistinctDests) / 1024; frac > 0.5 {
		t.Fatalf("Alibaba destination coverage = %v, want < 0.5 (skewed)", frac)
	}
}

func TestMicroburstsShape(t *testing.T) {
	w, err := Microbursts(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	// All UDP; burst durations have a ~158 µs tail.
	var durations []simtime.Duration
	for i := range w.Flows {
		f := &w.Flows[i]
		if f.Proto != transport.UDP {
			t.Fatal("microbursts must be UDP")
		}
		durations = append(durations, simtime.Duration(int64(f.Interval)*int64(f.Packets-1)))
	}
	if len(durations) < 50 {
		t.Fatalf("too few bursts: %d", len(durations))
	}
	var over, under int
	for _, d := range durations {
		if d > 400*simtime.Microsecond {
			over++
		}
		if d <= 160*simtime.Microsecond {
			under++
		}
	}
	if frac := float64(under) / float64(len(durations)); frac < 0.90 {
		t.Fatalf("burst durations: only %v <= 160µs, want ~0.99", frac)
	}
	if frac := float64(over) / float64(len(durations)); frac > 0.02 {
		t.Fatalf("burst durations: %v over 400µs", frac)
	}
}

func TestVideoShape(t *testing.T) {
	w, err := Video(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Flows) != 64 {
		t.Fatalf("video flows = %d, want 64", len(w.Flows))
	}
	s := Analyze(w)
	if s.DestsGE2 != 0 {
		t.Fatalf("video has destination reuse: %+v", s)
	}
	// Each sender ~48 Mbps.
	for i := range w.Flows {
		f := &w.Flows[i]
		rate := float64(f.PacketPayload*8) / f.Interval.Seconds()
		if rate < 40e6 || rate > 56e6 {
			t.Fatalf("video flow rate = %v bps, want ~48Mbps", rate)
		}
		if f.Proto != transport.UDP {
			t.Fatal("video must be UDP")
		}
	}
}

func TestVideoNeedsEnoughVMs(t *testing.T) {
	cfg := baseConfig()
	cfg.VIPs = vipPool(100)
	if _, err := Video(cfg); err == nil {
		t.Fatal("expected error with too few VMs")
	}
}

func TestLoadCalibration(t *testing.T) {
	for name, gen := range map[string]func(Config) (*Workload, error){
		"hadoop": Hadoop, "websearch": WebSearch, "alibaba": Alibaba, "microbursts": Microbursts,
	} {
		cfg := baseConfig()
		cfg.Duration = 10 * simtime.Millisecond
		w, err := gen(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		load := OfferedLoad(w, cfg.Servers, cfg.HostLinkBps, cfg.Duration)
		if load < 0.1 || load > 0.6 {
			t.Fatalf("%s offered load = %v, want ~0.30", name, load)
		}
	}
}

func TestDeterminismBySeed(t *testing.T) {
	cfg := baseConfig()
	a, err := Hadoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Hadoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Flows, b.Flows) {
		t.Fatal("same seed produced different workloads")
	}
	cfg.Seed = 8
	c, err := Hadoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Flows, c.Flows) {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestMaxFlowsCap(t *testing.T) {
	cfg := baseConfig()
	cfg.MaxFlows = 10
	w, err := Hadoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Flows) != 10 {
		t.Fatalf("MaxFlows cap ignored: %d flows", len(w.Flows))
	}
}

func TestConfigValidation(t *testing.T) {
	bad := baseConfig()
	bad.VIPs = bad.VIPs[:1]
	if _, err := Hadoop(bad); err == nil {
		t.Fatal("1-VM config accepted")
	}
	bad = baseConfig()
	bad.Load = 0
	if _, err := Hadoop(bad); err == nil {
		t.Fatal("zero load accepted")
	}
	bad = baseConfig()
	bad.Duration = 0
	if _, err := Hadoop(bad); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestIncast(t *testing.T) {
	vips := vipPool(65)
	w := Incast(vips[0], vips[1:], 64000, 500, simtime.Millisecond)
	if len(w.Flows) != 64 {
		t.Fatalf("incast flows = %d", len(w.Flows))
	}
	total := 0
	for i := range w.Flows {
		f := &w.Flows[i]
		if f.Dst != vips[0] {
			t.Fatal("incast flow with wrong destination")
		}
		total += f.Packets
		if end := int64(f.Start) + int64(f.Interval)*int64(f.Packets-1); end > int64(simtime.Millisecond) {
			t.Fatalf("incast flow runs past the duration: %d", end)
		}
	}
	if total != 64000 {
		t.Fatalf("incast total packets = %d, want 64000", total)
	}
}

func TestGeneratorsRegistry(t *testing.T) {
	for _, name := range []string{"hadoop", "websearch", "alibaba", "microbursts", "video"} {
		if Generators[name] == nil {
			t.Fatalf("missing generator %q", name)
		}
	}
}
