package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestWorkloadRoundTrip(t *testing.T) {
	w, err := Hadoop(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != w.Name {
		t.Fatalf("name %q != %q", got.Name, w.Name)
	}
	if !reflect.DeepEqual(got.Flows, w.Flows) {
		t.Fatal("flows differ after round trip")
	}
}

func TestWorkloadRoundTripUDP(t *testing.T) {
	w, err := Video(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Flows, w.Flows) {
		t.Fatal("UDP flows differ after round trip")
	}
}

func TestReadWorkloadRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"",
		"not json",
		`{"format":"something-else","name":"x","flows":0}`,
		`{"format":"switchv2p-workload/1","name":"x","flows":3}` + "\n" + `{"ID":1}`,
	} {
		if _, err := ReadWorkload(strings.NewReader(in)); err == nil {
			t.Fatalf("accepted %q", in)
		}
	}
}

func TestWriteIsDeterministic(t *testing.T) {
	w, err := Microbursts(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := w.Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two writes of the same workload differ")
	}
}
