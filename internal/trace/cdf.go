package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// CDF is an empirical flow-size distribution given as (value, cumulative
// probability) points, sampled by inverse transform with log-linear
// interpolation between points — the standard way NS3-based evaluations
// consume published workload CDFs.
type CDF struct {
	values []float64
	probs  []float64
}

// NewCDF builds a CDF from (value, cumProb) pairs. Probabilities must be
// strictly increasing and end at 1.0; values must be positive and
// non-decreasing.
func NewCDF(points [][2]float64) (*CDF, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("trace: empty CDF")
	}
	c := &CDF{}
	prevP, prevV := 0.0, 0.0
	for i, pt := range points {
		v, p := pt[0], pt[1]
		if v <= 0 || v < prevV {
			return nil, fmt.Errorf("trace: CDF value %v at %d not positive/non-decreasing", v, i)
		}
		if p <= prevP || p > 1 {
			return nil, fmt.Errorf("trace: CDF prob %v at %d not increasing in (0,1]", p, i)
		}
		c.values = append(c.values, v)
		c.probs = append(c.probs, p)
		prevP, prevV = p, v
	}
	if c.probs[len(c.probs)-1] != 1 {
		return nil, fmt.Errorf("trace: CDF must end at probability 1, got %v", prevP)
	}
	return c, nil
}

// MustCDF is NewCDF that panics on malformed tables (package literals).
func MustCDF(points [][2]float64) *CDF {
	c, err := NewCDF(points)
	if err != nil {
		panic(err)
	}
	return c
}

// Sample draws one value.
func (c *CDF) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(c.probs, u)
	if i >= len(c.probs) {
		i = len(c.probs) - 1
	}
	hiV, hiP := c.values[i], c.probs[i]
	loV, loP := 0.0, 0.0
	if i > 0 {
		loV, loP = c.values[i-1], c.probs[i-1]
	}
	if hiP == loP {
		return hiV
	}
	frac := (u - loP) / (hiP - loP)
	if loV <= 0 {
		return hiV * frac // linear from zero for the first bucket
	}
	// Log-linear interpolation suits the heavy-tailed size distributions.
	return math.Exp(math.Log(loV) + frac*(math.Log(hiV)-math.Log(loV)))
}

// Mean returns the distribution mean under the interpolation model,
// estimated analytically from the trapezoids (geometric mean per bucket
// is a good closed-form approximation for log-linear segments).
func (c *CDF) Mean() float64 {
	mean := 0.0
	loV, loP := 0.0, 0.0
	for i := range c.values {
		hiV, hiP := c.values[i], c.probs[i]
		var mid float64
		if loV <= 0 {
			mid = hiV / 2
		} else {
			mid = math.Sqrt(loV * hiV) // geometric midpoint of the bucket
		}
		mean += mid * (hiP - loP)
		loV, loP = hiV, hiP
	}
	return mean
}

// Max returns the largest value in the table.
func (c *CDF) Max() float64 { return c.values[len(c.values)-1] }

// HadoopCDF approximates the Facebook Hadoop flow-size distribution
// (Roy et al. [46]): dominated by short flows with a light heavy tail.
func HadoopCDF() *CDF {
	return MustCDF([][2]float64{
		{150, 0.10}, {300, 0.25}, {600, 0.40}, {1200, 0.52},
		{3000, 0.63}, {8000, 0.72}, {20000, 0.81}, {60000, 0.89},
		{200000, 0.95}, {700000, 0.98}, {3000000, 0.995}, {10000000, 1.0},
	})
}

// WebSearchCDF approximates the DCTCP web-search distribution
// (Alizadeh et al. [4]): mostly heavy flows.
func WebSearchCDF() *CDF {
	return MustCDF([][2]float64{
		{6000, 0.15}, {13000, 0.20}, {19000, 0.30}, {33000, 0.40},
		{53000, 0.53}, {133000, 0.60}, {667000, 0.70}, {1333000, 0.80},
		{4000000, 0.90}, {10000000, 0.97}, {30000000, 1.0},
	})
}

// AlibabaRPCCDF approximates the Alibaba microservice RPC message sizes
// (Luo et al. [36]): small request/response payloads.
func AlibabaRPCCDF() *CDF {
	return MustCDF([][2]float64{
		{256, 0.20}, {512, 0.35}, {1024, 0.50}, {2048, 0.65},
		{4096, 0.78}, {8192, 0.88}, {16384, 0.95}, {65536, 1.0},
	})
}
