// Package trace generates the evaluation workloads (§5 "Datasets"). The
// paper uses real-world traces (Facebook Hadoop, DCTCP WebSearch, an
// Alibaba microservice call trace) plus two synthetic UDP traces
// (Microbursts, 8K Video). The raw traces are not redistributable, so
// this package synthesizes workloads that match the published flow-size
// CDFs and — critically for a caching paper — the cross-flow
// destination-reuse characteristics the paper itself documents for each
// trace ("Address reuse characteristics").
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"switchv2p/internal/netaddr"
	"switchv2p/internal/simtime"
	"switchv2p/internal/transport"
)

// Config parameterizes workload generation.
type Config struct {
	// VIPs is the VM population (already placed by vnet).
	VIPs []netaddr.VIP
	// Servers is the number of physical servers (for load calibration).
	Servers int
	// HostLinkBps is the server NIC speed.
	HostLinkBps int64
	// Load is the target average network load as a fraction of aggregate
	// host link capacity (the paper uses 0.30).
	Load float64
	// Duration is the traced interval; flow arrivals are Poisson within it.
	Duration simtime.Duration
	// MaxFlows caps the number of generated flows (0 = uncapped).
	MaxFlows int
	// Seed makes generation deterministic.
	Seed int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case len(c.VIPs) < 2:
		return fmt.Errorf("trace: need at least 2 VMs, have %d", len(c.VIPs))
	case c.Servers <= 0:
		return fmt.Errorf("trace: non-positive server count")
	case c.HostLinkBps <= 0:
		return fmt.Errorf("trace: non-positive link speed")
	case c.Load <= 0 || c.Load > 1:
		return fmt.Errorf("trace: load %v outside (0,1]", c.Load)
	case c.Duration <= 0:
		return fmt.Errorf("trace: non-positive duration")
	}
	return nil
}

// Workload is a generated set of flows ready to feed the transport agent.
type Workload struct {
	Name  string
	Flows []transport.FlowSpec
}

// TotalBytes sums flow sizes (TCP) and datagram payloads (UDP).
func (w *Workload) TotalBytes() int64 {
	var n int64
	for i := range w.Flows {
		f := &w.Flows[i]
		if f.Proto == transport.TCP {
			n += int64(f.Bytes)
		} else {
			n += int64(f.Packets) * int64(f.PacketPayload)
		}
	}
	return n
}

// poissonStarts draws n flow start times from a homogeneous Poisson
// process over the duration (sorted).
func poissonStarts(n int, d simtime.Duration, rng *rand.Rand) []simtime.Time {
	out := make([]simtime.Time, n)
	for i := range out {
		out[i] = simtime.Time(rng.Int63n(int64(d)))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// flowCount calibrates the number of flows so that total offered bytes =
// Load × Servers × HostLinkBps × Duration.
func (c Config) flowCount(meanFlowBytes float64) int {
	budget := c.Load * float64(c.Servers) * float64(c.HostLinkBps) / 8 * c.Duration.Seconds()
	n := int(budget / meanFlowBytes)
	if n < 1 {
		n = 1
	}
	if c.MaxFlows > 0 && n > c.MaxFlows {
		n = c.MaxFlows
	}
	return n
}

// pickSrcNot draws a uniform source VIP different from dst.
func pickSrcNot(vips []netaddr.VIP, dst netaddr.VIP, rng *rand.Rand) netaddr.VIP {
	for {
		src := vips[rng.Intn(len(vips))]
		if src != dst {
			return src
		}
	}
}

// Hadoop generates the Hadoop-like workload: short TCP flows with high
// cross-flow destination reuse (nearly every VM serves as a destination
// in multiple flows), matching the paper's reuse characterization.
func Hadoop(cfg Config) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cdf := HadoopCDF()
	n := cfg.flowCount(cdf.Mean())
	starts := poissonStarts(n, cfg.Duration, rng)
	w := &Workload{Name: "hadoop"}
	for i := 0; i < n; i++ {
		// Destinations uniform over the whole population: with ~10 flows
		// per VM this yields the near-universal ≥2-flow reuse reported.
		dst := cfg.VIPs[rng.Intn(len(cfg.VIPs))]
		src := pickSrcNot(cfg.VIPs, dst, rng)
		w.Flows = append(w.Flows, transport.FlowSpec{
			ID: uint64(i + 1), Src: src, Dst: dst, Proto: transport.TCP,
			Bytes: int(cdf.Sample(rng)) + 1, Start: starts[i],
		})
	}
	return w, nil
}

// WebSearch generates the WebSearch-like workload: mostly heavy TCP
// flows with minimal cross-flow destination sharing (~48% of VMs are a
// destination at least once; few repeat).
func WebSearch(cfg Config) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cdf := WebSearchCDF()
	n := cfg.flowCount(cdf.Mean())
	starts := poissonStarts(n, cfg.Duration, rng)
	// Destination model: mostly fresh VMs (drawn from a shuffled pool
	// capped at 48% of the population — the paper's coverage), with a
	// small reuse probability, reproducing "minimal cross-flow
	// destination sharing".
	pool := append([]netaddr.VIP(nil), cfg.VIPs...)
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	pool = pool[:max(1, len(pool)*48/100)]
	next := 0
	var used []netaddr.VIP
	w := &Workload{Name: "websearch"}
	for i := 0; i < n; i++ {
		var dst netaddr.VIP
		if len(used) > 0 && (next >= len(pool) || rng.Float64() < 0.25) {
			dst = used[rng.Intn(len(used))]
		} else {
			dst = pool[next]
			next++
			used = append(used, dst)
		}
		src := pickSrcNot(cfg.VIPs, dst, rng)
		w.Flows = append(w.Flows, transport.FlowSpec{
			ID: uint64(i + 1), Src: src, Dst: dst, Proto: transport.TCP,
			Bytes: int(cdf.Sample(rng)) + 1, Start: starts[i],
		})
	}
	return w, nil
}

// Alibaba generates the microservice RPC workload: many small TCP
// request flows whose destinations follow a Zipf popularity law — the
// "over 95% of requests processed by 5% of microservices" skew [36] that
// gives the trace its large cross-flow destination reuse.
func Alibaba(cfg Config) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cdf := AlibabaRPCCDF()
	n := cfg.flowCount(cdf.Mean())
	starts := poissonStarts(n, cfg.Duration, rng)
	// Zipf over a random permutation of the VM population; only ~24% of
	// VMs ever appear as destinations, matching the paper.
	perm := rng.Perm(len(cfg.VIPs))
	popSize := len(cfg.VIPs) / 4
	if popSize < 1 {
		popSize = 1
	}
	zipf := rand.NewZipf(rng, 1.3, 4, uint64(popSize-1))
	w := &Workload{Name: "alibaba"}
	for i := 0; i < n; i++ {
		dst := cfg.VIPs[perm[int(zipf.Uint64())]]
		src := pickSrcNot(cfg.VIPs, dst, rng)
		w.Flows = append(w.Flows, transport.FlowSpec{
			ID: uint64(i + 1), Src: src, Dst: dst, Proto: transport.TCP,
			Bytes: int(cdf.Sample(rng)) + 1, Start: starts[i],
		})
	}
	return w, nil
}

// Microbursts generates the synthetic UDP microburst trace: bursts of
// mice datagrams with a 99th-percentile burst duration of ~158 µs and
// moderately skewed destination reuse.
func Microbursts(cfg Config) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	const (
		payload  = 500
		interval = simtime.Microsecond // per-packet spacing within a burst
	)
	// Geometric burst lengths: P99 ≈ 158 µs ⇒ ~158 packets at 1 µs
	// spacing ⇒ mean ≈ 158/ln(100) ≈ 34 packets.
	meanBurst := 34.0
	meanBytes := meanBurst * payload
	n := cfg.flowCount(meanBytes)
	starts := poissonStarts(n, cfg.Duration, rng)
	perm := rng.Perm(len(cfg.VIPs))
	popSize := len(cfg.VIPs) / 2
	if popSize < 1 {
		popSize = 1
	}
	zipf := rand.NewZipf(rng, 1.2, 8, uint64(popSize-1))
	w := &Workload{Name: "microbursts"}
	for i := 0; i < n; i++ {
		dst := cfg.VIPs[perm[int(zipf.Uint64())]]
		src := pickSrcNot(cfg.VIPs, dst, rng)
		burst := 1 + int(math.Round(rng.ExpFloat64()*meanBurst))
		w.Flows = append(w.Flows, transport.FlowSpec{
			ID: uint64(i + 1), Src: src, Dst: dst, Proto: transport.UDP,
			Packets: burst, PacketPayload: payload, Interval: interval,
			Start: starts[i],
		})
	}
	return w, nil
}

// Video generates the synthetic 8K-video trace: 64 constant-bit-rate
// 48 Mbps UDP senders with zero destination reuse.
func Video(cfg Config) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.VIPs) < 128 {
		return nil, fmt.Errorf("trace: video needs >= 128 VMs, have %d", len(cfg.VIPs))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	const (
		senders = 64
		rateBps = 48e6
		payload = 1200
	)
	interval := simtime.Duration(float64(payload*8) / rateBps * float64(simtime.Second))
	packets := int(int64(cfg.Duration) / int64(interval))
	if packets < 1 {
		packets = 1
	}
	// Disjoint sender/receiver pairs: no destination reuse at all.
	perm := rng.Perm(len(cfg.VIPs))
	w := &Workload{Name: "video"}
	for i := 0; i < senders; i++ {
		src := cfg.VIPs[perm[2*i]]
		dst := cfg.VIPs[perm[2*i+1]]
		w.Flows = append(w.Flows, transport.FlowSpec{
			ID: uint64(i + 1), Src: src, Dst: dst, Proto: transport.UDP,
			Packets: packets, PacketPayload: payload, Interval: interval,
			Start: simtime.Time(rng.Int63n(int64(interval))),
		})
	}
	return w, nil
}

// Incast generates the §5.2 VM-migration workload: `senders` UDP sources
// on distinct servers all targeting one destination VM, totalPackets
// datagrams over the duration.
func Incast(dst netaddr.VIP, srcs []netaddr.VIP, totalPackets int, payload int, d simtime.Duration) *Workload {
	w := &Workload{Name: "incast"}
	perSender := totalPackets / len(srcs)
	interval := simtime.Duration(int64(d) / int64(perSender))
	for i, src := range srcs {
		w.Flows = append(w.Flows, transport.FlowSpec{
			ID: uint64(i + 1), Src: src, Dst: dst, Proto: transport.UDP,
			Packets: perSender, PacketPayload: payload, Interval: interval,
			Start: simtime.Time(int64(i) * int64(interval) / int64(len(srcs))),
		})
	}
	return w
}

// Generators maps trace names to constructors, for CLI use.
var Generators = map[string]func(Config) (*Workload, error){
	"hadoop":      Hadoop,
	"websearch":   WebSearch,
	"alibaba":     Alibaba,
	"microbursts": Microbursts,
	"video":       Video,
}
