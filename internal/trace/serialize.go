package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"switchv2p/internal/transport"
)

// Workload files are JSON-lines: a header object followed by one flow
// per line. The format is stable and diff-friendly, so generated
// workloads can be checked in, inspected, and replayed byte-identically.

type fileHeader struct {
	Format string `json:"format"`
	Name   string `json:"name"`
	Flows  int    `json:"flows"`
}

const formatID = "switchv2p-workload/1"

// Write serializes the workload.
func (w *Workload) Write(out io.Writer) error {
	bw := bufio.NewWriter(out)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(fileHeader{Format: formatID, Name: w.Name, Flows: len(w.Flows)}); err != nil {
		return err
	}
	for i := range w.Flows {
		if err := enc.Encode(&w.Flows[i]); err != nil {
			return fmt.Errorf("trace: encoding flow %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadWorkload parses a workload written by Write.
func ReadWorkload(in io.Reader) (*Workload, error) {
	dec := json.NewDecoder(bufio.NewReader(in))
	var hdr fileHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr.Format != formatID {
		return nil, fmt.Errorf("trace: unknown format %q", hdr.Format)
	}
	if hdr.Flows < 0 {
		return nil, fmt.Errorf("trace: negative flow count %d", hdr.Flows)
	}
	w := &Workload{Name: hdr.Name, Flows: make([]transport.FlowSpec, 0, hdr.Flows)}
	for i := 0; i < hdr.Flows; i++ {
		var f transport.FlowSpec
		if err := dec.Decode(&f); err != nil {
			return nil, fmt.Errorf("trace: decoding flow %d: %w", i, err)
		}
		w.Flows = append(w.Flows, f)
	}
	return w, nil
}
