// Package eventq stubs the simulator's event queue so detrange
// testdata can exercise the event-scheduling sink.
package eventq

type Queue struct{ n int }

func (q *Queue) At(t int64, fn func())    { q.n++ }
func (q *Queue) After(d int64, fn func()) { q.n++ }
