// Package clean is the shardstate negative golden: a scheme whose
// per-event state handling is entirely slot-local, annotated, or
// site-waived. No want comments: any diagnostic here is a test
// failure.
package clean

import "simnet"

var _ simnet.Scheme = (*PerSlot)(nil)

type table struct{ n int }

func (t *table) insert(k int64) { t.n++ }

// PerSlot keeps every mutable field indexed by the event's slot, with
// the one aggregate counter annotated.
type PerSlot struct {
	tables []table
	hits   int64 //v2plint:shardlocal aggregate counter, read only after the run
}

func (*PerSlot) Name() string { return "PerSlot" }

func (p *PerSlot) SenderResolve(host int32, vip int64) {
	p.tables[host].insert(vip)
	p.hits++
}

func (p *PerSlot) SwitchArrive(sw int32, vip int64) {
	p.tables[sw].insert(vip)
	local := vip * 2 // locals are never scheme state
	_ = local
	//v2plint:allow shardstate receive-side learning deliberately writes slot 0 from any event
	p.tables[0].insert(vip)
}

// Flush has no slot parameter but also touches no scheme state beyond
// an annotated field, so it stays silent.
func (p *PerSlot) flush() { p.hits = 0 }

func (p *PerSlot) HostMisdeliver(host int32, vip int64) {
	p.flush()
}
