// Package shardstate holds the positive golden cases for the
// shardstate analyzer: per-event mutations of a simnet.Scheme
// implementor's state that are not provably slot-local — unindexed
// writes, writes from slotless helpers, and mutations inside function
// literals (the pending-install pattern).
package shardstate

import "simnet"

var _ simnet.Scheme = (*Cache)(nil)

// lru stands in for the per-host tables: a non-state element type
// judged at its call sites by how the container is indexed.
type lru struct{ n int }

func (l *lru) insert(k int64) { l.n++ }
func (l *lru) len() int       { return l.n }

// Cache implements simnet.Scheme; its mutable fields carry the
// shard-safety obligation.
type Cache struct {
	tables   []lru
	pending  []map[int64]bool
	total    int64 //v2plint:shardlocal aggregate counter, read only after the run
	installs int64 //v2plint:shardlocal install tally is deliberately global; reduced post-run
	skew     int64
}

func (*Cache) Name() string { return "Cache" }

// after stands in for the event queue's deferred execution.
func after(fn func()) { fn() }

// SenderResolve is a per-event entry point; host is its slot parameter.
func (c *Cache) SenderResolve(host int32, vip int64) {
	c.tables[host].insert(vip) // silent: indexed by the slot parameter
	c.total++                  // silent: annotated field
	c.skew++                   // want `per-event code Cache\.SenderResolve mutates scheme state c\.skew without indexing by the event's slot parameter host`
	c.schedule(host, vip)
}

// schedule is reachable from the entry point, so its mutations carry
// the same obligation; the closure handed to after runs in whatever
// slot context fires it.
func (c *Cache) schedule(host int32, vip int64) {
	if c.pending[host] == nil {
		c.pending[host] = map[int64]bool{} // silent: indexed by the slot parameter
	}
	c.pending[host][vip] = true // silent: indexed by the slot parameter
	after(func() {
		delete(c.pending[host], vip) // want `per-event code Cache\.schedule mutates scheme state c\.pending\[host\] from a function literal`
		c.tables[host].insert(vip)   // want `per-event code Cache\.schedule mutates scheme state c\.tables\[host\] from a function literal`
		c.installs++                 // silent: the annotation also waives closure mutations
	})
}

// SwitchArrive indexes a sibling slot's table: cross-slot.
func (c *Cache) SwitchArrive(sw int32, vip int64) {
	c.tables[0].insert(vip) // want `per-event code Cache\.SwitchArrive mutates scheme state c\.tables\[0\] without indexing by the event's slot parameter sw`
	if c.tables[sw].len() > 8 {
		c.tables[sw].insert(vip) // silent: indexed by the slot parameter
	}
}

// HostMisdeliver delegates to a helper that has no slot parameter.
func (c *Cache) HostMisdeliver(host int32, vip int64) {
	c.note(vip)
}

// note cannot prove slot-locality: it has no int32 parameter.
func (c *Cache) note(vip int64) {
	c.skew++ // want `per-event code Cache\.note mutates scheme state c\.skew but has no int32 slot parameter to index it by`
}

//v2plint:shardlocal
// want-above `//v2plint:shardlocal needs a reason: why is cross-slot state safe here\?`
