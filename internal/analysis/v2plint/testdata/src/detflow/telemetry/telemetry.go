// Package telemetry stubs the simulator's telemetry registry: detflow
// classifies method arguments and field writes of telemetry-package
// types as telemetry-output sinks by the package's base name.
package telemetry

// Registry collects named counters.
type Registry struct {
	Last int64
	vals map[string]int64
}

// Observe records one sample.
func (r *Registry) Observe(name string, v int64) {
	if r.vals == nil {
		r.vals = map[string]int64{}
	}
	r.vals[name] += v
}
