// Package clean is the detflow negative golden: flows the analyzer
// must stay silent on — canonicalized map order, killed taint, and an
// explicitly waived deliberate flow. No want comments: any diagnostic
// here is a test failure.
package clean

import (
	"sort"
	"time"

	"eventq"
)

// SortedKeys is the canonical collect-and-sort idiom: sorting removes
// the dependence on discovery order, so the scheduled keys are clean.
func SortedKeys(q *eventq.Queue, m map[int64]int64) {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		q.At(k, func() {})
	}
}

// Rekey stores map-iteration keys back into a map: membership does not
// depend on visit order, so the store is canonical.
func Rekey(dst, src map[int64]int64) {
	for k, v := range src {
		dst[k] = v
	}
}

// Reassign shows the flow-sensitive kill: overwriting with a clean
// value ends the taint before the sink.
func Reassign(q *eventq.Queue) {
	var t0 time.Time
	d := int64(time.Since(t0))
	d = 42
	q.After(d, func() {})
}

// Waived is a deliberate wall-clock flow with a reasoned waiver.
func Waived(q *eventq.Queue) {
	var t0 time.Time
	q.After(int64(time.Since(t0)), func() {}) //v2plint:allow detflow deliberate wall-clock pacing in a bench-only helper
}
