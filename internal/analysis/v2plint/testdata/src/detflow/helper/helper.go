// Package helper provides cross-package taint carriers for the detflow
// golden tests: the taint must travel through this package's exported
// summaries (retTaint, paramRet) to reach the sinks in the main
// package, pinning the multi-hop witness chains.
package helper

import "time"

// Stamp returns a wall-clock reading; callers inherit the taint through
// the retTaint summary.
func Stamp() int64 {
	var t0 time.Time
	return int64(time.Since(t0))
}

// Scale passes its parameter through to its result (paramRet summary):
// taint entering arg 0 leaves through the return value.
func Scale(v int64) int64 { return v * 2 }
