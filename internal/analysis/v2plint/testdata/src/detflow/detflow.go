// Package detflow holds the positive golden cases for the detflow
// analyzer: values derived from the wall clock, the global math/rand
// generator, map iteration order, and pointer identity flowing into
// each of the four sink classes, directly and through multi-hop
// cross-package call chains.
package detflow

import (
	"math/rand"
	"time"

	"detflow/helper"
	"detflow/telemetry"
	"eventq"
	"simnet"
)

var _ simnet.Scheme = (*Cache)(nil)

// Cache implements simnet.Scheme, so its fields are scheme cache state.
type Cache struct {
	table map[int64]int64
	seq   []int64
}

func (*Cache) Name() string { return "Cache" }

// Direct source → sink: a wall-clock reading scheduled as an event key.
func Direct(q *eventq.Queue) {
	var t0 time.Time
	q.After(int64(time.Since(t0)), func() {}) // want `value derived from the wall clock flows into a scheduled event key`
}

// jitter buries the cross-package source one call deeper: the witness
// chain must name both helper.Stamp and detflow.jitter.
func jitter() int64 { return helper.Stamp() % 97 }

// Schedule is the multi-hop cross-package case.
func Schedule(q *eventq.Queue) {
	d := jitter()
	q.After(d, func() {}) // want `time\.Since → helper\.Stamp → detflow\.jitter → detflow\.Schedule → q\.After arg 1`
}

// schedule reaches the sink through a parameter (paramSink summary);
// the finding lands at the tainted call site, not here.
func schedule(q *eventq.Queue, key int64) {
	q.At(key, func() {})
}

// Replay hands a global-rand draw to the sink-reaching parameter.
func Replay(q *eventq.Queue) {
	r := rand.Int63()
	schedule(q, r) // want `value derived from the global math/rand generator flows into a scheduled event key: rand\.Int63 → detflow\.Replay → detflow\.schedule → q\.At arg 1`
}

// Roundtrip launders the draw through a pass-through helper in another
// package; paramRet keeps the taint alive across the hop.
func Roundtrip(q *eventq.Queue) {
	r := helper.Scale(rand.Int63())
	q.At(r, func() {}) // want `value derived from the global math/rand generator flows into a scheduled event key`
}

// Learn stores a rand-derived value into scheme cache state.
func (c *Cache) Learn(vip int64) {
	c.table[vip] = rand.Int63() // want `value derived from the global math/rand generator flows into scheme cache state`
}

// Absorb leaks map iteration order into scheme state: the visit order
// of src decides seq's contents. (Storing k back into a map would be
// canonical — order-independent — and is the clean package's case.)
func (c *Cache) Absorb(src map[int64]int64) {
	for k := range src {
		c.seq = append(c.seq, k) // want `value derived from map iteration order flows into scheme cache state`
	}
}

// RunReport matches the *Report naming convention, making its fields
// report-field sinks.
type RunReport struct {
	Seed int64
}

// Fill seeds the report from the global generator.
func Fill(r *RunReport) {
	r.Seed = rand.Int63() // want `value derived from the global math/rand generator flows into a report field`
}

// Emit feeds a wall-clock reading to a telemetry method.
func Emit(reg *telemetry.Registry) {
	var t0 time.Time
	reg.Observe("wall", int64(time.Since(t0))) // want `value derived from the wall clock flows into telemetry output`
}

// Record writes a wall-clock reading into a telemetry-owned field.
func Record(reg *telemetry.Registry) {
	var t0 time.Time
	reg.Last = int64(time.Since(t0)) // want `value derived from the wall clock flows into telemetry output`
}
