// Package telemetry stubs the repo's telemetry types for the planpure
// goldens: reading these (fields or methods) from a planner is a
// finding.
package telemetry

type Gauge struct {
	Cur int64
}

func (g *Gauge) Value() int64 { return g.Cur }

func (g *Gauge) Set(v int64) { g.Cur = v }
