// Package planpure seeds planner-purity violations: annotated planner
// roots reading the wall clock, global math/rand, and telemetry state,
// directly and through helpers.
package planpure

import (
	"math/rand"
	"time"

	"planpure/telemetry"
)

type world struct {
	Seed  int64
	Depth *telemetry.Gauge
}

// hedge reads the wall clock one hop from the roots.
func hedge() int64 {
	return time.Now().UnixNano()
}

// jitter draws from the global generator one hop from the roots.
func jitter() int {
	return rand.Intn(8)
}

//v2plint:planpure
func planDirect(w *world) int64 {
	t := time.Now().UnixNano() // want `planner function planDirect reads the wall clock \(time\.Now\); planning must be a pure function of \(spec, seed\)`
	d := w.Depth.Cur           // want `planner function planDirect reads mutable run state \(read of telemetry\.Gauge\.Cur\); planning must be a pure function of \(spec, seed\)`
	return t + d
}

//v2plint:planpure
func planViaMethod(w *world) int64 {
	return w.Depth.Value() // want `planner function planViaMethod reads mutable run state \(call to telemetry\.Gauge\.Value\); planning must be a pure function of \(spec, seed\)`
}

//v2plint:planpure
func planTransitive(w *world) int64 {
	h := hedge()  // want `planner function planTransitive reaches a wall-clock read: planTransitive → planpure\.hedge → time\.Now; planning must be a pure function of \(spec, seed\)`
	j := jitter() // want `planner function planTransitive reaches the global math/rand generator: planTransitive → planpure\.jitter → rand\.Intn; planning must be a pure function of \(spec, seed\)`
	return h + int64(j)
}

// planSeeded is the sanctioned pattern: a generator seeded from the
// spec. Constructors and *rand.Rand methods are not global-rand use.
//
//v2plint:planpure
func planSeeded(w *world) int {
	rng := rand.New(rand.NewSource(w.Seed))
	return rng.Intn(32)
}

type agent struct{ n int }

func (a *agent) AddFlow(int) { a.n++ }

// planMaterialize may mutate the world it is building — registering
// flows is the plan's product, not a read of run state.
//
//v2plint:planpure
func planMaterialize(a *agent) {
	for i := 0; i < 4; i++ {
		a.AddFlow(i)
	}
}

// planWaived shows a reason-carrying waiver on a reaching call.
//
//v2plint:planpure
func planWaived() int64 {
	//v2plint:allow planpure startup banner timestamp, not used in any plan decision
	return hedge()
}

// build is NOT a planner root: the same reads are fine elsewhere.
func build(w *world) int64 {
	return w.Depth.Value() + hedge()
}
