// Package scenario proves planpure's known planner entry points are
// checked even without a //v2plint:planpure annotation (deleting an
// annotation cannot un-enforce the contract).
package scenario

import "time"

// planFaults is in the known planner set despite carrying no annotation.
func planFaults() int64 {
	return time.Now().UnixNano() // want `planner function planFaults reads the wall clock \(time\.Now\); planning must be a pure function of \(spec, seed\)`
}

// helper is not a known root and not annotated: silent.
func helper() int64 {
	return time.Now().UnixNano()
}
