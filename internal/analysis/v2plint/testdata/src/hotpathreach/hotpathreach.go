// Package hotpathreach seeds transitive hot-path contract violations:
// the effects live in unannotated helpers (or another package, or
// behind an interface), and the findings land at the hot root's call
// site with the witness chain.
package hotpathreach

import (
	"fmt"
	"time"

	"hotpathreach/helper"
)

// format allocates via fmt one hop from the root.
func format(id int) string {
	return fmt.Sprint(id)
}

// mid adds a second hop before the cross-package allocation.
func mid(n int) []byte {
	return helper.Grow(n)
}

// clock reads the wall clock.
func clock() int64 {
	return time.Now().UnixNano()
}

//v2plint:hotpath
func forward(id int, emit func(string)) {
	s := format(id) // want `hot-path function forward reaches fmt formatting: forward → hotpathreach\.format → fmt\.Sprint`
	buf := mid(id)  // want `hot-path function forward reaches a heap allocation: forward → hotpathreach\.mid → helper\.Grow → make`
	emit(s)         // want `hot-path function forward makes a dynamic call through emit`
	_ = buf
}

//v2plint:hotpath
func stamp() int64 {
	return clock() // want `hot-path function stamp reaches a wall-clock read: stamp → hotpathreach\.clock → time\.Now`
}

// encoder dispatch: the interface call resolves against every concrete
// implementation the Program has seen; only the impure one reports.
type encoder interface{ Encode(int) string }

type jsonEnc struct{}

func (jsonEnc) Encode(n int) string { return fmt.Sprint(n) }

type nullEnc struct{}

func (nullEnc) Encode(int) string { return "" }

//v2plint:hotpath
func forwardVia(e encoder, n int) string {
	return e.Encode(n) // want `hot-path function forwardVia reaches fmt formatting: forwardVia → hotpathreach\.jsonEnc\.Encode → fmt\.Sprint`
}

// subRoot is itself a hot root: its body is hotpathalloc's concern, and
// callers do not inherit its effects (assume/guarantee), so the edge
// below is silent.
//
//v2plint:hotpath
func subRoot(n int) []byte {
	return make([]byte, n)
}

//v2plint:hotpath
func forwardPooled(n int) {
	_ = subRoot(n)
}

// forwardWaived shows a reason-carrying waiver at the reaching call.
//
//v2plint:hotpath
func forwardWaived(id int) string {
	//v2plint:allow hotpathreach cold diagnostics branch, never taken in measured runs
	return format(id)
}

// cold is NOT a hot root: reaching allocating helpers is fine here.
func cold(id int) string {
	return format(id)
}
