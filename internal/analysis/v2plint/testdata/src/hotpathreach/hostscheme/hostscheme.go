// Package hostscheme seeds the host-cache scheme family's hot-path
// shape: the per-packet resolve root must not reach the install
// machinery's allocations through unannotated helpers, while edges into
// annotated hot sub-roots (the table insert) are assume/guarantee
// silent.
package hostscheme

type tier struct {
	pending map[uint64]bool
	slots   []uint64
	used    int
}

// scheduleInstall allocates the pending set lazily; the allocation is
// silent here and reported at the hot root that reaches it.
func (t *tier) scheduleInstall(flow uint64) {
	if t.pending == nil {
		t.pending = make(map[uint64]bool)
	}
	t.pending[flow] = true
}

// insert is itself a hot root: its body is hotpathalloc's concern and
// callers do not inherit its effects (assume/guarantee).
//
//v2plint:hotpath
func (t *tier) insert(flow uint64) {
	if t.used < len(t.slots) {
		t.slots[t.used] = flow
		t.used++
	}
}

//v2plint:hotpath
func (t *tier) resolve(flow uint64) bool {
	if t.pending[flow] {
		return false
	}
	t.scheduleInstall(flow) // want `hot-path function tier\.resolve reaches a heap allocation: tier\.resolve → hostscheme\.tier\.scheduleInstall → make`
	return false
}

// learnAtToR snoops an arriving packet into the table through the hot
// insert sub-root. Silent.
//
//v2plint:hotpath
func (t *tier) learnAtToR(flow uint64) {
	t.insert(flow)
}

// rebuild is NOT a hot root: control-plane table rebuilds may allocate.
func (t *tier) rebuild(n int) {
	t.slots = make([]uint64, n)
	t.used = 0
}
