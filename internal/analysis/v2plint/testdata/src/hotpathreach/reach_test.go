package hotpathreach

// Test files sit outside the call graph: even an annotated root here is
// exempt from the contract.

//v2plint:hotpath
func testOnlyRoot(id int) string {
	return format(id)
}
