// Package helper is the cross-package leg of the hotpathreach goldens:
// an allocating function reached from a hot root two hops and one
// package boundary away.
package helper

// Grow allocates; silent here, reported at the hot root that reaches it.
func Grow(n int) []byte {
	return make([]byte, n)
}
