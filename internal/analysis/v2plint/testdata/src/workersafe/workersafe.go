// Package workersafe seeds shard-safety violations: worker goroutines
// touching captured and package-level variables with and without the
// sanctioned synchronization disciplines.
package workersafe

import (
	"sync"
	"sync/atomic"
)

// fanOutUnprotected writes captured slots and a shared accumulator with
// no synchronization at all.
func fanOutUnprotected(n int) ([]int, int) {
	out := make([]int, n)
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = i * i // want `worker goroutine writes shared variable out without synchronization`
			total += i     // want `worker goroutine writes shared variable total without synchronization`
		}(i)
	}
	wg.Wait()
	return out, total
}

// progressRead: a read of a variable some worker writes is as racy as
// the write; a read of a never-written capture (n) is fine.
func progressRead(n int) int {
	done := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			done++         // want `worker goroutine writes shared variable done without synchronization`
			if done == n { // want `worker goroutine reads shared variable done without synchronization`
				return
			}
		}()
	}
	wg.Wait()
	return done
}

// fanOutProtected covers the sanctioned disciplines: a structurally
// held mutex, defer-unlock, an atomic call on a captured address, and
// channel hand-off. No findings.
func fanOutProtected(n int) (int, int64) {
	var mu sync.Mutex
	sum := 0
	var hits int64
	results := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mu.Lock()
			sum += i
			mu.Unlock()
			atomic.AddInt64(&hits, 1)
			results <- i
		}(i)
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	t := 0
	for r := range results {
		t += r
	}
	return sum + t, hits
}

// deferUnlock keeps the lock held to the end of the goroutine.
func deferUnlock(n int) int {
	var mu sync.Mutex
	sum := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mu.Lock()
			defer mu.Unlock()
			sum += i
		}(i)
	}
	wg.Wait()
	return sum
}

// syncTyped: variables whose type is itself a sync primitive are the
// synchronization; method calls on them are fine.
func syncTyped(n int) int64 {
	var count atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			count.Add(1)
		}()
	}
	wg.Wait()
	return count.Load()
}

// fanOutWorkerLocal uses the disjoint-index pattern the analyzer cannot
// prove; the reason-carrying annotation records why it is safe.
func fanOutWorkerLocal(n int) []int {
	out := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			//v2plint:workerlocal each goroutine writes only the slot for its own index i
			out[i] = i * i
		}(i)
	}
	wg.Wait()
	return out
}

// bareAnnotation: a workerlocal with no reason is itself a finding and
// waives nothing.
func bareAnnotation(n int) int {
	x := 0
	ch := make(chan struct{})
	go func() {
		defer close(ch)
		//v2plint:workerlocal
		// want-above `//v2plint:workerlocal needs a reason`
		x = n // want `worker goroutine writes shared variable x without synchronization`
	}()
	<-ch
	return x
}

// pkgCounter: package-level state is shared state too.
var pkgCounter int

func pkgLevelWrite() {
	ch := make(chan struct{})
	go func() {
		pkgCounter++ // want `worker goroutine writes shared variable pkgCounter without synchronization`
		close(ch)
	}()
	<-ch
}

// namedSpawn: goroutines spawned as `go namedFunc()` are outside the
// contract (documented limit) — the body is not local to the spawn.
var helperState int

func helperWorker() { helperState++ }

func namedSpawn() {
	go helperWorker()
}
