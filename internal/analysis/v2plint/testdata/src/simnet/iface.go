package simnet

// Scheme stands in for the translation-scheme interface that
// schemecomplete audits implementors of.
type Scheme interface {
	Name() string
}

// CacheFlusher is the fault-recovery flush hook every Scheme
// implementor must also provide.
type CacheFlusher interface {
	FlushCache(sw int32)
}
