// Package simnet stands in for a simulation package under the
// wallclock contract (matched by package-path base name).
package simnet

import "time"

func measure() time.Duration {
	start := time.Now()      // want `time\.Now reads the wall clock inside simulation package simnet`
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func deadline() time.Time {
	_ = time.Until(time.Unix(0, 0)) // want `time\.Until reads the wall clock`
	return time.Unix(0, 0)          // constructing times is fine, only clock reads are flagged
}

func profiled() time.Time {
	//v2plint:allow wallclock profiling hook
	return time.Now()
}

func inline() time.Time {
	return time.Now() //v2plint:allow wallclock same-line annotation
}
