package simnet

import (
	"testing"
	"time"
)

// Test files are exempt from the wallclock contract: timing a test is
// not simulation state.
func TestMeasureWallTime(t *testing.T) {
	start := time.Now()
	if time.Since(start) < 0 {
		t.Fatal("clock went backwards")
	}
}
