// Package allowreason seeds //v2plint:allow annotations in every
// arity: only waivers missing a justification are findings. The
// diagnostics land on the annotation's own line, so the want comments
// use the harness's want-above form from the next line.
package allowreason

// justified carries an analyzer name and a reason. Silent.
func justified() {
	//v2plint:allow wallclock host-time stub for the waiver-grammar test
}

// bare names an analyzer but gives no reason.
func bare() {
	//v2plint:allow detrange
	// want-above `waiver names analyzers but no reason; append a justification`
}

// empty names nothing at all.
func empty() {
	//v2plint:allow
	// want-above `waiver names no analyzer and no reason`
}

// selfWaive proves a waiver cannot excuse the allowreason finding it
// itself triggers.
func selfWaive() {
	//v2plint:allow allowreason
	// want-above `waiver names analyzers but no reason`
}
