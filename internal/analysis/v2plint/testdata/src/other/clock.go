// Package other is outside the simulation-package set, so wall-clock
// reads are allowed (e.g. cmd/ front-ends timing a whole run).
package other

import "time"

func elapsed() time.Duration {
	start := time.Now()
	return time.Since(start)
}
