// Package simtime stubs the simulator's clock types (matched by
// package-path base name) for the simtimeunits testdata.
package simtime

import "time"

type Time int64

type Duration int64

// FromStd is the sanctioned wall-to-simulated conversion.
func FromStd(d time.Duration) Duration { return Duration(d.Nanoseconds()) }

// Std is the sanctioned simulated-to-wall conversion.
func (d Duration) Std() time.Duration { return time.Duration(d) }

func (t Time) Std() time.Duration { return time.Duration(t) }
