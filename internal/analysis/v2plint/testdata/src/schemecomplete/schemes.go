// Package schemecomplete seeds Scheme implementors with and without
// the CacheFlusher method the fault model requires.
package schemecomplete

import "simnet"

// Good implements both Scheme and CacheFlusher. Silent.
type Good struct{}

func (*Good) Name() string     { return "good" }
func (*Good) FlushCache(int32) {}

// Bad implements Scheme but not CacheFlusher.
type Bad struct{} // want `Bad implements simnet\.Scheme but not simnet\.CacheFlusher`

func (*Bad) Name() string { return "bad" }

// Unrelated implements neither interface. Silent.
type Unrelated struct{ n int }

// Embeds satisfies both interfaces through promotion from Good. Silent.
type Embeds struct{ Good }

// SchemeIface is an interface, not a concrete implementor. Silent.
type SchemeIface interface {
	simnet.Scheme
}

var (
	_ simnet.Scheme       = (*Good)(nil)
	_ simnet.CacheFlusher = (*Good)(nil)
	_ simnet.Scheme       = (*Bad)(nil)
	_ simnet.Scheme       = (*Embeds)(nil)
)
