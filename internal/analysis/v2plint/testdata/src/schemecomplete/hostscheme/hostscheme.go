// Package hostscheme seeds the host-tier scheme-family shapes the
// schemecomplete contract must handle: a host-only scheme whose flush
// hook is an explicit no-op (host state survives switch failures), a
// hybrid that inherits FlushCache from its embedded switch tier, and a
// host scheme that forgot the hook.
package hostscheme

import "simnet"

// hostTier is shared host-resident state. It has no Name method, so it
// is not a Scheme and is never audited on its own.
type hostTier struct{ tables []int }

// HostCache keeps all translation state host-resident: a switch failure
// flushes nothing, and the explicit no-op records that decision. Silent.
type HostCache struct{ hostTier }

func (*HostCache) Name() string     { return "hostcache" }
func (*HostCache) FlushCache(int32) {}

// SwitchTier is the in-switch half of the hybrid.
type SwitchTier struct{}

func (*SwitchTier) Name() string     { return "switchtier" }
func (*SwitchTier) FlushCache(int32) {}

// HostToR satisfies both interfaces through promotion from the embedded
// switch tier. Silent.
type HostToR struct {
	*SwitchTier
	hostTier
}

// HostBroken implements Scheme but forgot the flush hook.
type HostBroken struct{ hostTier } // want `HostBroken implements simnet\.Scheme but not simnet\.CacheFlusher`

func (*HostBroken) Name() string { return "hostbroken" }

var (
	_ simnet.Scheme       = (*HostCache)(nil)
	_ simnet.CacheFlusher = (*HostCache)(nil)
	_ simnet.Scheme       = (*HostToR)(nil)
	_ simnet.CacheFlusher = (*HostToR)(nil)
	_ simnet.Scheme       = (*HostBroken)(nil)
)
