// Package simnet stubs the sharded engine's ownership contract for the
// shardowner analyzer: sharding fields may be touched only by *sharding
// methods or by functions whose doc carries a reasoned
// //v2plint:shardbarrier annotation.
package simnet

type queue struct{ now int64 }

type sharding struct {
	now   int64
	qs    []*queue
	views []*Engine
	dom   []int32
}

type Engine struct {
	shard *sharding
	dom   int32
}

// build is a *sharding method: unrestricted access to its own fields.
func (sh *sharding) build() {
	sh.now = 0
	for range sh.qs {
		sh.views = append(sh.views, nil)
	}
}

// runWindow shows that worker closures inside a *sharding method
// inherit the method's context. Silent.
func (sh *sharding) runWindow(end int64) {
	fn := func() { sh.now = end }
	fn()
}

// Sharded tests the Engine's pointer — a field of Engine, not of
// sharding. Silent.
func (e *Engine) Sharded() bool { return e.shard != nil }

// Now reads the barrier clock from an Engine method with no annotation:
// the contract violation the analyzer exists for.
func (e *Engine) Now() int64 {
	if e.shard != nil {
		return e.shard.now // want `access to sharding field now outside a \*sharding method`
	}
	return 0
}

// hostQ reads the immutable tables and says so.
//
//v2plint:shardbarrier reads only tables immutable after setup
func (e *Engine) hostQ(host int32) *queue {
	return e.shard.qs[e.shard.dom[host]]
}

// drive calls sharding methods — calls are judged at the callee, never
// at the call site. Silent.
func (e *Engine) drive() {
	e.shard.build()
	e.shard.runWindow(1)
}

// leakThroughLocal shows the local-alias case: binding the pointer to a
// variable does not launder the field access.
func (e *Engine) leakThroughLocal() int {
	sh := e.shard
	if sh == nil {
		return 0
	}
	return len(sh.views) // want `access to sharding field views outside a \*sharding method`
}

// bareAnnotation carries no reason: itself a finding wherever it
// appears, and it waives nothing.
func bareAnnotation(e *Engine) {
	//v2plint:shardbarrier
	// want-above `//v2plint:shardbarrier needs a reason`
	e.shard.now++ // want `access to sharding field now outside a \*sharding method`
}
