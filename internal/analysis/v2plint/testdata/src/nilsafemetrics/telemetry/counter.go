// Package telemetry stubs metric handles for the nilsafemetrics
// contract: every exported pointer-receiver method must begin with a
// nil-receiver guard so a nil handle is a valid no-op.
package telemetry

type Counter struct {
	n    int64
	name string
}

// Inc carries the canonical guard. Silent.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n++
}

// Value guards with the inverted polarity. Silent.
func (c *Counter) Value() int64 {
	if c != nil {
		return c.n
	}
	return 0
}

// AddPositive guards inside a compound condition. Silent.
func (c *Counter) AddPositive(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.n += n
}

// Add is missing its guard; the fix inserts a bare return.
func (c *Counter) Add(n int64) { // want `exported method Counter\.Add must start with a nil-receiver guard`
	c.n += n
}

// Name is missing its guard; the fix must return the string zero value.
func (c *Counter) Name() string { // want `exported method Counter\.Name must start with a nil-receiver guard`
	return c.name
}

// reset is unexported: exempt.
func (c *Counter) reset() {
	c.n = 0
}

// Snapshot has a value receiver: exempt (a nil pointer can never be
// its receiver).
func (c Counter) Snapshot() int64 {
	return c.n
}

// Reset has an unnamed receiver, so there is nothing to guard: exempt.
func (*Counter) Reset() {
	noop()
}

// Zero has an empty body: exempt.
func (c *Counter) Zero() {}

func noop() {}
