// Package annotated proves //v2plint:nilsafe extends the nil-safety
// contract to types outside the telemetry package, and only to them.
package annotated

// Tracker counts events; a nil *Tracker must be a no-op.
//
//v2plint:nilsafe
type Tracker struct{ n int }

// Bump is missing its guard.
func (t *Tracker) Bump() { // want `exported method Tracker\.Bump must start with a nil-receiver guard`
	t.n++
}

// Count is guarded. Silent.
func (t *Tracker) Count() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Plain is not annotated, so its methods are outside the contract.
type Plain struct{ n int }

// Grow needs no guard. Silent.
func (p *Plain) Grow() {
	p.n++
}
