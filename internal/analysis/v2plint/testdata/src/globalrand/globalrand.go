package globalrand

import "math/rand"

// Flagging cases: the package-level functions draw from the shared
// global generator.

func roll() int {
	return rand.Intn(6) // want `rand\.Intn draws from the shared global generator`
}

func jitter() float64 {
	return rand.Float64() // want `rand\.Float64 draws from the shared global generator`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle draws from the shared global generator`
}

// Non-flagging cases: constructing and using an explicit generator.

func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func draw(rng *rand.Rand) int {
	return rng.Intn(6)
}

func zipf(rng *rand.Rand) *rand.Zipf {
	return rand.NewZipf(rng, 1.3, 4, 100)
}

// The escape hatch waives a finding.
func waived() int {
	//v2plint:allow globalrand startup-only, order independent
	return rand.Int()
}
