package globalrand

import (
	"math/rand"
	"testing"
)

// Test files are exempt: global rand in a test cannot perturb a
// simulation run.
func TestGlobalRandAllowedInTests(t *testing.T) {
	if rand.Intn(6) > 5 {
		t.Fatal("impossible")
	}
}
