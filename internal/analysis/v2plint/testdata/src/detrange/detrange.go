package detrange

import (
	"fmt"
	"sort"

	"eventq"
)

// Flagging cases: the loop body feeds an ordering-sensitive sink.

func appendValues(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `nondeterministic iteration over map m feeds an append`
		out = append(out, v)
	}
	return out
}

func printEntries(m map[string]int) {
	for k, v := range m { // want `feeds fmt output`
		fmt.Println(k, v)
	}
}

func sumFloats(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `feeds a floating-point accumulation`
		total += v
	}
	return total
}

func scheduleAll(q *eventq.Queue, m map[string]int64) {
	for _, t := range m { // want `feeds event scheduling \(eventq\.At\)`
		q.At(t, func() {})
	}
}

func nestedSink(m map[string][]int) []int {
	var out []int
	for _, vs := range m { // want `feeds an append`
		for _, v := range vs {
			out = append(out, v)
		}
	}
	return out
}

// Non-flagging cases.

// The canonical deterministic idiom: collect the keys, sort, iterate.
func sortedIteration(m map[string]int) []int {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []int
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// sort.Slice and helper functions whose name contains "sort" also
// count as sorting the collected keys.
func sortedViaSlice(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func sortKeysHelper(ks []int) {
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
}

func sortedViaHelper(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortKeysHelper(keys)
	return keys
}

// Ranging a slice is fine.
func sliceRange(s []int) []int {
	var out []int
	for _, v := range s {
		out = append(out, v)
	}
	return out
}

// A map range without an ordering-sensitive sink is fine.
func countOnly(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// The escape hatch waives a finding.
func waived(m map[string]int) []int {
	var out []int
	//v2plint:allow detrange order provably irrelevant here
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
