package detrange

import (
	"encoding/csv"
	"encoding/json"
	"io"
)

func emitCSV(w *csv.Writer, m map[string]string) {
	for k, v := range m { // want `feeds CSV output`
		w.Write([]string{k, v})
	}
}

func emitJSON(w io.Writer, m map[string]int) {
	enc := json.NewEncoder(w)
	for k := range m { // want `feeds JSON output`
		enc.Encode(k)
	}
}
