// Package simnet stubs the engine fault model for the faultgate
// analyzer: forwarding-path reads of fault state must be dominated by
// an activeFaults check, loss PRNG use by a loss-window check, and
// calls into fault-path helpers by an activeFaults check.
package simnet

type prng struct{}

func (p *prng) Float64() float64 { return 0 }

type packet struct{ dst int }

type Engine struct {
	activeFaults int
	swDown       []bool
	gwDown       []bool
	lossRand     *prng
}

func (e *Engine) ActiveFaults() int { return e.activeFaults }

type link struct {
	e         *Engine
	faultDown bool
	swFaults  uint8
	loss      float64
}

// switchArrive is a known forwarding entry point reading fault state
// without a gate; the suggested fix prefixes the condition.
func (e *Engine) switchArrive(sw int, p *packet) {
	if e.swDown[sw] { // want `read of fault state e\.swDown must be dominated by an activeFaults check`
		return
	}
}

// forwardFromSwitch shows both gated forms: on the right of && and
// inside a nested if under an ActiveFaults() call. Silent.
func (e *Engine) forwardFromSwitch(sw int, p *packet) {
	if e.activeFaults > 0 && e.swDown[sw] {
		return
	}
	if e.ActiveFaults() > 0 {
		if e.gwDown[p.dst] {
			return
		}
	}
}

// ecmpForward reads two link fault fields in one ungated || condition;
// the fix must wrap the whole condition in parentheses.
func (e *Engine) ecmpForward(l *link, p *packet) {
	if l.faultDown || l.swFaults != 0 { // want `read of fault state l\.faultDown must be dominated by an activeFaults check` `read of fault state l\.swFaults must be dominated by an activeFaults check`
		return
	}
}

// enqueue exercises the loss PRNG rule: gated by a loss-window read is
// fine, ungated is a finding (with no machine fix — only the
// surrounding code can name the right loss window).
func (l *link) enqueue(p *packet) {
	if l.loss > 0 {
		_ = l.e.lossRand.Float64()
	}
	_ = l.e.lossRand.Float64() // want `use of loss PRNG l\.e\.lossRand must be dominated by a loss-window or activeFaults check`
}

// rerouteLocal is an annotated fault-path helper: it IS the gated slow
// path, so its own fault-state reads are exempt.
//
//v2plint:faultpath
func (e *Engine) rerouteLocal(p *packet) {
	if e.swDown[p.dst] {
		return
	}
}

// forward joins the hot path by annotation and must gate its calls
// into fault-path helpers.
//
//v2plint:hotpath
func (e *Engine) forward(p *packet) {
	e.rerouteLocal(p) // want `call to fault-path helper Engine\.rerouteLocal from Engine\.forward must be dominated by an activeFaults check`
	if e.activeFaults > 0 {
		e.rerouteLocal(p)
	}
}

// rerouteGateway is exempt by the known fault-path set even without an
// annotation: deleting the annotation cannot change the contract.
func (e *Engine) rerouteGateway(p *packet) {
	if e.gwDown[p.dst] {
		return
	}
}

// gatewayProcess proves closures are their own scope: the fault-state
// read runs later, under whatever gate the closure's caller holds.
func (e *Engine) gatewayProcess(p *packet) {
	cb := func() bool { return e.gwDown[p.dst] }
	_ = cb
}

// setFault is a mutator, not a forwarding function: unchecked.
func (e *Engine) setFault(sw int) {
	e.swDown[sw] = true
	e.activeFaults++
}
