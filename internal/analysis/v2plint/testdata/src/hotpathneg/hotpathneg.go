// Package hotpathneg is the negative case for the hotpath annotation's
// scoping: it contains every construct hotpathalloc flags, but no
// function here is annotated (one marker is deliberately detached from
// its declaration by a blank line, so it annotates nothing). The
// analyzer must report zero diagnostics for this package.
package hotpathneg

func plain(n int, sink func(any)) {
	_ = func() int { return n }
	_ = map[int]bool{}
	_ = []int{n}
	_ = make([]byte, n)
	sink(n)
}

// The marker must be part of the doc comment block directly above the
// declaration; a detached comment followed by a blank line annotates
// nothing.

//v2plint:hotpath

func detached(n int) []byte {
	return make([]byte, n)
}
