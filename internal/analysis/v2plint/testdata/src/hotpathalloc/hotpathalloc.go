// Package hotpathalloc seeds allocation-contract violations inside
// annotated hot-path functions; the same constructs in unannotated
// functions must stay silent.
package hotpathalloc

import "fmt"

type record struct {
	id  int
	buf []byte
}

type pool struct {
	free []*record
	name string
}

// hot is under the contract: every per-call allocation is a finding.
//
//v2plint:hotpath
func (p *pool) hot(n int, sink func(any)) {
	_ = func() int { return n } // want `closure in hot-path function pool\.hot allocates per call`
	_ = map[int]bool{}          // want `map literal in hot-path function pool\.hot heap-allocates per call`
	_ = []int{n}                // want `slice literal in hot-path function pool\.hot heap-allocates per call`
	_ = &record{id: n}          // want `&-composite literal in hot-path function pool\.hot heap-allocates per call`
	_ = make([]byte, n)         // want `make in hot-path function pool\.hot heap-allocates per call`
	sink(n)                     // want `boxing int into interface`
}

// describe mixes fmt and string building.
//
//v2plint:hotpath
func describe(name string, id int) string {
	s := fmt.Sprintf("%s-%d", name, id) // want `fmt call in hot-path function describe allocates per call`
	return s + name                     // want `string concatenation in hot-path function describe heap-allocates per call`
}

// convert boxes through an explicit interface conversion.
//
//v2plint:hotpath
func convert(n int) any {
	return any(n) // want `boxing int into interface`
}

// recycle exercises the append rule: pooled destinations (fields,
// parameters) may grow, function-local slices may not.
//
//v2plint:hotpath
func (p *pool) recycle(r *record, scratch []int) []int {
	p.free = append(p.free, r)   // field append: pooled, allowed
	scratch = append(scratch, 1) // parameter append: caller-owned, allowed
	local := p.free[:0]
	local = append(local, r) // want `append to function-local slice local in hot-path function pool\.recycle`
	_ = local
	return scratch
}

// ok holds the allocation-free idioms the hot path is built on: value
// struct literals stay on the stack, pointers fit the interface word,
// and constant concatenation folds at compile time.
//
//v2plint:hotpath
func (p *pool) ok(sink func(any), r *record) record {
	v := record{id: 1}
	sink(r)
	const tag = "hot" + "path"
	_ = tag
	return v
}

// waived shows a justified waiver still works under the new grammar.
//
//v2plint:hotpath
func waived(n int) []byte {
	//v2plint:allow hotpathalloc one-time growth, amortized by the caller's pool
	return make([]byte, n)
}

// cold is NOT annotated: the same constructs are fine off the hot path.
func (p *pool) cold(n int, sink func(any)) {
	_ = func() int { return n }
	_ = map[int]bool{}
	_ = make([]byte, n)
	sink(n)
}
