// Package simnet proves hotpathalloc's known entry points are checked
// even without a //v2plint:hotpath annotation (deleting an annotation
// cannot un-enforce the contract), while other functions in the same
// package stay exempt.
package simnet

type packet struct{ size int }

type link struct {
	queue []*packet
}

// enqueue is in the known hot-path set despite carrying no annotation.
func (l *link) enqueue(p *packet) {
	cb := func() int { return p.size } // want `closure in hot-path function link\.enqueue allocates per call`
	_ = cb
	l.queue = append(l.queue, p) // field append: pooled, allowed
}

// cold is not in the known set and not annotated: exempt.
func (l *link) cold(p *packet) {
	cb := func() int { return p.size }
	_ = cb
}
