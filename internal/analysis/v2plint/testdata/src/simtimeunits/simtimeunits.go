package simtimeunits

import (
	"time"

	"simtime"
)

// Flagging cases.

func bareConversionIn(d time.Duration) simtime.Duration {
	return simtime.Duration(d) // want `bare conversion of wall-clock time\.Duration into simtime\.Duration; use simtime\.FromStd`
}

func bareConversionInTime(d time.Duration) simtime.Time {
	return simtime.Time(d) // want `bare conversion of wall-clock time\.Duration into simtime\.Time`
}

func bareConversionOut(d simtime.Duration) time.Duration {
	return time.Duration(d) // want `bare conversion of simulated simtime\.Duration into time\.Duration; use its Std method`
}

func mixedArithmetic(sd simtime.Duration, d time.Duration) simtime.Duration {
	return sd + simtime.Duration(d) // want `bare conversion of wall-clock time\.Duration`
}

func mixedBinary(sd simtime.Duration, d time.Duration) bool {
	return sd > d // want `binary > mixes simulated time \(simtime\.Duration\) with wall-clock time\.Duration`
}

func mixedAdd(st simtime.Time, d time.Duration) {
	_ = st + d // want `binary \+ mixes simulated time \(simtime\.Time\)`
}

// Non-flagging cases.

func sanctionedIn(d time.Duration) simtime.Duration {
	return simtime.FromStd(d)
}

func sanctionedOut(d simtime.Duration) time.Duration {
	return d.Std()
}

func untypedConstant() simtime.Duration {
	return simtime.Duration(1000) // plain numeric conversions are fine
}

func fromInt(n int64) simtime.Duration {
	return simtime.Duration(n)
}

func pureSimArithmetic(a, b simtime.Duration) simtime.Duration {
	return a + b
}

func pureWallArithmetic(a, b time.Duration) time.Duration {
	return a + b
}

// The escape hatch waives a finding.
func waived(d time.Duration) simtime.Duration {
	//v2plint:allow simtimeunits boundary code audited by hand
	return simtime.Duration(d)
}
