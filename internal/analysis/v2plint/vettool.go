package v2plint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
)

// This file implements the `go vet -vettool=` unit-checker protocol,
// so cmd/v2plint can run under the standard vet driver as well as
// standalone. For each package, cmd/go hands the tool a JSON config
// file naming the source files and the export-data file of every
// dependency; the tool type-checks the single package, reports
// findings on stderr, and writes an (empty — v2plint exchanges no
// facts) .vetx file for downstream packages.

// vetConfig mirrors the JSON config cmd/go writes for vet tools (see
// cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// RunVetTool processes one vet unit-checker config file and returns
// the process exit code: 0 clean, 1 tool error, 2 findings (mirroring
// x/tools' unitchecker).
func RunVetTool(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "v2plint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "v2plint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// v2plint analyzers exchange no facts, but cmd/go caches and feeds
	// the vetx file to dependent packages, so it must always exist.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(stderr, "v2plint: writing vetx: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	imp := exportDataImporter(fset, func(path string) string {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return cfg.PackageFile[path]
	})
	lp, err := checkPackage(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "v2plint: %v\n", err)
		return 1
	}

	diags := RunPackage(lp.Fset, lp.Files, lp.Pkg, lp.Info, Analyzers())
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s: %s\n", lp.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
