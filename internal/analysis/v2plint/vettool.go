package v2plint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"
)

// This file implements the `go vet -vettool=` unit-checker protocol,
// so cmd/v2plint can run under the standard vet driver as well as
// standalone. For each package, cmd/go hands the tool a JSON config
// file naming the source files and the export-data file of every
// dependency; the tool type-checks the single package, reports
// findings on stderr, and writes a .vetx fact file for downstream
// packages.
//
// The facts are the call graph's transitive function summaries
// (ExportSummaries): when a dependency was vetted first, its .vetx is
// imported before analysis, so hotpathreach sees through cross-package
// calls even though each vet invocation type-checks a single package.
// Interface resolution still degrades to same-package implementations
// in this mode (a documented soundness limit); the standalone driver,
// which loads the whole module into one Program, does not degrade.

// vetConfig mirrors the JSON config cmd/go writes for vet tools (see
// cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// RunVetTool processes one vet unit-checker config file and returns
// the process exit code: 0 clean, 1 tool error, 2 findings (mirroring
// x/tools' unitchecker).
func RunVetTool(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "v2plint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "v2plint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Standard-library packages are classified by the direct call rules
	// (fmt, time, math/rand) instead of analysis: their vetx is empty.
	if cfg.Standard[cfg.ImportPath] {
		return writeVetx(cfg.VetxOutput, []byte{}, stderr)
	}

	fset := token.NewFileSet()
	imp := exportDataImporter(fset, func(path string) string {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return cfg.PackageFile[path]
	})
	lp, err := checkPackage(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg.VetxOutput, []byte{}, stderr)
		}
		fmt.Fprintf(stderr, "v2plint: %v\n", err)
		return 1
	}

	prog := NewProgram(lp.Fset)
	// Import dependency summaries before adding the local package:
	// local declarations override an imported node with the same key.
	paths := make([]string, 0, len(cfg.PackageVetx))
	for path := range cfg.PackageVetx {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		facts, err := os.ReadFile(cfg.PackageVetx[path])
		if err != nil || len(facts) == 0 {
			continue // absent or empty facts degrade gracefully
		}
		if err := prog.ImportSummaries(facts); err != nil {
			fmt.Fprintf(stderr, "v2plint: %s: %v\n", path, err)
			return 1
		}
	}
	prog.Add(lp.Files, lp.Pkg, lp.Info)

	if cfg.VetxOutput != "" {
		facts, err := prog.ExportSummaries(cfg.ImportPath)
		if err != nil {
			fmt.Fprintf(stderr, "v2plint: exporting facts: %v\n", err)
			return 1
		}
		if code := writeVetx(cfg.VetxOutput, facts, stderr); code != 0 {
			return code
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	diags := prog.Run(Analyzers())
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s: %s\n", lp.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// writeVetx writes the fact file cmd/go caches and feeds to dependent
// packages; it must always exist, even when empty.
func writeVetx(path string, data []byte, stderr io.Writer) int {
	if path == "" {
		return 0
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		fmt.Fprintf(stderr, "v2plint: writing vetx: %v\n", err)
		return 1
	}
	return 0
}
