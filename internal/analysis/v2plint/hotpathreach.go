package v2plint

// HotPathReach extends the allocation-free hot-path contract across
// calls. hotpathalloc inspects only the bodies of annotated functions,
// so a hot-path function calling an unannotated helper that allocates
// (or reads the wall clock, or draws from global math/rand) passed the
// suite silently. This analyzer walks the Program call graph from every
// hot-path root and reports the witness chain, e.g.
//
//	ecmpForward → simnet.helperX → fmt.Sprintf
//
// Division of labor: constructs directly inside a root body are
// hotpathalloc's findings (richer per-construct rules); hotpathreach
// reports only effects at least one call away, plus dynamic calls
// through func values in the root itself (the chain cannot be followed
// through those, so they must be explicitly waived or redesigned).
// Edges into functions that are themselves hot-path roots are skipped:
// those are checked in their own right (assume/guarantee), which keeps
// one defect one finding.

import "go/token"

var HotPathReach = &Analyzer{
	Name: "hotpathreach",
	Doc: "requires the transitive call closure of //v2plint:hotpath roots " +
		"(and the known serializer/ECMP/eventq entry points) to be free of " +
		"heap allocation, fmt, wall-clock reads, and global math/rand; " +
		"reports the witness call chain and flags dynamic calls through " +
		"func values as statically unresolvable",
	Run: runHotPathReach,
}

// hotReachClasses are the effect classes the hot-path contract forbids,
// in reporting order.
var hotReachClasses = []effectClass{effAlloc, effFmt, effWallClock, effGlobalRand, effDynamic}

func runHotPathReach(pass *Pass) {
	for _, n := range pass.nodes {
		if !n.hotRoot || n.decl == nil {
			continue
		}
		root := funcKey(n.decl)
		// Dynamic calls in the root body: the graph stops here, so the
		// contract requires them waived (with a reason) or removed.
		for _, site := range n.direct[effDynamic] {
			pass.Reportf(site.pos,
				"hot-path function %s makes a %s; the hot path must be statically resolvable (direct, method, or interface call)",
				root, site.Detail)
		}
		type reported struct {
			pos   token.Pos
			class effectClass
		}
		seen := map[reported]bool{}
		for _, cs := range n.calls {
			for _, tgt := range cs.targets {
				callee := pass.Prog.node(tgt.key)
				if callee == nil || callee.hotRoot {
					continue
				}
				for _, c := range hotReachClasses {
					te := callee.trans[c]
					if te == nil || seen[reported{cs.pos, c}] {
						continue
					}
					seen[reported{cs.pos, c}] = true
					pass.Reportf(cs.pos, "hot-path function %s reaches %s: %s",
						root, effectNoun[c], chainString(root, tgt, te))
				}
			}
		}
	}
}
