package v2plint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// DetRange flags `for ... range m` over a map whose body feeds an
// ordering-sensitive sink. Go randomizes map iteration order on
// purpose, so any output, accumulation, or scheduling decision built
// inside such a loop differs from run to run — exactly the
// nondeterminism the simulator's byte-identical-output contract
// forbids.
//
// Sinks recognized:
//   - append to a slice (order of the result leaks the map order)
//   - floating-point += / -= accumulation (addition is not associative)
//   - event scheduling (eventq.Queue.At/After, simnet.Engine
//     injection/send methods)
//   - output emission (fmt print family, csv.Writer, json.Encoder)
//
// The canonical deterministic idiom is exempt: a loop whose body only
// collects the keys into a slice that is subsequently sorted
// (sort.*, slices.Sort*, or a helper whose name contains "sort").
var DetRange = &Analyzer{
	Name: "detrange",
	Doc: "flags range over a map feeding an ordering-sensitive sink " +
		"(append, float accumulation, event scheduling, output emission); " +
		"iterate over sorted keys instead",
	Run: runDetRange,
}

// eventSinkMethods are scheduling/injection methods whose call order
// becomes simulation event order.
var eventSinkMethods = map[string]map[string]bool{
	"eventq": {"At": true, "After": true},
	"simnet": {
		"HostSend": true, "Resend": true, "InjectFromSwitch": true,
	},
}

func runDetRange(pass *Pass) {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			sink, found := findSink(pass, rs.Body)
			if !found {
				return true
			}
			if isSortedKeyCollection(pass, rs, f) {
				return true
			}
			pass.Reportf(rs.For,
				"nondeterministic iteration over map %s feeds %s; collect and sort the keys first",
				exprString(pass.Fset, rs.X), sink)
			return true
		})
	}
}

// findSink reports the first ordering-sensitive sink in the loop body.
func findSink(pass *Pass, body *ast.BlockStmt) (string, bool) {
	var sink string
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if s, ok := callSink(pass, n); ok {
				sink = s
				return false
			}
		case *ast.AssignStmt:
			if n.Tok != token.ADD_ASSIGN && n.Tok != token.SUB_ASSIGN {
				return true
			}
			t := pass.TypesInfo.TypeOf(n.Lhs[0])
			if t == nil {
				return true
			}
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				sink = "a floating-point accumulation"
				return false
			}
		}
		return true
	})
	return sink, sink != ""
}

func callSink(pass *Pass, call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj, ok := pass.TypesInfo.Uses[fun]; ok {
			if b, isBuiltin := obj.(*types.Builtin); isBuiltin && b.Name() == "append" {
				return "an append", true
			}
		}
	case *ast.SelectorExpr:
		if fn, pkgPath, ok := pkgFunc(pass.TypesInfo, fun); ok {
			if pkgPath == "fmt" && (len(fn.Name()) >= 5 && (fn.Name()[:5] == "Print" || fn.Name()[:5] == "Fprin")) {
				return "fmt output", true
			}
			return "", false
		}
		name, pkgBase, ok := methodRecvPkgBase(pass.TypesInfo, fun)
		if !ok {
			return "", false
		}
		switch pkgBase {
		case "csv":
			if name == "Write" || name == "WriteAll" {
				return "CSV output", true
			}
		case "json":
			if name == "Encode" {
				return "JSON output", true
			}
		default:
			if methods := eventSinkMethods[pkgBase]; methods[name] {
				return "event scheduling (" + pkgBase + "." + name + ")", true
			}
		}
	}
	return "", false
}

// isSortedKeyCollection recognizes the canonical deterministic idiom:
//
//	for k := range m { keys = append(keys, k) }
//	... sort.Slice(keys, ...) / slices.Sort(keys) / sortVIPs(keys) ...
//
// i.e. the body is a single append of the range key, and the collected
// slice is later passed to a sort call in the same file.
func isSortedKeyCollection(pass *Pass, rs *ast.RangeStmt, file *ast.File) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	assign, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || assign.Tok != token.ASSIGN || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	funIdent, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, isBuiltin := pass.TypesInfo.Uses[funIdent].(*types.Builtin); !isBuiltin || b.Name() != "append" {
		return false
	}
	keyIdent, ok := rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	keyObj := identObj(pass.TypesInfo, keyIdent)
	argIdent, ok := call.Args[1].(*ast.Ident)
	if !ok || keyObj == nil || identObj(pass.TypesInfo, argIdent) != keyObj {
		return false
	}
	sliceIdent, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	sliceObj := identObj(pass.TypesInfo, sliceIdent)
	if sliceObj == nil {
		return false
	}
	return sortedLater(pass, file, sliceObj)
}

// sortedLater reports whether the file contains a sorting call that
// takes the slice variable as an argument: any sort.* or slices.*
// function, or any function or method whose name contains "sort".
func sortedLater(pass *Pass, file *ast.File, slice types.Object) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && identObj(pass.TypesInfo, id) == slice {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return containsSort(fun.Name)
	case *ast.SelectorExpr:
		if _, pkgPath, ok := pkgFunc(pass.TypesInfo, fun); ok {
			if pkgPath == "sort" || pkgPath == "slices" {
				return true
			}
		}
		return containsSort(fun.Sel.Name)
	}
	return false
}

func containsSort(name string) bool {
	for i := 0; i+4 <= len(name); i++ {
		c := name[i]
		if (c == 's' || c == 'S') && name[i+1] == 'o' && name[i+2] == 'r' && name[i+3] == 't' {
			return true
		}
	}
	return false
}

func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "<expr>"
	}
	return buf.String()
}
