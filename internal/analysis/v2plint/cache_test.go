package v2plint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeCacheModule lays out a two-package throwaway module: dep is a
// clean helper, the root package draws from the global math/rand
// generator so every run reports exactly one globalrand finding.
func writeCacheModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module cachetest\n\ngo 1.22\n",
		"dep/dep.go": "// Package dep is a clean dependency.\n" +
			"package dep\n\n" +
			"// Choice doubles n.\n" +
			"func Choice(n int) int { return n * 2 }\n",
		"cachetest.go": "// Package cachetest trips globalrand.\n" +
			"package cachetest\n\n" +
			"import (\n\t\"math/rand\"\n\n\t\"cachetest/dep\"\n)\n\n" +
			"// Pick draws from the shared generator (the finding under test).\n" +
			"func Pick() int { return dep.Choice(rand.Intn(9)) }\n",
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runCachedModule(t *testing.T, dir, cacheDir string) ([]Finding, CacheStats) {
	t.Helper()
	findings, stats, _, err := RunCached(dir, []string{"./..."}, Analyzers(), cacheDir, false)
	if err != nil {
		t.Fatalf("RunCached: %v", err)
	}
	return findings, stats
}

func TestCacheHitAfterNoopRebuild(t *testing.T) {
	dir := writeCacheModule(t)
	cacheDir := t.TempDir()

	cold, coldStats := runCachedModule(t, dir, cacheDir)
	if coldStats.Packages != 2 || coldStats.Misses != 2 || coldStats.Hits != 0 {
		t.Fatalf("cold stats = %+v, want 2 packages, 2 misses, 0 hits", coldStats)
	}
	if len(cold) != 1 || cold[0].Analyzer != "globalrand" {
		t.Fatalf("cold findings = %+v, want one globalrand finding", cold)
	}

	warm, warmStats := runCachedModule(t, dir, cacheDir)
	if warmStats.Hits != 2 || warmStats.Misses != 0 {
		t.Fatalf("warm stats = %+v, want 2 hits, 0 misses", warmStats)
	}
	// Byte-identical findings hot vs cold: the replayed output must be
	// indistinguishable from the freshly analyzed one.
	coldJSON, err := json.Marshal(cold)
	if err != nil {
		t.Fatal(err)
	}
	warmJSON, err := json.Marshal(warm)
	if err != nil {
		t.Fatal(err)
	}
	if string(coldJSON) != string(warmJSON) {
		t.Fatalf("hot/cold findings differ:\ncold: %s\nwarm: %s", coldJSON, warmJSON)
	}
}

func TestCacheInvalidationOnSourceEdit(t *testing.T) {
	dir := writeCacheModule(t)
	cacheDir := t.TempDir()
	runCachedModule(t, dir, cacheDir)

	// Add a second draw: the root package must re-analyze and the new
	// finding must appear; the untouched dependency stays cached.
	path := filepath.Join(dir, "cachetest.go")
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(string(src),
		"func Pick() int { return dep.Choice(rand.Intn(9)) }",
		"func Pick() int { return dep.Choice(rand.Intn(9)) }\n\n// Again draws once more.\nfunc Again() int { return rand.Int() }",
		1)
	if edited == string(src) {
		t.Fatal("edit did not apply")
	}
	if err := os.WriteFile(path, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}

	findings, stats := runCachedModule(t, dir, cacheDir)
	if stats.Hits != 1 || stats.Misses != 1 {
		t.Fatalf("post-edit stats = %+v, want 1 hit (dep), 1 miss (root)", stats)
	}
	if len(findings) != 2 {
		t.Fatalf("post-edit findings = %+v, want 2 globalrand findings", findings)
	}
}

func TestCacheInvalidationOnDependencyEdit(t *testing.T) {
	dir := writeCacheModule(t)
	cacheDir := t.TempDir()
	runCachedModule(t, dir, cacheDir)

	// Editing the dependency must invalidate it AND its dependent: the
	// root's key folds in dep's key.
	path := filepath.Join(dir, "dep", "dep.go")
	if f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0); err != nil {
		t.Fatal(err)
	} else {
		if _, err := f.WriteString("\n// Tick is new API.\nfunc Tick() int { return 1 }\n"); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	findings, stats := runCachedModule(t, dir, cacheDir)
	if stats.Hits != 0 || stats.Misses != 2 {
		t.Fatalf("post-dep-edit stats = %+v, want 0 hits, 2 misses", stats)
	}
	if len(findings) != 1 || findings[0].Analyzer != "globalrand" {
		t.Fatalf("post-dep-edit findings = %+v, want the original globalrand finding", findings)
	}
}
