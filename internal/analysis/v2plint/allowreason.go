package v2plint

// AllowReason polices the waiver escape hatch itself: every
// `//v2plint:allow` annotation must name at least one analyzer AND
// carry a free-form justification after the analyzer list, e.g.
//
//	//v2plint:allow wallclock profiling hook measures host time
//
// A waiver without a reason is a finding; a reviewer six months later
// should never have to reverse-engineer why a contract was suspended.
// Findings from this analyzer are exempt from waiving (a waiver cannot
// excuse itself); the suggested fix deletes the bare annotation, which
// re-surfaces whatever finding it was hiding so it can be fixed or
// re-waived with a reason.
var AllowReason = &Analyzer{
	Name: "allowreason",
	Doc: "requires every //v2plint:allow waiver to carry a justification after " +
		"the analyzer list; bare waivers are findings and cannot waive themselves",
	Run: runAllowReason,
}

func runAllowReason(pass *Pass) {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				fields, ok := allowFields(c)
				if !ok || len(fields) >= 2 {
					continue
				}
				msg := "//v2plint:allow waiver names analyzers but no reason; append a justification after the analyzer list"
				if len(fields) == 0 {
					msg = "//v2plint:allow waiver names no analyzer and no reason; write `//v2plint:allow <analyzer> <reason>`"
				}
				fix := SuggestedFix{
					Message: "delete the bare waiver",
					Edits:   []TextEdit{{Pos: c.Pos(), End: c.End(), NewText: nil}},
				}
				pass.ReportfFix(c.Pos(), fix, "%s", msg)
			}
		}
	}
}
