package v2plint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A LoadedPackage is one parsed and type-checked module package ready
// for analysis.
type LoadedPackage struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Imports    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// listPackages runs `go list -export -deps -json` over the patterns
// and decodes every package (dependencies included) in the output.
func listPackages(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-export", "-deps", "-json=Dir,ImportPath,Name,Export,GoFiles,Imports,DepOnly,Standard,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadPackages type-checks the module packages matched by patterns.
//
// It shells out to `go list -export -deps -json`, which compiles every
// package (and its dependencies, standard library included) into the
// build cache and reports the export-data file for each, then
// type-checks only the matched packages from source, resolving every
// import through compiler export data. This keeps whole-repo lint runs
// fast and avoids re-type-checking the standard library from source.
func LoadPackages(dir string, patterns []string) ([]*LoadedPackage, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := listPackages(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []*listPkg
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := exportDataImporter(fset, func(path string) string { return exports[path] })

	var loaded []*LoadedPackage
	for _, t := range targets {
		lp, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		loaded = append(loaded, lp)
	}
	return loaded, nil
}

// exportDataImporter returns a types.Importer that resolves imports
// from compiler export-data files named by resolve. The "unsafe" path
// is handled by the gc importer itself.
func exportDataImporter(fset *token.FileSet, resolve func(path string) string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file := resolve(path)
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// checkPackage parses and type-checks one package from source, with
// imports satisfied by imp.
func checkPackage(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*LoadedPackage, error) {
	var files []*ast.File
	for _, name := range goFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &LoadedPackage{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}, nil
}

// NewTypesInfo allocates the types.Info maps the analyzers consume.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}
