package v2plint_test

import (
	"testing"

	"switchv2p/internal/analysis/v2plint"
	"switchv2p/internal/analysis/v2plint/analysistest"
)

func TestNilSafeMetrics(t *testing.T) {
	// "nilsafemetrics/telemetry" is under the contract by package name;
	// "nilsafemetrics/annotated" only through //v2plint:nilsafe.
	analysistest.RunWithSuggestedFixes(t, analysistest.TestData(t), v2plint.NilSafeMetrics,
		"nilsafemetrics/telemetry", "nilsafemetrics/annotated")
}
