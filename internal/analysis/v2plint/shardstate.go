package v2plint

// ShardState machine-checks the gap ROADMAP item 3 left open: "the
// host-cache family's pending-install maps and LRU lists are per-event
// global state today". Under the sharded engine every per-event
// handler runs inside one domain's slot, so a scheme's mutable state
// is shard-safe only if each event touches state belonging to its own
// slot (host or switch). This analyzer enforces that structurally:
//
// For every concrete simnet.Scheme implementor in the package, the
// per-event entry points (SenderResolve, SwitchArrive, HostMisdeliver)
// and every same-package function reachable from them through the call
// graph are scanned. Inside those functions, a mutation of scheme
// state — an assignment, ++/--, delete, or pointer-receiver method
// call rooted at a field of the implementor (or of a same-package
// struct it embeds) — must either
//
//   - index the field by the enclosing function's slot parameter (the
//     first int32 parameter: the host or switch the event belongs to),
//     as in t.tables[host].insert(...), or
//   - sit under a field declaration annotated
//     `//v2plint:shardlocal <reason>`, asserting the field is
//     deliberately cross-slot (aggregate counters, serial-engine-only
//     state) — the reason is mandatory, a bare annotation is itself a
//     finding, or
//   - carry an ordinary `//v2plint:allow shardstate <reason>` waiver at
//     the access site for one-off cross-slot touches (receive-side
//     learning writes the destination's table from the ToR's event).
//
// Mutations inside a function literal are flagged regardless of
// indexing: a closure handed to the event queue runs in whatever slot
// context the queue fires it, so nothing inside one is provably
// slot-local (this is exactly the pending-install pattern in
// internal/baselines/hostcache.go).
//
// Scope limits: only same-package reachability is traversed (a tier
// embedded from another package is an implementor there and is checked
// by that package's pass), methods of non-state element types
// (hostTable and friends) are judged at their call sites by how the
// container is indexed, and slot-derived aliases (h := host) are not
// recognized — index by the parameter itself.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

var ShardState = &Analyzer{
	Name: "shardstate",
	Doc: "requires per-event mutable state of simnet.Scheme implementors " +
		"to be indexed by the event's slot parameter (per-host/per-switch) " +
		"or annotated //v2plint:shardlocal <reason>; mutations from " +
		"function literals are never slot-local",
	Run: runShardState,
}

// schemeEntryPoints are the per-event handlers of simnet.Scheme, the
// roots of the shard-safety obligation.
var schemeEntryPoints = []string{"SenderResolve", "SwitchArrive", "HostMisdeliver"}

func runShardState(pass *Pass) {
	if pass.Pkg == nil {
		return
	}
	scheme, _ := schemeInterfaces(pass.Pkg)
	if scheme == nil {
		return
	}
	annots := collectShardLocals(pass)
	state := map[*types.TypeName]bool{}
	var impls []*types.Named
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() { // Names is sorted
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		if !types.Implements(types.NewPointer(named), scheme) {
			continue
		}
		impls = append(impls, named)
		addStateType(state, named)
	}
	if len(impls) == 0 {
		return
	}

	nodeByKey := map[string]*funcNode{}
	for _, n := range pass.nodes {
		nodeByKey[n.key] = n
	}
	// Reachability: the entry points plus everything they call inside
	// this package.
	var work []*funcNode
	seen := map[string]bool{}
	for _, named := range impls {
		for _, m := range schemeEntryPoints {
			obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, pass.Pkg, m)
			fn, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			key, _ := methodKeyOf(fn)
			if n := nodeByKey[key]; n != nil && !seen[key] {
				seen[key] = true
				work = append(work, n)
			}
		}
	}
	for i := 0; i < len(work); i++ {
		for _, cs := range work[i].calls {
			for _, tgt := range cs.targets {
				if n := nodeByKey[tgt.key]; n != nil && !seen[tgt.key] {
					seen[tgt.key] = true
					work = append(work, n)
				}
			}
		}
	}
	sort.Slice(work, func(i, j int) bool { return work[i].key < work[j].key })
	for _, n := range work {
		checkShardMutations(pass, n, state, annots)
	}
}

// checkShardMutations scans one reachable function for scheme-state
// mutations that are not provably slot-local.
func checkShardMutations(pass *Pass, n *funcNode, state map[*types.TypeName]bool, annots shardLocalSet) {
	fn := n.decl
	if fn == nil {
		return
	}
	w := &ssWalk{pass: pass, state: state, annots: annots, fnName: funcKey(fn), roots: map[*types.Var]bool{}}
	if fn.Recv != nil && len(fn.Recv.List) > 0 && len(fn.Recv.List[0].Names) > 0 {
		if v, ok := pass.TypesInfo.Defs[fn.Recv.List[0].Names[0]].(*types.Var); ok {
			if isSchemeStateTypeSet(state, v.Type()) {
				w.roots[v] = true
			}
		}
	}
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			for _, name := range field.Names {
				v, ok := pass.TypesInfo.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				if isSchemeStateTypeSet(state, v.Type()) {
					w.roots[v] = true
				}
				if w.slot == nil {
					if b, ok := v.Type().(*types.Basic); ok && b.Kind() == types.Int32 {
						w.slot = v
					}
				}
			}
		}
	}
	if len(w.roots) == 0 {
		return
	}
	w.scan(fn.Body, false)
}

func isSchemeStateTypeSet(state map[*types.TypeName]bool, t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && state[named.Obj()]
}

type ssWalk struct {
	pass   *Pass
	state  map[*types.TypeName]bool
	annots shardLocalSet
	fnName string
	roots  map[*types.Var]bool
	slot   *types.Var
}

// scan walks a body, descending into function literals with the
// inClosure flag raised.
func (w *ssWalk) scan(node ast.Node, inClosure bool) {
	ast.Inspect(node, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			w.scan(x.Body, true)
			return false
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				w.mutation(lhs, inClosure)
			}
		case *ast.IncDecStmt:
			w.mutation(x.X, inClosure)
		case *ast.CallExpr:
			w.callMutation(x, inClosure)
		}
		return true
	})
}

// callMutation flags state mutations performed through calls: delete
// on a state-rooted map, and pointer-receiver method calls whose
// receiver path roots at state. Calls into methods that are themselves
// declared on a state type are skipped — those bodies are scanned in
// their own right (assume/guarantee).
func (w *ssWalk) callMutation(call *ast.CallExpr, inClosure bool) {
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := w.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "delete" && len(call.Args) > 0 {
			w.mutation(call.Args[0], inClosure)
			return
		}
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	m, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	if isSchemeStateTypeSet(w.state, sig.Recv().Type()) {
		return
	}
	// Only same-package methods that provably write their receiver count
	// as mutations (read-only lookups and cross-package infrastructure
	// calls pass freely).
	if !w.pass.Prog.stateMutatingCall(m, w.pass.Pkg.Path()) {
		return
	}
	w.mutation(sel.X, inClosure)
}

// mutation judges one write target: it must root at a state variable,
// and then either be indexed by the slot parameter, sit under an
// annotated field, or it is a finding.
func (w *ssWalk) mutation(e ast.Expr, inClosure bool) {
	// Collect the access path top-down, then reverse it so elems[0] is
	// the first step off the base identifier.
	var elems []ast.Expr
	cur := ast.Unparen(e)
walk:
	for {
		switch x := cur.(type) {
		case *ast.SelectorExpr:
			elems = append(elems, x)
			cur = ast.Unparen(x.X)
		case *ast.IndexExpr:
			elems = append(elems, x)
			cur = ast.Unparen(x.X)
		case *ast.StarExpr:
			elems = append(elems, x)
			cur = ast.Unparen(x.X)
		default:
			break walk
		}
	}
	base, ok := cur.(*ast.Ident)
	if !ok {
		return
	}
	bv, ok := w.pass.TypesInfo.Uses[base].(*types.Var)
	if !ok || !w.roots[bv] {
		return
	}
	for i, j := 0, len(elems)-1; i < j; i, j = i+1, j-1 {
		elems[i], elems[j] = elems[j], elems[i]
	}
	// An annotated field anywhere on the path waives the mutation.
	firstSel := -1
	for i, el := range elems {
		sel, ok := el.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		if v, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
			if firstSel < 0 {
				firstSel = i
			}
			if w.annots.field(w.pass.Fset, v) {
				return
			}
		}
	}
	target := renderExpr(e)
	if inClosure {
		w.pass.Reportf(e.Pos(),
			"per-event code %s mutates scheme state %s from a function literal, which runs outside the event's slot context; annotate the field //v2plint:shardlocal <reason> if this is deliberate",
			w.fnName, target)
		return
	}
	if firstSel >= 0 && firstSel+1 < len(elems) {
		if idx, ok := elems[firstSel+1].(*ast.IndexExpr); ok {
			if id, ok := ast.Unparen(idx.Index).(*ast.Ident); ok && w.slot != nil {
				if v, ok := w.pass.TypesInfo.Uses[id].(*types.Var); ok && v == w.slot {
					return // per-slot: indexed by the event's slot parameter
				}
			}
		}
	}
	if w.slot == nil {
		w.pass.Reportf(e.Pos(),
			"per-event code %s mutates scheme state %s but has no int32 slot parameter to index it by; make the state per-slot or annotate the field //v2plint:shardlocal <reason>",
			w.fnName, target)
		return
	}
	w.pass.Reportf(e.Pos(),
		"per-event code %s mutates scheme state %s without indexing by the event's slot parameter %s; make it per-slot or annotate the field //v2plint:shardlocal <reason>",
		w.fnName, target, w.slot.Name())
}

// --- //v2plint:shardlocal annotations ---

// shardLocalSet records reason-carrying shardlocal annotation lines:
// file → line → standalone (true when the comment is alone on its
// line, doc-comment position; false when it trails a declaration).
type shardLocalSet map[string]map[int]bool

// collectShardLocals scans comments for //v2plint:shardlocal,
// reporting bare ones (no reason) as findings and returning the
// reasoned ones.
func collectShardLocals(pass *Pass) shardLocalSet {
	out := shardLocalSet{}
	for _, f := range pass.Files {
		// Lines holding any code token: an annotation on such a line
		// trails a declaration and must not spill onto the next line's
		// field (the line-above rule exists for doc-position comments).
		codeLines := map[int]bool{}
		ast.Inspect(f, func(x ast.Node) bool {
			switch x.(type) {
			case nil, *ast.Comment, *ast.CommentGroup:
				return false
			}
			codeLines[pass.Fset.Position(x.Pos()).Line] = true
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if text != "v2plint:shardlocal" && !strings.HasPrefix(text, "v2plint:shardlocal ") {
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(text, "v2plint:shardlocal"))
				if reason == "" {
					pass.Reportf(c.Pos(), "//v2plint:shardlocal needs a reason: why is cross-slot state safe here?")
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = map[int]bool{}
				}
				out[pos.Filename][pos.Line] = !codeLines[pos.Line]
			}
		}
	}
	return out
}

// field reports whether the field's declaration line carries a
// reasoned shardlocal annotation, or the line directly above does as a
// standalone doc-position comment (a trailing annotation belongs to
// the previous field's line and does not spill downward).
func (s shardLocalSet) field(fset *token.FileSet, v *types.Var) bool {
	if v == nil || !v.Pos().IsValid() {
		return false
	}
	pos := fset.Position(v.Pos())
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	if _, ok := lines[pos.Line]; ok {
		return true
	}
	return lines[pos.Line-1]
}
