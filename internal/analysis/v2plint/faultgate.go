package v2plint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
)

// FaultGate enforces the fault-model gating contract from PR 4: the
// forwarding hot path must stay byte-identical to the fault-free build
// whenever no fault is active, which it does by predicating every read
// of engine fault state on `activeFaults > 0`. The invariant that makes
// the gate sound — activeFaults is non-zero iff any faultDown/swDown/
// gwDown flag is set — is maintained by the Set*Fault mutators, so a
// gated read is semantically identical to an ungated one and strictly
// cheaper on the common path.
//
// Checked functions are the known simnet forwarding entry points plus
// anything annotated `//v2plint:hotpath`. Within them, a read of a
// fault-state field (faultDown, swFaults, swDown, gwDown) or a call
// into a `//v2plint:faultpath` helper must be dominated by an
// activeFaults check (a field read or ActiveFaults() call) in an
// enclosing if-condition or on the left of &&. The loss PRNG
// (lossRand) is gated by its own loss-window read instead, since loss
// windows are deliberately excluded from the activeFaults counter.
// Functions annotated `//v2plint:faultpath` are the gated slow-path
// helpers themselves and are exempt — their callers carry the gate.
var FaultGate = &Analyzer{
	Name: "faultgate",
	Doc: "requires forwarding-path reads of engine fault state (swDown, gwDown, " +
		"faultDown, swFaults, lossRand) to be dominated by an activeFaults or " +
		"loss-window check; //v2plint:faultpath marks the gated slow-path helpers",
	Run: runFaultGate,
}

// faultStateFields are the engine/link fields counted by activeFaults.
var faultStateFields = map[string]bool{
	"faultDown": true,
	"swFaults":  true,
	"swDown":    true,
	"gwDown":    true,
}

// knownForwarding names the simnet forwarding-path functions under the
// contract even without a //v2plint:hotpath annotation.
var knownForwarding = map[string]bool{
	"Engine.HostSend":          true,
	"Engine.Resend":            true,
	"Engine.InjectFromSwitch":  true,
	"Engine.switchArrive":      true,
	"Engine.forwardFromSwitch": true,
	"Engine.ecmpForward":       true,
	"Engine.hostArrive":        true,
	"Engine.gatewayProcess":    true,
	"Engine.GatewayFor":        true,
	"link.enqueue":             true,
	"link.startNext":           true,
	"link.serializeNext":       true,
	"linkEvent.Fire":           true,
}

// knownFaultPath names the reroute helpers exempted (callers gate) even
// without a //v2plint:faultpath annotation.
var knownFaultPath = map[string]bool{
	"Engine.rerouteHop":     true,
	"Engine.rerouteGateway": true,
}

func runFaultGate(pass *Pass) {
	if path.Base(pass.Pkg.Path()) != "simnet" {
		return
	}
	faultpath := map[string]bool{}
	for k := range knownFaultPath {
		faultpath[k] = true
	}
	var checked []*ast.FuncDecl
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			key := funcKey(fn)
			if funcAnnotated(fn, "faultpath") {
				faultpath[key] = true
				continue
			}
			if knownForwarding[key] || funcAnnotated(fn, "hotpath") {
				checked = append(checked, fn)
			}
		}
	}
	for _, fn := range checked {
		if faultpath[funcKey(fn)] {
			continue
		}
		w := &gateWalker{pass: pass, fnName: funcKey(fn), faultpath: faultpath, fixedConds: map[*ast.IfStmt]bool{}}
		w.walk(fn.Body, gateState{})
	}
}

// gateState tracks which gates dominate the node being walked.
type gateState struct {
	fault bool // an activeFaults check dominates
	loss  bool // a loss-window (or activeFaults) check dominates
}

type gateWalker struct {
	pass      *Pass
	fnName    string
	faultpath map[string]bool
	// curIf is the if-statement whose condition is being walked, when
	// any; an ungated read found there gets a suggested fix inserting
	// the gate at the head of that condition.
	curIf *ast.IfStmt
	// fixedConds guards against attaching the gate-insertion fix twice
	// to the same condition (two ungated reads in one cond would
	// otherwise double-insert).
	fixedConds map[*ast.IfStmt]bool
}

func (w *gateWalker) walk(n ast.Node, gs gateState) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.IfStmt:
			if m.Init != nil {
				w.walk(m.Init, gs)
			}
			saved := w.curIf
			w.curIf = m
			w.walk(m.Cond, gs)
			w.curIf = saved
			body := gs
			w.condGates(m.Cond, &body)
			w.walk(m.Body, body)
			if m.Else != nil {
				w.walk(m.Else, gs)
			}
			return false
		case *ast.BinaryExpr:
			if m.Op == token.LAND {
				w.walk(m.X, gs)
				rhs := gs
				w.condGates(m.X, &rhs)
				w.walk(m.Y, rhs)
				return false
			}
			return true
		case *ast.SelectorExpr:
			w.checkSelector(m, gs)
			w.walk(m.X, gs)
			return false
		case *ast.CallExpr:
			w.checkCall(m, gs)
			return true
		case *ast.FuncLit:
			// A closure runs later, when the gate's value may differ;
			// it is its own (unchecked) scope.
			return false
		}
		return true
	})
}

// condGates extends gs with the gates established by cond being true.
func (w *gateWalker) condGates(cond ast.Expr, gs *gateState) {
	info := w.pass.TypesInfo
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			switch {
			case isField(info, n, "activeFaults"):
				gs.fault, gs.loss = true, true
			case isField(info, n, "loss"):
				gs.loss = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if name, _, ok := methodRecvPkgBase(info, sel); ok && name == "ActiveFaults" {
					gs.fault, gs.loss = true, true
				}
			}
		}
		return true
	})
}

func (w *gateWalker) checkSelector(sel *ast.SelectorExpr, gs gateState) {
	info := w.pass.TypesInfo
	name := sel.Sel.Name
	switch {
	case faultStateFields[name] && isField(info, sel, name):
		if !gs.fault {
			w.reportUngated(sel, "read of fault state %s.%s must be dominated by an activeFaults check", name)
		}
	case name == "lossRand" && isField(info, sel, name):
		if !gs.loss {
			// No suggested fix: the right gate is the loss-window read,
			// which only the surrounding code can name.
			w.pass.Reportf(sel.Pos(), "use of loss PRNG %s.%s must be dominated by a loss-window or activeFaults check", exprString(w.pass.Fset, sel.X), name)
		}
	}
}

func (w *gateWalker) checkCall(call *ast.CallExpr, gs gateState) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := w.pass.TypesInfo.Uses[sel.Sel]
	if !ok {
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	key := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			key = named.Obj().Name() + "." + fn.Name()
		}
	}
	if w.faultpath[key] && !gs.fault {
		w.pass.Reportf(call.Pos(), "call to fault-path helper %s from %s must be dominated by an activeFaults check", key, w.fnName)
	}
}

// reportUngated emits the diagnostic for an ungated fault-state read.
// When the read sits inside an if-condition over an Engine or link
// receiver, it attaches a fix that prefixes the condition with the
// activeFaults gate.
func (w *gateWalker) reportUngated(sel *ast.SelectorExpr, format, fieldName string) {
	msg := func() (string, []any) { return format, []any{exprString(w.pass.Fset, sel.X), fieldName} }
	f, a := msg()
	if w.curIf == nil || w.fixedConds[w.curIf] {
		w.pass.Reportf(sel.Pos(), f, a...)
		return
	}
	prefix, ok := w.gatePrefix(sel.X)
	if !ok {
		w.pass.Reportf(sel.Pos(), f, a...)
		return
	}
	w.fixedConds[w.curIf] = true
	fix := SuggestedFix{
		Message: "gate the condition behind activeFaults",
		Edits: []TextEdit{{
			Pos:     w.curIf.Cond.Pos(),
			NewText: []byte(prefix),
		}},
	}
	// Wrap the original condition when it contains || so the inserted
	// && binds over the whole thing.
	if needsParens(w.curIf.Cond) {
		fix.Edits[0].NewText = []byte(prefix + "(")
		fix.Edits = append(fix.Edits, TextEdit{
			Pos:     w.curIf.Cond.End(),
			NewText: []byte(")"),
		})
	}
	w.pass.ReportfFix(sel.Pos(), fix, f, a...)
}

// gatePrefix builds the `X.activeFaults > 0 && ` prefix for a read
// rooted at base: an Engine receiver gates directly, a link receiver
// gates through its back-pointer l.e.
func (w *gateWalker) gatePrefix(base ast.Expr) (string, bool) {
	t := w.pass.TypesInfo.TypeOf(base)
	if t == nil {
		return "", false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	baseStr := exprString(w.pass.Fset, base)
	switch named.Obj().Name() {
	case "Engine":
		return baseStr + ".activeFaults > 0 && ", true
	case "link":
		return baseStr + ".e.activeFaults > 0 && ", true
	}
	return "", false
}

func needsParens(cond ast.Expr) bool {
	b, ok := cond.(*ast.BinaryExpr)
	return ok && b.Op == token.LOR
}

// isField reports whether sel selects a struct field with the given
// name (as opposed to a method or package member).
func isField(info *types.Info, sel *ast.SelectorExpr, name string) bool {
	if sel.Sel.Name != name {
		return false
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	return ok && v.IsField()
}
