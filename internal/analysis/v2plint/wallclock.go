package v2plint

import (
	"go/ast"
	"path"
)

// WallClock forbids reading the host's wall clock inside the
// simulation packages. Simulated time is the eventq clock; a time.Now
// that leaks into scheduling or results makes two identical runs
// diverge. The profiling hook in internal/simnet/engine.go measures
// wall time deliberately and carries a //v2plint:allow wallclock
// annotation.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "forbids time.Now/time.Since/time.Until in simulation packages " +
		"(simnet, core, transport, eventq, simtime); use the simulated clock",
	Run: runWallClock,
}

// simulationPkgs are the package-path base names under the determinism
// contract: everything that runs between trace generation and the
// Report must be driven purely by simulated time.
var simulationPkgs = map[string]bool{
	"simnet":    true,
	"core":      true,
	"transport": true,
	"eventq":    true,
	"simtime":   true,
}

var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runWallClock(pass *Pass) {
	if !simulationPkgs[path.Base(pass.Pkg.Path())] {
		return
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, pkgPath, ok := pkgFunc(pass.TypesInfo, sel)
			if !ok || pkgPath != "time" || !wallClockFuncs[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock inside simulation package %s; use the simulated clock (simtime/eventq)",
				fn.Name(), path.Base(pass.Pkg.Path()))
			return true
		})
	}
}
