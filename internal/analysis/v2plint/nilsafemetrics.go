package v2plint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"strings"
)

// NilSafeMetrics enforces the telemetry nil-safety contract: every
// metric handle is usable when telemetry is disabled, because a nil
// *Counter/*Gauge/*Collector is a valid no-op receiver. The simulator
// hot path relies on this — `e.BufGauge.Set(...)` runs unconditionally
// and must cost one branch, not a nil-pointer panic, when no registry
// is attached. The contract therefore is: every exported method with a
// pointer receiver on a telemetry type (any type in a package whose
// path base is "telemetry", or any type annotated //v2plint:nilsafe)
// must begin with a nil-receiver guard.
//
// The guard must be the method's first statement: an if whose condition
// compares the receiver against nil. Unexported methods, value
// receivers, unnamed receivers, and empty bodies are exempt. The
// suggested fix inserts `if r == nil { return <zero values> }` when
// every result type has a spellable zero value.
var NilSafeMetrics = &Analyzer{
	Name: "nilsafemetrics",
	Doc: "requires every exported pointer-receiver method on telemetry types " +
		"(and //v2plint:nilsafe-annotated types) to begin with a nil-receiver guard",
	Run: runNilSafeMetrics,
}

func runNilSafeMetrics(pass *Pass) {
	inTelemetry := path.Base(pass.Pkg.Path()) == "telemetry"
	annotated := nilsafeTypes(pass)
	if !inTelemetry && len(annotated) == 0 {
		return
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil || len(fn.Recv.List) == 0 {
				continue
			}
			if !fn.Name.IsExported() || len(fn.Body.List) == 0 {
				continue
			}
			recvName, typeName, ok := pointerRecv(fn)
			if !ok {
				continue
			}
			if !inTelemetry && !annotated[typeName] {
				continue
			}
			if recvName == "" || recvName == "_" {
				continue
			}
			if hasNilGuard(fn.Body.List[0], recvName) {
				continue
			}
			reportMissingGuard(pass, fn, recvName, typeName)
		}
	}
}

// nilsafeTypes collects type names annotated //v2plint:nilsafe (on the
// TypeSpec's doc comment, or on a single-spec type declaration's doc).
func nilsafeTypes(pass *Pass) map[string]bool {
	out := map[string]bool{}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if docAnnotated(ts.Doc, "nilsafe") || (len(gd.Specs) == 1 && docAnnotated(gd.Doc, "nilsafe")) {
					out[ts.Name.Name] = true
				}
			}
		}
	}
	return out
}

// pointerRecv returns the receiver variable name and base type name
// when fn has a named pointer receiver.
func pointerRecv(fn *ast.FuncDecl) (recvName, typeName string, ok bool) {
	field := fn.Recv.List[0]
	star, isPtr := field.Type.(*ast.StarExpr)
	if !isPtr {
		return "", "", false
	}
	base := star.X
	switch ix := base.(type) {
	case *ast.IndexExpr:
		base = ix.X
	case *ast.IndexListExpr:
		base = ix.X
	}
	id, isIdent := base.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	if len(field.Names) > 0 {
		recvName = field.Names[0].Name
	}
	return recvName, id.Name, true
}

// hasNilGuard reports whether stmt is an if whose condition compares
// the receiver against nil (either polarity; compound conditions that
// include the comparison count).
func hasNilGuard(stmt ast.Stmt, recvName string) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(ifs.Cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
			return true
		}
		if (isIdentNamed(b.X, recvName) && isNilIdent(b.Y)) ||
			(isIdentNamed(b.Y, recvName) && isNilIdent(b.X)) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == name
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func reportMissingGuard(pass *Pass, fn *ast.FuncDecl, recvName, typeName string) {
	msg := "exported method %s.%s must start with a nil-receiver guard (nil telemetry handles are no-ops by contract)"
	zero, ok := zeroReturn(pass, fn)
	if !ok {
		pass.Reportf(fn.Name.Pos(), msg, typeName, fn.Name.Name)
		return
	}
	guard := fmt.Sprintf("if %s == nil {\n\t\t%s\n\t}\n\t", recvName, zero)
	fix := SuggestedFix{
		Message: "insert nil-receiver guard",
		Edits:   []TextEdit{{Pos: fn.Body.List[0].Pos(), NewText: []byte(guard)}},
	}
	pass.ReportfFix(fn.Name.Pos(), fix, msg, typeName, fn.Name.Name)
}

// zeroReturn builds the guard's return statement from the method's
// result types, or ok=false when some result has no spellable zero
// value (e.g. a struct), in which case no fix is offered.
func zeroReturn(pass *Pass, fn *ast.FuncDecl) (string, bool) {
	obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	results := sig.Results()
	if results.Len() == 0 {
		return "return", true
	}
	zeros := make([]string, results.Len())
	for i := 0; i < results.Len(); i++ {
		z, ok := zeroValue(results.At(i).Type())
		if !ok {
			return "", false
		}
		zeros[i] = z
	}
	return "return " + strings.Join(zeros, ", "), true
}

func zeroValue(t types.Type) (string, bool) {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return "nil", true
	case *types.Basic:
		switch {
		case u.Info()&types.IsBoolean != 0:
			return "false", true
		case u.Info()&types.IsString != 0:
			return `""`, true
		case u.Info()&types.IsNumeric != 0:
			return "0", true
		}
	}
	return "", false
}
