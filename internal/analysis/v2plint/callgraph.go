package v2plint

// Call-graph construction for the interprocedural analyzers
// (hotpathreach, planpure). The graph is built per Program: every added
// package contributes one node per function declaration, each node
// carrying the function's *direct* effects (heap allocation, fmt,
// wall-clock reads, global math/rand, dynamic calls, mutable-state
// reads) and its outgoing call edges. After all packages are added,
// interface calls are resolved against the implements-relation over
// every concrete type the Program has seen, and a fixed-point pass
// collapses the edges into transitive per-function effect summaries,
// each remembering one witness call chain for the diagnostic.
//
// Soundness limits (documented in DESIGN.md §8):
//   - Function-literal bodies are opaque: their effects belong to
//     whoever invokes the closure, which is usually a dynamic call.
//     Creating the closure is itself an allocation effect, and calls
//     through func values are a distinct "dynamic" effect, so hot
//     paths cannot silently hide behind literals — but a planner that
//     stashes impurity inside a closure it later invokes dynamically
//     is not caught. The intraprocedural analyzers (wallclock,
//     globalrand, hotpathalloc) still see literal bodies as raw
//     syntax.
//   - Interface calls resolve only against concrete types declared in
//     packages added to the same Program. Under the vet unit-checker
//     protocol only one package is visible, so cross-package interface
//     dispatch degrades to "no known implementations" (standalone
//     cmd/v2plint runs see the whole module and do not degrade).
//   - Standard-library callees are classified by direct rules (fmt,
//     time.Now/Since/Until, package-level math/rand) at the call site
//     and otherwise assumed effect-free.
//   - Summaries stop at functions that are themselves contract roots
//     (hot-path or planner roots): those are checked in their own
//     right, so their effects are not propagated into callers
//     (assume/guarantee).

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"time"
)

// effectClass enumerates the side-effect classes the graph tracks.
type effectClass int

const (
	effAlloc effectClass = iota
	effFmt
	effWallClock
	effGlobalRand
	effDynamic
	effStateRead
	numEffects
)

// effectName keys the summary serialization; effectNoun is the phrase
// diagnostics use.
var effectName = [numEffects]string{
	"alloc", "fmt", "wallclock", "globalrand", "dynamic", "stateread",
}

var effectNoun = [numEffects]string{
	effAlloc:      "a heap allocation",
	effFmt:        "fmt formatting",
	effWallClock:  "a wall-clock read",
	effGlobalRand: "the global math/rand generator",
	effDynamic:    "a dynamic call",
	effStateRead:  "mutable run state",
}

// A transEffect is one witnessed occurrence of an effect: either direct
// (Chain empty, Detail the construct) or inherited through calls (Chain
// lists the display names from the first callee down to the function
// whose Detail is the terminal construct).
type transEffect struct {
	Chain  []string `json:"chain,omitempty"`
	Detail string   `json:"detail"`

	pos token.Pos // local anchor; zero for imported summaries
}

// A callTarget is one statically resolved callee of a call site.
type callTarget struct {
	key     string // canonical node key: importPath + "." + funcKey
	display string // pkgbase-qualified name for chain rendering
}

// A callSite is one outgoing call edge of a function.
type callSite struct {
	pos     token.Pos
	targets []callTarget
	// iface/ifaceMethod are set for calls through an interface method;
	// targets is filled from the implements-relation at finalize time.
	iface       *types.Interface
	ifaceMethod string
}

// A funcNode is one function in the call graph.
type funcNode struct {
	key     string
	display string
	pkgPath string
	decl    *ast.FuncDecl // nil for summaries imported from .vetx facts

	hotRoot  bool // //v2plint:hotpath or knownHotPath entry
	planRoot bool // //v2plint:planpure or knownPlanPure entry

	direct [numEffects][]*transEffect // every direct occurrence, source order
	calls  []*callSite
	trans  [numEffects]*transEffect // transitive summary, set by collapse

	// Taint summaries, set by computeTaint (dataflow.go) and exchanged
	// through the .vetx facts for imported nodes.
	retTaint  *taintVal        // results carry taint from a source
	paramRet  map[int]bool     // parameter i flows to a result
	paramSink map[int]*sinkVal // parameter i reaches a sink
	flowFinds []*flowFinding   // witnessed source→sink flows, local decls only
}

func (n *funcNode) addDirect(c effectClass, pos token.Pos, detail string) {
	n.direct[c] = append(n.direct[c], &transEffect{Detail: detail, pos: pos})
}

// A Program accumulates packages, resolves the call graph across all of
// them, and runs analyzers with the graph attached to each Pass.
// RunPackage is the single-package convenience wrapper.
type Program struct {
	fset  *token.FileSet
	pkgs  []*progPkg
	nodes map[string]*funcNode
	final bool

	recvWrites map[string]bool // method key → writes its receiver (dataflow.go)
	timings    map[string]time.Duration
}

type progPkg struct {
	path  string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	nodes []*funcNode // declaration order
}

// NewProgram returns an empty Program. Every Add must use files
// positioned in fset.
func NewProgram(fset *token.FileSet) *Program {
	return &Program{fset: fset, nodes: map[string]*funcNode{}}
}

// EnableTimings makes the Program record per-analyzer (and call-graph)
// wall time, retrievable with Timings.
func (p *Program) EnableTimings() {
	if p.timings == nil {
		p.timings = map[string]time.Duration{}
	}
}

// Timings returns a copy of the recorded per-analyzer durations. The
// "callgraph" entry covers graph construction, interface resolution and
// summary collapse.
func (p *Program) Timings() map[string]time.Duration {
	out := make(map[string]time.Duration, len(p.timings))
	for k, v := range p.timings {
		out[k] = v
	}
	return out
}

func (p *Program) addTiming(name string, start time.Time) {
	if p.timings != nil {
		p.timings[name] += time.Since(start)
	}
}

// Add parses one type-checked package into the graph. All packages must
// be added before Run; adding after Run panics (the summaries would be
// stale).
func (p *Program) Add(files []*ast.File, pkg *types.Package, info *types.Info) {
	if p.final {
		panic("v2plint: Program.Add after Run")
	}
	start := time.Now()
	pkgPath := ""
	if pkg != nil {
		pkgPath = pkg.Path()
	}
	pp := &progPkg{path: pkgPath, files: files, pkg: pkg, info: info}
	base := path.Base(pkgPath)
	for _, f := range files {
		if isTestFile(p.fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			fk := funcKey(fn)
			n := &funcNode{
				key:      pkgPath + "." + fk,
				display:  base + "." + fk,
				pkgPath:  pkgPath,
				decl:     fn,
				hotRoot:  funcAnnotated(fn, "hotpath") || knownHotPath[base][fk],
				planRoot: funcAnnotated(fn, "planpure") || knownPlanPure[base][fk],
			}
			scanFuncEffects(info, n, fn)
			p.nodes[n.key] = n
			pp.nodes = append(pp.nodes, n)
		}
	}
	p.pkgs = append(p.pkgs, pp)
	p.addTiming("callgraph", start)
}

// Run resolves the graph and runs the analyzers over every added
// package, returning all unwaived findings sorted by position.
func (p *Program) Run(analyzers []*Analyzer) []Diagnostic {
	p.finalize()
	var allFiles []*ast.File
	for _, pp := range p.pkgs {
		allFiles = append(allFiles, pp.files...)
	}
	allows := collectAllows(p.fset, allFiles)
	var diags []Diagnostic
	for _, pp := range p.pkgs {
		for _, a := range analyzers {
			start := time.Now()
			pass := &Pass{
				Analyzer:  a,
				Fset:      p.fset,
				Files:     pp.files,
				Pkg:       pp.pkg,
				TypesInfo: pp.info,
				Prog:      p,
				nodes:     pp.nodes,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			a.Run(pass)
			p.addTiming(a.Name, start)
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if d.Analyzer == AllowReason.Name || !allows.waives(p.fset.Position(d.Pos), d.Analyzer) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		pi, pj := p.fset.Position(kept[i].Pos), p.fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept
}

// node returns the graph node for a canonical key (a local declaration
// or an imported summary), or nil.
func (p *Program) node(key string) *funcNode { return p.nodes[key] }

// --- finalize: interface resolution + summary collapse ---

func (p *Program) finalize() {
	if p.final {
		return
	}
	p.final = true
	start := time.Now()
	p.resolveInterfaces()
	p.collapse()
	p.addTiming("callgraph", start)
	p.computeTaint()
}

// resolveInterfaces fills the targets of interface call sites from the
// implements-relation over every concrete type in the added packages.
func (p *Program) resolveInterfaces() {
	var concrete []*types.Named
	for _, pp := range p.pkgs {
		if pp.pkg == nil {
			continue
		}
		scope := pp.pkg.Scope()
		for _, name := range scope.Names() { // Names is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			concrete = append(concrete, named)
		}
	}
	for _, pp := range p.pkgs {
		for _, n := range pp.nodes {
			for _, cs := range n.calls {
				if cs.iface == nil {
					continue
				}
				seen := map[string]bool{}
				for _, named := range concrete {
					if !types.Implements(named, cs.iface) &&
						!types.Implements(types.NewPointer(named), cs.iface) {
						continue
					}
					obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), cs.ifaceMethod)
					fn, ok := obj.(*types.Func)
					if !ok {
						continue
					}
					key, display := methodKeyOf(fn)
					if key == "" || seen[key] {
						continue
					}
					seen[key] = true
					cs.targets = append(cs.targets, callTarget{key: key, display: display})
				}
				sort.Slice(cs.targets, func(i, j int) bool { return cs.targets[i].key < cs.targets[j].key })
			}
		}
	}
}

// collapse computes transitive summaries by fixed point. A summary is
// first-wins: once a witness chain for an effect class is recorded it
// is never replaced, which keeps chains deterministic (nodes iterate in
// sorted key order) and guarantees termination on recursive graphs.
// Effects do not propagate out of contract-root callees: those are
// checked independently (assume/guarantee).
func (p *Program) collapse() {
	keys := make([]string, 0, len(p.nodes))
	for k := range p.nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		n := p.nodes[k]
		for c := effectClass(0); c < numEffects; c++ {
			if n.trans[c] == nil && len(n.direct[c]) > 0 {
				n.trans[c] = n.direct[c][0]
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, k := range keys {
			n := p.nodes[k]
			for _, cs := range n.calls {
				for _, tgt := range cs.targets {
					callee := p.nodes[tgt.key]
					if callee == nil || callee.hotRoot || callee.planRoot {
						continue
					}
					for c := effectClass(0); c < numEffects; c++ {
						if n.trans[c] != nil || callee.trans[c] == nil {
							continue
						}
						chain := make([]string, 0, len(callee.trans[c].Chain)+1)
						chain = append(chain, tgt.display)
						chain = append(chain, callee.trans[c].Chain...)
						n.trans[c] = &transEffect{Chain: chain, Detail: callee.trans[c].Detail, pos: cs.pos}
						changed = true
					}
				}
			}
		}
	}
}

// chainString renders "root → callee → ... → detail" for a finding at a
// call edge to tgt whose summary is te.
func chainString(root string, tgt callTarget, te *transEffect) string {
	s := root + " → " + tgt.display
	for _, link := range te.Chain {
		s += " → " + link
	}
	return s + " → " + te.Detail
}

// --- direct-effect and call-edge scanning ---

// scanFuncEffects records the function's direct effects and outgoing
// call edges. Function-literal bodies are not descended into: creating
// the literal is an allocation effect and invoking it is (usually) a
// dynamic call; the literal's body belongs to whoever runs it.
func scanFuncEffects(info *types.Info, n *funcNode, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			n.addDirect(effAlloc, x.Pos(), "closure")
			return false
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					n.addDirect(effAlloc, x.Pos(), "&-composite literal")
				}
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(x); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					n.addDirect(effAlloc, x.Pos(), "map literal")
				case *types.Slice:
					n.addDirect(effAlloc, x.Pos(), "slice literal")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if t := info.TypeOf(x); t != nil && isStringType(t) && !isConstExpr(info, x) {
					n.addDirect(effAlloc, x.Pos(), "string concatenation")
				}
			}
		case *ast.SelectorExpr:
			scanStateRead(info, n, x)
		case *ast.CallExpr:
			scanCall(info, n, fn, x)
		}
		return true
	})
}

// scanStateRead records reads of observable mutable run state: fields
// of telemetry types and of simnet.Counters. Structural navigation
// (Engine.Q, Engine.Net, ...) is deliberately not an effect — scheduling
// work is what planners are for; *reading results* is what they must
// not do.
func scanStateRead(info *types.Info, n *funcNode, sel *ast.SelectorExpr) {
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	base := path.Base(named.Obj().Pkg().Path())
	if base == "telemetry" || (base == "simnet" && named.Obj().Name() == "Counters") {
		n.addDirect(effStateRead, sel.Pos(),
			fmt.Sprintf("read of %s.%s.%s", base, named.Obj().Name(), v.Name()))
	}
}

func scanCall(info *types.Info, n *funcNode, fn *ast.FuncDecl, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	// Builtins: make/new allocate, append to a function-local slice
	// cannot amortize into a pooled buffer.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				n.addDirect(effAlloc, call.Pos(), b.Name())
			case "append":
				if localAppendDest(info, fn, call) {
					n.addDirect(effAlloc, call.Pos(), "append to local slice")
				}
			}
			return
		}
	}
	// Conversions are not calls (interface-boxing conversions are the
	// intraprocedural hotpathalloc's concern).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}

	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			key, display := funcKeyOf(obj)
			if key != "" {
				n.calls = append(n.calls, &callSite{pos: call.Pos(), targets: []callTarget{{key, display}}})
			}
		case *types.Var:
			n.addDirect(effDynamic, call.Pos(), "dynamic call through "+fun.Name)
		}
	case *ast.SelectorExpr:
		if fnObj, pkgPath, ok := pkgFunc(info, fun); ok {
			switch {
			case pkgPath == "fmt":
				n.addDirect(effFmt, call.Pos(), "fmt."+fnObj.Name())
			case pkgPath == "time" && wallClockFuncs[fnObj.Name()]:
				n.addDirect(effWallClock, call.Pos(), "time."+fnObj.Name())
			case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !randConstructors[fnObj.Name()]:
				n.addDirect(effGlobalRand, call.Pos(), "rand."+fnObj.Name())
			default:
				key, display := funcKeyOf(fnObj)
				if key != "" {
					n.calls = append(n.calls, &callSite{pos: call.Pos(), targets: []callTarget{{key, display}}})
				}
			}
			return
		}
		if m, ok := info.Uses[fun.Sel].(*types.Func); ok {
			if sig, ok := m.Type().(*types.Signature); ok && sig.Recv() != nil {
				if rt := info.TypeOf(fun.X); rt != nil && types.IsInterface(rt) {
					if iface, ok := rt.Underlying().(*types.Interface); ok {
						n.calls = append(n.calls, &callSite{pos: call.Pos(), iface: iface, ifaceMethod: m.Name()})
						return
					}
				}
				key, display := methodKeyOf(m)
				if key != "" {
					if recvPkgBase(m) == "telemetry" {
						n.addDirect(effStateRead, call.Pos(), "call to "+display)
					}
					n.calls = append(n.calls, &callSite{pos: call.Pos(), targets: []callTarget{{key, display}}})
				}
				return
			}
		}
		if v, ok := info.Uses[fun.Sel].(*types.Var); ok {
			if _, isSig := v.Type().Underlying().(*types.Signature); isSig {
				n.addDirect(effDynamic, call.Pos(), "dynamic call through "+selString(fun))
			}
		}
	default:
		// Call of a call result, an index expression, a closure — a
		// func value either way.
		n.addDirect(effDynamic, call.Pos(), "dynamic call through a func value")
	}
}

// localAppendDest reports whether the append destination is a slice
// declared inside fn's body (same rule as hotpathalloc).
func localAppendDest(info *types.Info, fn *ast.FuncDecl, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil || !obj.Pos().IsValid() || fn.Body == nil {
		return false
	}
	return obj.Pos() >= fn.Body.Pos() && obj.Pos() < fn.Body.End()
}

// funcKeyOf canonicalizes a package-level function object.
func funcKeyOf(fn *types.Func) (key, display string) {
	fn = fn.Origin()
	if fn.Pkg() == nil {
		return "", ""
	}
	pp := fn.Pkg().Path()
	return pp + "." + fn.Name(), path.Base(pp) + "." + fn.Name()
}

// methodKeyOf canonicalizes a method object by its declaring package
// and receiver base type (matching funcKey on the declaration side).
func methodKeyOf(fn *types.Func) (key, display string) {
	fn = fn.Origin()
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || fn.Pkg() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	pp := fn.Pkg().Path()
	k := named.Obj().Name() + "." + fn.Name()
	return pp + "." + k, path.Base(pp) + "." + k
}

// recvPkgBase returns the base element of the package declaring the
// method's receiver type, or "".
func recvPkgBase(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return path.Base(named.Obj().Pkg().Path())
}

// selString renders a selector cheaply for dynamic-call diagnostics.
func selString(sel *ast.SelectorExpr) string {
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		return id.Name + "." + sel.Sel.Name
	}
	if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
		return selString(inner) + "." + sel.Sel.Name
	}
	return sel.Sel.Name
}

// --- .vetx fact serialization ---

// funcSummary is the serialized form of one function's transitive
// summary, exchanged through the vet driver's .vetx fact files so the
// unit-checker mode sees dependency effects.
type funcSummary struct {
	Display string                  `json:"display"`
	HotRoot bool                    `json:"hotroot,omitempty"`
	Effects map[string]*transEffect `json:"effects,omitempty"`

	// Taint summaries (dataflow.go). RetTaint's Src field names the
	// source class; ParamRet lists pass-through parameter indices.
	RetTaint  *taintVal        `json:"rettaint,omitempty"`
	ParamRet  []int            `json:"paramret,omitempty"`
	ParamSink map[int]*sinkVal `json:"paramsink,omitempty"`
}

// ExportSummaries serializes the transitive summaries of the named
// package's functions (after resolving the graph) for a .vetx file.
// Only functions with at least one effect, or that are contract roots,
// are exported.
func (p *Program) ExportSummaries(pkgPath string) ([]byte, error) {
	p.finalize()
	out := map[string]*funcSummary{}
	for _, pp := range p.pkgs {
		if pp.path != pkgPath {
			continue
		}
		for _, n := range pp.nodes {
			s := &funcSummary{Display: n.display, HotRoot: n.hotRoot}
			for c := effectClass(0); c < numEffects; c++ {
				if n.trans[c] == nil {
					continue
				}
				if s.Effects == nil {
					s.Effects = map[string]*transEffect{}
				}
				s.Effects[effectName[c]] = n.trans[c]
			}
			s.RetTaint = n.retTaint
			s.ParamSink = n.paramSink
			if len(n.paramRet) > 0 {
				idx := make([]int, 0, len(n.paramRet))
				for i := range n.paramRet {
					idx = append(idx, i)
				}
				sort.Ints(idx)
				s.ParamRet = idx
			}
			if s.HotRoot || s.Effects != nil || s.RetTaint != nil ||
				s.ParamRet != nil || s.ParamSink != nil {
				out[n.key] = s
			}
		}
	}
	return json.Marshal(out) // map keys marshal sorted: deterministic
}

// ImportSummaries loads dependency summaries (previously produced by
// ExportSummaries) into the graph as declaration-less nodes. Local
// declarations with the same key win.
func (p *Program) ImportSummaries(data []byte) error {
	var in map[string]*funcSummary
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("v2plint: parsing fact summaries: %w", err)
	}
	for key, s := range in {
		if _, exists := p.nodes[key]; exists {
			continue
		}
		n := &funcNode{key: key, display: s.Display, hotRoot: s.HotRoot}
		for name, te := range s.Effects {
			for c := effectClass(0); c < numEffects; c++ {
				if effectName[c] == name {
					n.trans[c] = te
				}
			}
		}
		if s.RetTaint != nil {
			n.retTaint = s.RetTaint
			for c := taintSource(0); c < numTaintSources; c++ {
				if taintSrcName[c] == s.RetTaint.Src {
					n.retTaint.src = c
				}
			}
		}
		if len(s.ParamRet) > 0 {
			n.paramRet = map[int]bool{}
			for _, i := range s.ParamRet {
				n.paramRet[i] = true
			}
		}
		n.paramSink = s.ParamSink
		p.nodes[key] = n
	}
	return nil
}
