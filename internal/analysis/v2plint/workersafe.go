package v2plint

// WorkerSafe is the shard-safety contract (ROADMAP item 1 asks for it
// *before* the engine is parallelized, so the sharded engine is born
// lint-clean). It inspects every worker goroutine spawned as
// `go func(...) {...}(...)` and computes the package-level and captured
// variables the goroutine reads and writes. Every write to such a
// shared variable, and every read of one that some worker goroutine in
// the same function writes, must be one of:
//
//   - an access to a sync / sync/atomic-typed variable (the primitive
//     itself is the synchronization),
//   - a channel operation (send, receive, range, close) — hand-off by
//     design,
//   - made while a sync.Mutex/RWMutex lock is structurally held
//     (Lock()...Unlock() in the same block, or defer Unlock()),
//   - the address argument of a sync/atomic call,
//   - or annotated `//v2plint:workerlocal <reason>` on the access line
//     or the line directly above, asserting disjointness the analyzer
//     cannot see (e.g. index-disjoint writes to a shared slice). The
//     reason is mandatory: a bare workerlocal is itself a finding.
//
// Read-only captures (config, inputs, the spawn-loop index) are always
// fine. Known limits, documented in DESIGN.md §8: goroutines spawned as
// `go namedFunc(...)` are not analyzed (the body is not local to the
// spawn site); mutation through captured pointers'/receivers' methods
// is not modeled (only direct writes, &-escapes, and atomics); writes
// the spawning function itself performs after the spawn are not
// tracked. The race detector remains the dynamic backstop — this
// analyzer makes the *intended* discipline reviewable and enforced at
// lint time.

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"strings"
)

var WorkerSafe = &Analyzer{
	Name: "workersafe",
	Doc: "requires every package-level or captured variable a `go func` " +
		"worker goroutine writes (or reads while another worker access " +
		"writes it) to be protected by a sync primitive, an atomic, a held " +
		"lock, a channel hand-off, or a //v2plint:workerlocal <reason> " +
		"annotation (the shard-safety contract)",
	Run: runWorkerSafe,
}

// A wsAccess is one occurrence of a shared-variable access inside a
// worker goroutine.
type wsAccess struct {
	pos       token.Pos
	obj       *types.Var
	write     bool
	protected bool // under a held lock, atomic-call argument, or channel op
}

func runWorkerSafe(pass *Pass) {
	locals := collectWorkerLocals(pass)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkWorkerFunc(pass, fn, locals)
		}
	}
}

func checkWorkerFunc(pass *Pass, fn *ast.FuncDecl, locals workerLocalSet) {
	var lits []*ast.FuncLit
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				lits = append(lits, lit)
			}
		}
		return true
	})
	if len(lits) == 0 {
		return
	}
	var accesses []wsAccess
	for _, lit := range lits {
		s := &wsScan{pass: pass, lit: lit, out: &accesses}
		s.stmts(lit.Body.List, 0)
	}
	// A variable any worker goroutine writes is shared-mutable: every
	// unprotected access to it (including reads) needs justification.
	written := map[*types.Var]bool{}
	for i := range accesses {
		if accesses[i].write {
			written[accesses[i].obj] = true
		}
	}
	type site struct {
		obj  *types.Var
		line int
	}
	seen := map[site]bool{}
	for i := range accesses {
		a := &accesses[i]
		if a.protected || syncSafeType(a.obj.Type()) {
			continue
		}
		if !a.write && !written[a.obj] {
			continue
		}
		pos := pass.Fset.Position(a.pos)
		if locals.waives(pos) {
			continue
		}
		if seen[site{a.obj, pos.Line}] {
			continue
		}
		seen[site{a.obj, pos.Line}] = true
		verb := "writes"
		if !a.write {
			verb = "reads"
		}
		pass.Reportf(a.pos,
			"worker goroutine %s shared variable %s without synchronization; use a sync primitive, a channel hand-off, or annotate //v2plint:workerlocal <reason>",
			verb, a.obj.Name())
	}
}

// wsScan walks one worker goroutine body recording shared-variable
// accesses with structural lock tracking: Lock()/RLock() as a statement
// raises the held count for the rest of the block, Unlock()/RUnlock()
// lowers it, defer Unlock() keeps it raised to the end.
type wsScan struct {
	pass *Pass
	lit  *ast.FuncLit
	out  *[]wsAccess
}

func (s *wsScan) stmts(list []ast.Stmt, held int) {
	for _, st := range list {
		held = s.stmt(st, held)
	}
}

// stmt scans one statement and returns the held count for the
// statements that follow it in the same block.
func (s *wsScan) stmt(st ast.Stmt, held int) int {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if d := lockDelta(s.pass.TypesInfo, call); d != 0 {
				s.expr(call.Fun, held, false) // the mutex itself: read access, its type exempts it
				if held += d; held < 0 {
					held = 0
				}
				return held
			}
		}
		s.expr(st.X, held, false)
	case *ast.DeferStmt:
		if lockDelta(s.pass.TypesInfo, st.Call) < 0 {
			return held // defer mu.Unlock(): lock stays held to the end
		}
		s.expr(st.Call, held, false)
	case *ast.GoStmt:
		// A nested `go func` literal is analyzed as its own worker;
		// only scan the spawn arguments here.
		if _, ok := st.Call.Fun.(*ast.FuncLit); !ok {
			s.expr(st.Call.Fun, held, false)
		}
		for _, a := range st.Call.Args {
			s.expr(a, held, false)
		}
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			s.expr(rhs, held, false)
		}
		for _, lhs := range st.Lhs {
			s.expr(lhs, held, true)
		}
	case *ast.IncDecStmt:
		s.expr(st.X, held, true)
	case *ast.SendStmt:
		s.chanOp(st.Chan, held)
		s.expr(st.Value, held, false)
	case *ast.IfStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		s.expr(st.Cond, held, false)
		s.stmts(st.Body.List, held)
		if st.Else != nil {
			s.stmt(st.Else, held)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		if st.Cond != nil {
			s.expr(st.Cond, held, false)
		}
		if st.Post != nil {
			s.stmt(st.Post, held)
		}
		s.stmts(st.Body.List, held)
	case *ast.RangeStmt:
		if t := s.pass.TypesInfo.TypeOf(st.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				s.chanOp(st.X, held)
			} else {
				s.expr(st.X, held, false)
			}
		} else {
			s.expr(st.X, held, false)
		}
		if st.Key != nil {
			s.expr(st.Key, held, true)
		}
		if st.Value != nil {
			s.expr(st.Value, held, true)
		}
		s.stmts(st.Body.List, held)
	case *ast.BlockStmt:
		s.stmts(st.List, held)
	case *ast.SwitchStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		if st.Tag != nil {
			s.expr(st.Tag, held, false)
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				s.expr(e, held, false)
			}
			s.stmts(cc.Body, held)
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		s.stmt(st.Assign, held)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			s.stmts(cc.Body, held)
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				s.stmt(cc.Comm, held)
			}
			s.stmts(cc.Body, held)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.expr(e, held, false)
		}
	case *ast.LabeledStmt:
		return s.stmt(st.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.expr(v, held, false)
					}
				}
			}
		}
	}
	return held
}

func (s *wsScan) expr(e ast.Expr, held int, write bool) {
	switch e := e.(type) {
	case *ast.Ident:
		s.record(e, held, write, false)
	case *ast.ParenExpr:
		s.expr(e.X, held, write)
	case *ast.SelectorExpr:
		// Writing a field writes the variable at the base of the chain;
		// qualified identifiers (pkg.Name) resolve through the Sel.
		if id, ok := baseIdent(e); ok {
			s.record(id, held, write, false)
		} else {
			s.expr(e.X, held, write)
		}
	case *ast.IndexExpr:
		s.expr(e.X, held, write)
		s.expr(e.Index, held, false)
	case *ast.SliceExpr:
		s.expr(e.X, held, write)
	case *ast.StarExpr:
		// Writing through a captured pointer mutates shared state the
		// pointer reaches; attribute it to the pointer variable.
		s.expr(e.X, held, write)
	case *ast.UnaryExpr:
		switch e.Op {
		case token.AND:
			// &x escaping into an arbitrary call may be written there.
			s.expr(e.X, held, true)
		case token.ARROW:
			s.chanOp(e.X, held)
		default:
			s.expr(e.X, held, false)
		}
	case *ast.BinaryExpr:
		s.expr(e.X, held, false)
		s.expr(e.Y, held, false)
	case *ast.CallExpr:
		s.call(e, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			s.expr(el, held, false)
		}
	case *ast.KeyValueExpr:
		s.expr(e.Key, held, false)
		s.expr(e.Value, held, false)
	case *ast.TypeAssertExpr:
		s.expr(e.X, held, false)
	case *ast.FuncLit:
		// A plain nested closure still runs on this goroutine (or is
		// handed off); scan it under the current lock state.
		s.stmts(e.Body.List, held)
	}
}

func (s *wsScan) call(call *ast.CallExpr, held int) {
	info := s.pass.TypesInfo
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, pkgPath, ok := pkgFunc(info, sel); ok && pkgPath == "sync/atomic" {
			for _, a := range call.Args {
				if u, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && u.Op == token.AND {
					s.markProtected(u.X, held)
					continue
				}
				s.expr(a, held, false)
			}
			return
		}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "close" && len(call.Args) == 1 {
			s.chanOp(call.Args[0], held)
			return
		}
	}
	s.expr(call.Fun, held, false)
	for _, a := range call.Args {
		s.expr(a, held, false)
	}
}

// chanOp records the channel operand as a protected access: channels
// are the sanctioned hand-off.
func (s *wsScan) chanOp(e ast.Expr, held int) {
	if id, ok := baseIdent(e); ok {
		s.record(id, held, false, true)
	} else {
		s.expr(e, held, false)
	}
}

// markProtected records an atomic-call address argument.
func (s *wsScan) markProtected(e ast.Expr, held int) {
	if id, ok := baseIdent(e); ok {
		s.record(id, held, true, true)
	} else {
		s.expr(e, held, false)
	}
}

// record logs an access to id when it resolves to a variable declared
// outside the goroutine literal (captured or package-level).
func (s *wsScan) record(id *ast.Ident, held int, write, protected bool) {
	v, ok := s.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.IsField() || v.Name() == "_" {
		return
	}
	if v.Pos().IsValid() && v.Pos() >= s.lit.Pos() && v.Pos() < s.lit.End() {
		return // goroutine-local: parameter or body declaration
	}
	*s.out = append(*s.out, wsAccess{
		pos:       id.Pos(),
		obj:       v,
		write:     write,
		protected: protected || held > 0,
	})
}

// baseIdent unwraps selector/index/star/paren chains to the variable at
// the base, e.g. reports[i] → reports, w.Cfg.Seed → w.
func baseIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// lockDelta classifies a call as taking (+1) or releasing (-1) a
// sync.Mutex/RWMutex-style lock, by method name and receiver package.
func lockDelta(info *types.Info, call *ast.CallExpr) int {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0
	}
	name, pkgBase, ok := methodRecvPkgBase(info, sel)
	if !ok || pkgBase != "sync" {
		return 0
	}
	switch name {
	case "Lock", "RLock":
		return 1
	case "Unlock", "RUnlock":
		return -1
	}
	return 0
}

// syncSafeType reports whether the variable's type is itself a
// synchronization primitive (sync or sync/atomic named type, possibly
// behind a pointer) or a channel.
func syncSafeType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
		switch path.Base(named.Obj().Pkg().Path()) {
		case "sync", "atomic":
			return true
		}
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

// --- //v2plint:workerlocal annotations ---

// workerLocalSet records reason-carrying workerlocal annotations:
// file → line → true.
type workerLocalSet map[string]map[int]bool

// collectWorkerLocals scans comments for //v2plint:workerlocal
// annotations, reporting bare ones (no reason) as findings and
// returning the reasoned ones for waiving.
func collectWorkerLocals(pass *Pass) workerLocalSet {
	out := workerLocalSet{}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if text != "v2plint:workerlocal" && !strings.HasPrefix(text, "v2plint:workerlocal ") {
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(text, "v2plint:workerlocal"))
				if reason == "" {
					pass.Reportf(c.Pos(), "//v2plint:workerlocal needs a reason: why is the access safe without synchronization?")
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = map[int]bool{}
				}
				out[pos.Filename][pos.Line] = true
			}
		}
	}
	return out
}

// waives reports whether a reasoned workerlocal annotation covers the
// access position (same line or the line directly above).
func (s workerLocalSet) waives(pos token.Position) bool {
	lines := s[pos.Filename]
	return lines != nil && (lines[pos.Line] || lines[pos.Line-1])
}
