package v2plint_test

import (
	"testing"

	"switchv2p/internal/analysis/v2plint"
	"switchv2p/internal/analysis/v2plint/analysistest"
)

func TestDetFlow(t *testing.T) {
	// "detflow/helper" is listed first so the cross-package summaries
	// (helper.Stamp's retTaint, helper.Scale's paramRet) resolve against
	// the same type-checked instance the Program holds. The main package
	// covers every source × sink class plus the multi-hop witnesses;
	// "detflow/clean" is the all-silent negative: canonicalized map
	// order, flow-sensitive kills, and a reasoned waiver.
	analysistest.Run(t, analysistest.TestData(t), v2plint.DetFlow,
		"detflow/helper", "detflow", "detflow/clean")
}
