package v2plint_test

import (
	"testing"

	"switchv2p/internal/analysis/v2plint"
	"switchv2p/internal/analysis/v2plint/analysistest"
)

func TestSchemeComplete(t *testing.T) {
	// "schemecomplete" covers the base shapes; "schemecomplete/hostscheme"
	// covers the host-tier scheme family (no-op flush, flush inherited
	// through an embedded switch tier, missing hook).
	analysistest.RunWithSuggestedFixes(t, analysistest.TestData(t), v2plint.SchemeComplete,
		"schemecomplete", "schemecomplete/hostscheme")
}
