package v2plint

// Interprocedural taint dataflow for the detflow analyzer (v2plint v4).
// The call graph (callgraph.go) tracks *effects* — "this function
// allocates somewhere". Determinism taint is a different question:
// "does a value *derived from* a nondeterministic source ever *reach*
// a determinism-critical sink?" — which needs value flow, not just
// reachability. This file adds that layer on top of the same Program:
//
// Sources (the taint lattice's non-bottom points):
//   - the wall clock (time.Now / time.Since / time.Until)
//   - the global math/rand generator (package-level draw functions)
//   - map iteration order (the key/value of a `range` over a map)
//   - pointer identity (a pointer converted to uintptr — the numeric
//     address varies run to run under ASLR and GC moves)
//
// Sinks (where tainted values must never arrive):
//   - scheduled event keys/times (arguments of the eventq scheduling
//     methods At/After/AtTimed/AfterTimed)
//   - scheme cache state (values or keys stored into fields of a
//     simnet.Scheme implementor or a struct embedded in one)
//   - report fields (assignments into fields of *Report types)
//   - telemetry output (arguments of telemetry-type methods, and
//     assignments into telemetry-type fields)
//
// The per-function analysis is flow-sensitive: assigning a clean value
// kills a variable's taint, branches merge by union, loop bodies are
// iterated to a (two-pass) fixed point so loop-carried taint is seen.
// Interprocedurally, three summaries are computed per function by a
// whole-Program fixed point and serialized through the .vetx facts:
//
//   - retTaint: the function's results carry taint from a source
//     (with the witness chain from the source outward),
//   - paramRet: parameter i flows to a result (taint passes through),
//   - paramSink: parameter i reaches a sink inside the function or a
//     callee (with the witness chain from the call down to the sink).
//
// A finding is minted where the two half-chains meet: the call (or
// statement) at which a source-tainted value enters a sink-reaching
// position, rendered source-first:
//
//	time.Now → helper.clock → hostscheme.stamp → hostscheme.schedule → eventq.Queue.After
//
// Soundness limits (documented in DESIGN.md §8): the analysis is
// field-insensitive (storing a tainted value into a container or
// struct taints the whole variable; reading any element of a tainted
// container reads taint), function-literal bodies are scanned inline
// under the enclosing environment (a closure invoked elsewhere is
// analyzed where it is written, not where it runs), receivers are not
// tracked as taint carriers, and dynamic calls through func values
// neither produce nor propagate taint.

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
	"time"
)

// A taintSource is one point of the taint lattice above bottom.
type taintSource int

const (
	taintWallClock taintSource = iota
	taintGlobalRand
	taintMapOrder
	taintPtrIdentity
	numTaintSources
	// taintParam marks provenance from a function parameter rather than
	// a source; the param index lives in taintVal.param.
	taintParam taintSource = -1
)

// taintSrcName keys the fact serialization; taintSrcNoun is the phrase
// diagnostics use.
var taintSrcName = [numTaintSources]string{
	"wallclock", "globalrand", "maporder", "ptridentity",
}

var taintSrcNoun = [numTaintSources]string{
	taintWallClock:   "the wall clock",
	taintGlobalRand:  "the global math/rand generator",
	taintMapOrder:    "map iteration order",
	taintPtrIdentity: "pointer identity",
}

// A taintVal witnesses one tainted value: the source it derives from
// and the chain of function displays it traveled through (ordered from
// the source outward), or — when src == taintParam — the parameter it
// derives from.
type taintVal struct {
	Src    string   `json:"src"`
	Chain  []string `json:"chain,omitempty"`
	Detail string   `json:"detail"`

	src   taintSource
	param int
	pos   token.Pos
}

// A sinkVal witnesses one sink a parameter reaches: the chain of
// function displays from the first callee down to the sink (empty for
// a sink in the function's own body) and the terminal sink construct.
type sinkVal struct {
	Sink   string   `json:"sink"`
	Chain  []string `json:"chain,omitempty"`
	Detail string   `json:"detail"`
}

// Sink classes.
const (
	sinkEventKey    = "eventkey"
	sinkSchemeState = "schemestate"
	sinkReport      = "reportfield"
	sinkTelemetry   = "telemetry"
)

var sinkNoun = map[string]string{
	sinkEventKey:    "a scheduled event key",
	sinkSchemeState: "scheme cache state",
	sinkReport:      "a report field",
	sinkTelemetry:   "telemetry output",
}

// A flowFinding is one fully-witnessed source→sink flow, minted during
// the whole-Program taint fixed point and reported by detflow when its
// owning package's pass runs.
type flowFinding struct {
	pos     token.Pos
	src     *taintVal
	sink    *sinkVal
	fnDisp  string // display of the function owning the flow
	viaCall string // display of the callee the taint entered, "" for a local sink
}

// computeTaint runs the whole-Program taint fixed point after the call
// graph is resolved. It fills each node's retTaint/paramRet/paramSink
// summaries and flowFinds list.
func (p *Program) computeTaint() {
	start := time.Now()
	stateTypes := p.schemeStateTypes()
	keys := make([]string, 0, len(p.nodes))
	for k := range p.nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// Iterate to a summary fixed point. Each round rescans every local
	// declaration; the final round (no summary changed) leaves complete
	// findings behind. Chains through recursion are cut by first-wins.
	for round := 0; ; round++ {
		changed := false
		for _, k := range keys {
			n := p.nodes[k]
			if n.decl == nil {
				continue
			}
			pp := p.pkgOf(n)
			if pp == nil {
				continue
			}
			s := &taintScan{
				prog:       p,
				info:       pp.info,
				n:          n,
				stateTypes: stateTypes,
			}
			if s.run() {
				changed = true
			}
		}
		if !changed || round > 32 {
			break
		}
	}
	p.addTiming("dataflow", start)
}

// pkgOf returns the progPkg a local node was declared in.
func (p *Program) pkgOf(n *funcNode) *progPkg {
	for _, pp := range p.pkgs {
		if pp.path == n.pkgPath {
			return pp
		}
	}
	return nil
}

// receiverMutates reports whether the method named by key writes
// through its receiver — directly (assignment, ++/--, delete rooted at
// the receiver variable) or by calling another same-package
// pointer-receiver method that does. Read-only lookups (topology
// distance queries, tenancy checks) return false, so calling them on a
// state-rooted path is not a state mutation. Memoized on the Program;
// cycles resolve optimistically (a recursive set with no direct write
// anywhere is read-only).
func (p *Program) receiverMutates(key string) bool {
	if p.recvWrites == nil {
		p.recvWrites = map[string]bool{}
	}
	return p.receiverMutatesRec(key, map[string]bool{})
}

func (p *Program) receiverMutatesRec(key string, visiting map[string]bool) bool {
	if done, ok := p.recvWrites[key]; ok {
		return done
	}
	if visiting[key] {
		return false
	}
	visiting[key] = true
	n := p.nodes[key]
	if n == nil || n.decl == nil || n.decl.Recv == nil ||
		len(n.decl.Recv.List) == 0 || len(n.decl.Recv.List[0].Names) == 0 {
		return false // no body or unnamed receiver: nothing provably written
	}
	pp := p.pkgOf(n)
	if pp == nil {
		return false
	}
	recv, ok := pp.info.Defs[n.decl.Recv.List[0].Names[0]].(*types.Var)
	if !ok {
		return false
	}
	rootsRecv := func(e ast.Expr) bool {
		id, ok := baseIdent(e)
		if !ok {
			return false
		}
		v, _ := pp.info.Uses[id].(*types.Var)
		return v == recv
	}
	writes := false
	ast.Inspect(n.decl.Body, func(x ast.Node) bool {
		if writes {
			return false
		}
		switch x := x.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if _, isIdent := lhs.(*ast.Ident); !isIdent && rootsRecv(lhs) {
					writes = true
				}
			}
		case *ast.IncDecStmt:
			if rootsRecv(x.X) {
				writes = true
			}
		case *ast.CallExpr:
			fun := ast.Unparen(x.Fun)
			if id, ok := fun.(*ast.Ident); ok {
				if b, ok := pp.info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" &&
					len(x.Args) > 0 && rootsRecv(x.Args[0]) {
					writes = true
				}
				return true
			}
			sel, ok := fun.(*ast.SelectorExpr)
			if !ok || !rootsRecv(sel.X) {
				return true
			}
			m, ok := pp.info.Uses[sel.Sel].(*types.Func)
			if !ok || m.Pkg() == nil || m.Pkg().Path() != n.pkgPath {
				return true
			}
			sig, ok := m.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			if _, isPtr := sig.Recv().Type().(*types.Pointer); !isPtr {
				return true
			}
			mk, _ := methodKeyOf(m)
			if mk != "" && p.receiverMutatesRec(mk, visiting) {
				writes = true
			}
		}
		return true
	})
	p.recvWrites[key] = writes
	return writes
}

// stateMutatingCall reports whether a pointer-receiver method call is a
// scheme-state mutation when its receiver path roots at state: the
// callee must live in the given package (cross-package receivers —
// topology, eventq — are infrastructure with their own contracts) and
// must actually write its receiver.
func (p *Program) stateMutatingCall(m *types.Func, pkgPath string) bool {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if _, isPtr := sig.Recv().Type().(*types.Pointer); !isPtr {
		return false
	}
	if m.Pkg() == nil || m.Pkg().Path() != pkgPath {
		return false
	}
	key, _ := methodKeyOf(m)
	return key != "" && p.receiverMutates(key)
}

// schemeStateTypes collects, across every added package, the named
// types implementing simnet.Scheme plus every named struct they embed
// (transitively, same package): the types whose fields count as scheme
// cache state for the schemestate sink. Imported summaries contribute
// through the stateType facts instead.
func (p *Program) schemeStateTypes() map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	for _, pp := range p.pkgs {
		if pp.pkg == nil {
			continue
		}
		scheme, _ := schemeInterfaces(pp.pkg)
		if scheme == nil {
			continue
		}
		scope := pp.pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			if !types.Implements(types.NewPointer(named), scheme) {
				continue
			}
			addStateType(out, named)
		}
	}
	return out
}

// addStateType marks the named type and, recursively, every named
// struct it embeds from the same package.
func addStateType(out map[*types.TypeName]bool, named *types.Named) {
	if out[named.Obj()] {
		return
	}
	out[named.Obj()] = true
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Embedded() {
			continue
		}
		t := f.Type()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		en, ok := t.(*types.Named)
		if !ok || en.Obj().Pkg() != named.Obj().Pkg() {
			continue
		}
		if _, isStruct := en.Underlying().(*types.Struct); isStruct {
			addStateType(out, en)
		}
	}
}

// isSchemeStateType reports whether t (possibly behind a pointer) is a
// scheme-state named type.
func isSchemeStateType(stateTypes map[*types.TypeName]bool, t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && stateTypes[named.Obj()]
}

// --- the per-function flow-sensitive scan ---

// A taintEnv maps variables to their current taint; absent means clean.
type taintEnv map[*types.Var]*taintVal

func (e taintEnv) clone() taintEnv {
	out := make(taintEnv, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// merge unions other into e (first-wins on conflict, so chains stay
// deterministic given deterministic scan order).
func (e taintEnv) merge(other taintEnv) {
	for k, v := range other {
		if _, ok := e[k]; !ok {
			e[k] = v
		}
	}
}

type taintScan struct {
	prog       *Program
	info       *types.Info
	n          *funcNode
	stateTypes map[*types.TypeName]bool

	params  map[*types.Var]int
	sites   map[token.Pos]*callSite
	inLit   int // > 0 while scanning a function-literal body
	changed bool
	finds   []*flowFinding
}

// run scans the node's declaration and returns whether any summary
// changed. Findings are rebuilt from scratch every round; the last
// round's set is final.
func (s *taintScan) run() bool {
	fn := s.n.decl
	s.params = map[*types.Var]int{}
	env := taintEnv{}
	i := 0
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := s.info.Defs[name].(*types.Var); ok {
					s.params[v] = i
					env[v] = &taintVal{src: taintParam, param: i}
				}
				i++
			}
			if len(field.Names) == 0 {
				i++
			}
		}
	}
	s.sites = map[token.Pos]*callSite{}
	for _, cs := range s.n.calls {
		s.sites[cs.pos] = cs
	}
	s.block(fn.Body.List, env)
	// Loop bodies are scanned twice, so the same sink hit can be minted
	// twice at one position; dedup keeps findings stable.
	seen := map[string]bool{}
	var deduped []*flowFinding
	for _, f := range s.finds {
		k := itoa(int(f.pos)) + "/" + f.sink.Sink + "/" + f.src.Detail
		if !seen[k] {
			seen[k] = true
			deduped = append(deduped, f)
		}
	}
	if !taintFindsEqual(s.n.flowFinds, deduped) {
		s.n.flowFinds = deduped
	}
	return s.changed
}

func taintFindsEqual(a, b []*flowFinding) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].pos != b[i].pos || a[i].sink.Sink != b[i].sink.Sink {
			return false
		}
	}
	return true
}

// block scans a statement list, threading the environment through.
func (s *taintScan) block(list []ast.Stmt, env taintEnv) {
	for _, st := range list {
		s.stmt(st, env)
	}
}

func (s *taintScan) stmt(st ast.Stmt, env taintEnv) {
	switch st := st.(type) {
	case *ast.AssignStmt:
		s.assign(st, env)
	case *ast.IncDecStmt:
		s.expr(st.X, env)
	case *ast.ExprStmt:
		s.expr(st.X, env)
	case *ast.SendStmt:
		s.expr(st.Chan, env)
		s.expr(st.Value, env)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var tv *taintVal
					if i < len(vs.Values) {
						tv = s.expr(vs.Values[i], env)
					} else if len(vs.Values) == 1 {
						tv = s.expr(vs.Values[0], env)
					}
					s.setVar(env, name, tv)
				}
			}
		}
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init, env)
		}
		s.expr(st.Cond, env)
		thenEnv := env.clone()
		s.block(st.Body.List, thenEnv)
		if st.Else != nil {
			elseEnv := env.clone()
			s.stmt(st.Else, elseEnv)
			env.merge(elseEnv)
		}
		env.merge(thenEnv)
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init, env)
		}
		// Two passes expose loop-carried taint (x picks up taint on
		// iteration 1, reaches a sink on iteration 2).
		for i := 0; i < 2; i++ {
			if st.Cond != nil {
				s.expr(st.Cond, env)
			}
			body := env.clone()
			s.block(st.Body.List, body)
			if st.Post != nil {
				s.stmt(st.Post, body)
			}
			env.merge(body)
		}
	case *ast.RangeStmt:
		xt := s.expr(st.X, env)
		var kv *taintVal
		if t := s.info.TypeOf(st.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				kv = newSourceTaint(taintMapOrder, "range over "+renderExpr(st.X), st.Pos())
			}
		}
		if kv == nil {
			kv = xt
		}
		if st.Key != nil {
			if id, ok := st.Key.(*ast.Ident); ok {
				s.setVar(env, id, kv)
			}
		}
		if st.Value != nil {
			if id, ok := st.Value.(*ast.Ident); ok {
				s.setVar(env, id, kv)
			}
		}
		for i := 0; i < 2; i++ {
			body := env.clone()
			s.block(st.Body.List, body)
			env.merge(body)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.noteReturn(s.expr(e, env))
		}
	case *ast.BlockStmt:
		s.block(st.List, env.clone())
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init, env)
		}
		if st.Tag != nil {
			s.expr(st.Tag, env)
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				s.expr(e, env)
			}
			caseEnv := env.clone()
			s.block(cc.Body, caseEnv)
			env.merge(caseEnv)
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init, env)
		}
		s.stmt(st.Assign, env)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			caseEnv := env.clone()
			s.block(cc.Body, caseEnv)
			env.merge(caseEnv)
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			caseEnv := env.clone()
			if cc.Comm != nil {
				s.stmt(cc.Comm, caseEnv)
			}
			s.block(cc.Body, caseEnv)
			env.merge(caseEnv)
		}
	case *ast.GoStmt:
		s.expr(st.Call, env)
	case *ast.DeferStmt:
		s.expr(st.Call, env)
	case *ast.LabeledStmt:
		s.stmt(st.Stmt, env)
	}
}

// assign computes RHS taints, checks sink positions on the LHS, and
// updates the environment (flow-sensitively: a clean RHS kills taint).
func (s *taintScan) assign(st *ast.AssignStmt, env taintEnv) {
	var taints []*taintVal
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		tv := s.expr(st.Rhs[0], env)
		for range st.Lhs {
			taints = append(taints, tv)
		}
	} else {
		for _, rhs := range st.Rhs {
			taints = append(taints, s.expr(rhs, env))
		}
	}
	for i, lhs := range st.Lhs {
		if i >= len(taints) {
			break
		}
		tv := taints[i]
		// Compound assignment (+=, etc.) keeps existing taint alive.
		if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
			if old := s.expr(lhs, env); tv == nil {
				tv = old
			}
		}
		switch lhs := lhs.(type) {
		case *ast.Ident:
			s.setVar(env, lhs, tv)
		case *ast.SelectorExpr:
			if tv != nil {
				s.checkWritePath(lhs, tv, st.Pos())
			}
			s.taintBase(env, lhs, tv)
		case *ast.IndexExpr:
			idxT := s.expr(lhs.Index, env)
			if tv == nil {
				tv = idxT
			}
			// A map store keyed (or valued) by map-iteration-derived data
			// is canonicalizing: maps have no order, so the resulting
			// contents are the same whatever order the source map was
			// visited in. Other source classes (wall clock, rand) still
			// make the contents run-dependent and stay tainted.
			if tv != nil && tv.src == taintMapOrder {
				if t := s.info.TypeOf(lhs.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						tv = nil
					}
				}
			}
			if tv != nil {
				s.checkWritePath(lhs, tv, st.Pos())
			}
			s.taintBase(env, lhs, tv)
		case *ast.StarExpr:
			s.taintBase(env, lhs, tv)
		}
	}
}

// setVar binds (or clears) a variable's taint.
func (s *taintScan) setVar(env taintEnv, id *ast.Ident, tv *taintVal) {
	obj := s.info.Defs[id]
	if obj == nil {
		obj = s.info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	if tv == nil {
		delete(env, v)
	} else {
		env[v] = tv
	}
}

// taintBase propagates a write-through taint (x.f = tainted,
// m[k] = tainted) onto the base variable: the analysis is
// field-insensitive, so the container becomes tainted.
func (s *taintScan) taintBase(env taintEnv, e ast.Expr, tv *taintVal) {
	if tv == nil {
		return
	}
	if id, ok := baseIdent(e); ok {
		if v, ok := s.info.Uses[id].(*types.Var); ok {
			if _, already := env[v]; !already {
				env[v] = tv
			}
		}
	}
}

// checkWritePath classifies an assignment whose LHS is a selector or
// index path as a sink: it walks the whole path down to the base, and
// any field selector through a scheme-state, report, or telemetry type
// along the way makes the write a sink (so t.pending[host][vip] = x is
// a scheme-state write even though the immediate LHS is an index
// expression).
func (s *taintScan) checkWritePath(root ast.Expr, tv *taintVal, pos token.Pos) {
	detail := renderExpr(root)
	e := ast.Unparen(root)
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if v, ok := s.info.Uses[x.Sel].(*types.Var); ok && v.IsField() {
				recvT := s.info.TypeOf(x.X)
				switch {
				case isSchemeStateType(s.stateTypes, recvT):
					s.sinkHit(tv, &sinkVal{Sink: sinkSchemeState, Detail: "write to " + detail}, pos, "")
					return
				case isReportType(recvT):
					s.sinkHit(tv, &sinkVal{Sink: sinkReport, Detail: "write to " + detail}, pos, "")
					return
				case namedFromPkgT(recvT, "telemetry"):
					s.sinkHit(tv, &sinkVal{Sink: sinkTelemetry, Detail: "write to " + detail}, pos, "")
					return
				}
			}
			e = ast.Unparen(x.X)
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
		default:
			return
		}
	}
}

// sinkHit records a tainted value arriving at a sink: a finding when
// the taint derives from a real source, a paramSink summary when it
// derives from a parameter.
func (s *taintScan) sinkHit(tv *taintVal, sink *sinkVal, pos token.Pos, viaCall string) {
	if tv == nil {
		return
	}
	if tv.src == taintParam {
		if s.n.paramSink == nil {
			s.n.paramSink = map[int]*sinkVal{}
		}
		if s.n.paramSink[tv.param] == nil {
			s.n.paramSink[tv.param] = sink
			s.changed = true
		}
		return
	}
	s.finds = append(s.finds, &flowFinding{
		pos:     pos,
		src:     tv,
		sink:    sink,
		fnDisp:  s.n.display,
		viaCall: viaCall,
	})
}

// noteReturn records return-position taint into the summaries.
func (s *taintScan) noteReturn(tv *taintVal) {
	if tv == nil || s.inLit > 0 {
		return
	}
	if tv.src == taintParam {
		if s.n.paramRet == nil {
			s.n.paramRet = map[int]bool{}
		}
		if !s.n.paramRet[tv.param] {
			s.n.paramRet[tv.param] = true
			s.changed = true
		}
		return
	}
	if s.n.retTaint == nil {
		s.n.retTaint = tv
		s.changed = true
	}
}

// expr computes the taint of an expression (nil = clean), recording
// sink hits and summary contributions along the way.
func (s *taintScan) expr(e ast.Expr, env taintEnv) *taintVal {
	switch e := e.(type) {
	case nil:
		return nil
	case *ast.Ident:
		if v, ok := s.info.Uses[e].(*types.Var); ok {
			return env[v]
		}
		return nil
	case *ast.ParenExpr:
		return s.expr(e.X, env)
	case *ast.SelectorExpr:
		// Field read off a tainted base reads taint (field-insensitive).
		return s.expr(e.X, env)
	case *ast.IndexExpr:
		bt := s.expr(e.X, env)
		it := s.expr(e.Index, env)
		if bt != nil {
			return bt
		}
		return it
	case *ast.SliceExpr:
		return s.expr(e.X, env)
	case *ast.StarExpr:
		return s.expr(e.X, env)
	case *ast.UnaryExpr:
		return s.expr(e.X, env)
	case *ast.BinaryExpr:
		xt := s.expr(e.X, env)
		yt := s.expr(e.Y, env)
		if xt != nil {
			return xt
		}
		return yt
	case *ast.CallExpr:
		return s.call(e, env)
	case *ast.CompositeLit:
		var out *taintVal
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if t := s.expr(el, env); t != nil && out == nil {
				out = t
			}
		}
		return out
	case *ast.TypeAssertExpr:
		return s.expr(e.X, env)
	case *ast.FuncLit:
		// Closure bodies are scanned inline under a copy of the current
		// environment: sinks inside a scheduled closure are flows of the
		// function that wrote the closure. Return statements inside the
		// literal are the literal's own, though — they must not feed the
		// enclosing function's return-taint summary (a sort comparator
		// returning a tainted comparison is not the function returning
		// taint).
		s.inLit++
		s.block(e.Body.List, env.clone())
		s.inLit--
		return nil
	case *ast.KeyValueExpr:
		return s.expr(e.Value, env)
	}
	return nil
}

// call handles sources, sinks, conversions, and interprocedural
// propagation at one call site.
func (s *taintScan) call(call *ast.CallExpr, env taintEnv) *taintVal {
	fun := ast.Unparen(call.Fun)

	// Conversions: T(x) propagates x's taint; uintptr(ptr) mints
	// pointer-identity taint.
	if tv, ok := s.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		argT := s.info.TypeOf(call.Args[0])
		at := s.expr(call.Args[0], env)
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.Uintptr && isPointerLike(argT) {
			return newSourceTaint(taintPtrIdentity, "uintptr("+renderExpr(call.Args[0])+")", call.Pos())
		}
		return at
	}

	// Builtins: append/min/max propagate, delete is a possible
	// scheme-state sink, the rest launder taint (len of a tainted map is
	// a deterministic count).
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := s.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append", "min", "max":
				var out *taintVal
				for _, a := range call.Args {
					if t := s.expr(a, env); t != nil && out == nil {
						out = t
					}
				}
				return out
			case "delete":
				if len(call.Args) == 2 {
					mt := s.info.TypeOf(call.Args[0])
					kt := s.expr(call.Args[1], env)
					s.expr(call.Args[0], env)
					// Map deletes, like map stores, canonicalize
					// map-iteration-order taint (collect-and-clear loops).
					if kt != nil && kt.src != taintMapOrder && s.deleteOnSchemeState(call.Args[0], mt) {
						s.sinkHit(kt, &sinkVal{Sink: sinkSchemeState, Detail: "delete from " + renderExpr(call.Args[0])}, call.Pos(), "")
					}
				}
				return nil
			default:
				for _, a := range call.Args {
					s.expr(a, env)
				}
				return nil
			}
		}
	}

	// Argument taints (computed once, reused below).
	argT := make([]*taintVal, len(call.Args))
	for i, a := range call.Args {
		argT[i] = s.expr(a, env)
	}

	// Source calls.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if fnObj, pkgPath, ok := pkgFunc(s.info, sel); ok {
			switch {
			case pkgPath == "sort" || (pkgPath == "slices" && strings.HasPrefix(fnObj.Name(), "Sort")):
				// Sorting canonicalizes order: the slice's contents no
				// longer depend on how they were discovered.
				for _, a := range call.Args {
					if id, ok := ast.Unparen(a).(*ast.Ident); ok {
						if v, ok := s.info.Uses[id].(*types.Var); ok {
							delete(env, v)
						}
					}
				}
				return nil
			case pkgPath == "time" && wallClockFuncs[fnObj.Name()]:
				return newSourceTaint(taintWallClock, "time."+fnObj.Name(), call.Pos())
			case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !randConstructors[fnObj.Name()]:
				return newSourceTaint(taintGlobalRand, "rand."+fnObj.Name(), call.Pos())
			}
		}
		// Sink calls by receiver.
		if m, ok := s.info.Uses[sel.Sel].(*types.Func); ok {
			if sig, ok := m.Type().(*types.Signature); ok && sig.Recv() != nil {
				recvT := s.info.TypeOf(sel.X)
				switch {
				case recvPkgBaseOf(recvT) == "eventq" && schedMethods[m.Name()]:
					for i, at := range argT {
						if at != nil {
							s.sinkHit(at, &sinkVal{Sink: sinkEventKey, Detail: renderExpr(sel) + " arg " + itoa(i+1)}, call.Args[i].Pos(), "")
						}
					}
				case recvPkgBaseOf(recvT) == "telemetry":
					for i, at := range argT {
						if at != nil {
							s.sinkHit(at, &sinkVal{Sink: sinkTelemetry, Detail: renderExpr(sel) + " arg " + itoa(i+1)}, call.Args[i].Pos(), "")
						}
					}
				case s.schemeStateMethodCall(sel, m):
					for i, at := range argT {
						if at != nil {
							s.sinkHit(at, &sinkVal{Sink: sinkSchemeState, Detail: renderExpr(sel) + " arg " + itoa(i+1)}, call.Args[i].Pos(), "")
						}
					}
				}
			}
		}
	}

	// Interprocedural propagation through resolved call targets.
	cs := s.sites[call.Pos()]
	if cs == nil {
		return nil
	}
	var out *taintVal
	for _, tgt := range cs.targets {
		callee := s.prog.node(tgt.key)
		if callee == nil {
			continue
		}
		// Tainted argument meeting a sink-reaching parameter.
		for i, at := range argT {
			if at == nil || callee.paramSink == nil {
				continue
			}
			sv := callee.paramSink[i]
			if sv == nil {
				continue
			}
			chained := &sinkVal{
				Sink:   sv.Sink,
				Chain:  append([]string{tgt.display}, sv.Chain...),
				Detail: sv.Detail,
			}
			s.sinkHit(at, chained, call.Args[i].Pos(), tgt.display)
		}
		if out == nil && callee.retTaint != nil {
			rt := callee.retTaint
			out = &taintVal{
				src:    rt.src,
				Src:    rt.Src,
				Chain:  append(append([]string{}, rt.Chain...), tgt.display),
				Detail: rt.Detail,
				pos:    call.Pos(),
			}
		}
		// Taint passing through the callee and back out.
		if out == nil && callee.paramRet != nil {
			for i, at := range argT {
				if at != nil && callee.paramRet[i] {
					out = &taintVal{
						src:    at.src,
						param:  at.param,
						Src:    at.Src,
						Chain:  append(append([]string{}, at.Chain...), tgt.display),
						Detail: at.Detail,
						pos:    call.Pos(),
					}
					break
				}
			}
		}
	}
	return out
}

// deleteOnSchemeState reports whether the delete target is (or is
// reached through) a field of a scheme-state type.
func (s *taintScan) deleteOnSchemeState(e ast.Expr, _ types.Type) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if v, ok := s.info.Uses[x.Sel].(*types.Var); ok && v.IsField() {
				if isSchemeStateType(s.stateTypes, s.info.TypeOf(x.X)) {
					return true
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return false
		}
	}
}

// schemeStateMethodCall reports whether sel is a state-mutating method
// call (same-package pointer receiver that writes its receiver) whose
// receiver path roots at a scheme-state field — a mutation of scheme
// cache state.
func (s *taintScan) schemeStateMethodCall(sel *ast.SelectorExpr, m *types.Func) bool {
	if !s.prog.stateMutatingCall(m, s.n.pkgPath) {
		return false
	}
	e := ast.Unparen(sel.X)
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if v, ok := s.info.Uses[x.Sel].(*types.Var); ok && v.IsField() {
				if isSchemeStateType(s.stateTypes, s.info.TypeOf(x.X)) {
					return true
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

// schedMethods are the eventq scheduling entry points whose arguments
// are event keys/times.
var schedMethods = map[string]bool{
	"At": true, "After": true, "AtTimed": true, "AfterTimed": true,
}

// newSourceTaint mints a taintVal at a real source, with both the
// runtime and serialized source identifiers set.
func newSourceTaint(src taintSource, detail string, pos token.Pos) *taintVal {
	return &taintVal{src: src, Src: taintSrcName[src], Detail: detail, pos: pos}
}

// --- small helpers ---

func isPointerLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// isReportType matches named types whose name is Report or ends in
// Report: the result-surface structs whose fields feed EXPERIMENTS
// tables and CI diffs.
func isReportType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return name == "Report" || (len(name) > 6 && name[len(name)-6:] == "Report")
}

func recvPkgBaseOf(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return path.Base(named.Obj().Pkg().Path())
}

func namedFromPkgT(t types.Type, pkgBase string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return namedFromPkg(t, pkgBase)
}

// renderExpr prints an expression compactly for diagnostics (cold path
// only).
func renderExpr(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return "?"
	}
	return buf.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
