package v2plint

// DetFlow reports witnessed nondeterminism taint flows. The heavy
// lifting — flow-sensitive per-function scans plus the whole-Program
// summary fixed point — happens in dataflow.go when the Program is
// finalized; this analyzer surfaces each node's recorded findings at
// its package's pass so they participate in ordinary position sorting
// and //v2plint:allow waiving.
//
// Division of labor with the call-site analyzers: wallclock and
// globalrand flag *calling* the nondeterministic API anywhere in
// simulation code; detflow flags the *value flow* — a wall-clock or
// rand value (or a map-iteration key, or a pointer address) reaching a
// scheduled event key, scheme cache state, a report field, or
// telemetry output, possibly through several calls and packages. Code
// that legitimately reads the wall clock (host-side profiling) is
// waived for wallclock but still must not leak the reading into
// simulation-visible state; detflow is the analyzer that notices when
// it does.

var DetFlow = &Analyzer{
	Name: "detflow",
	Doc: "tracks values derived from the wall clock, the global math/rand " +
		"generator, map iteration order, or pointer identity, and reports " +
		"when one flows into a scheduled event key, scheme cache state, a " +
		"report field, or telemetry output, with the full source→sink " +
		"witness chain",
	Run: runDetFlow,
}

func runDetFlow(pass *Pass) {
	for _, n := range pass.nodes {
		for _, f := range n.flowFinds {
			pass.Reportf(f.pos,
				"value derived from %s flows into %s: %s",
				taintSrcNoun[f.src.src], sinkNoun[f.sink.Sink], f.witness())
		}
	}
}

// witness renders the full source→sink chain of a flow finding,
// source-first:
//
//	time.Now → helper.clock → hostscheme.stamp → hostscheme.schedule → eventq.Queue.After arg 1
func (f *flowFinding) witness() string {
	s := f.src.Detail
	for _, link := range f.src.Chain {
		s += " → " + link
	}
	s += " → " + f.fnDisp
	if f.viaCall != "" && (len(f.sink.Chain) == 0 || f.sink.Chain[0] != f.viaCall) {
		s += " → " + f.viaCall
	}
	for _, link := range f.sink.Chain {
		s += " → " + link
	}
	return s + " → " + f.sink.Detail
}
