package v2plint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
)

// HotPathAlloc enforces the allocation-free hot-path contract from the
// simulator's event loop (PR 3 measured a 9.1x run-alloc win; this pins
// it). A function is on the hot path when its doc comment carries a
// `//v2plint:hotpath` marker, or when it is one of the known
// serializer/ECMP/eventq entry points — the known set means deleting an
// annotation cannot silently un-enforce the core of the contract.
//
// Inside a hot-path function the analyzer flags every construct that
// heap-allocates per call: function literals (escaping closures), map
// and slice composite literals, &T{...} literals, make/new, calls into
// package fmt, non-constant string concatenation, boxing a
// non-pointer-shaped value into an interface, and append whose
// destination is a slice declared inside the function (growth cannot
// amortize into a pooled buffer). Value-typed struct literals and
// appends to fields or parameters are allowed: those are exactly the
// pooling idioms the hot path is built on.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "forbids heap-allocating constructs (closures, map/slice literals, " +
		"make/new, interface boxing, fmt, string concatenation, appends to " +
		"function-local slices) in //v2plint:hotpath functions and the known " +
		"serializer/ECMP/eventq entry points",
	Run: runHotPathAlloc,
}

// knownHotPath names the entry points checked even without an
// annotation, keyed by package-path base and funcKey.
var knownHotPath = map[string]map[string]bool{
	"simnet": {
		"link.enqueue":       true,
		"link.startNext":     true,
		"link.serializeNext": true,
		"link.getEvent":      true,
		"linkEvent.Fire":     true,
		"Engine.ecmpForward": true,
	},
	"eventq": {
		"Queue.AtTimed":    true,
		"Queue.AfterTimed": true,
		"Queue.Step":       true,
	},
}

func runHotPathAlloc(pass *Pass) {
	pkgBase := path.Base(pass.Pkg.Path())
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !funcAnnotated(fn, "hotpath") && !knownHotPath[pkgBase][funcKey(fn)] {
				continue
			}
			checkHotPathBody(pass, fn)
		}
	}
}

func checkHotPathBody(pass *Pass, fn *ast.FuncDecl) {
	name := funcKey(fn)
	info := pass.TypesInfo
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure in hot-path function %s allocates per call; use a pooled typed event (eventq.Timed) instead", name)
			return false // the closure body is off the hot path
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := n.X.(*ast.CompositeLit); isLit {
					pass.Reportf(n.Pos(), "&-composite literal in hot-path function %s heap-allocates per call; reuse a pooled record", name)
					return false
				}
			}
		case *ast.CompositeLit:
			t := info.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal in hot-path function %s heap-allocates per call", name)
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal in hot-path function %s heap-allocates per call", name)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				t := info.TypeOf(n)
				if t != nil && isStringType(t) && !isConstExpr(info, n) {
					pass.Reportf(n.Pos(), "string concatenation in hot-path function %s heap-allocates per call; precompute or use a pooled buffer", name)
				}
			}
		case *ast.CallExpr:
			checkHotPathCall(pass, name, fn, n)
		}
		return true
	})
}

func checkHotPathCall(pass *Pass, fnName string, fn *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo
	// Builtins: make/new allocate; append is checked against its
	// destination; panic/len/cap/copy/delete and friends are fine.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s in hot-path function %s heap-allocates per call; allocate at construction time", b.Name(), fnName)
			case "append":
				checkHotPathAppend(pass, fnName, fn, call)
			}
			return
		}
	}
	// fmt is allocation-heavy (boxing + formatting state).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, pkgPath, ok := pkgFunc(info, sel); ok && pkgPath == "fmt" {
			pass.Reportf(call.Pos(), "fmt call in hot-path function %s allocates per call; move formatting off the hot path", fnName)
			return
		}
	}
	// Conversions: T(x) where T is an interface type boxes x.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			checkBoxing(pass, fnName, tv.Type, call.Args[0])
		}
		return
	}
	// Ordinary calls: passing a concrete value where the callee takes
	// an interface boxes the argument.
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		checkBoxing(pass, fnName, pt, arg)
	}
}

// checkBoxing reports when assigning arg to a parameter/target of type
// to would box a non-pointer-shaped concrete value into an interface.
// Pointer-shaped values (pointers, channels, maps, funcs, unsafe
// pointers) convert without allocating, as do nil and values that are
// already interfaces.
func checkBoxing(pass *Pass, fnName string, to types.Type, arg ast.Expr) {
	if to == nil {
		return
	}
	if _, isIface := to.Underlying().(*types.Interface); !isIface {
		return
	}
	info := pass.TypesInfo
	at := info.TypeOf(arg)
	if at == nil {
		return
	}
	if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if _, ok := at.Underlying().(*types.Interface); ok {
		return
	}
	if isConstExpr(info, arg) {
		// Constants box once into the interface conversion's static
		// data in practice (and are rare enough not to police).
		return
	}
	if pointerShaped(at) {
		return
	}
	pass.Reportf(arg.Pos(), "boxing %s into interface %s in hot-path function %s heap-allocates per call; pass a pointer or a pre-boxed value", at, to, fnName)
}

// checkHotPathAppend flags append whose destination slice is declared
// inside the function body: its growth cannot be pooled across calls.
// Appends to struct fields, package variables, and parameters are the
// designed pooling idiom (amortized to zero) and are allowed.
func checkHotPathAppend(pass *Pass, fnName string, fn *ast.FuncDecl, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil || !obj.Pos().IsValid() {
		return
	}
	if fn.Body != nil && obj.Pos() >= fn.Body.Pos() && obj.Pos() < fn.Body.End() {
		pass.Reportf(call.Pos(), "append to function-local slice %s in hot-path function %s allocates on growth every call; reuse a pooled buffer (field or parameter)", id.Name, fnName)
	}
}

// pointerShaped reports whether values of t fit in an interface word
// without heap allocation.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConstExpr reports whether the expression has a compile-time
// constant value (constant folding means it never allocates at run
// time).
func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// callSignature resolves the signature of an ordinary (non-builtin,
// non-conversion) call.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	t := info.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	return sig
}
