package v2plint_test

import (
	"testing"

	"switchv2p/internal/analysis/v2plint"
	"switchv2p/internal/analysis/v2plint/analysistest"
)

func TestWallClock(t *testing.T) {
	// "simnet" is under the contract and carries the seeded
	// violations; "other" is outside it and must stay silent.
	analysistest.Run(t, analysistest.TestData(t), v2plint.WallClock, "simnet", "other")
}
