// Package v2plint is the repo's custom determinism & correctness lint
// suite. The entire evaluation pipeline rests on the simulator being
// bit-for-bit deterministic: identical configs must yield identical
// Reports at any sweep worker count. Go quietly undermines this — map
// iteration order is randomized, global math/rand is shared process
// state, and wall-clock reads leak into simulated time — so the
// contract is machine-checked here rather than left to convention.
// Later PRs added repo-wide performance and fault-model contracts (an
// allocation-free forwarding hot path, activeFaults-gated fault state,
// a CacheFlusher obligation on every scheme, nil-safe telemetry
// handles); those are machine-checked here too.
//
// The suite ships fifteen analyzers — ten intraprocedural, plus five
// built on the per-Program call graph (see callgraph.go) that resolves
// static calls, concrete method calls, and interface calls via the
// implements-relation, one of which (detflow) adds a flow-sensitive
// taint layer on top (see dataflow.go):
//
//   - detrange: flags `range` over a map whose body feeds an
//     ordering-sensitive sink (append, float accumulation, event
//     scheduling, fmt/CSV/JSON emission) unless the keys are collected
//     and sorted first.
//   - wallclock: forbids time.Now/time.Since/time.Until in the
//     simulation packages (simnet, core, transport, eventq, simtime).
//   - globalrand: forbids package-level math/rand functions in
//     non-test code; randomness must come from an injected seeded
//     *rand.Rand.
//   - simtimeunits: flags arithmetic or conversions mixing
//     time.Duration with simtime types without going through the
//     explicit simtime.FromStd / .Std() converters.
//   - hotpathalloc: forbids heap-allocating constructs (closures,
//     map/slice literals, make/new, interface boxing, fmt, string
//     concatenation, appends to function-local slices) inside
//     functions marked //v2plint:hotpath and the known serializer/
//     ECMP/eventq entry points.
//   - faultgate: requires forwarding-path reads of engine fault state
//     (swDown, gwDown, faultDown, swFaults, lossRand) to be dominated
//     by an activeFaults (or loss-window) check; //v2plint:faultpath
//     marks the reroute slow-path helpers whose callers must gate.
//   - schemecomplete: requires every concrete type implementing
//     simnet.Scheme to also implement simnet.CacheFlusher, so fault
//     injection can flush any scheme's per-switch state.
//   - nilsafemetrics: requires every exported pointer-receiver method
//     on telemetry types (and //v2plint:nilsafe-annotated types) to
//     begin with a nil-receiver guard.
//   - shardowner: the sharded engine's ownership contract — fields of
//     the barrier-side `sharding` struct may be touched only from
//     *sharding methods or functions annotated
//     //v2plint:shardbarrier <reason>.
//   - hotpathreach: extends the hot-path contract transitively — the
//     call closure of every //v2plint:hotpath root (and the known entry
//     points) must be free of heap allocation, fmt, wall-clock reads,
//     and global math/rand; diagnostics carry the witness call chain
//     (ecmpForward → helperX → fmt.Sprintf). Dynamic calls through func
//     values are flagged as statically unresolvable.
//   - workersafe: the shard-safety contract — every package-level or
//     captured variable a `go func` worker goroutine touches must be
//     read-only, a sync/sync-atomic type, protected by a held lock or
//     atomic call, a channel hand-off, or carry a
//     //v2plint:workerlocal <reason> annotation.
//   - planpure: functions reachable from the scenario planner entry
//     points must stay pure functions of (spec, seed): no wall-clock
//     reads, no global rand, no reads of telemetry state or
//     simnet.Counters, directly or transitively.
//   - detflow: interprocedural determinism taint — values derived from
//     the wall clock, the global math/rand generator, map iteration
//     order, or pointer identity must not flow into scheduled event
//     keys, scheme cache state, report fields, or telemetry output;
//     diagnostics carry the full source→sink witness chain.
//   - shardstate: every simnet.Scheme implementor's per-event mutable
//     state must be indexed by the event's slot parameter (per-host /
//     per-switch), or annotated //v2plint:shardlocal <reason> — the
//     machine-checked form of ROADMAP item 3's "pending-install maps
//     and LRU lists are per-event global state" gap.
//   - allowreason: requires every //v2plint:allow waiver to carry a
//     justification after the analyzer list.
//
// A finding can be waived with a `//v2plint:allow <analyzer> <reason>`
// comment on the offending line or the line directly above it, e.g.
// the profiling hook in internal/simnet/engine.go that deliberately
// measures host wall time. The reason is mandatory: a bare waiver is
// itself a finding (allowreason), and allowreason findings cannot be
// waived.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic, SuggestedFix) but is self-contained on
// the standard library, so the module needs no external dependencies.
// cmd/v2plint is the multichecker driver (with -json machine-readable
// output and -fix to apply suggested fixes); it also speaks the
// `go vet -vettool=` unit-checker protocol.
package v2plint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"strings"
)

// An Analyzer describes one lint check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //v2plint:allow annotations.
	Name string
	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string
	// Run performs the check over a single package, reporting findings
	// through the pass.
	Run func(*Pass)
}

// A Pass provides one analyzer with the parsed and type-checked
// representation of a single package, plus the whole-Program call
// graph for the interprocedural analyzers.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Prog is the Program the pass runs under; its resolved call graph
	// backs the interprocedural analyzers (hotpathreach, planpure).
	Prog *Program

	nodes  []*funcNode // this package's graph nodes, declaration order
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportfFix records a finding at pos carrying one suggested fix.
func (p *Pass) ReportfFix(pos token.Pos, fix SuggestedFix, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Fixes:    []SuggestedFix{fix},
	})
}

// A Diagnostic is one lint finding, optionally carrying machine-
// applicable fixes.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
	// Fixes holds suggested fixes, applied by `v2plint -fix` and
	// asserted against .golden files by the analysistest harness.
	Fixes []SuggestedFix
}

// A SuggestedFix is one machine-applicable repair for a finding: a
// message plus a set of non-overlapping text edits.
type SuggestedFix struct {
	// Message describes the repair in one clause ("insert nil guard").
	Message string
	Edits   []TextEdit
}

// A TextEdit replaces the source range [Pos, End) with NewText.
// End == token.NoPos (or End == Pos) denotes a pure insertion at Pos.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// Analyzers returns the full v2plint suite in stable order. The
// interprocedural analyzers (hotpathreach, workersafe, planpure,
// detflow, shardstate) come after the intraprocedural ones;
// allowreason stays last.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetRange, WallClock, GlobalRand, SimTimeUnits,
		HotPathAlloc, FaultGate, SchemeComplete, NilSafeMetrics, ShardOwner,
		HotPathReach, WorkerSafe, PlanPure, DetFlow, ShardState,
		AllowReason,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunPackage runs the given analyzers over one type-checked package and
// returns the findings that are not waived by //v2plint:allow
// annotations, sorted by position. Findings from the allowreason
// analyzer are exempt from waiving: a waiver cannot excuse itself.
//
// RunPackage is the single-package convenience wrapper around Program;
// interprocedural analyzers see only this package's declarations (plus
// whatever summaries a vet driver imported), so interface calls whose
// implementations live elsewhere degrade to "no known implementations".
// Multi-package callers should build a Program directly.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Diagnostic {
	prog := NewProgram(fset)
	prog.Add(files, pkg, info)
	return prog.Run(analyzers)
}

// allowSet records //v2plint:allow annotations: file -> line -> waived
// analyzer names.
type allowSet map[string]map[int]map[string]bool

// collectAllows scans the files' comments for `//v2plint:allow
// name[,name...] reason` annotations. The reason is free-form text and
// is not interpreted here; the allowreason analyzer separately rejects
// waivers that omit it.
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	out := allowSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				fields, ok := allowFields(c)
				if !ok || len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					out[pos.Filename] = lines
				}
				names := lines[pos.Line]
				if names == nil {
					names = map[string]bool{}
					lines[pos.Line] = names
				}
				for _, name := range strings.Split(fields[0], ",") {
					names[strings.TrimSpace(name)] = true
				}
			}
		}
	}
	return out
}

// allowFields parses a comment as a //v2plint:allow annotation and
// returns its whitespace-separated fields (analyzer list first, then
// the reason words), or ok=false when the comment is not an allow
// annotation at all.
func allowFields(c *ast.Comment) ([]string, bool) {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	if !strings.HasPrefix(text, "v2plint:allow") {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, "v2plint:allow"))
	return strings.Fields(rest), true
}

// waives reports whether an annotation on the diagnostic's line, or the
// line directly above it, waives the analyzer.
func (s allowSet) waives(pos token.Position, analyzer string) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if names := lines[line]; names != nil && (names[analyzer] || names["all"]) {
			return true
		}
	}
	return false
}

// --- contract annotations ---

// docAnnotated reports whether the comment group contains a
// `//v2plint:<name>` marker line (optionally followed by free text).
func docAnnotated(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	marker := "v2plint:" + name
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}

// funcAnnotated reports whether the function's doc comment carries a
// `//v2plint:<name>` marker (the annotation grammar for hotpath and
// faultpath: the marker must be part of the doc comment block directly
// above the declaration).
func funcAnnotated(fn *ast.FuncDecl, name string) bool {
	return docAnnotated(fn.Doc, name)
}

// funcKey identifies a function as "Name" (plain function) or
// "Recv.Name" (method, receiver base type with pointers and type
// parameters stripped) for the known hot-path tables.
func funcKey(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch ix := t.(type) {
	case *ast.IndexExpr:
		t = ix.X
	case *ast.IndexListExpr:
		t = ix.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}

// --- shared helpers ---

// isTestFile reports whether the file is a _test.go file; globalrand
// and friends exempt test code.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// pkgFunc resolves sel to a package-level function (no receiver) and
// returns the function and its package path.
func pkgFunc(info *types.Info, sel *ast.SelectorExpr) (*types.Func, string, bool) {
	obj, ok := info.Uses[sel.Sel]
	if !ok {
		return nil, "", false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil, "", false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil, "", false
	}
	return fn, fn.Pkg().Path(), true
}

// methodRecvPkgBase resolves sel to a method and returns the method
// name and the base element of the package path declaring the
// receiver's named type.
func methodRecvPkgBase(info *types.Info, sel *ast.SelectorExpr) (name, pkgBase string, ok bool) {
	obj, found := info.Uses[sel.Sel]
	if !found {
		return "", "", false
	}
	fn, found := obj.(*types.Func)
	if !found {
		return "", "", false
	}
	sig, found := fn.Type().(*types.Signature)
	if !found || sig.Recv() == nil {
		return "", "", false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, found := t.(*types.Named)
	if !found || named.Obj().Pkg() == nil {
		return "", "", false
	}
	return fn.Name(), path.Base(named.Obj().Pkg().Path()), true
}

// namedFromPkg reports whether t is a named type declared in a package
// whose import-path base element is pkgBase.
func namedFromPkg(t types.Type, pkgBase string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && path.Base(obj.Pkg().Path()) == pkgBase
}
