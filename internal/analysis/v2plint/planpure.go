package v2plint

// PlanPure machine-checks the scenario planner's "pure function of
// (spec, seed)" guarantee (DESIGN.md §9): every planning decision must
// be reproducible from the Spec and the seed alone. The planner is
// *allowed* to materialize its plan — reserve VIPs, register flows,
// schedule events; that is its product — but it must never *read* state
// the run mutates (telemetry values, simnet.Counters) or the wall
// clock, directly or through any callee, because a decision based on
// such a read silently breaks same-seed byte-identity.
//
// Roots are the //v2plint:planpure-annotated functions plus the known
// scenario planner entry points (knownPlanPure, so deleting an
// annotation cannot un-enforce the contract). Direct global-rand use is
// left to the globalrand analyzer (it already covers all non-test
// code); transitive global rand is reported here because the sink may
// be individually waived while still poisoning the planner.
//
// Calls through func values are assumed pure (the trace-generator
// registry dispatch), and closure bodies are opaque — both documented
// soundness limits of the call graph.

import "go/token"

var PlanPure = &Analyzer{
	Name: "planpure",
	Doc: "requires scenario planner entry points (//v2plint:planpure and the " +
		"known ones) to stay pure functions of (spec, seed): no wall-clock " +
		"reads, no global math/rand, no reads of telemetry state or " +
		"simnet.Counters, directly or transitively",
	Run: runPlanPure,
}

// knownPlanPure names the planner entry points checked even without an
// annotation, keyed by package-path base and funcKey.
var knownPlanPure = map[string]map[string]bool{
	"scenario": {
		"planFaults":     true,
		"planPopulation": true,
		"rampWarp":       true,
	},
}

// planPureClasses are the effect classes the planner contract forbids
// transitively, in reporting order.
var planPureClasses = []effectClass{effWallClock, effGlobalRand, effStateRead}

func runPlanPure(pass *Pass) {
	for _, n := range pass.nodes {
		if !n.planRoot || n.decl == nil {
			continue
		}
		root := funcKey(n.decl)
		type reported struct {
			pos   token.Pos
			class effectClass
		}
		// Seed the dedup set with direct sites: a telemetry method call
		// is both a direct state read and a call edge into a state-
		// reading callee, and must yield one finding, not two.
		seen := map[reported]bool{}
		for _, site := range n.direct[effWallClock] {
			seen[reported{site.pos, effWallClock}] = true
			pass.Reportf(site.pos,
				"planner function %s reads the wall clock (%s); planning must be a pure function of (spec, seed)",
				root, site.Detail)
		}
		for _, site := range n.direct[effStateRead] {
			seen[reported{site.pos, effStateRead}] = true
			pass.Reportf(site.pos,
				"planner function %s reads mutable run state (%s); planning must be a pure function of (spec, seed)",
				root, site.Detail)
		}
		for _, cs := range n.calls {
			for _, tgt := range cs.targets {
				callee := pass.Prog.node(tgt.key)
				if callee == nil || callee.planRoot || callee.hotRoot {
					continue
				}
				for _, c := range planPureClasses {
					te := callee.trans[c]
					if te == nil || seen[reported{cs.pos, c}] {
						continue
					}
					seen[reported{cs.pos, c}] = true
					pass.Reportf(cs.pos, "planner function %s reaches %s: %s; planning must be a pure function of (spec, seed)",
						root, effectNoun[c], chainString(root, tgt, te))
				}
			}
		}
	}
}
