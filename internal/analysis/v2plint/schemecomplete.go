package v2plint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
)

// SchemeComplete audits the scheme surface: every concrete type that
// satisfies simnet.Scheme must also satisfy simnet.CacheFlusher. Fault
// injection (PR 4) flushes a failed switch's V2P state through the
// CacheFlusher hook on every scheme; a scheme without the method would
// silently keep stale translations across a switch failure and skew
// the recovery experiments the paper's §6 evaluation rests on.
// Stateless schemes implement it as an explicit no-op — the no-op is a
// reviewed statement that there is nothing to flush, not an accident.
//
// The check is types-based (types.Implements on the pointer type, whose
// method set subsumes the value receiver's) and runs over any package
// that defines or imports a package whose path base is "simnet" with
// both interfaces in scope. The suggested fix appends a no-op
// FlushCache stub at the end of the defining file.
var SchemeComplete = &Analyzer{
	Name: "schemecomplete",
	Doc: "requires every concrete type implementing simnet.Scheme to also " +
		"implement simnet.CacheFlusher, so fault recovery can flush any scheme",
	Run: runSchemeComplete,
}

func runSchemeComplete(pass *Pass) {
	scheme, flusher := schemeInterfaces(pass.Pkg)
	if scheme == nil || flusher == nil {
		return
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				checkSchemeType(pass, f, ts, scheme, flusher)
			}
		}
	}
}

func checkSchemeType(pass *Pass, f *ast.File, ts *ast.TypeSpec, scheme, flusher *types.Interface) {
	obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
	if !ok || obj.IsAlias() {
		return
	}
	named, ok := obj.Type().(*types.Named)
	if !ok || named.TypeParams().Len() > 0 {
		return
	}
	if _, isIface := named.Underlying().(*types.Interface); isIface {
		return
	}
	ptr := types.NewPointer(named)
	if !types.Implements(ptr, scheme) || types.Implements(ptr, flusher) {
		return
	}
	name := ts.Name.Name
	// Append the stub at the true end of the file (File.End() can
	// precede trailing comments).
	tf := pass.Fset.File(f.Pos())
	eof := tf.Pos(tf.Size())
	stub := fmt.Sprintf("\n// FlushCache implements simnet.CacheFlusher. %s holds no per-switch\n"+
		"// translation state, so a switch failure flushes nothing. If the scheme\n"+
		"// grows switch-resident state, clear it here.\n"+
		"func (*%s) FlushCache(int32) {}\n", name, name)
	fix := SuggestedFix{
		Message: "add a no-op FlushCache stub",
		Edits:   []TextEdit{{Pos: eof, NewText: []byte(stub)}},
	}
	pass.ReportfFix(ts.Name.Pos(), fix,
		"%s implements simnet.Scheme but not simnet.CacheFlusher; fault recovery cannot flush its per-switch state (add FlushCache, a no-op if stateless)", name)
}

// schemeInterfaces resolves the Scheme and CacheFlusher interfaces from
// the package itself (when its path base is "simnet") or from a
// "simnet" import.
func schemeInterfaces(pkg *types.Package) (scheme, flusher *types.Interface) {
	lookup := func(p *types.Package) (*types.Interface, *types.Interface) {
		return ifaceByName(p, "Scheme"), ifaceByName(p, "CacheFlusher")
	}
	if path.Base(pkg.Path()) == "simnet" {
		return lookup(pkg)
	}
	for _, imp := range pkg.Imports() {
		if path.Base(imp.Path()) == "simnet" {
			return lookup(imp)
		}
	}
	return nil, nil
}

func ifaceByName(p *types.Package, name string) *types.Interface {
	obj, ok := p.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	return iface
}
