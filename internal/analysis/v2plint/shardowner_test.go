package v2plint_test

import (
	"testing"

	"switchv2p/internal/analysis/v2plint"
	"switchv2p/internal/analysis/v2plint/analysistest"
)

func TestShardOwner(t *testing.T) {
	// Covers the *sharding-method exemption (including worker closures
	// inside one), the reasoned shardbarrier waiver, the bare-annotation
	// finding, method-call and Engine-field silence, and the
	// local-alias case.
	analysistest.Run(t, analysistest.TestData(t), v2plint.ShardOwner,
		"shardowner/simnet")
}
