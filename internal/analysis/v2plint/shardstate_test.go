package v2plint_test

import (
	"testing"

	"switchv2p/internal/analysis/v2plint"
	"switchv2p/internal/analysis/v2plint/analysistest"
)

func TestShardState(t *testing.T) {
	// The main package covers unindexed writes, slotless helpers,
	// closure mutations (the pending-install pattern), field-annotation
	// waivers, and the bare-annotation finding; "shardstate/clean" is
	// the all-silent negative: fully slot-indexed state, an annotated
	// counter, and a site waiver.
	analysistest.Run(t, analysistest.TestData(t), v2plint.ShardState,
		"shardstate", "shardstate/clean")
}
