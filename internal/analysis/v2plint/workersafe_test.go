package v2plint_test

import (
	"testing"

	"switchv2p/internal/analysis/v2plint"
	"switchv2p/internal/analysis/v2plint/analysistest"
)

func TestWorkerSafe(t *testing.T) {
	// Covers unprotected writes and reads, every sanctioned discipline
	// (mutex, defer-unlock, atomics, sync-typed variables, channels),
	// the workerlocal waiver, the bare-workerlocal finding, and the
	// named-spawn limit.
	analysistest.Run(t, analysistest.TestData(t), v2plint.WorkerSafe,
		"workersafe")
}
