package v2plint

// Suggested-fix application: turning the TextEdits attached to
// diagnostics into rewritten file contents. Used by `cmd/v2plint -fix`
// and by the analysistest harness's .golden assertions.

import (
	"fmt"
	"go/token"
	"os"
	"sort"
)

// ApplyFixes applies every suggested fix attached to diags and returns
// the rewritten contents keyed by file path. Diagnostics without fixes
// are ignored. Edits within one file must not overlap: adjacent edits
// (one ending exactly where the next starts) are fine, and a zero-length
// edit (pure insertion) may share its offset with the start of a
// replacement — the insertion applies first. Two insertions at the same
// offset are rejected, since their relative order would be ambiguous,
// as are two replacements starting at the same offset.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic) (map[string][]byte, error) {
	type edit struct {
		start, end int
		text       []byte
	}
	perFile := map[string][]edit{}
	for _, d := range diags {
		for _, fix := range d.Fixes {
			for _, e := range fix.Edits {
				pos := fset.Position(e.Pos)
				end := pos
				if e.End.IsValid() {
					end = fset.Position(e.End)
				}
				if end.Filename != pos.Filename {
					return nil, fmt.Errorf("v2plint: fix %q spans files %s and %s", fix.Message, pos.Filename, end.Filename)
				}
				if end.Offset < pos.Offset {
					return nil, fmt.Errorf("v2plint: fix %q has end before start at %s", fix.Message, pos)
				}
				perFile[pos.Filename] = append(perFile[pos.Filename], edit{pos.Offset, end.Offset, e.NewText})
			}
		}
	}
	files := make([]string, 0, len(perFile))
	for file := range perFile {
		files = append(files, file)
	}
	sort.Strings(files)
	out := make(map[string][]byte, len(perFile))
	for _, file := range files {
		edits := perFile[file]
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("v2plint: applying fixes: %w", err)
		}
		sort.SliceStable(edits, func(i, j int) bool {
			if edits[i].start != edits[j].start {
				return edits[i].start < edits[j].start
			}
			// A pure insertion sorts before a replacement starting at
			// the same offset, so the inserted text lands ahead of the
			// replaced range.
			return edits[i].end == edits[i].start && edits[j].end != edits[j].start
		})
		var buf []byte
		prev := 0
		for i, e := range edits {
			sameStartSameKind := i > 0 && e.start == edits[i-1].start &&
				(e.end == e.start) == (edits[i-1].end == edits[i-1].start)
			if e.start < prev || sameStartSameKind {
				return nil, fmt.Errorf("v2plint: overlapping fixes in %s at offset %d", file, e.start)
			}
			if e.end > len(src) {
				return nil, fmt.Errorf("v2plint: fix past end of %s", file)
			}
			buf = append(buf, src[prev:e.start]...)
			buf = append(buf, e.text...)
			prev = e.end
		}
		buf = append(buf, src[prev:]...)
		out[file] = buf
	}
	return out, nil
}
