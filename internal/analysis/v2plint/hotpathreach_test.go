package v2plint_test

import (
	"testing"

	"switchv2p/internal/analysis/v2plint"
	"switchv2p/internal/analysis/v2plint/analysistest"
)

func TestHotPathReach(t *testing.T) {
	// "hotpathreach/helper" is listed first so the cross-package edge
	// (root → mid → helper.Grow) resolves against the same type-checked
	// instance — the harness's dependency-first rule. The main package
	// covers one-hop, two-hop/cross-package, interface-resolved, and
	// dynamic findings plus the assume/guarantee and waiver negatives.
	// "hotpathreach/hostscheme" adds the host-cache scheme-family shape:
	// a hot resolve root reaching the install machinery's lazy map
	// allocation, and silent edges into the annotated insert sub-root.
	analysistest.Run(t, analysistest.TestData(t), v2plint.HotPathReach,
		"hotpathreach/helper", "hotpathreach", "hotpathreach/hostscheme")
}
