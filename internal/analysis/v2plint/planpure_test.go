package v2plint_test

import (
	"testing"

	"switchv2p/internal/analysis/v2plint"
	"switchv2p/internal/analysis/v2plint/analysistest"
)

func TestPlanPure(t *testing.T) {
	// "planpure/telemetry" is the dependency (stub telemetry types),
	// "planpure" the annotated roots with direct/method/transitive
	// violations and the seeded-rand/materialization negatives, and
	// "planpure/scenario" proves the known entry points are checked
	// without annotations.
	analysistest.Run(t, analysistest.TestData(t), v2plint.PlanPure,
		"planpure/telemetry", "planpure", "planpure/scenario")
}
