package v2plint_test

import (
	"testing"

	"switchv2p/internal/analysis/v2plint"
	"switchv2p/internal/analysis/v2plint/analysistest"
)

func TestHotPathAlloc(t *testing.T) {
	// "hotpathalloc" seeds violations in annotated functions,
	// "hotpathalloc/simnet" proves the known entry points are checked
	// without annotations, and "hotpathneg" is the scoping negative:
	// the same constructs unannotated (including a detached marker)
	// must report nothing.
	analysistest.Run(t, analysistest.TestData(t), v2plint.HotPathAlloc,
		"hotpathalloc", "hotpathalloc/simnet", "hotpathneg")
}
