package v2plint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
)

// SimTimeUnits flags code mixing wall-clock time.Duration with the
// simulated-time types from internal/simtime. Both are int64
// nanoseconds underneath, so a bare conversion compiles and even
// "works" — until someone changes a unit — and a direct binary
// operation between them is a latent type error. Crossing the
// wall/simulated boundary must go through the named converters:
// simtime.FromStd(d) inbound and v.Std() outbound. The simtime package
// itself (which implements those converters) is exempt.
var SimTimeUnits = &Analyzer{
	Name: "simtimeunits",
	Doc: "flags arithmetic or bare conversions mixing time.Duration with " +
		"simtime types; use simtime.FromStd and the Std methods",
	Run: runSimTimeUnits,
}

var arithmeticOrCompare = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	token.REM: true, token.LSS: true, token.LEQ: true, token.GTR: true,
	token.GEQ: true, token.EQL: true, token.NEQ: true,
}

func runSimTimeUnits(pass *Pass) {
	if path.Base(pass.Pkg.Path()) == "simtime" {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkMixedBinary(pass, n)
			case *ast.CallExpr:
				checkBareConversion(pass, n)
			}
			return true
		})
	}
}

func checkMixedBinary(pass *Pass, b *ast.BinaryExpr) {
	if !arithmeticOrCompare[b.Op] {
		return
	}
	xt := pass.TypesInfo.TypeOf(b.X)
	yt := pass.TypesInfo.TypeOf(b.Y)
	if xt == nil || yt == nil {
		return
	}
	if (isSimtimeType(xt) && isWallDuration(yt)) || (isWallDuration(xt) && isSimtimeType(yt)) {
		pass.Reportf(b.OpPos,
			"binary %s mixes simulated time (%s) with wall-clock time.Duration; convert explicitly with simtime.FromStd or .Std()",
			b.Op, simtimeOperand(xt, yt))
	}
}

// checkBareConversion flags T(x) conversions that silently reinterpret
// a wall-clock duration as simulated time or vice versa.
func checkBareConversion(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	target := tv.Type
	src := pass.TypesInfo.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	switch {
	case isSimtimeType(target) && isWallDuration(src):
		pass.Reportf(call.Pos(),
			"bare conversion of wall-clock time.Duration into %s; use simtime.FromStd",
			types.TypeString(target, nil))
	case isWallDuration(target) && isSimtimeType(src):
		pass.Reportf(call.Pos(),
			"bare conversion of simulated %s into time.Duration; use its Std method",
			types.TypeString(src, nil))
	}
}

func isSimtimeType(t types.Type) bool { return namedFromPkg(t, "simtime") }

func isWallDuration(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Duration"
}

func simtimeOperand(x, y types.Type) string {
	if isSimtimeType(x) {
		return types.TypeString(x, nil)
	}
	return types.TypeString(y, nil)
}
