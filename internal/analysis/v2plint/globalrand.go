package v2plint

import (
	"go/ast"
)

// GlobalRand forbids the package-level math/rand functions in non-test
// code. The global generator is shared process state: two goroutines —
// or the same goroutine reached in a different order — draw different
// values, so two runs with the same Config seed can diverge. All
// randomness must flow from an explicitly seeded *rand.Rand threaded
// through Config (constructors like rand.New/rand.NewSource/rand.NewZipf
// are the sanctioned way to build one and are exempt).
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc: "forbids package-level math/rand functions in non-test code; " +
		"inject a seeded *rand.Rand instead",
	Run: runGlobalRand,
}

// randConstructors build or feed an explicit generator and are allowed.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 constructors, should the repo ever migrate.
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runGlobalRand(pass *Pass) {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, pkgPath, ok := pkgFunc(pass.TypesInfo, sel)
			if !ok || (pkgPath != "math/rand" && pkgPath != "math/rand/v2") {
				return true
			}
			if randConstructors[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"rand.%s draws from the shared global generator; inject a seeded *rand.Rand (rand.New(rand.NewSource(seed)))",
				fn.Name())
			return true
		})
	}
}
