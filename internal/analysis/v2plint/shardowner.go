package v2plint

// ShardOwner enforces the sharded engine's ownership contract: the
// `sharding` struct (internal/simnet/shard.go) is barrier-side state —
// mailboxes, the barrier schedule, the domain clock, per-domain queues
// — that worker goroutines must never touch directly. Its fields may
// be read or written only from
//
//   - methods declared on *sharding (the barrier loop and its helpers,
//     which run single-threaded between windows), or
//   - functions annotated `//v2plint:shardbarrier <reason>` in their
//     doc comment, asserting they run in barrier/setup context or read
//     only fields immutable after EnableSharding. The reason is
//     mandatory: a bare shardbarrier is itself a finding.
//
// Method calls on a sharding value (sh.post(...), sh.drainMail()) are
// not flagged — the callee's own declaration context is what the
// contract judges. Nil tests on an Engine's shard pointer are field
// reads of Engine, not of sharding, and pass freely; the analyzer
// fires only on selectors whose operand is the sharding struct itself.
//
// The discipline mirrors workersafe from the other side: workersafe
// proves worker goroutines synchronize what they share, shardowner
// proves barrier-only state never leaks into code that has not
// declared which side of the barrier it runs on.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var ShardOwner = &Analyzer{
	Name: "shardowner",
	Doc: "restricts field access on the engine's sharding state to " +
		"*sharding methods and functions annotated //v2plint:shardbarrier " +
		"<reason> (the barrier-context ownership contract)",
	Run: runShardOwner,
}

func runShardOwner(pass *Pass) {
	waived := collectShardBarriers(pass)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if recvIsSharding(pass.TypesInfo, fn) || waived.covers(pass.Fset, fn) {
				continue
			}
			checkShardAccess(pass, fn)
		}
	}
}

// checkShardAccess reports every field selector whose operand is the
// sharding struct, anywhere in fn's body (function literals inherit the
// enclosing declaration's context: a worker closure inside a *sharding
// method is barrier-spawned by definition).
func checkShardAccess(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
		if !ok || !v.IsField() {
			return true
		}
		if t := pass.TypesInfo.TypeOf(sel.X); t == nil || !isShardingType(t) {
			return true
		}
		pass.Reportf(sel.Sel.Pos(),
			"access to sharding field %s outside a *sharding method; barrier-context code must be annotated //v2plint:shardbarrier <reason>",
			v.Name())
		return true
	})
}

// recvIsSharding reports whether fn is a method on sharding or *sharding.
func recvIsSharding(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	t := info.TypeOf(fn.Recv.List[0].Type)
	return t != nil && isShardingType(t)
}

// isShardingType matches the named struct `sharding` (possibly behind a
// pointer). The name is the contract: the type is unexported, so the
// analyzer only ever fires inside the package that declares it.
func isShardingType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "sharding"
}

// --- //v2plint:shardbarrier annotations ---

// shardBarrierSet records reason-carrying shardbarrier annotation
// lines: file → line → true.
type shardBarrierSet map[string]map[int]bool

// collectShardBarriers scans comments for //v2plint:shardbarrier,
// reporting bare ones (no reason) as findings and returning the
// reasoned ones.
func collectShardBarriers(pass *Pass) shardBarrierSet {
	out := shardBarrierSet{}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if text != "v2plint:shardbarrier" && !strings.HasPrefix(text, "v2plint:shardbarrier ") {
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(text, "v2plint:shardbarrier"))
				if reason == "" {
					pass.Reportf(c.Pos(), "//v2plint:shardbarrier needs a reason: why does this code run in barrier context?")
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = map[int]bool{}
				}
				out[pos.Filename][pos.Line] = true
			}
		}
	}
	return out
}

// covers reports whether a reasoned shardbarrier annotation sits in
// fn's declaration header: anywhere from the doc comment's first line
// through the line the body opens on.
func (s shardBarrierSet) covers(fset *token.FileSet, fn *ast.FuncDecl) bool {
	start := fset.Position(fn.Pos())
	if fn.Doc != nil {
		start = fset.Position(fn.Doc.Pos())
	}
	end := fset.Position(fn.Body.Lbrace)
	lines := s[start.Filename]
	if lines == nil {
		return false
	}
	for l := start.Line; l <= end.Line; l++ {
		if lines[l] {
			return true
		}
	}
	return false
}
