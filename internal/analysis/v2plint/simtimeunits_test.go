package v2plint_test

import (
	"testing"

	"switchv2p/internal/analysis/v2plint"
	"switchv2p/internal/analysis/v2plint/analysistest"
)

func TestSimTimeUnits(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), v2plint.SimTimeUnits, "simtimeunits")
}
