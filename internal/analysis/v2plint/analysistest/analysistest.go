// Package analysistest is a golden-file test harness for the v2plint
// analyzers, mirroring golang.org/x/tools/go/analysis/analysistest:
// each package under testdata/src is parsed, type-checked, and
// analyzed, and the diagnostics are matched against `// want "regex"`
// comments on the offending lines. A `// want-above "regex"` comment
// matches a diagnostic on the line directly above it instead — needed
// when the offending line already carries another machine-read comment
// (e.g. a //v2plint:allow annotation under test by allowreason).
//
// RunWithSuggestedFixes additionally applies every suggested fix and
// compares each rewritten file against a sibling `<file>.golden` file,
// so the fixes cmd/v2plint -fix would make are pinned byte-for-byte.
//
// Imports inside testdata packages resolve first against other
// testdata/src packages (letting tests stub simulation packages like
// simtime or eventq) and then against the standard library, which is
// type-checked from GOROOT source so the harness needs neither network
// access nor precompiled export data.
//
// All packages named in one Run call are loaded into a single call-graph
// Program, so the interprocedural analyzers see cross-package edges
// between them. List packages dependency-first (a helper before the
// package that imports it): that way the import resolves to the same
// type-checked instance the Program holds, which interface resolution
// relies on.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"switchv2p/internal/analysis/v2plint"
)

// TestData returns the caller's testdata directory (tests run with the
// package directory as working directory).
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	return dir
}

// Run analyzes each named package under testdata/src with the analyzer
// and checks the diagnostics against the package's want comments.
func Run(t *testing.T, testdata string, a *v2plint.Analyzer, pkgPaths ...string) {
	t.Helper()
	fset, files, diags := analyze(t, testdata, a, pkgPaths)
	checkWants(t, fset, files, diags)
}

// analyze loads every named package into one shared Program, runs the
// analyzer, and returns the FileSet, the union of parsed files, and the
// diagnostics.
func analyze(t *testing.T, testdata string, a *v2plint.Analyzer, pkgPaths []string) (*token.FileSet, []*ast.File, []v2plint.Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	imp := &testImporter{
		fset: fset,
		src:  filepath.Join(testdata, "src"),
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: map[string]*types.Package{},
	}
	prog := v2plint.NewProgram(fset)
	var allFiles []*ast.File
	for _, path := range pkgPaths {
		// Parse with test files included so analyzers' _test.go
		// exemptions are exercised.
		files, err := imp.parseDir(path, true)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		pkg, info := imp.check(path, files)
		prog.Add(files, pkg, info)
		allFiles = append(allFiles, files...)
	}
	return fset, allFiles, prog.Run([]*v2plint.Analyzer{a})
}

// RunWithSuggestedFixes is Run plus golden-file fix assertions: every
// suggested fix in the package's diagnostics is applied, and each
// rewritten file must match its `<file>.golden` sibling byte-for-byte.
// A missing golden file for a fixed file, or a stray golden file whose
// source produced no fixes, is an error — goldens cannot silently go
// stale.
func RunWithSuggestedFixes(t *testing.T, testdata string, a *v2plint.Analyzer, pkgPaths ...string) {
	t.Helper()
	fset, files, diags := analyze(t, testdata, a, pkgPaths)
	checkWants(t, fset, files, diags)

	fixed, err := v2plint.ApplyFixes(fset, diags)
	if err != nil {
		t.Errorf("analysistest: applying fixes: %v", err)
		return
	}
	for file, got := range fixed {
		golden := file + ".golden"
		want, err := os.ReadFile(golden)
		if err == nil && string(got) == string(want) {
			continue
		}
		// V2PLINT_UPDATE_GOLDENS=1 regenerates goldens from the
		// current fix output instead of failing (review the diff).
		if os.Getenv("V2PLINT_UPDATE_GOLDENS") != "" {
			if werr := os.WriteFile(golden, got, 0o644); werr != nil {
				t.Errorf("analysistest: updating %s: %v", golden, werr)
			}
			continue
		}
		if err != nil {
			t.Errorf("analysistest: fixes rewrote %s but reading its golden failed: %v\n-- fixed output --\n%s", file, err, got)
			continue
		}
		t.Errorf("analysistest: fixed %s does not match %s\n-- got --\n%s-- want --\n%s", file, golden, got, want)
	}
	// Stray goldens: every golden in the analyzed package dirs must
	// belong to a file the fixes actually rewrote.
	for _, path := range pkgPaths {
		dir := filepath.Join(testdata, "src", path)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), ".golden") {
				continue
			}
			src := filepath.Join(dir, strings.TrimSuffix(e.Name(), ".golden"))
			if _, ok := fixed[src]; !ok {
				t.Errorf("analysistest: stale golden %s: %s produced no fixes", filepath.Join(dir, e.Name()), src)
			}
		}
	}
}

// testImporter resolves testdata/src packages locally and everything
// else from standard-library source.
type testImporter struct {
	fset *token.FileSet
	src  string
	std  types.Importer
	pkgs map[string]*types.Package
}

func (im *testImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := im.pkgs[path]; ok {
		return pkg, nil
	}
	if fi, err := os.Stat(filepath.Join(im.src, path)); err == nil && fi.IsDir() {
		files, err := im.parseDir(path, false)
		if err != nil {
			return nil, err
		}
		pkg, _ := im.check(path, files)
		return pkg, nil
	}
	return im.std.Import(path)
}

func (im *testImporter) parseDir(path string, includeTests bool) ([]*ast.File, error) {
	dir := filepath.Join(im.src, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return files, nil
}

// check type-checks tolerantly: testdata for simtimeunits contains
// deliberate wall/simulated mixing that is a type error; the analyzers
// still see operand types.
func (im *testImporter) check(path string, files []*ast.File) (*types.Package, *types.Info) {
	info := v2plint.NewTypesInfo()
	conf := types.Config{Importer: im, Error: func(error) {}}
	pkg, _ := conf.Check(path, im.fset, files, info)
	im.pkgs[path] = pkg
	return pkg, info
}

// --- want-comment matching ---

type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// Patterns may be double-quoted or backquoted Go string literals.
var quotedRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				var rest string
				lineDelta := 0
				switch {
				case strings.HasPrefix(text, "want "):
					rest = text[len("want "):]
				case strings.HasPrefix(text, "want-above "):
					rest = text[len("want-above "):]
					lineDelta = -1
				default:
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range quotedRe.FindAllString(rest, -1) {
					raw, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					rx, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line + lineDelta, rx: rx})
				}
			}
		}
	}
	return wants
}

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []v2plint.Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched pattern %q", w.file, w.line, w.rx)
		}
	}
}
