package v2plint

// This file implements the incremental analysis cache behind
// `cmd/v2plint -cache`: per-package content-hashed caching of findings
// and call-graph fact summaries, layered on the same vetx
// export/import machinery the `go vet -vettool=` protocol uses.
//
// Each package's cache key is a SHA-256 over
//
//   - a format-version string and a fingerprint of the tool binary
//     (any change to the analyzers invalidates everything),
//   - the package's import path and the name and content of each of
//     its Go files,
//   - the key of every direct import — recursively, so an edit
//     anywhere in the dependency cone changes the key. Imports outside
//     the lint target set (the standard library, dep-only packages)
//     contribute a hash of their compiler export data instead, which
//     go list provides and which changes whenever their API or
//     implementation does.
//
// A hit replays the stored findings and reuses the stored fact
// summaries without parsing or type-checking the package — on a no-op
// rebuild the whole run degenerates to `go list` plus file hashing. A
// miss type-checks the single package against compiler export data,
// imports the fact summaries of its in-target dependencies (cached or
// freshly computed this run), analyzes, and stores findings + facts.
//
// Cached analysis therefore has vettool semantics, not whole-Program
// semantics: interface call sites resolve against the package's own
// declarations plus imported summaries, so an implementor in an
// unrelated (non-dependency) package is not seen. The default
// standalone driver — and CI's build-failing lint run — still loads
// everything into one Program; the cache trades that last bit of
// cross-package resolution for incremental latency, and hot and cold
// cached runs always agree with each other. DESIGN.md §8 records the
// tradeoff.

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// cacheFormat invalidates every entry when the on-disk schema changes.
const cacheFormat = "v2plint-cache-v1"

// CacheStats counts per-run cache outcomes for the stats line,
// BENCH_lint.json, and the CI artifact.
type CacheStats struct {
	Packages int `json:"packages"`
	Hits     int `json:"hits"`
	Misses   int `json:"misses"`
}

// HitRate returns hits/packages in [0,1].
func (s CacheStats) HitRate() float64 {
	if s.Packages == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Packages)
}

// A Finding is one position-resolved diagnostic: what a Diagnostic
// becomes once it no longer has a live token.FileSet behind it, and
// the unit cached entries store and replay.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Fix      string `json:"fix,omitempty"`
}

// FindingsFromDiagnostics resolves diagnostics against their FileSet.
// The input order is preserved (Program.Run already sorts one
// Program's diagnostics by file, line, column, analyzer).
func FindingsFromDiagnostics(fset *token.FileSet, diags []Diagnostic) []Finding {
	out := make([]Finding, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		f := Finding{
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
		if len(d.Fixes) > 0 {
			f.Fix = d.Fixes[0].Message
		}
		out = append(out, f)
	}
	return out
}

// SortFindings orders findings globally by (file, line, column,
// analyzer) — the ordering contract of cmd/v2plint's text and JSON
// output across packages, whatever mix of cached and fresh results
// produced them.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// cacheEntry is the on-disk record for one package at one key.
type cacheEntry struct {
	Format     string          `json:"format"`
	ImportPath string          `json:"importpath"`
	Findings   []Finding       `json:"findings"`
	Facts      json.RawMessage `json:"facts,omitempty"`
}

// RunCached lints the packages matched by patterns through the cache
// rooted at cacheDir, returning the globally sorted findings, the
// hit/miss stats, and (when timings is true) the per-analyzer wall
// times summed over the packages analyzed this run.
func RunCached(dir string, patterns []string, analyzers []*Analyzer, cacheDir string, timings bool) ([]Finding, CacheStats, map[string]time.Duration, error) {
	var stats CacheStats
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return nil, stats, nil, err
	}
	pkgs, err := listPackages(dir, patterns)
	if err != nil {
		return nil, stats, nil, err
	}
	byPath := map[string]*listPkg{}
	var targets []*listPkg
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
		if !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	stats.Packages = len(targets)
	targetSet := map[string]bool{}
	for _, t := range targets {
		targetSet[t.ImportPath] = true
	}

	fp, err := toolFingerprint()
	if err != nil {
		return nil, stats, nil, err
	}
	keys := map[string]string{}
	for _, t := range targets {
		if _, err := cacheKey(t.ImportPath, byPath, targetSet, fp, keys); err != nil {
			return nil, stats, nil, err
		}
	}

	// Dependency-first order, so a miss can import the facts of every
	// in-target dependency already processed this run.
	order := topoTargets(targets, byPath, targetSet)

	var all []Finding
	facts := map[string][]byte{}
	sumTimings := map[string]time.Duration{}
	for _, t := range order {
		key := keys[t.ImportPath]
		entryPath := filepath.Join(cacheDir, key+".json")
		if entry, ok := readEntry(entryPath, t.ImportPath); ok {
			stats.Hits++
			all = append(all, entry.Findings...)
			if len(entry.Facts) > 0 {
				facts[t.ImportPath] = entry.Facts
			}
			continue
		}
		stats.Misses++
		found, pkgFacts, err := analyzeOne(t, byPath, targetSet, facts, analyzers, timings, sumTimings)
		if err != nil {
			return nil, stats, nil, err
		}
		all = append(all, found...)
		if len(pkgFacts) > 0 {
			facts[t.ImportPath] = pkgFacts
		}
		entry := &cacheEntry{Format: cacheFormat, ImportPath: t.ImportPath, Findings: found, Facts: pkgFacts}
		if err := writeEntry(entryPath, entry); err != nil {
			return nil, stats, nil, err
		}
	}
	SortFindings(all)
	return all, stats, sumTimings, nil
}

// analyzeOne type-checks and analyzes a single cache-miss package with
// its in-target dependencies' fact summaries imported, vettool-style.
func analyzeOne(t *listPkg, byPath map[string]*listPkg, targetSet map[string]bool, facts map[string][]byte, analyzers []*Analyzer, timings bool, sumTimings map[string]time.Duration) ([]Finding, []byte, error) {
	fset := token.NewFileSet()
	imp := exportDataImporter(fset, func(path string) string {
		if p := byPath[path]; p != nil {
			return p.Export
		}
		return ""
	})
	lp, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
	if err != nil {
		return nil, nil, err
	}
	prog := NewProgram(fset)
	if timings {
		prog.EnableTimings()
	}
	// Import the facts of every in-target package in the transitive
	// dependency cone (sorted for determinism), then add the local
	// package: local declarations override imported summaries.
	deps := transitiveDeps(t.ImportPath, byPath)
	sort.Strings(deps)
	for _, dep := range deps {
		if f := facts[dep]; len(f) > 0 {
			if err := prog.ImportSummaries(f); err != nil {
				return nil, nil, fmt.Errorf("%s: importing facts of %s: %w", t.ImportPath, dep, err)
			}
		}
	}
	prog.Add(lp.Files, lp.Pkg, lp.Info)
	diags := prog.Run(analyzers)
	for name, d := range prog.Timings() {
		sumTimings[name] += d
	}
	pkgFacts, err := prog.ExportSummaries(t.ImportPath)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: exporting facts: %w", t.ImportPath, err)
	}
	return FindingsFromDiagnostics(fset, diags), pkgFacts, nil
}

// cacheKey computes (and memoizes) one package's content-hashed key.
func cacheKey(path string, byPath map[string]*listPkg, targetSet map[string]bool, fingerprint string, memo map[string]string) (string, error) {
	if k, ok := memo[path]; ok {
		return k, nil
	}
	// Break import cycles defensively (the go toolchain rejects them,
	// so this only guards against malformed go list output).
	memo[path] = "cycle"
	p := byPath[path]
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n%s\n", cacheFormat, fingerprint, path)
	if p == nil || !targetSet[path] {
		// Outside the target set: the compiler export data stands in
		// for the sources — it changes whenever the package does.
		if p != nil && p.Export != "" {
			if err := hashFile(h, p.Export); err != nil {
				return "", err
			}
		}
		k := fmt.Sprintf("%x", h.Sum(nil))
		memo[path] = k
		return k, nil
	}
	for _, name := range p.GoFiles {
		file := name
		if !filepath.IsAbs(file) {
			file = filepath.Join(p.Dir, file)
		}
		fmt.Fprintf(h, "file %s\n", name)
		if err := hashFile(h, file); err != nil {
			return "", err
		}
	}
	imports := append([]string(nil), p.Imports...)
	sort.Strings(imports)
	for _, dep := range imports {
		dk, err := cacheKey(dep, byPath, targetSet, fingerprint, memo)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "dep %s %s\n", dep, dk)
	}
	k := fmt.Sprintf("%x", h.Sum(nil))
	memo[path] = k
	return k, nil
}

func hashFile(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = io.Copy(w, f)
	return err
}

// toolFingerprint hashes the running executable so rebuilding the
// analyzers invalidates every cached entry, mirroring the content id
// the -V=full vet probe reports.
func toolFingerprint() (string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	if err := hashFile(h, exe); err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// topoTargets orders the targets dependency-first.
func topoTargets(targets []*listPkg, byPath map[string]*listPkg, targetSet map[string]bool) []*listPkg {
	sorted := append([]*listPkg(nil), targets...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })
	var order []*listPkg
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(string)
	visit = func(path string) {
		if state[path] != 0 || !targetSet[path] {
			return
		}
		state[path] = 1
		p := byPath[path]
		imports := append([]string(nil), p.Imports...)
		sort.Strings(imports)
		for _, dep := range imports {
			visit(dep)
		}
		state[path] = 2
		order = append(order, p)
	}
	for _, t := range sorted {
		visit(t.ImportPath)
	}
	return order
}

// transitiveDeps returns every import path reachable from the package.
func transitiveDeps(path string, byPath map[string]*listPkg) []string {
	seen := map[string]bool{}
	var out []string
	var visit func(string)
	visit = func(p string) {
		pkg := byPath[p]
		if pkg == nil {
			return
		}
		for _, dep := range pkg.Imports {
			if !seen[dep] {
				seen[dep] = true
				out = append(out, dep)
				visit(dep)
			}
		}
	}
	visit(path)
	return out
}

func readEntry(path, importPath string) (*cacheEntry, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || e.Format != cacheFormat || e.ImportPath != importPath {
		return nil, false
	}
	if e.Findings == nil {
		e.Findings = []Finding{}
	}
	return &e, true
}

func writeEntry(path string, e *cacheEntry) error {
	if e.Findings == nil {
		e.Findings = []Finding{}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(e); err != nil {
		return err
	}
	// Write-then-rename so a crashed run never leaves a torn entry a
	// later run would misparse (readEntry treats malformed as a miss
	// anyway, but the rename keeps the directory tidy).
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
