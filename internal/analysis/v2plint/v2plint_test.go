package v2plint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestByName(t *testing.T) {
	for _, a := range Analyzers() {
		if got := ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v, want %v", a.Name, got, a)
		}
	}
	if got := ByName("nope"); got != nil {
		t.Errorf("ByName(nope) = %v, want nil", got)
	}
}

func TestCollectAllows(t *testing.T) {
	src := `package p

//v2plint:allow wallclock profiling hook
func a() {}

func b() int { return 0 } //v2plint:allow detrange,globalrand reason text

//v2plint:allow all
func c() {}

// v2plint:allow simtimeunits spaced comment marker
func d() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	allows := collectAllows(fset, []*ast.File{f})
	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{3, "wallclock", true},  // annotation line itself
		{4, "wallclock", true},  // line below the annotation
		{5, "wallclock", false}, // two lines below
		{6, "detrange", true},
		{6, "globalrand", true},
		{6, "wallclock", false},
		{9, "detrange", true}, // "all" waives every analyzer
		{12, "simtimeunits", true},
	}
	for _, c := range cases {
		pos := token.Position{Filename: "p.go", Line: c.line}
		if got := allows.waives(pos, c.analyzer); got != c.want {
			t.Errorf("waives(line %d, %s) = %v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
}
