package v2plint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixFile registers a real file with the FileSet so ApplyFixes (which
// rereads from disk) sees it, and returns its token.File.
func fixFile(t *testing.T, content string) (*token.FileSet, *token.File) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "src.go")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	tf := fset.AddFile(path, -1, len(content))
	tf.SetLinesForContent([]byte(content))
	return fset, tf
}

func diagWithEdits(analyzer string, edits ...TextEdit) Diagnostic {
	return Diagnostic{
		Analyzer: analyzer,
		Message:  "test finding",
		Fixes:    []SuggestedFix{{Message: "test fix", Edits: edits}},
	}
}

func TestApplyFixesInsertReplaceDelete(t *testing.T) {
	const src = "alpha beta gamma\n"
	fset, tf := fixFile(t, src)
	at := func(off int) token.Pos { return tf.Pos(off) }
	diags := []Diagnostic{
		// Insert at start, replace "beta" with "BETA", delete " gamma".
		diagWithEdits("a", TextEdit{Pos: at(0), NewText: []byte(">> ")}),
		diagWithEdits("b", TextEdit{Pos: at(6), End: at(10), NewText: []byte("BETA")}),
		diagWithEdits("c", TextEdit{Pos: at(10), End: at(16)}),
	}
	fixed, err := ApplyFixes(fset, diags)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != 1 {
		t.Fatalf("fixed %d files, want 1", len(fixed))
	}
	for _, got := range fixed {
		if want := ">> alpha BETA\n"; string(got) != want {
			t.Fatalf("fixed = %q, want %q", got, want)
		}
	}
}

func TestApplyFixesAdjacentSameLineEdits(t *testing.T) {
	// Two replacements on one line, the second starting exactly where
	// the first ends, must both apply: adjacency is not overlap.
	const src = "alpha beta gamma\n"
	fset, tf := fixFile(t, src)
	at := func(off int) token.Pos { return tf.Pos(off) }
	diags := []Diagnostic{
		diagWithEdits("a", TextEdit{Pos: at(6), End: at(10), NewText: []byte("BETA")}),
		diagWithEdits("b", TextEdit{Pos: at(10), End: at(16), NewText: []byte("/GAMMA")}),
	}
	fixed, err := ApplyFixes(fset, diags)
	if err != nil {
		t.Fatal(err)
	}
	for _, got := range fixed {
		if want := "alpha BETA/GAMMA\n"; string(got) != want {
			t.Fatalf("fixed = %q, want %q", got, want)
		}
	}
}

func TestApplyFixesInsertionAtReplacementStart(t *testing.T) {
	// A pure insertion (empty range) at the offset where a replacement
	// begins is unambiguous — the insertion applies first — and must be
	// accepted in either input order.
	const src = "alpha beta gamma\n"
	fset, tf := fixFile(t, src)
	at := func(off int) token.Pos { return tf.Pos(off) }
	const want = "alpha >>BETA gamma\n"
	for name, diags := range map[string][]Diagnostic{
		"insertion first": {
			diagWithEdits("a", TextEdit{Pos: at(6), NewText: []byte(">>")}),
			diagWithEdits("b", TextEdit{Pos: at(6), End: at(10), NewText: []byte("BETA")}),
		},
		"replacement first": {
			diagWithEdits("b", TextEdit{Pos: at(6), End: at(10), NewText: []byte("BETA")}),
			diagWithEdits("a", TextEdit{Pos: at(6), NewText: []byte(">>")}),
		},
	} {
		fixed, err := ApplyFixes(fset, diags)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, got := range fixed {
			if string(got) != want {
				t.Fatalf("%s: fixed = %q, want %q", name, got, want)
			}
		}
	}
}

func TestApplyFixesRejectsSameStartReplacements(t *testing.T) {
	const src = "alpha beta gamma\n"
	fset, tf := fixFile(t, src)
	diags := []Diagnostic{
		diagWithEdits("a", TextEdit{Pos: tf.Pos(6), End: tf.Pos(10), NewText: []byte("x")}),
		diagWithEdits("b", TextEdit{Pos: tf.Pos(6), End: tf.Pos(8), NewText: []byte("y")}),
	}
	if _, err := ApplyFixes(fset, diags); err == nil || !strings.Contains(err.Error(), "overlapping") {
		t.Fatalf("same-start replacements: err = %v, want overlap error", err)
	}
}

func TestApplyFixesRejectsOverlap(t *testing.T) {
	const src = "alpha beta gamma\n"
	fset, tf := fixFile(t, src)
	diags := []Diagnostic{
		diagWithEdits("a", TextEdit{Pos: tf.Pos(0), End: tf.Pos(8), NewText: []byte("x")}),
		diagWithEdits("b", TextEdit{Pos: tf.Pos(4), End: tf.Pos(12), NewText: []byte("y")}),
	}
	if _, err := ApplyFixes(fset, diags); err == nil || !strings.Contains(err.Error(), "overlapping") {
		t.Fatalf("overlapping edits: err = %v, want overlap error", err)
	}
}

func TestApplyFixesRejectsSameOffsetInsertions(t *testing.T) {
	const src = "alpha\n"
	fset, tf := fixFile(t, src)
	diags := []Diagnostic{
		diagWithEdits("a", TextEdit{Pos: tf.Pos(2), NewText: []byte("x")}),
		diagWithEdits("b", TextEdit{Pos: tf.Pos(2), NewText: []byte("y")}),
	}
	if _, err := ApplyFixes(fset, diags); err == nil {
		t.Fatal("same-offset insertions: want error (relative order is ambiguous)")
	}
}

func TestApplyFixesIgnoresFixlessDiagnostics(t *testing.T) {
	fset := token.NewFileSet()
	fixed, err := ApplyFixes(fset, []Diagnostic{{Analyzer: "a", Message: "no fix"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != 0 {
		t.Fatalf("fixed %d files, want 0", len(fixed))
	}
}

func TestSuiteShipsFifteenAnalyzers(t *testing.T) {
	// The CI contract ("all fifteen analyzers, build-failing") and the
	// package doc both promise this exact suite; a rename or removal
	// must be a conscious change here too.
	want := []string{
		"detrange", "wallclock", "globalrand", "simtimeunits",
		"hotpathalloc", "faultgate", "schemecomplete", "nilsafemetrics", "shardowner",
		"hotpathreach", "workersafe", "planpure",
		"detflow", "shardstate",
		"allowreason",
	}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() has %d entries, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d] = %s, want %s", i, a.Name, want[i])
		}
	}
}
