package v2plint_test

import (
	"testing"

	"switchv2p/internal/analysis/v2plint"
	"switchv2p/internal/analysis/v2plint/analysistest"
)

func TestAllowReason(t *testing.T) {
	analysistest.RunWithSuggestedFixes(t, analysistest.TestData(t), v2plint.AllowReason,
		"allowreason")
}
