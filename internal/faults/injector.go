package faults

import (
	"errors"
	"fmt"

	"switchv2p/internal/simnet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/telemetry"
	"switchv2p/internal/topology"
)

// Injector owns one run's fault scenario: the compiled event schedule
// and the timeline of events actually applied. Build with New, wire
// with Attach before Engine.Run.
type Injector struct {
	// Applied is the timeline of events applied so far, in application
	// order. Populated while the simulation runs.
	Applied []Event

	events []Event
	errs   []error
	col    *telemetry.Collector
}

// New compiles cfg against topo: the random model (if any) is expanded,
// every event is validated, and the merged schedule is sorted by time.
// A nil or empty cfg yields an injector that does nothing.
func New(cfg *Config, topo *topology.Topology) (*Injector, error) {
	in := &Injector{}
	if cfg.Empty() {
		return in, nil
	}
	evs, err := compile(cfg, topo)
	if err != nil {
		return nil, err
	}
	in.events = evs
	return in, nil
}

// Len returns the number of scheduled events.
func (in *Injector) Len() int { return len(in.events) }

// Schedule returns the compiled, time-sorted event schedule.
func (in *Injector) Schedule() []Event { return in.events }

// Attach registers every scheduled event on the engine's queue and, if
// the config uses loss windows, seeds the engine's loss PRNG. col may
// be nil (no fault timeline is recorded). Call once, before Engine.Run.
func (in *Injector) Attach(e *simnet.Engine, cfg *Config, col *telemetry.Collector) {
	in.col = col
	if cfg != nil && !cfg.Empty() {
		seed := cfg.LossSeed
		if seed == 0 {
			seed = 1
		}
		e.SetLossSeed(seed)
	}
	for i := range in.events {
		ev := in.events[i]
		// AtBarrier degrades to a plain queue event on the serial engine;
		// sharded, it applies the fault at a synchronization barrier so
		// every shard observes it atomically.
		e.AtBarrier(ev.At, func() { in.apply(e, ev) })
	}
}

// apply executes one fault event against the engine. Application errors
// (e.g. a LinkDown between non-adjacent nodes) are collected rather
// than fatal — inspect them with Err after the run.
func (in *Injector) apply(e *simnet.Engine, ev Event) {
	var err error
	switch ev.Kind {
	case LinkDown:
		err = e.SetLinkFault(ev.A, ev.B, true)
	case LinkUp:
		err = e.SetLinkFault(ev.A, ev.B, false)
	case SwitchFail:
		err = e.SetSwitchFault(ev.Switch, true)
		if err == nil {
			// The crash destroys the switch's V2P state: a recovered
			// switch starts cold and re-learns from passing traffic.
			// Flushing at fail time is equivalent to flushing at
			// recovery — no scheme hook runs while the switch is down.
			if f, ok := e.Scheme.(simnet.CacheFlusher); ok {
				f.FlushCache(ev.Switch)
			}
		}
	case SwitchRecover:
		err = e.SetSwitchFault(ev.Switch, false)
	case GatewayOutage:
		err = e.SetGatewayFault(ev.Gateway, true)
	case GatewayRecover:
		err = e.SetGatewayFault(ev.Gateway, false)
	case LossStart:
		err = e.SetLinkLoss(ev.A, ev.B, ev.LossRate)
	case LossEnd:
		err = e.SetLinkLoss(ev.A, ev.B, 0)
	default:
		err = fmt.Errorf("faults: unknown event kind %d", ev.Kind)
	}
	if err != nil {
		in.errs = append(in.errs, fmt.Errorf("faults: at %v: %w", e.Now(), err))
		return
	}
	in.Applied = append(in.Applied, ev)
	in.col.RecordFault(float64(e.Now())/float64(simtime.Microsecond), ev.Kind.String(), ev.Detail())
}

// Err returns every error the injector hit while applying events, or
// nil. Check it after Engine.Run: a non-nil error means part of the
// configured scenario was not applied.
func (in *Injector) Err() error { return errors.Join(in.errs...) }
