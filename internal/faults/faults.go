// Package faults is the deterministic fault-injection subsystem: it
// turns a fault scenario — an explicit schedule of typed events, a
// seeded random switch-failure model, or both — into engine state
// changes applied at exact simulation times, and records the applied
// timeline for telemetry and reports.
//
// The package drives the primitive fault switches that internal/simnet
// exposes (SetLinkFault, SetSwitchFault, SetGatewayFault, SetLinkLoss)
// and owns every policy decision above them:
//
//   - when each fault fires (the schedule / the random model),
//   - the cache-loss semantics of a switch failure (a scheme that
//     implements simnet.CacheFlusher has the failed switch's V2P state
//     flushed, so a recovered switch re-learns from scratch),
//   - the recorded fault timeline (Injector.Applied and, when a
//     telemetry collector is attached, Collector.Faults).
//
// Determinism: the random model uses a per-instance PRNG seeded from
// Config — never the global math/rand state — and generates events by
// iterating switches in index order, so the same Config always produces
// the same schedule. Probabilistic loss windows consume the engine's
// seeded loss PRNG in event-dispatch order, which is itself
// deterministic. Two runs with the same workload seed and the same
// fault Config are therefore byte-identical.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
)

// Kind is the type of a fault event.
type Kind uint8

// Fault event kinds. Each Down/Fail/Outage/Start kind has a matching
// recovery kind; a schedule may leave a fault in place past the horizon
// by simply not scheduling the recovery.
const (
	// LinkDown fails the physical link A<->B (both directions).
	LinkDown Kind = iota
	// LinkUp restores the link A<->B.
	LinkUp
	// SwitchFail crashes switch Switch: all incident links black-hole
	// and its V2P cache state is destroyed (CacheFlusher).
	SwitchFail
	// SwitchRecover restarts switch Switch with a cold cache.
	SwitchRecover
	// GatewayOutage darkens the translation gateway instance on host
	// Gateway; senders re-balance onto the survivors.
	GatewayOutage
	// GatewayRecover brings the gateway instance back.
	GatewayRecover
	// LossStart opens a probabilistic loss window on link A<->B: each
	// packet entering the link is dropped with probability LossRate.
	LossStart
	// LossEnd closes the loss window on A<->B.
	LossEnd
)

var kindNames = [...]string{
	LinkDown:       "LinkDown",
	LinkUp:         "LinkUp",
	SwitchFail:     "SwitchFail",
	SwitchRecover:  "SwitchRecover",
	GatewayOutage:  "GatewayOutage",
	GatewayRecover: "GatewayRecover",
	LossStart:      "LossStart",
	LossEnd:        "LossEnd",
}

// String returns the kind's name as it appears in fault timelines.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one scheduled fault. Which fields matter depends on Kind:
// link and loss events use A and B, switch events use Switch, gateway
// events use Gateway, and LossStart additionally uses LossRate.
type Event struct {
	At   simtime.Time
	Kind Kind

	A, B     topology.NodeRef // LinkDown/LinkUp/LossStart/LossEnd
	Switch   int32            // SwitchFail/SwitchRecover
	Gateway  int32            // GatewayOutage/GatewayRecover (host index)
	LossRate float64          // LossStart, in [0,1]
}

// Detail renders the affected entity for timelines ("switch 12",
// "gateway host 3", "link switch 0 <-> switch 8 loss=0.25").
func (ev Event) Detail() string {
	switch ev.Kind {
	case SwitchFail, SwitchRecover:
		return fmt.Sprintf("switch %d", ev.Switch)
	case GatewayOutage, GatewayRecover:
		return fmt.Sprintf("gateway host %d", ev.Gateway)
	case LossStart:
		return fmt.Sprintf("link %v <-> %v loss=%g", ev.A, ev.B, ev.LossRate)
	default:
		return fmt.Sprintf("link %v <-> %v", ev.A, ev.B)
	}
}

// RandomModel generates switch failures as independent alternating
// renewal processes: each modeled switch stays up for an exponential
// time with mean MTBF, fails, stays down for an exponential time with
// mean MTTR, recovers, and repeats until Horizon. All draws come from
// one per-instance PRNG consumed in switch-index order, so the same
// model always expands to the same schedule.
type RandomModel struct {
	// Seed pins the PRNG (0 means seed 1).
	Seed int64
	// MTBF is the mean up time before a failure (required, > 0).
	MTBF simtime.Duration
	// MTTR is the mean down time before recovery (required, > 0).
	MTTR simtime.Duration
	// Horizon bounds event generation (required, > 0). Recoveries past
	// the horizon are still emitted so every failure has its matching
	// recover event.
	Horizon simtime.Time
	// Switches lists the switch indices the model applies to; nil means
	// every switch in the topology.
	Switches []int32
	// MaxEvents caps the generated schedule (0 = 10000) — a guard
	// against degenerate MTBF/MTTR choices, not a tuning knob.
	MaxEvents int
}

// Generate expands the model into an explicit event schedule for topo.
func (m *RandomModel) Generate(topo *topology.Topology) ([]Event, error) {
	if m.MTBF <= 0 || m.MTTR <= 0 {
		return nil, fmt.Errorf("faults: random model needs MTBF > 0 and MTTR > 0 (got %v, %v)", m.MTBF, m.MTTR)
	}
	if m.Horizon <= 0 {
		return nil, fmt.Errorf("faults: random model needs Horizon > 0 (got %v)", m.Horizon)
	}
	seed := m.Seed
	if seed == 0 {
		seed = 1
	}
	maxEvents := m.MaxEvents
	if maxEvents == 0 {
		maxEvents = 10000
	}
	switches := m.Switches
	if switches == nil {
		switches = make([]int32, len(topo.Switches))
		for i := range switches {
			switches[i] = int32(i)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	var evs []Event
	for _, sw := range switches {
		if sw < 0 || int(sw) >= len(topo.Switches) {
			return nil, fmt.Errorf("faults: random model switch %d out of range [0,%d)", sw, len(topo.Switches))
		}
		t := simtime.Time(0)
		for {
			t = t.Add(simtime.Duration(rng.ExpFloat64() * float64(m.MTBF)))
			if !t.Before(m.Horizon) {
				break
			}
			if len(evs)+2 > maxEvents {
				return nil, fmt.Errorf("faults: random model exceeds %d events; raise MaxEvents or MTBF", maxEvents)
			}
			evs = append(evs, Event{At: t, Kind: SwitchFail, Switch: sw})
			t = t.Add(simtime.Duration(rng.ExpFloat64() * float64(m.MTTR)))
			evs = append(evs, Event{At: t, Kind: SwitchRecover, Switch: sw})
		}
	}
	return evs, nil
}

// Config describes one run's fault scenario: an explicit schedule, a
// random model, or both (the generated events are merged into the
// schedule). The zero value means no faults.
type Config struct {
	// Schedule is the explicit event list, in any order.
	Schedule []Event
	// Random, when non-nil, generates additional switch failures.
	Random *RandomModel
	// LossSeed seeds the engine PRNG behind probabilistic loss windows
	// (0 = seed 1). Irrelevant unless the schedule opens a loss window.
	LossSeed int64
}

// Empty reports whether the config injects nothing.
func (c *Config) Empty() bool {
	return c == nil || (len(c.Schedule) == 0 && c.Random == nil)
}

// validate checks one event against the topology. Link adjacency is
// checked again by the engine at apply time; here we catch everything
// checkable before the run starts.
func validate(ev Event, topo *topology.Topology) error {
	badNode := func(r topology.NodeRef) bool {
		switch r.Kind {
		case topology.KindSwitch:
			return r.Idx < 0 || int(r.Idx) >= len(topo.Switches)
		case topology.KindHost:
			return r.Idx < 0 || int(r.Idx) >= len(topo.Hosts)
		}
		return true
	}
	switch ev.Kind {
	case LinkDown, LinkUp, LossStart, LossEnd:
		if badNode(ev.A) || badNode(ev.B) {
			return fmt.Errorf("faults: %s at %v references unknown node (%v, %v)", ev.Kind, ev.At, ev.A, ev.B)
		}
		if ev.Kind == LossStart && (ev.LossRate < 0 || ev.LossRate > 1) {
			return fmt.Errorf("faults: LossStart at %v rate %v outside [0,1]", ev.At, ev.LossRate)
		}
	case SwitchFail, SwitchRecover:
		if ev.Switch < 0 || int(ev.Switch) >= len(topo.Switches) {
			return fmt.Errorf("faults: %s at %v switch %d out of range [0,%d)", ev.Kind, ev.At, ev.Switch, len(topo.Switches))
		}
	case GatewayOutage, GatewayRecover:
		if ev.Gateway < 0 || int(ev.Gateway) >= len(topo.Hosts) {
			return fmt.Errorf("faults: %s at %v host %d out of range [0,%d)", ev.Kind, ev.At, ev.Gateway, len(topo.Hosts))
		}
		if !topo.Hosts[ev.Gateway].Gateway {
			return fmt.Errorf("faults: %s at %v: host %d is not a translation gateway", ev.Kind, ev.At, ev.Gateway)
		}
	default:
		return fmt.Errorf("faults: unknown event kind %d at %v", ev.Kind, ev.At)
	}
	if ev.At < 0 {
		return fmt.Errorf("faults: %s scheduled at negative time %v", ev.Kind, ev.At)
	}
	return nil
}

// compile validates cfg against topo, expands the random model, and
// returns the merged schedule sorted by time (stable, so same-time
// events keep their schedule-then-generated order).
func compile(cfg *Config, topo *topology.Topology) ([]Event, error) {
	var errs []error
	evs := make([]Event, 0, len(cfg.Schedule))
	evs = append(evs, cfg.Schedule...)
	if cfg.Random != nil {
		gen, err := cfg.Random.Generate(topo)
		if err != nil {
			return nil, err
		}
		evs = append(evs, gen...)
	}
	for _, ev := range evs {
		if err := validate(ev, topo); err != nil {
			errs = append(errs, err)
		}
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At.Before(evs[j].At) })
	return evs, nil
}
