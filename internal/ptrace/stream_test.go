package ptrace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"switchv2p/internal/simtime"
)

// TestStreamMatchesBuffered: streaming capture must record the same
// observations a buffered tracer retains, readable through the same
// Read entry point.
func TestStreamMatchesBuffered(t *testing.T) {
	var streamed bytes.Buffer
	sw := newWorld(t)
	str := New(sw.e, Options{Stream: &streamed})
	sw.send(1, 0, sw.vips[0], sw.vips[9])
	sw.send(2, 0, sw.vips[3], sw.vips[7])
	sw.e.Run(simtime.Never)
	str.Close()
	if err := str.StreamErr(); err != nil {
		t.Fatal(err)
	}

	bw := newWorld(t)
	btr := New(bw.e, Options{})
	bw.send(1, 0, bw.vips[0], bw.vips[9])
	bw.send(2, 0, bw.vips[3], bw.vips[7])
	bw.e.Run(simtime.Never)
	var buffered bytes.Buffer
	if _, err := btr.WriteTo(&buffered); err != nil {
		t.Fatal(err)
	}

	got, err := Read(&streamed)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Read(&buffered)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) != len(want) {
		t.Fatalf("streamed %d records, buffered %d", len(got), len(want))
	}
	for i := range got {
		if got[i].At != want[i].At || got[i].Point != want[i].Point ||
			got[i].Packet.UID != want[i].Packet.UID || got[i].Packet.Kind != want[i].Packet.Kind {
			t.Fatalf("record %d diverges: streamed %+v, buffered %+v", i, got[i], want[i])
		}
	}
	if str.Captured() != len(got) {
		t.Errorf("Captured() = %d, want %d", str.Captured(), len(got))
	}
	if len(str.Records) != 0 {
		t.Errorf("streaming tracer retained %d records in memory", len(str.Records))
	}
}

func TestStreamTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	w := newWorld(t)
	tr := New(w.e, Options{Stream: &buf})
	w.send(1, 0, w.vips[0], w.vips[9])
	w.e.Run(simtime.Never)
	tr.Close()
	if buf.Len() < 20 {
		t.Fatalf("trace too short to truncate (%d bytes)", buf.Len())
	}
	truncated := bytes.NewReader(buf.Bytes()[:buf.Len()-3])
	if _, err := Read(truncated); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("Read(truncated) = %v, want ErrUnexpectedEOF", err)
	}
}

// TestCloseDoesNotClobberReplacement: closing a tracer that was
// replaced by a newer one must leave the newer tracer capturing.
func TestCloseDoesNotClobberReplacement(t *testing.T) {
	w := newWorld(t)
	old := New(w.e, Options{})
	replacement := New(w.e, Options{})
	old.Close()
	if w.e.Tap == nil {
		t.Fatal("old tracer's Close removed the replacement's tap")
	}
	w.send(1, 0, w.vips[0], w.vips[9])
	w.e.Run(simtime.Never)
	if len(replacement.Records) == 0 {
		t.Error("replacement tracer captured nothing after old.Close")
	}
	if len(old.Records) != 0 {
		t.Error("closed tracer kept capturing")
	}
	replacement.Close()
	if w.e.Tap != nil || w.e.TapOwner != nil {
		t.Error("owning tracer's Close must detach the tap")
	}
}
