package ptrace

import (
	"bytes"
	"testing"

	"switchv2p/internal/baselines"
	"switchv2p/internal/netaddr"
	"switchv2p/internal/packet"
	"switchv2p/internal/simnet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
	"switchv2p/internal/vnet"
)

type world struct {
	topo *topology.Topology
	net  *vnet.Net
	e    *simnet.Engine
	vips []netaddr.VIP
}

func newWorld(t testing.TB) *world {
	t.Helper()
	topo, err := topology.New(topology.FT8())
	if err != nil {
		t.Fatal(err)
	}
	n := vnet.New(topo)
	vips := n.PlaceRoundRobin(256)
	e := simnet.New(topo, n, baselines.NewNoCache(), simnet.DefaultConfig())
	return &world{topo: topo, net: n, e: e, vips: vips}
}

func (w *world) send(flow uint64, seq int, src, dst netaddr.VIP) {
	h, _ := w.net.HostOf(src)
	w.e.HostSend(h, packet.NewData(flow, seq, 500, src, dst, 0))
}

func TestCaptureAndPath(t *testing.T) {
	w := newWorld(t)
	tr := New(w.e, Options{})
	w.send(1, 0, w.vips[0], w.vips[9])
	w.e.Run(simtime.Never)

	if len(tr.Records) == 0 {
		t.Fatal("no records captured")
	}
	// Every record carries monotonically non-decreasing timestamps.
	for i := 1; i < len(tr.Records); i++ {
		if tr.Records[i].At < tr.Records[i-1].At {
			t.Fatal("timestamps not monotonic")
		}
	}
	// The packet's path: starts at the sender ToR, visits a gateway host,
	// ends at the destination host.
	uid := tr.Records[0].Packet.UID
	path := tr.PathOf(uid)
	if len(path) < 8 {
		t.Fatalf("path too short: %d points", len(path))
	}
	first := path[0]
	srcHost, _ := w.net.HostOf(w.vips[0])
	if first.Kind != topology.KindSwitch || first.Idx != w.topo.Hosts[srcHost].ToR {
		t.Fatalf("path starts at %+v, want sender ToR", first)
	}
	last := path[len(path)-1]
	dstHost, _ := w.net.HostOf(w.vips[9])
	if last.Kind != topology.KindHost || last.Idx != dstHost {
		t.Fatalf("path ends at %+v, want destination host %d", last, dstHost)
	}
	sawGateway := false
	for _, pt := range path {
		if pt.Kind == topology.KindHost && w.topo.Hosts[pt.Idx].Gateway {
			sawGateway = true
		}
	}
	if !sawGateway {
		t.Fatal("NoCache path skipped the gateway")
	}
}

func TestSnapshotsAreImmutable(t *testing.T) {
	w := newWorld(t)
	tr := New(w.e, Options{})
	w.send(1, 0, w.vips[0], w.vips[9])
	w.e.Run(simtime.Never)
	// Early observations must still be unresolved even though the live
	// packet was later resolved by the gateway.
	first := tr.Records[0]
	if first.Packet.Resolved {
		t.Fatal("first observation already resolved: snapshot aliased the live packet")
	}
	last := tr.Records[len(tr.Records)-1]
	if !last.Packet.Resolved {
		t.Fatal("final observation not resolved")
	}
}

func TestFilters(t *testing.T) {
	w := newWorld(t)
	tr := New(w.e, Options{FlowID: 2, SwitchesOnly: true, Kinds: []packet.Kind{packet.Data}})
	w.send(1, 0, w.vips[0], w.vips[9])
	w.send(2, 0, w.vips[1], w.vips[10])
	w.e.Run(simtime.Never)
	if len(tr.Records) == 0 {
		t.Fatal("no records")
	}
	for _, r := range tr.Records {
		if r.Packet.FlowID != 2 {
			t.Fatalf("captured flow %d, filter was 2", r.Packet.FlowID)
		}
		if r.Point.Kind != topology.KindSwitch {
			t.Fatal("captured host point despite SwitchesOnly")
		}
		if r.Packet.Kind != packet.Data {
			t.Fatalf("captured kind %v", r.Packet.Kind)
		}
	}
}

func TestLimit(t *testing.T) {
	w := newWorld(t)
	tr := New(w.e, Options{Limit: 3})
	for i := 0; i < 5; i++ {
		w.send(uint64(i+1), 0, w.vips[i], w.vips[20+i])
	}
	w.e.Run(simtime.Never)
	if len(tr.Records) != 3 {
		t.Fatalf("records = %d, want 3", len(tr.Records))
	}
	if tr.Dropped == 0 {
		t.Fatal("dropped counter not incremented")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	w := newWorld(t)
	tr := New(w.e, Options{})
	w.send(1, 0, w.vips[0], w.vips[9])
	w.send(2, 3, w.vips[4], w.vips[30])
	w.e.Run(simtime.Never)

	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr.Records) {
		t.Fatalf("read %d records, wrote %d", len(got), len(tr.Records))
	}
	for i := range got {
		a, b := got[i], tr.Records[i]
		if a.At != b.At || a.Point != b.Point {
			t.Fatalf("record %d header mismatch: %+v vs %+v", i, a, b)
		}
		if a.Packet.FlowID != b.Packet.FlowID || a.Packet.Seq != b.Packet.Seq ||
			a.Packet.SrcVIP != b.Packet.SrcVIP || a.Packet.DstPIP != b.Packet.DstPIP ||
			a.Packet.Resolved != b.Packet.Resolved {
			t.Fatalf("record %d packet mismatch:\n%+v\n%+v", i, a.Packet, b.Packet)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace file at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncated valid header.
	w := newWorld(t)
	tr := New(w.e, Options{})
	w.send(1, 0, w.vips[0], w.vips[9])
	w.e.Run(simtime.Never)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestClose(t *testing.T) {
	w := newWorld(t)
	tr := New(w.e, Options{})
	tr.Close()
	w.send(1, 0, w.vips[0], w.vips[9])
	w.e.Run(simtime.Never)
	if len(tr.Records) != 0 {
		t.Fatal("tracer captured after Close")
	}
}

func TestDump(t *testing.T) {
	w := newWorld(t)
	tr := New(w.e, Options{})
	w.send(1, 0, w.vips[0], w.vips[9])
	w.e.Run(simtime.Never)
	var buf bytes.Buffer
	if err := tr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if len(out) == 0 {
		t.Fatal("empty dump")
	}
	lines := 0
	for _, c := range out {
		if c == '\n' {
			lines++
		}
	}
	if lines != len(tr.Records) {
		t.Fatalf("dump has %d lines for %d records", lines, len(tr.Records))
	}
	for _, want := range []string{"sw", "host", "flow=1"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("dump missing %q:\n%s", want, out[:200])
		}
	}
}

// failWriter errors after n bytes, to exercise write error paths.
type failWriter struct{ left int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, bytes.ErrTooLarge
	}
	n := len(p)
	if n > f.left {
		n = f.left
	}
	f.left -= n
	if n < len(p) {
		return n, bytes.ErrTooLarge
	}
	return n, nil
}

func TestWriteToFailingWriter(t *testing.T) {
	w := newWorld(t)
	tr := New(w.e, Options{})
	w.send(1, 0, w.vips[0], w.vips[9])
	w.e.Run(simtime.Never)
	if _, err := tr.WriteTo(&failWriter{left: 16}); err == nil {
		t.Fatal("failing writer accepted")
	}
	if err := tr.Dump(&failWriter{left: 4}); err == nil {
		t.Fatal("failing dump writer accepted")
	}
}

// FuzzRead: arbitrary bytes must never panic the trace parser.
func FuzzRead(f *testing.F) {
	w := newWorld(f) // testing.F implements testing.TB
	tr := New(w.e, Options{})
	w.send(1, 0, w.vips[0], w.vips[9])
	w.e.Run(simtime.Never)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err == nil {
		f.Add(buf.Bytes())
	}
	f.Add([]byte("SV2PTRC1garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		records, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, r := range records {
			_ = r.Packet.Size()
		}
	})
}
