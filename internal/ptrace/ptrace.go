// Package ptrace captures simulated packets at switch and host arrival
// points into a compact binary trace — the simulator's equivalent of a
// pcap capture. Records carry the simulated timestamp, the observation
// point, and the packet's full wire encoding (internal/packet's
// Marshal format), so traces are self-contained and replayable.
//
// Typical use (buffered):
//
//	tr := ptrace.New(engine, ptrace.Options{})
//	engine.Run(simtime.Never)
//	tr.WriteTo(file)
//
// Long-horizon runs stream instead: Options.Stream encodes each record
// to the writer as it is captured and retains nothing in memory, so
// capture cost is constant regardless of trace length:
//
//	tr := ptrace.New(engine, ptrace.Options{Stream: file})
//	engine.Run(simtime.Never)
//	tr.Close() // flush; check tr.StreamErr()
package ptrace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"switchv2p/internal/packet"
	"switchv2p/internal/simnet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
)

// magic identifies buffered trace files ("SV2PTRC1"): record count up
// front, then that many records.
var magic = [8]byte{'S', 'V', '2', 'P', 'T', 'R', 'C', '1'}

// magicStream identifies streamed trace files ("SV2PTRC2"): no count,
// records run until EOF. Written incrementally during capture.
var magicStream = [8]byte{'S', 'V', '2', 'P', 'T', 'R', 'C', '2'}

// Record is one captured packet observation.
type Record struct {
	At     simtime.Time
	Point  topology.NodeRef
	Packet *packet.Packet
}

// Options filters what gets captured.
type Options struct {
	// FlowID restricts capture to one flow (0 = all flows).
	FlowID uint64
	// Kinds restricts capture to the listed packet kinds (nil = all).
	Kinds []packet.Kind
	// SwitchesOnly drops host observation points.
	SwitchesOnly bool
	// Limit stops capturing after N records (0 = unlimited).
	Limit int
	// Stream, when non-nil, switches the tracer to streaming capture:
	// records are encoded to the writer as they are observed (format
	// "SV2PTRC2", EOF-terminated) and are NOT retained in Records, so
	// arbitrarily long traces capture in constant memory. Call Close to
	// flush and check StreamErr for write failures.
	Stream io.Writer
}

func (o Options) match(at topology.NodeRef, p *packet.Packet) bool {
	if o.FlowID != 0 && p.FlowID != o.FlowID {
		return false
	}
	if o.SwitchesOnly && at.Kind != topology.KindSwitch {
		return false
	}
	if o.Kinds != nil {
		ok := false
		for _, k := range o.Kinds {
			if p.Kind == k {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Tracer collects records from an engine's Tap.
type Tracer struct {
	opts    Options
	e       *simnet.Engine
	Records []Record
	Dropped int // records skipped due to Limit

	captured  int // total records captured (buffered + streamed)
	closed    bool
	sw        *bufio.Writer
	streamErr error
}

// New installs a tracer as the engine's Tap and returns it. Installing a
// second tracer replaces the first (the replaced tracer stops observing
// and its Close becomes a flush-only no-op on the engine).
func New(e *simnet.Engine, opts Options) *Tracer {
	t := &Tracer{opts: opts, e: e}
	if opts.Stream != nil {
		t.sw = bufio.NewWriter(opts.Stream)
		if err := binary.Write(t.sw, binary.BigEndian, magicStream); err != nil {
			t.streamErr = err
		}
	}
	e.Tap = t.observe
	e.TapOwner = t
	return t
}

func (t *Tracer) observe(at topology.NodeRef, p *packet.Packet) {
	if t.closed || !t.opts.match(at, p) {
		return
	}
	if t.opts.Limit > 0 && t.captured >= t.opts.Limit {
		t.Dropped++
		return
	}
	t.captured++
	if t.sw != nil {
		// Streamed capture encodes in place: the packet's wire form is
		// serialized now, so no snapshot needs to be retained.
		if t.streamErr == nil {
			if err := encodeRecord(t.sw, t.e.Now(), at, p.Marshal()); err != nil {
				t.streamErr = err
			}
		}
		return
	}
	// Snapshot the packet: it mutates as it continues through the
	// network.
	t.Records = append(t.Records, Record{At: t.e.Now(), Point: at, Packet: p.Clone()})
}

// Close stops the tracer and, in streaming capture, flushes buffered
// bytes. The engine's tap is detached only if this tracer still owns it
// — closing a tracer that was replaced by a newer one leaves the newer
// tap untouched.
func (t *Tracer) Close() {
	t.closed = true
	if t.sw != nil {
		if err := t.sw.Flush(); err != nil && t.streamErr == nil {
			t.streamErr = err
		}
	}
	if t.e != nil && t.e.TapOwner == t {
		t.e.Tap = nil
		t.e.TapOwner = nil
	}
}

// StreamErr reports the first write error encountered by streaming
// capture (nil in buffered capture).
func (t *Tracer) StreamErr() error { return t.streamErr }

// Captured returns the number of records captured so far, including
// streamed records no longer held in memory.
func (t *Tracer) Captured() int { return t.captured }

// PathOf returns the observation points (in order) of one packet UID —
// the packet's actual route through the network. Buffered capture only:
// streamed records are not retained.
func (t *Tracer) PathOf(uid uint64) []topology.NodeRef {
	var out []topology.NodeRef
	for i := range t.Records {
		if t.Records[i].Packet.UID == uid {
			out = append(out, t.Records[i].Point)
		}
	}
	return out
}

// encodeRecord writes one record body: timestamp (i64), point kind
// (u8), point index (i32), wire length (u32), wire bytes. Shared by the
// buffered and streaming writers so the on-disk record layout cannot
// diverge.
func encodeRecord(w io.Writer, at simtime.Time, point topology.NodeRef, wire []byte) error {
	if err := binary.Write(w, binary.BigEndian, int64(at)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.BigEndian, uint8(point.Kind)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.BigEndian, point.Idx); err != nil {
		return err
	}
	if err := binary.Write(w, binary.BigEndian, uint32(len(wire))); err != nil {
		return err
	}
	_, err := w.Write(wire)
	return err
}

// WriteTo serializes a buffered trace. Format: magic, record count
// (u64), then the records (see encodeRecord). A streaming tracer
// retains no records, so WriteTo on one produces an empty trace — its
// records already went to Options.Stream.
func (t *Tracer) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	if err := binary.Write(bw, binary.BigEndian, magic); err != nil {
		return n, err
	}
	n += int64(len(magic))
	if err := binary.Write(bw, binary.BigEndian, uint64(len(t.Records))); err != nil {
		return n, err
	}
	n += 8
	for i := range t.Records {
		r := &t.Records[i]
		wire := r.Packet.Marshal()
		if err := encodeRecord(bw, r.At, r.Point, wire); err != nil {
			return n, err
		}
		n += 17 + int64(len(wire))
	}
	return n, bw.Flush()
}

// readRecord parses one record body. io.EOF is returned only when the
// stream ends exactly at a record boundary; EOF inside a record is
// converted to io.ErrUnexpectedEOF so truncated streams fail loudly.
func readRecord(br *bufio.Reader) (Record, error) {
	var at int64
	var kind uint8
	var idx int32
	var wireLen uint32
	if err := binary.Read(br, binary.BigEndian, &at); err != nil {
		return Record{}, err
	}
	unexpectEOF := func(err error) error {
		if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	if err := binary.Read(br, binary.BigEndian, &kind); err != nil {
		return Record{}, unexpectEOF(err)
	}
	if err := binary.Read(br, binary.BigEndian, &idx); err != nil {
		return Record{}, unexpectEOF(err)
	}
	if err := binary.Read(br, binary.BigEndian, &wireLen); err != nil {
		return Record{}, unexpectEOF(err)
	}
	if wireLen > packet.MTU {
		return Record{}, fmt.Errorf("ptrace: wire length %d exceeds MTU", wireLen)
	}
	wire := make([]byte, wireLen)
	if _, err := io.ReadFull(br, wire); err != nil {
		return Record{}, unexpectEOF(err)
	}
	p, err := packet.Unmarshal(wire)
	if err != nil {
		return Record{}, err
	}
	return Record{
		At:     simtime.Time(at),
		Point:  topology.NodeRef{Kind: topology.NodeKind(kind), Idx: idx},
		Packet: p,
	}, nil
}

// Read parses a trace produced by WriteTo (SV2PTRC1, counted) or by
// streaming capture (SV2PTRC2, EOF-terminated).
func Read(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if err := binary.Read(br, binary.BigEndian, &m); err != nil {
		return nil, err
	}
	switch m {
	case magic:
		var count uint64
		if err := binary.Read(br, binary.BigEndian, &count); err != nil {
			return nil, err
		}
		const maxRecords = 1 << 30
		if count > maxRecords {
			return nil, fmt.Errorf("ptrace: implausible record count %d", count)
		}
		out := make([]Record, 0, count)
		for i := uint64(0); i < count; i++ {
			rec, err := readRecord(br)
			if err != nil {
				return nil, fmt.Errorf("ptrace: record %d: %w", i, err)
			}
			out = append(out, rec)
		}
		return out, nil
	case magicStream:
		var out []Record
		for i := 0; ; i++ {
			rec, err := readRecord(br)
			if err == io.EOF {
				// Clean EOF at a record boundary ends the stream; EOF
				// inside a record arrives as ErrUnexpectedEOF instead.
				return out, nil
			}
			if err != nil {
				return nil, fmt.Errorf("ptrace: record %d: %w", i, err)
			}
			out = append(out, rec)
		}
	default:
		return nil, errors.New("ptrace: bad magic")
	}
}

// Dump renders the trace in a tcpdump-like human-readable form, one
// line per record.
func (t *Tracer) Dump(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := range t.Records {
		r := &t.Records[i]
		point := "host"
		if r.Point.Kind == topology.KindSwitch {
			point = "sw"
		}
		if _, err := fmt.Fprintf(bw, "%-12s %s%-4d %s\n", r.At, point, r.Point.Idx, r.Packet); err != nil {
			return err
		}
	}
	return bw.Flush()
}
