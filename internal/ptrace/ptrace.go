// Package ptrace captures simulated packets at switch and host arrival
// points into a compact binary trace — the simulator's equivalent of a
// pcap capture. Records carry the simulated timestamp, the observation
// point, and the packet's full wire encoding (internal/packet's
// Marshal format), so traces are self-contained and replayable.
//
// Typical use:
//
//	tr := ptrace.New(engine, ptrace.Options{})
//	engine.Run(simtime.Never)
//	tr.WriteTo(file)
package ptrace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"switchv2p/internal/packet"
	"switchv2p/internal/simnet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
)

// magic identifies trace files ("SV2PTRC1").
var magic = [8]byte{'S', 'V', '2', 'P', 'T', 'R', 'C', '1'}

// Record is one captured packet observation.
type Record struct {
	At     simtime.Time
	Point  topology.NodeRef
	Packet *packet.Packet
}

// Options filters what gets captured.
type Options struct {
	// FlowID restricts capture to one flow (0 = all flows).
	FlowID uint64
	// Kinds restricts capture to the listed packet kinds (nil = all).
	Kinds []packet.Kind
	// SwitchesOnly drops host observation points.
	SwitchesOnly bool
	// Limit stops capturing after N records (0 = unlimited).
	Limit int
}

func (o Options) match(at topology.NodeRef, p *packet.Packet) bool {
	if o.FlowID != 0 && p.FlowID != o.FlowID {
		return false
	}
	if o.SwitchesOnly && at.Kind != topology.KindSwitch {
		return false
	}
	if o.Kinds != nil {
		ok := false
		for _, k := range o.Kinds {
			if p.Kind == k {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Tracer collects records from an engine's Tap.
type Tracer struct {
	opts    Options
	e       *simnet.Engine
	Records []Record
	Dropped int // records skipped due to Limit
}

// New installs a tracer as the engine's Tap and returns it. Installing a
// second tracer replaces the first.
func New(e *simnet.Engine, opts Options) *Tracer {
	t := &Tracer{opts: opts, e: e}
	e.Tap = t.observe
	return t
}

func (t *Tracer) observe(at topology.NodeRef, p *packet.Packet) {
	if !t.opts.match(at, p) {
		return
	}
	if t.opts.Limit > 0 && len(t.Records) >= t.opts.Limit {
		t.Dropped++
		return
	}
	// Snapshot the packet: it mutates as it continues through the
	// network.
	t.Records = append(t.Records, Record{At: t.e.Now(), Point: at, Packet: p.Clone()})
}

// Close detaches the tracer from the engine.
func (t *Tracer) Close() {
	if t.e != nil && t.e.Tap != nil {
		t.e.Tap = nil
	}
}

// PathOf returns the observation points (in order) of one packet UID —
// the packet's actual route through the network.
func (t *Tracer) PathOf(uid uint64) []topology.NodeRef {
	var out []topology.NodeRef
	for i := range t.Records {
		if t.Records[i].Packet.UID == uid {
			out = append(out, t.Records[i].Point)
		}
	}
	return out
}

// WriteTo serializes the trace. Format: magic, record count (u64), then
// per record: timestamp (i64), point kind (u8), point index (i32), wire
// length (u32), wire bytes.
func (t *Tracer) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(data any) error {
		if err := binary.Write(bw, binary.BigEndian, data); err != nil {
			return err
		}
		n += int64(binary.Size(data))
		return nil
	}
	if err := write(magic); err != nil {
		return n, err
	}
	if err := write(uint64(len(t.Records))); err != nil {
		return n, err
	}
	for i := range t.Records {
		r := &t.Records[i]
		wire := r.Packet.Marshal()
		if err := write(int64(r.At)); err != nil {
			return n, err
		}
		if err := write(uint8(r.Point.Kind)); err != nil {
			return n, err
		}
		if err := write(r.Point.Idx); err != nil {
			return n, err
		}
		if err := write(uint32(len(wire))); err != nil {
			return n, err
		}
		if _, err := bw.Write(wire); err != nil {
			return n, err
		}
		n += int64(len(wire))
	}
	return n, bw.Flush()
}

// Read parses a trace produced by WriteTo.
func Read(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if err := binary.Read(br, binary.BigEndian, &m); err != nil {
		return nil, err
	}
	if m != magic {
		return nil, errors.New("ptrace: bad magic")
	}
	var count uint64
	if err := binary.Read(br, binary.BigEndian, &count); err != nil {
		return nil, err
	}
	const maxRecords = 1 << 30
	if count > maxRecords {
		return nil, fmt.Errorf("ptrace: implausible record count %d", count)
	}
	out := make([]Record, 0, count)
	for i := uint64(0); i < count; i++ {
		var at int64
		var kind uint8
		var idx int32
		var wireLen uint32
		if err := binary.Read(br, binary.BigEndian, &at); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.BigEndian, &kind); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.BigEndian, &idx); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.BigEndian, &wireLen); err != nil {
			return nil, err
		}
		if wireLen > packet.MTU {
			return nil, fmt.Errorf("ptrace: record %d wire length %d exceeds MTU", i, wireLen)
		}
		wire := make([]byte, wireLen)
		if _, err := io.ReadFull(br, wire); err != nil {
			return nil, err
		}
		p, err := packet.Unmarshal(wire)
		if err != nil {
			return nil, fmt.Errorf("ptrace: record %d: %w", i, err)
		}
		out = append(out, Record{
			At:     simtime.Time(at),
			Point:  topology.NodeRef{Kind: topology.NodeKind(kind), Idx: idx},
			Packet: p,
		})
	}
	return out, nil
}

// Dump renders the trace in a tcpdump-like human-readable form, one
// line per record.
func (t *Tracer) Dump(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := range t.Records {
		r := &t.Records[i]
		point := "host"
		if r.Point.Kind == topology.KindSwitch {
			point = "sw"
		}
		if _, err := fmt.Fprintf(bw, "%-12s %s%-4d %s\n", r.At, point, r.Point.Idx, r.Packet); err != nil {
			return err
		}
	}
	return bw.Flush()
}
