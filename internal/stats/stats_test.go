package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Quantile(0.5) != 0 || s.Min() != 0 || s.Max() != 0 || s.Stddev() != 0 {
		t.Fatalf("empty sample not all-zero: %v", s.String())
	}
}

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.N() != 5 || s.Mean() != 3 || s.Sum() != 15 {
		t.Fatalf("n=%d mean=%v sum=%v", s.N(), s.Mean(), s.Sum())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Quantile(0.5); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := s.Quantile(1); got != 5 {
		t.Fatalf("q1 = %v", got)
	}
	want := math.Sqrt(2) // population stddev of 1..5
	if math.Abs(s.Stddev()-want) > 1e-9 {
		t.Fatalf("stddev = %v, want %v", s.Stddev(), want)
	}
}

func TestSampleQuantileClamps(t *testing.T) {
	var s Sample
	s.Add(7)
	if s.Quantile(-1) != 7 || s.Quantile(2) != 7 {
		t.Fatal("quantile clamping broken")
	}
}

func TestSampleAddAfterQuery(t *testing.T) {
	var s Sample
	s.Add(10)
	_ = s.Quantile(0.5)
	s.Add(1) // must re-sort lazily
	if s.Min() != 1 {
		t.Fatalf("Min after post-query Add = %v", s.Min())
	}
}

func TestSampleQuantileOrderingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Sample
		for i := 0; i < 200; i++ {
			s.Add(rng.Float64() * 1000)
		}
		last := s.Quantile(0)
		for q := 0.1; q <= 1.0; q += 0.1 {
			v := s.Quantile(q)
			if v < last {
				return false
			}
			last = v
		}
		return s.Min() <= s.Mean() && s.Mean() <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramValidation(t *testing.T) {
	for _, bad := range [][3]float64{{0, 2, 10}, {1, 1, 10}, {1, 2, 0}} {
		if _, err := NewHistogram(bad[0], bad[1], int(bad[2])); err == nil {
			t.Fatalf("accepted invalid shape %v", bad)
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	h, err := NewHistogram(1, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.5, 1.5, 3, 6, 12, 100} {
		h.Add(v)
	}
	if h.N() != 6 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Max() != 100 {
		t.Fatalf("Max = %v", h.Max())
	}
	wantMean := (0.5 + 1.5 + 3 + 6 + 12 + 100) / 6
	if math.Abs(h.Mean()-wantMean) > 1e-9 {
		t.Fatalf("Mean = %v, want %v", h.Mean(), wantMean)
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	// Property: the histogram quantile is an upper bound within one
	// bucket's growth factor of the exact quantile.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, err := NewHistogram(1, 1.5, 64)
		if err != nil {
			return false
		}
		var s Sample
		for i := 0; i < 500; i++ {
			v := math.Exp(rng.Float64() * 10) // 1 .. e^10
			h.Add(v)
			s.Add(v)
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			exact := s.Quantile(q)
			est := h.Quantile(q)
			if est < exact/1.5001 || est > exact*1.5001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h, err := NewHistogram(1, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.N() != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestHistogramUnderflowOverflow(t *testing.T) {
	h, err := NewHistogram(10, 2, 3) // buckets: [10,20) [20,40) [40,80)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(1)    // underflow
	h.Add(1000) // overflow -> clamped to last bucket
	if h.N() != 2 {
		t.Fatalf("N = %d", h.N())
	}
	if got := h.Quantile(0.25); got != 10 {
		t.Fatalf("underflow quantile = %v, want first edge", got)
	}
}
