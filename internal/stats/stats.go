// Package stats provides the measurement primitives the evaluation
// uses: an exact-percentile sample collector for latency-style metrics
// and a log-bucketed streaming histogram for unbounded populations.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample collects observations and answers mean/percentile queries
// exactly (it keeps all values; suitable for up to millions of points).
// The zero value is ready to use.
type Sample struct {
	values []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean (0 when empty).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Sum returns the total.
func (s *Sample) Sum() float64 {
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) using the
// nearest-rank method; 0 when empty.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s.sort()
	idx := int(math.Ceil(q*float64(len(s.values)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s.values[idx]
}

// Min and Max return the extremes (0 when empty).
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	return s.values[0]
}

// Max returns the largest observation (0 when empty).
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	return s.values[len(s.values)-1]
}

// Stddev returns the population standard deviation (0 when empty).
func (s *Sample) Stddev() float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	acc := 0.0
	for _, v := range s.values {
		d := v - mean
		acc += d * d
	}
	return math.Sqrt(acc / float64(n))
}

// String summarizes the sample.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p99=%.2f max=%.2f",
		s.N(), s.Mean(), s.Quantile(0.5), s.Quantile(0.99), s.Max())
}

// Histogram is a log-bucketed streaming histogram: constant memory,
// bounded relative error per bucket. Buckets are powers of `growth`
// starting at `first`.
type Histogram struct {
	first   float64
	growth  float64
	counts  []uint64
	under   uint64 // observations below first
	total   uint64
	sum     float64
	maxSeen float64
}

// NewHistogram creates a histogram with buckets [first, first*growth,
// ...]. growth must be > 1.
func NewHistogram(first, growth float64, buckets int) (*Histogram, error) {
	if first <= 0 || growth <= 1 || buckets <= 0 {
		return nil, fmt.Errorf("stats: invalid histogram shape (first=%v growth=%v buckets=%d)",
			first, growth, buckets)
	}
	return &Histogram{first: first, growth: growth, counts: make([]uint64, buckets)}, nil
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	h.total++
	h.sum += v
	if v > h.maxSeen {
		h.maxSeen = v
	}
	if v < h.first {
		h.under++
		return
	}
	idx := int(math.Log(v/h.first) / math.Log(h.growth))
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
}

// N returns the number of observations.
func (h *Histogram) N() uint64 { return h.total }

// Mean returns the exact mean of all observations.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max returns the largest observation seen (exact).
func (h *Histogram) Max() float64 { return h.maxSeen }

// Quantile returns an upper-bound estimate of the q-quantile: the upper
// edge of the bucket containing it.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank <= h.under {
		return h.first
	}
	acc := h.under
	edge := h.first
	for _, c := range h.counts {
		edge *= h.growth
		acc += c
		if acc >= rank {
			return edge
		}
	}
	return h.maxSeen
}
