// Package netaddr defines the address types used by the virtual network:
// physical IPs (PIPs) identify hosts, gateways and switches in the
// underlay, while virtual IPs (VIPs) are tenant-assigned identifiers with
// no location information. Both are compact IPv4-like 32-bit values so
// they can be used as map keys and cache keys without allocation.
package netaddr

import (
	"fmt"
)

// PIP is a physical (underlay) IPv4 address.
type PIP uint32

// VIP is a virtual (overlay) IPv4 address. VIPs are mere identifiers: they
// carry no information about where the VM is physically located.
type VIP uint32

// Zero values signal "no address".
const (
	NoPIP PIP = 0
	NoVIP VIP = 0
)

// IsValid reports whether the address is non-zero.
func (p PIP) IsValid() bool { return p != NoPIP }

// IsValid reports whether the address is non-zero.
func (v VIP) IsValid() bool { return v != NoVIP }

func formatIPv4(a uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// String formats the PIP in dotted-quad notation.
func (p PIP) String() string { return formatIPv4(uint32(p)) }

// String formats the VIP in dotted-quad notation.
func (v VIP) String() string { return formatIPv4(uint32(v)) }

// Well-known allocation bases. The underlay uses 10.0.0.0/8 and the
// overlay uses 172.16.0.0/12-style space; the exact values only matter for
// readable logs.
const (
	pipBase = 10 << 24  // 10.0.0.0
	vipBase = 172 << 24 // 172.0.0.0
)

// PIPAllocator hands out sequential physical addresses.
// The zero value is ready to use.
type PIPAllocator struct{ next uint32 }

// Next returns a fresh, previously unissued PIP.
func (a *PIPAllocator) Next() PIP {
	a.next++
	return PIP(pipBase + a.next)
}

// Issued returns how many addresses have been handed out.
func (a *PIPAllocator) Issued() int { return int(a.next) }

// VIPAllocator hands out sequential virtual addresses.
// The zero value is ready to use.
type VIPAllocator struct{ next uint32 }

// Next returns a fresh, previously unissued VIP.
func (a *VIPAllocator) Next() VIP {
	a.next++
	return VIP(vipBase + a.next)
}

// Issued returns how many addresses have been handed out.
func (a *VIPAllocator) Issued() int { return int(a.next) }

// Mapping is a single virtual-to-physical translation entry: the unit of
// state that gateways store authoritatively and switches cache.
type Mapping struct {
	VIP VIP
	PIP PIP
}

// IsValid reports whether both halves of the mapping are set.
func (m Mapping) IsValid() bool { return m.VIP.IsValid() && m.PIP.IsValid() }

// String formats the mapping as "vip->pip".
func (m Mapping) String() string { return m.VIP.String() + "->" + m.PIP.String() }

// HashVIP mixes a VIP into a well-distributed 32-bit hash. It is the hash
// used for direct-mapped cache indexing; a multiplicative (Fibonacci)
// hash is cheap enough for a switch data plane and distributes the
// sequential VIPs our allocators produce.
func HashVIP(v VIP) uint32 {
	x := uint32(v)
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

// FlowHash mixes the ECMP 5-tuple surrogate (outer source, outer
// destination, flow identifier) into a hash used for multipath selection.
// It deliberately depends on the outer destination so that a V2P rewrite
// re-hashes the packet onto a path toward its new destination, exactly as
// ECMP behaves in a real underlay.
func FlowHash(src, dst PIP, flowID uint64) uint32 {
	h := uint64(src)*0x9e3779b97f4a7c15 ^ uint64(dst)*0xc2b2ae3d27d4eb4f ^ flowID*0x165667b19e3779f9
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return uint32(h)
}
