package netaddr

import (
	"testing"
	"testing/quick"
)

func TestAllocatorsSequentialAndUnique(t *testing.T) {
	var pa PIPAllocator
	var va VIPAllocator
	seenP := make(map[PIP]bool)
	seenV := make(map[VIP]bool)
	for i := 0; i < 1000; i++ {
		p := pa.Next()
		v := va.Next()
		if !p.IsValid() || !v.IsValid() {
			t.Fatalf("allocator returned invalid address at %d", i)
		}
		if seenP[p] {
			t.Fatalf("duplicate PIP %v", p)
		}
		if seenV[v] {
			t.Fatalf("duplicate VIP %v", v)
		}
		seenP[p], seenV[v] = true, true
	}
	if pa.Issued() != 1000 || va.Issued() != 1000 {
		t.Fatalf("Issued() = %d/%d, want 1000/1000", pa.Issued(), va.Issued())
	}
}

func TestStringFormat(t *testing.T) {
	var pa PIPAllocator
	p := pa.Next()
	if got := p.String(); got != "10.0.0.1" {
		t.Fatalf("first PIP = %q, want 10.0.0.1", got)
	}
	var va VIPAllocator
	v := va.Next()
	if got := v.String(); got != "172.0.0.1" {
		t.Fatalf("first VIP = %q, want 172.0.0.1", got)
	}
}

func TestNoAddressInvalid(t *testing.T) {
	if NoPIP.IsValid() || NoVIP.IsValid() {
		t.Fatalf("zero addresses must be invalid")
	}
	var m Mapping
	if m.IsValid() {
		t.Fatalf("zero mapping must be invalid")
	}
	m = Mapping{VIP: 1, PIP: 2}
	if !m.IsValid() {
		t.Fatalf("non-zero mapping must be valid")
	}
}

func TestMappingString(t *testing.T) {
	m := Mapping{VIP: VIP(vipBase + 1), PIP: PIP(pipBase + 2)}
	if got := m.String(); got != "172.0.0.1->10.0.0.2" {
		t.Fatalf("Mapping.String() = %q", got)
	}
}

func TestHashVIPDeterministic(t *testing.T) {
	f := func(v uint32) bool {
		return HashVIP(VIP(v)) == HashVIP(VIP(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashVIPDistribution(t *testing.T) {
	// Sequential VIPs must spread across cache buckets: with 4096 VIPs and
	// 256 buckets no bucket should be empty and none should hold more than
	// 4x the mean, otherwise direct-mapped caches would behave badly.
	const buckets = 256
	var counts [buckets]int
	var va VIPAllocator
	for i := 0; i < 4096; i++ {
		counts[HashVIP(va.Next())%buckets]++
	}
	for b, c := range counts {
		if c == 0 {
			t.Fatalf("bucket %d empty", b)
		}
		if c > 64 {
			t.Fatalf("bucket %d overloaded: %d", b, c)
		}
	}
}

func TestFlowHashSensitivity(t *testing.T) {
	// The hash must change when the outer destination changes (this is what
	// re-routes a flow after a V2P rewrite under ECMP).
	h1 := FlowHash(1, 100, 7)
	h2 := FlowHash(1, 101, 7)
	if h1 == h2 {
		t.Fatalf("FlowHash insensitive to destination")
	}
	h3 := FlowHash(1, 100, 8)
	if h1 == h3 {
		t.Fatalf("FlowHash insensitive to flow id")
	}
	if h1 != FlowHash(1, 100, 7) {
		t.Fatalf("FlowHash not deterministic")
	}
}

func TestFlowHashBalance(t *testing.T) {
	// Across many flows the low bits choose among 4 next hops: each next
	// hop should receive a reasonable share.
	var counts [4]int
	for i := 0; i < 10000; i++ {
		counts[FlowHash(PIP(10+i), PIP(20), uint64(i))%4]++
	}
	for i, c := range counts {
		if c < 2000 || c > 3000 {
			t.Fatalf("next hop %d got %d of 10000 flows, want ~2500", i, c)
		}
	}
}
