// Package topology models the physical data center network: a fat-tree
// of ToR, spine and core switches with hosts (servers and translation
// gateways) attached at the leaves. It classifies switches into the five
// roles SwitchV2P distinguishes (Table 1 of the paper) and computes
// ECMP next-hop tables for shortest-path up/down routing.
package topology

import (
	"fmt"

	"switchv2p/internal/netaddr"
	"switchv2p/internal/simtime"
)

// SwitchRole is the location-derived category of a switch (§3.2).
type SwitchRole uint8

// Switch roles. Gateway ToRs are directly attached to translation
// gateways; gateway spines sit in gateway pods.
const (
	RoleToR SwitchRole = iota
	RoleSpine
	RoleCore
	RoleGatewayToR
	RoleGatewaySpine
)

// String returns the role's name.
func (r SwitchRole) String() string {
	switch r {
	case RoleToR:
		return "tor"
	case RoleSpine:
		return "spine"
	case RoleCore:
		return "core"
	case RoleGatewayToR:
		return "gateway-tor"
	case RoleGatewaySpine:
		return "gateway-spine"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// IsToR reports whether the role is a top-of-rack switch (gateway or not).
func (r SwitchRole) IsToR() bool { return r == RoleToR || r == RoleGatewayToR }

// IsSpine reports whether the role is a spine switch (gateway or not).
func (r SwitchRole) IsSpine() bool { return r == RoleSpine || r == RoleGatewaySpine }

// Layer returns the coarse topology layer used in the hit-distribution
// analysis (Table 5): "tor", "spine" or "core".
func (r SwitchRole) Layer() string {
	switch {
	case r.IsToR():
		return "tor"
	case r.IsSpine():
		return "spine"
	default:
		return "core"
	}
}

// Switch describes one switch in the topology.
type Switch struct {
	Idx  int32 // dense index into Topology.Switches; also the SwitchV2P identifier
	PIP  netaddr.PIP
	Role SwitchRole
	Pod  int // -1 for core switches
	Rack int // rack index within the pod for ToRs, -1 otherwise
}

// Host describes a server or a translation gateway attached to a ToR.
type Host struct {
	Idx     int32 // dense index into Topology.Hosts
	PIP     netaddr.PIP
	Pod     int
	Rack    int
	ToR     int32 // switch index of the attached ToR
	Gateway bool  // true if this host is a translation gateway instance
}

// LinkClass selects link parameters: host links are server NICs, fabric
// links are switch-to-switch.
type LinkClass uint8

// Link classes.
const (
	HostLink LinkClass = iota
	FabricLink
)

// Config parameterizes a fat-tree build. The defaults mirror the paper's
// evaluation setup (§5 "Network parameters").
type Config struct {
	Pods           int
	RacksPerPod    int
	SpinesPerPod   int
	Cores          int
	ServersPerRack int

	// GatewayPods lists the pods that host translation gateways; the last
	// rack's ToR in each becomes the gateway ToR with GatewaysPerPod
	// gateway instances attached. GatewayCounts, when non-nil, overrides
	// GatewaysPerPod with a per-pod count (parallel to GatewayPods).
	GatewayPods    []int
	GatewaysPerPod int
	GatewayCounts  []int

	HostLinkBps   int64            // server NIC speed (bits/s)
	FabricLinkBps int64            // switch-to-switch speed (bits/s)
	LinkDelay     simtime.Duration // per-link propagation delay
	BufferBytes   int              // shared buffer per switch
}

// FT8 returns the FT8-10K configuration from Table 3: 8 pods, 4 racks per
// pod, 32 ToRs, 32 spines, 16 cores, 128 servers, 40 gateways in half the
// pods, 100 Gbps NICs, 400 Gbps fabric, 1 µs link delay, 32 MB buffers.
func FT8() Config {
	return Config{
		Pods: 8, RacksPerPod: 4, SpinesPerPod: 4, Cores: 16, ServersPerRack: 4,
		GatewayPods: []int{0, 2, 5, 7}, GatewaysPerPod: 10,
		HostLinkBps: 100e9, FabricLinkBps: 400e9,
		LinkDelay: simtime.Microsecond, BufferBytes: 32 << 20,
	}
}

// FT16 returns the FT16-400K configuration from Table 3: 50 pods, 8 racks
// per pod, 400 ToRs, 16 cores, 12800 servers, 250 gateways in half the pods.
func FT16() Config {
	gwPods := make([]int, 0, 25)
	for p := 0; p < 50; p += 2 {
		gwPods = append(gwPods, p)
	}
	return Config{
		Pods: 50, RacksPerPod: 8, SpinesPerPod: 8, Cores: 16, ServersPerRack: 32,
		GatewayPods: gwPods, GatewaysPerPod: 10,
		HostLinkBps: 100e9, FabricLinkBps: 400e9,
		LinkDelay: simtime.Microsecond, BufferBytes: 32 << 20,
	}
}

// ScaledFT8 returns the FT8-10K topology rescaled to the given pod count
// while keeping 128 servers total, as in the topology-scaling experiment
// (Fig. 10): the number of servers per rack shrinks as pods grow.
func ScaledFT8(pods int) (Config, error) {
	const totalServers = 128
	cfg := FT8()
	cfg.Pods = pods
	perPod := totalServers / pods
	if perPod*pods != totalServers {
		return Config{}, fmt.Errorf("topology: %d pods does not divide %d servers", pods, totalServers)
	}
	cfg.ServersPerRack = perPod / cfg.RacksPerPod
	if cfg.ServersPerRack*cfg.RacksPerPod != perPod {
		return Config{}, fmt.Errorf("topology: %d pods leaves fractional servers per rack", pods)
	}
	// Keep half the pods as gateway pods (at least one).
	cfg.GatewayPods = nil
	for p := 0; p < pods; p += 2 {
		cfg.GatewayPods = append(cfg.GatewayPods, p)
	}
	// Keep the total gateway count at 40, spreading the remainder over the
	// first pods.
	n := len(cfg.GatewayPods)
	cfg.GatewayCounts = make([]int, n)
	for i := range cfg.GatewayCounts {
		cfg.GatewayCounts[i] = 40 / n
		if i < 40%n {
			cfg.GatewayCounts[i]++
		}
	}
	return cfg, nil
}

// Validate checks that the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Pods <= 0 || c.RacksPerPod <= 0 || c.SpinesPerPod <= 0 || c.Cores <= 0 || c.ServersPerRack < 0:
		return fmt.Errorf("topology: non-positive dimension in %+v", c)
	case c.HostLinkBps <= 0 || c.FabricLinkBps <= 0:
		return fmt.Errorf("topology: non-positive link speed")
	case c.LinkDelay < 0:
		return fmt.Errorf("topology: negative link delay")
	case c.GatewaysPerPod < 0:
		return fmt.Errorf("topology: negative gateways per pod")
	}
	for _, p := range c.GatewayPods {
		if p < 0 || p >= c.Pods {
			return fmt.Errorf("topology: gateway pod %d out of range [0,%d)", p, c.Pods)
		}
	}
	return nil
}

// Edge is one physical link between two attachment points.
type Edge struct {
	A, B  NodeRef
	Class LinkClass
}

// NodeKind discriminates the two endpoint kinds of an Edge.
type NodeKind uint8

// Node kinds.
const (
	KindSwitch NodeKind = iota
	KindHost
)

// NodeRef identifies a switch or host by kind and dense index.
type NodeRef struct {
	Kind NodeKind
	Idx  int32
}

// SwitchRef and HostRef build NodeRefs.
func SwitchRef(i int32) NodeRef { return NodeRef{KindSwitch, i} }

// HostRef returns a NodeRef for host index i.
func HostRef(i int32) NodeRef { return NodeRef{KindHost, i} }

// String renders the ref for error messages and fault timelines.
func (r NodeRef) String() string {
	if r.Kind == KindHost {
		return fmt.Sprintf("host %d", r.Idx)
	}
	return fmt.Sprintf("switch %d", r.Idx)
}

// Topology is a fully built network: switches, hosts, links and ECMP
// next-hop tables. Build one with New.
type Topology struct {
	Cfg      Config
	Switches []Switch
	Hosts    []Host
	Edges    []Edge

	adj         [][]int32 // switch -> neighboring switch indices
	hostsAtToR  [][]int32 // switch -> attached host indices (empty for non-ToRs)
	next        [][][]int32
	switchByPIP map[netaddr.PIP]int32
	hostByPIP   map[netaddr.PIP]int32
	gateways    []int32 // host indices of gateway instances
}

// New builds the fat-tree described by cfg and computes routing tables.
func New(cfg Config) (*Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Topology{
		Cfg:         cfg,
		switchByPIP: make(map[netaddr.PIP]int32),
		hostByPIP:   make(map[netaddr.PIP]int32),
	}
	var pips netaddr.PIPAllocator

	gwCount := make(map[int]int, len(cfg.GatewayPods))
	for i, p := range cfg.GatewayPods {
		n := cfg.GatewaysPerPod
		if cfg.GatewayCounts != nil {
			n = cfg.GatewayCounts[i]
		}
		gwCount[p] = n
	}
	gwPod := func(p int) bool { _, ok := gwCount[p]; return ok }

	addSwitch := func(role SwitchRole, pod, rack int) int32 {
		idx := int32(len(t.Switches))
		s := Switch{Idx: idx, PIP: pips.Next(), Role: role, Pod: pod, Rack: rack}
		t.Switches = append(t.Switches, s)
		t.switchByPIP[s.PIP] = idx
		return idx
	}
	addHost := func(pod, rack int, tor int32, gw bool) int32 {
		idx := int32(len(t.Hosts))
		h := Host{Idx: idx, PIP: pips.Next(), Pod: pod, Rack: rack, ToR: tor, Gateway: gw}
		t.Hosts = append(t.Hosts, h)
		t.hostByPIP[h.PIP] = idx
		if gw {
			t.gateways = append(t.gateways, idx)
		}
		return idx
	}

	// ToRs and spines per pod; the gateway ToR is the last rack's ToR of a
	// gateway pod (matching Fig. 8's "spines 1-4, ToRs 5-7, gateway ToR 8").
	tors := make([][]int32, cfg.Pods)   // [pod][rack]
	spines := make([][]int32, cfg.Pods) // [pod][spine]
	for p := 0; p < cfg.Pods; p++ {
		tors[p] = make([]int32, cfg.RacksPerPod)
		for r := 0; r < cfg.RacksPerPod; r++ {
			role := RoleToR
			if gwPod(p) && r == cfg.RacksPerPod-1 {
				role = RoleGatewayToR
			}
			tors[p][r] = addSwitch(role, p, r)
		}
		spines[p] = make([]int32, cfg.SpinesPerPod)
		for s := 0; s < cfg.SpinesPerPod; s++ {
			role := RoleSpine
			if gwPod(p) {
				role = RoleGatewaySpine
			}
			spines[p][s] = addSwitch(role, p, -1)
		}
	}
	cores := make([]int32, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		cores[c] = addSwitch(RoleCore, -1, -1)
	}

	t.hostsAtToR = make([][]int32, len(t.Switches))
	t.adj = make([][]int32, len(t.Switches))

	addEdge := func(a, b NodeRef, class LinkClass) {
		t.Edges = append(t.Edges, Edge{A: a, B: b, Class: class})
		if a.Kind == KindSwitch && b.Kind == KindSwitch {
			t.adj[a.Idx] = append(t.adj[a.Idx], b.Idx)
			t.adj[b.Idx] = append(t.adj[b.Idx], a.Idx)
		}
	}

	// Hosts: servers in every rack; gateways on gateway ToRs.
	for p := 0; p < cfg.Pods; p++ {
		for r := 0; r < cfg.RacksPerPod; r++ {
			tor := tors[p][r]
			for s := 0; s < cfg.ServersPerRack; s++ {
				h := addHost(p, r, tor, false)
				t.hostsAtToR[tor] = append(t.hostsAtToR[tor], h)
				addEdge(HostRef(h), SwitchRef(tor), HostLink)
			}
		}
		if gwPod(p) {
			tor := tors[p][cfg.RacksPerPod-1]
			for g := 0; g < gwCount[p]; g++ {
				h := addHost(p, cfg.RacksPerPod-1, tor, true)
				t.hostsAtToR[tor] = append(t.hostsAtToR[tor], h)
				addEdge(HostRef(h), SwitchRef(tor), HostLink)
			}
		}
	}

	// Fabric: every ToR connects to every spine in its pod; core c connects
	// to spine (c mod SpinesPerPod) in every pod.
	for p := 0; p < cfg.Pods; p++ {
		for _, tor := range tors[p] {
			for _, sp := range spines[p] {
				addEdge(SwitchRef(tor), SwitchRef(sp), FabricLink)
			}
		}
		for c, core := range cores {
			sp := spines[p][c%cfg.SpinesPerPod]
			addEdge(SwitchRef(sp), SwitchRef(core), FabricLink)
		}
	}

	t.computeRoutes()
	return t, nil
}

// computeRoutes fills the ECMP next-hop table: next[src][dst] lists the
// neighbor switches of src that lie on a shortest path to switch dst.
func (t *Topology) computeRoutes() {
	n := len(t.Switches)
	t.next = make([][][]int32, n)
	for i := range t.next {
		t.next[i] = make([][]int32, n)
	}
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	for dst := 0; dst < n; dst++ {
		// BFS from dst over the switch graph.
		for i := range dist {
			dist[i] = -1
		}
		dist[dst] = 0
		queue = append(queue[:0], int32(dst))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range t.adj[u] {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
		for src := 0; src < n; src++ {
			if src == dst || dist[src] < 0 {
				continue
			}
			var hops []int32
			for _, v := range t.adj[src] {
				if dist[v] == dist[src]-1 {
					hops = append(hops, v)
				}
			}
			t.next[src][dst] = hops
		}
	}
}

// NextHops returns the ECMP next-hop candidates from switch src toward
// switch dst. The slice is empty when dst is unreachable or src == dst.
func (t *Topology) NextHops(src, dst int32) []int32 { return t.next[src][dst] }

// SwitchDistance returns the hop count between two switches, or -1 if
// disconnected.
func (t *Topology) SwitchDistance(a, b int32) int {
	if a == b {
		return 0
	}
	d := 0
	cur := a
	for cur != b {
		hops := t.next[cur][b]
		if len(hops) == 0 {
			return -1
		}
		cur = hops[0]
		d++
		if d > len(t.Switches) {
			return -1
		}
	}
	return d
}

// HostsAtToR returns the host indices attached to the given switch.
func (t *Topology) HostsAtToR(sw int32) []int32 { return t.hostsAtToR[sw] }

// SwitchByPIP resolves a physical address to a switch index.
func (t *Topology) SwitchByPIP(p netaddr.PIP) (int32, bool) {
	i, ok := t.switchByPIP[p]
	return i, ok
}

// HostByPIP resolves a physical address to a host index.
func (t *Topology) HostByPIP(p netaddr.PIP) (int32, bool) {
	i, ok := t.hostByPIP[p]
	return i, ok
}

// Gateways returns the host indices of all translation gateway instances.
func (t *Topology) Gateways() []int32 { return t.gateways }

// Servers returns the host indices of all non-gateway servers.
func (t *Topology) Servers() []int32 {
	var out []int32
	for _, h := range t.Hosts {
		if !h.Gateway {
			out = append(out, h.Idx)
		}
	}
	return out
}

// ToRs returns the switch indices of all (gateway and regular) ToRs.
func (t *Topology) ToRs() []int32 {
	var out []int32
	for _, s := range t.Switches {
		if s.Role.IsToR() {
			out = append(out, s.Idx)
		}
	}
	return out
}

// SwitchesInPod returns the switch indices belonging to the given pod,
// spines first then ToRs, matching the paper's Fig. 8 switch numbering.
func (t *Topology) SwitchesInPod(pod int) []int32 {
	var spines, tors []int32
	for _, s := range t.Switches {
		if s.Pod != pod {
			continue
		}
		if s.Role.IsSpine() {
			spines = append(spines, s.Idx)
		} else {
			tors = append(tors, s.Idx)
		}
	}
	return append(spines, tors...)
}

// String summarizes the topology (Table 3 style).
func (t *Topology) String() string {
	nTor, nSpine, nCore, nGw := 0, 0, 0, 0
	for _, s := range t.Switches {
		switch {
		case s.Role.IsToR():
			nTor++
		case s.Role.IsSpine():
			nSpine++
		default:
			nCore++
		}
	}
	nServers := 0
	for _, h := range t.Hosts {
		if h.Gateway {
			nGw++
		} else {
			nServers++
		}
	}
	return fmt.Sprintf("fat-tree: %d pods, %d ToRs, %d spines, %d cores, %d servers, %d gateways",
		t.Cfg.Pods, nTor, nSpine, nCore, nServers, nGw)
}
