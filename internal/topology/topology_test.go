package topology

import (
	"testing"
	"testing/quick"
)

func mustFT8(t testing.TB) *Topology {
	t.Helper()
	topo, err := New(FT8())
	if err != nil {
		t.Fatalf("New(FT8): %v", err)
	}
	return topo
}

func TestFT8Counts(t *testing.T) {
	topo := mustFT8(t)
	// Table 3: 8 pods, 32 ToRs, 16 cores, 40 gateways, 128 servers.
	nTor, nSpine, nCore := 0, 0, 0
	nGwTor, nGwSpine := 0, 0
	for _, s := range topo.Switches {
		switch s.Role {
		case RoleToR:
			nTor++
		case RoleGatewayToR:
			nTor++
			nGwTor++
		case RoleSpine:
			nSpine++
		case RoleGatewaySpine:
			nSpine++
			nGwSpine++
		case RoleCore:
			nCore++
		}
	}
	if nTor != 32 || nSpine != 32 || nCore != 16 {
		t.Fatalf("switch counts ToR=%d spine=%d core=%d, want 32/32/16", nTor, nSpine, nCore)
	}
	if len(topo.Switches) != 80 {
		t.Fatalf("total switches = %d, want 80 (the paper's '80-switch topology')", len(topo.Switches))
	}
	if nGwTor != 4 || nGwSpine != 16 {
		t.Fatalf("gateway switch counts gwToR=%d gwSpine=%d, want 4/16", nGwTor, nGwSpine)
	}
	if got := len(topo.Gateways()); got != 40 {
		t.Fatalf("gateways = %d, want 40", got)
	}
	if got := len(topo.Servers()); got != 128 {
		t.Fatalf("servers = %d, want 128", got)
	}
}

func TestFT16Counts(t *testing.T) {
	topo, err := New(FT16())
	if err != nil {
		t.Fatalf("New(FT16): %v", err)
	}
	nTor := len(topo.ToRs())
	if nTor != 400 {
		t.Fatalf("ToRs = %d, want 400", nTor)
	}
	if got := len(topo.Gateways()); got != 250 {
		t.Fatalf("gateways = %d, want 250", got)
	}
	if got := len(topo.Servers()); got != 12800 {
		t.Fatalf("servers = %d, want 12800", got)
	}
}

func TestUniquePIPs(t *testing.T) {
	topo := mustFT8(t)
	seen := make(map[uint32]bool)
	for _, s := range topo.Switches {
		if seen[uint32(s.PIP)] {
			t.Fatalf("duplicate PIP %v", s.PIP)
		}
		seen[uint32(s.PIP)] = true
	}
	for _, h := range topo.Hosts {
		if seen[uint32(h.PIP)] {
			t.Fatalf("duplicate PIP %v", h.PIP)
		}
		seen[uint32(h.PIP)] = true
	}
}

func TestPIPLookups(t *testing.T) {
	topo := mustFT8(t)
	for _, s := range topo.Switches {
		if i, ok := topo.SwitchByPIP(s.PIP); !ok || i != s.Idx {
			t.Fatalf("SwitchByPIP(%v) = %d,%v", s.PIP, i, ok)
		}
	}
	for _, h := range topo.Hosts {
		if i, ok := topo.HostByPIP(h.PIP); !ok || i != h.Idx {
			t.Fatalf("HostByPIP(%v) = %d,%v", h.PIP, i, ok)
		}
	}
	if _, ok := topo.HostByPIP(0); ok {
		t.Fatalf("HostByPIP(0) should miss")
	}
}

func TestGatewayPlacement(t *testing.T) {
	topo := mustFT8(t)
	for _, g := range topo.Gateways() {
		h := topo.Hosts[g]
		tor := topo.Switches[h.ToR]
		if tor.Role != RoleGatewayToR {
			t.Fatalf("gateway %d attached to %v, want gateway-tor", g, tor.Role)
		}
		if h.Rack != topo.Cfg.RacksPerPod-1 {
			t.Fatalf("gateway %d in rack %d, want last rack", g, h.Rack)
		}
	}
	// Gateway pods: every spine in a gateway pod is a gateway spine.
	gwPods := map[int]bool{0: true, 2: true, 5: true, 7: true}
	for _, s := range topo.Switches {
		if s.Role.IsSpine() {
			if gwPods[s.Pod] != (s.Role == RoleGatewaySpine) {
				t.Fatalf("spine %d pod %d role %v inconsistent with gateway pods", s.Idx, s.Pod, s.Role)
			}
		}
	}
}

func TestHostsAttachedToCorrectToR(t *testing.T) {
	topo := mustFT8(t)
	for _, h := range topo.Hosts {
		tor := topo.Switches[h.ToR]
		if !tor.Role.IsToR() {
			t.Fatalf("host %d attached to non-ToR %v", h.Idx, tor.Role)
		}
		if tor.Pod != h.Pod || tor.Rack != h.Rack {
			t.Fatalf("host %d pod/rack %d/%d but ToR pod/rack %d/%d", h.Idx, h.Pod, h.Rack, tor.Pod, tor.Rack)
		}
		found := false
		for _, hh := range topo.HostsAtToR(h.ToR) {
			if hh == h.Idx {
				found = true
			}
		}
		if !found {
			t.Fatalf("host %d missing from HostsAtToR(%d)", h.Idx, h.ToR)
		}
	}
}

func TestBaseRTTSixHops(t *testing.T) {
	topo := mustFT8(t)
	// Cross-pod server-to-server path: ToR->spine->core->spine->ToR = 4
	// switch-switch hops; with the 2 host links that's 6 links each way,
	// giving the paper's 12 µs base RTT at 1 µs per link.
	var torPod0, torPod1 int32 = -1, -1
	for _, s := range topo.Switches {
		if s.Role == RoleToR && s.Pod == 0 && torPod0 < 0 {
			torPod0 = s.Idx
		}
		if s.Role == RoleToR && s.Pod == 1 && torPod1 < 0 {
			torPod1 = s.Idx
		}
	}
	if d := topo.SwitchDistance(torPod0, torPod1); d != 4 {
		t.Fatalf("cross-pod ToR distance = %d, want 4", d)
	}
	// Same-pod ToRs are 2 apart (via a spine).
	var torPod0b int32 = -1
	for _, s := range topo.Switches {
		if s.Role == RoleToR && s.Pod == 0 && s.Idx != torPod0 {
			torPod0b = s.Idx
			break
		}
	}
	if d := topo.SwitchDistance(torPod0, torPod0b); d != 2 {
		t.Fatalf("same-pod ToR distance = %d, want 2", d)
	}
}

func TestNextHopsLeadToDestination(t *testing.T) {
	topo := mustFT8(t)
	// Property: from any switch, greedily following any next hop strictly
	// decreases the distance and terminates at the destination.
	f := func(a, b uint8) bool {
		src := int32(int(a) % len(topo.Switches))
		dst := int32(int(b) % len(topo.Switches))
		cur := src
		for steps := 0; cur != dst; steps++ {
			if steps > 10 {
				return false
			}
			hops := topo.NextHops(cur, dst)
			if len(hops) == 0 {
				return false
			}
			// All candidates must make progress.
			d := topo.SwitchDistance(cur, dst)
			for _, h := range hops {
				if topo.SwitchDistance(h, dst) != d-1 {
					return false
				}
			}
			cur = hops[0]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestECMPMultipath(t *testing.T) {
	topo := mustFT8(t)
	// A ToR should have SpinesPerPod equal-cost next hops toward a ToR in
	// another pod.
	var torPod0, torPod1 int32 = -1, -1
	for _, s := range topo.Switches {
		if s.Role == RoleToR && s.Pod == 0 && torPod0 < 0 {
			torPod0 = s.Idx
		}
		if s.Role == RoleToR && s.Pod == 1 && torPod1 < 0 {
			torPod1 = s.Idx
		}
	}
	if got := len(topo.NextHops(torPod0, torPod1)); got != topo.Cfg.SpinesPerPod {
		t.Fatalf("ECMP width at ToR = %d, want %d", got, topo.Cfg.SpinesPerPod)
	}
}

func TestScaledFT8(t *testing.T) {
	for _, pods := range []int{1, 2, 4, 8, 16, 32} {
		cfg, err := ScaledFT8(pods)
		if err != nil {
			t.Fatalf("ScaledFT8(%d): %v", pods, err)
		}
		topo, err := New(cfg)
		if err != nil {
			t.Fatalf("New(ScaledFT8(%d)): %v", pods, err)
		}
		if got := len(topo.Servers()); got != 128 {
			t.Fatalf("ScaledFT8(%d) servers = %d, want 128", pods, got)
		}
		if got := len(topo.Gateways()); got != 40 {
			t.Fatalf("ScaledFT8(%d) gateways = %d, want 40", pods, got)
		}
	}
	if _, err := ScaledFT8(3); err == nil {
		t.Fatalf("ScaledFT8(3) should fail (does not divide)")
	}
}

func TestValidate(t *testing.T) {
	bad := FT8()
	bad.Pods = 0
	if _, err := New(bad); err == nil {
		t.Fatalf("expected error for 0 pods")
	}
	bad = FT8()
	bad.GatewayPods = []int{99}
	if _, err := New(bad); err == nil {
		t.Fatalf("expected error for out-of-range gateway pod")
	}
	bad = FT8()
	bad.HostLinkBps = 0
	if _, err := New(bad); err == nil {
		t.Fatalf("expected error for zero link speed")
	}
}

func TestSwitchesInPodOrdering(t *testing.T) {
	topo := mustFT8(t)
	sws := topo.SwitchesInPod(7) // a gateway pod (paper's pod 8)
	if len(sws) != 8 {
		t.Fatalf("pod 7 has %d switches, want 8 (4 spines + 4 ToRs)", len(sws))
	}
	for i, idx := range sws {
		r := topo.Switches[idx].Role
		if i < 4 && !r.IsSpine() {
			t.Fatalf("position %d is %v, want spine first", i, r)
		}
		if i >= 4 && !r.IsToR() {
			t.Fatalf("position %d is %v, want ToR last", i, r)
		}
	}
	// Last switch is the gateway ToR, matching Fig. 8's switch 8.
	if topo.Switches[sws[7]].Role != RoleGatewayToR {
		t.Fatalf("last switch in gateway pod is %v, want gateway-tor", topo.Switches[sws[7]].Role)
	}
}

func TestRoleHelpers(t *testing.T) {
	if !RoleGatewayToR.IsToR() || !RoleToR.IsToR() || RoleSpine.IsToR() {
		t.Fatal("IsToR misclassifies")
	}
	if !RoleGatewaySpine.IsSpine() || !RoleSpine.IsSpine() || RoleCore.IsSpine() {
		t.Fatal("IsSpine misclassifies")
	}
	if RoleCore.Layer() != "core" || RoleGatewayToR.Layer() != "tor" || RoleGatewaySpine.Layer() != "spine" {
		t.Fatal("Layer misclassifies")
	}
}

func TestStringSummary(t *testing.T) {
	topo := mustFT8(t)
	want := "fat-tree: 8 pods, 32 ToRs, 32 spines, 16 cores, 128 servers, 40 gateways"
	if got := topo.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func BenchmarkNewFT8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := New(FT8()); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFT16PathProperties(t *testing.T) {
	topo, err := New(FT16())
	if err != nil {
		t.Fatal(err)
	}
	// Cross-pod ToR distance is 4 (ToR-spine-core-spine-ToR), same as FT8.
	var torA, torB int32 = -1, -1
	for _, s := range topo.Switches {
		if s.Role.IsToR() && s.Pod == 1 && torA < 0 {
			torA = s.Idx
		}
		if s.Role.IsToR() && s.Pod == 30 && torB < 0 {
			torB = s.Idx
		}
	}
	if d := topo.SwitchDistance(torA, torB); d != 4 {
		t.Fatalf("FT16 cross-pod ToR distance = %d, want 4", d)
	}
	// Every ToR has SpinesPerPod uplinks.
	if got := len(topo.NextHops(torA, torB)); got != topo.Cfg.SpinesPerPod {
		t.Fatalf("FT16 ECMP width = %d, want %d", got, topo.Cfg.SpinesPerPod)
	}
}

func TestGatewayCountsOverride(t *testing.T) {
	cfg := FT8()
	cfg.GatewayPods = []int{0, 1}
	cfg.GatewayCounts = []int{3, 5}
	topo, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(topo.Gateways()); got != 8 {
		t.Fatalf("gateways = %d, want 8", got)
	}
	perPod := map[int]int{}
	for _, g := range topo.Gateways() {
		perPod[topo.Hosts[g].Pod]++
	}
	if perPod[0] != 3 || perPod[1] != 5 {
		t.Fatalf("per-pod gateway counts = %v, want 3/5", perPod)
	}
}
