package transport

import (
	"testing"

	"switchv2p/internal/faults"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
)

// TestRTOGiveUpUnderSustainedLoss drives the retransmission state
// machine into its give-up branch: a 100%-loss window on the sender's
// access link that never closes means every transmission and every RTO
// retransmission dies, so the sender must back off, exhaust MaxRetries,
// and surrender the flow as TimedOut — it must not retry forever and
// keep the simulation alive.
func TestRTOGiveUpUnderSustainedLoss(t *testing.T) {
	w := newWorld(t, noCache)
	src, dst := w.vips[0], w.vips[9]
	host, ok := w.net.HostOf(src)
	if !ok {
		t.Fatal("src VIP not placed")
	}
	up := []faults.Event{{
		At:   0,
		Kind: faults.LossStart,
		A:    topology.HostRef(host), B: topology.SwitchRef(w.topo.Hosts[host].ToR),
		LossRate: 1,
	}}
	inj, err := faults.New(&faults.Config{Schedule: up}, w.topo)
	if err != nil {
		t.Fatal(err)
	}
	inj.Attach(w.e, &faults.Config{Schedule: up}, nil)

	rec := w.agent.AddFlow(FlowSpec{ID: 1, Src: src, Dst: dst, Proto: TCP, Bytes: 500})
	w.e.Run(simtime.Never)

	if err := inj.Err(); err != nil {
		t.Fatal(err)
	}
	if !rec.TimedOut {
		t.Fatalf("flow did not time out under sustained 100%% loss: %+v", rec)
	}
	if rec.Completed {
		t.Fatalf("flow marked completed and timed out: %+v", rec)
	}
	maxRetries := int64(DefaultConfig().MaxRetries)
	if rec.Retransmits < maxRetries {
		t.Fatalf("gave up after %d retransmits, want at least MaxRetries=%d", rec.Retransmits, maxRetries)
	}
	c := &w.e.C
	if c.LossDrops == 0 {
		t.Fatal("loss window dropped nothing")
	}
	if c.Delivered+c.Drops < c.HostSent {
		t.Fatalf("conservation violated: delivered %d + drops %d < sent %d",
			c.Delivered, c.Drops, c.HostSent)
	}
}

// TestFlowRecoversAfterLinkUp is the matching positive case: the
// sender's access link goes down at t=0 and comes back at 1ms — well
// inside the retry budget — so the RTO machinery must carry the flow
// across the outage and complete it once the link heals.
func TestFlowRecoversAfterLinkUp(t *testing.T) {
	w := newWorld(t, noCache)
	src, dst := w.vips[0], w.vips[9]
	host, ok := w.net.HostOf(src)
	if !ok {
		t.Fatal("src VIP not placed")
	}
	a, b := topology.HostRef(host), topology.SwitchRef(w.topo.Hosts[host].ToR)
	cfg := &faults.Config{Schedule: []faults.Event{
		{At: 0, Kind: faults.LinkDown, A: a, B: b},
		{At: simtime.Time(0).Add(simtime.Millisecond), Kind: faults.LinkUp, A: a, B: b},
	}}
	inj, err := faults.New(cfg, w.topo)
	if err != nil {
		t.Fatal(err)
	}
	inj.Attach(w.e, cfg, nil)

	rec := w.agent.AddFlow(FlowSpec{ID: 1, Src: src, Dst: dst, Proto: TCP, Bytes: 500})
	w.e.Run(simtime.Never)

	if err := inj.Err(); err != nil {
		t.Fatal(err)
	}
	if !rec.Completed || rec.TimedOut {
		t.Fatalf("flow did not recover after LinkUp: %+v", rec)
	}
	if rec.Retransmits == 0 {
		t.Fatal("flow completed without retransmits; the outage did nothing")
	}
	if rec.FCT < simtime.Millisecond {
		t.Fatalf("FCT %v shorter than the outage", rec.FCT)
	}
	if w.e.C.FaultDrops == 0 {
		t.Fatal("downed link dropped nothing")
	}
}
