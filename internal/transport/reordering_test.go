package transport

import (
	"testing"

	"switchv2p/internal/baselines"
	"switchv2p/internal/core"
	"switchv2p/internal/packet"
	"switchv2p/internal/simnet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
	"switchv2p/internal/vnet"
)

// §4 "Packet reordering and TCP": when a stream initially misses the
// cache and the cache is populated mid-stream, later packets take the
// short (cache-hit) path and overtake earlier packets still queued
// behind the 40 µs gateway. The paper argues modern TCP's reordering
// tolerance absorbs this. These tests verify both halves: in-network
// cache population really does reorder packets, and a tolerant
// transport absorbs it while an aggressive one retransmits spuriously.

// reorderDetector counts out-of-order data arrivals per flow.
type reorderDetector struct {
	lastSeq map[uint64]int
	events  int
}

func newReorderDetector() *reorderDetector {
	return &reorderDetector{lastSeq: make(map[uint64]int)}
}

func (d *reorderDetector) observe(p *packet.Packet) {
	if p.Kind != packet.Data || p.Retx {
		return
	}
	if last, ok := d.lastSeq[p.FlowID]; ok && p.Seq < last {
		d.events++
	}
	if p.Seq > d.lastSeq[p.FlowID] {
		d.lastSeq[p.FlowID] = p.Seq
	}
}

// TestCachePopulationReordersMidStream: a UDP constant-rate stream (no
// ACK clocking) straddles the instant the gateway ToR learns the
// mapping: packets sent before it arrive ~40 µs later than packets sent
// after, which overtake them.
func TestCachePopulationReordersMidStream(t *testing.T) {
	topo, err := topology.New(topology.FT8())
	if err != nil {
		t.Fatal(err)
	}
	n := vnet.New(topo)
	vips := n.PlaceRoundRobin(256)
	scheme := core.New(topo, core.DefaultOptions(1024))
	e := simnet.New(topo, n, scheme, simnet.DefaultConfig())
	a := New(e, DefaultConfig())

	det := newReorderDetector()
	prev := e.Handler
	e.Handler = func(host int32, p *packet.Packet) {
		det.observe(p)
		prev(host, p)
	}
	rec := a.AddFlow(FlowSpec{
		ID: 1, Src: vips[0], Dst: vips[9], Proto: UDP,
		Packets: 200, PacketPayload: 500, Interval: simtime.Microsecond,
	})
	e.Run(simtime.Never)
	if rec.PacketsGot != 200 {
		t.Fatalf("got %d packets", rec.PacketsGot)
	}
	if det.events == 0 {
		t.Fatal("cache population produced no reordering — expected overtaking")
	}
	if scheme.S.Hits == 0 {
		t.Fatal("no cache hits: the scenario did not exercise population")
	}
}

// blackhole consumes every packet at the first switch, giving tests
// full manual control over the ACK stream a sender sees.
type blackhole struct{}

func (blackhole) Name() string { return "blackhole" }
func (blackhole) SenderResolve(e *simnet.Engine, host int32, p *packet.Packet) bool {
	p.Resolved = true
	p.DstPIP = e.Topo.Hosts[host].PIP // irrelevant: consumed at first hop
	return true
}
func (blackhole) SwitchArrive(e *simnet.Engine, sw int32, from topology.NodeRef, p *packet.Packet) bool {
	return false
}
func (blackhole) HostMisdeliver(e *simnet.Engine, host int32, p *packet.Packet) {}

// reorderedAckStream replays the cumulative-ACK stream a receiver would
// emit when segments {2,3} of a 10-segment window are overtaken by
// segments 4..9: ACKs 1,2 then six duplicate ACKs of 2, then full
// catch-up.
func reorderedAckStream(s *tcpSender) {
	s.onAck(s.host, 1)
	s.onAck(s.host, 2)
	for i := 0; i < 6; i++ {
		s.onAck(s.host, 2) // duplicate ACKs caused by reordering, not loss
	}
	s.onAck(s.host, 10)
}

func TestDupThreshControlsSpuriousRetransmits(t *testing.T) {
	build := func(dupThresh int) *tcpSender {
		topo, err := topology.New(topology.FT8())
		if err != nil {
			t.Fatal(err)
		}
		n := vnet.New(topo)
		vips := n.PlaceRoundRobin(256)
		e := simnet.New(topo, n, blackhole{}, simnet.DefaultConfig())
		cfg := DefaultConfig()
		cfg.DupThresh = dupThresh
		a := New(e, cfg)
		a.AddFlow(FlowSpec{ID: 1, Src: vips[0], Dst: vips[9], Proto: TCP, Bytes: 14000})
		e.Q.Step() // run the flow-start event: the initial window is sent
		return a.senders[1]
	}

	// Aggressive legacy threshold: the six reorder-induced dupACKs
	// trigger a spurious fast retransmit.
	aggressive := build(3)
	reorderedAckStream(aggressive)
	if aggressive.rec.Retransmits == 0 {
		t.Fatal("dupThresh=3 did not fast-retransmit on 6 dupACKs")
	}

	// RACK-style tolerance: the same ACK stream causes no retransmit.
	tolerant := build(100)
	reorderedAckStream(tolerant)
	if tolerant.rec.Retransmits != 0 {
		t.Fatalf("dupThresh=100 retransmitted %d times on mere reordering",
			tolerant.rec.Retransmits)
	}
	if tolerant.una != 10 {
		t.Fatalf("sender did not absorb the catch-up ACK: una=%d", tolerant.una)
	}
}

func TestNoReorderingUnderNoCache(t *testing.T) {
	// Control: with a single fixed path per flow (always via the same
	// gateway), same-flow packets stay in order.
	topo, err := topology.New(topology.FT8())
	if err != nil {
		t.Fatal(err)
	}
	n := vnet.New(topo)
	vips := n.PlaceRoundRobin(256)
	e := simnet.New(topo, n, baselines.NewNoCache(), simnet.DefaultConfig())
	a := New(e, DefaultConfig())
	det := newReorderDetector()
	prev := e.Handler
	e.Handler = func(host int32, p *packet.Packet) {
		det.observe(p)
		prev(host, p)
	}
	rec := a.AddFlow(FlowSpec{ID: 1, Src: vips[0], Dst: vips[9], Proto: TCP, Bytes: 500_000})
	e.Run(simtime.Never)
	if !rec.Completed {
		t.Fatal("flow incomplete")
	}
	if det.events != 0 {
		t.Fatalf("NoCache produced %d reorder events on a single path", det.events)
	}
}
