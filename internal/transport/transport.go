// Package transport implements the host transport layer the evaluation
// traffic runs over: a simplified TCP (slow start, AIMD congestion
// avoidance, duplicate-ACK fast retransmit with a large reordering
// tolerance in the spirit of RACK-TLP, and an RTO fallback) for flow
// completion time measurements, and UDP constant-rate/burst senders for
// the Microbursts, Video and incast workloads.
//
// The Agent registers itself as the engine's delivery handler and owns
// every flow endpoint in the simulation.
package transport

import (
	"fmt"
	"math"

	"switchv2p/internal/netaddr"
	"switchv2p/internal/packet"
	"switchv2p/internal/simnet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/telemetry"
)

// Proto selects the transport protocol of a flow.
type Proto uint8

// Protocols.
const (
	TCP Proto = iota
	UDP
)

// String returns the protocol name.
func (p Proto) String() string {
	if p == TCP {
		return "tcp"
	}
	return "udp"
}

// FlowSpec describes one flow to simulate.
type FlowSpec struct {
	ID    uint64
	Src   netaddr.VIP
	Dst   netaddr.VIP
	Proto Proto
	Start simtime.Time

	// TCP: Bytes is the flow size; it is split into MSS-sized segments.
	Bytes int

	// UDP: Packets payloads of PacketPayload bytes, sent every Interval.
	Packets       int
	PacketPayload int
	Interval      simtime.Duration
}

// FlowRecord is the measured outcome of a flow.
type FlowRecord struct {
	Spec FlowSpec

	// FirstPacketLatency is the latency of the flow's first data packet:
	// delivery time minus flow start.
	FirstPacketLatency simtime.Duration
	// FCT is the flow completion time: last byte delivered at the
	// receiver minus flow start. TCP only.
	FCT simtime.Duration

	Completed      bool
	FirstDelivered bool
	PacketsSent    int64
	PacketsGot     int64
	Retransmits    int64
	TimedOut       bool // gave up after MaxRetries RTOs
}

// Config tunes the transport.
type Config struct {
	MSS         int              // max segment payload bytes
	InitCwnd    float64          // initial congestion window, segments
	DupThresh   int              // dup-ACKs before fast retransmit (reordering tolerance)
	MinRTO      simtime.Duration // lower bound on the retransmission timer
	MaxRTO      simtime.Duration // ceiling on the (backed-off) retransmission timer
	MaxRetries  int              // consecutive RTOs before giving up
	ReceiverWin float64          // cap on cwnd, segments
}

// DefaultConfig returns a configuration suited to the simulated fabric:
// a large reordering tolerance (the paper notes Linux tolerates up to
// 300 reordered packets; SwitchV2P relies on this).
func DefaultConfig() Config {
	return Config{
		MSS:         packet.MaxPayload,
		InitCwnd:    10,
		DupThresh:   100,
		MinRTO:      200 * simtime.Microsecond,
		MaxRTO:      5 * simtime.Millisecond,
		MaxRetries:  12,
		ReceiverWin: 256,
	}
}

// Agent owns all flow endpoints of a simulation run.
type Agent struct {
	e   *simnet.Engine
	cfg Config

	senders   map[uint64]*tcpSender
	receivers map[uint64]*tcpReceiver
	udp       map[uint64]*FlowRecord
	Records   []*FlowRecord

	// Telemetry handles, attached by the harness when telemetry is
	// enabled. Nil handles are no-ops (see internal/telemetry), so the
	// hot paths below increment unconditionally at zero cost when
	// telemetry is off.
	RetxCounter *telemetry.Counter // retransmitted segments
	RTOCounter  *telemetry.Counter // retransmission-timer expirations
}

// New creates an agent and installs it as the engine's delivery handler.
func New(e *simnet.Engine, cfg Config) *Agent {
	a := &Agent{
		e:         e,
		cfg:       cfg,
		senders:   make(map[uint64]*tcpSender),
		receivers: make(map[uint64]*tcpReceiver),
		udp:       make(map[uint64]*FlowRecord),
	}
	e.Handler = a.deliver
	return a
}

// AddFlow registers a flow and schedules its start.
func (a *Agent) AddFlow(spec FlowSpec) *FlowRecord {
	rec := &FlowRecord{Spec: spec}
	a.Records = append(a.Records, rec)
	switch spec.Proto {
	case TCP:
		s := &tcpSender{a: a, rec: rec, host: -1}
		a.senders[spec.ID] = s
		a.receivers[spec.ID] = &tcpReceiver{a: a, rec: rec}
		if host, ok := a.hostOf(spec.Src); ok {
			// Schedule on the queue that owns the source host (the root
			// queue on a serial engine, the host's domain queue when
			// sharded).
			s.host = host
			a.e.HostAt(host, spec.Start, s.start)
		} else {
			// Source VM not placed yet (churn scenarios place VMs
			// mid-run): root-queue fallback, serial engine only.
			a.e.Q.At(spec.Start, s.start)
		}
	case UDP:
		a.udp[spec.ID] = rec
		if host, ok := a.hostOf(spec.Src); ok {
			a.e.HostAt(host, spec.Start, func() { a.udpSend(rec, 0) })
		} else {
			a.e.Q.At(spec.Start, func() { a.udpSend(rec, 0) })
		}
	default:
		panic(fmt.Sprintf("transport: unknown proto %d", spec.Proto))
	}
	return rec
}

// hostOf returns the current host of a VM; the bool is false if unknown.
func (a *Agent) hostOf(vip netaddr.VIP) (int32, bool) {
	return a.e.Net.HostOf(vip)
}

// deliver is the engine's Handler: dispatch to the flow endpoint.
func (a *Agent) deliver(host int32, p *packet.Packet) {
	switch p.Kind {
	case packet.Data:
		if r := a.receivers[p.FlowID]; r != nil {
			r.onData(host, p)
			return
		}
		if rec := a.udp[p.FlowID]; rec != nil {
			rec.PacketsGot++
			if !rec.FirstDelivered {
				rec.FirstDelivered = true
				rec.FirstPacketLatency = a.e.HostNow(host).Sub(rec.Spec.Start)
			}
			if rec.PacketsGot == int64(rec.Spec.Packets) {
				rec.Completed = true
				rec.FCT = a.e.HostNow(host).Sub(rec.Spec.Start)
			}
		}
	case packet.Ack:
		if s := a.senders[p.FlowID]; s != nil {
			s.onAck(host, p.AckNo)
		}
	}
}

// udpSend emits UDP packet i of a flow and schedules the next.
func (a *Agent) udpSend(rec *FlowRecord, i int) {
	if i >= rec.Spec.Packets {
		return
	}
	host, ok := a.hostOf(rec.Spec.Src)
	if !ok {
		return
	}
	p := packet.NewData(rec.Spec.ID, i, rec.Spec.PacketPayload, rec.Spec.Src, rec.Spec.Dst, 0)
	p.FirstSent = i == 0
	if i == rec.Spec.Packets-1 {
		p.Fin = true
	}
	rec.PacketsSent++
	a.e.HostSend(host, p)
	if i+1 < rec.Spec.Packets {
		a.e.HostAfter(host, rec.Spec.Interval, func() { a.udpSend(rec, i+1) })
	}
}

// --- TCP sender ---

type tcpSender struct {
	a   *Agent
	rec *FlowRecord

	// host is the flow's source host, resolved at AddFlow (-1 when the
	// VM was not yet placed — churn scenarios, serial engine only). The
	// sender's timers live on this host's queue so that, sharded, they
	// stay inside the host's domain.
	host int32

	segs     int // total segments
	lastSize int // payload of the final segment

	una      int     // lowest unacknowledged seq
	nextSeq  int     // next never-sent seq
	cwnd     float64 // congestion window, segments
	ssthresh float64
	dupAcks  int

	srtt   float64 // smoothed RTT, ns
	rttvar float64
	sent   []simtime.Time // send time per segment (for RTT samples)
	retxed []bool         // segments ever retransmitted (Karn's rule)

	// Single lazily re-armed retransmission timer: deadline moves on
	// every ACK, but only one event is ever pending. The pending event
	// re-schedules itself if it fires before the current deadline.
	deadline    simtime.Time
	timerActive bool
	retries     int
	done        bool
}

func (s *tcpSender) start() {
	if s.host < 0 {
		if host, ok := s.a.hostOf(s.rec.Spec.Src); ok {
			s.host = host
		}
	}
	spec := s.rec.Spec
	mss := s.a.cfg.MSS
	s.segs = (spec.Bytes + mss - 1) / mss
	if s.segs == 0 {
		s.segs = 1
	}
	s.lastSize = spec.Bytes - (s.segs-1)*mss
	if s.lastSize <= 0 {
		s.lastSize = 1
	}
	s.cwnd = s.a.cfg.InitCwnd
	s.ssthresh = math.Inf(1)
	s.sent = make([]simtime.Time, s.segs)
	s.retxed = make([]bool, s.segs)
	s.sendAvailable()
	s.armRTO()
}

func (s *tcpSender) payloadOf(seq int) int {
	if seq == s.segs-1 {
		return s.lastSize
	}
	return s.a.cfg.MSS
}

// sendAvailable transmits new segments while the window allows.
func (s *tcpSender) sendAvailable() {
	for !s.done && s.nextSeq < s.segs && float64(s.nextSeq-s.una) < math.Min(s.cwnd, s.a.cfg.ReceiverWin) {
		s.transmit(s.nextSeq, false)
		s.nextSeq++
	}
}

func (s *tcpSender) transmit(seq int, retx bool) {
	host, ok := s.a.hostOf(s.rec.Spec.Src)
	if !ok {
		return
	}
	spec := s.rec.Spec
	p := packet.NewData(spec.ID, seq, s.payloadOf(seq), spec.Src, spec.Dst, 0)
	p.FirstSent = seq == 0 && !retx
	p.Fin = seq == s.segs-1
	p.Retx = retx
	s.sent[seq] = s.a.e.HostNow(host)
	s.rec.PacketsSent++
	if retx {
		s.retxed[seq] = true
		s.rec.Retransmits++
		s.a.RetxCounter.Inc()
	}
	s.a.e.HostSend(host, p)
}

func (s *tcpSender) onAck(host int32, ackNo int) {
	if s.done {
		return
	}
	if ackNo > s.una {
		// New data acknowledged.
		acked := ackNo - s.una
		// Karn's rule: never sample RTT from a retransmitted segment —
		// the measurement is ambiguous and, fed into the backoff, can
		// run away under persistent congestion.
		if t := s.sent[ackNo-1]; t > 0 && !s.retxed[ackNo-1] {
			s.rttSample(float64(s.a.e.HostNow(host).Sub(t)))
		}
		s.una = ackNo
		s.dupAcks = 0
		s.retries = 0
		for i := 0; i < acked; i++ {
			if s.cwnd < s.ssthresh {
				s.cwnd++ // slow start
			} else {
				s.cwnd += 1 / s.cwnd // congestion avoidance
			}
		}
		if s.una >= s.segs {
			s.done = true
			return
		}
		s.armRTO()
		s.sendAvailable()
		return
	}
	// Duplicate ACK.
	s.dupAcks++
	if s.dupAcks == s.a.cfg.DupThresh {
		s.dupAcks = 0
		s.ssthresh = math.Max(s.cwnd/2, 2)
		s.cwnd = s.ssthresh
		s.transmit(s.una, true)
		s.armRTO()
	}
}

func (s *tcpSender) rttSample(rtt float64) {
	if s.srtt == 0 {
		s.srtt = rtt
		s.rttvar = rtt / 2
		return
	}
	diff := math.Abs(s.srtt - rtt)
	s.rttvar = 0.75*s.rttvar + 0.25*diff
	s.srtt = 0.875*s.srtt + 0.125*rtt
}

func (s *tcpSender) rto() simtime.Duration {
	rto := simtime.Duration(s.srtt + 4*s.rttvar)
	if rto < s.a.cfg.MinRTO {
		rto = s.a.cfg.MinRTO
	}
	rto *= simtime.Duration(1 << min(s.retries, 6)) // exponential backoff
	if max := s.a.cfg.MaxRTO; max > 0 && rto > max {
		rto = max
	}
	return rto
}

func (s *tcpSender) armRTO() {
	s.deadline = s.a.e.HostNow(s.host).Add(s.rto())
	if s.timerActive {
		return // the pending event will chase the new deadline
	}
	s.timerActive = true
	s.a.e.HostAt(s.host, s.deadline, s.onTimer)
}

// onTimer fires the single retransmission timer: if the deadline moved
// (an ACK arrived since), chase it with one re-scheduled event instead
// of one event per ACK.
func (s *tcpSender) onTimer() {
	if s.done {
		s.timerActive = false
		return
	}
	if now := s.a.e.HostNow(s.host); now < s.deadline {
		s.a.e.HostAt(s.host, s.deadline, s.onTimer)
		return
	}
	s.timerActive = false
	s.onRTO()
}

func (s *tcpSender) onRTO() {
	if s.done {
		return
	}
	s.a.RTOCounter.Inc()
	s.retries++
	if s.retries > s.a.cfg.MaxRetries {
		s.done = true
		s.rec.TimedOut = true
		return
	}
	s.ssthresh = math.Max(s.cwnd/2, 2)
	s.cwnd = s.a.cfg.InitCwnd
	s.dupAcks = 0
	s.transmit(s.una, true)
	s.armRTO()
}

// --- TCP receiver ---

type tcpReceiver struct {
	a   *Agent
	rec *FlowRecord

	got       []bool
	cum       int // next expected seq
	remaining int
	inited    bool
}

func (r *tcpReceiver) init() {
	mss := r.a.cfg.MSS
	segs := (r.rec.Spec.Bytes + mss - 1) / mss
	if segs == 0 {
		segs = 1
	}
	r.got = make([]bool, segs)
	r.remaining = segs
	r.inited = true
}

func (r *tcpReceiver) onData(host int32, p *packet.Packet) {
	if !r.inited {
		r.init()
	}
	if !r.rec.FirstDelivered {
		r.rec.FirstDelivered = true
		r.rec.FirstPacketLatency = r.a.e.HostNow(host).Sub(r.rec.Spec.Start)
	}
	r.rec.PacketsGot++
	if p.Seq < len(r.got) && !r.got[p.Seq] {
		r.got[p.Seq] = true
		r.remaining--
		for r.cum < len(r.got) && r.got[r.cum] {
			r.cum++
		}
		if r.remaining == 0 && !r.rec.Completed {
			r.rec.Completed = true
			r.rec.FCT = r.a.e.HostNow(host).Sub(r.rec.Spec.Start)
		}
	}
	// Acknowledge (cumulative) — the ACK resolves like any packet.
	host, ok := r.a.hostOf(r.rec.Spec.Dst)
	if !ok {
		return
	}
	ack := packet.NewAck(p.FlowID, r.cum, r.rec.Spec.Dst, r.rec.Spec.Src, 0)
	r.a.e.HostSend(host, ack)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
