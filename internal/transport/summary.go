package transport

import (
	"fmt"

	"switchv2p/internal/simtime"
	"switchv2p/internal/stats"
)

// Summary aggregates flow records into the metrics the paper reports.
type Summary struct {
	Flows     int
	Completed int
	TimedOut  int

	AvgFCT simtime.Duration // mean over completed TCP flows
	P50FCT simtime.Duration
	P90FCT simtime.Duration
	P99FCT simtime.Duration
	MaxFCT simtime.Duration

	AvgFirstPacket simtime.Duration // mean over flows whose first packet arrived
	P50FirstPacket simtime.Duration
	P99FirstPacket simtime.Duration

	PacketsSent int64
	PacketsGot  int64
	Retransmits int64
}

// Summarize computes aggregate metrics over the agent's flow records.
func (a *Agent) Summarize() Summary {
	return Summarize(a.Records)
}

// Summarize computes aggregate metrics over a set of flow records.
func Summarize(records []*FlowRecord) Summary {
	var s Summary
	var fcts, firsts stats.Sample
	for _, r := range records {
		s.Flows++
		s.PacketsSent += r.PacketsSent
		s.PacketsGot += r.PacketsGot
		s.Retransmits += r.Retransmits
		if r.TimedOut {
			s.TimedOut++
		}
		if r.Completed {
			s.Completed++
			// TCP: last byte delivered. UDP: last datagram delivered
			// (burst completion) — meaningful for the Microbursts trace.
			fcts.Add(float64(r.FCT))
		}
		if r.FirstDelivered {
			firsts.Add(float64(r.FirstPacketLatency))
		}
	}
	s.AvgFCT = simtime.Duration(fcts.Mean())
	s.P50FCT = simtime.Duration(fcts.Quantile(0.50))
	s.P90FCT = simtime.Duration(fcts.Quantile(0.90))
	s.P99FCT = simtime.Duration(fcts.Quantile(0.99))
	s.MaxFCT = simtime.Duration(fcts.Max())
	s.AvgFirstPacket = simtime.Duration(firsts.Mean())
	s.P50FirstPacket = simtime.Duration(firsts.Quantile(0.50))
	s.P99FirstPacket = simtime.Duration(firsts.Quantile(0.99))
	return s
}

// String renders the headline numbers.
func (s Summary) String() string {
	return fmt.Sprintf("flows=%d completed=%d avgFCT=%v avgFirst=%v retx=%d",
		s.Flows, s.Completed, s.AvgFCT, s.AvgFirstPacket, s.Retransmits)
}
