package transport

import (
	"testing"

	"switchv2p/internal/baselines"
	"switchv2p/internal/core"
	"switchv2p/internal/netaddr"
	"switchv2p/internal/simnet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
	"switchv2p/internal/vnet"
)

type world struct {
	topo  *topology.Topology
	net   *vnet.Net
	e     *simnet.Engine
	agent *Agent
	vips  []netaddr.VIP
}

func newWorld(t testing.TB, scheme func(topo *topology.Topology) simnet.Scheme) *world {
	t.Helper()
	topo, err := topology.New(topology.FT8())
	if err != nil {
		t.Fatal(err)
	}
	n := vnet.New(topo)
	vips := n.PlaceRoundRobin(256)
	e := simnet.New(topo, n, scheme(topo), simnet.DefaultConfig())
	a := New(e, DefaultConfig())
	return &world{topo: topo, net: n, e: e, agent: a, vips: vips}
}

func noCache(*topology.Topology) simnet.Scheme { return baselines.NewNoCache() }
func direct(*topology.Topology) simnet.Scheme  { return baselines.NewDirect() }
func switchV2P(topo *topology.Topology) simnet.Scheme {
	return core.New(topo, core.DefaultOptions(1024))
}

func TestTCPSingleSegmentFlow(t *testing.T) {
	w := newWorld(t, noCache)
	rec := w.agent.AddFlow(FlowSpec{ID: 1, Src: w.vips[0], Dst: w.vips[9], Proto: TCP, Bytes: 500})
	w.e.Run(simtime.Never)
	if !rec.Completed {
		t.Fatalf("flow not completed: %+v", rec)
	}
	if rec.PacketsSent != 1 || rec.PacketsGot != 1 {
		t.Fatalf("packets sent/got = %d/%d, want 1/1", rec.PacketsSent, rec.PacketsGot)
	}
	if rec.FCT != rec.FirstPacketLatency {
		t.Fatalf("single-segment FCT %v != first packet latency %v", rec.FCT, rec.FirstPacketLatency)
	}
	if rec.FCT < 40*simtime.Microsecond {
		t.Fatalf("FCT %v below gateway latency", rec.FCT)
	}
	if rec.Retransmits != 0 || rec.TimedOut {
		t.Fatalf("unexpected retransmits: %+v", rec)
	}
}

func TestTCPMultiSegmentFlow(t *testing.T) {
	w := newWorld(t, noCache)
	const bytes = 100_000
	rec := w.agent.AddFlow(FlowSpec{ID: 1, Src: w.vips[0], Dst: w.vips[9], Proto: TCP, Bytes: bytes})
	w.e.Run(simtime.Never)
	if !rec.Completed {
		t.Fatalf("flow not completed: %+v", rec)
	}
	wantSegs := int64((bytes + DefaultConfig().MSS - 1) / DefaultConfig().MSS)
	if rec.PacketsSent != wantSegs {
		t.Fatalf("sent %d segments, want %d (no loss expected)", rec.PacketsSent, wantSegs)
	}
	if rec.FCT <= rec.FirstPacketLatency {
		t.Fatalf("FCT %v must exceed first-packet latency %v", rec.FCT, rec.FirstPacketLatency)
	}
}

func TestTCPManyConcurrentFlows(t *testing.T) {
	w := newWorld(t, noCache)
	for i := 0; i < 50; i++ {
		w.agent.AddFlow(FlowSpec{
			ID:    uint64(i + 1),
			Src:   w.vips[i],
			Dst:   w.vips[100+i],
			Proto: TCP,
			Bytes: 20_000,
			Start: simtime.Time(i * 1000),
		})
	}
	w.e.Run(simtime.Never)
	s := w.agent.Summarize()
	if s.Completed != 50 {
		t.Fatalf("completed %d/50: %v", s.Completed, s)
	}
	if s.TimedOut != 0 {
		t.Fatalf("timeouts: %v", s)
	}
}

func TestTCPRecoversFromDrops(t *testing.T) {
	// Tiny switch buffers force drops; TCP must still complete all flows.
	topo, err := topology.New(func() topology.Config {
		c := topology.FT8()
		c.BufferBytes = 20_000
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	n := vnet.New(topo)
	vips := n.PlaceRoundRobin(256)
	e := simnet.New(topo, n, baselines.NewNoCache(), simnet.DefaultConfig())
	a := New(e, DefaultConfig())
	// Incast onto one receiver to force queue overflow.
	for i := 0; i < 8; i++ {
		a.AddFlow(FlowSpec{ID: uint64(i + 1), Src: vips[i], Dst: vips[200], Proto: TCP, Bytes: 200_000})
	}
	e.Run(simtime.Never)
	s := a.Summarize()
	if e.C.Drops == 0 {
		t.Skip("no drops produced; buffer not small enough")
	}
	if s.Completed != 8 {
		t.Fatalf("completed %d/8 with drops=%d: %v", s.Completed, e.C.Drops, s)
	}
	if s.Retransmits == 0 {
		t.Fatal("drops occurred but no retransmissions recorded")
	}
}

func TestUDPFlow(t *testing.T) {
	w := newWorld(t, noCache)
	rec := w.agent.AddFlow(FlowSpec{
		ID: 1, Src: w.vips[0], Dst: w.vips[9], Proto: UDP,
		Packets: 100, PacketPayload: 500, Interval: simtime.Microsecond,
	})
	w.e.Run(simtime.Never)
	if rec.PacketsSent != 100 || rec.PacketsGot != 100 {
		t.Fatalf("sent/got = %d/%d", rec.PacketsSent, rec.PacketsGot)
	}
	if !rec.Completed || !rec.FirstDelivered {
		t.Fatalf("record flags: %+v", rec)
	}
	// UDP sends with fixed spacing: completion takes at least 99 µs.
	if rec.FCT < 99*simtime.Microsecond {
		t.Fatalf("FCT = %v, want >= 99µs", rec.FCT)
	}
}

func TestFirstPacketLatencyImprovesWithSwitchV2P(t *testing.T) {
	// Two consecutive flows between the same pair: under SwitchV2P the
	// second flow's first packet avoids the gateway; under NoCache not.
	run := func(scheme func(topo *topology.Topology) simnet.Scheme) (first, second simtime.Duration) {
		w := newWorld(t, scheme)
		r1 := w.agent.AddFlow(FlowSpec{ID: 1, Src: w.vips[0], Dst: w.vips[9], Proto: TCP, Bytes: 5000})
		w.e.Run(simtime.Never)
		r2 := w.agent.AddFlow(FlowSpec{ID: 2, Src: w.vips[0], Dst: w.vips[9], Proto: TCP, Bytes: 5000,
			Start: w.e.Now().Add(simtime.Microsecond)})
		w.e.Run(simtime.Never)
		if !r1.Completed || !r2.Completed {
			t.Fatalf("flows incomplete under %T", scheme)
		}
		return r1.FirstPacketLatency, r2.FirstPacketLatency
	}
	_, ncSecond := run(noCache)
	_, svSecond := run(switchV2P)
	if svSecond >= ncSecond {
		t.Fatalf("SwitchV2P second-flow first-packet %v not better than NoCache %v", svSecond, ncSecond)
	}
	if svSecond > 20*simtime.Microsecond {
		t.Fatalf("SwitchV2P warm first-packet latency %v, want < 20µs (no gateway)", svSecond)
	}
}

func TestFCTOrderingAcrossSchemes(t *testing.T) {
	// Direct <= SwitchV2P(warm-ish) <= NoCache for repeated flows.
	run := func(scheme func(topo *topology.Topology) simnet.Scheme) simtime.Duration {
		w := newWorld(t, scheme)
		for i := 0; i < 10; i++ {
			w.agent.AddFlow(FlowSpec{
				ID: uint64(i + 1), Src: w.vips[0], Dst: w.vips[9], Proto: TCP, Bytes: 3000,
				Start: simtime.Time(i) * simtime.Time(200*simtime.Microsecond),
			})
		}
		w.e.Run(simtime.Never)
		return w.agent.Summarize().AvgFCT
	}
	d := run(direct)
	sv := run(switchV2P)
	nc := run(noCache)
	if !(d <= sv && sv < nc) {
		t.Fatalf("FCT ordering violated: direct=%v switchv2p=%v nocache=%v", d, sv, nc)
	}
}

func TestMigrationMidFlow(t *testing.T) {
	// A long TCP flow survives a mid-flow VM migration under SwitchV2P.
	w := newWorld(t, switchV2P)
	dst := w.vips[9]
	rec := w.agent.AddFlow(FlowSpec{ID: 1, Src: w.vips[0], Dst: dst, Proto: TCP, Bytes: 2_000_000})
	// Migrate mid-flow.
	newHost, _ := w.net.HostOf(w.vips[100])
	w.e.Q.At(simtime.Time(50*simtime.Microsecond), func() {
		if err := w.net.Migrate(dst, newHost); err != nil {
			t.Errorf("migrate: %v", err)
		}
	})
	w.e.Run(simtime.Never)
	if !rec.Completed {
		t.Fatalf("flow did not survive migration: %+v, counters %+v", rec, w.e.C)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Flows != 0 || s.AvgFCT != 0 || s.P99FCT != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummaryPercentiles(t *testing.T) {
	recs := make([]*FlowRecord, 100)
	for i := range recs {
		recs[i] = &FlowRecord{
			Spec:               FlowSpec{Proto: TCP},
			Completed:          true,
			FirstDelivered:     true,
			FCT:                simtime.Duration(i+1) * simtime.Microsecond,
			FirstPacketLatency: simtime.Duration(i+1) * simtime.Microsecond,
		}
	}
	s := Summarize(recs)
	if s.AvgFCT != 50500*simtime.Nanosecond {
		t.Fatalf("AvgFCT = %v", s.AvgFCT)
	}
	// Nearest-rank p99 of 1..100 µs is the 99th value.
	if s.P99FCT != 99*simtime.Microsecond {
		t.Fatalf("P99FCT = %v", s.P99FCT)
	}
	if s.P50FCT != 50*simtime.Microsecond || s.MaxFCT != 100*simtime.Microsecond {
		t.Fatalf("P50=%v Max=%v", s.P50FCT, s.MaxFCT)
	}
}

func TestBluebirdOverloadNoRTORunaway(t *testing.T) {
	// Regression: under a control-plane bottleneck (Bluebird with tiny
	// route caches), RTT samples of retransmitted segments must not feed
	// the RTO backoff (Karn's rule) — the simulation used to run away to
	// simulated years. The run must finish quickly in simulated time and
	// show Bluebird's characteristic FCT collapse.
	topo, err := topology.New(topology.FT8())
	if err != nil {
		t.Fatal(err)
	}
	n := vnet.New(topo)
	vips := n.PlaceRoundRobin(512)
	bb := baselines.NewBluebird(topo, 1, baselines.DefaultBluebirdParams())
	e := simnet.New(topo, n, bb, simnet.DefaultConfig())
	a := New(e, DefaultConfig())
	// Concentrate senders in one rack (servers of pod 1, rack 0) so a
	// single ToR's 20 Gbps DP->CP link bottlenecks every cache miss.
	var rackVMs []netaddr.VIP
	for _, v := range vips {
		if h, _ := n.HostOf(v); topo.Hosts[h].Pod == 1 && topo.Hosts[h].Rack == 0 {
			rackVMs = append(rackVMs, v)
		}
	}
	for i := 0; i < 120; i++ {
		a.AddFlow(FlowSpec{
			ID: uint64(i + 1), Src: rackVMs[i%len(rackVMs)], Dst: vips[256+i], Proto: TCP,
			Bytes: 300_000, Start: simtime.Time(i * 200),
		})
	}
	e.Run(simtime.Never)
	if now := e.Now(); now > simtime.Time(500*simtime.Millisecond) {
		t.Fatalf("simulation ran to %v: RTO runaway", now)
	}
	s := a.Summarize()
	if s.Retransmits == 0 {
		t.Fatal("expected CP-drop retransmissions")
	}
}
