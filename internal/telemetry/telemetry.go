// Package telemetry is the simulation observability subsystem: a
// metrics registry with allocation-free counters and gauges cheap
// enough for the simulator hot path, a time-series sampler driven by
// simulation events, engine profiling hooks (events/sec, heap depth),
// and JSON/CSV exporters.
//
// Telemetry is strictly opt-in. Instrumented code holds *Counter and
// *Gauge handles whose methods are no-ops on a nil receiver, so hot
// paths increment unconditionally: with telemetry disabled the handle
// is nil and the only cost is an inlined nil check; with it enabled the
// cost is one int64 field update. Nothing in this package mutates
// simulation state — an enabled collector observes a run without
// perturbing it.
package telemetry

import (
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. The zero value is
// ready for use; a nil *Counter is a valid no-op handle. Updates are
// atomic: counters like the transport retransmit/RTO tallies are bumped
// from several shard workers on the sharded engine, and an atomic add
// keeps them exact there at negligible cost on the serial engine
// (uncontended atomic add is a handful of cycles).
type Counter struct{ v int64 }

// Inc adds one.
//
//v2plint:hotpath
func (c *Counter) Inc() {
	if c != nil {
		atomic.AddInt64(&c.v, 1)
	}
}

// Add adds n.
//
//v2plint:hotpath
func (c *Counter) Add(n int64) {
	if c != nil {
		atomic.AddInt64(&c.v, n)
	}
}

// Value returns the current count (0 for a nil handle).
//
//v2plint:hotpath
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(&c.v)
}

// Gauge is a last-value metric that also tracks its high-water mark.
// The zero value is ready for use; a nil *Gauge is a valid no-op handle.
type Gauge struct{ v, hw int64 }

// Set records v as the current value, updating the high-water mark.
//
//v2plint:hotpath
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
	if v > g.hw {
		g.hw = v
	}
}

// Value returns the last value set (0 for a nil handle).
//
//v2plint:hotpath
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// HighWater returns the largest value ever set (0 for a nil handle).
//
//v2plint:hotpath
func (g *Gauge) HighWater() int64 {
	if g == nil {
		return 0
	}
	return g.hw
}

// Absorb folds another gauge's high-water mark into g (the max of the
// two). The sharded engine gives each shard view a private shadow gauge
// for the buffer-occupancy hot path and absorbs the shadows into the
// registry gauge at barriers, single-threaded — Absorb is not safe for
// concurrent use. The instantaneous value is not merged here: shards
// have no shared "last touched" notion, so the merger publishes its own
// choice via Set.
func (g *Gauge) Absorb(o *Gauge) {
	if g == nil || o == nil {
		return
	}
	if o.hw > g.hw {
		g.hw = o.hw
	}
}

// Registry hands out named counters and gauges. Lookups by name happen
// only at attach time; the handles themselves are plain pointers, so
// the per-event cost never involves a map. A nil *Registry hands out
// nil (no-op) handles, which is how disabled telemetry is modeled.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. A nil registry returns a nil (no-op) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. A nil registry returns a nil (no-op) handle.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// CounterValue is one exported counter reading.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one exported gauge reading.
type GaugeValue struct {
	Name      string `json:"name"`
	Value     int64  `json:"value"`
	HighWater int64  `json:"high_water"`
}

// Counters returns all counter readings sorted by name (deterministic
// export order).
func (r *Registry) Counters() []CounterValue {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]CounterValue, 0, len(names))
	for _, name := range names {
		out = append(out, CounterValue{Name: name, Value: r.counters[name].Value()})
	}
	return out
}

// Gauges returns all gauge readings sorted by name.
func (r *Registry) Gauges() []GaugeValue {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.gauges))
	for name := range r.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]GaugeValue, 0, len(names))
	for _, name := range names {
		g := r.gauges[name]
		out = append(out, GaugeValue{Name: name, Value: g.Value(), HighWater: g.HighWater()})
	}
	return out
}
