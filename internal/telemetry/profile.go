package telemetry

import (
	"fmt"
	"time"

	"switchv2p/internal/simtime"
)

// EngineProfile aggregates the engine-loop measurements the profiling
// hooks collect: how many events the discrete-event loop dispatched,
// how deep the pending-event heap got, and how much wall clock one
// simulated second costs. The engine fills it in when a profile is
// attached (simnet.Engine.Prof); repeated Run calls accumulate.
type EngineProfile struct {
	// Events is the number of events dispatched by the profiled run
	// loop (including telemetry sampler ticks, if a sampler is active).
	Events int64
	// HeapHighWater is the largest pending-event count observed.
	HeapHighWater int
	// Mallocs is the number of heap allocations performed inside the run
	// loop (runtime.MemStats.Mallocs delta across the profiled drain):
	// the regression signal for the allocation-free hot path. Like Wall
	// it measures the host process, never simulation state.
	Mallocs uint64
	// Wall is the wall-clock time spent inside the run loop.
	Wall time.Duration
	// SimEnd is the simulated instant at which the last run stopped.
	SimEnd simtime.Time
	// ShardEvents breaks Events down per shard domain when the sharded
	// engine ran (nil on the serial engine): ShardEvents[d] is the
	// cumulative event count dispatched by domain d's queue.
	ShardEvents []int64
}

// EventsPerSec returns the wall-clock event dispatch rate.
func (p *EngineProfile) EventsPerSec() float64 {
	if p == nil || p.Wall <= 0 {
		return 0
	}
	return float64(p.Events) / p.Wall.Seconds()
}

// AllocsPerEvent returns the mean heap allocations per dispatched event.
func (p *EngineProfile) AllocsPerEvent() float64 {
	if p == nil || p.Events == 0 {
		return 0
	}
	return float64(p.Mallocs) / float64(p.Events)
}

// WallPerSimSecond returns how many wall-clock seconds one simulated
// second costs (the simulator's slowdown factor).
func (p *EngineProfile) WallPerSimSecond() float64 {
	if p == nil || p.SimEnd <= 0 {
		return 0
	}
	simSecs := float64(p.SimEnd) / float64(simtime.Second)
	return p.Wall.Seconds() / simSecs
}

// String summarizes the profile in one line ("" for a nil profile).
func (p *EngineProfile) String() string {
	if p == nil {
		return ""
	}
	return fmt.Sprintf("events=%d heapHW=%d wall=%v events/sec=%.0f wall-per-sim-sec=%.1f allocs/event=%.3f",
		p.Events, p.HeapHighWater, p.Wall.Round(time.Microsecond),
		p.EventsPerSec(), p.WallPerSimSecond(), p.AllocsPerEvent())
}
