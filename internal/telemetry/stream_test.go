package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"switchv2p/internal/eventq"
	"switchv2p/internal/simtime"
)

// driveSampler runs a collector against a synthetic event queue: dummy
// events keep the queue non-empty so the sampler re-arms for exactly
// ticks samples. The probes read a shared deterministic counter.
func driveSampler(c *Collector, ticks int) {
	q := &eventq.Queue{}
	var step int64
	c.AddProbe("lin", func() float64 { return float64(step) })
	c.AddProbe("saw", func() float64 { return float64(step % 7) })
	c.Attach(q)
	// One filler event between consecutive ticks so Q.Len() > 0 when
	// each of the first ticks-1 samples fires (the sampler then re-arms
	// exactly ticks times); the filler advances the counter.
	for i := 1; i < ticks; i++ {
		q.At(simtime.Time(i)*simtime.Time(c.Interval)+1, func() { step++ })
	}
	q.Run(simtime.Never)
}

func TestStreamMatchesBufferedOracle(t *testing.T) {
	iv := 10 * simtime.Microsecond
	const ticks = 100

	buffered := New(Options{Interval: iv})
	driveSampler(buffered, ticks)
	var wantCSV, wantND bytes.Buffer
	if err := buffered.WriteCSV(&wantCSV); err != nil {
		t.Fatal(err)
	}
	if err := buffered.WriteNDJSON(&wantND); err != nil {
		t.Fatal(err)
	}

	var gotCSV, gotND bytes.Buffer
	streaming := New(Options{Interval: iv, Stream: &StreamOptions{
		CSV: &gotCSV, NDJSON: &gotND, Window: 8,
	}})
	driveSampler(streaming, ticks)
	if err := streaming.FlushStreams(); err != nil {
		t.Fatal(err)
	}

	if gotCSV.String() != wantCSV.String() {
		t.Errorf("streamed CSV diverges from buffered oracle\nstreamed:\n%s\nbuffered:\n%s",
			gotCSV.String(), wantCSV.String())
	}
	if gotND.String() != wantND.String() {
		t.Errorf("streamed NDJSON diverges from buffered oracle\nstreamed:\n%s\nbuffered:\n%s",
			gotND.String(), wantND.String())
	}
	if lines := strings.Count(gotCSV.String(), "\n"); lines != ticks+1 {
		t.Errorf("streamed CSV has %d lines, want %d rows + header", lines, ticks)
	}
}

func TestStreamWindowBoundsRetention(t *testing.T) {
	const window, ticks = 8, 100
	c := New(Options{Interval: simtime.Microsecond, Stream: &StreamOptions{
		CSV: &bytes.Buffer{}, Window: window,
	}})
	driveSampler(c, ticks)
	if got := len(c.Timeline.Times); got != window {
		t.Errorf("retained %d samples, want window %d", got, window)
	}
	for _, s := range c.Timeline.Series {
		if got := len(s.Values); got != window {
			t.Errorf("series %s retained %d values, want %d", s.Name, got, window)
		}
	}
	if got, want := c.Timeline.Dropped, int64(ticks-window); got != want {
		t.Errorf("Dropped = %d, want %d", got, want)
	}
	if got := c.Ticks(); got != ticks {
		t.Errorf("Ticks() = %d, want %d", got, ticks)
	}
	// The retained window must be the most recent samples, in order.
	last := c.Timeline.Times[window-1]
	if want := simtime.Time(ticks) * simtime.Time(c.Interval); last != want {
		t.Errorf("last retained sample at %v, want %v", last, want)
	}
}

// TestStreamSummaryMatchesBuffered: the running aggregates behind
// Summary must report the same last/max a buffered run computes, even
// after window eviction discarded the maximal sample.
func TestStreamSummaryMatchesBuffered(t *testing.T) {
	iv := simtime.Microsecond
	buffered := New(Options{Interval: iv})
	driveSampler(buffered, 50)
	streaming := New(Options{Interval: iv, Stream: &StreamOptions{CSV: &bytes.Buffer{}, Window: 4}})
	driveSampler(streaming, 50)

	strip := func(s string) string {
		// Drop the streaming-retention line: it is the one intended
		// difference between the two digests.
		var out []string
		for _, ln := range strings.Split(s, "\n") {
			if strings.Contains(ln, "streaming:") {
				continue
			}
			out = append(out, ln)
		}
		return strings.Join(out, "\n")
	}
	if got, want := strip(streaming.Summary()), strip(buffered.Summary()); got != want {
		t.Errorf("streaming Summary diverges\nstreaming:\n%s\nbuffered:\n%s", got, want)
	}
}

func TestMaxFaultsBound(t *testing.T) {
	c := New(Options{MaxFaults: 3})
	for i := 0; i < 10; i++ {
		c.RecordFault(float64(i), "SwitchFail", "switch 1")
	}
	if got := len(c.Faults); got != 3 {
		t.Errorf("retained %d fault records, want 3", got)
	}
	if got := c.FaultsDropped; got != 7 {
		t.Errorf("FaultsDropped = %d, want 7", got)
	}
	if c.Faults[0].TimeUs != 0 || c.Faults[2].TimeUs != 2 {
		t.Errorf("cap must keep the oldest records, got %+v", c.Faults)
	}
	if !strings.Contains(c.Summary(), "+7 further events") {
		t.Errorf("Summary does not surface dropped fault count:\n%s", c.Summary())
	}
}

func TestProfileOnlyIgnoresStream(t *testing.T) {
	var buf bytes.Buffer
	c := New(Options{ProfileOnly: true, Stream: &StreamOptions{CSV: &buf}})
	if c.Streaming() {
		t.Error("ProfileOnly collector must not stream")
	}
	c.Attach(&eventq.Queue{})
	if buf.Len() != 0 {
		t.Error("ProfileOnly collector emitted stream bytes")
	}
	if err := c.FlushStreams(); err != nil {
		t.Errorf("FlushStreams on profile-only collector: %v", err)
	}
}

func TestNilCollectorStreamMethods(t *testing.T) {
	var c *Collector
	if err := c.FlushStreams(); err != nil {
		t.Error(err)
	}
	if err := c.WriteNDJSON(&bytes.Buffer{}); err != nil {
		t.Error(err)
	}
	if c.Streaming() || c.Ticks() != 0 || c.StreamErr() != nil {
		t.Error("nil collector accessors must report zero values")
	}
	var tl *Timeline
	if err := tl.WriteNDJSON(&bytes.Buffer{}); err != nil {
		t.Error(err)
	}
}
