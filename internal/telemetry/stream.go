package telemetry

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"io"

	"switchv2p/internal/simtime"
)

// Incremental exporter plumbing for windowed/streaming collectors. The
// invariant both emitters maintain: the byte stream produced over a run
// of any length is exactly what the corresponding buffered exporter
// (Timeline.WriteCSV / Timeline.WriteNDJSON) would produce had every
// sample been retained. Short runs with large windows verify this
// directly (the oracle tests); long runs then stream the same bytes in
// constant memory.

type streamCSV struct {
	cw  *csv.Writer
	row []string
}

type streamNDJSON struct {
	bw   *bufio.Writer
	buf  []byte
	vals []float64
}

// initStreams emits the exporter headers. Called from Attach, after
// every probe is registered and before the first tick.
func (c *Collector) initStreams() {
	if c.stream.CSV != nil {
		cw := csv.NewWriter(c.stream.CSV)
		header := make([]string, 0, len(c.Timeline.Series)+1)
		header = append(header, "time_us")
		for _, s := range c.Timeline.Series {
			header = append(header, s.Name)
		}
		if err := cw.Write(header); err != nil && c.streamErr == nil {
			c.streamErr = err
		}
		c.csvw = &streamCSV{cw: cw, row: make([]string, len(header))}
	}
	if c.stream.NDJSON != nil {
		bw := bufio.NewWriter(c.stream.NDJSON)
		if _, err := bw.Write(ndjsonHeader(c.Interval, c.Timeline.Series)); err != nil && c.streamErr == nil {
			c.streamErr = err
		}
		c.ndjw = &streamNDJSON{bw: bw, vals: make([]float64, len(c.Timeline.Series))}
	}
}

// emit writes the sample just recorded by tick to the stream writers.
// The scratch buffers are reused, so a steady-state tick allocates
// nothing beyond what fixed() formats.
func (c *Collector) emit(now simtime.Time) {
	if c.streamErr != nil {
		return
	}
	if c.csvw != nil {
		row := c.csvw.row
		row[0] = fixed(float64(now) / 1000)
		for i, p := range c.probes {
			row[i+1] = fixed(p.series.last)
		}
		if err := c.csvw.cw.Write(row); err != nil {
			c.streamErr = err
			return
		}
	}
	if c.ndjw != nil {
		for i, p := range c.probes {
			c.ndjw.vals[i] = p.series.last
		}
		c.ndjw.buf = appendNDJSONRow(c.ndjw.buf[:0], now, c.ndjw.vals)
		if _, err := c.ndjw.bw.Write(c.ndjw.buf); err != nil {
			c.streamErr = err
		}
	}
}

// FlushStreams flushes the incremental exporters and reports the first
// write error encountered during the run. It must be called once the
// simulation finishes; the harness does so automatically. A nil
// collector (or one without streams) reports success.
func (c *Collector) FlushStreams() error {
	if c == nil {
		return nil
	}
	if c.streamErr != nil {
		return c.streamErr
	}
	if c.csvw != nil {
		c.csvw.cw.Flush()
		if err := c.csvw.cw.Error(); err != nil {
			c.streamErr = err
			return err
		}
	}
	if c.ndjw != nil {
		if err := c.ndjw.bw.Flush(); err != nil {
			c.streamErr = err
			return err
		}
	}
	return nil
}

// StreamErr returns the first write error encountered by the stream
// emitters (nil for a nil collector).
func (c *Collector) StreamErr() error {
	if c == nil {
		return nil
	}
	return c.streamErr
}

// ndjsonHeader renders the NDJSON stream's leading header object:
// sampling interval plus the series name axis shared by every row.
func ndjsonHeader(interval simtime.Duration, series []*Series) []byte {
	names := make([]string, len(series))
	for i, s := range series {
		names[i] = s.Name
	}
	nameJSON, err := json.Marshal(names)
	if err != nil {
		// A []string cannot fail to marshal; keep the stream well-formed
		// regardless.
		nameJSON = []byte("[]")
	}
	b := append([]byte(`{"interval_us":`), fixed(interval.Micros())...)
	b = append(b, `,"series":`...)
	b = append(b, nameJSON...)
	b = append(b, '}', '\n')
	return b
}

// appendNDJSONRow renders one sample row. Shared by the streaming
// emitter and the buffered oracle so the two byte streams cannot
// diverge.
func appendNDJSONRow(b []byte, tm simtime.Time, vals []float64) []byte {
	b = append(b, `{"time_us":`...)
	b = append(b, fixed(float64(tm)/1000)...)
	b = append(b, `,"values":[`...)
	for i, v := range vals {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, fixed(v)...)
	}
	b = append(b, ']', '}', '\n')
	return b
}

// WriteNDJSON exports the retained timeline as newline-delimited JSON:
// one header object, then one row object per sample. This is the
// buffered oracle for StreamOptions.NDJSON — on a run whose window
// retained every sample it produces byte-identical output. A nil
// timeline writes nothing and reports success.
func (t *Timeline) WriteNDJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(ndjsonHeader(t.Interval, t.Series)); err != nil {
		return err
	}
	vals := make([]float64, len(t.Series))
	var buf []byte
	for i, tm := range t.Times {
		for j, s := range t.Series {
			vals[j] = 0
			if i < len(s.Values) {
				vals[j] = s.Values[i]
			}
		}
		buf = appendNDJSONRow(buf[:0], tm, vals)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteNDJSON exports the collector's retained timeline as NDJSON (see
// Timeline.WriteNDJSON). A nil collector writes nothing and reports
// success.
func (c *Collector) WriteNDJSON(w io.Writer) error {
	if c == nil {
		return nil
	}
	return c.Timeline.WriteNDJSON(w)
}
