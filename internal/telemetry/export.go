package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// fixed formats a float with a fixed precision so exported CSV/JSON
// files diff cleanly across runs and platforms.
func fixed(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }

type jsonProfile struct {
	Events           int64   `json:"events"`
	HeapHighWater    int     `json:"heap_high_water"`
	Mallocs          uint64  `json:"mallocs"`
	AllocsPerEvent   float64 `json:"allocs_per_event"`
	WallMs           float64 `json:"wall_ms"`
	EventsPerSec     float64 `json:"events_per_sec"`
	WallPerSimSecond float64 `json:"wall_per_sim_second"`
}

type jsonExport struct {
	IntervalUs float64        `json:"interval_us"`
	TimesUs    []float64      `json:"times_us"`
	Series     []*Series      `json:"series"`
	Counters   []CounterValue `json:"counters"`
	Gauges     []GaugeValue   `json:"gauges"`
	Faults     []FaultRecord  `json:"faults,omitempty"`
	// SamplesDropped / FaultsDropped surface streaming-window and
	// fault-cap evictions; both are omitted (keeping buffered exports
	// byte-identical to prior versions) when zero.
	SamplesDropped int64       `json:"samples_dropped,omitempty"`
	FaultsDropped  int64       `json:"faults_dropped,omitempty"`
	Profile        jsonProfile `json:"profile"`
}

// WriteJSON exports the full collector state — timeline, registry and
// engine profile — as one JSON document. In streaming operation the
// timeline section covers only the retained window (SamplesDropped
// reports how many older samples were evicted after being streamed).
// A nil collector writes nothing and reports success.
func (c *Collector) WriteJSON(w io.Writer) error {
	if c == nil {
		return nil
	}
	doc := jsonExport{
		IntervalUs:     c.Interval.Micros(),
		TimesUs:        make([]float64, 0, len(c.Timeline.Times)),
		Series:         c.Timeline.Series,
		Counters:       c.Registry.Counters(),
		Gauges:         c.Registry.Gauges(),
		Faults:         c.Faults,
		SamplesDropped: c.Timeline.Dropped,
		FaultsDropped:  c.FaultsDropped,
		Profile: jsonProfile{
			Events:           c.Profile.Events,
			HeapHighWater:    c.Profile.HeapHighWater,
			Mallocs:          c.Profile.Mallocs,
			AllocsPerEvent:   c.Profile.AllocsPerEvent(),
			WallMs:           float64(c.Profile.Wall) / float64(time.Millisecond),
			EventsPerSec:     c.Profile.EventsPerSec(),
			WallPerSimSecond: c.Profile.WallPerSimSecond(),
		},
	}
	for _, t := range c.Timeline.Times {
		doc.TimesUs = append(doc.TimesUs, float64(t)/1000)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// WriteCSV exports the timeline in wide format: one column per series,
// one row per sampling tick, all floats at fixed precision. A nil
// collector writes nothing and reports success.
func (c *Collector) WriteCSV(w io.Writer) error {
	if c == nil {
		return nil
	}
	return c.Timeline.WriteCSV(w)
}

// WriteCSV exports the timeline in wide format (time_us, series...).
// A nil timeline writes nothing and reports success.
func (t *Timeline) WriteCSV(w io.Writer) error {
	if t == nil {
		return nil
	}
	cw := csv.NewWriter(w)
	header := []string{"time_us"}
	for _, s := range t.Series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i, tm := range t.Times {
		row[0] = fixed(float64(tm) / 1000)
		for j, s := range t.Series {
			v := 0.0
			if i < len(s.Values) {
				v = s.Values[i]
			}
			row[j+1] = fixed(v)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFaultsCSV exports the fault timeline as CSV (time_us at fixed
// precision, kind, detail) — one row per applied fault event. A nil
// collector writes nothing and reports success.
func (c *Collector) WriteFaultsCSV(w io.Writer) error {
	if c == nil {
		return nil
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_us", "kind", "detail"}); err != nil {
		return err
	}
	for _, f := range c.Faults {
		if err := cw.Write([]string{fixed(f.TimeUs), f.Kind, f.Detail}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Summary renders a human-readable digest: the engine profile, the
// registry contents, the final reading of every sampled series, and the
// fault timeline. A nil collector renders the empty string.
func (c *Collector) Summary() string {
	if c == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "engine    %s\n", c.Profile.String())
	fmt.Fprintf(&b, "samples   %d ticks every %v (%d series)\n",
		c.Ticks(), c.Interval, len(c.Timeline.Series))
	if c.Timeline.Dropped > 0 {
		fmt.Fprintf(&b, "          streaming: %d retained in window, %d evicted after emission\n",
			len(c.Timeline.Times), c.Timeline.Dropped)
	}
	for _, cv := range c.Registry.Counters() {
		fmt.Fprintf(&b, "counter   %-32s %d\n", cv.Name, cv.Value)
	}
	for _, gv := range c.Registry.Gauges() {
		fmt.Fprintf(&b, "gauge     %-32s %d (high water %d)\n", gv.Name, gv.Value, gv.HighWater)
	}
	for _, s := range c.Timeline.Series {
		// The running aggregates cover samples already evicted from a
		// streaming window; series filled directly (n == 0, e.g. by
		// tests) fall back to scanning the retained values.
		last, max, have := s.last, s.max, s.n > 0
		if !have && len(s.Values) > 0 {
			have = true
			last = s.Values[len(s.Values)-1]
			max = s.Values[0]
			for _, v := range s.Values {
				if v > max {
					max = v
				}
			}
		}
		if !have {
			continue
		}
		fmt.Fprintf(&b, "series    %-32s last=%.4g max=%.4g\n", s.Name, last, max)
	}
	for _, f := range c.Faults {
		fmt.Fprintf(&b, "fault     t=%-10s %-16s %s\n", fixed(f.TimeUs)+"us", f.Kind, f.Detail)
	}
	if c.FaultsDropped > 0 {
		fmt.Fprintf(&b, "fault     (+%d further events beyond the MaxFaults cap)\n", c.FaultsDropped)
	}
	return b.String()
}
