package telemetry

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"switchv2p/internal/eventq"
	"switchv2p/internal/simtime"
)

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(7)
	if g.Value() != 0 || g.HighWater() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil {
		t.Fatal("nil registry handed out live handles")
	}
	if r.Counters() != nil || r.Gauges() != nil {
		t.Fatal("nil registry exported values")
	}
	var p *EngineProfile
	if p.EventsPerSec() != 0 || p.WallPerSimSecond() != 0 {
		t.Fatal("nil profile reported rates")
	}
}

func TestRegistryCreateOrGetAndSortedExport(t *testing.T) {
	r := NewRegistry()
	b := r.Counter("b")
	b.Add(2)
	if r.Counter("b") != b {
		t.Fatal("second lookup returned a different counter")
	}
	r.Counter("a").Inc()
	g := r.Gauge("depth")
	g.Set(9)
	g.Set(4)
	if g.Value() != 4 || g.HighWater() != 9 {
		t.Fatalf("gauge = %d/%d, want 4/9", g.Value(), g.HighWater())
	}
	cs := r.Counters()
	if len(cs) != 2 || cs[0].Name != "a" || cs[1].Name != "b" || cs[1].Value != 2 {
		t.Fatalf("counters = %+v", cs)
	}
	gs := r.Gauges()
	if len(gs) != 1 || gs[0].HighWater != 9 {
		t.Fatalf("gauges = %+v", gs)
	}
}

// The registry snapshots iterate internal maps; regression for the
// v2plint detrange finding: output must be name-sorted and identical
// across calls regardless of insertion order or Go's randomized map
// iteration.
func TestSnapshotsStableAcrossRuns(t *testing.T) {
	r := NewRegistry()
	names := []string{"q", "b", "z", "a", "m", "x", "c", "y", "k", "d"}
	for i, name := range names {
		r.Counter(name).Add(int64(i))
		r.Gauge(name).Set(int64(i * 2))
	}
	cs, gs := r.Counters(), r.Gauges()
	if len(cs) != len(names) || len(gs) != len(names) {
		t.Fatalf("got %d counters, %d gauges, want %d", len(cs), len(gs), len(names))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i-1].Name >= cs[i].Name {
			t.Fatalf("counters not sorted at %d: %q >= %q", i, cs[i-1].Name, cs[i].Name)
		}
		if gs[i-1].Name >= gs[i].Name {
			t.Fatalf("gauges not sorted at %d: %q >= %q", i, gs[i-1].Name, gs[i].Name)
		}
	}
	for i := 0; i < 10; i++ {
		if cs2 := r.Counters(); !reflect.DeepEqual(cs2, cs) {
			t.Fatalf("Counters changed between calls:\n%v\n%v", cs, cs2)
		}
		if gs2 := r.Gauges(); !reflect.DeepEqual(gs2, gs) {
			t.Fatalf("Gauges changed between calls:\n%v\n%v", gs, gs2)
		}
	}
}

func TestRateAndRatioProbes(t *testing.T) {
	var cum int64
	rate := RateProbe(simtime.Microsecond, func() int64 { return cum })
	cum = 5
	if got := rate(); got != 5e6 {
		t.Fatalf("rate tick 1 = %g, want 5e6", got)
	}
	cum = 5 // no movement
	if got := rate(); got != 0 {
		t.Fatalf("rate tick 2 = %g, want 0", got)
	}

	var hits, lookups int64
	ratio := RatioProbe(func() int64 { return hits }, func() int64 { return lookups })
	hits, lookups = 3, 4
	if got := ratio(); got != 0.75 {
		t.Fatalf("ratio tick 1 = %g, want 0.75", got)
	}
	// Next window: no lookups at all must read 0, not NaN.
	if got := ratio(); got != 0 {
		t.Fatalf("ratio tick 2 = %g, want 0", got)
	}
}

// TestSamplerFollowsQueue drives the sampler on a real event queue and
// checks the two scheduling properties the collector documents: ticks
// land every Interval while simulation events remain, and the sampler
// never re-arms after the last real event drains.
func TestSamplerFollowsQueue(t *testing.T) {
	q := new(eventq.Queue)
	c := New(Options{Interval: 2 * simtime.Microsecond})
	var fired int64
	c.AddProbe("fired", func() float64 { return float64(fired) })

	last := simtime.Time(9 * simtime.Microsecond)
	q.At(simtime.Time(simtime.Microsecond), func() { fired++ })
	q.At(last, func() { fired++ })
	c.Attach(q)

	for q.Step() {
	}
	if q.Now() >= last+simtime.Time(2*c.Interval) {
		t.Fatalf("sampler kept the queue alive until %v", q.Now())
	}
	times := c.Timeline.Times
	if len(times) == 0 {
		t.Fatal("no samples recorded")
	}
	for i, tm := range times {
		want := simtime.Time((i + 1) * 2 * int(simtime.Microsecond))
		if tm != want {
			t.Fatalf("tick %d at %v, want %v", i, tm, want)
		}
	}
	s := c.Timeline.Find("fired")
	if s == nil || len(s.Values) != len(times) {
		t.Fatalf("series fired: %+v", s)
	}
	if s.Values[0] != 1 || s.Values[len(s.Values)-1] != 2 {
		t.Fatalf("fired values = %v", s.Values)
	}
	if c.Timeline.Find("missing") != nil {
		t.Fatal("Find invented a series")
	}
}

func TestProfileOnlySchedulesNothing(t *testing.T) {
	q := new(eventq.Queue)
	c := New(Options{ProfileOnly: true})
	if !c.ProfileOnly() {
		t.Fatal("ProfileOnly not reported")
	}
	c.Attach(q)
	if q.Len() != 0 {
		t.Fatal("profile-only collector scheduled a sampler event")
	}
}

func TestWriteJSONAndCSV(t *testing.T) {
	q := new(eventq.Queue)
	c := New(Options{Interval: simtime.Microsecond})
	c.AddProbe("load", func() float64 { return 1.5 })
	c.Registry.Counter("pkts").Add(12)
	c.Registry.Gauge("depth").Set(3)
	c.Profile.Events = 100
	q.At(simtime.Time(3*simtime.Microsecond), func() {})
	c.Attach(q)
	for q.Step() {
	}

	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, key := range []string{"interval_us", "times_us", "series", "counters", "gauges", "profile"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("JSON missing %q", key)
		}
	}

	buf.Reset()
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != "time_us" || rows[0][1] != "load" {
		t.Fatalf("csv header = %v", rows[0])
	}
	if len(rows) != 1+len(c.Timeline.Times) {
		t.Fatalf("csv rows = %d, want %d", len(rows), 1+len(c.Timeline.Times))
	}
	if rows[1][1] != "1.500000" {
		t.Fatalf("csv value = %q, want fixed precision 1.500000", rows[1][1])
	}

	sum := c.Summary()
	for _, frag := range []string{"pkts", "depth", "load", "events=100"} {
		if !strings.Contains(sum, frag) {
			t.Fatalf("summary missing %q:\n%s", frag, sum)
		}
	}
}
