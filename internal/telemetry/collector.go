package telemetry

import (
	"switchv2p/internal/eventq"
	"switchv2p/internal/simtime"
)

// DefaultInterval is the sampling period used when Options.Interval is
// zero: fine enough to resolve the warm-up dynamics of a millisecond-
// scale run, coarse enough to stay far off the packet event rate.
const DefaultInterval = 10 * simtime.Microsecond

// Options configures a Collector.
type Options struct {
	// Interval is the time-series sampling period (0 = DefaultInterval).
	Interval simtime.Duration
	// ProfileOnly keeps the engine profiling hooks but disables the
	// time-series sampler — no sampler events enter the simulation.
	// Benchmarks use this to measure raw engine throughput.
	ProfileOnly bool
}

// Series is one named time-series; Values is indexed like the owning
// Timeline's Times.
type Series struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// Timeline holds every sampled series over a shared time axis.
type Timeline struct {
	Interval simtime.Duration
	Times    []simtime.Time
	Series   []*Series
}

// Find returns the named series, or nil.
func (t *Timeline) Find(name string) *Series {
	if t == nil {
		return nil
	}
	for _, s := range t.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// FaultRecord is one entry in the fault timeline: a fault event the
// injector (internal/faults) applied to the simulation, stamped with
// its simulation time. Kind is the event kind's string form (e.g.
// "SwitchFail") and Detail identifies the affected entity (e.g.
// "switch 12" or "link host 3 <-> switch 0").
type FaultRecord struct {
	TimeUs float64 `json:"time_us"`
	Kind   string  `json:"kind"`
	Detail string  `json:"detail"`
}

// Collector bundles one run's telemetry: the registry its counter and
// gauge handles live in, the engine profile, the sampled timeline, and
// the fault timeline.
type Collector struct {
	Interval simtime.Duration
	Registry *Registry
	Profile  EngineProfile
	Timeline *Timeline
	// Faults is the ordered timeline of fault events applied during the
	// run (empty when no fault injection is configured).
	Faults []FaultRecord

	profileOnly bool
	probes      []probe
	q           *eventq.Queue
}

type probe struct {
	series *Series
	fn     func() float64
}

// New builds a collector.
func New(opts Options) *Collector {
	iv := opts.Interval
	if iv <= 0 {
		iv = DefaultInterval
	}
	return &Collector{
		Interval:    iv,
		Registry:    NewRegistry(),
		Timeline:    &Timeline{Interval: iv},
		profileOnly: opts.ProfileOnly,
	}
}

// ProfileOnly reports whether the time-series sampler is disabled
// (false for a nil collector: no collector, no sampler to disable).
func (c *Collector) ProfileOnly() bool {
	if c == nil {
		return false
	}
	return c.profileOnly
}

// RecordFault appends one event to the fault timeline. The injector
// calls it at the simulation time the fault is applied, so records are
// naturally in non-decreasing time order. Safe on a nil collector.
func (c *Collector) RecordFault(timeUs float64, kind, detail string) {
	if c == nil {
		return
	}
	c.Faults = append(c.Faults, FaultRecord{TimeUs: timeUs, Kind: kind, Detail: detail})
}

// AddProbe registers a sampled series: fn is evaluated once per
// sampling tick and must not mutate simulation state. Probes must be
// registered before Attach. A nil collector records nothing.
func (c *Collector) AddProbe(name string, fn func() float64) {
	if c == nil {
		return
	}
	s := &Series{Name: name}
	c.Timeline.Series = append(c.Timeline.Series, s)
	c.probes = append(c.probes, probe{series: s, fn: fn})
}

// Attach schedules the sampler on the simulation's event queue. The
// sampler re-arms itself only while other events remain pending, so it
// never keeps a drained simulation alive, and its ticks are pure
// observations — an attached collector does not change any result.
// A nil collector attaches nothing.
func (c *Collector) Attach(q *eventq.Queue) {
	if c == nil {
		return
	}
	if c.profileOnly {
		return
	}
	c.q = q
	q.After(c.Interval, c.tick)
}

func (c *Collector) tick() {
	c.Timeline.Times = append(c.Timeline.Times, c.q.Now())
	for _, p := range c.probes {
		p.series.Values = append(p.series.Values, p.fn())
	}
	// Re-arm only while the simulation has work left: when this tick is
	// dispatched the queue holds exactly the other pending events.
	if c.q.Len() > 0 {
		c.q.After(c.Interval, c.tick)
	}
}

// RateProbe adapts a cumulative counter read into a per-second rate
// over the sampling window: each tick reports (current-previous)
// divided by the interval. The closure is stateful; register the
// returned probe exactly once.
func RateProbe(interval simtime.Duration, cum func() int64) func() float64 {
	var last int64
	secs := interval.Seconds()
	return func() float64 {
		v := cum()
		d := v - last
		last = v
		return float64(d) / secs
	}
}

// RatioProbe adapts two cumulative counters into a windowed ratio:
// each tick reports Δnum/Δden over the sampling window (0 when the
// denominator did not move). Used for windowed cache hit rates.
func RatioProbe(num, den func() int64) func() float64 {
	var lastNum, lastDen int64
	return func() float64 {
		n, d := num(), den()
		dn, dd := n-lastNum, d-lastDen
		lastNum, lastDen = n, d
		if dd == 0 {
			return 0
		}
		return float64(dn) / float64(dd)
	}
}
