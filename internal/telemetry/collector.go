package telemetry

import (
	"io"

	"switchv2p/internal/eventq"
	"switchv2p/internal/simtime"
)

// DefaultInterval is the sampling period used when Options.Interval is
// zero: fine enough to resolve the warm-up dynamics of a millisecond-
// scale run, coarse enough to stay far off the packet event rate.
const DefaultInterval = 10 * simtime.Microsecond

// DefaultWindow is the number of recent samples a streaming collector
// keeps in memory when StreamOptions.Window is zero.
const DefaultWindow = 256

// StreamOptions converts the sampler to windowed/streaming operation:
// every tick is emitted incrementally to the configured writers and the
// in-memory Timeline retains only the most recent Window samples, so a
// run of any simulated length samples in constant memory. The emitted
// byte streams match the buffered exporters exactly: CSV receives the
// same bytes Timeline.WriteCSV would produce for an unbounded run, and
// NDJSON the same bytes Timeline.WriteNDJSON would.
type StreamOptions struct {
	// CSV, when non-nil, receives the timeline incrementally in the wide
	// CSV format (header at Attach, one row per tick).
	CSV io.Writer
	// NDJSON, when non-nil, receives the timeline incrementally as
	// newline-delimited JSON (one header object, then one row object per
	// tick).
	NDJSON io.Writer
	// Window bounds in-memory sample retention (0 = DefaultWindow).
	Window int
}

// Options configures a Collector.
type Options struct {
	// Interval is the time-series sampling period (0 = DefaultInterval).
	Interval simtime.Duration
	// ProfileOnly keeps the engine profiling hooks but disables the
	// time-series sampler — no sampler events enter the simulation.
	// Benchmarks use this to measure raw engine throughput.
	ProfileOnly bool
	// Stream, when non-nil, switches the sampler to streaming operation
	// (see StreamOptions). Ignored when ProfileOnly is set: with no
	// sampler there is nothing to stream.
	Stream *StreamOptions
	// MaxFaults bounds the fault timeline: once that many records exist
	// further RecordFault calls are counted in FaultsDropped and
	// discarded, keeping long fault-heavy horizons in constant memory
	// (0 = unbounded).
	MaxFaults int
}

// Series is one named time-series; Values is indexed like the owning
// Timeline's Times. In streaming operation Values holds only the
// retained window; the unexported running aggregates cover every sample
// ever recorded.
type Series struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`

	// Running aggregates maintained by the collector tick. n == 0 means
	// the series was filled directly (e.g. by tests) rather than through
	// Collector sampling.
	n         int64
	last, max float64
}

// Timeline holds every sampled series over a shared time axis.
type Timeline struct {
	Interval simtime.Duration
	Times    []simtime.Time
	Series   []*Series

	// Dropped counts samples evicted from the in-memory window by a
	// streaming collector (always 0 in buffered operation). Evicted
	// samples were already emitted to the stream writers; only the
	// in-memory copy is released.
	Dropped int64
}

// Find returns the named series, or nil.
func (t *Timeline) Find(name string) *Series {
	if t == nil {
		return nil
	}
	for _, s := range t.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// FaultRecord is one entry in the fault timeline: a fault event the
// injector (internal/faults) applied to the simulation, stamped with
// its simulation time. Kind is the event kind's string form (e.g.
// "SwitchFail") and Detail identifies the affected entity (e.g.
// "switch 12" or "link host 3 <-> switch 0").
type FaultRecord struct {
	TimeUs float64 `json:"time_us"`
	Kind   string  `json:"kind"`
	Detail string  `json:"detail"`
}

// Collector bundles one run's telemetry: the registry its counter and
// gauge handles live in, the engine profile, the sampled timeline, and
// the fault timeline.
type Collector struct {
	Interval simtime.Duration
	Registry *Registry
	Profile  EngineProfile
	Timeline *Timeline
	// Faults is the ordered timeline of fault events applied during the
	// run (empty when no fault injection is configured).
	Faults []FaultRecord
	// FaultsDropped counts fault records discarded by Options.MaxFaults.
	FaultsDropped int64

	profileOnly bool
	probes      []probe
	q           *eventq.Queue

	// Streaming state (nil/zero in buffered operation).
	stream    *StreamOptions
	window    int
	ticks     int64
	maxFaults int
	csvw      *streamCSV
	ndjw      *streamNDJSON
	streamErr error
}

type probe struct {
	series *Series
	fn     func() float64
}

// New builds a collector.
func New(opts Options) *Collector {
	iv := opts.Interval
	if iv <= 0 {
		iv = DefaultInterval
	}
	c := &Collector{
		Interval:    iv,
		Registry:    NewRegistry(),
		Timeline:    &Timeline{Interval: iv},
		profileOnly: opts.ProfileOnly,
		maxFaults:   opts.MaxFaults,
	}
	if opts.Stream != nil && !opts.ProfileOnly {
		c.stream = opts.Stream
		c.window = opts.Stream.Window
		if c.window <= 0 {
			c.window = DefaultWindow
		}
	}
	return c
}

// ProfileOnly reports whether the time-series sampler is disabled
// (false for a nil collector: no collector, no sampler to disable).
func (c *Collector) ProfileOnly() bool {
	if c == nil {
		return false
	}
	return c.profileOnly
}

// Streaming reports whether the sampler runs in windowed/streaming
// operation (false for a nil collector).
func (c *Collector) Streaming() bool {
	if c == nil {
		return false
	}
	return c.stream != nil
}

// Ticks returns the total number of sampling ticks taken, including
// samples already evicted from a streaming window (0 for a nil
// collector).
func (c *Collector) Ticks() int64 {
	if c == nil {
		return 0
	}
	if c.ticks == 0 && c.Timeline != nil {
		// A timeline filled directly rather than through tick().
		return int64(len(c.Timeline.Times))
	}
	return c.ticks
}

// RecordFault appends one event to the fault timeline. The injector
// calls it at the simulation time the fault is applied, so records are
// naturally in non-decreasing time order. Once Options.MaxFaults
// records exist, further events only bump FaultsDropped. Safe on a nil
// collector.
func (c *Collector) RecordFault(timeUs float64, kind, detail string) {
	if c == nil {
		return
	}
	if c.maxFaults > 0 && len(c.Faults) >= c.maxFaults {
		c.FaultsDropped++
		return
	}
	c.Faults = append(c.Faults, FaultRecord{TimeUs: timeUs, Kind: kind, Detail: detail})
}

// AddProbe registers a sampled series: fn is evaluated once per
// sampling tick and must not mutate simulation state. Probes must be
// registered before Attach. A nil collector records nothing.
func (c *Collector) AddProbe(name string, fn func() float64) {
	if c == nil {
		return
	}
	s := &Series{Name: name}
	c.Timeline.Series = append(c.Timeline.Series, s)
	c.probes = append(c.probes, probe{series: s, fn: fn})
}

// Attach schedules the sampler on the simulation's event queue. The
// sampler re-arms itself only while other events remain pending, so it
// never keeps a drained simulation alive, and its ticks are pure
// observations — an attached collector does not change any result.
// In streaming operation this also emits the exporter headers, so all
// probes must be registered first. A nil collector attaches nothing.
func (c *Collector) Attach(q *eventq.Queue) {
	if c == nil {
		return
	}
	if c.profileOnly {
		return
	}
	c.q = q
	if c.stream != nil {
		c.initStreams()
	}
	q.After(c.Interval, c.tick)
}

// BarrierSampling prepares the collector for externally driven sampling
// — the sharded engine calls TickAt at every multiple of the returned
// interval instead of the collector self-scheduling queue events (the
// sharded root queue is frozen). It returns the sampling interval and
// whether sampling is enabled at all (false for a nil or profile-only
// collector). In streaming operation it also emits the exporter
// headers, so all probes must be registered first.
func (c *Collector) BarrierSampling() (simtime.Duration, bool) {
	if c == nil || c.profileOnly {
		return 0, false
	}
	if c.stream != nil {
		c.initStreams()
	}
	return c.Interval, true
}

// TickAt takes one sample at the given simulated instant. It is the
// externally driven counterpart of the self-scheduled tick; the caller
// owns the cadence (see BarrierSampling).
func (c *Collector) TickAt(now simtime.Time) {
	if c == nil {
		return
	}
	c.sample(now)
}

func (c *Collector) tick() {
	c.sample(c.q.Now())
	// Re-arm only while the simulation has work left: when this tick is
	// dispatched the queue holds exactly the other pending events.
	if c.q.Len() > 0 {
		c.q.After(c.Interval, c.tick)
	}
}

func (c *Collector) sample(now simtime.Time) {
	c.ticks++
	t := c.Timeline
	t.Times = append(t.Times, now)
	for _, p := range c.probes {
		v := p.fn()
		s := p.series
		s.Values = append(s.Values, v)
		s.n++
		s.last = v
		if s.n == 1 || v > s.max {
			s.max = v
		}
	}
	if c.stream != nil {
		c.emit(now)
		if len(t.Times) > c.window {
			// Evict the oldest sample: shift in place so the backing
			// arrays stop growing once the window fills.
			n := copy(t.Times, t.Times[1:])
			t.Times = t.Times[:n]
			for _, p := range c.probes {
				vs := p.series.Values
				m := copy(vs, vs[1:])
				p.series.Values = vs[:m]
			}
			t.Dropped++
		}
	}
}

// RateProbe adapts a cumulative counter read into a per-second rate
// over the sampling window: each tick reports (current-previous)
// divided by the interval. The closure is stateful; register the
// returned probe exactly once.
func RateProbe(interval simtime.Duration, cum func() int64) func() float64 {
	var last int64
	secs := interval.Seconds()
	return func() float64 {
		v := cum()
		d := v - last
		last = v
		return float64(d) / secs
	}
}

// RatioProbe adapts two cumulative counters into a windowed ratio:
// each tick reports Δnum/Δden over the sampling window (0 when the
// denominator did not move). Used for windowed cache hit rates.
func RatioProbe(num, den func() int64) func() float64 {
	var lastNum, lastDen int64
	return func() float64 {
		n, d := num(), den()
		dn, dd := n-lastNum, d-lastDen
		lastNum, lastDen = n, d
		if dd == 0 {
			return 0
		}
		return float64(dn) / float64(dd)
	}
}
