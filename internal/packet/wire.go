package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"switchv2p/internal/netaddr"
)

// Wire format. The simulator exchanges packets as structs for speed, but
// the header stack is fully serializable so that byte accounting is honest
// and the format is testable. Layout (big-endian, mirroring IP-in-IP with
// Geneve-style options):
//
//	outer (20B):  srcPIP(4) dstPIP(4) kind(1) flags(1) payloadLen(2) hops(4) pad(4)
//	tunnel (8B):  optCount(1) vni(3) hitSwitch(4)
//	option (12B): type(1) pad(3) wordA(4) wordB(4)    — one per present option
//	inner (20B):  srcVIP(4) dstVIP(4) flowID(8) seq(4)    — tenant traffic only
//	tcp (20B):    ackNo(4) pad(16)                        — tenant traffic only

// Option type codes.
const (
	optSpill       = 1
	optPromote     = 2
	optMisdelivery = 3
	optCarried     = 4
)

// Flag bits in the outer header.
const (
	flagResolved  = 1 << 0
	flagFin       = 1 << 1
	flagFirstSent = 1 << 2
	flagRetx      = 1 << 3
)

var errShort = errors.New("packet: truncated wire data")

type wireOption struct {
	typ  byte
	a, b uint32
}

func (p *Packet) presentOptions() []wireOption {
	var opts []wireOption
	if p.Spill.IsValid() {
		opts = append(opts, wireOption{optSpill, uint32(p.Spill.VIP), uint32(p.Spill.PIP)})
	}
	if p.Promote.IsValid() {
		opts = append(opts, wireOption{optPromote, uint32(p.Promote.VIP), uint32(p.Promote.PIP)})
	}
	if p.Misdelivered {
		opts = append(opts, wireOption{optMisdelivery, uint32(p.StalePIP), 0})
	}
	if p.Kind == Learning || p.Kind == Invalidation {
		opts = append(opts, wireOption{optCarried, uint32(p.Carried.VIP), uint32(p.Carried.PIP)})
	}
	return opts
}

// Marshal serializes the packet's header stack plus a zero-filled payload
// into a fresh buffer of exactly p.Size() bytes.
func (p *Packet) Marshal() []byte {
	be := binary.BigEndian
	buf := make([]byte, p.Size())
	b := buf

	// Outer header.
	be.PutUint32(b[0:], uint32(p.SrcPIP))
	be.PutUint32(b[4:], uint32(p.DstPIP))
	b[8] = byte(p.Kind)
	var flags byte
	if p.Resolved {
		flags |= flagResolved
	}
	if p.Fin {
		flags |= flagFin
	}
	if p.FirstSent {
		flags |= flagFirstSent
	}
	if p.Retx {
		flags |= flagRetx
	}
	b[9] = flags
	be.PutUint16(b[10:], uint16(p.Payload))
	be.PutUint32(b[12:], uint32(p.Hops))
	b = b[OuterIPBytes:]

	// Tunnel base. The VNI occupies 24 bits, as in Geneve.
	opts := p.presentOptions()
	b[0] = byte(len(opts))
	b[1] = byte(p.VNI >> 16)
	b[2] = byte(p.VNI >> 8)
	b[3] = byte(p.VNI)
	be.PutUint32(b[4:], uint32(p.HitSwitch))
	b = b[TunnelBaseBytes:]

	// Options.
	for _, o := range opts {
		b[0] = o.typ
		be.PutUint32(b[4:], o.a)
		be.PutUint32(b[8:], o.b)
		b = b[OptionBytes:]
	}

	// Inner header + transport for tenant traffic. Control packets carry
	// their mapping as an option, so nothing further.
	switch p.Kind {
	case Data, Ack:
		be.PutUint32(b[0:], uint32(p.SrcVIP))
		be.PutUint32(b[4:], uint32(p.DstVIP))
		be.PutUint64(b[8:], p.FlowID)
		be.PutUint32(b[16:], uint32(p.Seq))
		b = b[InnerIPBytes:]
		be.PutUint32(b[0:], uint32(p.AckNo))
	}
	return buf
}

// Unmarshal parses a buffer produced by Marshal back into a packet.
// Bookkeeping fields that are not on the wire (UID, SentAt) are zero.
func Unmarshal(buf []byte) (*Packet, error) {
	be := binary.BigEndian
	if len(buf) < OuterIPBytes+TunnelBaseBytes {
		return nil, errShort
	}
	p := &Packet{HitSwitch: NoSwitch}
	b := buf
	p.SrcPIP = netaddr.PIP(be.Uint32(b[0:]))
	p.DstPIP = netaddr.PIP(be.Uint32(b[4:]))
	p.Kind = Kind(b[8])
	flags := b[9]
	p.Resolved = flags&flagResolved != 0
	p.Fin = flags&flagFin != 0
	p.FirstSent = flags&flagFirstSent != 0
	p.Retx = flags&flagRetx != 0
	p.Payload = int(be.Uint16(b[10:]))
	p.Hops = int(be.Uint32(b[12:]))
	b = b[OuterIPBytes:]

	optCount := int(b[0])
	p.VNI = uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	p.HitSwitch = int32(be.Uint32(b[4:]))
	b = b[TunnelBaseBytes:]

	if len(b) < optCount*OptionBytes {
		return nil, errShort
	}
	for i := 0; i < optCount; i++ {
		typ := b[0]
		a := be.Uint32(b[4:])
		v := be.Uint32(b[8:])
		switch typ {
		case optSpill:
			p.Spill = netaddr.Mapping{VIP: netaddr.VIP(a), PIP: netaddr.PIP(v)}
		case optPromote:
			p.Promote = netaddr.Mapping{VIP: netaddr.VIP(a), PIP: netaddr.PIP(v)}
		case optMisdelivery:
			p.Misdelivered = true
			p.StalePIP = netaddr.PIP(a)
		case optCarried:
			p.Carried = netaddr.Mapping{VIP: netaddr.VIP(a), PIP: netaddr.PIP(v)}
		default:
			return nil, fmt.Errorf("packet: unknown option type %d", typ)
		}
		b = b[OptionBytes:]
	}

	switch p.Kind {
	case Data, Ack:
		if len(b) < InnerIPBytes+TCPHeaderBytes {
			return nil, errShort
		}
		p.SrcVIP = netaddr.VIP(be.Uint32(b[0:]))
		p.DstVIP = netaddr.VIP(be.Uint32(b[4:]))
		p.FlowID = be.Uint64(b[8:])
		p.Seq = int(be.Uint32(b[16:]))
		b = b[InnerIPBytes:]
		p.AckNo = int(be.Uint32(b[0:]))
	}
	return p, nil
}
