package packet

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"switchv2p/internal/netaddr"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Data: "data", Ack: "ack", Learning: "learning", Invalidation: "invalidation", Kind(9): "kind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestNewDataDefaults(t *testing.T) {
	p := NewData(7, 3, 1000, 10, 20, 30)
	if p.Kind != Data || p.Resolved {
		t.Fatalf("NewData: kind=%v resolved=%v", p.Kind, p.Resolved)
	}
	if p.HitSwitch != NoSwitch {
		t.Fatalf("HitSwitch = %d, want NoSwitch", p.HitSwitch)
	}
	if p.Payload != 1000 || p.Seq != 3 || p.FlowID != 7 {
		t.Fatalf("fields wrong: %+v", p)
	}
}

func TestSizeAccounting(t *testing.T) {
	p := NewData(1, 0, 1000, 10, 20, 30)
	base := OuterIPBytes + TunnelBaseBytes + InnerIPBytes + TCPHeaderBytes
	if got := p.Size(); got != base+1000 {
		t.Fatalf("Size = %d, want %d", got, base+1000)
	}
	p.Spill = netaddr.Mapping{VIP: 1, PIP: 2}
	if got := p.Size(); got != base+1000+OptionBytes {
		t.Fatalf("Size with spill = %d, want %d", got, base+1000+OptionBytes)
	}
	p.Promote = netaddr.Mapping{VIP: 3, PIP: 4}
	p.Misdelivered = true
	p.HitSwitch = 12
	want := base + 1000 + 4*OptionBytes
	if got := p.Size(); got != want {
		t.Fatalf("Size with all options = %d, want %d", got, want)
	}
}

func TestControlPacketSizes(t *testing.T) {
	lp := NewLearning(netaddr.Mapping{VIP: 1, PIP: 2}, 10, 20)
	want := OuterIPBytes + TunnelBaseBytes + OptionBytes
	if got := lp.Size(); got != want {
		t.Fatalf("learning packet size = %d, want %d", got, want)
	}
	ip := NewInvalidation(1, 2, 10, 20)
	if got := ip.Size(); got != want {
		t.Fatalf("invalidation packet size = %d, want %d", got, want)
	}
	if !lp.Resolved || !ip.Resolved {
		t.Fatalf("control packets must be resolved (they never visit the gateway)")
	}
}

func TestMaxPayloadFitsMTU(t *testing.T) {
	p := NewData(1, 0, MaxPayload, 10, 20, 30)
	p.Spill = netaddr.Mapping{VIP: 1, PIP: 2}
	p.Promote = netaddr.Mapping{VIP: 3, PIP: 4}
	p.Misdelivered = true
	if p.Size() > MTU {
		t.Fatalf("max-payload packet with all options exceeds MTU: %d > %d", p.Size(), MTU)
	}
}

func TestClone(t *testing.T) {
	p := NewData(1, 0, 100, 10, 20, 30)
	p.Spill = netaddr.Mapping{VIP: 5, PIP: 6}
	q := p.Clone()
	q.Seq = 99
	q.Spill.VIP = 7
	if p.Seq != 0 || p.Spill.VIP != 5 {
		t.Fatalf("Clone aliases original: %+v", p)
	}
}

func roundTrip(t *testing.T, p *Packet) *Packet {
	t.Helper()
	buf := p.Marshal()
	if len(buf) != p.Size() {
		t.Fatalf("Marshal length %d != Size %d", len(buf), p.Size())
	}
	q, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	return q
}

func TestWireRoundTripData(t *testing.T) {
	p := NewData(77, 5, 900, 11, 22, 33)
	p.DstPIP = 44
	p.Resolved = true
	p.Fin = true
	p.FirstSent = true
	p.Hops = 6
	p.HitSwitch = 12
	p.Spill = netaddr.Mapping{VIP: 1, PIP: 2}
	p.Promote = netaddr.Mapping{VIP: 3, PIP: 4}
	p.Misdelivered = true
	p.StalePIP = 55
	q := roundTrip(t, p)
	p.UID, p.SentAt = 0, 0 // not on the wire
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", q, p)
	}
}

func TestWireRoundTripControl(t *testing.T) {
	for _, p := range []*Packet{
		NewLearning(netaddr.Mapping{VIP: 9, PIP: 8}, 1, 2),
		NewInvalidation(9, 8, 1, 2),
	} {
		q := roundTrip(t, p)
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("control round trip mismatch:\n got %+v\nwant %+v", q, p)
		}
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	p := NewData(1, 0, 100, 10, 20, 30)
	buf := p.Marshal()
	for _, n := range []int{0, 10, OuterIPBytes, OuterIPBytes + TunnelBaseBytes + 5} {
		if n >= len(buf) {
			continue
		}
		if _, err := Unmarshal(buf[:n]); err == nil {
			t.Fatalf("Unmarshal(%d bytes) succeeded, want error", n)
		}
	}
}

func TestUnmarshalUnknownOption(t *testing.T) {
	p := NewLearning(netaddr.Mapping{VIP: 1, PIP: 2}, 3, 4)
	buf := p.Marshal()
	buf[OuterIPBytes+TunnelBaseBytes] = 99 // corrupt the option type
	if _, err := Unmarshal(buf); err == nil {
		t.Fatalf("expected unknown-option error")
	}
}

func TestWireRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewData(rng.Uint64(), rng.Intn(1<<16), rng.Intn(MaxPayload+1),
			netaddr.VIP(rng.Uint32()|1), netaddr.VIP(rng.Uint32()|1), netaddr.PIP(rng.Uint32()|1))
		p.DstPIP = netaddr.PIP(rng.Uint32() | 1)
		p.Resolved = rng.Intn(2) == 0
		p.AckNo = rng.Intn(1 << 16)
		if rng.Intn(2) == 0 {
			p.Spill = netaddr.Mapping{VIP: netaddr.VIP(rng.Uint32() | 1), PIP: netaddr.PIP(rng.Uint32() | 1)}
		}
		if rng.Intn(2) == 0 {
			p.HitSwitch = int32(rng.Intn(1000))
		}
		q := roundTrip(t, p)
		return reflect.DeepEqual(p, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStringContainsEssentials(t *testing.T) {
	p := NewData(7, 3, 100, 10, 20, 30)
	s := p.String()
	if s == "" {
		t.Fatal("empty String()")
	}
	for _, want := range []string{"data", "flow=7", "seq=3", "unresolved"} {
		if !contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func BenchmarkMarshal(b *testing.B) {
	p := NewData(1, 0, 1000, 10, 20, 30)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Marshal()
	}
}
