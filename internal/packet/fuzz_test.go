package packet

import (
	"testing"

	"switchv2p/internal/netaddr"
)

// FuzzUnmarshal: arbitrary bytes must never panic the wire parser; a
// successful parse must re-marshal without panicking.
func FuzzUnmarshal(f *testing.F) {
	// Seed corpus: valid packets of every kind, plus mutations.
	seeds := []*Packet{
		NewData(1, 0, 100, 10, 20, 30),
		NewAck(2, 7, 11, 21, 31),
		NewLearning(netaddr.Mapping{VIP: 1, PIP: 2}, 3, 4),
		NewInvalidation(5, 6, 7, 8),
	}
	seeds[0].Spill = netaddr.Mapping{VIP: 9, PIP: 10}
	seeds[0].Misdelivered = true
	seeds[0].StalePIP = 11
	for _, p := range seeds {
		f.Add(p.Marshal())
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Whatever parsed must serialize.
		_ = p.Marshal()
		_ = p.String()
		if p.Size() < 0 {
			t.Fatalf("negative size from parsed packet: %+v", p)
		}
	})
}

// FuzzHashVIP: the cache index hash must be total and deterministic.
func FuzzHashVIP(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(0xffffffff))
	f.Fuzz(func(t *testing.T, v uint32) {
		if netaddr.HashVIP(netaddr.VIP(v)) != netaddr.HashVIP(netaddr.VIP(v)) {
			t.Fatal("non-deterministic hash")
		}
	})
}
