package ilp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func knapsack(values, weights []float64, capacity float64) *Problem {
	terms := make([]Term, len(weights))
	for i, w := range weights {
		terms[i] = Term{Var: i, Coeff: w}
	}
	return &Problem{
		Obj:         values,
		Constraints: []Constraint{{Terms: terms, Bound: capacity}},
	}
}

func TestTrivialAllFit(t *testing.T) {
	p := knapsack([]float64{1, 2, 3}, []float64{1, 1, 1}, 10)
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Optimal || s.Value != 6 {
		t.Fatalf("got %+v, want value 6 optimal", s)
	}
}

func TestKnapsackKnownOptimum(t *testing.T) {
	// Classic: values 60,100,120 weights 10,20,30 cap 50 -> 220.
	p := knapsack([]float64{60, 100, 120}, []float64{10, 20, 30}, 50)
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Value != 220 || !s.Optimal {
		t.Fatalf("got %+v, want 220", s)
	}
	if s.X[0] || !s.X[1] || !s.X[2] {
		t.Fatalf("wrong selection %v", s.X)
	}
	if !p.Feasible(s.X) {
		t.Fatal("infeasible solution")
	}
}

func TestGreedySuboptimalCase(t *testing.T) {
	// Greedy (by objective) takes the big item and misses the optimum.
	p := knapsack([]float64{10, 6, 6}, []float64{10, 5, 5}, 10)
	g := Greedy(p)
	if g.Value != 10 {
		t.Fatalf("greedy value = %v, want 10", g.Value)
	}
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Value != 12 || !s.Optimal {
		t.Fatalf("exact value = %+v, want 12", s)
	}
}

func TestMultipleConstraints(t *testing.T) {
	// Two capacity-1 "switches"; three mappings each usable in one switch;
	// var 2 conflicts with var 0 in constraint 0 and with var 1 in
	// constraint 1.
	p := &Problem{
		Obj: []float64{5, 4, 8},
		Constraints: []Constraint{
			{Terms: []Term{{0, 1}, {2, 1}}, Bound: 1},
			{Terms: []Term{{1, 1}, {2, 1}}, Bound: 1},
		},
	}
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Either {0,1} for 9 or {2} for 8 -> optimum 9.
	if s.Value != 9 || !s.Optimal {
		t.Fatalf("got %+v, want 9", s)
	}
}

func TestNegativeObjectiveNeverSelected(t *testing.T) {
	p := knapsack([]float64{-5, 3}, []float64{1, 1}, 10)
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.X[0] {
		t.Fatal("selected a negative-value variable")
	}
	if s.Value != 3 {
		t.Fatalf("value = %v", s.Value)
	}
}

func TestZeroCapacity(t *testing.T) {
	p := knapsack([]float64{5, 3}, []float64{1, 1}, 0)
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Value != 0 || s.X[0] || s.X[1] {
		t.Fatalf("got %+v, want empty", s)
	}
}

func TestValidation(t *testing.T) {
	p := &Problem{Obj: []float64{1}, Constraints: []Constraint{{Terms: []Term{{5, 1}}, Bound: 1}}}
	if _, err := Solve(p, Options{}); err == nil {
		t.Fatal("out-of-range variable accepted")
	}
	p = &Problem{Obj: []float64{1}, Constraints: []Constraint{{Terms: []Term{{0, -1}}, Bound: 1}}}
	if _, err := Solve(p, Options{}); err == nil {
		t.Fatal("negative coefficient accepted")
	}
	p = &Problem{Obj: []float64{1}, Constraints: []Constraint{{Bound: -1}}}
	if _, err := Solve(p, Options{}); err == nil {
		t.Fatal("negative bound accepted")
	}
}

func TestNodeBudgetReturnsIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 40
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = float64(rng.Intn(100) + 1)
		weights[i] = float64(rng.Intn(100) + 1)
	}
	p := knapsack(values, weights, 300)
	s, err := Solve(p, Options{MaxNodes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if s.Optimal {
		t.Fatal("claimed optimality with a 10-node budget")
	}
	g := Greedy(p)
	if s.Value < g.Value {
		t.Fatalf("budgeted solve %v worse than greedy warm start %v", s.Value, g.Value)
	}
	if !p.Feasible(s.X) {
		t.Fatal("infeasible incumbent")
	}
}

// bruteForce finds the true optimum for small n.
func bruteForce(p *Problem) float64 {
	n := len(p.Obj)
	best := 0.0
	x := make([]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			x[i] = mask&(1<<i) != 0
		}
		if p.Feasible(x) {
			if v := p.Value(x); v > best {
				best = v
			}
		}
	}
	return best
}

func TestSolveMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		p := &Problem{Obj: make([]float64, n)}
		for i := range p.Obj {
			p.Obj[i] = float64(rng.Intn(21) - 5) // some negatives
		}
		nc := 1 + rng.Intn(3)
		for k := 0; k < nc; k++ {
			c := Constraint{Bound: float64(rng.Intn(20))}
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					c.Terms = append(c.Terms, Term{Var: i, Coeff: float64(rng.Intn(10))})
				}
			}
			p.Constraints = append(p.Constraints, c)
		}
		s, err := Solve(p, Options{})
		if err != nil {
			return false
		}
		want := bruteForce(p)
		return s.Optimal && s.Value == want && p.Feasible(s.X)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyAlwaysFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		p := &Problem{Obj: make([]float64, n)}
		for i := range p.Obj {
			p.Obj[i] = float64(rng.Intn(100))
		}
		for k := 0; k < 1+rng.Intn(4); k++ {
			c := Constraint{Bound: float64(rng.Intn(50))}
			for i := 0; i < n; i++ {
				c.Terms = append(c.Terms, Term{Var: i, Coeff: float64(rng.Intn(20))})
			}
			p.Constraints = append(p.Constraints, c)
		}
		g := Greedy(p)
		return p.Feasible(g.X) && g.Value == p.Value(g.X)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSolve30Vars(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	n := 30
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = float64(rng.Intn(100) + 1)
		weights[i] = float64(rng.Intn(100) + 1)
	}
	p := knapsack(values, weights, 500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
