// Package ilp solves 0-1 integer linear programs of the packing form
//
//	maximize   c·x
//	subject to Σ_i a_ki x_i ≤ b_k   for every constraint k (a_ki ≥ 0)
//	           x_i ∈ {0, 1}
//
// via branch and bound with a greedy warm start, plus a standalone lazy
// greedy solver for instances too large to solve exactly. The Controller
// baseline (Appendix A of the paper) formulates its distributed
// cache-allocation problem in this form: the paper used Z3; this package
// is the stdlib-only substitute.
package ilp

import (
	"fmt"
	"sort"
)

// Term is one coefficient of a constraint.
type Term struct {
	Var   int
	Coeff float64
}

// Constraint is Σ Terms ≤ Bound with non-negative coefficients.
type Constraint struct {
	Terms []Term
	Bound float64
}

// Problem is a packing 0-1 ILP.
type Problem struct {
	// Obj holds the objective coefficient of each variable (maximize).
	Obj []float64
	// Constraints are packing constraints with non-negative coefficients.
	Constraints []Constraint
}

// Validate checks problem well-formedness.
func (p *Problem) Validate() error {
	n := len(p.Obj)
	for k, c := range p.Constraints {
		if c.Bound < 0 {
			return fmt.Errorf("ilp: constraint %d has negative bound %v", k, c.Bound)
		}
		for _, t := range c.Terms {
			if t.Var < 0 || t.Var >= n {
				return fmt.Errorf("ilp: constraint %d references variable %d of %d", k, t.Var, n)
			}
			if t.Coeff < 0 {
				return fmt.Errorf("ilp: constraint %d has negative coefficient %v", k, t.Coeff)
			}
		}
	}
	return nil
}

// Solution is the solver output.
type Solution struct {
	X     []bool
	Value float64
	// Optimal is true when branch and bound proved optimality; false when
	// the node budget was exhausted (the best incumbent is returned).
	Optimal bool
	// Nodes is the number of search nodes explored.
	Nodes int
}

// Options tunes Solve.
type Options struct {
	// MaxNodes bounds the search; 0 means DefaultMaxNodes.
	MaxNodes int
}

// DefaultMaxNodes is the default branch-and-bound node budget.
const DefaultMaxNodes = 2_000_000

type solver struct {
	p        *Problem
	varsIn   [][]int // var -> constraint indices it appears in
	coeff    [][]float64
	order    []int // variables in decreasing objective order
	slack    []float64
	x        []bool
	best     []bool
	bestVal  float64
	suffix   []float64 // suffix[i] = Σ positive obj of order[i:]
	nodes    int
	maxNodes int
	aborted  bool
}

// Solve runs branch and bound. The incumbent starts from Greedy, so even
// an exhausted node budget returns at least the greedy solution.
func Solve(p *Problem, opts Options) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	n := len(p.Obj)
	s := &solver{
		p:        p,
		varsIn:   make([][]int, n),
		coeff:    make([][]float64, n),
		x:        make([]bool, n),
		maxNodes: opts.MaxNodes,
	}
	if s.maxNodes <= 0 {
		s.maxNodes = DefaultMaxNodes
	}
	for k, c := range p.Constraints {
		s.slack = append(s.slack, c.Bound)
		for _, t := range c.Terms {
			s.varsIn[t.Var] = append(s.varsIn[t.Var], k)
			s.coeff[t.Var] = append(s.coeff[t.Var], t.Coeff)
		}
	}
	s.order = make([]int, n)
	for i := range s.order {
		s.order[i] = i
	}
	sort.Slice(s.order, func(a, b int) bool { return p.Obj[s.order[a]] > p.Obj[s.order[b]] })
	s.suffix = make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		s.suffix[i] = s.suffix[i+1]
		if v := p.Obj[s.order[i]]; v > 0 {
			s.suffix[i] += v
		}
	}

	// Warm start.
	g := Greedy(p)
	s.best = append([]bool(nil), g.X...)
	s.bestVal = g.Value

	s.branch(0, 0)

	return Solution{
		X:       s.best,
		Value:   s.bestVal,
		Optimal: !s.aborted,
		Nodes:   s.nodes,
	}, nil
}

// fits reports whether setting variable v keeps all its constraints
// satisfied.
func (s *solver) fits(v int) bool {
	for i, k := range s.varsIn[v] {
		if s.coeff[v][i] > s.slack[k] {
			return false
		}
	}
	return true
}

func (s *solver) apply(v int, sign float64) {
	for i, k := range s.varsIn[v] {
		s.slack[k] -= sign * s.coeff[v][i]
	}
}

func (s *solver) branch(idx int, value float64) {
	if s.aborted {
		return
	}
	s.nodes++
	if s.nodes > s.maxNodes {
		s.aborted = true
		return
	}
	if value > s.bestVal {
		s.bestVal = value
		copy(s.best, s.x)
	}
	if idx >= len(s.order) {
		return
	}
	// Optimistic bound: take every remaining positive-objective variable.
	if value+s.suffix[idx] <= s.bestVal {
		return
	}
	v := s.order[idx]
	// Branch 1: include v (if it fits and helps the bound ordering).
	if s.p.Obj[v] > 0 && s.fits(v) {
		s.apply(v, 1)
		s.x[v] = true
		s.branch(idx+1, value+s.p.Obj[v])
		s.x[v] = false
		s.apply(v, -1)
	}
	// Branch 0: exclude v.
	s.branch(idx+1, value)
}

// Greedy builds a feasible solution by adding variables in decreasing
// objective order whenever they fit. For packing problems this is the
// classic maximum-coverage-style heuristic the Controller baseline uses
// when the exact search is too large.
func Greedy(p *Problem) Solution {
	n := len(p.Obj)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return p.Obj[order[a]] > p.Obj[order[b]] })
	slack := make([]float64, len(p.Constraints))
	for k, c := range p.Constraints {
		slack[k] = c.Bound
	}
	varsIn := make([][]Term, n)
	for k, c := range p.Constraints {
		for _, t := range c.Terms {
			varsIn[t.Var] = append(varsIn[t.Var], Term{Var: k, Coeff: t.Coeff})
		}
	}
	x := make([]bool, n)
	value := 0.0
	for _, v := range order {
		if p.Obj[v] <= 0 {
			break
		}
		ok := true
		for _, t := range varsIn[v] {
			if t.Coeff > slack[t.Var] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, t := range varsIn[v] {
			slack[t.Var] -= t.Coeff
		}
		x[v] = true
		value += p.Obj[v]
	}
	return Solution{X: x, Value: value, Optimal: false, Nodes: 0}
}

// Feasible reports whether assignment x satisfies every constraint.
func (p *Problem) Feasible(x []bool) bool {
	for _, c := range p.Constraints {
		sum := 0.0
		for _, t := range c.Terms {
			if x[t.Var] {
				sum += t.Coeff
			}
		}
		if sum > c.Bound+1e-9 {
			return false
		}
	}
	return true
}

// Value computes the objective of assignment x.
func (p *Problem) Value(x []bool) float64 {
	v := 0.0
	for i, xi := range x {
		if xi {
			v += p.Obj[i]
		}
	}
	return v
}
