package vnet

import (
	"fmt"

	"switchv2p/internal/netaddr"
)

// TenantID identifies a Virtual Private Cloud (VPC). Tenant 0 is the
// default tenant used by single-tenant experiments. On the wire the id
// travels as the tunnel VNI (24 bits).
type TenantID uint32

// MaxTenantID is the largest id expressible in the 24-bit VNI field.
const MaxTenantID TenantID = 1<<24 - 1

// AddVMForTenant places a new VM belonging to the given tenant.
func (n *Net) AddVMForTenant(host int32, tenant TenantID) (netaddr.VIP, error) {
	if tenant > MaxTenantID {
		return netaddr.NoVIP, fmt.Errorf("vnet: tenant %d exceeds the 24-bit VNI space", tenant)
	}
	vip := n.AddVM(host)
	if tenant != 0 {
		if n.tenantOf == nil {
			n.tenantOf = make(map[netaddr.VIP]TenantID)
		}
		n.tenantOf[vip] = tenant
	}
	return vip, nil
}

// TenantOf returns the VM's tenant (0 for the default tenant and for
// unknown VIPs).
func (n *Net) TenantOf(vip netaddr.VIP) TenantID {
	return n.tenantOf[vip]
}

// TenantVMs returns all VIPs belonging to the given tenant, in creation
// order. For tenant 0 this enumerates VMs never assigned to a tenant.
func (n *Net) TenantVMs(tenant TenantID) []netaddr.VIP {
	hosts := make([]int32, 0, len(n.vmsAt))
	for h := range n.vmsAt {
		hosts = append(hosts, h)
	}
	sortHosts(hosts)
	var out []netaddr.VIP
	for _, h := range hosts {
		for _, vip := range n.vmsAt[h] {
			if n.tenantOf[vip] == tenant {
				out = append(out, vip)
			}
		}
	}
	sortVIPs(out)
	return out
}

func sortHosts(h []int32) {
	for i := 1; i < len(h); i++ {
		for j := i; j > 0 && h[j] < h[j-1]; j-- {
			h[j], h[j-1] = h[j-1], h[j]
		}
	}
}

func sortVIPs(v []netaddr.VIP) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
