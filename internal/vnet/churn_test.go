package vnet

import (
	"testing"
)

func TestReserveThenPlace(t *testing.T) {
	n := newNet(t)
	servers := n.Topology().Servers()
	vip := n.ReserveVIP()
	if _, ok := n.Lookup(vip); ok {
		t.Fatal("reserved VIP must not resolve before placement")
	}
	v0 := n.Version
	if err := n.PlaceVM(vip, servers[3], 7); err != nil {
		t.Fatal(err)
	}
	if pip, ok := n.Lookup(vip); !ok || pip != n.Topology().Hosts[servers[3]].PIP {
		t.Fatalf("Lookup after placement = %v,%v", pip, ok)
	}
	if got := n.TenantOf(vip); got != 7 {
		t.Fatalf("TenantOf = %d, want 7", got)
	}
	if !n.HostHasVM(servers[3], vip) {
		t.Fatal("HostHasVM false after placement")
	}
	if n.Version != v0+1 {
		t.Fatalf("Version = %d, want %d", n.Version, v0+1)
	}
	// Reservations must not collide with later AddVM allocations.
	other := n.AddVM(servers[0])
	if other == vip {
		t.Fatal("AddVM reissued a reserved VIP")
	}
}

func TestPlaceVMErrors(t *testing.T) {
	n := newNet(t)
	servers := n.Topology().Servers()
	vip := n.AddVM(servers[0])
	if err := n.PlaceVM(vip, servers[1], 0); err == nil {
		t.Error("placing an already-placed VIP must fail")
	}
	gw := n.Topology().Gateways()[0]
	if err := n.PlaceVM(n.ReserveVIP(), gw, 0); err == nil {
		t.Error("placing on a gateway host must fail")
	}
	if err := n.PlaceVM(n.ReserveVIP(), servers[0], MaxTenantID+1); err == nil {
		t.Error("out-of-range tenant must fail")
	}
}

func TestRemoveVM(t *testing.T) {
	n := newNet(t)
	servers := n.Topology().Servers()
	vip, err := n.AddVMForTenant(servers[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	// Migrate first so a follow-me rule exists at the old host.
	if err := n.Migrate(vip, servers[1]); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.FollowMe(servers[0], vip); !ok {
		t.Fatal("expected follow-me rule at old host")
	}
	v0 := n.Version
	if err := n.RemoveVM(vip); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Lookup(vip); ok {
		t.Error("removed VIP still resolves")
	}
	if n.HostHasVM(servers[1], vip) {
		t.Error("removed VM still listed at its host")
	}
	if got := n.TenantOf(vip); got != 0 {
		t.Errorf("TenantOf after removal = %d, want 0", got)
	}
	if _, ok := n.FollowMe(servers[0], vip); ok {
		t.Error("follow-me rule survived removal")
	}
	if n.Version != v0+1 {
		t.Errorf("Version = %d, want %d", n.Version, v0+1)
	}
	if err := n.RemoveVM(vip); err == nil {
		t.Error("removing an unknown VIP must fail")
	}
	if n.NumVMs() != 0 {
		t.Errorf("NumVMs = %d, want 0", n.NumVMs())
	}
}
