package vnet

import (
	"fmt"

	"switchv2p/internal/netaddr"
)

// Churn operations: tenant arrival and departure at runtime. Scenario
// drivers (internal/scenario) pre-reserve VIPs while planning a long
// horizon, place them when the owning tenant "arrives" mid-run, and
// remove them again when it departs.

// ReserveVIP allocates a VIP from the pool without placing a VM: the
// address exists but resolves nowhere until PlaceVM. Reservations let a
// planner hand out stable addresses for VMs that only materialize later
// in simulated time.
func (n *Net) ReserveVIP() netaddr.VIP {
	return n.vipPool.Next()
}

// PlaceVM places a reserved VIP on the given host for the given tenant
// (0 = default tenant). It is the runtime half of ReserveVIP; unlike
// AddVM it reports errors instead of panicking because scenario drivers
// call it from scheduled events.
func (n *Net) PlaceVM(vip netaddr.VIP, host int32, tenant TenantID) error {
	if _, ok := n.hostOf[vip]; ok {
		return fmt.Errorf("vnet: VIP %v is already placed", vip)
	}
	if n.topo.Hosts[host].Gateway {
		return fmt.Errorf("vnet: cannot place VM on gateway host %d", host)
	}
	if tenant > MaxTenantID {
		return fmt.Errorf("vnet: tenant %d exceeds the 24-bit VNI space", tenant)
	}
	n.hostOf[vip] = host
	n.vmsAt[host] = append(n.vmsAt[host], vip)
	if tenant != 0 {
		if n.tenantOf == nil {
			n.tenantOf = make(map[netaddr.VIP]TenantID)
		}
		n.tenantOf[vip] = tenant
	}
	n.Version++
	return nil
}

// RemoveVM deletes the VM from the virtual network: the authoritative
// mapping disappears (gateway lookups for the VIP now fail and the
// packet is dropped, counted in GatewayUnknownVIP), its tenancy record
// is released, and any follow-me rules still pointing at the VM are
// withdrawn. In-network caches are NOT notified — stale entries age out
// or misdeliver exactly as the paper's departure analysis expects.
func (n *Net) RemoveVM(vip netaddr.VIP) error {
	host, ok := n.hostOf[vip]
	if !ok {
		return fmt.Errorf("vnet: remove of unknown VIP %v", vip)
	}
	vms := n.vmsAt[host]
	for i, v := range vms {
		if v == vip {
			vms[i] = vms[len(vms)-1]
			n.vmsAt[host] = vms[:len(vms)-1]
			break
		}
	}
	delete(n.hostOf, vip)
	delete(n.tenantOf, vip)
	// Withdraw follow-me rules for the departed VM at every prior host.
	// Indexed host loop: deterministic order, no map iteration.
	for h := int32(0); h < int32(len(n.topo.Hosts)); h++ {
		delete(n.followMe[h], vip)
	}
	n.Version++
	return nil
}
