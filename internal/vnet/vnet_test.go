package vnet

import (
	"math/rand"
	"testing"

	"switchv2p/internal/netaddr"
	"switchv2p/internal/topology"
)

func newNet(t testing.TB) *Net {
	t.Helper()
	topo, err := topology.New(topology.FT8())
	if err != nil {
		t.Fatal(err)
	}
	return New(topo)
}

func TestAddVMAndLookup(t *testing.T) {
	n := newNet(t)
	servers := n.Topology().Servers()
	vip := n.AddVM(servers[0])
	pip, ok := n.Lookup(vip)
	if !ok || pip != n.Topology().Hosts[servers[0]].PIP {
		t.Fatalf("Lookup(%v) = %v,%v", vip, pip, ok)
	}
	if h, ok := n.HostOf(vip); !ok || h != servers[0] {
		t.Fatalf("HostOf = %d,%v", h, ok)
	}
	if !n.HostHasVM(servers[0], vip) {
		t.Fatal("HostHasVM false for placed VM")
	}
	if n.HostHasVM(servers[1], vip) {
		t.Fatal("HostHasVM true on wrong host")
	}
}

func TestLookupUnknown(t *testing.T) {
	n := newNet(t)
	if _, ok := n.Lookup(netaddr.VIP(12345)); ok {
		t.Fatal("Lookup of unknown VIP succeeded")
	}
	if _, ok := n.HostOf(netaddr.VIP(12345)); ok {
		t.Fatal("HostOf of unknown VIP succeeded")
	}
}

func TestAddVMOnGatewayPanics(t *testing.T) {
	n := newNet(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic placing VM on gateway")
		}
	}()
	n.AddVM(n.Topology().Gateways()[0])
}

func TestPlaceUniform(t *testing.T) {
	n := newNet(t)
	rng := rand.New(rand.NewSource(42))
	vips := n.PlaceUniform(10240, rng)
	if len(vips) != 10240 || n.NumVMs() != 10240 {
		t.Fatalf("placed %d/%d VMs", len(vips), n.NumVMs())
	}
	// All VIPs unique.
	seen := make(map[netaddr.VIP]bool)
	for _, v := range vips {
		if seen[v] {
			t.Fatalf("duplicate VIP %v", v)
		}
		seen[v] = true
	}
	// No VM on a gateway; counts roughly uniform (128 servers, 80 each).
	total := 0
	for _, h := range n.Topology().Hosts {
		vms := n.VMsAt(h.Idx)
		total += len(vms)
		if h.Gateway && len(vms) > 0 {
			t.Fatalf("gateway host %d has VMs", h.Idx)
		}
		if !h.Gateway && (len(vms) < 30 || len(vms) > 150) {
			t.Fatalf("server %d has %d VMs, badly unbalanced", h.Idx, len(vms))
		}
	}
	if total != 10240 {
		t.Fatalf("VMsAt totals %d", total)
	}
}

func TestPlaceRoundRobin(t *testing.T) {
	n := newNet(t)
	n.PlaceRoundRobin(256) // 2 per server exactly
	for _, s := range n.Topology().Servers() {
		if got := len(n.VMsAt(s)); got != 2 {
			t.Fatalf("server %d has %d VMs, want 2", s, got)
		}
	}
}

func TestMigrate(t *testing.T) {
	n := newNet(t)
	servers := n.Topology().Servers()
	vip := n.AddVM(servers[0])
	v0 := n.Version
	if err := n.Migrate(vip, servers[5]); err != nil {
		t.Fatal(err)
	}
	if n.Version <= v0 {
		t.Fatal("Version not bumped by migration")
	}
	// Authoritative state updated.
	if pip, _ := n.Lookup(vip); pip != n.Topology().Hosts[servers[5]].PIP {
		t.Fatalf("Lookup after migrate = %v", pip)
	}
	if n.HostHasVM(servers[0], vip) || !n.HostHasVM(servers[5], vip) {
		t.Fatal("HostHasVM not updated by migration")
	}
	if len(n.VMsAt(servers[0])) != 0 || len(n.VMsAt(servers[5])) != 1 {
		t.Fatal("VMsAt not updated by migration")
	}
	// Follow-me installed at the old host only.
	if p, ok := n.FollowMe(servers[0], vip); !ok || p != n.Topology().Hosts[servers[5]].PIP {
		t.Fatalf("FollowMe = %v,%v", p, ok)
	}
	if _, ok := n.FollowMe(servers[5], vip); ok {
		t.Fatal("FollowMe present at new host")
	}
}

func TestMigrateErrors(t *testing.T) {
	n := newNet(t)
	servers := n.Topology().Servers()
	if err := n.Migrate(netaddr.VIP(999), servers[0]); err == nil {
		t.Fatal("migrating unknown VIP should fail")
	}
	vip := n.AddVM(servers[0])
	if err := n.Migrate(vip, servers[0]); err == nil {
		t.Fatal("migrating to same host should fail")
	}
	if err := n.Migrate(vip, n.Topology().Gateways()[0]); err == nil {
		t.Fatal("migrating to gateway should fail")
	}
}

func TestAllMappings(t *testing.T) {
	n := newNet(t)
	rng := rand.New(rand.NewSource(1))
	vips := n.PlaceUniform(100, rng)
	ms := n.AllMappings()
	if len(ms) != 100 {
		t.Fatalf("AllMappings = %d entries, want 100", len(ms))
	}
	byVIP := make(map[netaddr.VIP]netaddr.PIP, len(ms))
	for _, m := range ms {
		if !m.IsValid() {
			t.Fatalf("invalid mapping %v", m)
		}
		byVIP[m.VIP] = m.PIP
	}
	for _, v := range vips {
		want, _ := n.Lookup(v)
		if byVIP[v] != want {
			t.Fatalf("AllMappings[%v] = %v, want %v", v, byVIP[v], want)
		}
	}
}
