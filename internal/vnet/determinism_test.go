package vnet

import (
	"math/rand"
	"reflect"
	"testing"
)

// The snapshot accessors iterate internal maps; they must return the
// same slice contents on every call (and therefore across runs), never
// leak Go's randomized map order.

func TestAllMappingsStableOrder(t *testing.T) {
	n := newNet(t)
	rng := rand.New(rand.NewSource(7))
	n.PlaceUniform(64, rng)
	first := n.AllMappings()
	for i := 0; i < 10; i++ {
		if got := n.AllMappings(); !reflect.DeepEqual(got, first) {
			t.Fatalf("AllMappings changed between calls:\n%v\n%v", first, got)
		}
	}
	for i := 1; i < len(first); i++ {
		if first[i-1].VIP >= first[i].VIP {
			t.Fatalf("AllMappings not in VIP order at %d: %v >= %v", i, first[i-1].VIP, first[i].VIP)
		}
	}
}

func TestTenantVMsStableOrder(t *testing.T) {
	n := newNet(t)
	servers := n.Topology().Servers()
	for i := 0; i < 48; i++ {
		if _, err := n.AddVMForTenant(servers[i%len(servers)], TenantID(i%3)); err != nil {
			t.Fatal(err)
		}
	}
	for tenant := TenantID(0); tenant < 3; tenant++ {
		first := n.TenantVMs(tenant)
		if len(first) == 0 {
			t.Fatalf("tenant %d has no VMs", tenant)
		}
		for i := 0; i < 10; i++ {
			if got := n.TenantVMs(tenant); !reflect.DeepEqual(got, first) {
				t.Fatalf("TenantVMs(%d) changed between calls:\n%v\n%v", tenant, first, got)
			}
		}
		for i := 1; i < len(first); i++ {
			if first[i-1] >= first[i] {
				t.Fatalf("TenantVMs(%d) not in VIP order at %d", tenant, i)
			}
		}
	}
}
