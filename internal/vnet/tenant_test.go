package vnet

import (
	"testing"

	"switchv2p/internal/netaddr"
)

func TestTenantAssignment(t *testing.T) {
	n := newNet(t)
	servers := n.Topology().Servers()
	v1, err := n.AddVMForTenant(servers[0], 7)
	if err != nil {
		t.Fatal(err)
	}
	v2 := n.AddVM(servers[1]) // default tenant
	if got := n.TenantOf(v1); got != 7 {
		t.Fatalf("TenantOf(v1) = %d, want 7", got)
	}
	if got := n.TenantOf(v2); got != 0 {
		t.Fatalf("TenantOf(v2) = %d, want 0", got)
	}
	if got := n.TenantOf(netaddr.VIP(0xffff)); got != 0 {
		t.Fatalf("TenantOf(unknown) = %d, want 0", got)
	}
}

func TestTenantIDRange(t *testing.T) {
	n := newNet(t)
	servers := n.Topology().Servers()
	if _, err := n.AddVMForTenant(servers[0], MaxTenantID); err != nil {
		t.Fatalf("max tenant id rejected: %v", err)
	}
	if _, err := n.AddVMForTenant(servers[0], MaxTenantID+1); err == nil {
		t.Fatal("tenant id beyond 24 bits accepted")
	}
}

func TestTenantVMs(t *testing.T) {
	n := newNet(t)
	servers := n.Topology().Servers()
	var want []netaddr.VIP
	for i := 0; i < 5; i++ {
		v, err := n.AddVMForTenant(servers[i], 3)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, v)
		n.AddVM(servers[i]) // default-tenant noise
	}
	got := n.TenantVMs(3)
	if len(got) != 5 {
		t.Fatalf("TenantVMs(3) = %d VMs, want 5", len(got))
	}
	for i, v := range got {
		if v != want[i] {
			t.Fatalf("TenantVMs order: got[%d]=%v want %v", i, v, want[i])
		}
	}
	if got := n.TenantVMs(0); len(got) != 5 {
		t.Fatalf("TenantVMs(0) = %d VMs, want 5", len(got))
	}
}

func TestTenantSurvivesMigration(t *testing.T) {
	n := newNet(t)
	servers := n.Topology().Servers()
	v, err := n.AddVMForTenant(servers[0], 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Migrate(v, servers[5]); err != nil {
		t.Fatal(err)
	}
	if got := n.TenantOf(v); got != 9 {
		t.Fatalf("tenant lost on migration: %d", got)
	}
}
