// Package vnet holds the virtual network state: which VM (identified by
// its virtual IP) currently lives on which physical host, the
// authoritative V2P mapping database that translation gateways consult,
// and the follow-me forwarding rules that cover VM migrations.
package vnet

import (
	"fmt"
	"math/rand"

	"switchv2p/internal/netaddr"
	"switchv2p/internal/topology"
)

// Net is the virtual network control-plane state. It is written by a
// single party (the "network administrator": placement and migration) and
// read by gateways and hypervisors, mirroring the single-writer
// multi-reader structure the paper identifies.
type Net struct {
	topo *topology.Topology

	hostOf  map[netaddr.VIP]int32   // current host index of each VM
	vmsAt   map[int32][]netaddr.VIP // host index -> VMs placed there
	vipPool netaddr.VIPAllocator

	// followMe records, per host, the new physical location of VMs that
	// recently migrated away (Andromeda's follow-me rule): the old host
	// forwards misdelivered packets there in host-driven designs.
	followMe map[int32]map[netaddr.VIP]netaddr.PIP

	// tenantOf records VPC membership for VMs of non-default tenants
	// (§4 "Multitenancy support"); absent VIPs belong to tenant 0.
	tenantOf map[netaddr.VIP]TenantID

	// Version counts mapping updates; useful for cache-staleness tests.
	Version uint64
}

// New creates an empty virtual network over the given topology.
func New(topo *topology.Topology) *Net {
	return &Net{
		topo:     topo,
		hostOf:   make(map[netaddr.VIP]int32),
		vmsAt:    make(map[int32][]netaddr.VIP),
		followMe: make(map[int32]map[netaddr.VIP]netaddr.PIP),
	}
}

// Topology returns the underlying physical topology.
func (n *Net) Topology() *topology.Topology { return n.topo }

// AddVM places a brand-new VM on the given host and returns its VIP.
func (n *Net) AddVM(host int32) netaddr.VIP {
	if n.topo.Hosts[host].Gateway {
		panic(fmt.Sprintf("vnet: cannot place VM on gateway host %d", host))
	}
	vip := n.vipPool.Next()
	n.hostOf[vip] = host
	n.vmsAt[host] = append(n.vmsAt[host], vip)
	n.Version++
	return vip
}

// PlaceUniform creates count VMs spread uniformly at random over the
// non-gateway servers, returning their VIPs in creation order.
func (n *Net) PlaceUniform(count int, rng *rand.Rand) []netaddr.VIP {
	servers := n.topo.Servers()
	vips := make([]netaddr.VIP, count)
	for i := range vips {
		vips[i] = n.AddVM(servers[rng.Intn(len(servers))])
	}
	return vips
}

// PlaceRoundRobin creates count VMs spread evenly (deterministically)
// over the servers: VM i goes to server i mod #servers.
func (n *Net) PlaceRoundRobin(count int) []netaddr.VIP {
	servers := n.topo.Servers()
	vips := make([]netaddr.VIP, count)
	for i := range vips {
		vips[i] = n.AddVM(servers[i%len(servers)])
	}
	return vips
}

// Lookup is the authoritative translation gateways use: the current
// physical address of the VM. ok is false for unknown VIPs.
func (n *Net) Lookup(vip netaddr.VIP) (netaddr.PIP, bool) {
	h, ok := n.hostOf[vip]
	if !ok {
		return netaddr.NoPIP, false
	}
	return n.topo.Hosts[h].PIP, true
}

// HostOf returns the host index currently running the VM.
func (n *Net) HostOf(vip netaddr.VIP) (int32, bool) {
	h, ok := n.hostOf[vip]
	return h, ok
}

// HostHasVM reports whether the VM currently runs on the given host; this
// is the hypervisor's local-delivery check.
func (n *Net) HostHasVM(host int32, vip netaddr.VIP) bool {
	h, ok := n.hostOf[vip]
	return ok && h == host
}

// VMsAt returns the VMs currently placed on a host.
func (n *Net) VMsAt(host int32) []netaddr.VIP { return n.vmsAt[host] }

// NumVMs returns the number of placed VMs.
func (n *Net) NumVMs() int { return len(n.hostOf) }

// Migrate moves the VM to a new host: the authoritative database is
// updated immediately (gateways see the new location) and a follow-me
// rule is installed at the old host so that host-driven designs can
// re-forward misdelivered packets.
func (n *Net) Migrate(vip netaddr.VIP, newHost int32) error {
	old, ok := n.hostOf[vip]
	if !ok {
		return fmt.Errorf("vnet: migrate of unknown VIP %v", vip)
	}
	if n.topo.Hosts[newHost].Gateway {
		return fmt.Errorf("vnet: cannot migrate VM to gateway host %d", newHost)
	}
	if old == newHost {
		return fmt.Errorf("vnet: VIP %v already on host %d", vip, newHost)
	}
	// Remove from the old host's list.
	vms := n.vmsAt[old]
	for i, v := range vms {
		if v == vip {
			vms[i] = vms[len(vms)-1]
			n.vmsAt[old] = vms[:len(vms)-1]
			break
		}
	}
	n.hostOf[vip] = newHost
	n.vmsAt[newHost] = append(n.vmsAt[newHost], vip)
	fm := n.followMe[old]
	if fm == nil {
		fm = make(map[netaddr.VIP]netaddr.PIP)
		n.followMe[old] = fm
	}
	fm[vip] = n.topo.Hosts[newHost].PIP
	n.Version++
	return nil
}

// FollowMe returns the follow-me target the old host knows for a departed
// VM, if any.
func (n *Net) FollowMe(oldHost int32, vip netaddr.VIP) (netaddr.PIP, bool) {
	p, ok := n.followMe[oldHost][vip]
	return p, ok
}

// AllMappings returns a snapshot of every VIP->PIP mapping in VIP
// order; Direct-style host-driven schemes preprogram hosts from this.
func (n *Net) AllMappings() []netaddr.Mapping {
	vips := make([]netaddr.VIP, 0, len(n.hostOf))
	for vip := range n.hostOf {
		vips = append(vips, vip)
	}
	sortVIPs(vips)
	out := make([]netaddr.Mapping, 0, len(vips))
	for _, vip := range vips {
		out = append(out, netaddr.Mapping{VIP: vip, PIP: n.topo.Hosts[n.hostOf[vip]].PIP})
	}
	return out
}
