package simnet

import (
	"switchv2p/internal/packet"
	"switchv2p/internal/topology"
)

// Scheme is the pluggable V2P translation mechanism under evaluation.
// The engine owns packet movement (links, queues, ECMP routing, gateway
// processing, local delivery); the scheme owns every translation-related
// decision: what the sender writes into the outer header, what each
// switch does with a passing packet, and how a host reacts to a
// misdelivered packet.
//
// SwitchV2P (internal/core) and all the paper's baselines
// (internal/baselines) implement this interface.
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string

	// SenderResolve runs on the sending host just before a packet enters
	// the network. It must set p.DstPIP — either the destination's true
	// physical address (p.Resolved = true, host-driven designs) or a
	// translation gateway (p.Resolved = false, gateway-driven designs).
	// Leaving p.DstPIP unset routes the packet to the sender's ToR, which
	// must then consume or resolve it (Bluebird-style designs).
	// Returning false holds the packet: the scheme has taken ownership
	// and must re-emit it later via e.Resend (e.g. OnDemand's
	// miss-penalty stall while the mapping is fetched).
	SenderResolve(e *Engine, host int32, p *packet.Packet) bool

	// SwitchArrive runs when switch sw receives p from neighbor `from`
	// (a host or switch NodeRef). The scheme may look up and rewrite the
	// outer destination, learn mappings, attach or strip option TLVs, and
	// inject new packets via e.InjectFromSwitch. Returning false consumes
	// the packet (it is not forwarded further).
	SwitchArrive(e *Engine, sw int32, from topology.NodeRef, p *packet.Packet) bool

	// HostMisdeliver runs on a host that received a packet whose
	// destination VM is not local (after the hypervisor's processing
	// penalty). The scheme must re-forward the packet — typically to a
	// gateway (gateway-driven) or straight to the VM's new host via a
	// follow-me rule (host-driven).
	HostMisdeliver(e *Engine, host int32, p *packet.Packet)
}

// CacheFlusher is the fault-recovery hook: the fault injector
// (internal/faults) models the state loss of a switch failure through
// it — a recovered switch restarts with a cold cache and must re-learn
// from passing traffic. Every Scheme must implement it (the
// schemecomplete analyzer enforces this): schemes whose switches hold
// per-switch translation state clear it here, and schemes without such
// state (NoCache, OnDemand, Direct) implement an explicit no-op, so
// "nothing to flush" is a reviewed statement rather than an accident
// of a missing method.
type CacheFlusher interface {
	// FlushCache discards every mapping (and any per-switch protocol
	// state) held by switch sw.
	FlushCache(sw int32)
}
