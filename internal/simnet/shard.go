package simnet

// Sharded deterministic parallel engine.
//
// The fat-tree is partitioned into domains: one per pod (the pod's
// switches and every host under them) plus one per core switch. Every
// domain owns an eventq.Queue, and all simulation state a domain's
// events touch — its links' serializers, its switches' buffer bytes and
// per-switch counters, its hosts' flow endpoints, its slice of the
// scheme's per-shard stats — is written only by that domain. Domains are
// fixed by the topology, NOT by the worker count: a run with 8 worker
// goroutines and a run with 1 execute the same per-domain event
// sequences, which is what makes same-seed results byte-identical at
// any -shards value.
//
// Synchronization is conservative (no rollback). All links share the
// topology's LinkDelay, so a packet crossing a domain boundary cannot
// arrive earlier than one LinkDelay after its last bit left the egress
// serializer. That propagation delay is the lookahead W: in each round
// the engine computes T = min over domains of the earliest pending
// event, then every domain dispatches its events in [T, T+W) in
// parallel with no communication at all. Packets that finish
// serializing on a boundary link during the window are posted to a
// per-(source domain, destination domain) mailbox; at the barrier the
// mailboxes are drained in fixed (src, dst) order into the destination
// queues.
//
// Determinism across modes does not depend on that drain order, because
// every cross-domain arrival carries an explicit tie-break key assigned
// at post time: eventq.CrossKeyBase | (src+1)<<40 | per-pair emission
// counter. Keys sort after every same-instant local event and order
// cross arrivals by (source domain, emission order), so the dispatch
// order at the destination is a pure function of event content — the
// same whether the record was inserted eagerly (the serial oracle,
// Engine.ShardOracle) or in a batch at a barrier (the windowed parallel
// loop).
//
// Everything that must observe or mutate more than one domain runs
// single-threaded at the barrier: counter merging (add-and-zero of each
// view's scalar Counters into the root), the scheme's SyncShards hook,
// fault application (Engine.AtBarrier), and telemetry sampling
// (Engine.SetBarrierSampler). Windows are additionally capped at the
// next fault instant and the next sampling instant, so faults apply and
// samples are taken at exactly the same simulated instants — relative
// to the event stream — as on the serial engine.

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"switchv2p/internal/eventq"
	"switchv2p/internal/packet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/telemetry"
)

// ShardAware is implemented by schemes that keep per-shard mutable
// state so they can run on the sharded engine. SetShardSlots(n) is
// called once by EnableSharding with the domain count; the scheme must
// from then on route hot-path mutations through the slot returned by
// Engine.ShardSlot on the engine value it was handed. SyncShards runs
// single-threaded at every barrier and folds the per-slot deltas into
// the scheme's aggregate state.
//
// Schemes without per-shard state (stateless baselines) simply do not
// implement the interface; schemes with shard-unsafe global state must
// not be run sharded at all (the harness keeps the audited whitelist).
type ShardAware interface {
	SetShardSlots(n int)
	SyncShards()
}

// mailbox accumulates one window's packet handoffs from one source
// domain to one destination domain. nextKey is the per-pair emission
// counter behind the deterministic cross-arrival tie-break keys.
type mailbox struct {
	recs    []mailRec
	nextKey uint64
}

type mailRec struct {
	at  simtime.Time
	key uint64
	l   *link
	p   *packet.Packet
}

type barrierOp struct {
	at simtime.Time
	fn func()
}

// sharding is the root engine's shard-coordination state. Fields fall
// into three ownership classes: immutable after EnableSharding (nDom,
// domOfSw, domOfHost, qs, views, lookahead), written only between
// windows by the barrier thread (now, barrier, sampler state, mail
// drain side), and written during windows under the claim protocol
// (each mail[src] row by src's worker; each qs[d]/domEvents[d] by the
// worker that claimed domain d). The shardowner lint pass enforces that
// functions outside this file's barrier/mailbox code do not reach into
// these fields.
type sharding struct {
	root      *Engine
	views     []*Engine
	qs        []*eventq.Queue
	domOfSw   []int32
	domOfHost []int32
	nDom      int
	workers   int
	oracle    bool

	lookahead simtime.Duration
	now       simtime.Time // barrier clock: start of the current window

	mail    [][]mailbox // [srcDom][dstDom]
	barrier []barrierOp // pending AtBarrier ops, time-ordered

	aware ShardAware // scheme barrier hook, nil for stateless schemes

	sampler  func(simtime.Time)
	sampleIv simtime.Duration
	nextTick simtime.Time

	domEvents []int64 // events dispatched per domain, cumulative

	// Worker-pool plumbing, valid only inside runWindow: claim is the
	// atomic next-domain counter, windowEnd the current window's
	// exclusive bound, wg the window barrier.
	claim     int32
	windowEnd simtime.Time
	wg        sync.WaitGroup
}

// EnableSharding converts the engine to the sharded deterministic
// parallel mode with the given number of worker goroutines (values < 1
// are treated as 1). The domain partition is fixed by the topology —
// one domain per pod plus one per core switch — so results are
// byte-identical at any worker count; workers only decide how domains
// are spread over goroutines each window.
//
// The conversion is one-way: the root event queue is frozen (stray
// schedulers panic loudly instead of racing), and per-domain engine
// views take over at the first Run. Call it after New and before any
// flows are scheduled; callers that schedule host-side events must use
// HostAt/HostAfter, and barrier-side tools AtBarrier/SetBarrierSampler.
//
//v2plint:shardbarrier setup code: runs once, single-threaded, before any worker exists
func (e *Engine) EnableSharding(workers int) {
	if e.dom >= 0 {
		panic("simnet: EnableSharding called on a shard view")
	}
	if workers < 1 {
		workers = 1
	}
	if e.shard != nil {
		e.shard.workers = workers
		return
	}
	if e.Topo.Cfg.LinkDelay <= 0 {
		panic("simnet: sharded engine requires a positive topology LinkDelay " +
			"(the link propagation delay is the conservative lookahead)")
	}
	nDom := e.Topo.Cfg.Pods
	domOfSw := make([]int32, len(e.Topo.Switches))
	for i := range e.Topo.Switches {
		if pod := e.Topo.Switches[i].Pod; pod >= 0 {
			domOfSw[i] = int32(pod)
		} else {
			// Core switches get a domain each, in switch-index order.
			domOfSw[i] = int32(nDom)
			nDom++
		}
	}
	domOfHost := make([]int32, len(e.Topo.Hosts))
	for i := range e.Topo.Hosts {
		domOfHost[i] = domOfSw[e.Topo.Hosts[i].ToR]
	}
	sh := &sharding{
		root:      e,
		nDom:      nDom,
		workers:   workers,
		domOfSw:   domOfSw,
		domOfHost: domOfHost,
		lookahead: e.Topo.Cfg.LinkDelay,
	}
	sh.qs = make([]*eventq.Queue, nDom)
	for i := range sh.qs {
		sh.qs[i] = &eventq.Queue{}
	}
	sh.mail = make([][]mailbox, nDom)
	for i := range sh.mail {
		sh.mail[i] = make([]mailbox, nDom)
	}
	sh.domEvents = make([]int64, nDom)
	if sa, ok := e.Scheme.(ShardAware); ok {
		sa.SetShardSlots(nDom)
		sh.aware = sa
	}
	e.shard = sh
	e.Q.Freeze("simnet: the root event queue is frozen in sharded mode; " +
		"schedule host events via HostAt/HostAfter and barrier work via " +
		"AtBarrier, or run this scheme/tool on the serial engine")
}

// Sharded reports whether EnableSharding has run on this engine.
func (e *Engine) Sharded() bool { return e.shard != nil }

// ShardDomains returns the number of shard domains (pods + core
// switches), or 0 on a serial engine.
//
//v2plint:shardbarrier reads a field that is immutable after EnableSharding
func (e *Engine) ShardDomains() int {
	if e.shard == nil {
		return 0
	}
	return e.shard.nDom
}

// ShardSlot returns the per-shard slot index a ShardAware scheme must
// use for hot-path stat mutations on this engine value: the domain
// index on a shard view, 0 on a serial engine or the root.
func (e *Engine) ShardSlot() int {
	if e.dom >= 0 {
		return int(e.dom)
	}
	return 0
}

// hostQ returns the event queue that owns the given host: the domain
// queue when sharded, the root queue otherwise. Called through the
// root engine by the transport layer; on a shard view it returns the
// view's own queue (the view IS the host's owner — transport callbacks
// run there).
//
//v2plint:shardbarrier reads only the immutable domain map and queue table; the returned queue is the caller's own domain
func (e *Engine) hostQ(host int32) *eventq.Queue {
	if sh := e.shard; sh != nil && e.dom < 0 {
		return sh.qs[sh.domOfHost[host]]
	}
	return e.Q
}

// HostNow returns the current simulated time at the given host: its
// domain queue's clock when sharded, the global clock otherwise. Use it
// (instead of Now) for any timestamp taken on a host's behalf.
//
//v2plint:hotpath
func (e *Engine) HostNow(host int32) simtime.Time { return e.hostQ(host).Now() }

// HostAt schedules fn at instant t on the queue that owns the given
// host. It is the sharded-safe replacement for Q.At in host-side code
// (transport timers, flow starts); on a serial engine it is exactly
// Q.At.
func (e *Engine) HostAt(host int32, t simtime.Time, fn func()) { e.hostQ(host).At(t, fn) }

// HostAfter schedules fn d after the host's current instant (see
// HostAt).
func (e *Engine) HostAfter(host int32, d simtime.Duration, fn func()) {
	q := e.hostQ(host)
	q.At(q.Now().Add(d), fn)
}

// viewOf returns the engine view owning the given host. Only valid
// once views exist (mid-run).
//
//v2plint:shardbarrier reads only the immutable domain map and view table; the returned view is the packet's new owner
func (e *Engine) viewOf(host int32) *Engine {
	sh := e.shard
	return sh.views[sh.domOfHost[host]]
}

// AtBarrier schedules fn to run single-threaded at simulated time t,
// outside any shard window — the scheduling point for operations that
// touch cross-domain state, such as fault application. On a serial
// engine it is an ordinary queue event. fn runs after every event
// earlier than t and before any event at t or later, in both modes.
//
//v2plint:shardbarrier appends to the barrier schedule from setup/barrier context only
func (e *Engine) AtBarrier(t simtime.Time, fn func()) {
	sh := e.shard
	if sh == nil {
		e.Q.At(t, fn)
		return
	}
	// Insertion sort, stable for equal instants: schedules are mostly
	// pre-sorted and short, and stability preserves injector file order.
	i := len(sh.barrier)
	sh.barrier = append(sh.barrier, barrierOp{})
	for i > 0 && sh.barrier[i-1].at > t {
		sh.barrier[i] = sh.barrier[i-1]
		i--
	}
	sh.barrier[i] = barrierOp{at: t, fn: fn}
}

// SetBarrierSampler installs the telemetry sampling hook on a sharded
// engine: fn runs single-threaded at every multiple of interval, after
// all events earlier than the instant and before any event at or after
// it — the same position in the event stream the serial collector's
// self-rescheduling tick occupies.
//
//v2plint:shardbarrier installs barrier-side sampling state before the run starts
func (e *Engine) SetBarrierSampler(interval simtime.Duration, fn func(simtime.Time)) {
	sh := e.shard
	if sh == nil {
		panic("simnet: SetBarrierSampler requires EnableSharding")
	}
	if interval <= 0 || fn == nil {
		return
	}
	sh.sampleIv = interval
	sh.nextTick = simtime.Time(0).Add(interval)
	sh.sampler = fn
}

// build constructs the per-domain engine views lazily at the first Run,
// so it snapshots the fully wired engine: Handler (set by the transport
// layer), BufGauge and Prof (set by telemetry attachment). Each view is
// a shallow copy of the root sharing all topology-shaped slices — the
// per-switch/per-host counter slices are index-disjoint across domains
// — with its own queue, UID space, loss PRNG, gauge shadow and zeroed
// scalar counters. Every link is rebound to its egress-owner view and
// destination view, marking shard-boundary links for the mailbox path.
func (sh *sharding) build() {
	if sh.views != nil {
		return
	}
	root := sh.root
	if root.ClosureEvents {
		panic("simnet: ClosureEvents (the legacy closure reference path) is serial-only; disable it or skip EnableSharding")
	}
	if root.Tap != nil {
		panic("simnet: packet taps observe every domain and are serial-only; detach the tap or skip EnableSharding")
	}
	sh.oracle = root.ShardOracle
	sh.views = make([]*Engine, sh.nDom)
	for d := range sh.views {
		v := new(Engine)
		*v = *root
		v.Q = sh.qs[d]
		v.dom = int32(d)
		v.Prof = nil
		v.C = Counters{
			SwitchPackets:     root.C.SwitchPackets,
			SwitchBytes:       root.C.SwitchBytes,
			SwitchDrops:       root.C.SwitchDrops,
			GatewayPktByHost:  root.C.GatewayPktByHost,
			GatewayByteByHost: root.C.GatewayByteByHost,
		}
		// Disjoint UID spaces keep packet UIDs unique without
		// coordination; the per-domain counters make them a pure function
		// of the domain's own event sequence.
		v.nextUID = uint64(d+1) << 48
		v.lossRand = nil
		if root.lossSeed != 0 {
			v.lossRand = rand.New(rand.NewSource(shardLossSeed(root.lossSeed, d)))
		}
		if root.BufGauge != nil {
			v.BufGauge = &telemetry.Gauge{}
		}
		v.hostEvFree = nil
		v.crossFree = nil
		sh.views[d] = v
	}
	bind := func(l *link, src, dst int32) {
		if l == nil {
			return
		}
		l.e = sh.views[src]
		l.dst = sh.views[dst]
		l.dstDom = dst
		l.boundary = src != dst
	}
	for h, l := range root.hostUp {
		d := sh.domOfHost[h]
		bind(l, d, d)
		bind(root.hostDown[h], d, d)
	}
	for s, nbrs := range root.swNbr {
		for _, l := range nbrs {
			bind(l, sh.domOfSw[s], sh.domOfSw[l.dstSw])
		}
	}
}

// shardLossSeed derives domain d's loss-PRNG seed from the engine seed.
// The derivation depends only on (seed, domain), never on worker count
// or scheduling, so loss coin flips are deterministic per domain.
func shardLossSeed(seed int64, d int) int64 {
	return seed + int64(d+1)*0x6A09E667
}

// post hands a packet that finished serializing on a boundary link to
// the cross-domain machinery: its arrival instant is one propagation
// delay out (≥ the window end, which is what makes the lookahead
// conservative), and its tie-break key is assigned here, at emission,
// from the per-(src,dst) counter. In windowed mode the record waits in
// the mailbox until the barrier; the oracle inserts it eagerly — the
// key makes both orders identical.
//
//v2plint:hotpath
func (sh *sharding) post(l *link, p *packet.Packet) {
	src := l.e.dom
	mb := &sh.mail[src][l.dstDom]
	mb.nextKey++
	key := eventq.CrossKeyBase | uint64(src+1)<<40 | mb.nextKey
	at := l.e.Q.Now().Add(l.delay)
	if sh.oracle {
		sh.deliverCross(l, p, at, key)
		return
	}
	//v2plint:allow hotpathalloc mailbox growth: the rec slice is reset (not freed) at each barrier, so it grows to the per-window high-water mark and is then reused
	mb.recs = append(mb.recs, mailRec{at: at, key: key, l: l, p: p})
}

// deliverCross schedules one cross-domain arrival on the destination
// domain's queue, through that view's pooled crossEvent records.
//
//v2plint:hotpath
func (sh *sharding) deliverCross(l *link, p *packet.Packet, at simtime.Time, key uint64) {
	v := l.dst
	ev := v.getCrossEvent()
	ev.l = l
	ev.p = p
	v.Q.AtTimedKeyed(at, ev, key)
}

// crossEvent is the pooled arrival record for cross-domain packets: it
// fires on the destination domain's queue and completes the link's
// deliver stage there.
type crossEvent struct {
	v *Engine
	l *link
	p *packet.Packet
}

// Fire recycles the record and delivers the packet.
//
//v2plint:hotpath
func (ev *crossEvent) Fire() {
	v, l, p := ev.v, ev.l, ev.p
	ev.l, ev.p = nil, nil
	v.crossFree = append(v.crossFree, ev)
	l.deliverPkt(p)
}

// getCrossEvent pops a pooled record, allocating only to grow the pool.
//
//v2plint:hotpath
func (e *Engine) getCrossEvent() *crossEvent {
	if n := len(e.crossFree); n > 0 {
		ev := e.crossFree[n-1]
		e.crossFree = e.crossFree[:n-1]
		return ev
	}
	//v2plint:allow hotpathalloc pool growth: one record per concurrent cross-domain arrival high-water mark, then reused forever
	return &crossEvent{v: e}
}

// drainMail moves every mailbox record onto its destination queue, in
// fixed (src, dst) order. Runs single-threaded at barriers. The drain
// order is aesthetic — arrival order is pinned by the keys — but fixed
// order keeps even the queues' internal layouts identical run to run.
func (sh *sharding) drainMail() {
	for src := range sh.mail {
		row := sh.mail[src]
		for dst := range row {
			mb := &row[dst]
			for i := range mb.recs {
				r := &mb.recs[i]
				sh.deliverCross(r.l, r.p, r.at, r.key)
				r.l, r.p = nil, nil
			}
			mb.recs = mb.recs[:0]
		}
	}
}

// mergeViews folds every view's scalar counter deltas, buffer-gauge
// shadow and the scheme's per-shard stat slots into the root. Runs
// single-threaded at barriers; add-and-zero semantics make the merge
// frequency unobservable.
func (sh *sharding) mergeViews() {
	root := sh.root
	for _, v := range sh.views {
		root.C.mergeScalars(&v.C)
	}
	if root.BufGauge != nil {
		var cur int64
		for _, v := range sh.views {
			if g := v.BufGauge; g != nil {
				if g.Value() > cur {
					cur = g.Value()
				}
				root.BufGauge.Absorb(g)
			}
		}
		root.BufGauge.Set(cur)
	}
	if sh.aware != nil {
		sh.aware.SyncShards()
	}
}

// syncFaults republishes the root's fault-gate count to every view
// after a barrier op mutated fault state. The underlying link flags and
// swDown/gwDown slices are shared; only the scalar gate is per-view.
func (sh *sharding) syncFaults() {
	af := sh.root.activeFaults
	for _, v := range sh.views {
		v.activeFaults = af
	}
}

// minPeek returns the earliest pending event time across all domains.
func (sh *sharding) minPeek() (simtime.Time, bool) {
	var best simtime.Time
	found := false
	for _, q := range sh.qs {
		if t, ok := q.PeekTime(); ok && (!found || t < best) {
			best, found = t, true
		}
	}
	return best, found
}

// runWindow dispatches every domain's events in [now, end), in parallel
// when more than one worker is configured. The WaitGroup barrier gives
// the happens-before edge that publishes each domain's writes (queue
// state, mailboxes, counters) to the barrier thread and to whichever
// worker claims the domain next window.
func (sh *sharding) runWindow(end simtime.Time) {
	if sh.workers <= 1 {
		for d, q := range sh.qs {
			sh.domEvents[d] += int64(q.RunBefore(end))
		}
		return
	}
	sh.windowEnd = end
	atomic.StoreInt32(&sh.claim, 0)
	n := sh.workers
	if n > sh.nDom {
		n = sh.nDom
	}
	sh.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			//v2plint:workerlocal wg is the window's own barrier primitive; Done publishes this worker's writes to wg.Wait
			defer sh.wg.Done()
			for {
				d := int(atomic.AddInt32(&sh.claim, 1)) - 1
				//v2plint:workerlocal nDom and windowEnd are frozen before the window's workers start and read-only until wg.Wait returns
				if d >= sh.nDom {
					return
				}
				//v2plint:workerlocal the atomic claim counter hands domain d to exactly this worker, which owns qs[d] and domEvents[d] until the wg.Wait barrier
				sh.domEvents[d] += int64(sh.qs[d].RunBefore(sh.windowEnd))
			}
		}()
	}
	sh.wg.Wait()
}

// stepOracle is the serial reference loop: dispatch the globally
// earliest event (by time, then tie-break key, then domain index) one
// at a time until the window is exhausted. No windows-within-windows,
// no mailbox batching — cross-domain arrivals were inserted eagerly by
// post. Byte-identity with runWindow is the proof that the conservative
// protocol is exact.
func (sh *sharding) stepOracle(end simtime.Time) {
	for {
		best := -1
		var bt simtime.Time
		var bk uint64
		for d, q := range sh.qs {
			t, k, ok := q.PeekKey()
			if !ok || t >= end {
				continue
			}
			if best < 0 || t < bt || (t == bt && k < bk) {
				best, bt, bk = d, t, k
			}
		}
		if best < 0 {
			return
		}
		sh.qs[best].Step()
		sh.domEvents[best]++
	}
}

// runSharded is the sharded engine's Run loop: barrier rounds of
// (drain mailboxes, merge views, apply due barrier ops, take due
// telemetry samples, run one lookahead window in parallel). Windows are
// capped at the next barrier op and the next sampling instant so both
// happen at exactly their scheduled position in the event stream.
//
//v2plint:shardbarrier the barrier loop itself: single-threaded except inside runWindow
func (e *Engine) runSharded(horizon simtime.Time) {
	sh := e.shard
	sh.build()
	prof := e.Prof
	var wallStart time.Time
	var ms runtime.MemStats
	var mallocs uint64
	var startEvents int64
	if prof != nil {
		// The profiling hook deliberately measures host wall time; it
		// never feeds back into simulated time or results.
		wallStart = time.Now() //v2plint:allow wallclock,detflow profiling hook: host wall time is telemetry about the run, not simulation state
		runtime.ReadMemStats(&ms)
		mallocs = ms.Mallocs
		for _, n := range sh.domEvents {
			startEvents += n
		}
	}
	hEnd := horizon + 1 // events AT the horizon run; later ones stay pending
	if hEnd < horizon {
		hEnd = horizon // run-to-drain (horizon == simtime.Never): don't overflow
	}
	for {
		sh.drainMail()
		sh.mergeViews()
		t, ok := sh.minPeek()
		for len(sh.barrier) > 0 && sh.barrier[0].at <= horizon && (!ok || sh.barrier[0].at <= t) {
			op := sh.barrier[0]
			copy(sh.barrier, sh.barrier[1:])
			sh.barrier = sh.barrier[:len(sh.barrier)-1]
			if op.at > sh.now {
				sh.now = op.at
			}
			op.fn()
			sh.syncFaults()
		}
		for ok && sh.sampler != nil && sh.nextTick <= t && sh.nextTick <= horizon {
			sh.now = sh.nextTick
			sh.sampler(sh.nextTick)
			sh.nextTick = sh.nextTick.Add(sh.sampleIv)
		}
		if !ok || t > horizon {
			break
		}
		if t > sh.now {
			sh.now = t
		}
		end := t.Add(sh.lookahead)
		if end > hEnd {
			end = hEnd
		}
		if len(sh.barrier) > 0 && sh.barrier[0].at < end {
			end = sh.barrier[0].at
		}
		if sh.sampler != nil && sh.nextTick < end {
			end = sh.nextTick
		}
		if prof != nil {
			depth := 0
			for _, q := range sh.qs {
				depth += q.Len()
			}
			if depth > prof.HeapHighWater {
				prof.HeapHighWater = depth
			}
		}
		if sh.oracle {
			sh.stepOracle(end)
		} else {
			sh.runWindow(end)
		}
	}
	// One trailing sample after the event stream drains, mirroring the
	// serial collector's final self-scheduled tick.
	if sh.sampler != nil && sh.nextTick <= horizon {
		if sh.nextTick > sh.now {
			sh.now = sh.nextTick
		}
		sh.sampler(sh.nextTick)
		sh.nextTick = sh.nextTick.Add(sh.sampleIv)
	}
	if prof != nil {
		var total int64
		for _, n := range sh.domEvents {
			total += n
		}
		prof.Events += total - startEvents
		prof.ShardEvents = append(prof.ShardEvents[:0], sh.domEvents...)
		runtime.ReadMemStats(&ms)
		prof.Mallocs += ms.Mallocs - mallocs
		prof.Wall += time.Since(wallStart) //v2plint:allow wallclock,detflow profiling hook: host wall time is telemetry about the run, not simulation state
		prof.SimEnd = sh.now
	}
}
