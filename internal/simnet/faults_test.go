package simnet

// Engine-level fault-state semantics: drop-on-downed-link, the
// dual-endpoint switch-failure counter, gateway re-balancing, loss-window
// determinism, and the alloc-freedom of the ECMP reroute path.

import (
	"testing"

	"switchv2p/internal/netaddr"
	"switchv2p/internal/packet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
)

// TestLinkFaultDropsAndRestores: a downed link accepts nothing (drops
// count as FaultDrops and Drops), and restoring it resumes delivery.
func TestLinkFaultDropsAndRestores(t *testing.T) {
	f := newFixture(t, gwScheme{})
	src, dst := f.vips[0], f.vips[10]
	pip, _ := f.net.Lookup(dst)
	host := f.hostOf(src)
	a, b := topology.HostRef(host), topology.SwitchRef(f.e.Topo.Hosts[host].ToR)

	if err := f.e.SetLinkFault(a, b, true); err != nil {
		t.Fatal(err)
	}
	if got := f.e.ActiveFaults(); got != 1 {
		t.Fatalf("ActiveFaults = %d, want 1", got)
	}
	send := func(id uint64) {
		p := packet.NewData(id, 0, 1000, src, dst, 0)
		p.DstPIP = pip
		p.Resolved = true
		f.e.HostSend(host, p)
		f.e.Run(simtime.Never)
	}
	send(1)
	if f.e.C.FaultDrops != 1 || f.e.C.Drops != 1 || f.e.C.Delivered != 0 {
		t.Fatalf("downed link: %+v", f.e.C)
	}
	// Idempotence: re-failing must not double-count the fault.
	if err := f.e.SetLinkFault(a, b, true); err != nil {
		t.Fatal(err)
	}
	if got := f.e.ActiveFaults(); got != 1 {
		t.Fatalf("ActiveFaults after re-fail = %d, want 1", got)
	}
	if err := f.e.SetLinkFault(a, b, false); err != nil {
		t.Fatal(err)
	}
	if got := f.e.ActiveFaults(); got != 0 {
		t.Fatalf("ActiveFaults after restore = %d, want 0", got)
	}
	send(2)
	if f.e.C.Delivered != 1 {
		t.Fatalf("restored link did not deliver: %+v", f.e.C)
	}
	if err := f.e.SetLinkFault(a, topology.SwitchRef(999), true); err == nil {
		t.Fatal("non-adjacent link fault accepted")
	}
}

// TestSwitchFaultBlocksBothEndpoints pins the per-link fault counter: a
// link between two failed switches must stay blocked until BOTH have
// recovered — a bool would reopen it at the first recovery.
func TestSwitchFaultBlocksBothEndpoints(t *testing.T) {
	f := newFixture(t, gwScheme{})
	// Any fabric link: ToR 0 and its first fabric neighbor.
	nbr := int32(-1)
	for s := int32(0); int(s) < len(f.e.Topo.Switches); s++ {
		if f.e.swOrd[0][s] >= 0 {
			nbr = s
			break
		}
	}
	if nbr < 0 {
		t.Fatal("switch 0 has no fabric neighbor")
	}
	l := f.e.swNbr[0][f.e.swOrd[0][nbr]]
	if err := f.e.SetSwitchFault(0, true); err != nil {
		t.Fatal(err)
	}
	if err := f.e.SetSwitchFault(nbr, true); err != nil {
		t.Fatal(err)
	}
	if l.swFaults != 2 {
		t.Fatalf("link between two failed switches has swFaults=%d, want 2", l.swFaults)
	}
	if err := f.e.SetSwitchFault(0, false); err != nil {
		t.Fatal(err)
	}
	if l.swFaults != 1 {
		t.Fatalf("after one recovery swFaults=%d, want 1 (still blocked)", l.swFaults)
	}
	if err := f.e.SetSwitchFault(nbr, false); err != nil {
		t.Fatal(err)
	}
	if l.swFaults != 0 {
		t.Fatalf("after both recoveries swFaults=%d, want 0", l.swFaults)
	}
	if f.e.ActiveFaults() != 0 {
		t.Fatalf("ActiveFaults = %d, want 0", f.e.ActiveFaults())
	}
}

// TestGatewayOutageRebalances: senders never pick an outaged gateway
// instance, and when every instance is dark the hash-preferred pick is
// kept (the packet then dies at the dead gateway — hosts have no oracle).
func TestGatewayOutageRebalances(t *testing.T) {
	f := newFixture(t, gwScheme{})
	gws := f.e.Gateways()
	downPIP := f.e.Topo.Hosts[gws[0]].PIP
	if err := f.e.SetGatewayFault(gws[0], true); err != nil {
		t.Fatal(err)
	}
	for flow := uint64(0); flow < 200; flow++ {
		if got := f.e.GatewayFor(netaddr.PIP(7), flow); got == downPIP {
			t.Fatalf("flow %d resolved to the outaged gateway", flow)
		}
	}
	// All dark: the hash pick must come back unchanged, not loop forever.
	for _, g := range gws {
		if err := f.e.SetGatewayFault(g, true); err != nil {
			t.Fatal(err)
		}
	}
	for flow := uint64(0); flow < 50; flow++ {
		p := f.e.GatewayFor(netaddr.PIP(7), flow)
		host, ok := f.e.Topo.HostByPIP(p)
		if !ok {
			t.Fatalf("flow %d resolved to a non-host PIP %v", flow, p)
		}
		if !f.e.GatewayFaulted(host) {
			t.Fatal("all gateways dark but GatewayFor returned a healthy one")
		}
	}
	// A non-gateway host must be rejected.
	srv := f.e.Topo.Servers()[0]
	if err := f.e.SetGatewayFault(srv, true); err == nil {
		t.Fatal("gateway fault on a server host accepted")
	}
}

// TestLossWindowDeterministic: with the same loss seed the window drops
// exactly the same packets; with a different seed the tally (almost
// surely) differs somewhere over 400 trials.
func TestLossWindowDeterministic(t *testing.T) {
	run := func(seed int64) int64 {
		f := newFixture(t, gwScheme{})
		src, dst := f.vips[0], f.vips[10]
		pip, _ := f.net.Lookup(dst)
		host := f.hostOf(src)
		a, b := topology.HostRef(host), topology.SwitchRef(f.e.Topo.Hosts[host].ToR)
		f.e.SetLossSeed(seed)
		if err := f.e.SetLinkLoss(a, b, 0.4); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 400; i++ {
			p := packet.NewData(uint64(i), 0, 1000, src, dst, 0)
			p.DstPIP = pip
			p.Resolved = true
			f.e.HostSend(host, p)
			f.e.Run(simtime.Never)
		}
		if err := f.e.SetLinkLoss(a, b, 0); err != nil {
			t.Fatal(err)
		}
		return f.e.C.LossDrops
	}
	a1, a2, b1 := run(11), run(11), run(12)
	if a1 == 0 {
		t.Fatal("loss window dropped nothing at rate 0.4")
	}
	if a1 != a2 {
		t.Fatalf("same seed, different loss drops: %d vs %d", a1, a2)
	}
	if a1 == b1 {
		t.Logf("different seeds coincided (%d drops); legal but unlikely", a1)
	}
}

// TestEcmpForwardWithFaultsAllocFree is the fault-path twin of the
// steady-state guard: with a failed spine forcing reroutes, the ECMP
// forward path — fault check, usable-hop scan, serialization — must
// still allocate nothing.
func TestEcmpForwardWithFaultsAllocFree(t *testing.T) {
	f := newFixture(t, gwScheme{})
	sw, dstToR, p := faultBenchSetup(t, f)
	for i := 0; i < 8; i++ {
		f.e.ecmpForward(sw, dstToR, p)
		f.e.Q.Run(simtime.Never)
	}
	before := f.e.C.Rerouted
	allocs := testing.AllocsPerRun(200, func() {
		f.e.ecmpForward(sw, dstToR, p)
		f.e.Q.Run(simtime.Never)
	})
	if allocs != 0 {
		t.Fatalf("fault reroute path allocates %v per packet, want 0", allocs)
	}
	if f.e.C.Rerouted == before {
		t.Fatal("no packet was rerouted; the fault path was not exercised")
	}
}

// faultBenchSetup prepares a cross-pod forward where the packet's
// hash-preferred next hop is failed, forcing the reroute scan on every
// forward.
func faultBenchSetup(tb testing.TB, f *fixture) (sw, dstToR int32, p *packet.Packet) {
	tb.Helper()
	src, dst := f.vips[0], f.vips[200]
	pip, _ := f.net.Lookup(dst)
	p = packet.NewData(7, 0, 1000, src, dst, 0)
	p.DstPIP = pip
	p.Resolved = true
	p.SentAt = simtime.Time(1)
	sw = f.e.Topo.Hosts[f.hostOf(src)].ToR
	dstToR = f.e.Topo.Hosts[f.hostOf(dst)].ToR
	hops := f.e.Topo.NextHops(sw, dstToR)
	if len(hops) < 2 {
		tb.Fatal("need at least two next hops to exercise rerouting")
	}
	// Fail the hop the flow's hash prefers so every forward reroutes.
	pre := f.e.C.Rerouted
	f.e.ecmpForward(sw, dstToR, p)
	f.e.Q.Run(simtime.Never)
	if f.e.C.Rerouted != pre {
		// Healthy run: find the chosen hop by failing hops until a
		// forward reroutes. Deterministic, so one pass suffices.
		tb.Fatal("unexpected reroute before any fault")
	}
	for _, h := range hops {
		if err := f.e.SetSwitchFault(h, true); err != nil {
			tb.Fatal(err)
		}
		f.e.ecmpForward(sw, dstToR, p)
		f.e.Q.Run(simtime.Never)
		rerouted := f.e.C.Rerouted != pre
		if rerouted {
			return sw, dstToR, p // h is the preferred hop; keep it failed
		}
		if err := f.e.SetSwitchFault(h, false); err != nil {
			tb.Fatal(err)
		}
	}
	tb.Fatal("failed to find the hash-preferred hop")
	return
}

// BenchmarkEcmpForwardWithFaults measures the fabric forward with an
// active fault forcing a reroute on every packet, for comparison with
// BenchmarkEcmpForward's healthy fast path.
func BenchmarkEcmpForwardWithFaults(b *testing.B) {
	f := newFixture(b, gwScheme{})
	sw, dstToR, p := faultBenchSetup(b, f)
	for i := 0; i < 8; i++ {
		f.e.ecmpForward(sw, dstToR, p)
		f.e.Q.Run(simtime.Never)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.e.ecmpForward(sw, dstToR, p)
		f.e.Q.Run(simtime.Never)
	}
}
