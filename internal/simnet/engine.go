// Package simnet is the discrete-event, packet-level network simulator
// the evaluation runs on (the NS3 substitute). It moves packets between
// hosts and switches over bandwidth- and delay-modeled links with
// shared-buffer switch queues and ECMP multipath routing, applies the
// translation-gateway processing model, and delegates every
// translation-policy decision to a pluggable Scheme.
package simnet

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"switchv2p/internal/eventq"
	"switchv2p/internal/netaddr"
	"switchv2p/internal/packet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/telemetry"
	"switchv2p/internal/topology"
	"switchv2p/internal/vnet"
)

// Config holds the engine parameters that are common to all schemes.
// The defaults (see DefaultConfig) follow §5 "Network parameters".
type Config struct {
	// GatewayDelay is the translation gateway's per-packet processing
	// latency (Sailfish-calibrated 40 µs).
	GatewayDelay simtime.Duration
	// MisdeliveryDelay is the hypervisor's processing overhead for
	// re-forwarding a packet that can no longer be delivered locally.
	MisdeliveryDelay simtime.Duration
	// BaseRTT is the network's base round-trip time, used by SwitchV2P's
	// invalidation timestamp vector.
	BaseRTT simtime.Duration
	// ActiveGateways restricts senders to the first N gateway instances
	// (the Fig. 9 gateway-reduction sweep); 0 means all gateways.
	ActiveGateways int
}

// DefaultConfig returns the paper's evaluation parameters.
func DefaultConfig() Config {
	return Config{
		GatewayDelay:     40 * simtime.Microsecond,
		MisdeliveryDelay: 10 * simtime.Microsecond,
		BaseRTT:          12 * simtime.Microsecond,
	}
}

// Counters aggregates the engine-level measurements every experiment
// reads. Scheme-level counters (cache hits etc.) live in the schemes.
type Counters struct {
	SwitchPackets []int64 // per switch index
	SwitchBytes   []int64 // per switch index
	SwitchDrops   []int64 // shared-buffer overflow drops, per switch index

	GatewayPackets int64 // packets processed by translation gateways
	GatewayBytes   int64
	// GatewayPktByHost / GatewayByteByHost break the gateway load down
	// per gateway instance (indexed by host; zero for non-gateways).
	GatewayPktByHost  []int64
	GatewayByteByHost []int64
	HostSent          int64 // tenant packets emitted by hosts (excluding re-sends)

	Delivered      int64 // tenant packets delivered to the right host
	DeliveredBytes int64
	DataDelivered  int64 // Data packets only (excludes ACKs)
	DataHopsSum    int64 // sum of switch hops over delivered Data packets
	LatencySumNs   int64 // sum of per-packet delivery latency over Data packets

	Misdeliveries     int64        // packets that arrived at a host no longer running the VM
	LastMisdelivered  simtime.Time // arrival time (at the correct host) of the last once-misdelivered packet
	Drops             int64        // buffer overflows and unroutable packets
	LearningPkts      int64        // learning packets injected
	InvalidationPkts  int64        // invalidation packets injected
	ConsumedControl   int64        // control packets consumed by switches
	StrayControlPkts  int64        // control packets that reached a host (should not happen)
	GatewayUnknownVIP int64        // gateway lookups that failed (should not happen)

	// Fault-injection counters (internal/faults). All three kinds of
	// fault drop also count toward Drops, so packet conservation
	// (Delivered + Drops >= HostSent) holds under any fault schedule.
	FaultDrops int64 // packets dropped at a downed link, switch or gateway
	LossDrops  int64 // packets dropped by a probabilistic loss window
	Rerouted   int64 // packets steered off their hash-preferred ECMP hop
}

// Engine wires a topology, a virtual network, and a scheme into a
// runnable simulation.
type Engine struct {
	Q      *eventq.Queue
	Topo   *topology.Topology
	Net    *vnet.Net
	Scheme Scheme
	Cfg    Config
	C      Counters

	// Handler receives tenant packets delivered to their (correct)
	// destination host. The transport layer registers itself here.
	Handler func(host int32, p *packet.Packet)

	// Tap, when non-nil, observes every packet arrival at a switch (kind
	// KindSwitch) or host (KindHost) — a capture point for tracing tools.
	Tap func(at topology.NodeRef, p *packet.Packet)

	// TapOwner optionally identifies the party that installed Tap.
	// Closures compare unequal even to themselves, so tooling that
	// replaces a tap (e.g. internal/ptrace) records its identity here
	// and detaches only if it is still the owner — closing a replaced
	// tracer then cannot clobber its successor's tap.
	TapOwner any

	// Prof, when non-nil, enables the engine profiling hooks: Run steps
	// the queue manually, counting dispatched events, tracking the
	// pending-event high-water mark and charging wall clock to the
	// profile. Nil (the default) leaves the fast drain loop untouched.
	Prof *telemetry.EngineProfile

	// BufGauge, when non-nil, tracks switch shared-buffer occupancy on
	// the enqueue and dequeue hot paths (its high-water mark is the peak
	// bytes across all switches; its instantaneous value is the occupancy
	// of the last-touched switch buffer, falling back to zero as a run
	// drains). A nil gauge costs one inlined nil check per buffer update.
	BufGauge *telemetry.Gauge

	// ClosureEvents switches the link layer back to the legacy
	// closure-per-event scheduling path instead of pooled typed-event
	// records. Both paths dispatch in the same order and produce
	// byte-identical results (guard-tested); the closure path exists only
	// as the reference for that guard. Set it before the first packet is
	// sent and never mid-run.
	ClosureEvents bool

	// Fabric adjacency, built once in New so the forwarding hot path
	// never touches a map: swNbr[s] holds the egress links from switch s
	// to each neighboring switch, in edge order; swOrd[s][t] is the dense
	// ordinal of neighbor t in swNbr[s], or -1 when s-t is not an edge.
	swNbr    [][]*link
	swOrd    [][]int32
	hostUp   []*link // host -> its ToR
	hostDown []*link // ToR -> host, indexed by host
	bufUsed  []int   // shared-buffer occupancy per switch

	gateways []int32 // host indices senders may load-balance over
	nextUID  uint64

	// Fault-injection state (see faults.go). swDown/gwDown mark failed
	// switches and outaged gateway instances; activeFaults counts the
	// currently failed entities so healthy runs take a single predictable
	// branch on the forwarding and gateway-selection hot paths; lossRand
	// drives the per-link loss coin flips (created lazily by SetLossSeed/
	// SetLinkLoss, always per-engine — never global — so same-seed runs
	// are byte-identical).
	swDown       []bool
	gwDown       []bool
	activeFaults int
	lossRand     *rand.Rand
	lossSeed     int64 // seed recorded by SetLossSeed for per-shard derivation

	// ShardOracle selects the sharded engine's serial reference mode:
	// the same domain partition, per-domain queues and cross-domain keys,
	// but a single goroutine dispatching the globally earliest event and
	// delivering cross-domain handoffs eagerly (no lookahead windows, no
	// mailbox batching). Byte-identity between oracle and windowed runs
	// proves the conservative synchronization protocol exact, the same
	// role ClosureEvents plays for the typed-event link path. Set before
	// EnableSharding takes effect at the first Run.
	ShardOracle bool

	// Sharding state (see shard.go). shard is non-nil on the root engine
	// once EnableSharding ran; dom is this engine's domain index on a
	// per-shard view, -1 on the root. hostEvFree / crossFree are the
	// per-engine pools for gateway/misdelivery records and cross-shard
	// arrival records.
	shard      *sharding
	dom        int32
	hostEvFree []*hostEvent
	crossFree  []*crossEvent
}

// New builds an engine over the given topology and virtual network.
func New(topo *topology.Topology, net *vnet.Net, scheme Scheme, cfg Config) *Engine {
	e := &Engine{
		Q:      &eventq.Queue{},
		Topo:   topo,
		Net:    net,
		Scheme: scheme,
		Cfg:    cfg,
		dom:    -1,
	}
	e.C.SwitchPackets = make([]int64, len(topo.Switches))
	e.C.SwitchBytes = make([]int64, len(topo.Switches))
	e.C.SwitchDrops = make([]int64, len(topo.Switches))
	e.C.GatewayPktByHost = make([]int64, len(topo.Hosts))
	e.C.GatewayByteByHost = make([]int64, len(topo.Hosts))
	e.bufUsed = make([]int, len(topo.Switches))
	e.swDown = make([]bool, len(topo.Switches))
	e.gwDown = make([]bool, len(topo.Hosts))
	e.hostUp = make([]*link, len(topo.Hosts))
	e.hostDown = make([]*link, len(topo.Hosts))
	e.swNbr = make([][]*link, len(topo.Switches))
	e.swOrd = make([][]int32, len(topo.Switches))
	for i := range e.swOrd {
		ord := make([]int32, len(topo.Switches))
		for j := range ord {
			ord[j] = -1
		}
		e.swOrd[i] = ord
	}

	for _, edge := range topo.Edges {
		e.addLink(edge.A, edge.B, edge.Class)
		e.addLink(edge.B, edge.A, edge.Class)
	}

	// Copy the accessor's slice instead of aliasing it: Gateways()
	// returns the topology's internal slice, so two engines sharing one
	// topology (or a caller mutating the returned slice) must not be able
	// to corrupt this engine's gateway set.
	all := topo.Gateways()
	n := cfg.ActiveGateways
	if n <= 0 || n > len(all) {
		n = len(all)
	}
	e.gateways = append([]int32(nil), all[:n]...)
	return e
}

func (e *Engine) addLink(from, to topology.NodeRef, class topology.LinkClass) {
	bps := e.Topo.Cfg.FabricLinkBps
	if class == topology.HostLink {
		bps = e.Topo.Cfg.HostLinkBps
	}
	l := &link{
		e:          e,
		dst:        e,
		bps:        bps,
		delay:      e.Topo.Cfg.LinkDelay,
		fromSwitch: -1,
		dstSw:      -1,
		dstHost:    -1,
	}
	if from.Kind == topology.KindSwitch {
		l.fromSwitch = from.Idx
	}
	switch to.Kind {
	case topology.KindSwitch:
		l.dstSw = to.Idx
		l.fromRef = from
	case topology.KindHost:
		l.dstHost = to.Idx
	}
	if from.Kind == topology.KindHost {
		e.hostUp[from.Idx] = l
	} else if to.Kind == topology.KindHost {
		e.hostDown[to.Idx] = l
	} else {
		e.swOrd[from.Idx][to.Idx] = int32(len(e.swNbr[from.Idx]))
		e.swNbr[from.Idx] = append(e.swNbr[from.Idx], l)
	}
}

// Now returns the current simulated time. On a sharded root engine this
// is the barrier clock: the start of the current synchronization window
// (exact at barriers, which is where root-side code — fault application,
// telemetry sampling — runs).
//
//v2plint:shardbarrier reads the barrier clock, which only the single-threaded barrier loop advances; root-side callers run at barriers
func (e *Engine) Now() simtime.Time {
	if e.shard != nil && e.dom < 0 {
		return e.shard.now
	}
	return e.Q.Now()
}

// Run dispatches events until the queue drains or the horizon passes.
// With a profile attached (Prof non-nil) it steps the queue through the
// profiling hooks; the dispatch order — and therefore every simulation
// result — is identical either way. On a sharded engine (EnableSharding)
// it runs the conservative windowed parallel loop instead.
func (e *Engine) Run(horizon simtime.Time) {
	if e.shard != nil {
		e.runSharded(horizon)
		return
	}
	if e.Prof == nil {
		e.Q.Run(horizon)
		return
	}
	p := e.Prof
	// The profiling hook deliberately measures host wall time; it never
	// feeds back into simulated time or results.
	start := time.Now() //v2plint:allow wallclock,detflow profiling hook: host wall time is telemetry about the run, not simulation state
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mallocs := ms.Mallocs

	for {
		t, ok := e.Q.PeekTime()
		if !ok || t > horizon {
			break
		}
		if d := e.Q.Len(); d > p.HeapHighWater {
			p.HeapHighWater = d
		}
		e.Q.Step()
		p.Events++
	}
	runtime.ReadMemStats(&ms)
	p.Mallocs += ms.Mallocs - mallocs
	p.Wall += time.Since(start) //v2plint:allow wallclock,detflow profiling hook: host wall time is telemetry about the run, not simulation state
	p.SimEnd = e.Q.Now()
}

// BufferUsed returns switch sw's shared-buffer occupancy in bytes
// (a telemetry sampling accessor).
func (e *Engine) BufferUsed(sw int32) int { return e.bufUsed[sw] }

// InFlightPackets counts the packets currently in the network on every
// link: queued behind the serializer, being serialized, or in
// propagation flight toward the far end (a packet counts from the
// instant its link accepts it until the instant it is handed to the next
// node). A telemetry sampling accessor; O(links), read-only.
func (e *Engine) InFlightPackets() int {
	n := 0
	for _, l := range e.hostUp {
		if l != nil {
			n += l.inFlight
		}
	}
	for _, l := range e.hostDown {
		if l != nil {
			n += l.inFlight
		}
	}
	for _, nbrs := range e.swNbr {
		for _, l := range nbrs {
			n += l.inFlight
		}
	}
	return n
}

// Gateways returns the gateway host indices senders load-balance over
// (restricted by Config.ActiveGateways).
func (e *Engine) Gateways() []int32 { return e.gateways }

// GatewayFor picks the translation gateway a sender uses for a flow:
// per-flow load balancing across the active gateway instances. It panics
// with a descriptive message on a topology built without gateway hosts
// (rather than a bare divide-by-zero): schemes that resolve through
// gateways cannot run on such a topology.
//
//v2plint:hotpath
func (e *Engine) GatewayFor(src netaddr.PIP, flowID uint64) netaddr.PIP {
	if len(e.gateways) == 0 {
		panic("simnet: GatewayFor on a topology with no gateway hosts " +
			"(topology.Config.GatewayPods/GatewaysPerPod are empty; " +
			"use a gateway-free scheme or configure gateways)")
	}
	h := netaddr.FlowHash(src, 0, flowID)
	g := e.gateways[h%uint32(len(e.gateways))]
	if e.activeFaults > 0 && e.gwDown[g] {
		g = e.rerouteGateway(g, h)
	}
	return e.Topo.Hosts[g].PIP
}

// rerouteGateway re-balances a flow whose hash-preferred gateway is
// outaged across the gateways that are still up. When every gateway is
// dark the original pick is kept: the packet travels to the dead
// gateway and is dropped there (FaultDrops), exactly as in a real
// fabric — senders have no oracle for total gateway loss.
//
//v2plint:faultpath
func (e *Engine) rerouteGateway(down int32, h uint32) int32 {
	up := 0
	for _, g := range e.gateways {
		if !e.gwDown[g] {
			up++
		}
	}
	if up == 0 {
		return down
	}
	k := int(h % uint32(up))
	for _, g := range e.gateways {
		if !e.gwDown[g] {
			if k == 0 {
				return g
			}
			k--
		}
	}
	return down // unreachable
}

// IsGatewayPIP reports whether the address belongs to any translation
// gateway instance (not just the active subset): switches use this to
// recognize gateway-bound traffic.
func (e *Engine) IsGatewayPIP(p netaddr.PIP) bool {
	h, ok := e.Topo.HostByPIP(p)
	return ok && e.Topo.Hosts[h].Gateway
}

// HostSend emits a tenant packet from a host into the network. It stamps
// the packet, asks the scheme to resolve the outer destination, and
// enqueues the packet on the host's NIC.
//
//v2plint:hotpath
func (e *Engine) HostSend(host int32, p *packet.Packet) {
	if sh := e.shard; sh != nil && e.dom < 0 {
		// Sharded root: re-dispatch on the view that owns the host, so
		// the UID stamp, counters and NIC enqueue mutate that shard's
		// state. (Callbacks holding the root engine — the transport
		// layer — land here; callbacks handed a view engine never do.)
		e.viewOf(host).HostSend(host, p)
		return
	}
	e.nextUID++
	p.UID = e.nextUID
	e.C.HostSent++
	if p.SentAt == 0 {
		p.SentAt = e.Now()
	}
	p.SrcPIP = e.Topo.Hosts[host].PIP
	// Stamp the tenant's VNI into the tunnel header (multi-VPC support).
	p.VNI = uint32(e.Net.TenantOf(p.SrcVIP))
	if !e.Scheme.SenderResolve(e, host, p) {
		return // the scheme holds the packet and will Resend it
	}
	e.hostUp[host].enqueue(p)
}

// Resend re-emits a packet from a host without re-stamping SentAt; used
// by hypervisor misdelivery forwarding. The scheme is not consulted: the
// caller has already set the outer header.
//
//v2plint:hotpath
func (e *Engine) Resend(host int32, p *packet.Packet) {
	if sh := e.shard; sh != nil && e.dom < 0 {
		e.viewOf(host).Resend(host, p)
		return
	}
	e.hostUp[host].enqueue(p)
}

// InjectFromSwitch emits a scheme-generated control packet from a switch.
//
//v2plint:hotpath
func (e *Engine) InjectFromSwitch(sw int32, p *packet.Packet) {
	e.nextUID++
	p.UID = e.nextUID
	switch p.Kind {
	case packet.Learning:
		e.C.LearningPkts++
	case packet.Invalidation:
		e.C.InvalidationPkts++
	}
	e.forwardFromSwitch(sw, p)
}

// switchArrive processes a packet arriving at a switch: count it, hand it
// to the scheme, then route it onward unless consumed. A failed switch
// processes nothing: packets already in flight toward it when it failed
// die on arrival, before any counter, tap or scheme hook runs. The
// swDown read is gated: activeFaults counts every failed switch, so the
// gate never changes behavior, only spares healthy runs the slice read.
//
//v2plint:hotpath
func (e *Engine) switchArrive(sw int32, from topology.NodeRef, p *packet.Packet) {
	if e.activeFaults > 0 && e.swDown[sw] {
		e.C.Drops++
		e.C.FaultDrops++
		return
	}
	p.Hops++
	e.C.SwitchPackets[sw]++
	e.C.SwitchBytes[sw] += int64(p.Size())
	if e.Tap != nil {
		//v2plint:allow hotpathreach Tap is an optional observer hook, nil in measured runs; non-nil only in debug/trace captures
		e.Tap(topology.SwitchRef(sw), p)
	}
	if !e.Scheme.SwitchArrive(e, sw, from, p) {
		e.C.ConsumedControl++
		return
	}
	e.forwardFromSwitch(sw, p)
}

// forwardFromSwitch routes a packet out of a switch toward its outer
// destination: directly to an attached host, or via ECMP toward the
// destination's ToR (or toward the destination switch itself for
// switch-addressed control packets).
//
//v2plint:hotpath
func (e *Engine) forwardFromSwitch(sw int32, p *packet.Packet) {
	if hostIdx, ok := e.Topo.HostByPIP(p.DstPIP); ok {
		h := &e.Topo.Hosts[hostIdx]
		if h.ToR == sw {
			e.hostDown[hostIdx].enqueue(p)
			return
		}
		e.ecmpForward(sw, h.ToR, p)
		return
	}
	if dstSw, ok := e.Topo.SwitchByPIP(p.DstPIP); ok {
		if dstSw == sw {
			// Switch-addressed packet that the scheme did not consume.
			e.C.Drops++
			return
		}
		e.ecmpForward(sw, dstSw, p)
		return
	}
	e.C.Drops++ // unroutable outer destination
}

// ecmpForward picks one of the equal-cost next hops toward dstSw by
// hashing the flow identity, salted per switch to avoid hash polarization.
// With faults active, a hash-preferred hop that is downed (failed link or
// failed next switch) is excluded and the flow is re-balanced across the
// surviving hops (Rerouted); a healthy preferred hop keeps its healthy-run
// choice, so failures perturb only the flows that actually crossed them.
//
//v2plint:hotpath
func (e *Engine) ecmpForward(sw, dstSw int32, p *packet.Packet) {
	hops := e.Topo.NextHops(sw, dstSw)
	if len(hops) == 0 {
		e.C.Drops++
		return
	}
	var h uint32
	next := hops[0]
	if len(hops) > 1 {
		h = netaddr.FlowHash(p.SrcPIP, p.DstPIP, p.FlowID^(uint64(sw)*0x9e3779b1))
		next = hops[h%uint32(len(hops))]
	}
	l := e.swNbr[sw][e.swOrd[sw][next]]
	if e.activeFaults > 0 && (l.faultDown || l.swFaults != 0) {
		l = e.rerouteHop(sw, hops, h)
		if l == nil {
			e.C.Drops++
			e.C.FaultDrops++
			return
		}
		e.C.Rerouted++
	}
	l.enqueue(p)
}

// rerouteHop picks the h-th usable next hop, or nil when every
// equal-cost hop toward the destination is downed. Allocation-free: two
// passes over the (small) next-hop slice.
//
//v2plint:hotpath
//v2plint:faultpath
func (e *Engine) rerouteHop(sw int32, hops []int32, h uint32) *link {
	usable := 0
	for _, c := range hops {
		if l := e.swNbr[sw][e.swOrd[sw][c]]; !l.faultDown && l.swFaults == 0 {
			usable++
		}
	}
	if usable == 0 {
		return nil
	}
	k := int(h % uint32(usable))
	for _, c := range hops {
		if l := e.swNbr[sw][e.swOrd[sw][c]]; !l.faultDown && l.swFaults == 0 {
			if k == 0 {
				return l
			}
			k--
		}
	}
	return nil // unreachable
}

// hostArrive processes a packet reaching a host NIC: gateway processing
// for gateway hosts, local delivery or the misdelivery path for servers.
func (e *Engine) hostArrive(host int32, p *packet.Packet) {
	if e.Tap != nil {
		e.Tap(topology.HostRef(host), p)
	}
	h := &e.Topo.Hosts[host]
	if h.Gateway {
		e.gatewayProcess(host, p)
		return
	}
	switch p.Kind {
	case packet.Data, packet.Ack:
	default:
		e.C.StrayControlPkts++
		return
	}
	if !e.Net.HostHasVM(host, p.DstVIP) {
		e.C.Misdeliveries++
		p.WasMisdelivered = true
		if e.ClosureEvents {
			// Legacy closure reference path, kept (like the link layer's)
			// as the oracle for the pooled-record byte-identity guard.
			e.Q.After(e.Cfg.MisdeliveryDelay, func() { e.Scheme.HostMisdeliver(e, host, p) })
			return
		}
		ev := e.getHostEvent()
		ev.p = p
		ev.host = host
		ev.kind = hostEvMisdeliver
		e.Q.AfterTimed(e.Cfg.MisdeliveryDelay, ev)
		return
	}
	e.C.Delivered++
	e.C.DeliveredBytes += int64(p.Size())
	if p.Kind == packet.Data {
		e.C.DataDelivered++
		e.C.DataHopsSum += int64(p.Hops)
		e.C.LatencySumNs += int64(e.Now().Sub(p.SentAt))
	}
	if p.WasMisdelivered {
		e.C.LastMisdelivered = e.Now()
	}
	if e.Handler != nil {
		e.Handler(host, p)
	}
}

// gatewayProcess applies the translation-gateway model: a fixed
// processing latency, an authoritative lookup, and re-emission of the
// resolved packet through the gateway's NIC.
func (e *Engine) gatewayProcess(host int32, p *packet.Packet) {
	if e.activeFaults > 0 && e.gwDown[host] {
		// An outaged gateway is dark: packets already in flight toward it
		// when the outage hit (or sent while every gateway is down) die
		// here, unprocessed and uncounted.
		e.C.Drops++
		e.C.FaultDrops++
		return
	}
	e.C.GatewayPackets++
	e.C.GatewayBytes += int64(p.Size())
	e.C.GatewayPktByHost[host]++
	e.C.GatewayByteByHost[host] += int64(p.Size())
	pip, ok := e.Net.Lookup(p.DstVIP)
	if !ok {
		e.C.GatewayUnknownVIP++
		e.C.Drops++
		return
	}
	if e.ClosureEvents {
		// Legacy closure reference path (see hostArrive's misdelivery
		// branch).
		e.Q.After(e.Cfg.GatewayDelay, func() {
			p.DstPIP = pip
			p.Resolved = true
			e.hostUp[host].enqueue(p)
		})
		return
	}
	ev := e.getHostEvent()
	ev.p = p
	ev.host = host
	ev.kind = hostEvGatewayTx
	ev.pip = pip
	e.Q.AfterTimed(e.Cfg.GatewayDelay, ev)
}

// hostEvent is a pooled event record (eventq.Timed) for the two host-side
// delayed actions that used to allocate a closure per packet: hypervisor
// misdelivery re-forwarding and translation-gateway re-emission. Records
// live on the owning engine's freelist and are recycled before the action
// runs, so the pool grows to the concurrent high-water mark and is then
// reused forever — the steady-state path allocates nothing.
type hostEvent struct {
	e    *Engine
	p    *packet.Packet
	pip  netaddr.PIP
	host int32
	kind uint8
}

const (
	hostEvMisdeliver uint8 = iota
	hostEvGatewayTx
)

// Fire dispatches the record's action and recycles it.
func (ev *hostEvent) Fire() {
	e, p, host, kind, pip := ev.e, ev.p, ev.host, ev.kind, ev.pip
	ev.p = nil
	e.hostEvFree = append(e.hostEvFree, ev)
	switch kind {
	case hostEvMisdeliver:
		e.Scheme.HostMisdeliver(e, host, p)
	default: // hostEvGatewayTx
		p.DstPIP = pip
		p.Resolved = true
		e.hostUp[host].enqueue(p)
	}
}

// getHostEvent pops a pooled record, allocating only to grow the pool.
func (e *Engine) getHostEvent() *hostEvent {
	if n := len(e.hostEvFree); n > 0 {
		ev := e.hostEvFree[n-1]
		e.hostEvFree = e.hostEvFree[:n-1]
		return ev
	}
	return &hostEvent{e: e}
}

// mergeScalars folds another engine's scalar counter deltas into c and
// zeroes them (add-and-zero, so merging is idempotent over barriers).
// The per-switch / per-host slices are not touched: shard views share
// the root's slice headers, and each index is written only by the shard
// that owns the switch or host, so they need no merging at all.
// LastMisdelivered is a timestamp, not a sum: the merged value is the
// max, which equals "last" because simulated time is monotone.
func (c *Counters) mergeScalars(from *Counters) {
	c.GatewayPackets += from.GatewayPackets
	c.GatewayBytes += from.GatewayBytes
	c.HostSent += from.HostSent
	c.Delivered += from.Delivered
	c.DeliveredBytes += from.DeliveredBytes
	c.DataDelivered += from.DataDelivered
	c.DataHopsSum += from.DataHopsSum
	c.LatencySumNs += from.LatencySumNs
	c.Misdeliveries += from.Misdeliveries
	c.Drops += from.Drops
	c.LearningPkts += from.LearningPkts
	c.InvalidationPkts += from.InvalidationPkts
	c.ConsumedControl += from.ConsumedControl
	c.StrayControlPkts += from.StrayControlPkts
	c.GatewayUnknownVIP += from.GatewayUnknownVIP
	c.FaultDrops += from.FaultDrops
	c.LossDrops += from.LossDrops
	c.Rerouted += from.Rerouted
	if from.LastMisdelivered > c.LastMisdelivered {
		c.LastMisdelivered = from.LastMisdelivered
	}
	sp, sb, sd := from.SwitchPackets, from.SwitchBytes, from.SwitchDrops
	gp, gb := from.GatewayPktByHost, from.GatewayByteByHost
	*from = Counters{SwitchPackets: sp, SwitchBytes: sb, SwitchDrops: sd,
		GatewayPktByHost: gp, GatewayByteByHost: gb}
}

// AvgPacketLatency returns the mean delivery latency over Data packets.
func (c *Counters) AvgPacketLatency() simtime.Duration {
	if c.DataDelivered == 0 {
		return 0
	}
	return simtime.Duration(c.LatencySumNs / c.DataDelivered)
}

// AvgStretch returns the mean number of switches traversed by delivered
// Data packets (the paper's "packet stretch").
func (c *Counters) AvgStretch() float64 {
	if c.DataDelivered == 0 {
		return 0
	}
	return float64(c.DataHopsSum) / float64(c.DataDelivered)
}

// TotalSwitchBytes sums the bytes processed by every switch.
func (c *Counters) TotalSwitchBytes() int64 {
	var n int64
	for _, b := range c.SwitchBytes {
		n += b
	}
	return n
}

// String summarizes the headline counters.
func (c *Counters) String() string {
	return fmt.Sprintf("delivered=%d gatewayPkts=%d misdeliveries=%d drops=%d",
		c.Delivered, c.GatewayPackets, c.Misdeliveries, c.Drops)
}
