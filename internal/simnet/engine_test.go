package simnet

import (
	"math/rand"
	"testing"

	"switchv2p/internal/netaddr"
	"switchv2p/internal/packet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
	"switchv2p/internal/vnet"
)

// gwScheme is a minimal pure-gateway scheme (NoCache semantics) used to
// exercise the engine in isolation from the real schemes.
type gwScheme struct{}

func (gwScheme) Name() string { return "test-gw" }

func (gwScheme) SenderResolve(e *Engine, host int32, p *packet.Packet) bool {
	if !p.Resolved {
		p.DstPIP = e.GatewayFor(p.SrcPIP, p.FlowID)
	}
	return true
}

func (gwScheme) SwitchArrive(e *Engine, sw int32, from topology.NodeRef, p *packet.Packet) bool {
	return true
}

func (gwScheme) HostMisdeliver(e *Engine, host int32, p *packet.Packet) {
	if pip, ok := e.Net.FollowMe(host, p.DstVIP); ok {
		p.DstPIP = pip
		p.Resolved = true
		e.Resend(host, p)
		return
	}
	p.Resolved = false
	p.DstPIP = e.GatewayFor(p.SrcPIP, p.FlowID)
	e.Resend(host, p)
}

type fixture struct {
	e    *Engine
	net  *vnet.Net
	vips []netaddr.VIP
}

func newFixture(t testing.TB, scheme Scheme) *fixture {
	t.Helper()
	topo, err := topology.New(topology.FT8())
	if err != nil {
		t.Fatal(err)
	}
	n := vnet.New(topo)
	vips := n.PlaceRoundRobin(256) // 2 VMs per server
	e := New(topo, n, scheme, DefaultConfig())
	return &fixture{e: e, net: n, vips: vips}
}

func (f *fixture) hostOf(v netaddr.VIP) int32 {
	h, ok := f.net.HostOf(v)
	if !ok {
		panic("unknown vip")
	}
	return h
}

func TestDeliveryViaGateway(t *testing.T) {
	f := newFixture(t, gwScheme{})
	src, dst := f.vips[0], f.vips[10]
	var deliveredTo int32 = -1
	var deliveredPkt *packet.Packet
	f.e.Handler = func(host int32, p *packet.Packet) {
		deliveredTo = host
		deliveredPkt = p
	}
	p := packet.NewData(1, 0, 1000, src, dst, 0)
	f.e.HostSend(f.hostOf(src), p)
	f.e.Run(simtime.Never)

	if deliveredTo != f.hostOf(dst) {
		t.Fatalf("delivered to host %d, want %d", deliveredTo, f.hostOf(dst))
	}
	if f.e.C.GatewayPackets != 1 {
		t.Fatalf("gateway packets = %d, want 1", f.e.C.GatewayPackets)
	}
	if !deliveredPkt.Resolved {
		t.Fatal("delivered packet not resolved")
	}
	wantPIP, _ := f.net.Lookup(dst)
	if deliveredPkt.DstPIP != wantPIP {
		t.Fatalf("delivered DstPIP = %v, want %v", deliveredPkt.DstPIP, wantPIP)
	}
	// Latency must include the 40 µs gateway plus at least 8 links of
	// propagation, and be well under a millisecond on an idle network.
	lat := f.e.C.AvgPacketLatency()
	if lat < 48*simtime.Microsecond || lat > 60*simtime.Microsecond {
		t.Fatalf("latency = %v, want ~40µs + path", lat)
	}
	if f.e.C.Drops != 0 || f.e.C.Misdeliveries != 0 {
		t.Fatalf("unexpected drops/misdeliveries: %+v", f.e.C)
	}
}

func TestDirectDeliveryBypassesGateway(t *testing.T) {
	f := newFixture(t, gwScheme{})
	src, dst := f.vips[0], f.vips[10]
	p := packet.NewData(1, 0, 1000, src, dst, 0)
	pip, _ := f.net.Lookup(dst)
	p.DstPIP = pip
	p.Resolved = true
	delivered := 0
	f.e.Handler = func(host int32, q *packet.Packet) { delivered++ }
	f.e.HostSend(f.hostOf(src), p)
	f.e.Run(simtime.Never)
	if delivered != 1 {
		t.Fatalf("delivered = %d", delivered)
	}
	if f.e.C.GatewayPackets != 0 {
		t.Fatalf("gateway packets = %d, want 0", f.e.C.GatewayPackets)
	}
	// Direct path latency is just links: microseconds, far below 40 µs.
	if lat := f.e.C.AvgPacketLatency(); lat > 15*simtime.Microsecond {
		t.Fatalf("direct latency = %v, want < 15µs", lat)
	}
}

func TestMisdeliveryFollowMe(t *testing.T) {
	f := newFixture(t, gwScheme{})
	src, dst := f.vips[0], f.vips[10]
	oldHost := f.hostOf(dst)
	// Move dst elsewhere, then deliver a packet pre-resolved to the OLD host.
	newHost := f.hostOf(f.vips[40])
	if err := f.net.Migrate(dst, newHost); err != nil {
		t.Fatal(err)
	}
	p := packet.NewData(1, 0, 1000, src, dst, 0)
	p.DstPIP = f.e.Topo.Hosts[oldHost].PIP // stale resolution
	p.Resolved = true
	var deliveredTo int32 = -1
	f.e.Handler = func(host int32, q *packet.Packet) { deliveredTo = host }
	f.e.HostSend(f.hostOf(src), p)
	f.e.Run(simtime.Never)
	if deliveredTo != newHost {
		t.Fatalf("delivered to %d, want new host %d", deliveredTo, newHost)
	}
	if f.e.C.Misdeliveries != 1 {
		t.Fatalf("misdeliveries = %d, want 1", f.e.C.Misdeliveries)
	}
	if f.e.C.LastMisdelivered == 0 {
		t.Fatal("LastMisdelivered not recorded")
	}
	if !p.WasMisdelivered {
		t.Fatal("WasMisdelivered not set")
	}
}

func TestGatewayResolvesAfterMigration(t *testing.T) {
	// An unresolved packet sent after migration reaches the NEW host via
	// the gateway (the authoritative DB is already updated).
	f := newFixture(t, gwScheme{})
	src, dst := f.vips[0], f.vips[10]
	newHost := f.hostOf(f.vips[40])
	if err := f.net.Migrate(dst, newHost); err != nil {
		t.Fatal(err)
	}
	var deliveredTo int32 = -1
	f.e.Handler = func(host int32, q *packet.Packet) { deliveredTo = host }
	f.e.HostSend(f.hostOf(src), packet.NewData(1, 0, 1000, src, dst, 0))
	f.e.Run(simtime.Never)
	if deliveredTo != newHost {
		t.Fatalf("delivered to %d, want %d", deliveredTo, newHost)
	}
	if f.e.C.Misdeliveries != 0 {
		t.Fatalf("misdeliveries = %d, want 0", f.e.C.Misdeliveries)
	}
}

func TestSwitchByteAccounting(t *testing.T) {
	f := newFixture(t, gwScheme{})
	src, dst := f.vips[0], f.vips[10]
	f.e.HostSend(f.hostOf(src), packet.NewData(1, 0, 1000, src, dst, 0))
	f.e.Run(simtime.Never)
	// The packet visits the sender ToR at least once, and total switch
	// bytes must be hops * size.
	p := packet.NewData(1, 0, 1000, src, dst, 0)
	size := int64(p.Size())
	total := f.e.C.TotalSwitchBytes()
	if total == 0 || total%size != 0 {
		t.Fatalf("switch bytes %d not a multiple of packet size %d", total, size)
	}
	hops := total / size
	if hops < 6 {
		t.Fatalf("packet visited %d switches, want >= 6 (via gateway)", hops)
	}
	if f.e.C.DataHopsSum != hops {
		t.Fatalf("DataHopsSum = %d, want %d", f.e.C.DataHopsSum, hops)
	}
}

func TestECMPSpreadsFlows(t *testing.T) {
	f := newFixture(t, gwScheme{})
	// Many flows between the same host pair should use multiple spines.
	src, dst := f.vips[0], f.vips[200]
	pip, _ := f.net.Lookup(dst)
	for flow := uint64(0); flow < 64; flow++ {
		p := packet.NewData(flow, 0, 100, src, dst, 0)
		p.DstPIP = pip
		p.Resolved = true
		f.e.HostSend(f.hostOf(src), p)
	}
	f.e.Run(simtime.Never)
	srcPod := f.e.Topo.Hosts[f.hostOf(src)].Pod
	spinesUsed := 0
	for _, s := range f.e.Topo.Switches {
		if s.Pod == srcPod && s.Role.IsSpine() && f.e.C.SwitchPackets[s.Idx] > 0 {
			spinesUsed++
		}
	}
	if spinesUsed < 2 {
		t.Fatalf("ECMP used %d spines, want >= 2", spinesUsed)
	}
}

func TestBufferOverflowDrops(t *testing.T) {
	topo, err := topology.New(func() topology.Config {
		c := topology.FT8()
		c.BufferBytes = 4000 // absurdly small: a few packets
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	n := vnet.New(topo)
	vips := n.PlaceRoundRobin(256)
	e := New(topo, n, gwScheme{}, DefaultConfig())
	// Incast: two senders blast the same receiver, whose 100G host link
	// drains slower than the 200G aggregate arrival rate; the receiving
	// ToR's tiny buffer (4000B) must overflow.
	dst := vips[10]
	pip, _ := n.Lookup(dst)
	const perSender = 50
	for s, src := range []netaddr.VIP{vips[0], vips[2]} {
		srcHost, _ := n.HostOf(src)
		for i := 0; i < perSender; i++ {
			p := packet.NewData(uint64(s), i, 1400, src, dst, 0)
			p.DstPIP = pip
			p.Resolved = true
			e.HostSend(srcHost, p)
		}
	}
	e.Run(simtime.Never)
	if e.C.Drops == 0 {
		t.Fatal("expected buffer-overflow drops")
	}
	if e.C.Delivered == 0 {
		t.Fatal("expected some deliveries despite drops")
	}
	if e.C.Delivered+e.C.Drops != 2*perSender {
		t.Fatalf("delivered %d + drops %d != %d", e.C.Delivered, e.C.Drops, 2*perSender)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Counters {
		f := newFixture(t, gwScheme{})
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 200; i++ {
			src := f.vips[rng.Intn(len(f.vips))]
			dst := f.vips[rng.Intn(len(f.vips))]
			if src == dst {
				continue
			}
			f.e.HostSend(f.hostOf(src), packet.NewData(uint64(i), 0, 500, src, dst, 0))
		}
		f.e.Run(simtime.Never)
		return f.e.C
	}
	a, b := run(), run()
	if a.Delivered != b.Delivered || a.GatewayPackets != b.GatewayPackets ||
		a.LatencySumNs != b.LatencySumNs || a.DataHopsSum != b.DataHopsSum {
		t.Fatalf("runs differ:\n%+v\n%+v", a, b)
	}
}

func TestFIFOWithinLink(t *testing.T) {
	f := newFixture(t, gwScheme{})
	src, dst := f.vips[0], f.vips[10]
	pip, _ := f.net.Lookup(dst)
	var seqs []int
	f.e.Handler = func(host int32, p *packet.Packet) { seqs = append(seqs, p.Seq) }
	for i := 0; i < 50; i++ {
		p := packet.NewData(1, i, 1000, src, dst, 0)
		p.DstPIP = pip
		p.Resolved = true
		f.e.HostSend(f.hostOf(src), p)
	}
	f.e.Run(simtime.Never)
	if len(seqs) != 50 {
		t.Fatalf("delivered %d, want 50", len(seqs))
	}
	for i, s := range seqs {
		if s != i {
			t.Fatalf("same-flow packets reordered: position %d has seq %d", i, s)
		}
	}
}

func TestGatewayUnknownVIPDrops(t *testing.T) {
	f := newFixture(t, gwScheme{})
	src := f.vips[0]
	p := packet.NewData(1, 0, 100, src, netaddr.VIP(0xdeadbeef), 0)
	f.e.HostSend(f.hostOf(src), p)
	f.e.Run(simtime.Never)
	if f.e.C.GatewayUnknownVIP != 1 || f.e.C.Delivered != 0 {
		t.Fatalf("unknown VIP handling wrong: %+v", f.e.C)
	}
}

func TestActiveGatewaysSubset(t *testing.T) {
	topo, err := topology.New(topology.FT8())
	if err != nil {
		t.Fatal(err)
	}
	n := vnet.New(topo)
	n.PlaceRoundRobin(256)
	cfg := DefaultConfig()
	cfg.ActiveGateways = 4
	e := New(topo, n, gwScheme{}, cfg)
	if got := len(e.Gateways()); got != 4 {
		t.Fatalf("active gateways = %d, want 4", got)
	}
	seen := make(map[netaddr.PIP]bool)
	for flow := uint64(0); flow < 1000; flow++ {
		seen[e.GatewayFor(netaddr.PIP(flow+1), flow)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("GatewayFor spread over %d gateways, want 4", len(seen))
	}
}

func TestIsGatewayPIP(t *testing.T) {
	f := newFixture(t, gwScheme{})
	g := f.e.Topo.Gateways()[0]
	if !f.e.IsGatewayPIP(f.e.Topo.Hosts[g].PIP) {
		t.Fatal("IsGatewayPIP false for gateway")
	}
	s := f.e.Topo.Servers()[0]
	if f.e.IsGatewayPIP(f.e.Topo.Hosts[s].PIP) {
		t.Fatal("IsGatewayPIP true for server")
	}
	if f.e.IsGatewayPIP(netaddr.PIP(0xffffffff)) {
		t.Fatal("IsGatewayPIP true for unknown address")
	}
}

func TestStrayControlPacketCounted(t *testing.T) {
	f := newFixture(t, gwScheme{})
	dstHost := f.hostOf(f.vips[10])
	lp := packet.NewLearning(netaddr.Mapping{VIP: 1, PIP: 2}, 0, f.e.Topo.Hosts[dstHost].PIP)
	srcToR := f.e.Topo.Hosts[f.hostOf(f.vips[0])].ToR
	f.e.InjectFromSwitch(srcToR, lp)
	f.e.Run(simtime.Never)
	if f.e.C.StrayControlPkts != 1 {
		t.Fatalf("stray control packets = %d, want 1", f.e.C.StrayControlPkts)
	}
	if f.e.C.LearningPkts != 1 {
		t.Fatalf("learning packets = %d, want 1", f.e.C.LearningPkts)
	}
}

func TestGatewayOverloadDropsAtGatewayToR(t *testing.T) {
	// Overloading a single gateway drops packets at the gateway ToR's
	// egress port toward the gateway (its 100G NIC is the bottleneck for
	// fabric-rate arrivals), as §5.3 observes with few gateways.
	topo, err := topology.New(func() topology.Config {
		c := topology.FT8()
		c.BufferBytes = 64_000 // small buffer to overflow quickly
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	n := vnet.New(topo)
	vips := n.PlaceRoundRobin(256)
	cfg := DefaultConfig()
	cfg.ActiveGateways = 1
	e := New(topo, n, gwScheme{}, cfg)
	// Many senders blast simultaneously through the one gateway.
	for i := 0; i < 60; i++ {
		src, dst := vips[i], vips[100+i%100]
		h, _ := n.HostOf(src)
		for seq := 0; seq < 8; seq++ {
			e.HostSend(h, packet.NewData(uint64(i+1), seq, 1400, src, dst, 0))
		}
	}
	e.Run(simtime.Never)
	if e.C.Drops == 0 {
		t.Fatalf("expected drops at the gateway ToR: %+v", e.C)
	}
	if e.C.Delivered == 0 {
		t.Fatal("expected some deliveries")
	}
}
