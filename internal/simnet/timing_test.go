package simnet

import (
	"testing"

	"switchv2p/internal/packet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
	"switchv2p/internal/vnet"
)

// TestExactPathLatency verifies the store-and-forward timing model
// against a hand computation for a direct (resolved) same-rack delivery:
//
//	host -> ToR -> host: 2 links, each tx(size) serialization + 1 µs
//	propagation; both links are 100 Gbps host links.
func TestExactPathLatency(t *testing.T) {
	topo, err := topology.New(topology.FT8())
	if err != nil {
		t.Fatal(err)
	}
	n := vnet.New(topo)
	vips := n.PlaceRoundRobin(256)
	e := New(topo, n, gwScheme{}, DefaultConfig())

	// vips[0] on server 0, vips[1] on server 1: same rack (servers 0-3).
	src, dst := vips[0], vips[1]
	srcHost, _ := n.HostOf(src)
	dstHost, _ := n.HostOf(dst)
	if topo.Hosts[srcHost].ToR != topo.Hosts[dstHost].ToR {
		t.Fatal("precondition: VMs not in the same rack")
	}
	p := packet.NewData(1, 0, 1000, src, dst, 0)
	pip, _ := n.Lookup(dst)
	p.DstPIP = pip
	p.Resolved = true

	var deliveredAt simtime.Time
	e.Handler = func(host int32, q *packet.Packet) { deliveredAt = e.Now() }
	e.HostSend(srcHost, p)
	e.Run(simtime.Never)

	size := packet.NewData(1, 0, 1000, src, dst, 0).Size()
	tx := simtime.TransmitTime(size, topo.Cfg.HostLinkBps)
	want := simtime.Time(0).Add(2*tx + 2*topo.Cfg.LinkDelay)
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want exactly %v (2 links of tx %v + 1µs)", deliveredAt, want, tx)
	}
}

// TestGatewayLatencyExact verifies the 40 µs gateway pipeline appears
// exactly once in an unresolved delivery.
func TestGatewayLatencyExact(t *testing.T) {
	topo, err := topology.New(topology.FT8())
	if err != nil {
		t.Fatal(err)
	}
	n := vnet.New(topo)
	vips := n.PlaceRoundRobin(256)
	e := New(topo, n, gwScheme{}, DefaultConfig())
	src, dst := vips[0], vips[1]
	srcHost, _ := n.HostOf(src)

	var deliveredAt simtime.Time
	e.Handler = func(host int32, q *packet.Packet) { deliveredAt = e.Now() }
	e.HostSend(srcHost, packet.NewData(1, 0, 1000, src, dst, 0))
	e.Run(simtime.Never)

	// Reconstruct: hops = links traversed = switch hops + 2 (host
	// endpoints)... derive the link count from the recorded switch hops:
	// the packet visited C.DataHopsSum switches and 2 hosts (gateway +
	// destination), so links = switches + hosts = hops + 2... each link
	// contributes tx+delay; host links at 100G, fabric at 400G.
	// Rather than reconstructing every leg, assert the invariant:
	// latency - 40µs ≥ (hops+2) µs of propagation and < +10µs slack.
	hops := e.C.DataHopsSum
	lat := simtime.Duration(deliveredAt)
	prop := simtime.Duration(hops+2) * simtime.Microsecond
	min := 40*simtime.Microsecond + prop
	if lat < min || lat > min+10*simtime.Microsecond {
		t.Fatalf("latency %v outside [%v, %v+10µs] for %d switch hops", lat, min, min, hops)
	}
}

// TestECMPPathStability: the same flow takes the same path every time
// (no per-packet spraying), so same-flow packets cannot be reordered by
// multipathing alone.
func TestECMPPathStability(t *testing.T) {
	topo, err := topology.New(topology.FT8())
	if err != nil {
		t.Fatal(err)
	}
	n := vnet.New(topo)
	vips := n.PlaceRoundRobin(256)
	e := New(topo, n, gwScheme{}, DefaultConfig())
	src, dst := vips[0], vips[200] // cross-pod
	srcHost, _ := n.HostOf(src)
	pip, _ := n.Lookup(dst)

	paths := make(map[int]map[int32]bool) // seq -> switches visited
	e.Tap = func(at topology.NodeRef, p *packet.Packet) {
		if at.Kind != topology.KindSwitch {
			return
		}
		if paths[p.Seq] == nil {
			paths[p.Seq] = make(map[int32]bool)
		}
		paths[p.Seq][at.Idx] = true
	}
	for seq := 0; seq < 10; seq++ {
		p := packet.NewData(42, seq, 500, src, dst, 0)
		p.DstPIP = pip
		p.Resolved = true
		e.HostSend(srcHost, p)
	}
	e.Run(simtime.Never)
	first := paths[0]
	for seq := 1; seq < 10; seq++ {
		if len(paths[seq]) != len(first) {
			t.Fatalf("seq %d path length differs", seq)
		}
		for sw := range paths[seq] {
			if !first[sw] {
				t.Fatalf("seq %d took a different path (switch %d)", seq, sw)
			}
		}
	}
}

// TestDifferentFlowsMayDiverge: distinct flows between the same pair can
// use different spines (that is what ECMP load balancing is for).
func TestDifferentFlowsMayDiverge(t *testing.T) {
	topo, err := topology.New(topology.FT8())
	if err != nil {
		t.Fatal(err)
	}
	n := vnet.New(topo)
	vips := n.PlaceRoundRobin(256)
	e := New(topo, n, gwScheme{}, DefaultConfig())
	src, dst := vips[0], vips[200]
	srcHost, _ := n.HostOf(src)
	pip, _ := n.Lookup(dst)

	pathsByFlow := make(map[uint64]map[int32]bool)
	e.Tap = func(at topology.NodeRef, p *packet.Packet) {
		if at.Kind != topology.KindSwitch {
			return
		}
		if pathsByFlow[p.FlowID] == nil {
			pathsByFlow[p.FlowID] = make(map[int32]bool)
		}
		pathsByFlow[p.FlowID][at.Idx] = true
	}
	for flow := uint64(1); flow <= 32; flow++ {
		p := packet.NewData(flow, 0, 500, src, dst, 0)
		p.DstPIP = pip
		p.Resolved = true
		e.HostSend(srcHost, p)
	}
	e.Run(simtime.Never)
	// Union of visited switches across flows exceeds any single path.
	union := make(map[int32]bool)
	minLen := 1 << 30
	for _, set := range pathsByFlow {
		for sw := range set {
			union[sw] = true
		}
		if len(set) < minLen {
			minLen = len(set)
		}
	}
	if len(union) <= minLen {
		t.Fatalf("all 32 flows shared one path (%d switches)", minLen)
	}
}
