package simnet

// Hot-path guards for the allocation-free event model: steady-state
// alloc-freedom of the link serializer and fabric forwarding, the
// typed-vs-closure determinism guard, and regression tests for the
// switch-buffer gauge, gateway-less topologies, and in-flight
// accounting.

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"switchv2p/internal/eventq"
	"switchv2p/internal/netaddr"
	"switchv2p/internal/packet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/telemetry"
	"switchv2p/internal/topology"
	"switchv2p/internal/vnet"
)

// bareLink builds a host-egress link wired to a throwaway engine, with
// delivery going nowhere: the pure serializer, nothing downstream.
func bareLink() (*Engine, *link) {
	e := &Engine{Q: &eventq.Queue{}}
	l := &link{
		e:          e,
		bps:        100_000_000_000,
		delay:      simtime.Microsecond,
		fromSwitch: -1,
		dst:        e,
		dstSw:      -1,
		dstHost:    -1, // unbound sink: delivery goes nowhere
	}
	return e, l
}

// TestLinkSerializerSteadyStateAllocFree is the acceptance guard: once
// the event heap, the egress queue, and the freelist are warm, pushing a
// packet through serialization and propagation allocates nothing.
func TestLinkSerializerSteadyStateAllocFree(t *testing.T) {
	e, l := bareLink()
	p := packet.NewData(1, 0, 1000, 1, 2, 3)
	// Warm up: grows the heap backing array, the queue slice, and the
	// freelist to their steady-state sizes.
	for i := 0; i < 8; i++ {
		l.enqueue(p)
		e.Q.Run(simtime.Never)
	}
	allocs := testing.AllocsPerRun(200, func() {
		l.enqueue(p)
		e.Q.Run(simtime.Never)
	})
	if allocs != 0 {
		t.Fatalf("steady-state serializer path allocates %v per packet, want 0", allocs)
	}
}

// TestSwitchLinkSteadyStateAllocFree covers the switch-egress variant:
// shared-buffer accounting and the (nil) buffer gauge must stay on the
// allocation-free path too.
func TestSwitchLinkSteadyStateAllocFree(t *testing.T) {
	f := newFixture(t, gwScheme{})
	l := f.e.swNbr[0][0]
	l.dstSw, l.dstHost = -1, -1 // unbind the sink: cut off downstream hops
	p := packet.NewData(1, 0, 1000, 1, 2, 3)
	for i := 0; i < 8; i++ {
		l.enqueue(p)
		f.e.Q.Run(simtime.Never)
	}
	allocs := testing.AllocsPerRun(200, func() {
		l.enqueue(p)
		f.e.Q.Run(simtime.Never)
	})
	if allocs != 0 {
		t.Fatalf("switch-egress serializer path allocates %v per packet, want 0", allocs)
	}
}

// TestEcmpForwardSteadyStateAllocFree pushes a resolved packet from a
// ToR across the fabric to delivery: the whole forwarding chain — ECMP
// next-hop selection, adjacency lookup, every hop's serializer — must be
// allocation-free once warm.
func TestEcmpForwardSteadyStateAllocFree(t *testing.T) {
	f := newFixture(t, gwScheme{})
	src, dst := f.vips[0], f.vips[200] // distinct pods: full fabric path
	pip, _ := f.net.Lookup(dst)
	p := packet.NewData(7, 0, 1000, src, dst, 0)
	p.DstPIP = pip
	p.Resolved = true
	p.SentAt = simtime.Time(1)
	sw := f.e.Topo.Hosts[f.hostOf(src)].ToR
	dstToR := f.e.Topo.Hosts[f.hostOf(dst)].ToR
	for i := 0; i < 8; i++ {
		f.e.ecmpForward(sw, dstToR, p)
		f.e.Q.Run(simtime.Never)
	}
	allocs := testing.AllocsPerRun(200, func() {
		f.e.ecmpForward(sw, dstToR, p)
		f.e.Q.Run(simtime.Never)
	})
	if allocs != 0 {
		t.Fatalf("fabric forward path allocates %v per packet, want 0", allocs)
	}
}

// runScenario drives the standard engine scenario (the determinism
// test's random pair workload) on either event path and returns the
// final counters plus the buffer gauge.
func runScenario(t *testing.T, closures bool) (Counters, *telemetry.Gauge) {
	t.Helper()
	f := newFixture(t, gwScheme{})
	f.e.ClosureEvents = closures
	g := &telemetry.Gauge{}
	f.e.BufGauge = g
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		src := f.vips[rng.Intn(len(f.vips))]
		dst := f.vips[rng.Intn(len(f.vips))]
		if src == dst {
			continue
		}
		f.e.HostSend(f.hostOf(src), packet.NewData(uint64(i), 0, 500, src, dst, 0))
	}
	f.e.Run(simtime.Never)
	return f.e.C, g
}

// TestTypedAndClosurePathsByteIdentical is the engine-level determinism
// guard: the pooled typed-event path and the legacy closure path must
// produce byte-identical Counters (every field, compared structurally)
// and identical buffer-gauge readings.
func TestTypedAndClosurePathsByteIdentical(t *testing.T) {
	typedC, typedG := runScenario(t, false)
	closureC, closureG := runScenario(t, true)
	if !reflect.DeepEqual(typedC, closureC) {
		t.Fatalf("counters diverge between event paths:\ntyped:   %+v\nclosure: %+v", typedC, closureC)
	}
	if typedG.Value() != closureG.Value() || typedG.HighWater() != closureG.HighWater() {
		t.Fatalf("buffer gauge diverges: typed %d/%d, closure %d/%d",
			typedG.Value(), typedG.HighWater(), closureG.Value(), closureG.HighWater())
	}
}

// TestBufGaugeDrainsToZero is the dequeue-update regression test: after
// a run drains, the gauge's instantaneous value must fall back to zero
// (it used to stay at the last-enqueue occupancy forever) while the
// high-water mark keeps the peak.
func TestBufGaugeDrainsToZero(t *testing.T) {
	f := newFixture(t, gwScheme{})
	g := &telemetry.Gauge{}
	f.e.BufGauge = g
	src, dst := f.vips[0], f.vips[10]
	pip, _ := f.net.Lookup(dst)
	for i := 0; i < 20; i++ {
		p := packet.NewData(1, i, 1400, src, dst, 0)
		p.DstPIP = pip
		p.Resolved = true
		f.e.HostSend(f.hostOf(src), p)
	}
	f.e.Run(simtime.Never)
	if g.HighWater() == 0 {
		t.Fatal("buffer gauge never observed occupancy")
	}
	if g.Value() != 0 {
		t.Fatalf("buffer gauge reads %d after drain, want 0 (high water %d)",
			g.Value(), g.HighWater())
	}
}

// TestLinkQueueBoundedUnderSaturation is the egress-queue compaction
// regression test: a link that never fully drains used to grow its
// backing array without bound (compaction only happened at the
// head==len reset). Holding the queue at a steady ~1-packet backlog
// while the head advances for thousands of packets must leave the
// backing array at a small constant capacity.
func TestLinkQueueBoundedUnderSaturation(t *testing.T) {
	_, l := bareLink()
	p := packet.NewData(1, 0, 1000, 1, 2, 3)
	// Pin the serializer busy so enqueue never kicks startNext itself,
	// then alternate one arrival with one serializer pop: the queue
	// holds steady at one packet while head advances every iteration —
	// the exact saturation pattern that used to defeat compaction.
	l.busy = true
	l.queue = append(l.queue, p)
	for i := 0; i < 10000; i++ {
		l.enqueue(p)
		l.serializeNext()
	}
	if c := cap(l.queue); c > 64 {
		t.Fatalf("saturated link queue capacity grew to %d, want a small constant", c)
	}
}

// runMisdeliveryScenario drives stale pre-resolved packets at migrated
// VMs on the selected event path: every packet takes the hypervisor
// misdelivery path, which the typed path dispatches through the pooled
// hostEvent records (the gateway-transmit kind is covered by the
// gateway scenario above).
func runMisdeliveryScenario(t *testing.T, closures bool) Counters {
	t.Helper()
	f := newFixture(t, gwScheme{})
	f.e.ClosureEvents = closures
	rng := rand.New(rand.NewSource(11))
	type moved struct {
		vip     netaddr.VIP
		oldHost int32
	}
	var ms []moved
	for i := 0; i < 32; i++ {
		v := f.vips[i]
		old := f.hostOf(v)
		nh := f.hostOf(f.vips[64+rng.Intn(128)])
		if nh == old {
			continue
		}
		if err := f.net.Migrate(v, nh); err != nil {
			t.Fatal(err)
		}
		ms = append(ms, moved{vip: v, oldHost: old})
	}
	src := f.vips[200]
	for i, m := range ms {
		p := packet.NewData(uint64(1000+i), 0, 600, src, m.vip, 0)
		p.DstPIP = f.e.Topo.Hosts[m.oldHost].PIP // stale resolution
		p.Resolved = true
		f.e.HostSend(f.hostOf(src), p)
	}
	f.e.Run(simtime.Never)
	if f.e.C.Misdeliveries == 0 {
		t.Fatal("scenario produced no misdeliveries")
	}
	return f.e.C
}

// TestMisdeliveryEventPathsByteIdentical extends the typed-vs-closure
// determinism guard to the pooled hypervisor events: a misdelivery-heavy
// run must produce byte-identical Counters on both event paths.
func TestMisdeliveryEventPathsByteIdentical(t *testing.T) {
	typed := runMisdeliveryScenario(t, false)
	closure := runMisdeliveryScenario(t, true)
	if !reflect.DeepEqual(typed, closure) {
		t.Fatalf("counters diverge between event paths:\ntyped:   %+v\nclosure: %+v", typed, closure)
	}
}

// TestGatewayForNoGatewaysPanics checks the divide-by-zero fix: on a
// topology without gateway hosts, GatewayFor must fail loudly with a
// descriptive message instead of an anonymous integer divide panic.
func TestGatewayForNoGatewaysPanics(t *testing.T) {
	cfg := topology.FT8()
	cfg.GatewayPods = nil
	cfg.GatewaysPerPod = 0
	topo, err := topology.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := vnet.New(topo)
	n.PlaceRoundRobin(64)
	e := New(topo, n, gwScheme{}, DefaultConfig())
	if got := len(e.Gateways()); got != 0 {
		t.Fatalf("gateway-less topology reports %d gateways", got)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("GatewayFor on a gateway-less topology did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "no gateway hosts") {
			t.Fatalf("panic message %v not descriptive", r)
		}
	}()
	e.GatewayFor(1, 1)
}

// TestInFlightPacketsCountsPropagation pins the repaired semantics: a
// packet counts as in flight from link acceptance until it reaches the
// next node, including the propagation window after serialization ends
// (previously missed between serializer completion and delivery).
func TestInFlightPacketsCountsPropagation(t *testing.T) {
	f := newFixture(t, gwScheme{})
	src, dst := f.vips[0], f.vips[10]
	pip, _ := f.net.Lookup(dst)
	p := packet.NewData(1, 0, 1000, src, dst, 0)
	p.DstPIP = pip
	p.Resolved = true
	f.e.HostSend(f.hostOf(src), p)
	if got := f.e.InFlightPackets(); got != 1 {
		t.Fatalf("in flight after send = %d, want 1 (serializing)", got)
	}
	// One step dispatches the serializer-completion event: the packet is
	// now purely in propagation flight toward the ToR — the window the
	// old queue-length accounting missed.
	if !f.e.Q.Step() {
		t.Fatal("no event pending")
	}
	if got := f.e.InFlightPackets(); got != 1 {
		t.Fatalf("in flight during propagation = %d, want 1", got)
	}
	f.e.Run(simtime.Never)
	if got := f.e.InFlightPackets(); got != 0 {
		t.Fatalf("in flight after drain = %d, want 0", got)
	}
	if f.e.C.Delivered != 1 {
		t.Fatalf("delivered = %d, want 1", f.e.C.Delivered)
	}
}

// TestClosurePathStandaloneScenarios reruns a few representative engine
// tests' scenarios on the legacy closure path, keeping it exercised (and
// correct) as long as it exists.
func TestClosurePathStandaloneScenarios(t *testing.T) {
	f := newFixture(t, gwScheme{})
	f.e.ClosureEvents = true
	src, dst := f.vips[0], f.vips[10]
	delivered := 0
	f.e.Handler = func(host int32, p *packet.Packet) { delivered++ }
	f.e.HostSend(f.hostOf(src), packet.NewData(1, 0, 1000, src, dst, 0))
	f.e.Run(simtime.Never)
	if delivered != 1 || f.e.C.GatewayPackets != 1 {
		t.Fatalf("closure path delivery broken: delivered=%d %+v", delivered, f.e.C)
	}
	if got := f.e.InFlightPackets(); got != 0 {
		t.Fatalf("closure path leaves %d in flight after drain", got)
	}
}

// BenchmarkLinkSerializer measures the per-packet cost of the serializer
// hot path on both event paths; the typed path must report 0 allocs/op.
func BenchmarkLinkSerializer(b *testing.B) {
	for _, mode := range []struct {
		name     string
		closures bool
	}{{"typed", false}, {"closure", true}} {
		b.Run(mode.name, func(b *testing.B) {
			e, l := bareLink()
			e.ClosureEvents = mode.closures
			p := packet.NewData(1, 0, 1000, 1, 2, 3)
			for i := 0; i < 8; i++ { // warm the pools
				l.enqueue(p)
				e.Q.Run(simtime.Never)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.enqueue(p)
				e.Q.Run(simtime.Never)
			}
		})
	}
}

// TestLinkSerializerBenchmarkAllocFree runs the typed-path serializer
// loop under testing.Benchmark and asserts the allocation rate the
// benchmark would merely print: BenchmarkLinkSerializer/typed must stay
// at 0 allocs/op, as a failing test rather than a number in a report.
func TestLinkSerializerBenchmarkAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a benchmark")
	}
	r := testing.Benchmark(func(b *testing.B) {
		e, l := bareLink()
		p := packet.NewData(1, 0, 1000, 1, 2, 3)
		for i := 0; i < 8; i++ { // warm the pools
			l.enqueue(p)
			e.Q.Run(simtime.Never)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.enqueue(p)
			e.Q.Run(simtime.Never)
		}
	})
	if allocs := r.AllocsPerOp(); allocs != 0 {
		t.Fatalf("typed serializer path allocates %d/op in steady state, want 0", allocs)
	}
}

// BenchmarkEcmpForward measures a resolved packet's full fabric
// traversal — adjacency lookup, ECMP hash, per-hop serialization —
// from source ToR to destination host.
func BenchmarkEcmpForward(b *testing.B) {
	f := newFixture(b, gwScheme{})
	src, dst := f.vips[0], f.vips[200]
	pip, _ := f.net.Lookup(dst)
	p := packet.NewData(7, 0, 1000, src, dst, 0)
	p.DstPIP = pip
	p.Resolved = true
	p.SentAt = simtime.Time(1)
	sw := f.e.Topo.Hosts[f.hostOf(src)].ToR
	dstToR := f.e.Topo.Hosts[f.hostOf(dst)].ToR
	for i := 0; i < 8; i++ {
		f.e.ecmpForward(sw, dstToR, p)
		f.e.Q.Run(simtime.Never)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.e.ecmpForward(sw, dstToR, p)
		f.e.Q.Run(simtime.Never)
	}
}
