package simnet

// Fault-state plumbing: the primitive up/down and loss-window switches
// that internal/faults drives from its event schedule. The engine only
// holds state and applies it on the forwarding paths; all scheduling,
// randomized fault models and timeline recording live in internal/faults.
//
// Semantics (documented in DESIGN.md §"Fault model"):
//
//   - A downed link accepts no new packets (enqueue drops, FaultDrops).
//     Packets already accepted — queued, serializing or in propagation —
//     drain normally, like light already in the fiber.
//   - A failed switch processes nothing: packets in flight toward it die
//     on arrival, packets it would emit are never enqueued (every
//     incident link direction is blocked while the switch is down), and
//     its V2P cache state is destroyed (internal/faults calls the
//     scheme's FlushCache hook).
//   - An outaged gateway instance is dark: senders skip it (GatewayFor
//     re-balances across the surviving instances) and packets already
//     heading there are dropped on arrival.
//   - A loss window drops each packet entering the link with probability
//     rate, using the engine's seeded per-instance PRNG — never the
//     global math/rand state — so same-seed runs stay byte-identical.

import (
	"fmt"
	"math/rand"

	"switchv2p/internal/topology"
)

// linkBetween resolves the directed link from -> to, or nil when the
// two nodes are not physically adjacent.
func (e *Engine) linkBetween(from, to topology.NodeRef) *link {
	switch {
	case from.Kind == topology.KindHost && to.Kind == topology.KindSwitch:
		if e.Topo.Hosts[from.Idx].ToR == to.Idx {
			return e.hostUp[from.Idx]
		}
	case from.Kind == topology.KindSwitch && to.Kind == topology.KindHost:
		if e.Topo.Hosts[to.Idx].ToR == from.Idx {
			return e.hostDown[to.Idx]
		}
	case from.Kind == topology.KindSwitch && to.Kind == topology.KindSwitch:
		if ord := e.swOrd[from.Idx][to.Idx]; ord >= 0 {
			return e.swNbr[from.Idx][ord]
		}
	}
	return nil
}

// SetLinkFault fails (down=true) or restores (down=false) the physical
// link between a and b, in both directions. It returns an error when a
// and b are not adjacent, and is idempotent: re-failing a downed link or
// restoring a healthy one is a no-op.
func (e *Engine) SetLinkFault(a, b topology.NodeRef, down bool) error {
	ab, ba := e.linkBetween(a, b), e.linkBetween(b, a)
	if ab == nil || ba == nil {
		return fmt.Errorf("simnet: no link between %v and %v", a, b)
	}
	if ab.faultDown == down {
		return nil
	}
	ab.faultDown, ba.faultDown = down, down
	if down {
		e.activeFaults++
	} else {
		e.activeFaults--
	}
	return nil
}

// SetSwitchFault fails (down=true) or recovers (down=false) switch sw:
// every link direction incident to the switch — fabric neighbors in both
// directions and, for ToRs, the attached hosts' access links — is
// blocked while it is down. Cache state is NOT touched here; the fault
// injector owns the flush-on-failure policy (CacheFlusher). Idempotent.
func (e *Engine) SetSwitchFault(sw int32, down bool) error {
	if sw < 0 || int(sw) >= len(e.swDown) {
		return fmt.Errorf("simnet: switch %d out of range [0,%d)", sw, len(e.swDown))
	}
	if e.swDown[sw] == down {
		return nil
	}
	e.swDown[sw] = down
	var d int8 = 1
	if !down {
		d = -1
	}
	mark := func(l *link) { l.swFaults = uint8(int8(l.swFaults) + d) }
	for _, l := range e.swNbr[sw] { // egress to fabric neighbors
		mark(l)
	}
	for nbr, ord := range e.swOrd {
		if o := ord[sw]; o >= 0 { // ingress from fabric neighbors
			mark(e.swNbr[nbr][o])
		}
	}
	for _, h := range e.Topo.HostsAtToR(sw) { // attached hosts, both directions
		mark(e.hostUp[h])
		mark(e.hostDown[h])
	}
	if down {
		e.activeFaults++
	} else {
		e.activeFaults--
	}
	return nil
}

// SwitchFaulted reports whether switch sw is currently failed.
func (e *Engine) SwitchFaulted(sw int32) bool { return e.swDown[sw] }

// SetGatewayFault outages (down=true) or recovers (down=false) the
// translation gateway instance running on the given host. Idempotent.
func (e *Engine) SetGatewayFault(host int32, down bool) error {
	if host < 0 || int(host) >= len(e.gwDown) {
		return fmt.Errorf("simnet: host %d out of range [0,%d)", host, len(e.gwDown))
	}
	if !e.Topo.Hosts[host].Gateway {
		return fmt.Errorf("simnet: host %d is not a translation gateway", host)
	}
	if e.gwDown[host] == down {
		return nil
	}
	e.gwDown[host] = down
	if down {
		e.activeFaults++
	} else {
		e.activeFaults--
	}
	return nil
}

// GatewayFaulted reports whether the gateway on host is outaged.
func (e *Engine) GatewayFaulted(host int32) bool { return e.gwDown[host] }

// SetLinkLoss opens (rate > 0) or closes (rate == 0) a probabilistic
// loss window on the link between a and b, both directions: each packet
// entering the link is dropped with probability rate. Call SetLossSeed
// first to pin the coin-flip stream; otherwise a default seed of 1 is
// installed on first use.
func (e *Engine) SetLinkLoss(a, b topology.NodeRef, rate float64) error {
	if rate < 0 || rate > 1 {
		return fmt.Errorf("simnet: loss rate %v outside [0,1]", rate)
	}
	ab, ba := e.linkBetween(a, b), e.linkBetween(b, a)
	if ab == nil || ba == nil {
		return fmt.Errorf("simnet: no link between %v and %v", a, b)
	}
	if rate > 0 && e.lossRand == nil {
		e.SetLossSeed(1)
	}
	ab.loss, ba.loss = rate, rate
	return nil
}

// SetLossSeed (re)seeds the engine-local PRNG behind the per-link loss
// windows. The stream is consumed in event-dispatch order, which is
// itself deterministic, so two runs with the same seed and the same
// fault schedule drop exactly the same packets.
// On a sharded engine each domain draws from its own PRNG, seeded by a
// pure function of (seed, domain) — see shardLossSeed — so the streams
// are deterministic at any worker count (though not identical to the
// serial engine's single stream).
//
//v2plint:shardbarrier reseeding runs at setup or at a fault barrier, never inside a window
func (e *Engine) SetLossSeed(seed int64) {
	e.lossSeed = seed
	e.lossRand = rand.New(rand.NewSource(seed))
	if sh := e.shard; sh != nil && sh.views != nil {
		for d, v := range sh.views {
			v.lossRand = rand.New(rand.NewSource(shardLossSeed(seed, d)))
		}
	}
}

// ActiveFaults returns the number of currently failed entities (downed
// links, failed switches, outaged gateways — loss windows excluded).
// Zero means the forwarding hot paths take their healthy fast paths.
func (e *Engine) ActiveFaults() int { return e.activeFaults }
