package simnet

import (
	"switchv2p/internal/packet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
)

// link is one direction of a physical link: a FIFO egress queue, a
// serializer running at the link rate, and a propagation delay to the far
// end. Links egressing a switch draw from that switch's shared buffer;
// links egressing a host are paced by the transport layer and therefore
// unbounded.
type link struct {
	e     *Engine
	bps   int64
	delay simtime.Duration

	// Delivery target, bound once at topology wiring: either a switch
	// (dstSw >= 0, with fromRef the arriving direction) or a host
	// (dstHost >= 0). dst is the engine the arrival runs on — the root
	// engine in legacy mode; the sharded engine rebinds it to the
	// destination shard's view so the arrival mutates that shard's state.
	dst     *Engine
	dstSw   int32
	dstHost int32
	fromRef topology.NodeRef

	fromSwitch int32 // owning switch for shared-buffer accounting, -1 for host egress

	// Shard-boundary marking (set when the engine is sharded): a link
	// whose egress and ingress ends live in different shards hands
	// packets off through a deterministic mailbox at the propagation
	// stage instead of scheduling the deliver stage on its own queue.
	boundary bool
	dstDom   int32

	// Fault state (see Engine.SetLinkFault / SetSwitchFault /
	// SetLinkLoss). faultDown marks an explicit link failure; swFaults
	// counts failed endpoint switches (a fabric link has up to two, so a
	// recovery of one endpoint must not revive a link whose other
	// endpoint is still dark); loss is the probabilistic drop rate of the
	// current loss window (0 = lossless). A link accepts no packets while
	// faultDown || swFaults != 0.
	faultDown bool
	swFaults  uint8
	loss      float64

	// inFlight counts packets accepted by this link and not yet handed to
	// the far end: queued, serializing, or in propagation flight.
	inFlight int

	queue []*packet.Packet
	head  int
	busy  bool

	// free is the freelist of pooled event records for the typed-event
	// hot path. A record leaves the freelist when a packet starts
	// serializing and returns in its deliver stage, so the pool grows to
	// this link's in-flight high-water mark and is then reused forever:
	// the steady-state serializer path allocates nothing.
	free []*linkEvent
}

// linkEvent is a pooled, pre-bound event record (eventq.Timed) that
// carries one packet through the link's two scheduled instants: the end
// of serialization (stageTxDone) and the end of propagation
// (stageDeliver). The queue owns the record between AfterTimed and Fire;
// the link owns it otherwise. A record is recycled onto l.free before
// deliver runs, so re-entrant enqueues on the same link may reuse it
// immediately.
type linkEvent struct {
	l     *link
	p     *packet.Packet
	size  int
	stage uint8
}

const (
	stageTxDone uint8 = iota
	stageDeliver
)

// Fire dispatches the record's current stage.
//
//v2plint:hotpath
func (ev *linkEvent) Fire() {
	switch ev.stage {
	case stageTxDone:
		ev.l.txDone(ev.size)
		if ev.l.boundary {
			// The far end lives in another shard: hand the packet to the
			// deterministic cross-shard mailbox instead of scheduling the
			// propagation stage on this shard's queue. The record is
			// recycled here, so the pool behaves exactly as in the local
			// case.
			l, p := ev.l, ev.p
			ev.p = nil
			l.free = append(l.free, ev)
			l.inFlight--
			l.e.shard.post(l, p)
		} else {
			ev.stage = stageDeliver
			ev.l.e.Q.AfterTimed(ev.l.delay, ev)
		}
		ev.l.serializeNext()
	default: // stageDeliver
		l, p := ev.l, ev.p
		ev.p = nil
		l.free = append(l.free, ev)
		l.inFlight--
		l.deliverPkt(p)
	}
}

// deliverPkt hands the packet to the far end of the link: a host NIC or
// a switch ingress, on the engine that owns the destination (the root
// engine in legacy mode, the destination shard's view when sharded).
//
//v2plint:hotpath
func (l *link) deliverPkt(p *packet.Packet) {
	if l.dstHost >= 0 {
		//v2plint:allow hotpathreach host arrival runs the Handler/Tap hooks, whose dynamic dispatch is inherent to delivery; the binding is fixed at wiring
		l.dst.hostArrive(l.dstHost, p)
	} else if l.dstSw >= 0 {
		l.dst.switchArrive(l.dstSw, l.fromRef, p)
	}
	// Both ends unbound: a sink link (tests exercising the bare
	// serializer); the packet is discarded.
}

// getEvent pops a pooled record, allocating only to grow the pool.
//
//v2plint:hotpath
func (l *link) getEvent() *linkEvent {
	if n := len(l.free); n > 0 {
		ev := l.free[n-1]
		l.free = l.free[:n-1]
		return ev
	}
	//v2plint:allow hotpathalloc pool growth: one record per in-flight high-water mark, then reused forever
	return &linkEvent{l: l}
}

// enqueue appends p to the egress queue, dropping it if the link is
// down (fault injection), lossy (probabilistic loss window), or if the
// owning switch's shared buffer is exhausted, and kicks the serializer
// if idle. The fault-flag read is gated: activeFaults counts every
// downed link and failed switch, so the gate never changes which
// packets drop, only spares healthy runs the flag reads.
//
//v2plint:hotpath
func (l *link) enqueue(p *packet.Packet) {
	if l.e.activeFaults > 0 && (l.faultDown || l.swFaults != 0) {
		l.e.C.Drops++
		l.e.C.FaultDrops++
		return
	}
	if l.loss != 0 && l.e.lossRand.Float64() < l.loss {
		l.e.C.Drops++
		l.e.C.LossDrops++
		return
	}
	size := p.Size()
	if l.fromSwitch >= 0 {
		if l.e.bufUsed[l.fromSwitch]+size > l.e.Topo.Cfg.BufferBytes {
			l.e.C.Drops++
			l.e.C.SwitchDrops[l.fromSwitch]++
			return
		}
		l.e.bufUsed[l.fromSwitch] += size
		l.e.BufGauge.Set(int64(l.e.bufUsed[l.fromSwitch]))
	}
	l.inFlight++
	l.queue = append(l.queue, p)
	if !l.busy {
		l.busy = true
		l.startNext()
	}
}

// txDone releases the packet's shared-buffer claim when its last bit
// leaves the serializer (shared by the typed and closure paths).
//
//v2plint:hotpath
func (l *link) txDone(size int) {
	if l.fromSwitch >= 0 {
		l.e.bufUsed[l.fromSwitch] -= size
		l.e.BufGauge.Set(int64(l.e.bufUsed[l.fromSwitch]))
	}
}

// serializeNext continues with the next queued packet, or idles the
// serializer (shared by the typed and closure paths).
//
//v2plint:hotpath
func (l *link) serializeNext() {
	if l.head < len(l.queue) {
		l.startNext()
	} else {
		l.busy = false
	}
}

// startNext begins serializing the packet at the head of the queue. The
// default path schedules a pooled linkEvent record; Engine.ClosureEvents
// selects the legacy closure-per-event path, kept for the determinism
// guard that proves both dispatch byte-identical results.
//
//v2plint:hotpath
func (l *link) startNext() {
	p := l.queue[l.head]
	l.queue[l.head] = nil
	l.head++
	if l.head == len(l.queue) {
		l.queue = l.queue[:0]
		l.head = 0
	} else if l.head*2 >= len(l.queue) {
		// Under sustained backlog the queue never fully drains, so waiting
		// for that moment would let the backing array grow without bound
		// while head advances. Copy the live tail down once head crosses
		// the midpoint: each element moves at most once per half-drain
		// (amortized O(1) per packet) and capacity stays bounded by about
		// twice the backlog high-water mark.
		n := copy(l.queue, l.queue[l.head:])
		tail := l.queue[n:]
		for i := range tail {
			tail[i] = nil
		}
		l.queue = l.queue[:n]
		l.head = 0
	}
	size := p.Size()
	tx := simtime.TransmitTime(size, l.bps)
	if !l.e.ClosureEvents {
		ev := l.getEvent()
		ev.p = p
		ev.size = size
		ev.stage = stageTxDone
		l.e.Q.AfterTimed(tx, ev)
		return
	}
	//v2plint:allow hotpathalloc legacy closure reference path, opted into via Engine.ClosureEvents
	l.e.Q.After(tx, func() {
		l.txDone(size)
		// Store-and-forward: the far end receives the packet one
		// propagation delay after the last bit leaves.
		l.e.Q.After(l.delay, func() {
			l.inFlight--
			l.deliverPkt(p)
		})
		l.serializeNext()
	})
}
