package simnet

import (
	"switchv2p/internal/packet"
	"switchv2p/internal/simtime"
)

// link is one direction of a physical link: a FIFO egress queue, a
// serializer running at the link rate, and a propagation delay to the far
// end. Links egressing a switch draw from that switch's shared buffer;
// links egressing a host are paced by the transport layer and therefore
// unbounded.
type link struct {
	e       *Engine
	bps     int64
	delay   simtime.Duration
	deliver func(p *packet.Packet)

	fromSwitch int32 // owning switch for shared-buffer accounting, -1 for host egress

	// Fault state (see Engine.SetLinkFault / SetSwitchFault /
	// SetLinkLoss). faultDown marks an explicit link failure; swFaults
	// counts failed endpoint switches (a fabric link has up to two, so a
	// recovery of one endpoint must not revive a link whose other
	// endpoint is still dark); loss is the probabilistic drop rate of the
	// current loss window (0 = lossless). A link accepts no packets while
	// faultDown || swFaults != 0.
	faultDown bool
	swFaults  uint8
	loss      float64

	// inFlight counts packets accepted by this link and not yet handed to
	// the far end: queued, serializing, or in propagation flight.
	inFlight int

	queue []*packet.Packet
	head  int
	busy  bool

	// free is the freelist of pooled event records for the typed-event
	// hot path. A record leaves the freelist when a packet starts
	// serializing and returns in its deliver stage, so the pool grows to
	// this link's in-flight high-water mark and is then reused forever:
	// the steady-state serializer path allocates nothing.
	free []*linkEvent
}

// linkEvent is a pooled, pre-bound event record (eventq.Timed) that
// carries one packet through the link's two scheduled instants: the end
// of serialization (stageTxDone) and the end of propagation
// (stageDeliver). The queue owns the record between AfterTimed and Fire;
// the link owns it otherwise. A record is recycled onto l.free before
// deliver runs, so re-entrant enqueues on the same link may reuse it
// immediately.
type linkEvent struct {
	l     *link
	p     *packet.Packet
	size  int
	stage uint8
}

const (
	stageTxDone uint8 = iota
	stageDeliver
)

// Fire dispatches the record's current stage.
//
//v2plint:hotpath
func (ev *linkEvent) Fire() {
	switch ev.stage {
	case stageTxDone:
		ev.l.txDone(ev.size)
		ev.stage = stageDeliver
		ev.l.e.Q.AfterTimed(ev.l.delay, ev)
		ev.l.serializeNext()
	default: // stageDeliver
		l, p := ev.l, ev.p
		ev.p = nil
		l.free = append(l.free, ev)
		l.inFlight--
		//v2plint:allow hotpathreach deliver is bound once at topology wiring and never reassigned; effectively a static per-link destination
		l.deliver(p)
	}
}

// getEvent pops a pooled record, allocating only to grow the pool.
//
//v2plint:hotpath
func (l *link) getEvent() *linkEvent {
	if n := len(l.free); n > 0 {
		ev := l.free[n-1]
		l.free = l.free[:n-1]
		return ev
	}
	//v2plint:allow hotpathalloc pool growth: one record per in-flight high-water mark, then reused forever
	return &linkEvent{l: l}
}

// enqueue appends p to the egress queue, dropping it if the link is
// down (fault injection), lossy (probabilistic loss window), or if the
// owning switch's shared buffer is exhausted, and kicks the serializer
// if idle. The fault-flag read is gated: activeFaults counts every
// downed link and failed switch, so the gate never changes which
// packets drop, only spares healthy runs the flag reads.
//
//v2plint:hotpath
func (l *link) enqueue(p *packet.Packet) {
	if l.e.activeFaults > 0 && (l.faultDown || l.swFaults != 0) {
		l.e.C.Drops++
		l.e.C.FaultDrops++
		return
	}
	if l.loss != 0 && l.e.lossRand.Float64() < l.loss {
		l.e.C.Drops++
		l.e.C.LossDrops++
		return
	}
	size := p.Size()
	if l.fromSwitch >= 0 {
		if l.e.bufUsed[l.fromSwitch]+size > l.e.Topo.Cfg.BufferBytes {
			l.e.C.Drops++
			l.e.C.SwitchDrops[l.fromSwitch]++
			return
		}
		l.e.bufUsed[l.fromSwitch] += size
		l.e.BufGauge.Set(int64(l.e.bufUsed[l.fromSwitch]))
	}
	l.inFlight++
	l.queue = append(l.queue, p)
	if !l.busy {
		l.busy = true
		l.startNext()
	}
}

// txDone releases the packet's shared-buffer claim when its last bit
// leaves the serializer (shared by the typed and closure paths).
//
//v2plint:hotpath
func (l *link) txDone(size int) {
	if l.fromSwitch >= 0 {
		l.e.bufUsed[l.fromSwitch] -= size
		l.e.BufGauge.Set(int64(l.e.bufUsed[l.fromSwitch]))
	}
}

// serializeNext continues with the next queued packet, or idles the
// serializer (shared by the typed and closure paths).
//
//v2plint:hotpath
func (l *link) serializeNext() {
	if l.head < len(l.queue) {
		l.startNext()
	} else {
		l.busy = false
	}
}

// startNext begins serializing the packet at the head of the queue. The
// default path schedules a pooled linkEvent record; Engine.ClosureEvents
// selects the legacy closure-per-event path, kept for the determinism
// guard that proves both dispatch byte-identical results.
//
//v2plint:hotpath
func (l *link) startNext() {
	p := l.queue[l.head]
	l.queue[l.head] = nil
	l.head++
	if l.head == len(l.queue) {
		l.queue = l.queue[:0]
		l.head = 0
	}
	size := p.Size()
	tx := simtime.TransmitTime(size, l.bps)
	if !l.e.ClosureEvents {
		ev := l.getEvent()
		ev.p = p
		ev.size = size
		ev.stage = stageTxDone
		l.e.Q.AfterTimed(tx, ev)
		return
	}
	//v2plint:allow hotpathalloc legacy closure reference path, opted into via Engine.ClosureEvents
	l.e.Q.After(tx, func() {
		l.txDone(size)
		// Store-and-forward: the far end receives the packet one
		// propagation delay after the last bit leaves.
		l.e.Q.After(l.delay, func() {
			l.inFlight--
			l.deliver(p)
		})
		l.serializeNext()
	})
}
