package simnet

import (
	"switchv2p/internal/packet"
	"switchv2p/internal/simtime"
)

// link is one direction of a physical link: a FIFO egress queue, a
// serializer running at the link rate, and a propagation delay to the far
// end. Links egressing a switch draw from that switch's shared buffer;
// links egressing a host are paced by the transport layer and therefore
// unbounded.
type link struct {
	e       *Engine
	bps     int64
	delay   simtime.Duration
	deliver func(p *packet.Packet)

	fromSwitch int32 // owning switch for shared-buffer accounting, -1 for host egress

	queued int // bytes queued or in serialization

	queue []*packet.Packet
	head  int
	busy  bool
}

// enqueue appends p to the egress queue, dropping it if the owning
// switch's shared buffer is exhausted, and kicks the serializer if idle.
func (l *link) enqueue(p *packet.Packet) {
	size := p.Size()
	if l.fromSwitch >= 0 {
		if l.e.bufUsed[l.fromSwitch]+size > l.e.Topo.Cfg.BufferBytes {
			l.e.C.Drops++
			l.e.C.SwitchDrops[l.fromSwitch]++
			return
		}
		l.e.bufUsed[l.fromSwitch] += size
		l.e.BufGauge.Set(int64(l.e.bufUsed[l.fromSwitch]))
	}
	l.queued += size
	l.queue = append(l.queue, p)
	if !l.busy {
		l.busy = true
		l.startNext()
	}
}

// startNext begins serializing the packet at the head of the queue.
func (l *link) startNext() {
	p := l.queue[l.head]
	l.queue[l.head] = nil
	l.head++
	if l.head == len(l.queue) {
		l.queue = l.queue[:0]
		l.head = 0
	}
	size := p.Size()
	tx := simtime.TransmitTime(size, l.bps)
	l.e.Q.After(tx, func() {
		l.queued -= size
		if l.fromSwitch >= 0 {
			l.e.bufUsed[l.fromSwitch] -= size
		}
		// Store-and-forward: the far end receives the packet one
		// propagation delay after the last bit leaves.
		l.e.Q.After(l.delay, func() { l.deliver(p) })
		if l.head < len(l.queue) {
			l.startNext()
		} else {
			l.busy = false
		}
	})
}
