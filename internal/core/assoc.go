package core

import (
	"container/list"

	"switchv2p/internal/netaddr"
)

// MappingCache is the in-switch cache abstraction shared by the
// direct-mapped Cache (the paper's design, §3.2) and the
// fully-associative LRU AssocCache (the ablation alternative). The
// direct-mapped design is what a Tofino register array can implement;
// the LRU variant shows what an idealized replacement policy would buy.
type MappingCache interface {
	// Lookup searches for vip, updating recency/access state on hit.
	// wasAccessed reports whether the entry had already been used before
	// this lookup (the promotion trigger).
	Lookup(vip netaddr.VIP) (pip netaddr.PIP, hit, wasAccessed bool)
	// Peek inspects without touching recency state.
	Peek(vip netaddr.VIP) (netaddr.PIP, bool)
	// Insert admits unconditionally (the "All" admission policy).
	Insert(m netaddr.Mapping) InsertResult
	// InsertIfClear admits only when no actively-used entry would be
	// displaced (the conservative spine/core admission policy).
	InsertIfClear(m netaddr.Mapping) InsertResult
	// Invalidate removes vip if it maps to stalePIP.
	Invalidate(vip netaddr.VIP, stalePIP netaddr.PIP) bool
	// Len returns the capacity in entries.
	Len() int
	// Used returns the number of occupied entries.
	Used() int
	// HitStats returns the cumulative lookup and hit counts (the
	// telemetry sampler reads these as windowed per-switch hit rates).
	HitStats() (lookups, hits int64)
	// Flush discards every entry, keeping the capacity and the
	// cumulative counters: the state loss of a switch failure
	// (internal/faults), after which the cache re-learns from scratch.
	Flush()
}

var (
	_ MappingCache = (*Cache)(nil)
	_ MappingCache = (*AssocCache)(nil)
)

// AssocCache is a fully-associative cache with LRU replacement and the
// same access-bit semantics as the direct-mapped Cache: a victim with
// its access bit set blocks conservative insertion. It is not
// implementable in a switch data plane at line rate; it exists to
// quantify how much the direct-mapped restriction costs (ablation).
type AssocCache struct {
	capacity int
	ll       *list.List // front = most recently used
	index    map[netaddr.VIP]*list.Element

	Lookups int64
	Hits    int64
}

type assocEntry struct {
	vip    netaddr.VIP
	pip    netaddr.PIP
	access bool
}

// NewAssocCache returns an LRU cache holding up to capacity mappings.
func NewAssocCache(capacity int) *AssocCache {
	if capacity < 0 {
		panic("core: negative cache size")
	}
	return &AssocCache{
		capacity: capacity,
		ll:       list.New(),
		index:    make(map[netaddr.VIP]*list.Element),
	}
}

// Len implements MappingCache.
func (c *AssocCache) Len() int { return c.capacity }

// Used implements MappingCache.
func (c *AssocCache) Used() int { return c.ll.Len() }

// HitStats implements MappingCache.
func (c *AssocCache) HitStats() (lookups, hits int64) { return c.Lookups, c.Hits }

// Lookup implements MappingCache.
func (c *AssocCache) Lookup(vip netaddr.VIP) (netaddr.PIP, bool, bool) {
	if c.capacity == 0 {
		return netaddr.NoPIP, false, false
	}
	c.Lookups++
	el, ok := c.index[vip]
	if !ok {
		return netaddr.NoPIP, false, false
	}
	c.Hits++
	c.ll.MoveToFront(el)
	e := el.Value.(*assocEntry)
	was := e.access
	e.access = true
	return e.pip, true, was
}

// Peek implements MappingCache.
func (c *AssocCache) Peek(vip netaddr.VIP) (netaddr.PIP, bool) {
	if el, ok := c.index[vip]; ok {
		return el.Value.(*assocEntry).pip, true
	}
	return netaddr.NoPIP, false
}

// Insert implements MappingCache: admit unconditionally, evicting the
// least recently used entry when full.
func (c *AssocCache) Insert(m netaddr.Mapping) InsertResult {
	return c.insert(m, false)
}

// InsertIfClear implements MappingCache: refuse to displace a victim
// whose access bit is set.
func (c *AssocCache) InsertIfClear(m netaddr.Mapping) InsertResult {
	return c.insert(m, true)
}

func (c *AssocCache) insert(m netaddr.Mapping, conservative bool) InsertResult {
	if c.capacity == 0 || !m.IsValid() {
		return InsertResult{}
	}
	if el, ok := c.index[m.VIP]; ok {
		e := el.Value.(*assocEntry)
		if e.pip != m.PIP {
			e.pip = m.PIP
			e.access = false // remapped: the old value was stale
		}
		c.ll.MoveToFront(el)
		return InsertResult{Inserted: true}
	}
	res := InsertResult{Inserted: true, New: true}
	if c.ll.Len() >= c.capacity {
		victim := c.ll.Back()
		ve := victim.Value.(*assocEntry)
		if conservative && ve.access {
			return InsertResult{}
		}
		res.Evicted = netaddr.Mapping{VIP: ve.vip, PIP: ve.pip}
		delete(c.index, ve.vip)
		c.ll.Remove(victim)
	}
	el := c.ll.PushFront(&assocEntry{vip: m.VIP, pip: m.PIP})
	c.index[m.VIP] = el
	return res
}

// Invalidate implements MappingCache.
func (c *AssocCache) Invalidate(vip netaddr.VIP, stalePIP netaddr.PIP) bool {
	el, ok := c.index[vip]
	if !ok {
		return false
	}
	if el.Value.(*assocEntry).pip != stalePIP {
		return false
	}
	delete(c.index, vip)
	c.ll.Remove(el)
	return true
}

// Flush implements MappingCache.
func (c *AssocCache) Flush() {
	c.ll.Init()
	clear(c.index)
}

// HitRate returns hits/lookups.
func (c *AssocCache) HitRate() float64 {
	if c.Lookups == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Lookups)
}
