package core

import (
	"switchv2p/internal/topology"
	"switchv2p/internal/vnet"
)

// Tenancy configures multi-VPC operation (§4 "Multitenancy support"):
// each switch's memory is statically partitioned into per-tenant private
// caches so tenants cannot observe or disturb one another's entries, and
// an operator policy decides which VPCs get in-network caching at all
// (e.g. only when their gateway load justifies it). Disabled tenants
// fall back to plain gateway forwarding.
type Tenancy struct {
	// Shares maps tenant -> fraction of every switch's lines assigned to
	// that tenant's private partition. Fractions should sum to <= 1;
	// tenants without an entry get no partition (and thus no caching).
	Shares map[vnet.TenantID]float64

	// Enabled, when non-nil, gates in-network caching per tenant: a
	// tenant with a share but Enabled() == false is not cached either.
	Enabled func(t vnet.TenantID) bool
}

// enabledFor reports whether a tenant participates in caching.
func (t *Tenancy) enabledFor(id vnet.TenantID) bool {
	if _, ok := t.Shares[id]; !ok {
		return false
	}
	return t.Enabled == nil || t.Enabled(id)
}

// zeroCache is the shared no-op cache handed out for unknown or
// disabled tenants.
var zeroCache MappingCache = NewCache(0)

// buildTenantCaches constructs the per-switch per-tenant partitions.
func buildTenantCaches(topo *topology.Topology, opts Options) []map[vnet.TenantID]MappingCache {
	out := make([]map[vnet.TenantID]MappingCache, len(topo.Switches))
	for i, sw := range topo.Switches {
		lines := opts.LinesPerSwitch
		if opts.SizeFor != nil {
			lines = opts.SizeFor(sw)
		}
		part := make(map[vnet.TenantID]MappingCache, len(opts.Tenancy.Shares))
		for tenant, share := range opts.Tenancy.Shares {
			n := int(share * float64(lines))
			if opts.LRU {
				part[tenant] = NewAssocCache(n)
			} else {
				part[tenant] = NewCache(n)
			}
		}
		out[i] = part
	}
	return out
}

// cacheFor returns the cache partition serving the given switch and
// tenant (VNI). With tenancy disabled this is the switch's single shared
// cache.
func (s *Scheme) cacheFor(sw int32, vni uint32) MappingCache {
	if s.opts.Tenancy == nil {
		return s.caches[sw]
	}
	tenant := vnet.TenantID(vni)
	if !s.opts.Tenancy.enabledFor(tenant) {
		return zeroCache
	}
	if c, ok := s.tenantCaches[sw][tenant]; ok {
		return c
	}
	return zeroCache
}

// TenantCache exposes one tenant's partition on a switch (tests,
// analysis). Returns the zero cache when tenancy is off or the tenant is
// unknown.
func (s *Scheme) TenantCache(sw int32, tenant vnet.TenantID) MappingCache {
	if s.opts.Tenancy == nil {
		return zeroCache
	}
	if c, ok := s.tenantCaches[sw][tenant]; ok {
		return c
	}
	return zeroCache
}
