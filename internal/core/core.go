package core
