package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"switchv2p/internal/netaddr"
)

func TestAssocBasics(t *testing.T) {
	c := NewAssocCache(2)
	if c.Len() != 2 || c.Used() != 0 {
		t.Fatalf("fresh cache: len=%d used=%d", c.Len(), c.Used())
	}
	r := c.Insert(netaddr.Mapping{VIP: 1, PIP: 10})
	if !r.Inserted || !r.New {
		t.Fatalf("insert = %+v", r)
	}
	pip, hit, was := c.Lookup(1)
	if !hit || pip != 10 || was {
		t.Fatalf("lookup = %v,%v,%v", pip, hit, was)
	}
	if _, _, was := c.Lookup(1); !was {
		t.Fatal("second lookup should report prior access")
	}
	if c.HitRate() != 1 {
		t.Fatalf("hit rate = %v", c.HitRate())
	}
}

func TestAssocLRUEviction(t *testing.T) {
	c := NewAssocCache(2)
	c.Insert(netaddr.Mapping{VIP: 1, PIP: 10})
	c.Insert(netaddr.Mapping{VIP: 2, PIP: 20})
	c.Lookup(1) // 1 is now most recently used
	r := c.Insert(netaddr.Mapping{VIP: 3, PIP: 30})
	if r.Evicted != (netaddr.Mapping{VIP: 2, PIP: 20}) {
		t.Fatalf("evicted %v, want the LRU entry (2)", r.Evicted)
	}
	if _, ok := c.Peek(1); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.Peek(2); ok {
		t.Fatal("LRU entry survived")
	}
}

func TestAssocInsertIfClearProtectsActiveVictim(t *testing.T) {
	c := NewAssocCache(1)
	c.Insert(netaddr.Mapping{VIP: 1, PIP: 10})
	c.Lookup(1) // access bit set
	if r := c.InsertIfClear(netaddr.Mapping{VIP: 2, PIP: 20}); r.Inserted {
		t.Fatal("displaced an active victim")
	}
	// An unconditional insert still works.
	if r := c.Insert(netaddr.Mapping{VIP: 2, PIP: 20}); !r.Inserted {
		t.Fatal("unconditional insert refused")
	}
}

func TestAssocRefreshAndRemap(t *testing.T) {
	c := NewAssocCache(4)
	c.Insert(netaddr.Mapping{VIP: 1, PIP: 10})
	c.Lookup(1)
	c.Insert(netaddr.Mapping{VIP: 1, PIP: 11}) // remap clears access
	pip, hit, was := c.Lookup(1)
	if !hit || pip != 11 || was {
		t.Fatalf("after remap: %v,%v,%v", pip, hit, was)
	}
}

func TestAssocInvalidate(t *testing.T) {
	c := NewAssocCache(4)
	c.Insert(netaddr.Mapping{VIP: 1, PIP: 10})
	if c.Invalidate(1, 99) {
		t.Fatal("invalidated with wrong stale PIP")
	}
	if !c.Invalidate(1, 10) {
		t.Fatal("failed to invalidate")
	}
	if c.Used() != 0 {
		t.Fatalf("used = %d after invalidation", c.Used())
	}
}

func TestAssocZeroCapacity(t *testing.T) {
	c := NewAssocCache(0)
	if r := c.Insert(netaddr.Mapping{VIP: 1, PIP: 2}); r.Inserted {
		t.Fatal("zero-capacity insert succeeded")
	}
	if _, hit, _ := c.Lookup(1); hit {
		t.Fatal("zero-capacity hit")
	}
}

func TestAssocNeverExceedsCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewAssocCache(8)
		for i := 0; i < 500; i++ {
			vip := netaddr.VIP(rng.Intn(64) + 1)
			pip := netaddr.PIP(rng.Intn(100) + 1)
			switch rng.Intn(3) {
			case 0:
				c.Insert(netaddr.Mapping{VIP: vip, PIP: pip})
			case 1:
				c.InsertIfClear(netaddr.Mapping{VIP: vip, PIP: pip})
			case 2:
				c.Lookup(vip)
			}
			if c.Used() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAssocVsDirectConsistency(t *testing.T) {
	// Property: both implementations never return a PIP that was not the
	// most recent value inserted for that VIP.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, c := range []MappingCache{NewCache(16), NewAssocCache(16)} {
			truth := make(map[netaddr.VIP]netaddr.PIP)
			for i := 0; i < 300; i++ {
				vip := netaddr.VIP(rng.Intn(40) + 1)
				pip := netaddr.PIP(rng.Intn(50) + 1)
				if rng.Intn(2) == 0 {
					if c.Insert(netaddr.Mapping{VIP: vip, PIP: pip}).Inserted {
						truth[vip] = pip
					}
				} else if got, hit, _ := c.Lookup(vip); hit && got != truth[vip] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSchemeWithLRUCaches(t *testing.T) {
	opts := DefaultOptions(64)
	opts.LRU = true
	opts.LearningPackets = false
	w := newWorld(t, opts)
	src, dst := w.vips[0], w.vips[9]
	w.send(1, 0, src, dst, true)
	w.send(1, 1, src, dst, false)
	if w.e.C.GatewayPackets != 1 {
		t.Fatalf("LRU scheme: gateway packets = %d, want 1", w.e.C.GatewayPackets)
	}
	if w.scheme.S.Hits == 0 {
		t.Fatal("LRU scheme recorded no hits")
	}
}

func TestLRUBeatsDirectMappedUnderConflicts(t *testing.T) {
	// With a working set equal to capacity, the direct-mapped cache
	// suffers conflict misses that the fully-associative cache avoids.
	const capacity = 32
	dm, lru := NewCache(capacity), NewAssocCache(capacity)
	// Install a working set exactly equal to the capacity...
	for i := 1; i <= capacity; i++ {
		m := netaddr.Mapping{VIP: netaddr.VIP(i), PIP: netaddr.PIP(i)}
		dm.Insert(m)
		lru.Insert(m)
	}
	// ...then only look up: the associative cache holds all 32 entries,
	// while hash conflicts make the direct-mapped cache lose some.
	for round := 0; round < 10; round++ {
		for i := 1; i <= capacity; i++ {
			dm.Lookup(netaddr.VIP(i))
			lru.Lookup(netaddr.VIP(i))
		}
	}
	if lru.HitRate() != 1 {
		t.Fatalf("LRU hit rate %v, want 1 (working set fits)", lru.HitRate())
	}
	if dm.HitRate() >= 1 {
		t.Fatalf("direct-mapped hit rate %v, expected conflict misses", dm.HitRate())
	}
}
