package core

import (
	"testing"

	"switchv2p/internal/netaddr"
	"switchv2p/internal/packet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
)

// TestInvalidationEnRoute: an invalidation packet cleans matching stale
// entries on every switch along its path, not only at its target (§3.3
// "This process ensures that all the caches along the path to the
// destination are invalidated as well").
func TestInvalidationEnRoute(t *testing.T) {
	opts := DefaultOptions(1024)
	opts.LearningPackets = false
	w := newWorld(t, opts)
	vip := w.vips[9]
	stale := netaddr.PIP(0x0a0000ff)

	// Plant the stale mapping at a target core and at a spine on the path.
	srcToR := w.topo.Hosts[w.hostOf(w.vips[0])].ToR
	var core0 int32 = -1
	for _, sw := range w.topo.Switches {
		if sw.Role == topology.RoleCore {
			core0 = sw.Idx
			break
		}
	}
	// Find a spine adjacent on the path srcToR -> core0.
	spine := w.topo.NextHops(srcToR, core0)[0]
	w.scheme.Cache(core0).Insert(netaddr.Mapping{VIP: vip, PIP: stale})
	w.scheme.Cache(spine).Insert(netaddr.Mapping{VIP: vip, PIP: stale})

	inv := packet.NewInvalidation(vip, stale,
		w.topo.Switches[srcToR].PIP, w.topo.Switches[core0].PIP)
	// Force the path through our chosen spine by injecting there.
	w.e.InjectFromSwitch(spine, inv)
	w.e.Run(simtime.Never)

	if _, ok := w.scheme.Cache(core0).Peek(vip); ok {
		t.Fatal("target core still holds the stale entry")
	}
	if w.scheme.S.EntriesInvalidated == 0 {
		t.Fatal("no entries invalidated")
	}
	// The spine processed the packet only at injection (it emitted it), so
	// plant again and send from the ToR to check en-route invalidation.
	w.scheme.Cache(spine).Insert(netaddr.Mapping{VIP: vip, PIP: stale})
	w.scheme.Cache(core0).Insert(netaddr.Mapping{VIP: vip, PIP: stale})
	inv2 := packet.NewInvalidation(vip, stale,
		w.topo.Switches[srcToR].PIP, w.topo.Switches[core0].PIP)
	w.e.InjectFromSwitch(srcToR, inv2)
	w.e.Run(simtime.Never)
	if _, ok := w.scheme.Cache(core0).Peek(vip); ok {
		t.Fatal("core not invalidated on second pass")
	}
	// Note: ECMP may route via any of the pod's spines; if it used ours,
	// the entry is gone. We assert only that no switch serves the stale
	// mapping to a subsequent packet:
	var delivered netaddr.PIP
	w.e.Handler = func(host int32, p *packet.Packet) { delivered = p.DstPIP }
	w.send(1, 0, w.vips[0], vip, true)
	want, _ := w.net.Lookup(vip)
	if delivered != want {
		t.Fatalf("packet delivered to %v, want %v (stale entry used)", delivered, want)
	}
}

// TestNoLearningPacketForKnownMapping: gateway ToRs emit learning
// packets only for NEW mappings (§3.2.2).
func TestNoLearningPacketForKnownMapping(t *testing.T) {
	opts := DefaultOptions(1024)
	opts.PLearn = 1.0
	w := newWorld(t, opts)
	src, dst := w.vips[0], w.vips[9]
	w.send(1, 0, src, dst, true)
	sent := w.scheme.S.LearningSent
	if sent == 0 {
		t.Fatal("no learning packet for the new mapping")
	}
	// Re-sending to the same destination re-learns the same mapping: no
	// further learning packets for it. (ACKs may learn the reverse
	// mapping once; tolerate that by comparing against a second repeat.)
	w.send(1, 1, src, dst, false)
	after1 := w.scheme.S.LearningSent
	w.send(1, 2, src, dst, false)
	if w.scheme.S.LearningSent != after1 {
		t.Fatalf("learning packets for an already-known mapping: %d -> %d",
			after1, w.scheme.S.LearningSent)
	}
}

// TestDoubleMigrationDelivery: two consecutive migrations of the same VM
// still end with correct delivery and a clean cache.
func TestDoubleMigrationDelivery(t *testing.T) {
	opts := DefaultOptions(1024)
	opts.PLearn = 1.0
	w := newWorld(t, opts)
	src, dst := w.vips[0], w.vips[9]
	w.send(1, 0, src, dst, true) // warm

	hostB := w.hostOf(w.vips[100])
	hostC := w.hostOf(w.vips[200])
	if err := w.net.Migrate(dst, hostB); err != nil {
		t.Fatal(err)
	}
	var deliveredTo int32 = -1
	w.e.Handler = func(h int32, p *packet.Packet) { deliveredTo = h }
	w.send(1, 1, src, dst, false)
	if deliveredTo != hostB {
		t.Fatalf("after first migration delivered to %d, want %d", deliveredTo, hostB)
	}
	if err := w.net.Migrate(dst, hostC); err != nil {
		t.Fatal(err)
	}
	w.send(1, 2, src, dst, false)
	if deliveredTo != hostC {
		t.Fatalf("after second migration delivered to %d, want %d", deliveredTo, hostC)
	}
	// Converged: one more packet, no misdelivery.
	mis := w.e.C.Misdeliveries
	w.send(1, 3, src, dst, false)
	if w.e.C.Misdeliveries != mis {
		t.Fatal("not converged after second migration")
	}
}

// TestAcksAreResolvedInNetwork: ACK packets are tenant traffic too: they
// carry inner headers, get looked up, and benefit from source learning.
func TestAcksAreResolvedInNetwork(t *testing.T) {
	opts := DefaultOptions(1024)
	opts.LearningPackets = false
	w := newWorld(t, opts)
	src, dst := w.vips[0], w.vips[9]
	// Data packet delivers; dst ToR source-learned src's mapping.
	w.send(1, 0, src, dst, true)
	gw := w.e.C.GatewayPackets
	// An ACK from dst back to src resolves at dst's ToR (no gateway).
	ack := packet.NewAck(1, 1, dst, src, 0)
	w.e.HostSend(w.hostOf(dst), ack)
	w.e.Run(simtime.Never)
	if w.e.C.GatewayPackets != gw {
		t.Fatalf("ACK detoured via gateway: %d -> %d", gw, w.e.C.GatewayPackets)
	}
	if w.e.C.Delivered != 2 {
		t.Fatalf("delivered = %d, want 2", w.e.C.Delivered)
	}
}

// TestZeroCacheEqualsNoCache: SwitchV2P with zero-size caches degenerates
// to the pure gateway scheme.
func TestZeroCacheEqualsNoCache(t *testing.T) {
	opts := DefaultOptions(0)
	w := newWorld(t, opts)
	for i := 0; i < 10; i++ {
		w.send(uint64(i+1), 0, w.vips[i], w.vips[50+i], true)
	}
	if w.e.C.GatewayPackets != w.e.C.HostSent {
		t.Fatalf("zero-cache SwitchV2P skipped gateways: %d of %d",
			w.e.C.GatewayPackets, w.e.C.HostSent)
	}
	if w.scheme.S.Hits != 0 {
		t.Fatalf("hits = %d with zero caches", w.scheme.S.Hits)
	}
	if w.e.C.LearningPkts != 0 {
		t.Fatalf("learning packets with zero caches: %d", w.e.C.LearningPkts)
	}
}

// TestGatewaySpineConservativeAdmission: gateway spines never evict an
// actively used entry for destination learning (Table 1).
func TestGatewaySpineConservativeAdmission(t *testing.T) {
	opts := DefaultOptions(8) // tiny: collisions guaranteed
	opts.LearningPackets = false
	opts.Spillover = false
	w := newWorld(t, opts)
	// Find a gateway spine and plant an active entry.
	var gwSpine int32 = -1
	for _, sw := range w.topo.Switches {
		if sw.Role == topology.RoleGatewaySpine {
			gwSpine = sw.Idx
			break
		}
	}
	cache := w.scheme.Cache(gwSpine)
	// Fill every line with active entries that don't collide with real
	// VIPs' values but occupy all lines.
	planted := make([]netaddr.VIP, 0, 8)
	for v := netaddr.VIP(0xff000001); len(planted) < 64; v++ {
		cache.Insert(netaddr.Mapping{VIP: v, PIP: 0x0a00aaaa})
		cache.Lookup(v) // set access bit
		planted = append(planted, v)
	}
	used := cache.Used()
	// Heavy traffic through the gateway pod: destination learning at the
	// gateway spine must not displace any access-bit-set entry... but
	// lookups for unresolved packets CLEAR access bits on miss, so some
	// displacement is legitimate over time. We assert the conservative
	// policy's immediate effect instead: a single resolved packet cannot
	// displace a just-refreshed active entry.
	for _, v := range planted {
		cache.Lookup(v)
	}
	res := cache.InsertIfClear(netaddr.Mapping{VIP: w.vips[0], PIP: 0x0a00bbbb})
	if res.Inserted && res.Evicted.IsValid() {
		t.Fatal("conservative admission displaced an active entry")
	}
	if got := cache.Used(); got < used {
		t.Fatalf("active entries lost: %d -> %d", used, got)
	}
}

// TestLearningPacketConsumedBeforeHost: learning packets never reach
// hosts; the destination ToR consumes them.
func TestLearningPacketConsumedBeforeHost(t *testing.T) {
	opts := DefaultOptions(1024)
	opts.PLearn = 1.0
	w := newWorld(t, opts)
	w.send(1, 0, w.vips[0], w.vips[9], true)
	if w.e.C.LearningPkts == 0 {
		t.Fatal("no learning packets generated")
	}
	if w.e.C.StrayControlPkts != 0 {
		t.Fatalf("%d learning packets leaked to hosts", w.e.C.StrayControlPkts)
	}
}

// TestHitSwitchRecorded: the switch identifier of a cache hit rides the
// packet to the destination (the invalidation targeting mechanism).
func TestHitSwitchRecorded(t *testing.T) {
	opts := DefaultOptions(1024)
	opts.PLearn = 1.0
	w := newWorld(t, opts)
	src, dst := w.vips[0], w.vips[9]
	w.send(1, 0, src, dst, true)
	var hitSwitch int32 = packet.NoSwitch
	w.e.Handler = func(h int32, p *packet.Packet) { hitSwitch = p.HitSwitch }
	w.send(1, 1, src, dst, false)
	srcToR := w.topo.Hosts[w.hostOf(src)].ToR
	if hitSwitch != srcToR {
		t.Fatalf("HitSwitch = %d, want sender ToR %d", hitSwitch, srcToR)
	}
}
