package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"switchv2p/internal/netaddr"
)

func TestZeroLineCache(t *testing.T) {
	c := NewCache(0)
	if _, hit, _ := c.Lookup(1); hit {
		t.Fatal("zero-line cache hit")
	}
	if r := c.Insert(netaddr.Mapping{VIP: 1, PIP: 2}); r.Inserted {
		t.Fatal("zero-line cache inserted")
	}
	if r := c.InsertIfClear(netaddr.Mapping{VIP: 1, PIP: 2}); r.Inserted {
		t.Fatal("zero-line cache inserted (conditional)")
	}
	if c.Invalidate(1, 2) {
		t.Fatal("zero-line cache invalidated")
	}
	if _, ok := c.Peek(1); ok {
		t.Fatal("zero-line cache peeked")
	}
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCache(-1)
}

func TestInsertLookup(t *testing.T) {
	c := NewCache(64)
	m := netaddr.Mapping{VIP: 100, PIP: 200}
	r := c.Insert(m)
	if !r.Inserted || !r.New || r.Evicted.IsValid() {
		t.Fatalf("Insert = %+v", r)
	}
	pip, hit, wasAccessed := c.Lookup(100)
	if !hit || pip != 200 {
		t.Fatalf("Lookup = %v,%v", pip, hit)
	}
	if wasAccessed {
		t.Fatal("fresh entry reported as previously accessed")
	}
	// Second hit: access bit was set by the first.
	if _, _, was := c.Lookup(100); !was {
		t.Fatal("second lookup should see access bit set")
	}
	if c.Lookups != 2 || c.Hits != 2 {
		t.Fatalf("counters lookups=%d hits=%d", c.Lookups, c.Hits)
	}
	if c.HitRate() != 1.0 {
		t.Fatalf("HitRate = %v", c.HitRate())
	}
}

func TestRefreshSameKey(t *testing.T) {
	c := NewCache(64)
	c.Insert(netaddr.Mapping{VIP: 100, PIP: 200})
	c.Lookup(100) // sets access bit
	r := c.Insert(netaddr.Mapping{VIP: 100, PIP: 201})
	if !r.Inserted || r.New || r.Evicted.IsValid() {
		t.Fatalf("refresh = %+v", r)
	}
	pip, hit, was := c.Lookup(100)
	if !hit || pip != 201 {
		t.Fatalf("after refresh Lookup = %v,%v", pip, hit)
	}
	if was {
		t.Fatal("remapped entry must have access bit cleared")
	}
	// Refreshing with the same value keeps the access bit.
	c.Insert(netaddr.Mapping{VIP: 100, PIP: 201})
	if _, _, was := c.Lookup(100); !was {
		t.Fatal("same-value refresh must keep access bit")
	}
}

// collide finds two distinct VIPs whose hash maps to the same line.
func collide(lines int) (a, b netaddr.VIP) {
	target := netaddr.HashVIP(1) % uint32(lines)
	for v := netaddr.VIP(2); ; v++ {
		if netaddr.HashVIP(v)%uint32(lines) == target {
			return 1, v
		}
	}
}

func TestEvictionAndSpillPayload(t *testing.T) {
	const lines = 16
	a, b := collide(lines)
	c := NewCache(lines)
	c.Insert(netaddr.Mapping{VIP: a, PIP: 10})
	r := c.Insert(netaddr.Mapping{VIP: b, PIP: 20})
	if !r.Inserted || !r.New {
		t.Fatalf("colliding insert = %+v", r)
	}
	if r.Evicted != (netaddr.Mapping{VIP: a, PIP: 10}) {
		t.Fatalf("Evicted = %v", r.Evicted)
	}
	if _, hit, _ := c.Lookup(a); hit {
		t.Fatal("evicted entry still present")
	}
}

func TestMissClearsAccessBit(t *testing.T) {
	const lines = 16
	a, b := collide(lines)
	c := NewCache(lines)
	c.Insert(netaddr.Mapping{VIP: a, PIP: 10})
	c.Lookup(a) // access bit set
	c.Lookup(b) // miss on the same line clears it
	if _, _, was := c.Lookup(a); was {
		t.Fatal("access bit should have been cleared by the colliding miss")
	}
}

func TestInsertIfClearRespectsActiveEntries(t *testing.T) {
	const lines = 16
	a, b := collide(lines)
	c := NewCache(lines)
	c.Insert(netaddr.Mapping{VIP: a, PIP: 10})
	c.Lookup(a) // mark active
	if r := c.InsertIfClear(netaddr.Mapping{VIP: b, PIP: 20}); r.Inserted {
		t.Fatal("InsertIfClear evicted an active entry")
	}
	if pip, _ := c.Peek(a); pip != 10 {
		t.Fatal("active entry lost")
	}
	// A colliding miss clears the bit; then the insert is admitted.
	c.Lookup(b)
	if r := c.InsertIfClear(netaddr.Mapping{VIP: b, PIP: 20}); !r.Inserted {
		t.Fatal("InsertIfClear refused an inactive line")
	}
	// Same-key refresh is always admitted even if active.
	c.Lookup(b)
	if r := c.InsertIfClear(netaddr.Mapping{VIP: b, PIP: 21}); !r.Inserted {
		t.Fatal("InsertIfClear refused same-key refresh")
	}
}

func TestInsertIfClearEmptyLine(t *testing.T) {
	c := NewCache(16)
	if r := c.InsertIfClear(netaddr.Mapping{VIP: 1, PIP: 2}); !r.Inserted || !r.New {
		t.Fatalf("InsertIfClear on empty line = %+v", r)
	}
}

func TestInvalidate(t *testing.T) {
	c := NewCache(16)
	c.Insert(netaddr.Mapping{VIP: 1, PIP: 2})
	if c.Invalidate(1, 99) {
		t.Fatal("invalidated with wrong stale PIP")
	}
	if _, hit, _ := c.Lookup(1); !hit {
		t.Fatal("entry lost after mismatched invalidation")
	}
	if !c.Invalidate(1, 2) {
		t.Fatal("failed to invalidate matching entry")
	}
	if _, hit, _ := c.Lookup(1); hit {
		t.Fatal("entry present after invalidation")
	}
	if c.Invalidate(1, 2) {
		t.Fatal("double invalidation reported true")
	}
}

func TestInvalidMappingIgnored(t *testing.T) {
	c := NewCache(16)
	if r := c.Insert(netaddr.Mapping{}); r.Inserted {
		t.Fatal("inserted invalid mapping")
	}
	if r := c.Insert(netaddr.Mapping{VIP: 1}); r.Inserted {
		t.Fatal("inserted mapping with no PIP")
	}
}

func TestUsed(t *testing.T) {
	c := NewCache(128)
	if c.Used() != 0 {
		t.Fatalf("Used = %d on empty cache", c.Used())
	}
	for i := 1; i <= 20; i++ {
		c.Insert(netaddr.Mapping{VIP: netaddr.VIP(i), PIP: netaddr.PIP(i)})
	}
	if u := c.Used(); u == 0 || u > 20 {
		t.Fatalf("Used = %d, want in (0,20]", u)
	}
}

func TestCacheNeverLies(t *testing.T) {
	// Property: after any operation sequence, a hit returns the most
	// recently inserted PIP for that VIP.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCache(32)
		truth := make(map[netaddr.VIP]netaddr.PIP)
		for op := 0; op < 500; op++ {
			vip := netaddr.VIP(rng.Intn(64) + 1)
			switch rng.Intn(3) {
			case 0:
				pip := netaddr.PIP(rng.Intn(100) + 1)
				if c.Insert(netaddr.Mapping{VIP: vip, PIP: pip}).Inserted {
					truth[vip] = pip
				}
			case 1:
				pip := netaddr.PIP(rng.Intn(100) + 1)
				if c.InsertIfClear(netaddr.Mapping{VIP: vip, PIP: pip}).Inserted {
					truth[vip] = pip
				}
			case 2:
				if pip, hit, _ := c.Lookup(vip); hit && pip != truth[vip] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCacheLookup(b *testing.B) {
	c := NewCache(4096)
	for i := 1; i <= 4096; i++ {
		c.Insert(netaddr.Mapping{VIP: netaddr.VIP(i), PIP: netaddr.PIP(i)})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Lookup(netaddr.VIP(i&4095 + 1))
	}
}
